// Unit tests for the replica-side application stack: ClientSessionTable
// exactly-once semantics, CommitPipeline delivery (dedup + cached-reply
// resend + checkpoint eviction), and the end-to-end session behaviour of a
// real PrestigeReplica fed duplicate ClientBatches and complaint
// resubmissions.

#include <gtest/gtest.h>

#include "app/kv_service.h"
#include "core/client_session.h"
#include "core/commit_delivery.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "harness/invariants.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"

namespace prestige {
namespace core {
namespace {

using util::Millis;
using util::Seconds;

types::Transaction MakeTx(types::ClientPoolId pool, uint64_t seq,
                          std::vector<uint8_t> command = {}) {
  types::Transaction tx;
  tx.pool = pool;
  tx.client_seq = seq;
  tx.sent_at = static_cast<util::TimeMicros>(seq);
  tx.fingerprint = seq * 7919 + pool;
  tx.command = std::move(command);
  return tx;
}

ledger::TxBlock MakeBlock(types::SeqNum n,
                          std::vector<types::Transaction> txs) {
  ledger::TxBlock block;
  block.v = 1;
  block.set_n(n);
  block.set_txs(std::move(txs));
  block.status.assign(block.BatchSize(), 1);
  return block;
}

// ------------------------------------------------------ ClientSessionTable

TEST(ClientSessionTableTest, DetectsDuplicatesAndAdvancesFloor) {
  ClientSessionTable table;
  EXPECT_FALSE(table.IsDuplicate(0, 1));
  table.Record(0, 1, app::Response{}, 1);
  table.Record(0, 2, app::Response{}, 1);
  EXPECT_TRUE(table.IsDuplicate(0, 1));
  EXPECT_TRUE(table.IsDuplicate(0, 2));
  EXPECT_FALSE(table.IsDuplicate(0, 3));
  EXPECT_FALSE(table.IsDuplicate(1, 1));  // Sessions are per pool.
}

TEST(ClientSessionTableTest, OutOfOrderSeqsStayExact) {
  ClientSessionTable table;
  table.Record(0, 3, app::Response{}, 1);  // Hole at 1, 2.
  EXPECT_TRUE(table.IsDuplicate(0, 3));
  EXPECT_FALSE(table.IsDuplicate(0, 1));
  EXPECT_FALSE(table.IsDuplicate(0, 2));
  table.Record(0, 1, app::Response{}, 2);
  table.Record(0, 2, app::Response{}, 2);
  EXPECT_TRUE(table.IsDuplicate(0, 1));
  EXPECT_TRUE(table.IsDuplicate(0, 2));
  EXPECT_FALSE(table.IsDuplicate(0, 4));
}

TEST(ClientSessionTableTest, EvictionDropsRepliesButKeepsDedup) {
  ClientSessionTable table;
  app::Response r;
  r.result = {42};
  table.Record(0, 1, r, /*height=*/1);
  table.Record(0, 2, r, /*height=*/10);
  ASSERT_NE(table.Lookup(0, 1), nullptr);
  EXPECT_EQ(table.cached_replies(), 2u);

  table.EvictUpTo(/*height=*/5);
  EXPECT_EQ(table.Lookup(0, 1), nullptr);   // Evicted body...
  EXPECT_TRUE(table.IsDuplicate(0, 1));     // ...but still a duplicate.
  ASSERT_NE(table.Lookup(0, 2), nullptr);   // Newer reply retained.
  EXPECT_EQ(table.cached_replies(), 1u);
}

// --------------------------------------------------------- CommitPipeline

TEST(CommitPipelineTest, ExecutesEachRequestExactlyOnce) {
  CommitPipeline pipeline(/*replica_id=*/0);
  pipeline.SetService(std::make_unique<app::KvService>(64));

  auto replies =
      pipeline.Deliver(MakeBlock(1, {MakeTx(0, 1), MakeTx(0, 2)}));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->entries.size(), 2u);
  EXPECT_FALSE(replies[0]->entries[0].duplicate);
  EXPECT_EQ(pipeline.stats().executed, 2);

  // The same requests committed again in a later block (the double-commit
  // a complaint resubmission can produce): executed once, replied from
  // cache with the identical result digest.
  auto dup_replies =
      pipeline.Deliver(MakeBlock(2, {MakeTx(0, 1), MakeTx(0, 2)}));
  ASSERT_EQ(dup_replies.size(), 1u);
  EXPECT_TRUE(dup_replies[0]->entries[0].duplicate);
  EXPECT_EQ(dup_replies[0]->entries[0].result_digest,
            replies[0]->entries[0].result_digest);
  EXPECT_EQ(pipeline.stats().executed, 2);
  EXPECT_EQ(pipeline.stats().duplicates_suppressed, 2);
  EXPECT_EQ(pipeline.service().applied_count(), 2);
}

TEST(CommitPipelineTest, DuplicateExecutionWouldDivergeWithoutDedup) {
  // The scenario dedup protects against: a Put re-executed on replay
  // would return the *new* previous value, diverging from the original
  // reply. The pipeline must return the cached original instead.
  CommitPipeline pipeline(/*replica_id=*/0);
  pipeline.SetService(std::make_unique<app::KvService>(64));

  types::Transaction put = MakeTx(0, 1, app::kv::EncodePut(5, 100));
  auto first = pipeline.Deliver(MakeBlock(1, {put}));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(app::kv::DecodeValue(first[0]->entries[0].result), 0u);

  auto replay = pipeline.Deliver(MakeBlock(2, {put}));
  // A re-execution would have produced previous=100; the cache returns 0.
  EXPECT_EQ(app::kv::DecodeValue(replay[0]->entries[0].result), 0u);
  EXPECT_EQ(replay[0]->entries[0].result_digest,
            first[0]->entries[0].result_digest);
}

TEST(CommitPipelineTest, GroupsRepliesByPool) {
  CommitPipeline pipeline(/*replica_id=*/3);
  auto replies = pipeline.Deliver(
      MakeBlock(1, {MakeTx(0, 1), MakeTx(2, 1), MakeTx(0, 2)}));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0]->pool, 0u);
  EXPECT_EQ(replies[0]->entries.size(), 2u);
  EXPECT_EQ(replies[1]->pool, 2u);
  EXPECT_EQ(replies[1]->entries.size(), 1u);
  EXPECT_EQ(replies[0]->replica, 3u);
  EXPECT_EQ(replies[0]->n, 1);
}

TEST(CommitPipelineTest, CheckpointEvictsOldRepliesDeterministically) {
  CommitPipeline pipeline(/*replica_id=*/0, /*checkpoint_interval=*/4,
                          /*reply_retain_blocks=*/4);
  uint64_t seq = 0;
  for (types::SeqNum n = 1; n <= 12; ++n) {
    pipeline.Deliver(MakeBlock(n, {MakeTx(0, ++seq)}));
  }
  EXPECT_EQ(pipeline.stats().checkpoints, 3);
  // Replies from blocks <= 8 (last checkpoint 12, retain 4) are evicted.
  EXPECT_EQ(pipeline.sessions().Lookup(0, 1), nullptr);
  EXPECT_NE(pipeline.sessions().Lookup(0, 12), nullptr);
  // Dedup metadata survives eviction; a replay is answered as kStaleDup.
  auto replies = pipeline.Deliver(MakeBlock(13, {MakeTx(0, 1)}));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0]->entries[0].duplicate);
  EXPECT_EQ(replies[0]->entries[0].status,
            static_cast<uint8_t>(app::ExecStatus::kStaleDup));
  EXPECT_EQ(pipeline.stats().executed, 13 - 1);
}

TEST(CommitPipelineTest, ReplyForServesComplaintRetransmissions) {
  CommitPipeline pipeline(/*replica_id=*/1);
  pipeline.SetService(std::make_unique<app::KvService>(64));
  types::Transaction put = MakeTx(0, 7, app::kv::EncodePut(9, 900));
  auto original = pipeline.Deliver(MakeBlock(1, {put}));

  auto reply = pipeline.ReplyFor(put, /*v=*/2);
  ASSERT_EQ(reply->entries.size(), 1u);
  EXPECT_TRUE(reply->entries[0].duplicate);
  EXPECT_EQ(reply->entries[0].result_digest,
            original[0]->entries[0].result_digest);
  EXPECT_EQ(reply->n, 1);  // Height it originally executed at.
}

// -------------------------------------------- replica session integration

/// Drives a real 4-replica PrestigeBFT cluster and checks that duplicate
/// client submissions (retransmission-shaped: same (pool, client_seq))
/// execute exactly once on every replica.
TEST(ReplicaSessionIntegrationTest, FlakyLinksExecuteExactlyOnce) {
  const harness::ScenarioSpec* spec = harness::FindScenario("flaky-links");
  ASSERT_NE(spec, nullptr);

  PrestigeConfig config;
  config.n = spec->n;
  config.batch_size = 100;
  config.batch_wait = Millis(2);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);

  harness::WorkloadOptions workload;
  workload.num_pools = 2;
  workload.clients_per_pool = 25;
  workload.client_timeout = Millis(600);
  workload.seed = 5;

  const auto result =
      harness::RunScenarioSeed<PrestigeReplica, PrestigeConfig>(
          *spec, config, workload);
  ASSERT_TRUE(result.safety_ok) << result.violation;
  EXPECT_GT(result.committed, 0);
  // The invariant sweep (result.safety_ok) already enforced, per replica:
  //   executed + duplicates_suppressed == transactions in the chain
  // and cross-replica state-digest agreement — i.e. committed == applied
  // with zero double-executes even under lossy links that force client
  // retransmissions and complaint resubmissions.
  EXPECT_EQ(result.result_mismatches, 0);
  EXPECT_GT(result.executed, 0);
}

}  // namespace
}  // namespace core
}  // namespace prestige
