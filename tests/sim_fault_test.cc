// Tests for the fault-injection layer (sim/fault.h + network wiring) and
// the declarative scenario engine (harness/scenario*.h): partition / heal
// delivery semantics, drop / duplicate / reorder determinism under a fixed
// seed, and byte-identical metrics for repeated (ScenarioSpec, seed) runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/replica.h"
#include "harness/cluster.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"
#include "sim/actor.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace prestige {
namespace sim {
namespace {

using util::Millis;
using util::Seconds;

struct TestMessage : public NetMessage {
  explicit TestMessage(size_t size = 100, uint64_t tag = 0)
      : size_(size), tag_(tag) {}
  size_t WireSize() const override { return size_; }
  int NumSigVerifies() const override { return 0; }
  const char* Name() const override { return "TestMessage"; }
  size_t size_;
  uint64_t tag_;
};

class RecordingActor : public Actor {
 public:
  void OnMessage(ActorId from, const MessagePtr& msg) override {
    deliveries.push_back({Now(), from, msg});
  }
  struct Delivery {
    util::TimeMicros at;
    ActorId from;
    MessagePtr msg;
  };
  std::vector<Delivery> deliveries;
};

class FaultNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(7);
    net_ = std::make_unique<Network>(sim_.get(), LatencyModel::Fixed(1.0),
                                     CostModel{});
    for (auto& actor : actors_) {
      sim_->AddActor(&actor);
      actor.AttachNetwork(net_.get());
    }
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  RecordingActor actors_[5];
};

// ------------------------------------------------------------- partitions

TEST_F(FaultNetworkTest, PartitionSeversCrossGroupBothDirections) {
  net_->fault_plane().Partition({{0, 1}, {2, 3}});
  net_->Send(0, 2, std::make_shared<TestMessage>());
  net_->Send(2, 0, std::make_shared<TestMessage>());
  net_->Send(0, 1, std::make_shared<TestMessage>());  // Same group: flows.
  net_->Send(3, 2, std::make_shared<TestMessage>());  // Same group: flows.
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[2].deliveries.empty() || actors_[2].deliveries[0].from == 3);
  EXPECT_TRUE(actors_[0].deliveries.empty());
  EXPECT_EQ(actors_[1].deliveries.size(), 1u);
  EXPECT_EQ(actors_[2].deliveries.size(), 1u);
  EXPECT_EQ(net_->stats().messages_cut, 2u);
  EXPECT_EQ(net_->stats().messages_dropped, 2u);
}

TEST_F(FaultNetworkTest, UnlistedActorsAreUnrestricted) {
  // Actor 4 (a "client") is in no group: it reaches both sides and both
  // sides reach it.
  net_->fault_plane().Partition({{0, 1}, {2, 3}});
  net_->Send(4, 0, std::make_shared<TestMessage>());
  net_->Send(4, 2, std::make_shared<TestMessage>());
  net_->Send(0, 4, std::make_shared<TestMessage>());
  net_->Send(2, 4, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_EQ(actors_[0].deliveries.size(), 1u);
  EXPECT_EQ(actors_[2].deliveries.size(), 1u);
  EXPECT_EQ(actors_[4].deliveries.size(), 2u);
  EXPECT_EQ(net_->stats().messages_cut, 0u);
}

TEST_F(FaultNetworkTest, HealRestoresDelivery) {
  net_->fault_plane().Partition({{0}, {1}});
  net_->Send(0, 1, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());

  net_->fault_plane().Heal();
  net_->Send(0, 1, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(20));
  EXPECT_EQ(actors_[1].deliveries.size(), 1u);
}

// ------------------------------------------------------------ link faults

TEST_F(FaultNetworkTest, DropFaultLosesRoughlyThatFraction) {
  net_->fault_plane().SetLinkFault(0, 1, LinkFault::Lossy(0.5));
  for (int i = 0; i < 1000; ++i) {
    net_->Send(0, 1, std::make_shared<TestMessage>(10));
  }
  sim_->RunUntil(Seconds(10));
  EXPECT_GT(actors_[1].deliveries.size(), 350u);
  EXPECT_LT(actors_[1].deliveries.size(), 650u);
  EXPECT_EQ(net_->stats().messages_fault_dropped,
            1000u - actors_[1].deliveries.size());
}

TEST_F(FaultNetworkTest, FaultIsPerDirectedLink) {
  net_->fault_plane().SetLinkFault(0, 1, LinkFault::Lossy(1.0));
  net_->Send(0, 1, std::make_shared<TestMessage>());
  net_->Send(1, 0, std::make_shared<TestMessage>());  // Reverse unaffected.
  net_->Send(0, 2, std::make_shared<TestMessage>());  // Other link clean.
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());
  EXPECT_EQ(actors_[0].deliveries.size(), 1u);
  EXPECT_EQ(actors_[2].deliveries.size(), 1u);
}

TEST_F(FaultNetworkTest, DefaultFaultAppliesWithPerLinkOverride) {
  net_->fault_plane().SetDefaultLinkFault(LinkFault::Lossy(1.0));
  net_->fault_plane().SetLinkFault(0, 2, LinkFault{});  // Clean override.
  net_->Send(0, 1, std::make_shared<TestMessage>());
  net_->Send(0, 2, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());
  EXPECT_EQ(actors_[2].deliveries.size(), 1u);
}

TEST_F(FaultNetworkTest, DuplicateFaultDeliversExtraCopies) {
  LinkFault fault;
  fault.duplicate = 1.0;  // Every message duplicated.
  net_->fault_plane().SetLinkFault(0, 1, fault);
  for (int i = 0; i < 10; ++i) {
    net_->Send(0, 1, std::make_shared<TestMessage>(10));
  }
  sim_->RunUntil(Seconds(1));
  EXPECT_EQ(actors_[1].deliveries.size(), 20u);
  EXPECT_EQ(net_->stats().messages_duplicated, 10u);
}

TEST_F(FaultNetworkTest, ExtraDelaySlowsTheLink) {
  net_->fault_plane().SetLinkFault(0, 1, LinkFault::Slow(Millis(50)));
  net_->Send(0, 1, std::make_shared<TestMessage>(10));
  net_->Send(0, 2, std::make_shared<TestMessage>(10));
  sim_->RunUntil(Seconds(1));
  ASSERT_EQ(actors_[1].deliveries.size(), 1u);
  ASSERT_EQ(actors_[2].deliveries.size(), 1u);
  EXPECT_GE(actors_[1].deliveries[0].at,
            actors_[2].deliveries[0].at + Millis(49));
}

TEST_F(FaultNetworkTest, ReorderFaultOvertakesLaterTraffic) {
  LinkFault fault;
  fault.reorder = 0.3;
  fault.reorder_window = Millis(20);
  net_->fault_plane().SetLinkFault(0, 1, fault);
  for (uint64_t i = 0; i < 50; ++i) {
    net_->Send(0, 1, std::make_shared<TestMessage>(10, i));
  }
  sim_->RunUntil(Seconds(1));
  ASSERT_EQ(actors_[1].deliveries.size(), 50u);
  EXPECT_GT(net_->stats().messages_reordered, 0u);
  // At least one message must have been overtaken: the tag sequence as
  // delivered is not sorted.
  std::vector<uint64_t> tags;
  for (const auto& d : actors_[1].deliveries) {
    tags.push_back(static_cast<const TestMessage*>(d.msg.get())->tag_);
  }
  EXPECT_FALSE(std::is_sorted(tags.begin(), tags.end()));
}

// ----------------------------------------------------------- determinism

std::vector<util::TimeMicros> RunFaultedSequence(uint64_t fault_seed) {
  Simulator sim(42);
  Network net(&sim, LatencyModel::Normal(5.0, 2.0), CostModel{});
  RecordingActor a, b;
  sim.AddActor(&a);
  sim.AddActor(&b);
  a.AttachNetwork(&net);
  b.AttachNetwork(&net);
  net.fault_plane().Seed(fault_seed);
  net.fault_plane().SetDefaultLinkFault(LinkFault::Flaky(0.2, 0.1, 0.2));
  for (int i = 0; i < 200; ++i) {
    net.Send(0, 1, std::make_shared<TestMessage>(100 + i));
  }
  sim.RunUntil(Seconds(1));
  std::vector<util::TimeMicros> times;
  for (const auto& d : b.deliveries) times.push_back(d.at);
  return times;
}

TEST(FaultDeterminismTest, SameSeedSameFaults) {
  EXPECT_EQ(RunFaultedSequence(5), RunFaultedSequence(5));
  EXPECT_NE(RunFaultedSequence(5), RunFaultedSequence(6));
}

TEST(FaultDeterminismTest, UnfaultedRunsMatchPreFaultPlaneBehaviour) {
  // Configuring and then fully clearing the plane must not perturb the
  // latency RNG stream: delivery times equal a run that never touched it.
  auto run = [](bool touch_plane) {
    Simulator sim(11);
    Network net(&sim, LatencyModel::Normal(5.0, 2.0), CostModel{});
    RecordingActor a, b;
    sim.AddActor(&a);
    sim.AddActor(&b);
    a.AttachNetwork(&net);
    b.AttachNetwork(&net);
    if (touch_plane) {
      net.fault_plane().SetDefaultLinkFault(LinkFault::Lossy(0.9));
      net.fault_plane().Partition({{0}, {1}});
      net.fault_plane().ClearAllLinkFaults();
      net.fault_plane().Heal();
    }
    for (int i = 0; i < 100; ++i) {
      net.Send(0, 1, std::make_shared<TestMessage>(100));
    }
    sim.RunUntil(Seconds(1));
    std::vector<util::TimeMicros> times;
    for (const auto& d : b.deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace sim

// --------------------------------------------------------- scenario engine

namespace harness {
namespace {

using util::Millis;
using util::Seconds;

/// A small but eventful spec: degraded links, a minority partition, heal.
ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "test-small";
  spec.n = 4;

  Phase warmup;
  warmup.name = "warmup";
  warmup.duration = Millis(500);
  spec.phases.push_back(warmup);

  Phase flaky;
  flaky.name = "flaky";
  flaky.duration = Millis(500);
  flaky.set_link_faults = true;
  flaky.default_link_fault = sim::LinkFault::Flaky(0.05, 0.02, 0.10);
  spec.phases.push_back(flaky);

  Phase split;
  split.name = "split";
  split.duration = Seconds(1);
  split.set_partition = true;
  split.set_link_faults = true;  // Links clean again.
  split.partition = {{0, 1, 2}, {3}};
  spec.phases.push_back(split);

  Phase heal;
  heal.name = "heal";
  heal.duration = Seconds(1);
  heal.set_partition = true;  // Empty groups = heal.
  spec.phases.push_back(heal);
  return spec;
}

WorkloadOptions SmallWorkload(uint64_t seed) {
  WorkloadOptions w;
  w.num_pools = 2;
  w.clients_per_pool = 25;
  w.seed = seed;
  return w;
}

core::PrestigeConfig SmallConfig() {
  core::PrestigeConfig config;
  config.batch_size = 100;
  return config;
}

TEST(ScenarioRunnerTest, SameSpecAndSeedProduceByteIdenticalMetrics) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioSeedResult a =
      RunScenarioSeed<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SmallConfig(), SmallWorkload(3));
  const ScenarioSeedResult b =
      RunScenarioSeed<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SmallConfig(), SmallWorkload(3));
  EXPECT_EQ(SeedResultJson(a), SeedResultJson(b));

  const ScenarioSeedResult c =
      RunScenarioSeed<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SmallConfig(), SmallWorkload(4));
  EXPECT_NE(SeedResultJson(a), SeedResultJson(c));
}

TEST(ScenarioRunnerTest, MinorityPartitionStallsOnlyTheMinority) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioSeedResult r =
      RunScenarioSeed<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SmallConfig(), SmallWorkload(3));
  ASSERT_EQ(r.phases.size(), 4u);
  EXPECT_TRUE(r.safety_ok) << r.violation;
  // The majority keeps committing through the split...
  EXPECT_GT(r.phases[2].committed, 0);
  // ...while the cut-off minority replica falls behind...
  EXPECT_LT(r.phases[2].safety.min_height, r.phases[2].safety.max_height);
  // ...and catches up after the heal.
  EXPECT_GT(r.phases[3].safety.min_height, r.phases[2].safety.min_height);
}

TEST(ScenarioRunnerTest, SweepAggregatesEverySeed) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioAggregate agg =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SmallConfig(), SmallWorkload(0), /*base_seed=*/1,
          /*num_seeds=*/3);
  EXPECT_EQ(agg.num_seeds, 3u);
  ASSERT_EQ(agg.seeds.size(), 3u);
  EXPECT_TRUE(agg.all_safe);
  EXPECT_EQ(agg.seeds[0].seed, 1u);
  EXPECT_EQ(agg.seeds[2].seed, 3u);
  EXPECT_EQ(agg.committed_total,
            agg.seeds[0].committed + agg.seeds[1].committed +
                agg.seeds[2].committed);
  EXPECT_GE(agg.tps_max, agg.tps_mean);
  EXPECT_GE(agg.tps_mean, agg.tps_min);
}

TEST(ScenarioLibraryTest, NamedScenariosResolve) {
  EXPECT_GE(NamedScenarios().size(), 5u);
  for (const char* name :
       {"partition-minority", "partition-leader", "flaky-links", "churn",
        "partition-during-view-change"}) {
    const ScenarioSpec* spec = FindScenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->phases.empty()) << name;
    EXPECT_GT(spec->TotalDuration(), 0) << name;
  }
  EXPECT_EQ(FindScenario("no-such-scenario"), nullptr);
}

}  // namespace
}  // namespace harness
}  // namespace prestige
