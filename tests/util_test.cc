// Unit tests for src/util: Status/Result, Rng, stats, hex, time.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hex.h"
#include "util/random.h"
#include "util/result.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/time.h"

namespace prestige {
namespace util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::Corruption("bad block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad block");
  EXPECT_EQ(s.ToString(), "Corruption: bad block");
}

TEST(StatusTest, AllPredicatesMatchTheirFactory) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidSignature("").IsInvalidSignature());
  EXPECT_TRUE(Status::StaleView("").IsStaleView());
  EXPECT_TRUE(Status::InvalidProtocol("").IsInvalidProtocol());
  EXPECT_TRUE(Status::TimedOut("").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Corruption("a"));
}

Status FailingHelper() { return Status::TimedOut("inner"); }

Status PropagatingHelper() {
  PRESTIGE_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(PropagatingHelper().IsTimedOut());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextNormal(10.0, 5.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 5.0, 0.2);
}

TEST(RngTest, ExponentialMatchesMean) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextExponential(3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);
}

TEST(RngTest, GeometricMatchesMeanModerateP) {
  Rng rng(19);
  OnlineStats stats;
  const double p = 1.0 / 64.0;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.NextGeometricTrials(p));
  }
  EXPECT_NEAR(stats.mean(), 64.0, 2.5);
}

TEST(RngTest, GeometricTinyPDoesNotOverflow) {
  Rng rng(23);
  const double p = std::pow(2.0, -64);
  for (int i = 0; i < 100; ++i) {
    const double trials = rng.NextGeometricTrials(p);
    EXPECT_GE(trials, 1.0);
    EXPECT_LE(trials, 4.7e18);
  }
}

TEST(RngTest, GeometricPOneAlwaysOneTrial) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextGeometricTrials(1.0), 1.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child's next values differ from parent's next values.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

// ----------------------------------------------------------------- Stats

TEST(OnlineStatsTest, MeanAndPopulationStddev) {
  // The paper's Appendix C example: P = {1,2,3,4,5} -> mu=3, sigma=1.41.
  OnlineStats s;
  for (int v : {1, 2, 3, 4, 5}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.4142, 1e-3);
}

TEST(OnlineStatsTest, PaperExampleSixElements) {
  // P = {1,2,3,4,5,5} -> mu=3.33, sigma=1.49 (Fig. 4c row 3).
  OnlineStats s;
  for (int v : {1, 2, 3, 4, 5, 5}) s.Add(v);
  EXPECT_NEAR(s.mean(), 3.333, 1e-3);
  EXPECT_NEAR(s.stddev(), 1.49, 0.01);
}

TEST(OnlineStatsTest, PaperExampleFourteenElements) {
  // P = {1,2,3,4,5 x10} -> mu=4.28, sigma=1.27 (Appendix C example 5).
  OnlineStats s;
  for (int v : {1, 2, 3, 4}) s.Add(v);
  for (int i = 0; i < 10; ++i) s.Add(5);
  EXPECT_NEAR(s.mean(), 4.2857, 1e-3);
  EXPECT_NEAR(s.stddev(), 1.2778, 1e-3);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, ResetClears) {
  OnlineStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, MeanMinMax) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.02);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, EmptySafe) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(WindowedCounterTest, BucketsByTime) {
  WindowedCounter wc(Seconds(1));
  wc.Add(Millis(100));
  wc.Add(Millis(900));
  wc.Add(Millis(1500));
  ASSERT_EQ(wc.buckets().size(), 2u);
  EXPECT_EQ(wc.buckets()[0], 2);
  EXPECT_EQ(wc.buckets()[1], 1);
  EXPECT_EQ(wc.Total(), 3);
}

TEST(WindowedCounterTest, AvailabilityFraction) {
  WindowedCounter wc(Seconds(1));
  wc.Add(Millis(500));   // window 0 live
  wc.Add(Millis(2500));  // window 2 live; window 1 dead
  EXPECT_NEAR(wc.AvailableFraction(Seconds(4)), 0.5, 1e-9);
}

TEST(WindowedCounterTest, ThresholdedAvailability) {
  WindowedCounter wc(Seconds(1));
  wc.Add(Millis(100), 5);
  wc.Add(Millis(1100), 1);
  EXPECT_NEAR(wc.AvailableFraction(Seconds(2), /*threshold=*/3), 0.5, 1e-9);
}

// ------------------------------------------------------------------- Hex

TEST(HexTest, RoundTrip) {
  std::vector<uint8_t> data = {0x00, 0xff, 0x10, 0xab};
  const std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "00ff10ab");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodeUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], 0xde);
  EXPECT_EQ((*decoded)[3], 0xef);
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_TRUE(HexDecode("abc").status().IsInvalidArgument());
}

TEST(HexTest, RejectsNonHex) {
  EXPECT_TRUE(HexDecode("zz").status().IsInvalidArgument());
}

// ------------------------------------------------------------------ Time

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Millis(5), 5000);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(ToMillis(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(2500000), 2.5);
}

}  // namespace
}  // namespace util
}  // namespace prestige
