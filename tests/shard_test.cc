// Tests for the sharding layer: shard::Router unit behaviour, the
// multi-group harness wiring, the cross-group safety sweep, and the
// sharded open-loop runner on the deterministic simulator.

#include <gtest/gtest.h>

#include <vector>

#include "app/kv_service.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "harness/invariants.h"
#include "harness/sharded_runner.h"
#include "shard/router.h"
#include "types/transaction.h"

namespace prestige {
namespace shard {
namespace {

using core::PrestigeConfig;
using core::PrestigeReplica;
using harness::WorkloadOptions;
using util::Millis;
using util::Seconds;

PrestigeConfig SmallConfig(uint32_t n = 4) {
  PrestigeConfig config;
  config.n = n;
  config.batch_size = 100;
  config.batch_wait = Millis(2);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);
  config.election_timeout = Millis(300);
  config.complaint_wait = Millis(200);
  return config;
}

// --------------------------------------------------------------- Router

TEST(RouterTest, AssignmentIsAFunctionOfKeyAndGeometry) {
  const Router a(8);
  const Router b(8);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.GroupForKey(key), b.GroupForKey(key));
    EXPECT_LT(a.GroupForKey(key), 8u);
  }
  // A different salt is a different partition (some key must move).
  const Router salted(8, /*salt=*/12345);
  bool any_moved = false;
  for (uint64_t key = 0; key < 1000 && !any_moved; ++key) {
    any_moved = salted.GroupForKey(key) != a.GroupForKey(key);
  }
  EXPECT_TRUE(any_moved);
}

TEST(RouterTest, SpreadsKeysRoughlyEvenly) {
  const uint32_t groups = 8;
  const uint64_t keys = 100000;
  const Router router(groups);
  std::vector<int64_t> per_group(groups, 0);
  for (uint64_t key = 0; key < keys; ++key) {
    ++per_group[router.GroupForKey(key)];
  }
  const double mean = static_cast<double>(keys) / groups;
  for (uint32_t g = 0; g < groups; ++g) {
    // An avalanche hash over 100k keys lands far inside these bounds;
    // only a broken mix (e.g. modulo on raw sequential keys with a
    // stripe-aligned group count) escapes them.
    EXPECT_GT(per_group[g], mean * 0.8) << "group " << g << " starved";
    EXPECT_LT(per_group[g], mean * 1.2) << "group " << g << " overloaded";
  }
}

TEST(RouterTest, ZeroGroupsClampsToOne) {
  const Router router(0);
  EXPECT_EQ(router.num_groups(), 1u);
  EXPECT_EQ(router.GroupForKey(42), 0u);
}

TEST(RouterTest, RoutingKeyDecodesKvCommandsAndFallsBackToFingerprint) {
  types::Transaction tx;
  tx.command = app::kv::EncodePut(777, 1);
  EXPECT_EQ(Router::RoutingKey(tx), 777u);

  tx.command = app::kv::EncodeGet(424242);
  EXPECT_EQ(Router::RoutingKey(tx), 424242u);

  tx.command.clear();
  tx.fingerprint = 0xdeadbeef;
  EXPECT_EQ(Router::RoutingKey(tx), 0xdeadbeefu);

  // Unknown opcodes are opaque: route on the fingerprint, not on bytes
  // that merely resemble a key.
  tx.command = {0x7f, 1, 2, 3};
  EXPECT_EQ(Router::RoutingKey(tx), 0xdeadbeefu);
}

TEST(RouterTest, VerifyRoutingAssignmentCatchesMisplacedAndMisstamped) {
  const Router router(4);
  types::Transaction tx;
  tx.command = app::kv::EncodePut(99, 0);
  const types::GroupId owner = router.GroupForTransaction(tx);
  tx.group = owner;

  std::string violation;
  EXPECT_TRUE(VerifyRoutingAssignment(router, owner, tx, &violation));

  // Committed in a group the router does not assign the key to.
  const types::GroupId wrong = (owner + 1) % 4;
  EXPECT_FALSE(VerifyRoutingAssignment(router, wrong, tx, &violation));
  EXPECT_NE(violation.find("router assigns"), std::string::npos);

  // Right group, but the digest-covered stamp disagrees (a re-homed
  // transaction would look exactly like this).
  tx.group = wrong;
  EXPECT_FALSE(VerifyRoutingAssignment(router, owner, tx, &violation));
  EXPECT_NE(violation.find("stamped"), std::string::npos);
}

// ------------------------------------------------- multi-group deployments

WorkloadOptions ShardedWorkload(uint32_t groups, uint64_t seed = 1) {
  WorkloadOptions w;
  w.num_pools = 2;  // Per group.
  w.payload_size = 32;
  w.client_timeout = Millis(800);
  w.seed = seed;
  w.kv_key_space = 4096;
  w.num_groups = groups;
  w.open_loop = true;
  w.arrival.kind = workload::ArrivalKind::kPoisson;
  w.arrival.rate_per_sec = 2000.0;  // Per pool.
  w.logical_sessions = 100000;
  w.zipf_theta = 0.5;
  w.max_outstanding = 256;
  w.max_backlog = 1024;
  w.slo_ms = 800.0;
  return w;
}

TEST(ShardedClusterTest, EveryGroupCommitsAndSafetySweepPasses) {
  const auto result = harness::RunShardedSim<PrestigeReplica, PrestigeConfig>(
      SmallConfig(), ShardedWorkload(/*groups=*/2), Seconds(2),
      [] { return std::make_unique<app::KvService>(4096); });

  EXPECT_TRUE(result.safety_ok) << result.violation;
  ASSERT_EQ(result.groups, 2u);
  ASSERT_EQ(result.per_group.size(), 2u);
  int64_t per_group_sum = 0;
  for (uint32_t g = 0; g < 2; ++g) {
    EXPECT_GT(result.per_group[g].committed, 100)
        << "group " << g << " barely committed";
    per_group_sum += result.per_group[g].committed;
  }
  EXPECT_EQ(result.committed, per_group_sum);
  EXPECT_GT(result.arrivals, 0);
  EXPECT_GT(result.routed_txs, 0);
  EXPECT_GT(result.distinct_keys, 1);
  EXPECT_EQ(result.result_mismatches, 0);
}

TEST(ShardedClusterTest, ShardedSimRunIsDeterministicPerSeed) {
  const auto a = harness::RunShardedSim<PrestigeReplica, PrestigeConfig>(
      SmallConfig(), ShardedWorkload(2, /*seed=*/9), Seconds(1));
  const auto b = harness::RunShardedSim<PrestigeReplica, PrestigeConfig>(
      SmallConfig(), ShardedWorkload(2, /*seed=*/9), Seconds(1));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.distinct_keys, b.distinct_keys);
  ASSERT_EQ(a.per_group.size(), b.per_group.size());
  for (size_t g = 0; g < a.per_group.size(); ++g) {
    EXPECT_EQ(a.per_group[g].committed, b.per_group[g].committed);
  }
}

TEST(ShardedClusterTest, GroupsRunIndependentLeadersAndViews) {
  // Two groups on one simulator: each elects its own leader (replica 0 of
  // its own slice under stable views) and neither's view depends on the
  // other's existence.
  harness::Cluster<PrestigeReplica, PrestigeConfig> cluster(
      SmallConfig(), ShardedWorkload(2));
  cluster.Start();
  cluster.RunFor(Seconds(1));

  ASSERT_EQ(cluster.num_groups(), 2u);
  ASSERT_EQ(cluster.num_replicas(), 8u);
  for (uint32_t g = 0; g < 2; ++g) {
    EXPECT_EQ(cluster.group_replica(g, 0).view(), 1u)
        << "group " << g << " lost its stable view";
    EXPECT_TRUE(cluster.group_replica(g, 0).IsLeader());
  }
}

TEST(ShardedClusterTest, ClosedLoopShardedWorkloadRoutesCleanly) {
  // The closed-loop ClientPool also rejection-samples keys per group; the
  // sweep must come back clean for it too.
  WorkloadOptions w = ShardedWorkload(2, /*seed=*/3);
  w.open_loop = false;
  w.clients_per_pool = 30;
  harness::Cluster<PrestigeReplica, PrestigeConfig> cluster(SmallConfig(), w);
  cluster.Start();
  cluster.RunFor(Seconds(1));

  const Router router(2);
  const auto report = harness::CheckShardedSafety(cluster, router);
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(report.routed_txs, 0);
  EXPECT_GT(cluster.GroupCommitted(0), 0);
  EXPECT_GT(cluster.GroupCommitted(1), 0);
}

TEST(ShardedClusterTest, SingleGroupPercentileMergesEveryPool) {
  // Regression for the pool-0-only percentile: the merged p100 must
  // dominate every pool's own maximum, not just pool 0's.
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 20;
  w.seed = 5;
  harness::Cluster<PrestigeReplica, PrestigeConfig> cluster(SmallConfig(), w);
  cluster.Start();
  cluster.RunFor(Seconds(2));

  const double merged_max = cluster.LatencyPercentileMs(100);
  for (uint32_t p = 0; p < cluster.num_pools(); ++p) {
    EXPECT_GE(merged_max, cluster.pool(p).latencies().Max())
        << "pool " << p << "'s tail is missing from the merged percentile";
  }
  EXPECT_GT(merged_max, 0.0);
}

}  // namespace
}  // namespace shard
}  // namespace prestige
