// Integration tests for PrestigeBFT: end-to-end clusters on the simulator.
// Covers normal-operation replication, safety (identical chains), active
// view changes under leader crash / quiet / equivocation, the timing
// policy, repeated-VC attacks and reputation suppression, and refresh.

#include <gtest/gtest.h>

#include "app/kv_service.h"
#include "core/replica.h"
#include "harness/cluster.h"

namespace prestige {
namespace core {
namespace {

using harness::Cluster;
using harness::WorkloadOptions;
using util::Millis;
using util::Seconds;

using PrestigeCluster = Cluster<PrestigeReplica, PrestigeConfig>;

PrestigeConfig SmallConfig(uint32_t n = 4) {
  PrestigeConfig config;
  config.n = n;
  config.batch_size = 100;
  config.batch_wait = Millis(2);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);
  config.election_timeout = Millis(300);
  config.complaint_wait = Millis(200);
  return config;
}

WorkloadOptions SmallWorkload(uint64_t seed = 1) {
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 50;
  w.payload_size = 32;
  w.client_timeout = Millis(800);
  w.seed = seed;
  return w;
}

/// Asserts that every pair of replicas' tx chains agree block-for-block on
/// the common prefix (Theorem 3 / safety).
void ExpectConsistentChains(PrestigeCluster& cluster) {
  for (uint32_t i = 1; i < cluster.num_replicas(); ++i) {
    const auto& a = cluster.replica(0).store().tx_chain();
    const auto& b = cluster.replica(i).store().tx_chain();
    const size_t common = std::min(a.size(), b.size());
    for (size_t k = 0; k < common; ++k) {
      ASSERT_EQ(a[k].Digest(), b[k].Digest())
          << "chain divergence at block " << k << " on replica " << i;
    }
  }
}

// ------------------------------------------------------- normal operation

TEST(PrestigeIntegrationTest, CommitsUnderNormalOperation) {
  PrestigeCluster cluster(SmallConfig(), SmallWorkload());
  cluster.Start();
  cluster.RunFor(Seconds(3));

  EXPECT_GT(cluster.ClientCommitted(), 1000);
  EXPECT_GT(cluster.replica(0).metrics().committed_blocks, 5);
  // No view change should have occurred (Theorem 4: stable view under a
  // correct leader).
  EXPECT_EQ(cluster.replica(0).view(), 1);
  EXPECT_TRUE(cluster.replica(0).IsLeader());
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, AllReplicasApplySameState) {
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(7));
  cluster.InstallServices(
      [] { return std::make_unique<app::KvService>(256); });
  cluster.Start();
  cluster.RunFor(Seconds(3));

  const app::Service& reference = cluster.replica(0).service();
  EXPECT_GT(reference.applied_count(), 0);
  for (uint32_t i = 1; i < 4; ++i) {
    const app::Service& sm = cluster.replica(i).service();
    // Chains are prefix-consistent; the rolling digest is only comparable
    // between replicas that executed the same number of commands.
    if (sm.applied_count() == reference.applied_count()) {
      EXPECT_EQ(sm.StateDigest(), reference.StateDigest());
    }
  }
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, LatencyIsReasonable) {
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(3));
  cluster.Start();
  cluster.RunFor(Seconds(3));
  const double mean = cluster.MeanLatencyMs();
  EXPECT_GT(mean, 1.0);    // At least a couple network hops.
  EXPECT_LT(mean, 300.0);  // Far below any timeout.
}

TEST(PrestigeIntegrationTest, ThroughputScalesWithBatchSize) {
  auto run = [](size_t batch) {
    PrestigeConfig config = SmallConfig();
    config.batch_size = batch;
    WorkloadOptions w = SmallWorkload(11);
    w.num_pools = 8;
    w.clients_per_pool = 200;
    PrestigeCluster cluster(config, w);
    cluster.Start();
    cluster.RunFor(Seconds(3));
    return cluster.ClientCommitted();
  };
  const int64_t small = run(10);
  const int64_t large = run(400);
  EXPECT_GT(large, small);
}

// ------------------------------------------------------------ view change

TEST(PrestigeIntegrationTest, CrashedLeaderIsReplaced) {
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(5));
  cluster.Start();
  cluster.RunFor(Seconds(1));
  const int64_t before = cluster.ClientCommitted();
  EXPECT_GT(before, 0);

  cluster.SetReplicaDown(0, true);  // Kill the view-1 leader.
  cluster.RunFor(Seconds(5));

  // A new leader was elected in a higher view and commits resumed.
  types::View max_view = 0;
  int leaders = 0;
  for (uint32_t i = 1; i < 4; ++i) {
    max_view = std::max(max_view, cluster.replica(i).view());
    if (cluster.replica(i).IsLeader()) ++leaders;
  }
  EXPECT_GT(max_view, 1);
  EXPECT_EQ(leaders, 1);
  EXPECT_GT(cluster.ClientCommitted(), before);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, QuietLeaderIsReplaced) {
  // F2 applied to the initial leader mid-run.
  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[0] = types::FaultSpec::Quiet(Seconds(1));
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(9), faults);
  cluster.Start();
  cluster.RunFor(Seconds(6));

  int leaders = 0;
  for (uint32_t i = 1; i < 4; ++i) {
    if (cluster.replica(i).IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_GT(cluster.replica(1).view(), 1);
  // Commits resumed after the view change.
  const auto& timeline = cluster.replica(1).metrics().commit_timeline;
  ASSERT_GE(timeline.buckets().size(), 5u);
  EXPECT_GT(timeline.buckets().back(), 0);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, ElectedLeaderIsUpToDate) {
  // Optimistic responsiveness (P2): after the crash, the new leader's chain
  // must be at least as long as any honest replica's chain at crash time.
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(13));
  cluster.Start();
  cluster.RunFor(Seconds(1));
  std::vector<types::SeqNum> seqs;
  for (uint32_t i = 1; i < 4; ++i) {
    seqs.push_back(cluster.replica(i).store().LatestTxSeq());
  }
  const types::SeqNum max_seq = *std::max_element(seqs.begin(), seqs.end());
  cluster.SetReplicaDown(0, true);
  cluster.RunFor(Seconds(4));
  for (uint32_t i = 1; i < 4; ++i) {
    if (cluster.replica(i).IsLeader()) {
      EXPECT_GE(cluster.replica(i).store().LatestTxSeq(), max_seq);
    }
  }
}

TEST(PrestigeIntegrationTest, TimingPolicyRotatesLeadership) {
  PrestigeConfig config = SmallConfig();
  config.rotation_period = Seconds(1);  // Aggressive r1 for test speed.
  WorkloadOptions w = SmallWorkload(17);
  PrestigeCluster cluster(config, w);
  cluster.Start();
  cluster.RunFor(Seconds(8));

  // Several policy-driven view changes happened and throughput persisted.
  types::View max_view = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    max_view = std::max(max_view, cluster.replica(i).view());
  }
  EXPECT_GE(max_view, 4);
  EXPECT_GT(cluster.ClientCommitted(), 1000);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, EquivocatingFollowersDoNotBlockProgress) {
  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[3] = types::FaultSpec::Equivocate();
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(19), faults);
  cluster.Start();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.ClientCommitted(), 500);
  // The leader rejected the corrupted replies.
  EXPECT_GT(cluster.replica(0).metrics().invalid_messages, 0);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, QuietFollowerDoesNotTriggerViewChange) {
  // Theorem 4: under a correct leader no view change occurs, even with a
  // quiet (crash-like) follower.
  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[2] = types::FaultSpec::Quiet();
  PrestigeCluster cluster(SmallConfig(), SmallWorkload(21), faults);
  cluster.Start();
  cluster.RunFor(Seconds(4));
  EXPECT_EQ(cluster.replica(0).view(), 1);
  EXPECT_TRUE(cluster.replica(0).IsLeader());
  EXPECT_GT(cluster.ClientCommitted(), 500);
}

// --------------------------------------------------- reputation dynamics

TEST(PrestigeIntegrationTest, RepeatedVcAttackerAccumulatesPenalty) {
  PrestigeConfig config = SmallConfig();
  config.rotation_period = Seconds(1);  // Give attackers opportunities.
  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[3] = types::FaultSpec::RepeatedVc(
      types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet);
  WorkloadOptions w = SmallWorkload(23);
  PrestigeCluster cluster(config, w, faults);
  cluster.Start();
  cluster.RunFor(Seconds(12));

  // The attacker won elections early (its head start beats honest
  // courtesy delays while its penalty is low), and its penalty climbed at
  // least as high as any honest server's (honest penalties also drift up
  // under frequent rotation — the paper's Q4 — until refresh).
  const types::Penalty attacker_rp = cluster.replica(0).EffectiveRp(3);
  types::Penalty honest_max = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    honest_max =
        std::max(honest_max, cluster.replica(0).EffectiveRp(i));
  }
  EXPECT_GE(attacker_rp, honest_max);
  EXPECT_GT(attacker_rp, 1);
  EXPECT_GE(cluster.replica(3).metrics().elections_won, 1);
  // And the system still commits.
  const auto& timeline = cluster.replica(0).metrics().commit_timeline;
  ASSERT_GE(timeline.buckets().size(), 10u);
  int64_t late = 0;
  for (size_t i = timeline.buckets().size() - 4; i < timeline.buckets().size();
       ++i) {
    late += timeline.buckets()[i];
  }
  EXPECT_GT(late, 0);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, RealPowModeElectsLeader) {
  // End-to-end with actual SHA-256 puzzles (small penalties => cheap).
  PrestigeConfig config = SmallConfig();
  config.pow_mode = PowMode::kReal;
  config.pow.bits_per_unit = 4;
  PrestigeCluster cluster(config, SmallWorkload(29));
  cluster.Start();
  cluster.RunFor(Seconds(1));
  cluster.SetReplicaDown(0, true);
  cluster.RunFor(Seconds(5));
  int leaders = 0;
  for (uint32_t i = 1; i < 4; ++i) {
    if (cluster.replica(i).IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, LargerClusterCommitsAndHandlesCrash) {
  PrestigeConfig config = SmallConfig(7);
  WorkloadOptions w = SmallWorkload(31);
  PrestigeCluster cluster(config, w);
  cluster.Start();
  cluster.RunFor(Seconds(1));
  cluster.SetReplicaDown(0, true);
  cluster.RunFor(Seconds(5));
  int leaders = 0;
  for (uint32_t i = 1; i < 7; ++i) {
    if (cluster.replica(i).IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_GT(cluster.ClientCommitted(), 100);
  ExpectConsistentChains(cluster);
}

TEST(PrestigeIntegrationTest, DeterministicRuns) {
  auto run = [](uint64_t seed) {
    PrestigeCluster cluster(SmallConfig(), SmallWorkload(seed));
    cluster.Start();
    cluster.RunFor(Seconds(2));
    return std::make_pair(cluster.ClientCommitted(),
                          cluster.replica(0).store().LatestTxDigest());
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace core
}  // namespace prestige
