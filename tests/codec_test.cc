// Unit tests for the canonical encoder (types/codec.h) and the memoized
// block digests (ledger/digest_cache.h): byte-level round-trips, domain
// separation, and cache invalidation on block mutation.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/tx_block.h"
#include "ledger/vc_block.h"
#include "types/codec.h"
#include "types/transaction.h"

namespace prestige {
namespace types {
namespace {

// Minimal reader mirroring Encoder's wire format, so tests can round-trip
// encoded values instead of only comparing opaque byte strings.
class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t TakeU8() { return buf_[pos_++]; }
  uint32_t TakeU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(TakeU8()) << (i * 8);
    return v;
  }
  uint64_t TakeU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(TakeU8()) << (i * 8);
    return v;
  }
  int64_t TakeI64() { return static_cast<int64_t>(TakeU64()); }
  std::string TakeString() {
    const uint64_t len = TakeU64();
    std::string s(buf_.begin() + pos_, buf_.begin() + pos_ + len);
    pos_ += len;
    return s;
  }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- round-trips

TEST(EncoderTest, IntegersRoundTripLittleEndian) {
  Encoder enc("test");
  enc.PutU8(0xab).PutU32(0x01020304u).PutU64(0x1122334455667788ull).PutI64(-5);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.TakeString(), "test");  // Domain tag leads the encoding.
  EXPECT_EQ(dec.TakeU8(), 0xab);
  EXPECT_EQ(dec.TakeU32(), 0x01020304u);
  EXPECT_EQ(dec.TakeU64(), 0x1122334455667788ull);
  EXPECT_EQ(dec.TakeI64(), -5);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(EncoderTest, StringsAndBytesRoundTrip) {
  const std::vector<uint8_t> blob = {0x00, 0xff, 0x7f};
  Encoder enc("test");
  enc.PutString("hello").PutBytes(blob).PutString("");

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.TakeString(), "test");
  EXPECT_EQ(dec.TakeString(), "hello");
  EXPECT_EQ(dec.TakeU64(), blob.size());
  EXPECT_EQ(dec.TakeU8(), 0x00);
  EXPECT_EQ(dec.TakeU8(), 0xff);
  EXPECT_EQ(dec.TakeU8(), 0x7f);
  EXPECT_EQ(dec.TakeString(), "");
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(EncoderTest, DigestMatchesBytes) {
  Encoder a("test");
  a.PutU64(7);
  Encoder b("test");
  b.PutU64(7);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_EQ(a.Digest(), crypto::Sha256::Hash(a.bytes()));
}

// ------------------------------------------------------ domain separation

TEST(EncoderTest, IdenticalPayloadsHashDifferentlyAcrossDomains) {
  // Two message kinds carrying the same payload must never collide: a
  // signature over one could otherwise be replayed as the other.
  Encoder ord("ord");
  ord.PutI64(1).PutI64(1);
  Encoder cmt("cmt");
  cmt.PutI64(1).PutI64(1);
  EXPECT_NE(ord.Digest(), cmt.Digest());
}

TEST(EncoderTest, TagPayloadBoundaryIsUnambiguous) {
  // The length prefix prevents tag/payload concatenation ambiguity:
  // ("ab", "c") and ("a", "bc") serialize identical characters.
  Encoder a("ab");
  a.PutString("c");
  Encoder b("a");
  b.PutString("bc");
  EXPECT_NE(a.bytes(), b.bytes());
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(EncoderTest, ProtocolDigestHelpersAreDomainSeparated) {
  const crypto::Sha256Digest body{};
  EXPECT_NE(ledger::OrderingDigest(1, 1, body),
            ledger::CommitDigest(1, 1, body));
  EXPECT_NE(ledger::ConfDigest(1), ledger::VoteDigest(1, 0));
  EXPECT_NE(ledger::VcYesDigest(body), ledger::RefreshDigest(0, 1));
}

// ---------------------------------------- streaming-encoder equivalence

TEST(HashingEncoderTest, DigestMatchesMaterializingEncoder) {
  // The digest hot path streams bytes into SHA-256 without materializing
  // them; it must produce exactly the digest Encoder would.
  const std::vector<uint8_t> blob = {0x00, 0xff, 0x7f, 0x10};
  const crypto::Sha256Digest inner = crypto::Sha256::Hash(blob);

  Encoder enc("equiv");
  enc.PutU8(0xab)
      .PutU32(0x01020304u)
      .PutU64(0x1122334455667788ull)
      .PutI64(-5)
      .PutDigest(inner)
      .PutBytes(blob)
      .PutString("hello")
      .PutString("");

  HashingEncoder henc("equiv");
  henc.PutU8(0xab)
      .PutU32(0x01020304u)
      .PutU64(0x1122334455667788ull)
      .PutI64(-5)
      .PutDigest(inner)
      .PutBytes(blob)
      .PutString("hello")
      .PutString("");

  EXPECT_EQ(henc.Digest(), enc.Digest());
}

TEST(HashingEncoderTest, EmptyPayloadMatchesToo) {
  Encoder enc("tagonly");
  HashingEncoder henc("tagonly");
  EXPECT_EQ(henc.Digest(), enc.Digest());
}

// --------------------------------------------------- zero-length payloads
//
// Empty vectors/strings legally report data() == nullptr; both encoder
// sinks (Encoder::Append, Sha256::Update) must tolerate a (nullptr, 0)
// append without invoking UB (caught by UBSan as a nonnull violation in
// memcpy-backed sinks before the len == 0 guards).

TEST(EncoderTest, EmptyBytesAndStringsRoundTripThroughBothSinks) {
  const std::vector<uint8_t> empty;
  Encoder enc("empty");
  enc.PutBytes(empty).PutString(std::string()).PutString("");

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.TakeString(), "empty");
  EXPECT_EQ(dec.TakeU64(), 0u);  // PutBytes length prefix.
  EXPECT_EQ(dec.TakeString(), "");
  EXPECT_EQ(dec.TakeString(), "");
  EXPECT_EQ(dec.remaining(), 0u);

  HashingEncoder henc("empty");
  henc.PutBytes(empty).PutString(std::string()).PutString("");
  EXPECT_EQ(henc.Digest(), enc.Digest());
}

TEST(EncoderTest, EmptyCommandTransactionRoundTrips) {
  // A Transaction with an empty command payload is the synthetic-workload
  // default; its digest must be computable (PutBytes streams the empty
  // command into SHA-256) and distinct from a non-empty command.
  Transaction empty_cmd;
  empty_cmd.pool = 3;
  empty_cmd.client_seq = 9;
  empty_cmd.fingerprint = 0xfeed;
  ASSERT_TRUE(empty_cmd.command.empty());
  const crypto::Sha256Digest d1 = empty_cmd.Digest();
  EXPECT_EQ(d1, empty_cmd.Digest());  // Deterministic.

  Transaction with_cmd = empty_cmd;
  with_cmd.command = {0x01};
  EXPECT_NE(with_cmd.Digest(), d1);

  // Zero-length Sha256::Update calls leave the stream state untouched.
  crypto::Sha256 a;
  crypto::Sha256 b;
  a.Update(nullptr, 0);
  a.Update(std::vector<uint8_t>{});
  const uint8_t byte = 0x42;
  a.Update(&byte, 1);
  b.Update(&byte, 1);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(HashingEncoderTest, CharPointerTagMatchesStringTag) {
  // PutString(const char*) must serialize identically to the std::string
  // overload (it exists only to skip the temporary's allocation).
  Encoder a("t");
  a.PutString("payload");
  Encoder b("t");
  b.PutString(std::string("payload"));
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(EncoderTest, ReserveDoesNotChangeBytes) {
  Encoder plain("test");
  plain.PutU64(7).PutString("x");
  Encoder reserved("test", /*reserve_bytes=*/256);
  reserved.PutU64(7).PutString("x");
  EXPECT_EQ(plain.bytes(), reserved.bytes());
}

// ------------------------------------------------- digest-cache behaviour

Transaction MakeTx(uint64_t seq) {
  Transaction tx;
  tx.pool = 0;
  tx.client_seq = seq;
  tx.fingerprint = seq * 7919 + 1;
  return tx;
}

TEST(DigestCacheTest, TxBlockMutationInvalidatesCache) {
  ledger::TxBlock block;
  block.set_n(1);
  block.set_txs({MakeTx(1), MakeTx(2)});
  const crypto::Sha256Digest initial = block.Digest();
  EXPECT_EQ(block.Digest(), initial);  // Stable while unmutated.

  block.set_n(2);
  const crypto::Sha256Digest after_n = block.Digest();
  EXPECT_NE(after_n, initial);

  crypto::Sha256Digest prev{};
  prev[0] = 0x5a;
  block.set_prev_hash(prev);
  const crypto::Sha256Digest after_prev = block.Digest();
  EXPECT_NE(after_prev, after_n);

  block.set_txs({MakeTx(3)});
  EXPECT_NE(block.Digest(), after_prev);

  // Every cached value must equal a from-scratch computation.
  ledger::TxBlock fresh;
  fresh.set_n(2);
  fresh.set_prev_hash(prev);
  fresh.set_txs({MakeTx(3)});
  EXPECT_EQ(block.Digest(), fresh.Digest());
}

TEST(DigestCacheTest, TxBlockNonIdentityFieldsDoNotAffectDigest) {
  ledger::TxBlock block;
  block.set_n(1);
  block.set_txs({MakeTx(1)});
  const crypto::Sha256Digest before = block.Digest();
  block.v = 9;
  block.status.assign(1, 0);
  block.ordering_qc.threshold = 3;
  EXPECT_EQ(block.Digest(), before);
}

TEST(DigestCacheTest, TxBlockReleaseTxsInvalidates) {
  ledger::TxBlock block;
  block.set_n(1);
  block.set_txs({MakeTx(1)});
  const crypto::Sha256Digest before = block.Digest();
  const std::vector<Transaction> txs = block.release_txs();
  EXPECT_EQ(txs.size(), 1u);
  EXPECT_EQ(block.BatchSize(), 0u);
  EXPECT_NE(block.Digest(), before);
}

TEST(DigestCacheTest, TxBlockCopyKeepsValidCache) {
  ledger::TxBlock block;
  block.set_n(1);
  block.set_txs({MakeTx(1)});
  const crypto::Sha256Digest before = block.Digest();  // Warm the cache.
  ledger::TxBlock copy = block;
  EXPECT_EQ(copy.Digest(), before);
  copy.set_n(2);  // Mutating the copy must not disturb the original.
  EXPECT_NE(copy.Digest(), before);
  EXPECT_EQ(block.Digest(), before);
}

TEST(DigestCacheTest, VcBlockMutationInvalidatesCache) {
  ledger::VcBlock block;
  block.set_v(2);
  block.set_leader(1);
  block.set_confirmed_view(1);
  block.SetPenalty(0, 1);
  block.SetCompensation(0, 1);
  const crypto::Sha256Digest initial = block.Digest();
  EXPECT_EQ(block.Digest(), initial);

  block.SetPenalty(0, 4);
  const crypto::Sha256Digest after_rp = block.Digest();
  EXPECT_NE(after_rp, initial);

  block.SetCompensation(0, 7);
  const crypto::Sha256Digest after_ci = block.Digest();
  EXPECT_NE(after_ci, after_rp);

  block.set_leader(3);
  const crypto::Sha256Digest after_leader = block.Digest();
  EXPECT_NE(after_leader, after_ci);

  block.set_confirmed_view(2);
  EXPECT_NE(block.Digest(), after_leader);

  // QCs are not part of the address.
  const crypto::Sha256Digest before_qc = block.Digest();
  block.vc_qc.threshold = 3;
  EXPECT_EQ(block.Digest(), before_qc);

  ledger::VcBlock fresh;
  fresh.set_v(2);
  fresh.set_leader(3);
  fresh.set_confirmed_view(2);
  fresh.SetPenalty(0, 4);
  fresh.SetCompensation(0, 7);
  EXPECT_EQ(block.Digest(), fresh.Digest());
}

}  // namespace
}  // namespace types
}  // namespace prestige
