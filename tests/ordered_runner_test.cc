// Tests for runtime::OrderedRunner, the per-node prologue worker pool of
// the threaded backend. The core property under test: however adversarially
// the workers finish their prologues, epilogues are delivered strictly in
// submission (receive) order, on the loop thread, exactly once. Every test
// here crosses threads — the suite runs under the TSan CI job alongside
// threaded_env_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/replica.h"
#include "harness/invariants.h"
#include "harness/threaded_cluster.h"
#include "runtime/ordered_runner.h"
#include "runtime/threaded_env.h"

namespace prestige {
namespace runtime {
namespace {

using util::Millis;

/// Per-index gate: prologues block in Await(i) until the test opens gate i,
/// which lets a test force any prologue completion order it likes.
class Gate {
 public:
  void Open(size_t i) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_.insert(i);
    }
    cv_.notify_all();
  }
  void Await(size_t i) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_.count(i) > 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<size_t> open_;
};

/// Minimal loop-thread stand-in: waits for the runner's wakeup and drains
/// ready epilogues until `target` have been delivered.
class FakeLoop {
 public:
  std::function<void()> Wakeup() {
    return [this]() {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++wakeups_;
      }
      cv_.notify_one();
    };
  }

  void DrainUntil(OrderedRunner& runner, uint64_t target) {
    while (runner.delivered() < target) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait_for(lock, std::chrono::milliseconds(50),
                     [&] { return runner.HasReady(); });
      }
      runner.RunReadyEpilogues();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int wakeups_ = 0;
};

TEST(OrderedRunnerTest, EpiloguesFollowSubmissionOrderUnderForcedCompletionOrder) {
  constexpr size_t kTasks = 8;
  Gate gate;
  FakeLoop loop;
  // One worker per task so every prologue can block in the gate at once.
  OrderedRunner runner(kTasks, loop.Wakeup());

  std::vector<size_t> order;  // Written by epilogues (this thread only).
  for (size_t i = 0; i < kTasks; ++i) {
    runner.Submit([&gate, &order, i]() -> OrderedRunner::Epilogue {
      gate.Await(i);
      return [&order, i]() { order.push_back(i); };
    });
  }

  // Completing the LAST prologue first must not make anything ready: the
  // head of the sequence is still in flight.
  gate.Open(kTasks - 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(runner.HasReady());
  EXPECT_EQ(runner.delivered(), 0u);

  // Release the rest in a fixed adversarial order (middle-out, head last).
  for (const size_t i : {4u, 2u, 6u, 1u, 5u, 3u, 0u}) gate.Open(i);
  loop.DrainUntil(runner, kTasks);
  runner.Stop();

  std::vector<size_t> expect(kTasks);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
  EXPECT_EQ(runner.submitted(), kTasks);
  EXPECT_EQ(runner.delivered(), kTasks);
}

TEST(OrderedRunnerTest, SeededShuffleStressKeepsOrderAcrossRounds) {
  constexpr size_t kTasks = 64;
  for (const uint32_t seed : {1u, 7u, 1234u}) {
    Gate gate;
    FakeLoop loop;
    OrderedRunner runner(kTasks, loop.Wakeup());

    std::vector<size_t> order;
    for (size_t i = 0; i < kTasks; ++i) {
      runner.Submit([&gate, &order, i]() -> OrderedRunner::Epilogue {
        gate.Await(i);
        return [&order, i]() { order.push_back(i); };
      });
    }

    std::vector<size_t> release(kTasks);
    std::iota(release.begin(), release.end(), 0u);
    std::mt19937 rng(seed);
    std::shuffle(release.begin(), release.end(), rng);
    for (const size_t i : release) gate.Open(i);

    loop.DrainUntil(runner, kTasks);
    runner.Stop();

    std::vector<size_t> expect(kTasks);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect) << "seed " << seed;
  }
}

TEST(OrderedRunnerTest, EpiloguesRunOnTheDrainingThreadOnly) {
  constexpr size_t kTasks = 32;
  FakeLoop loop;
  OrderedRunner runner(4, loop.Wakeup());

  const std::thread::id loop_thread = std::this_thread::get_id();
  std::atomic<int> wrong_thread{0};
  for (size_t i = 0; i < kTasks; ++i) {
    runner.Submit([&, i]() -> OrderedRunner::Epilogue {
      // Prologues DO run off the loop thread (sanity-check the premise
      // with more tasks than workers, so at least one must).
      std::this_thread::sleep_for(std::chrono::microseconds(i % 7));
      return [&]() {
        if (std::this_thread::get_id() != loop_thread) {
          wrong_thread.fetch_add(1, std::memory_order_relaxed);
        }
      };
    });
  }
  loop.DrainUntil(runner, kTasks);
  runner.Stop();
  EXPECT_EQ(wrong_thread.load(), 0);
  EXPECT_EQ(runner.delivered(), kTasks);
}

TEST(OrderedRunnerTest, DrainDeliversEverythingBeforeStop) {
  constexpr size_t kTasks = 100;
  OrderedRunner runner(3, []() {});
  std::vector<size_t> order;
  for (size_t i = 0; i < kTasks; ++i) {
    runner.Submit([&order, i]() -> OrderedRunner::Epilogue {
      std::this_thread::sleep_for(std::chrono::microseconds((i * 37) % 200));
      return [&order, i]() { order.push_back(i); };
    });
  }
  // The shutdown sequence RunLoop uses: Drain (blocks until every stamped
  // task's epilogue has run, here, on this thread), then Stop.
  runner.Drain();
  EXPECT_EQ(runner.delivered(), kTasks);
  runner.Stop();

  std::vector<size_t> expect(kTasks);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(OrderedRunnerTest, StopFinishesStampedProloguesInsteadOfWedging) {
  constexpr size_t kTasks = 16;
  OrderedRunner runner(2, []() {});
  std::atomic<int> prologues{0};
  for (size_t i = 0; i < kTasks; ++i) {
    runner.Submit([&prologues]() -> OrderedRunner::Epilogue {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      prologues.fetch_add(1, std::memory_order_relaxed);
      return nullptr;  // Null epilogue: delivery still counts, runs nothing.
    });
  }
  // Stop without Drain: workers must finish every already-stamped task
  // (abandoning one would wedge all later epilogues behind a hole).
  runner.Stop();
  EXPECT_EQ(prologues.load(), static_cast<int>(kTasks));
  // The epilogue slots survive Stop; a final sweep delivers them in order.
  runner.RunReadyEpilogues();
  EXPECT_EQ(runner.delivered(), kTasks);
}

// ------------------------------------------------- ThreadedRuntime plumbing

struct SeqMsg : public NetMessage {
  uint64_t seq = 0;
  size_t WireSize() const override { return 16; }
  const char* Name() const override { return "Seq"; }
};

/// Receiver whose PreVerify stalls pseudo-randomly per message, scrambling
/// worker completion order; the epilogues record arrival order.
class RecordingNode : public Node {
 public:
  void OnMessage(NodeId, const MessagePtr& msg) override {
    if (auto* m = dynamic_cast<const SeqMsg*>(msg.get())) Record(m->seq);
  }

  VerdictFn PreVerify(NodeId, const MessagePtr& msg) override {
    auto m = std::dynamic_pointer_cast<const SeqMsg>(msg);
    if (m == nullptr) return nullptr;
    // Derived stall: later messages often "finish" before earlier ones.
    std::this_thread::sleep_for(
        std::chrono::microseconds((m->seq * 131) % 400));
    return [this, m]() { Record(m->seq); };
  }

  size_t count() const { return count_.load(std::memory_order_acquire); }
  // Loop-thread state; read after Stop() only.
  std::vector<uint64_t> order_;

 private:
  void Record(uint64_t seq) {
    order_.push_back(seq);
    count_.fetch_add(1, std::memory_order_release);
  }
  std::atomic<size_t> count_{0};
};

/// Sender: fires `total` numbered messages at the receiver from OnStart.
class BlastNode : public Node {
 public:
  BlastNode(NodeId peer, uint64_t total) : peer_(peer), total_(total) {}
  void OnStart() override {
    for (uint64_t i = 0; i < total_; ++i) {
      auto msg = std::make_shared<SeqMsg>();
      msg->seq = i;
      Send(peer_, msg);
    }
  }
  void OnMessage(NodeId, const MessagePtr&) override {}

 private:
  NodeId peer_;
  uint64_t total_;
};

template <typename Pred>
bool SpinUntil(Pred pred, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(OrderedRunnerIntegrationTest, RuntimeDeliversPerSenderFifoWithWorkers) {
  constexpr uint64_t kTotal = 200;
  ThreadedRuntime runtime(1, /*workers_per_node=*/3);
  EXPECT_EQ(runtime.workers_per_node(), 3u);
  RecordingNode receiver;
  BlastNode sender(/*peer=*/0, kTotal);
  ASSERT_EQ(runtime.AddNode(&receiver), 0u);
  ASSERT_EQ(runtime.AddNode(&sender), 1u);
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return receiver.count() >= kTotal; }, 10000));
  runtime.Stop();

  std::vector<uint64_t> expect(kTotal);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(receiver.order_, expect);
  EXPECT_GE(runtime.messages_delivered(), kTotal);
}

TEST(OrderedRunnerIntegrationTest, PrestigeBftCommitsWithWorkerPool) {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 50;
  config.batch_wait = Millis(2);
  config.timeout_min = util::Seconds(2);
  config.timeout_max = util::Seconds(3);
  harness::WorkloadOptions workload;
  workload.num_pools = 2;
  workload.clients_per_pool = 25;
  workload.payload_size = 32;
  workload.client_timeout = util::Seconds(2);
  workload.seed = 5;
  workload.workers_per_node = 2;

  harness::ThreadedCluster<core::PrestigeReplica, core::PrestigeConfig>
      cluster(config, workload);
  EXPECT_EQ(cluster.runtime().workers_per_node(), 2u);
  cluster.Start();
  cluster.RunFor(Millis(700));
  cluster.Stop();

  EXPECT_GT(cluster.ClientCommitted(), 0);
  const harness::SafetyReport safety = harness::CheckSafety(cluster);
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_GT(cluster.replica(0).metrics().committed_txs, 0);
}

}  // namespace
}  // namespace runtime
}  // namespace prestige
