// Tests for the socket backend: SocketRuntime primitives (real loopback
// UDP transport, timers, local fallback for unserializable messages),
// live-loop hostile-datagram injection, and the cross-backend equivalence
// run — the same fault-free scenario on the simulator, the threaded
// runtime, and the socket runtime must all commit work and pass the same
// safety sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "core/replica.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"
#include "harness/socket_cluster.h"
#include "harness/socket_runner.h"
#include "harness/threaded_runner.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/socket_env.h"

namespace prestige {
namespace runtime {
namespace {

using util::Millis;

/// Waits (really) until `pred` holds or `deadline_ms` passes.
template <typename Pred>
bool SpinUntil(Pred pred, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Ping-pong over real UDP: bounces a NoiseMsg (which HAS a wire form, so
/// every hop crosses the kernel's loopback stack) back to the sender with
/// an incremented size until `limit` hops.
class UdpPongNode : public Node {
 public:
  explicit UdpPongNode(uint32_t limit) : limit_(limit) {}

  void OnMessage(NodeId from, const MessagePtr& msg) override {
    const auto* noise = dynamic_cast<const core::NoiseMsg*>(msg.get());
    if (noise == nullptr) return;
    hops_.fetch_add(1, std::memory_order_relaxed);
    if (noise->bytes >= limit_) return;
    auto next = std::make_shared<core::NoiseMsg>();
    next->bytes = noise->bytes + 1;
    Send(from, next);
  }

  void Kick(NodeId to) {
    auto msg = std::make_shared<core::NoiseMsg>();
    msg->bytes = 1;
    Send(to, msg);
  }

  uint32_t hops() const { return hops_.load(std::memory_order_relaxed); }

 private:
  uint32_t limit_;
  std::atomic<uint32_t> hops_{0};
};

class KickingUdpPongNode : public UdpPongNode {
 public:
  KickingUdpPongNode(uint32_t limit, NodeId peer)
      : UdpPongNode(limit), peer_(peer) {}
  void OnStart() override { Kick(peer_); }

 private:
  NodeId peer_;
};

TEST(SocketRuntimeTest, PingPongOverLoopbackUdp) {
  SocketRuntime runtime(1);
  UdpPongNode a(200);
  KickingUdpPongNode b(200, /*peer=*/0);
  std::string error;
  ASSERT_TRUE(runtime.AddNode(&a, 0, harness::LoopbackAny(), &error)) << error;
  ASSERT_TRUE(runtime.AddNode(&b, 1, harness::LoopbackAny(), &error)) << error;
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return a.hops() + b.hops() >= 200; }, 5000));
  runtime.Stop();
  EXPECT_GE(a.hops() + b.hops(), 200u);
  // Every hop was a real datagram, not an in-process shortcut.
  const net::FrameCounters net = runtime.net_stats();
  EXPECT_GE(net.frames_sent, 200u);
  EXPECT_GE(net.messages_assembled, 200u);
  EXPECT_EQ(net.unserializable_drops, 0u);
}

struct LocalOnlyMsg : public NetMessage {
  size_t WireSize() const override { return 8; }
  const char* Name() const override { return "LocalOnly"; }
};

/// Counts LocalOnlyMsg deliveries (no wire form -> mailbox fallback).
class LocalSinkNode : public Node {
 public:
  void OnMessage(NodeId, const MessagePtr& msg) override {
    if (dynamic_cast<const LocalOnlyMsg*>(msg.get()) != nullptr) {
      received_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  int received() const { return received_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> received_{0};
};

class LocalSenderNode : public Node {
 public:
  explicit LocalSenderNode(NodeId peer) : peer_(peer) {}
  void OnStart() override {
    for (int i = 0; i < 10; ++i) Send(peer_, std::make_shared<LocalOnlyMsg>());
  }
  void OnMessage(NodeId, const MessagePtr&) override {}

 private:
  NodeId peer_;
};

TEST(SocketRuntimeTest, UnserializableMessagesFallBackToLocalDelivery) {
  SocketRuntime runtime(7);
  LocalSinkNode sink;
  LocalSenderNode sender(/*peer=*/0);
  std::string error;
  ASSERT_TRUE(runtime.AddNode(&sink, 0, harness::LoopbackAny(), &error));
  ASSERT_TRUE(runtime.AddNode(&sender, 1, harness::LoopbackAny(), &error));
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return sink.received() >= 10; }, 5000));
  runtime.Stop();
  EXPECT_EQ(sink.received(), 10);
  EXPECT_EQ(runtime.net_stats().unserializable_drops, 0u);
}

class TimerNode : public Node {
 public:
  void OnStart() override {
    SetTimer(Millis(5), 5);
    SetTimer(Millis(15), 15);
    const TimerId doomed = SetTimer(Millis(10), 10);
    CancelTimer(doomed);
  }
  void OnMessage(NodeId, const MessagePtr&) override {}
  void OnTimer(uint64_t tag) override {
    fired_order_.push_back(tag);
    count_.fetch_add(1, std::memory_order_release);
  }

  int count() const { return count_.load(std::memory_order_acquire); }
  // Loop-thread state; read after Stop() only.
  std::vector<uint64_t> fired_order_;

 private:
  std::atomic<int> count_{0};
};

TEST(SocketRuntimeTest, TimersFireInOrderAndCancelWorks) {
  SocketRuntime runtime(1);
  TimerNode node;
  std::string error;
  ASSERT_TRUE(runtime.AddNode(&node, 0, harness::LoopbackAny(), &error));
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return node.count() >= 2; }, 5000));
  runtime.Stop();
  ASSERT_EQ(node.fired_order_.size(), 2u);
  EXPECT_EQ(node.fired_order_[0], 5u);
  EXPECT_EQ(node.fired_order_[1], 15u);  // Tag 10 was cancelled.
}

TEST(SocketRuntimeTest, DuplicateIdAndUnknownPeerAreHandled) {
  SocketRuntime runtime(1);
  UdpPongNode a(1);
  UdpPongNode b(1);
  std::string error;
  ASSERT_TRUE(runtime.AddNode(&a, 3, harness::LoopbackAny(), &error));
  EXPECT_FALSE(runtime.AddNode(&b, 3, harness::LoopbackAny(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(runtime.local_addr(3).valid());
  EXPECT_FALSE(runtime.local_addr(99).valid());
}

// ----------------------------------------------- live hostile datagrams

/// Injects raw bytes at a live node's UDP socket: pure garbage must be a
/// header drop, a well-framed datagram whose payload fails wire decode
/// must be a decode drop — and the node must keep serving either way.
TEST(SocketRuntimeTest, HostileDatagramsAreCountedDropsNotCrashes) {
  SocketRuntime runtime(1);
  UdpPongNode victim(1u << 30);
  std::string error;
  ASSERT_TRUE(runtime.AddNode(&victim, 0, harness::LoopbackAny(), &error));
  runtime.Start();
  const net::SockAddr target = runtime.local_addr(0);
  ASSERT_TRUE(target.valid());

  net::UdpSocket attacker;
  ASSERT_TRUE(attacker.Bind(harness::LoopbackAny(), &error)) << error;

  // 1. Pure garbage: fails header validation.
  const std::vector<uint8_t> garbage(64, 0xee);
  ASSERT_TRUE(attacker.SendTo(target, garbage.data(), garbage.size()));

  // 2. Valid framing around an undecodable payload (unknown wire kind):
  //    passes the assembler, dies in DecodeMessage.
  net::FrameWriter writer(/*src=*/42);
  const std::vector<uint8_t> junk_payload = {0xff, 0x01, 0x02, 0x03};
  for (const auto& datagram : writer.Split(/*dst=*/0, junk_payload)) {
    ASSERT_TRUE(attacker.SendTo(target, datagram.data(), datagram.size()));
  }

  EXPECT_TRUE(SpinUntil(
      [&] {
        const net::FrameCounters c = runtime.node_net_stats(0);
        return c.header_drops >= 1 && c.decode_drops >= 1;
      },
      5000));

  // The victim still processes legitimate traffic after the attack.
  std::vector<uint8_t> wire;
  core::NoiseMsg noise;
  noise.bytes = 1;
  ASSERT_TRUE(net::EncodeMessage(noise, &wire));
  net::FrameWriter legit(/*src=*/42);
  for (const auto& datagram : legit.Split(/*dst=*/0, wire)) {
    ASSERT_TRUE(attacker.SendTo(target, datagram.data(), datagram.size()));
  }
  EXPECT_TRUE(SpinUntil([&] { return victim.hops() >= 1; }, 5000));
  runtime.Stop();

  const net::FrameCounters c = runtime.node_net_stats(0);
  EXPECT_GE(c.header_drops, 1u);
  EXPECT_GE(c.decode_drops, 1u);
}

// ------------------------------------------------- cross-backend equivalence

/// A fault-free steady-state spec all three backends can execute.
harness::ScenarioSpec EquivalenceSpec() {
  harness::ScenarioSpec spec;
  spec.name = "equivalence";
  spec.description = "fault-free cross-backend comparison";
  spec.n = 4;
  harness::Phase phase;
  phase.name = "steady";
  phase.duration = util::Seconds(2);
  spec.phases.push_back(phase);
  return spec;
}

harness::WorkloadOptions EquivalenceWorkload() {
  harness::WorkloadOptions w;
  w.num_pools = 2;
  w.clients_per_pool = 50;
  w.payload_size = 32;
  w.client_timeout = util::Seconds(1);
  w.seed = 11;
  return w;
}

core::PrestigeConfig EquivalenceConfig() {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 500;
  return config;
}

TEST(CrossBackendTest, SameScenarioCommitsAndStaysSafeOnAllThreeBackends) {
  const harness::ScenarioSpec spec = EquivalenceSpec();
  ASSERT_TRUE(harness::ThreadedCapable(spec));
  // A deliberately modest floor: virtual time and the two wall-clock
  // backends run at different speeds; equivalence means "all make real
  // progress and none violates an invariant", not identical throughput.
  constexpr int64_t kCommittedFloor = 1000;

  const harness::ScenarioSeedResult sim =
      harness::RunScenarioSeed<core::PrestigeReplica, core::PrestigeConfig>(
          spec, EquivalenceConfig(), EquivalenceWorkload());
  EXPECT_TRUE(sim.safety_ok) << sim.violation;
  EXPECT_GE(sim.committed, kCommittedFloor);

  const harness::ThreadedRunResult threaded =
      harness::RunThreadedScenario<core::PrestigeReplica,
                                   core::PrestigeConfig>(
          spec, EquivalenceConfig(), EquivalenceWorkload());
  ASSERT_TRUE(threaded.ran) << threaded.error;
  EXPECT_TRUE(threaded.safety_ok) << threaded.violation;
  EXPECT_GE(threaded.committed, kCommittedFloor);

  const harness::SocketRunResult socket =
      harness::RunSocketScenario<core::PrestigeReplica, core::PrestigeConfig>(
          spec, EquivalenceConfig(), EquivalenceWorkload());
  ASSERT_TRUE(socket.base.ran) << socket.base.error;
  EXPECT_TRUE(socket.base.safety_ok) << socket.base.violation;
  EXPECT_GE(socket.base.committed, kCommittedFloor);
  // The socket run really crossed the kernel: frames flowed and the
  // hardened receive path assembled them.
  EXPECT_GT(socket.net.frames_sent, 0u);
  EXPECT_GT(socket.net.messages_assembled, 0u);

  // The spec with a simulator-only fault must be refused, not misrun.
  harness::ScenarioSpec faulty = spec;
  faulty.phases[0].crash = {0};
  const harness::SocketRunResult refused =
      harness::RunSocketScenario<core::PrestigeReplica, core::PrestigeConfig>(
          faulty, EquivalenceConfig(), EquivalenceWorkload());
  EXPECT_FALSE(refused.base.ran);
  EXPECT_FALSE(refused.base.error.empty());
}

}  // namespace
}  // namespace runtime
}  // namespace prestige
