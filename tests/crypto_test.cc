// Unit tests for src/crypto: SHA-256 (NIST KATs), HMAC-SHA256 (RFC 4231),
// simulated PKI signatures, quorum certificates, and the PoW puzzle.

#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/pow.h"
#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace prestige {
namespace crypto {
namespace {

// --------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(DigestToHex(Sha256::Hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) {
    h.Update(reinterpret_cast<const uint8_t*>(&c), 1);
  }
  EXPECT_EQ(h.Finish(), Sha256::Hash(msg));
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte message exercises the zero-remainder padding path.
  const std::string msg(64, 'x');
  const std::string msg2(128, 'x');
  EXPECT_NE(Sha256::Hash(msg), Sha256::Hash(msg2));
  // 55/56/57 bytes straddle the length-field boundary.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    Sha256 h;
    const std::string m(len, 'y');
    h.Update(m);
    EXPECT_EQ(h.Finish(), Sha256::Hash(m)) << "len=" << len;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update(std::string("garbage"));
  h.Reset();
  h.Update(std::string("abc"));
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, LeadingZeroBitsCount) {
  Sha256Digest d{};
  d.fill(0);
  EXPECT_EQ(CountLeadingZeroBits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(CountLeadingZeroBits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(CountLeadingZeroBits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(CountLeadingZeroBits(d), 11);
}

// ------------------------------------------------------------------ HMAC

std::vector<uint8_t> Bytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

TEST(HmacTest, Rfc4231Case1) {
  const std::vector<uint8_t> key = Bytes(20, 0x0b);
  const std::string data = "Hi There";
  const Sha256Digest mac =
      HmacSha256(key, reinterpret_cast<const uint8_t*>(data.data()),
                 data.size());
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const std::vector<uint8_t> key(key_str.begin(), key_str.end());
  const std::string data = "what do ya want for nothing?";
  const Sha256Digest mac =
      HmacSha256(key, reinterpret_cast<const uint8_t*>(data.data()),
                 data.size());
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::vector<uint8_t> key = Bytes(20, 0xaa);
  const std::vector<uint8_t> data = Bytes(50, 0xdd);
  EXPECT_EQ(DigestToHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<uint8_t> key = Bytes(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Sha256Digest mac =
      HmacSha256(key, reinterpret_cast<const uint8_t*>(data.data()),
                 data.size());
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// -------------------------------------------------------------- Keys/PKI

TEST(KeysTest, SignVerifyRoundTrip) {
  KeyStore keys(42);
  const Sha256Digest msg = Sha256::Hash(std::string("hello"));
  const Signature sig = keys.Sign(3, msg);
  EXPECT_EQ(sig.signer, 3u);
  EXPECT_TRUE(keys.Verify(sig, msg));
}

TEST(KeysTest, VerifyRejectsWrongMessage) {
  KeyStore keys(42);
  const Signature sig = keys.Sign(3, Sha256::Hash(std::string("hello")));
  EXPECT_FALSE(keys.Verify(sig, Sha256::Hash(std::string("other"))));
}

TEST(KeysTest, VerifyRejectsImpersonation) {
  KeyStore keys(42);
  const Sha256Digest msg = Sha256::Hash(std::string("hello"));
  Signature sig = keys.Sign(3, msg);
  sig.signer = 4;  // Claim a different signer with node 3's MAC.
  EXPECT_FALSE(keys.Verify(sig, msg));
}

TEST(KeysTest, DistinctSeedsProduceDistinctSignatures) {
  KeyStore a(1), b(2);
  const Sha256Digest msg = Sha256::Hash(std::string("m"));
  EXPECT_NE(a.Sign(0, msg).mac, b.Sign(0, msg).mac);
}

TEST(KeysTest, SignerRestrictedToOwnId) {
  KeyStore keys(42);
  Signer signer(&keys, 7);
  const Sha256Digest msg = Sha256::Hash(std::string("x"));
  const Signature sig = signer.Sign(msg);
  EXPECT_EQ(sig.signer, 7u);
  EXPECT_TRUE(keys.Verify(sig, msg));
}

// ---------------------------------------------------------- Quorum certs

class QuorumCertTest : public ::testing::Test {
 protected:
  KeyStore keys_{99};
  Sha256Digest msg_ = Sha256::Hash(std::string("block digest"));
};

TEST_F(QuorumCertTest, BuildAtThreshold) {
  QuorumCertBuilder builder(msg_, 3);
  EXPECT_FALSE(builder.Complete());
  for (SignerId i = 0; i < 3; ++i) {
    EXPECT_TRUE(builder.Add(keys_.Sign(i, msg_), msg_));
  }
  EXPECT_TRUE(builder.Complete());
  const QuorumCert qc = builder.Build();
  EXPECT_EQ(qc.partials.size(), 3u);
  EXPECT_TRUE(VerifyQuorumCert(keys_, qc, msg_, 3).ok());
}

TEST_F(QuorumCertTest, RejectsDuplicateSigner) {
  QuorumCertBuilder builder(msg_, 3);
  EXPECT_TRUE(builder.Add(keys_.Sign(1, msg_), msg_));
  EXPECT_FALSE(builder.Add(keys_.Sign(1, msg_), msg_));
  EXPECT_EQ(builder.Count(), 1u);
}

TEST_F(QuorumCertTest, RejectsWrongDigest) {
  QuorumCertBuilder builder(msg_, 3);
  const Sha256Digest other = Sha256::Hash(std::string("other"));
  EXPECT_FALSE(builder.Add(keys_.Sign(1, other), other));
}

TEST_F(QuorumCertTest, VerifyRejectsTamperedPartial) {
  QuorumCertBuilder builder(msg_, 2);
  builder.Add(keys_.Sign(0, msg_), msg_);
  builder.Add(keys_.Sign(1, msg_), msg_);
  QuorumCert qc = builder.Build();
  qc.partials[0].mac[0] ^= 0xff;
  EXPECT_TRUE(
      VerifyQuorumCert(keys_, qc, msg_, 2).IsInvalidSignature());
}

TEST_F(QuorumCertTest, VerifyRejectsInsufficientThreshold) {
  QuorumCertBuilder builder(msg_, 2);
  builder.Add(keys_.Sign(0, msg_), msg_);
  builder.Add(keys_.Sign(1, msg_), msg_);
  const QuorumCert qc = builder.Build();
  // Protocol step demands 3 signers; this QC only proves 2.
  EXPECT_TRUE(VerifyQuorumCert(keys_, qc, msg_, 3).IsInvalidSignature());
}

TEST_F(QuorumCertTest, VerifyRejectsDigestMismatch) {
  QuorumCertBuilder builder(msg_, 2);
  builder.Add(keys_.Sign(0, msg_), msg_);
  builder.Add(keys_.Sign(1, msg_), msg_);
  const QuorumCert qc = builder.Build();
  const Sha256Digest other = Sha256::Hash(std::string("other"));
  EXPECT_TRUE(VerifyQuorumCert(keys_, qc, other, 2).IsInvalidSignature());
}

TEST_F(QuorumCertTest, VerifyRejectsEmpty) {
  QuorumCert qc;
  EXPECT_TRUE(VerifyQuorumCert(keys_, qc, msg_, 1).IsInvalidSignature());
}

TEST_F(QuorumCertTest, SignerIdsSortedCanonically) {
  QuorumCertBuilder builder(msg_, 3);
  builder.Add(keys_.Sign(5, msg_), msg_);
  builder.Add(keys_.Sign(1, msg_), msg_);
  builder.Add(keys_.Sign(3, msg_), msg_);
  const QuorumCert qc = builder.Build();
  const std::vector<SignerId> ids = qc.SignerIds();
  EXPECT_EQ(ids, (std::vector<SignerId>{1, 3, 5}));
}

// ------------------------------------------------------------------- PoW

TEST(PowTest, VerifyAcceptsRealSolution) {
  util::Rng rng(7);
  RealPowSolver solver;
  const Sha256Digest payload = Sha256::Hash(std::string("txblock"));
  auto sol = solver.Solve(payload, /*difficulty_bits=*/8, &rng);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(PowVerify(payload, sol->nonce, 8));
  EXPECT_GE(CountLeadingZeroBits(sol->hash), 8);
}

TEST(PowTest, VerifyRejectsWrongNonce) {
  const Sha256Digest payload = Sha256::Hash(std::string("txblock"));
  util::Rng rng(7);
  RealPowSolver solver;
  auto sol = solver.Solve(payload, 8, &rng);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(PowVerify(payload, sol->nonce + 1, 24));
}

TEST(PowTest, HigherDifficultyIsHarder) {
  util::Rng rng(11);
  RealPowSolver solver;
  const Sha256Digest payload = Sha256::Hash(std::string("p"));
  uint64_t iters_low = 0, iters_high = 0;
  const int kTrials = 20;
  for (int i = 0; i < kTrials; ++i) {
    iters_low += solver.Solve(payload, 4, &rng)->iterations;
    iters_high += solver.Solve(payload, 12, &rng)->iterations;
  }
  EXPECT_LT(iters_low, iters_high);
}

TEST(PowTest, ZeroDifficultySolvesImmediately) {
  util::Rng rng(13);
  RealPowSolver solver;
  auto sol = solver.Solve(Sha256::Hash(std::string("p")), 0, &rng);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->iterations, 1u);
}

TEST(PowTest, SolveTimesOutWhenExhausted) {
  util::Rng rng(17);
  RealPowSolver solver;
  auto sol = solver.Solve(Sha256::Hash(std::string("p")), 200, &rng,
                          /*max_iterations=*/10);
  EXPECT_TRUE(sol.status().IsTimedOut());
}

TEST(PowParamsTest, DifficultyScalesWithPenalty) {
  PowParams params;
  params.bits_per_unit = 4;
  EXPECT_EQ(params.DifficultyBits(1), 4);
  EXPECT_EQ(params.DifficultyBits(5), 20);
  EXPECT_EQ(params.DifficultyBits(0), 0);
  EXPECT_EQ(params.DifficultyBits(1000), 256);  // Clamped.
}

TEST(PowParamsTest, ExpectedTimeMatchesPaperScale) {
  // Paper §4.2.4: "< 20 ms for rp < 5" and "hours for rp > 8" with SHA-256.
  PowParams params;  // Defaults: 4 bits/unit, 3.3 MH/s.
  EXPECT_LT(params.ExpectedSolveMicros(4), util::Millis(25));
  EXPECT_GT(params.ExpectedSolveMicros(9), util::Seconds(3600));
}

TEST(ModeledPowTest, MeanIterationsNearExpectation) {
  PowParams params;
  ModeledPowSolver solver(params);
  util::Rng rng(19);
  double total = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    total += solver.SampleIterations(/*difficulty_bits=*/6, &rng);
  }
  // Geometric(p = 1/64) has mean 64.
  EXPECT_NEAR(total / kSamples, 64.0, 3.0);
}

TEST(ModeledPowTest, SolveTimePositiveAndMonotoneInDifficulty) {
  PowParams params;
  ModeledPowSolver solver(params);
  util::Rng rng(23);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 200; ++i) {
    low += solver.SampleSolveMicros(8, &rng);
    high += solver.SampleSolveMicros(24, &rng);
  }
  EXPECT_GT(low, 0);
  EXPECT_LT(low, high);
}

}  // namespace
}  // namespace crypto
}  // namespace prestige
