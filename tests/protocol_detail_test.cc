// Focused unit tests for protocol details: vcBlock fork resolution,
// message wire-size/cost modeling, campaign digests, and PoW calibration
// against the paper's reported numbers.

#include <gtest/gtest.h>

#include "core/messages.h"
#include "crypto/pow.h"
#include "ledger/block_store.h"
#include "types/client_messages.h"

namespace prestige {
namespace {

// ------------------------------------------------------- fork resolution

ledger::VcBlock Vc(types::View v, types::ReplicaId leader,
                   const crypto::Sha256Digest& prev) {
  ledger::VcBlock b;
  b.set_v(v);
  b.set_leader(leader);
  b.set_confirmed_view(v - 1);
  b.set_prev_hash(prev);
  for (types::ReplicaId r = 0; r < 4; ++r) {
    b.SetPenalty(r, 1);
    b.SetCompensation(r, 1);
  }
  return b;
}

class ForkResolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.AppendVcBlock(Vc(1, 0, {})).ok());
    ASSERT_TRUE(
        store_.AppendVcBlock(Vc(2, 1, store_.LatestVcBlock()->Digest()))
            .ok());
  }
  ledger::BlockStore store_;
};

TEST_F(ForkResolutionTest, DirectAppendStillWorks) {
  EXPECT_TRUE(store_
                  .AppendVcBlockResolvingFork(
                      Vc(3, 2, store_.LatestVcBlock()->Digest()))
                  .ok());
  EXPECT_EQ(store_.CurrentView(), 3);
}

TEST_F(ForkResolutionTest, HigherViewSiblingUnwindsTail) {
  // Competing elections: block at view 3 extends view 1's block (its
  // proposer never saw view 2). Higher view wins; view 2 unwinds.
  const crypto::Sha256Digest v1_digest = store_.VcBlockFor(1)->Digest();
  ledger::VcBlock fork = Vc(3, 2, v1_digest);
  EXPECT_TRUE(store_.AppendVcBlockResolvingFork(fork).ok());
  EXPECT_EQ(store_.CurrentView(), 3);
  EXPECT_EQ(store_.VcBlockFor(2), nullptr);  // Unwound.
  EXPECT_EQ(store_.LatestVcBlock()->leader(), 2u);
}

TEST_F(ForkResolutionTest, LowerViewSiblingRejected) {
  const crypto::Sha256Digest v1_digest = store_.VcBlockFor(1)->Digest();
  // A sibling at the same view as the tip cannot replace it.
  ledger::VcBlock fork = Vc(2, 3, v1_digest);
  EXPECT_TRUE(store_.AppendVcBlockResolvingFork(fork).IsCorruption());
  EXPECT_EQ(store_.LatestVcBlock()->leader(), 1u);
}

TEST_F(ForkResolutionTest, UnknownParentRejected) {
  crypto::Sha256Digest bogus{};
  bogus[0] = 0x42;
  EXPECT_TRUE(
      store_.AppendVcBlockResolvingFork(Vc(5, 2, bogus)).IsCorruption());
}

TEST_F(ForkResolutionTest, UnwindDepthBounded) {
  // Build a longer chain, then try to fork from far below max_unwind.
  crypto::Sha256Digest deep_parent = store_.VcBlockFor(1)->Digest();
  for (types::View v = 3; v <= 12; ++v) {
    ASSERT_TRUE(
        store_.AppendVcBlock(Vc(v, 0, store_.LatestVcBlock()->Digest()))
            .ok());
  }
  EXPECT_TRUE(store_
                  .AppendVcBlockResolvingFork(Vc(20, 1, deep_parent),
                                              /*max_unwind=*/4)
                  .IsCorruption());
}

// ------------------------------------------------------- message modeling

TEST(MessageModelTest, OrdCarriesBatchBytes) {
  core::OrdMsg ord;
  for (int i = 0; i < 10; ++i) {
    types::Transaction tx;
    tx.payload_size = 32;
    tx.client_seq = static_cast<uint64_t>(i);
    ord.txs.push_back(tx);
  }
  // 10 * (32 + 72 header) payload + message header + signature.
  EXPECT_EQ(ord.WireSize(), 10 * (32 + 72) + core::kHeaderBytes + core::kSigBytes);
  EXPECT_EQ(ord.NumSigVerifies(), 1);
}

TEST(MessageModelTest, QcMessagesAreConstantSize) {
  core::CmtMsg cmt;
  const size_t empty_qc_size = cmt.WireSize();
  // Fill the QC with many partials: wire size must not change (threshold
  // signatures are O(1) on the wire — §4.1).
  for (uint32_t i = 0; i < 67; ++i) {
    cmt.ordering_qc.partials.push_back(crypto::Signature{i, {}});
  }
  EXPECT_EQ(cmt.WireSize(), empty_qc_size);
}

TEST(MessageModelTest, ClientBatchCostScalesWithRequests) {
  types::ClientBatch batch;
  for (int i = 0; i < 50; ++i) {
    types::Transaction tx;
    tx.payload_size = 64;
    batch.txs.push_back(tx);
  }
  EXPECT_EQ(batch.CostUnits(), 50);
  EXPECT_EQ(batch.WireSize(), 50u * (64 + 72));
}

TEST(MessageModelTest, CampaignDigestCoversClaims) {
  core::CampMsg a;
  a.v = 5;
  a.v_new = 6;
  a.rp = 3;
  a.ci = 20;
  a.nonce = 99;
  a.latest_n = 40;
  a.claimed_difficulty_bits = 12;
  core::CampMsg b = a;
  EXPECT_EQ(core::CampaignDigest(a), core::CampaignDigest(b));
  b.rp = 4;
  EXPECT_NE(core::CampaignDigest(a), core::CampaignDigest(b));
  b = a;
  b.nonce = 100;
  EXPECT_NE(core::CampaignDigest(a), core::CampaignDigest(b));
  b = a;
  b.latest_n = 41;
  EXPECT_NE(core::CampaignDigest(a), core::CampaignDigest(b));
}

TEST(MessageModelTest, VcBlockDigestCoversConfirmedView) {
  ledger::VcBlock a = Vc(5, 1, {});
  ledger::VcBlock b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  b.set_confirmed_view(3);
  EXPECT_NE(a.Digest(), b.Digest());
}

// -------------------------------------------------------- PoW calibration

TEST(PowCalibrationTest, PaperTimingsHold) {
  // §4.2.4: "less than 20 ms for rp < 5" and "hours for rp > 8" — the
  // calibration DESIGN.md documents (4 bits/unit at 3.3 MH/s).
  crypto::PowParams params;
  for (types::Penalty rp = 1; rp <= 4; ++rp) {
    EXPECT_LT(params.ExpectedSolveMicros(rp), util::Millis(20))
        << "rp=" << rp;
  }
  EXPECT_GT(params.ExpectedSolveMicros(9), util::Seconds(3600));
}

TEST(PowCalibrationTest, PaperByteSemanticsAvailable) {
  // The paper's prose formula Pr(rp) = 2^-8rp is selectable.
  crypto::PowParams params;
  params.bits_per_unit = 8;
  EXPECT_EQ(params.DifficultyBits(4), 32);
  // Expected iterations 2^32 at 3.3 MH/s ~ 1300 s.
  EXPECT_GT(params.ExpectedSolveMicros(4), util::Seconds(1000));
}

TEST(PowCalibrationTest, ExponentialGrowthBetweenLevels) {
  crypto::PowParams params;
  for (types::Penalty rp = 1; rp < 10; ++rp) {
    const double ratio =
        static_cast<double>(params.ExpectedSolveMicros(rp + 1)) /
        static_cast<double>(std::max<util::DurationMicros>(
            params.ExpectedSolveMicros(rp), 1));
    EXPECT_NEAR(ratio, 16.0, 4.0) << "rp=" << rp;  // 2^bits_per_unit.
  }
}

}  // namespace
}  // namespace prestige
