// Unit tests for the discrete-event simulator, latency models, and network.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/actor.h"
#include "sim/event_fn.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "util/stats.h"

namespace prestige {
namespace sim {
namespace {

using util::Millis;
using util::Seconds;

struct TestMessage : public NetMessage {
  explicit TestMessage(size_t size = 100, int verifies = 0, int units = 1)
      : size_(size), verifies_(verifies), units_(units) {}
  size_t WireSize() const override { return size_; }
  int NumSigVerifies() const override { return verifies_; }
  int CostUnits() const override { return units_; }
  const char* Name() const override { return "TestMessage"; }
  size_t size_;
  int verifies_;
  int units_;
};

/// Records deliveries and timer fires with their timestamps.
class RecordingActor : public Actor {
 public:
  void OnMessage(ActorId from, const MessagePtr& msg) override {
    deliveries.push_back({Now(), from, msg});
  }
  void OnTimer(uint64_t tag) override { timer_fires.push_back({Now(), tag}); }

  struct Delivery {
    util::TimeMicros at;
    ActorId from;
    MessagePtr msg;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::pair<util::TimeMicros, uint64_t>> timer_fires;

  using Actor::CancelTimer;
  using Actor::SetTimer;
};

// ------------------------------------------------------------- Simulator

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(100, [&] { order.push_back(3); });
  sim.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim(1);
  int fired = 0;
  sim.ScheduleAt(10, [&] {
    sim.ScheduleAfter(5, [&] { fired = 1; });
  });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim(1);
  int fired = 0;
  sim.ScheduleAt(500, [&] { fired = 1; });
  sim.RunUntil(499);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Now(), 499);
  sim.RunUntil(500);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim(1);
  sim.ScheduleAt(100, [] {});
  sim.RunUntil(100);
  int fired = 0;
  sim.ScheduleAt(50, [&] { fired = 1; });  // In the past.
  sim.RunUntil(200);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim(1);
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, HeapMatchesReferenceOrderUnderChurn) {
  // Stress the hand-rolled binary heap against the specified total order
  // (time, then insertion seq): pseudo-random times, including ties, with
  // events scheduling further events mid-run.
  Simulator sim(1);
  std::vector<std::pair<util::TimeMicros, int>> executed;
  util::Rng rng(99);
  int label = 0;
  for (int i = 0; i < 500; ++i) {
    const util::TimeMicros at = static_cast<util::TimeMicros>(
        rng.NextBounded(50));  // Narrow range forces many ties.
    const int id = label++;
    sim.ScheduleAt(at, [&executed, &sim, id] {
      executed.push_back({sim.Now(), id});
    });
  }
  sim.ScheduleAt(25, [&] {
    for (int i = 0; i < 100; ++i) {
      const int id = label++;
      sim.ScheduleAfter(static_cast<util::DurationMicros>(i % 7),
                        [&executed, &sim, id] {
                          executed.push_back({sim.Now(), id});
                        });
    }
  });
  sim.RunUntil(1000);
  ASSERT_EQ(executed.size(), 600u);
  // Times are non-decreasing, and equal times execute in insertion order.
  // Labels are assigned in scheduling order (the nested burst gets the
  // largest labels and seqs), so at equal times label order IS seq order.
  for (size_t i = 1; i < executed.size(); ++i) {
    ASSERT_LE(executed[i - 1].first, executed[i].first);
    if (executed[i - 1].first == executed[i].first) {
      ASSERT_LT(executed[i - 1].second, executed[i].second);
    }
  }
}

// ---------------------------------------------------------------- EventFn

TEST(EventFnTest, RunsInlineAndHeapCallables) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });  // Fits the inline buffer.
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    unsigned char pad[128];  // Exceeds kInlineBytes: heap fallback.
    int* hits;
    void operator()() { ++*hits; }
  };
  static_assert(sizeof(Big) > EventFn::kInlineBytes, "want heap path");
  EventFn big(Big{{}, &hits});
  big();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, SupportsMoveOnlyCaptures) {
  // std::function would reject this closure (it requires copyability).
  auto ptr = std::make_unique<int>(41);
  int seen = 0;
  EventFn fn([p = std::move(ptr), &seen] { seen = *p + 1; });
  EventFn moved(std::move(fn));
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(seen, 42);
}

TEST(EventFnTest, MoveAssignDestroysPreviousCallable) {
  auto counter = std::make_shared<int>(0);
  EXPECT_EQ(counter.use_count(), 1);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b([] {});
  b = std::move(a);  // The empty lambda is destroyed; capture moves over.
  EXPECT_EQ(counter.use_count(), 2);
  b = EventFn([] {});  // Dropping the capture releases the shared_ptr.
  EXPECT_EQ(counter.use_count(), 1);
}

// --------------------------------------------------------------- Latency

TEST(LatencyTest, FixedIsConstant) {
  util::Rng rng(1);
  const LatencyModel m = LatencyModel::Fixed(2.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.Sample(&rng), 2000);
  }
}

TEST(LatencyTest, UniformWithinBounds) {
  util::Rng rng(2);
  const LatencyModel m = LatencyModel::Uniform(1.0, 3.0);
  for (int i = 0; i < 1000; ++i) {
    const auto s = m.Sample(&rng);
    EXPECT_GE(s, 1000);
    EXPECT_LE(s, 3000);
  }
}

TEST(LatencyTest, NormalRespectsFloorAndMean) {
  util::Rng rng(3);
  const LatencyModel m = LatencyModel::Normal(10.0, 5.0, 0.8);
  util::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const auto s = m.Sample(&rng);
    EXPECT_GE(s, 800);
    stats.Add(static_cast<double>(s) / 1000.0);
  }
  // Mean shifted slightly up by the floor clamp; near 10 ms.
  EXPECT_NEAR(stats.mean(), 10.0, 0.7);
}

TEST(LatencyTest, PaperProfilesAreSane) {
  util::Rng rng(4);
  EXPECT_LT(LatencyModel::Datacenter().Sample(&rng), Millis(2));
  EXPECT_GT(LatencyModel::NetemEmulated().MeanMs(), 8.0);
}

// ----------------------------------------------------------------- Costs

TEST(CostModelTest, ProcessingScalesWithUnitsBytesAndSigs) {
  CostModel cost;
  const TestMessage small(100, 0, 1);
  const TestMessage sigs(100, 3, 1);
  const TestMessage units(100, 0, 10);
  const TestMessage big(100000, 0, 1);
  EXPECT_LT(cost.ProcessingCost(small), cost.ProcessingCost(sigs));
  EXPECT_LT(cost.ProcessingCost(small), cost.ProcessingCost(units));
  EXPECT_LT(cost.ProcessingCost(small), cost.ProcessingCost(big));
}

TEST(CostModelTest, SerializationMatchesBandwidth) {
  CostModel cost;
  cost.bandwidth_bytes_per_us = 400.0;
  const TestMessage msg(40000);  // 40 KB at 400 B/us = 100 us.
  EXPECT_EQ(cost.SerializationCost(msg), 100);
}

// --------------------------------------------------------------- Network

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(7);
    net_ = std::make_unique<Network>(sim_.get(), LatencyModel::Fixed(1.0),
                                     CostModel{});
    for (auto& actor : actors_) {
      sim_->AddActor(&actor);
      actor.AttachNetwork(net_.get());
    }
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  RecordingActor actors_[4];
};

TEST_F(NetworkTest, DeliversWithLatencyAndCosts) {
  net_->Send(0, 1, std::make_shared<TestMessage>(400));
  sim_->RunUntil(Seconds(1));
  ASSERT_EQ(actors_[1].deliveries.size(), 1u);
  // serialization (1 us) + latency (1000 us) + processing (~4.8 us).
  EXPECT_GE(actors_[1].deliveries[0].at, 1001);
  EXPECT_LE(actors_[1].deliveries[0].at, 1020);
}

TEST_F(NetworkTest, SelfSendBypassesLatency) {
  net_->Send(2, 2, std::make_shared<TestMessage>(400));
  sim_->RunUntil(Millis(1));
  ASSERT_EQ(actors_[2].deliveries.size(), 1u);
  EXPECT_LT(actors_[2].deliveries[0].at, 100);
}

TEST_F(NetworkTest, EgressSerializesBroadcast) {
  // 40 KB messages at 400 B/us: each copy occupies the NIC for 100 us, so
  // the third target's copy cannot even depart before 300 us.
  net_->Send(0, {1, 2, 3}, std::make_shared<TestMessage>(40000));
  sim_->RunUntil(Seconds(1));
  ASSERT_EQ(actors_[3].deliveries.size(), 1u);
  EXPECT_GE(actors_[3].deliveries[0].at, 300 + 1000);
  // And the first target's copy departs after ~100 us.
  EXPECT_GE(actors_[1].deliveries[0].at, 100 + 1000);
  EXPECT_LT(actors_[1].deliveries[0].at, 300 + 1000);
}

TEST_F(NetworkTest, ReceiverCpuQueues) {
  // Many signature-heavy messages serialize on the receiver's CPU.
  for (int i = 0; i < 10; ++i) {
    net_->Send(0, 1, std::make_shared<TestMessage>(100, 5));
  }
  sim_->RunUntil(Seconds(1));
  ASSERT_EQ(actors_[1].deliveries.size(), 10u);
  // Each message costs ~ 4 + 0.2 + 90 us of CPU; the last one cannot finish
  // before 10 * 90 us after the first arrival.
  const auto first = actors_[1].deliveries.front().at;
  const auto last = actors_[1].deliveries.back().at;
  EXPECT_GE(last - first, 9 * 90);
}

TEST_F(NetworkTest, DownNodeReceivesNothing) {
  net_->SetNodeDown(1, true);
  net_->Send(0, 1, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());
  EXPECT_EQ(net_->stats().messages_dropped, 1u);

  net_->SetNodeDown(1, false);
  net_->Send(0, 1, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(20));
  EXPECT_EQ(actors_[1].deliveries.size(), 1u);
}

TEST_F(NetworkTest, DownNodeSendsNothing) {
  net_->SetNodeDown(0, true);
  net_->Send(0, 1, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());
}

TEST_F(NetworkTest, LinkCutIsDirected) {
  net_->SetLinkDown(0, 1, true);
  net_->Send(0, 1, std::make_shared<TestMessage>());
  net_->Send(1, 0, std::make_shared<TestMessage>());
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[1].deliveries.empty());
  EXPECT_EQ(actors_[0].deliveries.size(), 1u);
}

TEST_F(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  net_->SetDropProbability(0.5);
  for (int i = 0; i < 1000; ++i) {
    net_->Send(0, 1, std::make_shared<TestMessage>(10));
  }
  sim_->RunUntil(Seconds(10));
  EXPECT_GT(actors_[1].deliveries.size(), 350u);
  EXPECT_LT(actors_[1].deliveries.size(), 650u);
}

TEST_F(NetworkTest, StatsAccumulate) {
  net_->Send(0, {1, 2}, std::make_shared<TestMessage>(100));
  sim_->RunUntil(Millis(10));
  EXPECT_EQ(net_->stats().messages_sent, 2u);
  EXPECT_EQ(net_->stats().messages_delivered, 2u);
  EXPECT_EQ(net_->stats().bytes_sent, 200u);
}

// ----------------------------------------------------------------- Timers

TEST_F(NetworkTest, TimerFiresWithTag) {
  actors_[0].SetTimer(Millis(5), 42);
  sim_->RunUntil(Millis(10));
  ASSERT_EQ(actors_[0].timer_fires.size(), 1u);
  EXPECT_EQ(actors_[0].timer_fires[0].first, Millis(5));
  EXPECT_EQ(actors_[0].timer_fires[0].second, 42u);
}

TEST_F(NetworkTest, CancelledTimerDoesNotFire) {
  const TimerId t = actors_[0].SetTimer(Millis(5), 1);
  actors_[0].CancelTimer(t);
  sim_->RunUntil(Millis(10));
  EXPECT_TRUE(actors_[0].timer_fires.empty());
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    Network net(&sim, LatencyModel::Normal(5.0, 2.0), CostModel{});
    RecordingActor a, b;
    sim.AddActor(&a);
    sim.AddActor(&b);
    a.AttachNetwork(&net);
    b.AttachNetwork(&net);
    for (int i = 0; i < 100; ++i) {
      net.Send(0, 1, std::make_shared<TestMessage>(100 + i));
    }
    sim.RunUntil(Seconds(1));
    std::vector<util::TimeMicros> times;
    for (const auto& d : b.deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace sim
}  // namespace prestige
