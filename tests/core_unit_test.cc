// White-box unit tests for PrestigeReplica's message-validation paths:
// crafted (including malicious) messages are injected directly and the
// replica's reactions observed — covering the adversarial branches that
// integration tests reach only probabilistically.

#include <gtest/gtest.h>

#include "core/replica.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace prestige {
namespace core {
namespace {

using util::Millis;

/// Captures everything a replica sends to this actor.
class Probe : public sim::Actor {
 public:
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    messages.push_back({from, msg});
  }

  template <typename T>
  const T* Last() const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (auto* m = dynamic_cast<const T*>(it->second.get())) return m;
    }
    return nullptr;
  }

  template <typename T>
  int Count() const {
    int count = 0;
    for (const auto& [from, msg] : messages) {
      if (dynamic_cast<const T*>(msg.get()) != nullptr) ++count;
    }
    return count;
  }

  std::vector<std::pair<sim::ActorId, sim::MessagePtr>> messages;
};

/// One replica under test (id 1, follower of the genesis leader at id 0)
/// surrounded by probe actors in the other slots.
class ReplicaUnitTest : public ::testing::Test {
 protected:
  ReplicaUnitTest()
      : sim_(1),
        net_(&sim_, sim::LatencyModel::Fixed(0.5), sim::CostModel{}),
        keys_(99) {
    PrestigeConfig config;
    config.n = 4;
    config.batch_size = 10;
    config.timeout_min = Millis(400);
    config.timeout_max = Millis(600);
    replica_ = std::make_unique<PrestigeReplica>(config, 1, &keys_);

    // Actor 0..3 are replicas (probe, replica-under-test, probe, probe);
    // actor 4 is a client-pool probe.
    sim_.AddActor(&probes_[0]);
    probes_[0].AttachNetwork(&net_);
    sim_.AddActor(replica_.get());
    replica_->AttachNetwork(&net_);
    sim_.AddActor(&probes_[2]);
    probes_[2].AttachNetwork(&net_);
    sim_.AddActor(&probes_[3]);
    probes_[3].AttachNetwork(&net_);
    sim_.AddActor(&client_probe_);
    client_probe_.AttachNetwork(&net_);

    replica_->SetTopology({0, 1, 2, 3}, {4});
    sim_.ScheduleAfter(0, [this] { replica_->OnStart(); });
    sim_.RunUntil(1);
  }

  /// Leader-signed Ord for a fresh block at the replica's next sequence.
  std::shared_ptr<OrdMsg> MakeOrd(types::SeqNum n, uint64_t salt = 0) {
    auto ord = std::make_shared<OrdMsg>();
    ord->v = 1;
    ord->n = n;
    ord->prev_hash = replica_->store().LatestTxDigest();
    types::Transaction tx;
    tx.pool = 0;
    tx.client_seq = 100 + static_cast<uint64_t>(n);
    tx.fingerprint = 7 + salt;
    ord->txs.push_back(tx);

    ledger::TxBlock block;
    block.v = ord->v;
    block.set_n(ord->n);
    block.set_prev_hash(ord->prev_hash);
    block.set_txs(ord->txs);
    const crypto::Sha256Digest ord_digest =
        ledger::OrderingDigest(ord->v, ord->n, block.Digest());
    ord->sig = keys_.Sign(0, ord_digest);  // Leader is replica 0.
    return ord;
  }

  void Deliver(sim::ActorId from, sim::MessagePtr msg) {
    net_.Send(from, 1, std::move(msg));
    sim_.RunUntil(sim_.Now() + Millis(10));
  }

  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::unique_ptr<PrestigeReplica> replica_;
  Probe probes_[4];  // Index 1 unused.
  Probe client_probe_;
};

// ------------------------------------------------------------ replication

TEST_F(ReplicaUnitTest, FollowerRepliesToValidOrd) {
  Deliver(0, MakeOrd(1));
  const auto* reply = probes_[0].Last<OrdReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->n, 1);
  EXPECT_EQ(reply->partial.signer, 1u);
}

TEST_F(ReplicaUnitTest, RejectsOrdWithBadLeaderSignature) {
  auto ord = MakeOrd(1);
  ord->sig.mac[0] ^= 0xff;
  Deliver(0, ord);
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, RejectsOrdImpersonatingLeader) {
  // Replica 2 (not the leader) sends a self-signed Ord.
  auto ord = MakeOrd(1);
  ledger::TxBlock block;
  block.v = ord->v;
  block.set_n(ord->n);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  ord->sig = keys_.Sign(2, ledger::OrderingDigest(1, 1, block.Digest()));
  Deliver(2, ord);
  EXPECT_EQ(probes_[2].Count<OrdReplyMsg>(), 0);
}

TEST_F(ReplicaUnitTest, EquivocationGuardRefusesSecondBlockAtSameSeq) {
  Deliver(0, MakeOrd(1, /*salt=*/0));
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 1);
  // Same (v, n), different content: the follower must not sign it.
  Deliver(0, MakeOrd(1, /*salt=*/1));
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 1);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, RepeatedIdenticalOrdIsIdempotent) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);
  Deliver(0, ord);
  // Both deliveries produce a reply (retransmission-friendly) but the
  // pending block is stored once.
  EXPECT_GE(probes_[0].Count<OrdReplyMsg>(), 1);
  EXPECT_EQ(replica_->pending_block_count(), 1u);
}

TEST_F(ReplicaUnitTest, CmtRequiresValidOrderingQc) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);

  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest digest = block.Digest();

  auto cmt = std::make_shared<CmtMsg>();
  cmt->v = 1;
  cmt->n = 1;
  cmt->block_digest = digest;
  // Fabricate a QC with too few signers (2 < 2f+1 = 3).
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(1, 1, digest);
  crypto::QuorumCertBuilder builder(ord_digest, 2);
  builder.Add(keys_.Sign(0, ord_digest), ord_digest);
  builder.Add(keys_.Sign(2, ord_digest), ord_digest);
  cmt->ordering_qc = builder.Build();
  cmt->sig = keys_.Sign(0, ledger::CommitDigest(1, 1, digest));
  Deliver(0, cmt);

  EXPECT_EQ(probes_[0].Count<CmtReplyMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, FullTwoPhaseCommitDeliversNotif) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);

  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest digest = block.Digest();
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(1, 1, digest);
  const crypto::Sha256Digest cmt_digest = ledger::CommitDigest(1, 1, digest);

  crypto::QuorumCertBuilder ord_builder(ord_digest, 3);
  for (uint32_t r : {0u, 1u, 2u}) {
    ord_builder.Add(keys_.Sign(r, ord_digest), ord_digest);
  }
  auto cmt = std::make_shared<CmtMsg>();
  cmt->v = 1;
  cmt->n = 1;
  cmt->block_digest = digest;
  cmt->ordering_qc = ord_builder.Build();
  cmt->sig = keys_.Sign(0, cmt_digest);
  Deliver(0, cmt);
  EXPECT_EQ(probes_[0].Count<CmtReplyMsg>(), 1);

  crypto::QuorumCertBuilder cmt_builder(cmt_digest, 3);
  for (uint32_t r : {0u, 1u, 2u}) {
    cmt_builder.Add(keys_.Sign(r, cmt_digest), cmt_digest);
  }
  block.ordering_qc = ord_builder.Build();
  block.commit_qc = cmt_builder.Build();
  auto txb = std::make_shared<TxBlockMsg>();
  txb->block = block;
  Deliver(0, txb);

  EXPECT_EQ(replica_->store().LatestTxSeq(), 1);
  // The client pool (actor 4) received a commit notification.
  EXPECT_GE(client_probe_.Count<types::CommitNotif>(), 1);
}

TEST_F(ReplicaUnitTest, TxBlockWithForgedQcRejected) {
  auto ord = MakeOrd(1);
  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest cmt_digest =
      ledger::CommitDigest(1, 1, block.Digest());
  crypto::QuorumCertBuilder builder(cmt_digest, 3);
  for (uint32_t r : {0u, 2u, 3u}) {
    builder.Add(keys_.Sign(r, cmt_digest), cmt_digest);
  }
  block.commit_qc = builder.Build();
  block.commit_qc.partials[0].mac[1] ^= 0x80;  // Tamper.
  auto txb = std::make_shared<TxBlockMsg>();
  txb->block = block;
  Deliver(0, txb);
  EXPECT_EQ(replica_->store().LatestTxSeq(), 0);
}

// ------------------------------------------------------------ view change

TEST_F(ReplicaUnitTest, CampaignWithWeakConfQcRejected) {
  // Craft a campaign whose conf_QC has threshold 1 (< f+1 = 2).
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 1);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 2;
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits = 8;
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);

  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, CampaignWithWrongRpRejected) {
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 2);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);
  conf.Add(keys_.Sign(3, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 1;  // CalcRP would give 2 (penalization with no history).
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits = 4;
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);

  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 0);
}

TEST_F(ReplicaUnitTest, ValidCampaignEarnsVoteExactlyOnce) {
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 2);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);
  conf.Add(keys_.Sign(3, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 2;  // rp_temp = 1 + 1 = 2, delta_tx = 0 => rp' = 2, ci' = 1.
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits =
      crypto::PowParams{}.DifficultyBits(2);
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);
  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 1);

  // C1: a second campaign for the same view (even from another server)
  // gets no vote.
  auto rival = std::make_shared<CampMsg>();
  *rival = *camp;
  rival->sig = keys_.Sign(3, CampaignDigest(*rival));
  Deliver(3, rival);
  EXPECT_EQ(probes_[3].Count<VoteCpMsg>(), 0);
}

TEST_F(ReplicaUnitTest, ConfVcForComplaintRequiresMatchingComplaint) {
  // A ConfVC citing a complaint this replica never saw gets no ReVC.
  auto conf = std::make_shared<ConfVcMsg>();
  conf->v = 1;
  conf->reason = VcReason::kClientComplaint;
  conf->tx.pool = 0;
  conf->tx.client_seq = 4242;
  conf->sig = keys_.Sign(2, ledger::ConfDigest(1));
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 0);
}

TEST_F(ReplicaUnitTest, TimeoutConfVcSupportedOnlyWhenStale) {
  auto conf = std::make_shared<ConfVcMsg>();
  conf->v = 1;
  conf->reason = VcReason::kTimeout;
  conf->sig = keys_.Sign(2, ledger::ConfDigest(1));
  // Not stale yet: no support.
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 0);

  // Let the progress timer expire (no leader traffic), then retry.
  sim_.RunUntil(sim_.Now() + Millis(700));
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 1);
}

TEST_F(ReplicaUnitTest, StaleViewMessagesIgnored) {
  auto ord = MakeOrd(1);
  ord->v = 0;  // Below the replica's view.
  Deliver(0, ord);
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 0);
}

// ------------------------------------------------------------ leader side

/// Replica 0 as the genesis leader surrounded by probes: exercises the
/// leader's batching pipeline directly.
class LeaderUnitTest : public ::testing::Test {
 protected:
  LeaderUnitTest()
      : sim_(1),
        net_(&sim_, sim::LatencyModel::Fixed(0.5), sim::CostModel{}),
        keys_(99) {
    PrestigeConfig config;
    config.n = 4;
    config.batch_size = 10;
    config.max_inflight = 1;  // A single full batch wedges the pipeline.
    config.batch_wait = Millis(20);
    // Keep heartbeats / retransmissions / timeouts out of the test window.
    config.timeout_min = util::Seconds(10);
    config.timeout_max = util::Seconds(11);
    leader_ = std::make_unique<PrestigeReplica>(config, 0, &keys_);

    sim_.AddActor(leader_.get());
    leader_->AttachNetwork(&net_);
    for (int i = 1; i <= 3; ++i) {
      sim_.AddActor(&probes_[i]);
      probes_[i].AttachNetwork(&net_);
    }
    sim_.AddActor(&client_probe_);
    client_probe_.AttachNetwork(&net_);

    leader_->SetTopology({0, 1, 2, 3}, {4});
    sim_.ScheduleAfter(0, [this] { leader_->OnStart(); });
    sim_.RunUntil(1);
  }

  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::unique_ptr<PrestigeReplica> leader_;
  Probe probes_[4];  // Indices 1..3 are the peer replicas.
  Probe client_probe_;
};

// Regression: the batch timer fired while the pipeline was full used to
// consume the partial-batch trigger — the leftover transactions then waited
// a whole extra batch_wait after a slot freed (and kept starving while the
// timer kept landing on a full pipeline). The expired deadline must survive
// until the partial is actually proposed.
TEST_F(LeaderUnitTest, PartialBatchSurvivesFullPipeline) {
  // 13 transactions: one full batch (10) occupies the single pipeline
  // slot; 3 are left pending behind the armed batch timer.
  auto batch = std::make_shared<types::ClientBatch>();
  for (uint64_t i = 0; i < 13; ++i) {
    types::Transaction tx;
    tx.pool = 0;
    tx.client_seq = i + 1;
    tx.fingerprint = 0x1000 + i;
    batch->txs.push_back(tx);
  }
  sim_.ScheduleAt(Millis(1), [&] { net_.Send(4, 0, batch); });
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 1);
  EXPECT_EQ(leader_->inflight_instances(), 1u);
  EXPECT_EQ(leader_->pending_pool_size(), 3u);

  // The batch timer fires (~22 ms) while the pipeline is still full: the
  // partial cannot go out, but the trigger must not be lost.
  sim_.RunUntil(Millis(30));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 1);
  EXPECT_EQ(leader_->pending_pool_size(), 3u);

  // Complete the in-flight instance: ordering replies from replicas 2 + 3
  // (quorum with the leader's own signature), then commit replies.
  const OrdMsg* ord = probes_[1].Last<OrdMsg>();
  ASSERT_NE(ord, nullptr);
  ledger::TxBlock block;
  block.v = ord->v;
  block.set_n(ord->n);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  block.status.assign(block.BatchSize(), 1);
  const crypto::Sha256Digest digest = block.Digest();
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(ord->v, ord->n, digest);
  for (uint32_t r : {2u, 3u}) {
    auto reply = std::make_shared<OrdReplyMsg>();
    reply->v = ord->v;
    reply->n = ord->n;
    reply->partial = crypto::Signer(&keys_, r).Sign(ord_digest);
    net_.Send(r, 0, reply);
  }
  sim_.RunUntil(Millis(32));
  ASSERT_EQ(probes_[1].Count<CmtMsg>(), 1);
  const crypto::Sha256Digest cmt_digest =
      ledger::CommitDigest(ord->v, ord->n, digest);
  for (uint32_t r : {2u, 3u}) {
    auto reply = std::make_shared<CmtReplyMsg>();
    reply->v = ord->v;
    reply->n = ord->n;
    reply->partial = crypto::Signer(&keys_, r).Sign(cmt_digest);
    net_.Send(r, 0, reply);
  }

  // The slot frees on commit (~33 ms). The overdue partial must be
  // proposed immediately — the re-armed timer alone would only fire at
  // ~42 ms, after this deadline.
  sim_.RunUntil(Millis(38));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 2);
  EXPECT_EQ(probes_[1].Last<OrdMsg>()->txs.size(), 3u);
  EXPECT_EQ(leader_->pending_pool_size(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace prestige
