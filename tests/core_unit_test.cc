// White-box unit tests for PrestigeReplica's message-validation paths:
// crafted (including malicious) messages are injected directly and the
// replica's reactions observed — covering the adversarial branches that
// integration tests reach only probabilistically.

#include <gtest/gtest.h>

#include "core/replica.h"
#include "runtime/sim_env.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace prestige {
namespace core {
namespace {

using util::Millis;

/// Captures everything a replica sends to this actor.
class Probe : public sim::Actor {
 public:
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    messages.push_back({from, msg});
  }

  template <typename T>
  const T* Last() const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (auto* m = dynamic_cast<const T*>(it->second.get())) return m;
    }
    return nullptr;
  }

  template <typename T>
  int Count() const {
    int count = 0;
    for (const auto& [from, msg] : messages) {
      if (dynamic_cast<const T*>(msg.get()) != nullptr) ++count;
    }
    return count;
  }

  std::vector<std::pair<sim::ActorId, sim::MessagePtr>> messages;
};

/// One replica under test (id 1, follower of the genesis leader at id 0)
/// surrounded by probe actors in the other slots.
class ReplicaUnitTest : public ::testing::Test {
 protected:
  ReplicaUnitTest()
      : sim_(1),
        net_(&sim_, sim::LatencyModel::Fixed(0.5), sim::CostModel{}),
        keys_(99) {
    PrestigeConfig config;
    config.n = 4;
    config.batch_size = 10;
    config.timeout_min = Millis(400);
    config.timeout_max = Millis(600);
    replica_ = std::make_unique<PrestigeReplica>(config, 1, &keys_);

    // Actor 0..3 are replicas (probe, replica-under-test, probe, probe);
    // actor 4 is a client-pool probe.
    sim_.AddActor(&probes_[0]);
    probes_[0].AttachNetwork(&net_);
    replica_env_ = std::make_unique<runtime::SimEnv>(replica_.get());
    sim_.AddActor(replica_env_.get());
    replica_env_->AttachNetwork(&net_);
    sim_.AddActor(&probes_[2]);
    probes_[2].AttachNetwork(&net_);
    sim_.AddActor(&probes_[3]);
    probes_[3].AttachNetwork(&net_);
    sim_.AddActor(&client_probe_);
    client_probe_.AttachNetwork(&net_);

    replica_->SetTopology({0, 1, 2, 3}, {4});
    sim_.ScheduleAfter(0, [this] { replica_->OnStart(); });
    sim_.RunUntil(1);
  }

  /// Leader-signed Ord for a fresh block at the replica's next sequence.
  std::shared_ptr<OrdMsg> MakeOrd(types::SeqNum n, uint64_t salt = 0) {
    auto ord = std::make_shared<OrdMsg>();
    ord->v = 1;
    ord->n = n;
    ord->prev_hash = replica_->store().LatestTxDigest();
    types::Transaction tx;
    tx.pool = 0;
    tx.client_seq = 100 + static_cast<uint64_t>(n);
    tx.fingerprint = 7 + salt;
    ord->txs.push_back(tx);

    ledger::TxBlock block;
    block.v = ord->v;
    block.set_n(ord->n);
    block.set_prev_hash(ord->prev_hash);
    block.set_txs(ord->txs);
    const crypto::Sha256Digest ord_digest =
        ledger::OrderingDigest(ord->v, ord->n, block.Digest());
    ord->sig = keys_.Sign(0, ord_digest);  // Leader is replica 0.
    return ord;
  }

  void Deliver(sim::ActorId from, sim::MessagePtr msg) {
    net_.Send(from, 1, std::move(msg));
    sim_.RunUntil(sim_.Now() + Millis(10));
  }

  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::unique_ptr<PrestigeReplica> replica_;
  std::unique_ptr<runtime::SimEnv> replica_env_;
  Probe probes_[4];  // Index 1 unused.
  Probe client_probe_;
};

// ------------------------------------------------------------ replication

TEST_F(ReplicaUnitTest, FollowerRepliesToValidOrd) {
  Deliver(0, MakeOrd(1));
  const auto* reply = probes_[0].Last<OrdReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->n, 1);
  EXPECT_EQ(reply->partial.signer, 1u);
}

TEST_F(ReplicaUnitTest, RejectsOrdWithBadLeaderSignature) {
  auto ord = MakeOrd(1);
  ord->sig.mac[0] ^= 0xff;
  Deliver(0, ord);
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, RejectsOrdImpersonatingLeader) {
  // Replica 2 (not the leader) sends a self-signed Ord.
  auto ord = MakeOrd(1);
  ledger::TxBlock block;
  block.v = ord->v;
  block.set_n(ord->n);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  ord->sig = keys_.Sign(2, ledger::OrderingDigest(1, 1, block.Digest()));
  Deliver(2, ord);
  EXPECT_EQ(probes_[2].Count<OrdReplyMsg>(), 0);
}

TEST_F(ReplicaUnitTest, EquivocationGuardRefusesSecondBlockAtSameSeq) {
  Deliver(0, MakeOrd(1, /*salt=*/0));
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 1);
  // Same (v, n), different content: the follower must not sign it.
  Deliver(0, MakeOrd(1, /*salt=*/1));
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 1);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, RepeatedIdenticalOrdIsIdempotent) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);
  Deliver(0, ord);
  // Both deliveries produce a reply (retransmission-friendly) but the
  // pending block is stored once.
  EXPECT_GE(probes_[0].Count<OrdReplyMsg>(), 1);
  EXPECT_EQ(replica_->pending_block_count(), 1u);
}

TEST_F(ReplicaUnitTest, CmtRequiresValidOrderingQc) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);

  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest digest = block.Digest();

  auto cmt = std::make_shared<CmtMsg>();
  cmt->v = 1;
  cmt->n = 1;
  cmt->block_digest = digest;
  // Fabricate a QC with too few signers (2 < 2f+1 = 3).
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(1, 1, digest);
  crypto::QuorumCertBuilder builder(ord_digest, 2);
  builder.Add(keys_.Sign(0, ord_digest), ord_digest);
  builder.Add(keys_.Sign(2, ord_digest), ord_digest);
  cmt->ordering_qc = builder.Build();
  cmt->sig = keys_.Sign(0, ledger::CommitDigest(1, 1, digest));
  Deliver(0, cmt);

  EXPECT_EQ(probes_[0].Count<CmtReplyMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, FullTwoPhaseCommitDeliversNotif) {
  auto ord = MakeOrd(1);
  Deliver(0, ord);

  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest digest = block.Digest();
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(1, 1, digest);
  const crypto::Sha256Digest cmt_digest = ledger::CommitDigest(1, 1, digest);

  crypto::QuorumCertBuilder ord_builder(ord_digest, 3);
  for (uint32_t r : {0u, 1u, 2u}) {
    ord_builder.Add(keys_.Sign(r, ord_digest), ord_digest);
  }
  auto cmt = std::make_shared<CmtMsg>();
  cmt->v = 1;
  cmt->n = 1;
  cmt->block_digest = digest;
  cmt->ordering_qc = ord_builder.Build();
  cmt->sig = keys_.Sign(0, cmt_digest);
  Deliver(0, cmt);
  EXPECT_EQ(probes_[0].Count<CmtReplyMsg>(), 1);

  crypto::QuorumCertBuilder cmt_builder(cmt_digest, 3);
  for (uint32_t r : {0u, 1u, 2u}) {
    cmt_builder.Add(keys_.Sign(r, cmt_digest), cmt_digest);
  }
  block.ordering_qc = ord_builder.Build();
  block.commit_qc = cmt_builder.Build();
  auto txb = std::make_shared<TxBlockMsg>();
  txb->block = block;
  Deliver(0, txb);

  EXPECT_EQ(replica_->store().LatestTxSeq(), 1);
  // The client pool (actor 4) received a reply carrying the execution
  // result of its transaction.
  ASSERT_GE(client_probe_.Count<types::ClientReply>(), 1);
  const auto* reply = client_probe_.Last<types::ClientReply>();
  ASSERT_EQ(reply->entries.size(), 1u);
  EXPECT_EQ(reply->entries[0].client_seq, 101u);
  EXPECT_FALSE(reply->entries[0].duplicate);
  EXPECT_EQ(reply->replica, 1u);
}

TEST_F(ReplicaUnitTest, TxBlockWithForgedQcRejected) {
  auto ord = MakeOrd(1);
  ledger::TxBlock block;
  block.v = 1;
  block.set_n(1);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  const crypto::Sha256Digest cmt_digest =
      ledger::CommitDigest(1, 1, block.Digest());
  crypto::QuorumCertBuilder builder(cmt_digest, 3);
  for (uint32_t r : {0u, 2u, 3u}) {
    builder.Add(keys_.Sign(r, cmt_digest), cmt_digest);
  }
  block.commit_qc = builder.Build();
  block.commit_qc.partials[0].mac[1] ^= 0x80;  // Tamper.
  auto txb = std::make_shared<TxBlockMsg>();
  txb->block = block;
  Deliver(0, txb);
  EXPECT_EQ(replica_->store().LatestTxSeq(), 0);
}

// ------------------------------------------------------------ view change

TEST_F(ReplicaUnitTest, CampaignWithWeakConfQcRejected) {
  // Craft a campaign whose conf_QC has threshold 1 (< f+1 = 2).
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 1);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 2;
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits = 8;
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);

  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 0);
  EXPECT_GT(replica_->metrics().invalid_messages, 0);
}

TEST_F(ReplicaUnitTest, CampaignWithWrongRpRejected) {
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 2);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);
  conf.Add(keys_.Sign(3, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 1;  // CalcRP would give 2 (penalization with no history).
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits = 4;
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);

  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 0);
}

TEST_F(ReplicaUnitTest, ValidCampaignEarnsVoteExactlyOnce) {
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 2);
  conf.Add(keys_.Sign(2, conf_digest), conf_digest);
  conf.Add(keys_.Sign(3, conf_digest), conf_digest);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = conf.Build();
  camp->v = 1;
  camp->v_new = 2;
  camp->rp = 2;  // rp_temp = 1 + 1 = 2, delta_tx = 0 => rp' = 2, ci' = 1.
  camp->ci = 1;
  camp->latest_n = 0;
  camp->claimed_difficulty_bits =
      crypto::PowParams{}.DifficultyBits(2);
  camp->sig = keys_.Sign(2, CampaignDigest(*camp));
  Deliver(2, camp);
  EXPECT_EQ(probes_[2].Count<VoteCpMsg>(), 1);

  // C1: a second campaign for the same view (even from another server)
  // gets no vote.
  auto rival = std::make_shared<CampMsg>();
  *rival = *camp;
  rival->sig = keys_.Sign(3, CampaignDigest(*rival));
  Deliver(3, rival);
  EXPECT_EQ(probes_[3].Count<VoteCpMsg>(), 0);
}

TEST_F(ReplicaUnitTest, ConfVcForComplaintRequiresMatchingComplaint) {
  // A ConfVC citing a complaint this replica never saw gets no ReVC.
  auto conf = std::make_shared<ConfVcMsg>();
  conf->v = 1;
  conf->reason = VcReason::kClientComplaint;
  conf->tx.pool = 0;
  conf->tx.client_seq = 4242;
  conf->sig = keys_.Sign(2, ledger::ConfDigest(1));
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 0);
}

TEST_F(ReplicaUnitTest, TimeoutConfVcSupportedOnlyWhenStale) {
  auto conf = std::make_shared<ConfVcMsg>();
  conf->v = 1;
  conf->reason = VcReason::kTimeout;
  conf->sig = keys_.Sign(2, ledger::ConfDigest(1));
  // Not stale yet: no support.
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 0);

  // Let the progress timer expire (no leader traffic), then retry.
  sim_.RunUntil(sim_.Now() + Millis(700));
  Deliver(2, conf);
  EXPECT_EQ(probes_[2].Count<ReVcMsg>(), 1);
}

TEST_F(ReplicaUnitTest, StaleViewMessagesIgnored) {
  auto ord = MakeOrd(1);
  ord->v = 0;  // Below the replica's view.
  Deliver(0, ord);
  EXPECT_EQ(probes_[0].Count<OrdReplyMsg>(), 0);
}

// ------------------------------------------------------------ leader side

/// Replica 0 as the genesis leader surrounded by probes: exercises the
/// leader's batching pipeline directly.
class LeaderUnitTest : public ::testing::Test {
 protected:
  LeaderUnitTest()
      : sim_(1),
        net_(&sim_, sim::LatencyModel::Fixed(0.5), sim::CostModel{}),
        keys_(99) {
    PrestigeConfig config;
    config.n = 4;
    config.batch_size = 10;
    config.max_inflight = 1;  // A single full batch wedges the pipeline.
    config.batch_wait = Millis(20);
    // Keep heartbeats / retransmissions / timeouts out of the test window.
    config.timeout_min = util::Seconds(10);
    config.timeout_max = util::Seconds(11);
    leader_ = std::make_unique<PrestigeReplica>(config, 0, &keys_);

    leader_env_ = std::make_unique<runtime::SimEnv>(leader_.get());
    sim_.AddActor(leader_env_.get());
    leader_env_->AttachNetwork(&net_);
    for (int i = 1; i <= 3; ++i) {
      sim_.AddActor(&probes_[i]);
      probes_[i].AttachNetwork(&net_);
    }
    sim_.AddActor(&client_probe_);
    client_probe_.AttachNetwork(&net_);

    leader_->SetTopology({0, 1, 2, 3}, {4});
    sim_.ScheduleAfter(0, [this] { leader_->OnStart(); });
    sim_.RunUntil(1);
  }

  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::unique_ptr<PrestigeReplica> leader_;
  std::unique_ptr<runtime::SimEnv> leader_env_;
  Probe probes_[4];  // Indices 1..3 are the peer replicas.
  Probe client_probe_;
};

// Regression: the batch timer fired while the pipeline was full used to
// consume the partial-batch trigger — the leftover transactions then waited
// a whole extra batch_wait after a slot freed (and kept starving while the
// timer kept landing on a full pipeline). The expired deadline must survive
// until the partial is actually proposed.
TEST_F(LeaderUnitTest, PartialBatchSurvivesFullPipeline) {
  // 13 transactions: one full batch (10) occupies the single pipeline
  // slot; 3 are left pending behind the armed batch timer.
  auto batch = std::make_shared<types::ClientBatch>();
  for (uint64_t i = 0; i < 13; ++i) {
    types::Transaction tx;
    tx.pool = 0;
    tx.client_seq = i + 1;
    tx.fingerprint = 0x1000 + i;
    batch->txs.push_back(tx);
  }
  sim_.ScheduleAt(Millis(1), [&] { net_.Send(4, 0, batch); });
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 1);
  EXPECT_EQ(leader_->inflight_instances(), 1u);
  EXPECT_EQ(leader_->pending_pool_size(), 3u);

  // The batch timer fires (~22 ms) while the pipeline is still full: the
  // partial cannot go out, but the trigger must not be lost.
  sim_.RunUntil(Millis(30));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 1);
  EXPECT_EQ(leader_->pending_pool_size(), 3u);

  // Complete the in-flight instance: ordering replies from replicas 2 + 3
  // (quorum with the leader's own signature), then commit replies.
  const OrdMsg* ord = probes_[1].Last<OrdMsg>();
  ASSERT_NE(ord, nullptr);
  ledger::TxBlock block;
  block.v = ord->v;
  block.set_n(ord->n);
  block.set_prev_hash(ord->prev_hash);
  block.set_txs(ord->txs);
  block.status.assign(block.BatchSize(), 1);
  const crypto::Sha256Digest digest = block.Digest();
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(ord->v, ord->n, digest);
  for (uint32_t r : {2u, 3u}) {
    auto reply = std::make_shared<OrdReplyMsg>();
    reply->v = ord->v;
    reply->n = ord->n;
    reply->partial = crypto::Signer(&keys_, r).Sign(ord_digest);
    net_.Send(r, 0, reply);
  }
  sim_.RunUntil(Millis(32));
  ASSERT_EQ(probes_[1].Count<CmtMsg>(), 1);
  const crypto::Sha256Digest cmt_digest =
      ledger::CommitDigest(ord->v, ord->n, digest);
  for (uint32_t r : {2u, 3u}) {
    auto reply = std::make_shared<CmtReplyMsg>();
    reply->v = ord->v;
    reply->n = ord->n;
    reply->partial = crypto::Signer(&keys_, r).Sign(cmt_digest);
    net_.Send(r, 0, reply);
  }

  // The slot frees on commit (~33 ms). The overdue partial must be
  // proposed immediately — the re-armed timer alone would only fire at
  // ~42 ms, after this deadline.
  sim_.RunUntil(Millis(38));
  ASSERT_EQ(probes_[1].Count<OrdMsg>(), 2);
  EXPECT_EQ(probes_[1].Last<OrdMsg>()->txs.size(), 3u);
  EXPECT_EQ(leader_->pending_pool_size(), 0u);
}

// ------------------------------------------- complaint / probe lifecycle
//
// Complaint-wait timer tags carry only 48 payload bits, so 64-bit
// complaint keys route through the complaint_probe_keys_ table. These
// tests pin the table's lifecycle: entries must die with their complaint
// on every resolution path — commit, fire, and view install — never only
// when the timer fires.

/// Complaint/commit helpers layered on the ReplicaUnitTest fixture.
class ComplaintLifecycleTest : public ReplicaUnitTest {
 protected:
  types::Transaction MakeTx(uint64_t seq) {
    types::Transaction tx;
    tx.pool = 0;
    tx.client_seq = seq;
    tx.fingerprint = seq * 31 + 7;
    return tx;
  }

  void Complain(const types::Transaction& tx) {
    auto compt = std::make_shared<types::ClientComplaint>();
    compt->tx = tx;
    Deliver(4, compt);  // Actor 4 is the client-pool probe.
  }

  /// Commits `tx` at the replica's next sequence via a QC-bearing
  /// TxBlockMsg (the follower commit path).
  void Commit(const types::Transaction& tx) {
    ledger::TxBlock block;
    block.v = 1;
    block.set_n(replica_->store().LatestTxSeq() + 1);
    block.set_prev_hash(replica_->store().LatestTxDigest());
    block.set_txs({tx});
    const crypto::Sha256Digest cmt_digest =
        ledger::CommitDigest(block.v, block.n(), block.Digest());
    crypto::QuorumCertBuilder builder(cmt_digest, 3);
    for (uint32_t r : {0u, 1u, 2u}) {
      builder.Add(keys_.Sign(r, cmt_digest), cmt_digest);
    }
    block.commit_qc = builder.Build();
    auto msg = std::make_shared<TxBlockMsg>();
    msg->block = block;
    Deliver(0, msg);
  }
};

TEST_F(ComplaintLifecycleTest, CommitResolutionErasesProbeBeforeTimerFires) {
  const types::Transaction tx = MakeTx(1);
  Complain(tx);
  EXPECT_EQ(replica_->complaint_count(), 1u);
  EXPECT_EQ(replica_->complaint_probe_count(), 1u);

  Commit(tx);  // Well before the 300 ms complaint wait.
  EXPECT_EQ(replica_->complaint_count(), 0u);
  EXPECT_EQ(replica_->complaint_probe_count(), 0u);
}

TEST_F(ComplaintLifecycleTest, ChurningComplaintsKeepsProbeTableBounded) {
  // Complain → commit, many times over: both tables must return to empty
  // every round, not accumulate fired-or-cancelled leftovers.
  for (uint64_t round = 1; round <= 12; ++round) {
    const types::Transaction tx = MakeTx(round);
    Complain(tx);
    ASSERT_EQ(replica_->complaint_count(), 1u) << "round " << round;
    ASSERT_EQ(replica_->complaint_probe_count(), 1u) << "round " << round;
    Commit(tx);
    ASSERT_EQ(replica_->complaint_count(), 0u) << "round " << round;
    ASSERT_EQ(replica_->complaint_probe_count(), 0u) << "round " << round;
  }
}

TEST_F(ComplaintLifecycleTest, EscalationReComplaintCycleDoesNotLeakProbes) {
  const types::Transaction tx = MakeTx(1);
  // Repeatedly let the complaint wait expire (escalation), then
  // re-complain: each cycle arms a fresh probe and retires the old one.
  for (int cycle = 0; cycle < 6; ++cycle) {
    Complain(tx);
    ASSERT_EQ(replica_->complaint_count(), 1u);
    ASSERT_LE(replica_->complaint_probe_count(), 1u);
    sim_.RunUntil(sim_.Now() + Millis(350));  // Past complaint_wait.
    // Fired timer retires its probe; the escalated complaint remains for
    // peers' ConfVC support checks.
    ASSERT_EQ(replica_->complaint_probe_count(), 0u);
    ASSERT_EQ(replica_->complaint_count(), 1u);
  }
  Commit(tx);
  EXPECT_EQ(replica_->complaint_count(), 0u);
  EXPECT_EQ(replica_->complaint_probe_count(), 0u);
}

TEST_F(ComplaintLifecycleTest, UncommittedComplaintsClearOnViewInstall) {
  Complain(MakeTx(1));
  Complain(MakeTx(2));
  EXPECT_EQ(replica_->complaint_count(), 2u);
  EXPECT_EQ(replica_->complaint_probe_count(), 2u);

  // Install view 2 via sync: complaints targeted the old leader, so both
  // tables clear together.
  ledger::VcBlock block;
  block.set_v(2);
  block.set_leader(2);
  block.set_confirmed_view(1);
  block.set_prev_hash(replica_->store().LatestVcBlock()->Digest());
  for (types::ReplicaId r = 0; r < 4; ++r) {
    block.SetPenalty(r, 1);
    block.SetCompensation(r, 1);
  }
  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(1);
  crypto::QuorumCertBuilder conf(conf_digest, 2);
  for (uint32_t r : {2u, 3u}) conf.Add(keys_.Sign(r, conf_digest), conf_digest);
  block.conf_qc = conf.Build();
  const crypto::Sha256Digest vote_digest = ledger::VoteDigest(2, 2);
  crypto::QuorumCertBuilder votes(vote_digest, 3);
  for (uint32_t r : {0u, 2u, 3u}) {
    votes.Add(keys_.Sign(r, vote_digest), vote_digest);
  }
  block.vc_qc = votes.Build();

  auto sync = std::make_shared<SyncRespMsg>();
  sync->vc_blocks.push_back(block);
  Deliver(2, sync);

  EXPECT_EQ(replica_->view(), 2);
  EXPECT_EQ(replica_->complaint_count(), 0u);
  EXPECT_EQ(replica_->complaint_probe_count(), 0u);
}

// ----------------------------------------------------- refresh overlay

/// Pins EffectiveRp / EffectiveCi semantics: stored vcBlock values by
/// default, refresh overlay takes precedence, overlay folds away on the
/// next vcBlock install (§4.2.5).
class RefreshOverlayTest : public ReplicaUnitTest {
 protected:
  /// Builds a fully certified vcBlock extending the replica's chain.
  ledger::VcBlock MakeVcBlock(types::View v, types::ReplicaId leader) {
    ledger::VcBlock block;
    block.set_v(v);
    block.set_leader(leader);
    block.set_confirmed_view(v - 1);
    block.set_prev_hash(replica_->store().LatestVcBlock()->Digest());
    const crypto::Sha256Digest conf_digest = ledger::ConfDigest(v - 1);
    crypto::QuorumCertBuilder conf(conf_digest, 2);
    for (uint32_t r : {2u, 3u}) {
      conf.Add(keys_.Sign(r, conf_digest), conf_digest);
    }
    block.conf_qc = conf.Build();
    const crypto::Sha256Digest vote_digest = ledger::VoteDigest(v, leader);
    crypto::QuorumCertBuilder votes(vote_digest, 3);
    for (uint32_t r : {0u, 2u, 3u}) {
      votes.Add(keys_.Sign(r, vote_digest), vote_digest);
    }
    block.vc_qc = votes.Build();
    return block;
  }

  void Install(const ledger::VcBlock& block) {
    auto sync = std::make_shared<SyncRespMsg>();
    sync->vc_blocks.push_back(block);
    Deliver(2, sync);
  }
};

TEST_F(RefreshOverlayTest, GenesisYieldsInitialValues) {
  for (types::ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(replica_->EffectiveRp(r), 1);
    EXPECT_EQ(replica_->EffectiveCi(r), 1);
  }
}

TEST_F(RefreshOverlayTest, VcBlockValuesAreAuthoritativeWithoutOverlay) {
  ledger::VcBlock block = MakeVcBlock(2, /*leader=*/2);
  block.SetPenalty(3, 7);
  block.SetCompensation(3, 4);
  Install(block);
  ASSERT_EQ(replica_->view(), 2);
  EXPECT_EQ(replica_->EffectiveRp(3), 7);
  EXPECT_EQ(replica_->EffectiveCi(3), 4);
  // Untouched ids read the block defaults.
  EXPECT_EQ(replica_->EffectiveRp(2), 1);
  EXPECT_EQ(replica_->EffectiveCi(2), 1);
}

TEST_F(RefreshOverlayTest, OverlayTakesPrecedenceOverStoredValues) {
  ledger::VcBlock block = MakeVcBlock(2, /*leader=*/2);
  block.SetPenalty(3, 9);
  block.SetCompensation(3, 5);
  Install(block);
  ASSERT_EQ(replica_->EffectiveRp(3), 9);

  // A certified Rdone resets replica 3's effective values to the initial
  // ones even though the stored vcBlock still says 9/5.
  const crypto::Sha256Digest refresh_digest = ledger::RefreshDigest(3, 2);
  crypto::QuorumCertBuilder rs(refresh_digest, 3);
  for (uint32_t r : {0u, 2u, 3u}) {
    rs.Add(keys_.Sign(r, refresh_digest), refresh_digest);
  }
  auto done = std::make_shared<RdoneMsg>();
  done->target = 3;
  done->v = 2;
  done->rs_qc = rs.Build();
  done->sig = keys_.Sign(3, refresh_digest);
  Deliver(3, done);

  EXPECT_EQ(replica_->EffectiveRp(3), 1);
  EXPECT_EQ(replica_->EffectiveCi(3), 1);
  // The overlay is per-server: others still read stored values.
  EXPECT_EQ(replica_->EffectiveRp(2), 1);
  // The store itself is untouched — only the overlay differs.
  EXPECT_EQ(replica_->store().LatestVcBlock()->PenaltyOf(3), 9);
}

TEST_F(RefreshOverlayTest, OverlayFoldsAwayOnNextVcBlockInstall) {
  ledger::VcBlock block = MakeVcBlock(2, /*leader=*/2);
  block.SetPenalty(3, 9);
  Install(block);

  const crypto::Sha256Digest refresh_digest = ledger::RefreshDigest(3, 2);
  crypto::QuorumCertBuilder rs(refresh_digest, 3);
  for (uint32_t r : {0u, 2u, 3u}) {
    rs.Add(keys_.Sign(r, refresh_digest), refresh_digest);
  }
  auto done = std::make_shared<RdoneMsg>();
  done->target = 3;
  done->v = 2;
  done->rs_qc = rs.Build();
  done->sig = keys_.Sign(3, refresh_digest);
  Deliver(3, done);
  ASSERT_EQ(replica_->EffectiveRp(3), 1);  // Overlay active.

  // The next vcBlock is assumed to carry the folded-in values; the
  // overlay must yield to whatever it records.
  ledger::VcBlock next = MakeVcBlock(3, /*leader=*/3);
  next.SetPenalty(3, 5);
  next.SetCompensation(3, 2);
  Install(next);
  ASSERT_EQ(replica_->view(), 3);
  EXPECT_EQ(replica_->EffectiveRp(3), 5);
  EXPECT_EQ(replica_->EffectiveCi(3), 2);
}

}  // namespace
}  // namespace core
}  // namespace prestige
