// Unit tests for the workload layer: closed-loop client pools and fault
// specifications.

#include <gtest/gtest.h>

#include "app/service.h"
#include "runtime/sim_env.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "types/client_messages.h"
#include "workload/client_pool.h"
#include "types/fault_spec.h"

namespace prestige {
namespace workload {
namespace {

using types::AttackStrategy;
using types::FaultSpec;
using types::FaultType;
using types::LeaderMisbehaviour;

using util::Millis;
using util::Seconds;

/// A scripted replica that acknowledges everything it receives with its
/// own replica id. The client binds reply votes to the transport sender,
/// so a quorum requires this many distinct acking actors.
class AckingReplica : public sim::Actor {
 public:
  explicit AckingReplica(types::ReplicaId id) : id_(id) {}

  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    if (auto* batch = dynamic_cast<const types::ClientBatch*>(msg.get())) {
      received_ += static_cast<int64_t>(batch->txs.size());
      if (!respond_) return;
      // All replicas report the same (empty) execution result, so their
      // result digests match as an honest cluster's would.
      auto reply = std::make_shared<types::ClientReply>();
      reply->replica = id_;
      reply->n = ++seq_;
      reply->pool = 0;
      for (const types::Transaction& tx : batch->txs) {
        types::ReplyEntry entry;
        entry.client_seq = tx.client_seq;
        entry.status = static_cast<uint8_t>(app::ExecStatus::kOk);
        entry.result_digest = app::ResultDigest(app::Response{});
        reply->entries.push_back(entry);
      }
      Send(from, reply);
    } else if (auto* compt =
                   dynamic_cast<const types::ClientComplaint*>(msg.get())) {
      ++complaints_;
      (void)compt;
    }
  }

  void set_respond(bool respond) { respond_ = respond; }
  int64_t received() const { return received_; }
  int64_t complaints() const { return complaints_; }

 private:
  types::ReplicaId id_;
  bool respond_ = true;
  int64_t received_ = 0;
  int64_t complaints_ = 0;
  types::SeqNum seq_ = 0;
};

struct PoolFixture {
  explicit PoolFixture(ClientPoolConfig config, int ack_replicas = 2)
      : sim(1), net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{}),
        pool(config) {
    std::vector<runtime::NodeId> replica_ids;
    for (int r = 0; r < ack_replicas; ++r) {
      replicas.push_back(
          std::make_unique<AckingReplica>(static_cast<types::ReplicaId>(r)));
      replica_ids.push_back(sim.AddActor(replicas.back().get()));
      replicas.back()->AttachNetwork(&net);
    }
    pool_env = std::make_unique<runtime::SimEnv>(&pool);
    sim.AddActor(pool_env.get());
    pool_env->AttachNetwork(&net);
    pool.SetReplicas(replica_ids);
  }

  /// First acking replica (all receive identical broadcasts).
  AckingReplica& replica() { return *replicas[0]; }
  void SetRespond(bool respond) {
    for (auto& r : replicas) r->set_respond(respond);
  }

  sim::Simulator sim;
  sim::Network net;
  std::vector<std::unique_ptr<AckingReplica>> replicas;
  ClientPool pool;
  std::unique_ptr<runtime::SimEnv> pool_env;
};

ClientPoolConfig PoolConfig(uint32_t clients = 10, uint32_t f = 1) {
  ClientPoolConfig config;
  config.pool_id = 0;
  config.num_clients = clients;
  config.f = f;
  config.request_timeout = Millis(500);
  return config;
}

TEST(ClientPoolTest, IssuesOneRequestPerClientAtStart) {
  PoolFixture fx(PoolConfig(25));
  fx.SetRespond(false);
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Millis(100));
  EXPECT_EQ(fx.replica().received(), 25);
  EXPECT_EQ(fx.pool.outstanding(), 25u);
}

TEST(ClientPoolTest, ClosedLoopIssuesNextAfterCommit) {
  PoolFixture fx(PoolConfig(10));
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Millis(200));
  // With immediate acks the loop spins: far more than 10 requests total.
  EXPECT_GT(fx.pool.committed(), 50);
  EXPECT_EQ(fx.pool.outstanding(), 10u);  // Always exactly one per client.
}

TEST(ClientPoolTest, RequiresFPlusOneAcks) {
  // Only 1 ack per request but f=2 => never committed.
  PoolFixture fx(PoolConfig(5, /*f=*/2), /*ack_replicas=*/1);
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Millis(300));
  EXPECT_EQ(fx.pool.committed(), 0);
  EXPECT_EQ(fx.pool.outstanding(), 5u);
}

TEST(ClientPoolTest, DuplicateAcksFromSameReplicaDoNotCount) {
  // Two distinct acking replicas while f=2 requires 3 matching votes:
  // however often they re-ack (votes are bound to the transport sender),
  // the quorum can never form.
  PoolFixture need3(PoolConfig(5, /*f=*/2), /*ack_replicas=*/2);
  need3.sim.ScheduleAfter(0, [&] { need3.pool.OnStart(); });
  need3.sim.RunUntil(Millis(200));
  EXPECT_EQ(need3.pool.committed(), 0);
}

TEST(ClientPoolTest, ComplainsAboutOverdueRequests) {
  PoolFixture fx(PoolConfig(8));
  fx.SetRespond(false);
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Seconds(2));
  EXPECT_GT(fx.replica().complaints(), 0);
  EXPECT_GT(fx.pool.complaints_sent(), 0);
}

TEST(ClientPoolTest, LatencyIsMeasured) {
  PoolFixture fx(PoolConfig(10));
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Millis(100));
  ASSERT_GT(fx.pool.latencies().count(), 0u);
  // One-way fixed 1 ms each direction + aggregation window.
  EXPECT_GT(fx.pool.latencies().Mean(), 1.5);
  EXPECT_LT(fx.pool.latencies().Mean(), 20.0);
}

TEST(ClientPoolTest, StopAtHaltsNewRequests) {
  ClientPoolConfig config = PoolConfig(10);
  config.stop_at = Millis(50);
  PoolFixture fx(config);
  fx.sim.ScheduleAfter(0, [&] { fx.pool.OnStart(); });
  fx.sim.RunUntil(Seconds(1));
  const int64_t committed_at_stop = fx.pool.committed();
  fx.sim.RunUntil(Seconds(2));
  // Outstanding drains to zero and no new requests appear.
  EXPECT_EQ(fx.pool.outstanding(), 0u);
  EXPECT_EQ(fx.pool.committed(), committed_at_stop);
}

// -------------------------------------------------------------- FaultSpec

TEST(FaultSpecTest, FactoriesSetFields) {
  EXPECT_FALSE(FaultSpec::Honest().IsByzantine());
  EXPECT_TRUE(FaultSpec::Quiet().IsByzantine());
  EXPECT_EQ(FaultSpec::Crash(util::Seconds(3)).start_at, util::Seconds(3));
  const FaultSpec f4 = FaultSpec::RepeatedVc(
      AttackStrategy::kS2, LeaderMisbehaviour::kEquivocate, 3.0);
  EXPECT_EQ(f4.type, FaultType::kRepeatedVc);
  EXPECT_EQ(f4.strategy, AttackStrategy::kS2);
  EXPECT_EQ(f4.as_leader, LeaderMisbehaviour::kEquivocate);
  EXPECT_DOUBLE_EQ(f4.collusion_speedup, 3.0);
}

TEST(FaultSpecTest, TimeoutAttackMimicsVictim) {
  FaultSpec spec = FaultSpec::TimeoutAttack();
  spec.mimic_target = 2;
  spec.has_mimic_target = true;
  EXPECT_EQ(spec.type, FaultType::kTimeoutAttack);
  EXPECT_EQ(spec.mimic_target, 2u);
}

}  // namespace
}  // namespace workload
}  // namespace prestige
