// Wire codec + datagram framing hardening tests (src/net/).
//
// Two layers under test, both of which treat their input as hostile:
//   * net::EncodeMessage / net::DecodeMessage — byte-exact transport
//     serialization for every cross-process message type; any malformed
//     input must yield nullptr, never UB (the ASan/UBSan CI matrix runs
//     this suite, which is what makes the adversarial corpus meaningful);
//   * net::FrameWriter / net::FrameAssembler — datagram framing with
//     fragmentation, per-(src,dst) sequence tracking, and counted drops.
//
// The roundtrip strategy avoids per-field comparisons: decode(encode(m))
// must re-encode to the identical byte string, which proves full fidelity
// for every field the codec carries.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/sbft/sbft_replica.h"
#include "core/messages.h"
#include "net/address.h"
#include "net/frame.h"
#include "net/wire.h"
#include "types/client_messages.h"

namespace prestige {
namespace net {
namespace {

types::Transaction SampleTx(uint32_t pool, uint64_t seq) {
  types::Transaction tx;
  tx.pool = pool;
  tx.client_seq = seq;
  tx.group = 3;
  tx.sent_at = 123456789;
  tx.payload_size = 64;
  tx.fingerprint = 0xfeedface00ull + seq;
  tx.command = {0x01, 0x02, 0x03, static_cast<uint8_t>(seq)};
  return tx;
}

crypto::Signature SampleSig(uint32_t signer) {
  crypto::Signature sig;
  sig.signer = signer;
  for (size_t i = 0; i < sig.mac.size(); ++i) {
    sig.mac[i] = static_cast<uint8_t>(signer + i);
  }
  return sig;
}

crypto::QuorumCert SampleQc() {
  crypto::QuorumCert qc;
  for (size_t i = 0; i < qc.digest.size(); ++i) {
    qc.digest[i] = static_cast<uint8_t>(0xa0 + i);
  }
  qc.threshold = 3;
  qc.partials = {SampleSig(0), SampleSig(1), SampleSig(2)};
  return qc;
}

ledger::TxBlock SampleBlock(int64_t n) {
  ledger::TxBlock b;
  b.v = 7;
  b.set_n(n);
  crypto::Sha256Digest prev{};
  prev[0] = static_cast<uint8_t>(n);
  b.set_prev_hash(prev);
  b.set_txs({SampleTx(0, 1), SampleTx(1, 2)});
  b.status = {0xde, 0xad};
  b.ordering_qc = SampleQc();
  b.commit_qc = SampleQc();
  return b;
}

ledger::VcBlock SampleVcBlock() {
  ledger::VcBlock b;
  b.set_v(9);
  b.set_leader(2);
  b.set_confirmed_view(8);
  crypto::Sha256Digest prev{};
  prev[1] = 0x42;
  b.set_prev_hash(prev);
  b.SetPenalty(0, 5);
  b.SetPenalty(3, -2);
  b.SetCompensation(1, 7);
  b.conf_qc = SampleQc();
  b.vc_qc = SampleQc();
  return b;
}

/// One instance of every message family the codec carries, exercising
/// every component serializer (tx, tx vector, block, vc block, QC, sig,
/// reply entries, enums).
std::vector<runtime::MessagePtr> SampleMessages() {
  std::vector<runtime::MessagePtr> out;

  auto ord = std::make_shared<core::OrdMsg>();
  ord->v = 3;
  ord->n = 17;
  ord->prev_hash = crypto::Sha256Digest{};
  ord->txs = {SampleTx(0, 1), SampleTx(2, 9)};
  ord->sig = SampleSig(1);
  out.push_back(ord);

  auto cmt = std::make_shared<core::CmtMsg>();
  cmt->v = 3;
  cmt->n = 17;
  cmt->block_digest = SampleQc().digest;
  cmt->ordering_qc = SampleQc();
  cmt->sig = SampleSig(0);
  out.push_back(cmt);

  auto camp = std::make_shared<core::CampMsg>();
  camp->conf_qc = SampleQc();
  camp->v = 4;
  camp->v_new = 6;
  camp->rp = -12;
  camp->ci = 2;
  camp->nonce = 0x1234567890abcdefull;
  camp->hash_result = SampleQc().digest;
  camp->claimed_difficulty_bits = 18;
  camp->latest_tx_block = SampleBlock(5);
  camp->latest_n = 5;
  camp->latest_vc_view = 3;
  camp->sig = SampleSig(2);
  out.push_back(camp);

  auto conf = std::make_shared<core::ConfVcMsg>();
  conf->v = 11;
  conf->reason = core::VcReason::kPolicy;
  conf->tx = SampleTx(1, 4);
  conf->sig = SampleSig(3);
  out.push_back(conf);

  auto vcb = std::make_shared<core::VcBlockMsg>();
  vcb->block = SampleVcBlock();
  out.push_back(vcb);

  auto sync_req = std::make_shared<core::SyncReqMsg>();
  sync_req->kind = core::SyncReqMsg::Kind::kVcBlocks;
  sync_req->after = 3;
  sync_req->up_to = 40;
  out.push_back(sync_req);

  auto sync = std::make_shared<core::SyncRespMsg>();
  sync->tx_blocks = {SampleBlock(1), SampleBlock(2)};
  sync->vc_blocks = {SampleVcBlock()};
  out.push_back(sync);

  auto noise = std::make_shared<core::NoiseMsg>();
  noise->bytes = 512;
  out.push_back(noise);

  auto batch = std::make_shared<types::ClientBatch>();
  batch->txs = {SampleTx(0, 1), SampleTx(0, 2), SampleTx(0, 3)};
  out.push_back(batch);

  auto reply = std::make_shared<types::ClientReply>();
  reply->replica = 2;
  reply->v = 3;
  reply->n = 17;
  reply->pool = 4;
  types::ReplyEntry e1;
  e1.client_seq = 41;
  e1.status = 1;
  e1.duplicate = true;
  e1.result_digest = 0xabcdull;
  e1.result = {0x01};
  types::ReplyEntry e2;
  e2.client_seq = 42;
  reply->entries = {e1, e2};
  out.push_back(reply);

  auto complaint = std::make_shared<types::ClientComplaint>();
  complaint->tx = SampleTx(2, 8);
  out.push_back(complaint);

  auto hs = std::make_shared<baselines::hotstuff::HsPhaseMsg>();
  hs->v = 2;
  hs->phase = baselines::hotstuff::HsPhase::kCommit;
  hs->n = 6;
  hs->block_digest = SampleQc().digest;
  hs->justify = SampleQc();
  hs->sig = SampleSig(1);
  out.push_back(hs);

  auto sb = std::make_shared<baselines::sbft::SbPrePrepareMsg>();
  sb->v = 1;
  sb->block = SampleBlock(3);
  sb->sig = SampleSig(0);
  sb->crypto_weight = 8;
  out.push_back(sb);

  return out;
}

std::vector<uint8_t> Encode(const runtime::NetMessage& msg) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(EncodeMessage(msg, &bytes));
  return bytes;
}

// ---------------------------------------------------------------- roundtrip

TEST(WireCodecTest, DecodeThenReencodeIsByteIdentical) {
  for (const runtime::MessagePtr& msg : SampleMessages()) {
    SCOPED_TRACE(msg->Name());
    const std::vector<uint8_t> bytes = Encode(*msg);
    ASSERT_FALSE(bytes.empty());
    const runtime::MessagePtr decoded =
        DecodeMessage(bytes.data(), bytes.size());
    ASSERT_NE(decoded, nullptr);
    EXPECT_STREQ(decoded->Name(), msg->Name());
    EXPECT_EQ(Encode(*decoded), bytes);
  }
}

// ------------------------------------------------------------- adversarial

TEST(WireCodecTest, EveryStrictPrefixIsRejected) {
  // The layout is length-prefixed, not self-terminating: a decode always
  // consumes the same byte count as the full encoding, so any strict
  // prefix must hit a bounds check and yield nullptr.
  for (const runtime::MessagePtr& msg : SampleMessages()) {
    SCOPED_TRACE(msg->Name());
    const std::vector<uint8_t> bytes = Encode(*msg);
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_EQ(DecodeMessage(bytes.data(), len), nullptr)
          << "prefix of length " << len << " decoded";
    }
  }
}

TEST(WireCodecTest, TrailingBytesAreRejected) {
  for (const runtime::MessagePtr& msg : SampleMessages()) {
    SCOPED_TRACE(msg->Name());
    std::vector<uint8_t> bytes = Encode(*msg);
    bytes.push_back(0x00);
    EXPECT_EQ(DecodeMessage(bytes.data(), bytes.size()), nullptr);
  }
}

TEST(WireCodecTest, UnknownKindsAreRejected) {
  // Kind bytes that are not (and never were) assigned, with a plausible
  // body behind them.
  const uint8_t kinds[] = {0, 20, 31, 35, 47, 52, 63, 67, 128, 255};
  for (const uint8_t kind : kinds) {
    std::vector<uint8_t> bytes(64, 0);
    bytes[0] = kind;
    EXPECT_EQ(DecodeMessage(bytes.data(), bytes.size()), nullptr)
        << "kind " << static_cast<int>(kind);
  }
  EXPECT_EQ(DecodeMessage(nullptr, 0), nullptr);
  const uint8_t one = 7;
  EXPECT_EQ(DecodeMessage(&one, 0), nullptr);
}

TEST(WireCodecTest, HostileCountsAreRejectedWithoutAllocation) {
  // A ClientBatch claiming 2^32-1 transactions in a 9-byte body: the count
  // validator must reject it before any reserve/loop.
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(MsgKind::kClientBatch),
                                0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00,
                                0x00};
  EXPECT_EQ(DecodeMessage(bytes.data(), bytes.size()), nullptr);

  // A CmtMsg whose QC claims 2^20 partial signatures.
  auto cmt = std::make_shared<core::CmtMsg>();
  cmt->ordering_qc = SampleQc();
  cmt->sig = SampleSig(0);
  std::vector<uint8_t> enc = Encode(*cmt);
  // QC partial count sits after kind(1) + v(8) + n(8) + digest(32) +
  // qc.digest(32) + qc.threshold(4).
  const size_t count_at = 1 + 8 + 8 + 32 + 32 + 4;
  enc[count_at + 0] = 0x00;
  enc[count_at + 1] = 0x00;
  enc[count_at + 2] = 0x10;
  enc[count_at + 3] = 0x00;
  EXPECT_EQ(DecodeMessage(enc.data(), enc.size()), nullptr);
}

TEST(WireCodecTest, OutOfRangeEnumsAreRejected) {
  // SyncReq kind byte only admits 0..1.
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(MsgKind::kSyncReq), 2};
  for (int i = 0; i < 16; ++i) bytes.push_back(0);
  EXPECT_EQ(DecodeMessage(bytes.data(), bytes.size()), nullptr);
  bytes[1] = 1;
  EXPECT_NE(DecodeMessage(bytes.data(), bytes.size()), nullptr);

  // NoiseMsg size over its cap.
  std::vector<uint8_t> noise = {static_cast<uint8_t>(MsgKind::kNoise),
                                0x01, 0x00, 0x10, 0x00};  // 1<<20 + 1.
  EXPECT_EQ(DecodeMessage(noise.data(), noise.size()), nullptr);
}

TEST(WireCodecTest, SingleByteCorruptionNeverCrashes) {
  // Flip every byte of every sample encoding through every of 3 masks.
  // A flip may still decode (the frame checksum guards integrity, not this
  // layer); the wire-level guarantee is no crash / no UB / no partial
  // object, which ASan/UBSan enforce when CI runs this suite.
  for (const runtime::MessagePtr& msg : SampleMessages()) {
    std::vector<uint8_t> bytes = Encode(*msg);
    for (size_t i = 0; i < bytes.size(); ++i) {
      const uint8_t masks[] = {0x01, 0x80, 0xff};
      for (const uint8_t mask : masks) {
        bytes[i] ^= mask;
        const runtime::MessagePtr decoded =
            DecodeMessage(bytes.data(), bytes.size());
        if (decoded != nullptr) {
          // Whatever decoded must itself be encodable (fully initialised).
          std::vector<uint8_t> re;
          EXPECT_TRUE(EncodeMessage(*decoded, &re));
        }
        bytes[i] ^= mask;
      }
    }
  }
}

// ----------------------------------------------------------------- framing

std::vector<uint8_t> Payload(size_t n) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(i * 31 + 7);
  return p;
}

TEST(FrameTest, SingleDatagramRoundtrip) {
  FrameWriter writer(/*src=*/1);
  FrameAssembler assembler(/*local_id=*/2);
  const std::vector<uint8_t> payload = Payload(100);
  const auto datagrams = writer.Split(2, payload);
  ASSERT_EQ(datagrams.size(), 1u);
  std::vector<FrameAssembler::Complete> out;
  assembler.Accept(datagrams[0].data(), datagrams[0].size(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src, 1u);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_EQ(assembler.counters().messages_assembled, 1u);
  EXPECT_EQ(assembler.counters().seq_gaps, 0u);
}

TEST(FrameTest, FragmentedMessageReassembles) {
  FrameWriter writer(3);
  FrameAssembler assembler(4);
  const std::vector<uint8_t> payload = Payload(2 * kMaxFragPayload + 1234);
  const auto datagrams = writer.Split(4, payload);
  ASSERT_EQ(datagrams.size(), 3u);
  std::vector<FrameAssembler::Complete> out;
  // Deliver out of order: framing reassembles by frag_index, not arrival.
  assembler.Accept(datagrams[2].data(), datagrams[2].size(), &out);
  assembler.Accept(datagrams[0].data(), datagrams[0].size(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.pending_partials(), 1u);
  assembler.Accept(datagrams[1].data(), datagrams[1].size(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_EQ(assembler.pending_partials(), 0u);
}

TEST(FrameTest, ChecksumCorruptionIsCountedDrop) {
  FrameWriter writer(1);
  FrameAssembler assembler(2);
  auto datagrams = writer.Split(2, Payload(64));
  ASSERT_EQ(datagrams.size(), 1u);
  datagrams[0].back() ^= 0xff;  // Corrupt the final payload byte.
  std::vector<FrameAssembler::Complete> out;
  assembler.Accept(datagrams[0].data(), datagrams[0].size(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.counters().checksum_drops, 1u);
}

TEST(FrameTest, ShortAndGarbageDatagramsAreHeaderDrops) {
  FrameAssembler assembler(2);
  std::vector<FrameAssembler::Complete> out;
  const std::vector<uint8_t> garbage(kFrameHeaderBytes + 8, 0x5a);
  assembler.Accept(garbage.data(), garbage.size(), &out);  // Bad magic.
  assembler.Accept(garbage.data(), 5, &out);               // Too short.
  assembler.Accept(garbage.data(), 0, &out);               // Empty.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.counters().header_drops, 3u);
}

TEST(FrameTest, WrongDestinationIsCountedDrop) {
  FrameWriter writer(1);
  FrameAssembler assembler(2);
  const auto datagrams = writer.Split(/*dst=*/9, Payload(32));
  std::vector<FrameAssembler::Complete> out;
  assembler.Accept(datagrams[0].data(), datagrams[0].size(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.counters().wrong_dst_drops, 1u);
}

TEST(FrameTest, PayloadLengthLiesAreCountedDrops) {
  FrameWriter writer(1);
  FrameAssembler assembler(2);
  auto datagrams = writer.Split(2, Payload(64));
  ASSERT_EQ(datagrams.size(), 1u);
  // payload_len sits at offset 30 in the header (see net/frame.cc layout);
  // claim more bytes than the datagram carries.
  std::vector<uint8_t> lying = datagrams[0];
  lying[30] = 0xff;
  lying[31] = 0xff;
  std::vector<FrameAssembler::Complete> out;
  assembler.Accept(lying.data(), lying.size(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.counters().length_drops, 1u);
}

TEST(FrameTest, DuplicateAndGapSequencesAreObserved) {
  FrameWriter writer(1);
  FrameAssembler assembler(2);
  const auto d1 = writer.Split(2, Payload(16));
  const auto d2 = writer.Split(2, Payload(16));
  const auto d3 = writer.Split(2, Payload(16));
  std::vector<FrameAssembler::Complete> out;
  assembler.Accept(d1[0].data(), d1[0].size(), &out);
  // Skip d2 entirely: seq gap.
  assembler.Accept(d3[0].data(), d3[0].size(), &out);
  EXPECT_EQ(assembler.counters().seq_gaps, 1u);
  // Replay d1: duplicate / reordered.
  assembler.Accept(d1[0].data(), d1[0].size(), &out);
  EXPECT_EQ(assembler.counters().seq_out_of_order, 1u);
}

TEST(FrameTest, ReassemblyTableIsBounded) {
  FrameAssembler assembler(2);
  std::vector<FrameAssembler::Complete> out;
  // 4 * kMaxReassembly distinct two-fragment messages, never completed:
  // the partial table must stay at its cap, evicting oldest-first.
  for (uint32_t i = 0; i < 4 * kMaxReassembly; ++i) {
    FrameWriter writer(/*src=*/100 + i);
    const auto frags = writer.Split(2, Payload(kMaxFragPayload + 10));
    ASSERT_EQ(frags.size(), 2u);
    assembler.Accept(frags[0].data(), frags[0].size(), &out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_LE(assembler.pending_partials(), kMaxReassembly);
  EXPECT_GE(assembler.counters().frag_drops, 3 * kMaxReassembly);
}

TEST(FrameTest, CorruptedDatagramFuzzNeverCrashes) {
  // Byte-flip sweep over a fragmented message's datagrams: every variant
  // must be either assembled or counted as a drop — never a crash, an
  // out-of-range read (ASan), or unbounded memory.
  FrameWriter writer(1);
  const auto datagrams = writer.Split(2, Payload(kMaxFragPayload + 99));
  for (const auto& datagram : datagrams) {
    for (size_t i = 0; i < std::min<size_t>(datagram.size(), 256); ++i) {
      FrameAssembler assembler(2);
      std::vector<uint8_t> mutant = datagram;
      mutant[i] ^= 0xff;
      std::vector<FrameAssembler::Complete> out;
      assembler.Accept(mutant.data(), mutant.size(), &out);
    }
  }
}

// ------------------------------------------------------------ cluster config

TEST(AddressTest, ClusterConfigRoundtrips) {
  ClusterConfig config;
  config.seed = 42;
  config.protocol = "hotstuff";
  config.n = 4;
  config.batch = 700;
  config.pools = 2;
  config.clients_per_pool = 150;
  config.payload = 48;
  config.duration_us = 2500000;
  for (uint32_t i = 0; i < 6; ++i) {
    PeerEntry peer;
    peer.id = i;
    peer.kind = i < 4 ? PeerEntry::Kind::kReplica : PeerEntry::Kind::kPool;
    peer.data = {0x7f000001, static_cast<uint16_t>(9000 + i)};
    peer.control = {0x7f000001, static_cast<uint16_t>(9100 + i)};
    config.peers.push_back(peer);
  }
  ClusterConfig parsed;
  std::string error;
  ASSERT_TRUE(ParseClusterConfig(FormatClusterConfig(config), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.seed, config.seed);
  EXPECT_EQ(parsed.protocol, config.protocol);
  EXPECT_EQ(parsed.n, config.n);
  EXPECT_EQ(parsed.peers.size(), config.peers.size());
  EXPECT_EQ(parsed.ReplicaIds().size(), 4u);
  EXPECT_EQ(parsed.PoolIds().size(), 2u);
  ASSERT_NE(parsed.Find(5), nullptr);
  EXPECT_EQ(parsed.Find(5)->kind, PeerEntry::Kind::kPool);
  EXPECT_EQ(parsed.Find(5)->data.ToString(), "127.0.0.1:9005");
  EXPECT_EQ(parsed.Find(99), nullptr);
}

TEST(AddressTest, MalformedConfigsAreRejected) {
  ClusterConfig parsed;
  std::string error;
  EXPECT_FALSE(ParseClusterConfig("", &parsed, &error));
  EXPECT_FALSE(ParseClusterConfig("garbage here\n", &parsed, &error));
  EXPECT_FALSE(ParseClusterConfig(
      "node 0 replica not-an-addr 127.0.0.1:1\n", &parsed, &error));
  // Duplicate node ids.
  EXPECT_FALSE(ParseClusterConfig(
      "node 0 replica 127.0.0.1:9000 127.0.0.1:9100\n"
      "node 0 replica 127.0.0.1:9001 127.0.0.1:9101\n",
      &parsed, &error));
}

TEST(AddressTest, SockAddrParsing) {
  SockAddr addr;
  EXPECT_TRUE(ParseSockAddr("127.0.0.1:8080", &addr));
  EXPECT_EQ(addr.ip, 0x7f000001u);
  EXPECT_EQ(addr.port, 8080);
  EXPECT_EQ(addr.ToString(), "127.0.0.1:8080");
  EXPECT_FALSE(ParseSockAddr("127.0.0.1", &addr));
  EXPECT_FALSE(ParseSockAddr("300.0.0.1:80", &addr));
  EXPECT_FALSE(ParseSockAddr("1.2.3.4:99999", &addr));
  EXPECT_FALSE(ParseSockAddr("1.2.3.4:80x", &addr));
}

}  // namespace
}  // namespace net
}  // namespace prestige
