// Integration tests for the baseline protocols: HotStuff (passive VC),
// SBFT-like collector BFT, and Prosecutor (monotone-penalty PrestigeBFT).

#include <gtest/gtest.h>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/prosecutor/prosecutor.h"
#include "baselines/sbft/sbft_replica.h"
#include "harness/cluster.h"

namespace prestige {
namespace baselines {
namespace {

using harness::Cluster;
using harness::WorkloadOptions;
using util::Millis;
using util::Seconds;

using HsCluster = Cluster<hotstuff::HotStuffReplica, hotstuff::HotStuffConfig>;
using SbCluster = Cluster<sbft::SbftReplica, sbft::SbftConfig>;
using PsCluster = Cluster<prosecutor::ProsecutorReplica, core::PrestigeConfig>;

WorkloadOptions SmallWorkload(uint64_t seed = 1) {
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 50;
  w.client_timeout = Seconds(2);
  w.seed = seed;
  return w;
}

// --------------------------------------------------------------- HotStuff

hotstuff::HotStuffConfig HsConfig(uint32_t n = 4) {
  hotstuff::HotStuffConfig config;
  config.n = n;
  config.batch_size = 100;
  config.view_timeout = Millis(800);
  return config;
}

TEST(HotStuffTest, CommitsUnderNormalOperation) {
  HsCluster cluster(HsConfig(), SmallWorkload());
  cluster.Start();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.ClientCommitted(), 1000);
  // Chains agree across replicas.
  const auto& a = cluster.replica(0).store().tx_chain();
  for (uint32_t i = 1; i < 4; ++i) {
    const auto& b = cluster.replica(i).store().tx_chain();
    const size_t common = std::min(a.size(), b.size());
    for (size_t k = 0; k < common; ++k) {
      ASSERT_EQ(a[k].Digest(), b[k].Digest());
    }
  }
}

TEST(HotStuffTest, LatencyHigherThanPrestige) {
  // Three QC phases + decide: more rounds than PrestigeBFT's two phases.
  HsCluster cluster(HsConfig(), SmallWorkload(3));
  cluster.Start();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.MeanLatencyMs(), 4.0);
}

TEST(HotStuffTest, PassiveRotationCannotSkipCrashedLeader) {
  // Crash the NEXT scheduled leader. When rotation reaches it, the system
  // must wait out a timeout (the paper's Figure 1 scenario).
  hotstuff::HotStuffConfig config = HsConfig();
  config.rotation_period = Millis(500);
  HsCluster cluster(config, SmallWorkload(5));
  cluster.Start();
  cluster.RunFor(Millis(200));
  cluster.SetReplicaDown(2, true);  // A future scheduled leader.
  cluster.RunFor(Seconds(6));
  // Progress continued overall (timeouts moved past the crashed server)...
  EXPECT_GT(cluster.ClientCommitted(), 500);
  // ...but views advanced beyond the crashed server's slots.
  EXPECT_GT(cluster.replica(0).view(), 3);
}

TEST(HotStuffTest, QuietLeaderCausesTimeoutRotation) {
  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[1] = types::FaultSpec::Quiet();  // View-1 leader is 1 % 4 = 1.
  HsCluster cluster(HsConfig(), SmallWorkload(7), faults);
  cluster.Start();
  cluster.RunFor(Seconds(5));
  // The system rotated past the quiet leader and committed.
  EXPECT_GT(cluster.replica(0).view(), 1);
  EXPECT_GT(cluster.ClientCommitted(), 200);
}

TEST(HotStuffTest, DeterministicRuns) {
  auto run = [](uint64_t seed) {
    HsCluster cluster(HsConfig(), SmallWorkload(seed));
    cluster.Start();
    cluster.RunFor(Seconds(2));
    return cluster.ClientCommitted();
  };
  EXPECT_EQ(run(42), run(42));
}

// ------------------------------------------------------------------- SBFT

TEST(SbftTest, CommitsButSlowerThanLightweightCrypto) {
  sbft::SbftConfig config;
  config.n = 4;
  config.batch_size = 100;
  SbCluster cluster(config, SmallWorkload(9));
  cluster.Start();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.ClientCommitted(), 100);
}

TEST(SbftTest, HeavyCryptoWeightReducesThroughput) {
  auto run = [](int weight) {
    sbft::SbftConfig config;
    config.n = 4;
    config.batch_size = 100;
    config.crypto_weight = weight;
    SbCluster cluster(config, SmallWorkload(11));
    cluster.Start();
    cluster.RunFor(Seconds(3));
    return cluster.ClientCommitted();
  };
  EXPECT_GT(run(1), run(16));
}

// -------------------------------------------------------------- Prosecutor

TEST(ProsecutorTest, CommitsUnderNormalOperation) {
  core::PrestigeConfig config = prosecutor::MakeProsecutorConfig(4, 100);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);
  PsCluster cluster(config, SmallWorkload(13));
  cluster.Start();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.ClientCommitted(), 500);
}

TEST(ProsecutorTest, PenaltiesAreMonotone) {
  // With compensation disabled, an elected server's penalty never falls.
  core::PrestigeConfig config = prosecutor::MakeProsecutorConfig(4, 100);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);
  config.rotation_period = Seconds(1);
  PsCluster cluster(config, SmallWorkload(17));
  cluster.Start();
  cluster.RunFor(Seconds(6));
  for (uint32_t r = 0; r < 4; ++r) {
    const auto& history = cluster.replica(0).store().vc_chain();
    types::Penalty last = 0;
    for (const auto& block : history) {
      EXPECT_GE(block.PenaltyOf(r), last >= 1 ? 1 : last);
      if (block.leader() == r) {
        EXPECT_GE(block.PenaltyOf(r), last);
      }
      last = block.PenaltyOf(r);
    }
  }
}

}  // namespace
}  // namespace baselines
}  // namespace prestige
