// prestige_lint fixture suite.
//
// Every rule is exercised with at least one passing and one violating
// in-memory snippet, plus suppression-syntax coverage; the final tests run
// the checker over the real src/ tree (clean by construction — the CI lint
// job runs the same check) and pin the domain-tag registry to a golden
// list, so adding a message kind forces a conscious registry update here.

#include "prestige_lint/prestige_lint.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace prestige {
namespace lint {
namespace {

std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                         const std::string& rule = "") {
  Options options;
  if (!rule.empty()) options.rules.push_back(rule);
  return Lint(files, options);
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& path, int line = 0) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.path == path &&
                              (line == 0 || f.line == line);
                     });
}

// ----------------------------------------------------------------- layering

TEST(LayeringTest, CleanCoreDependenciesPass) {
  const std::vector<SourceFile> files = {
      {"core/replica.h",
       "#include \"types/ids.h\"\n#include \"runtime/env.h\"\n"},
      {"types/ids.h", "#include \"util/time.h\"\n"},
      {"runtime/env.h", ""},
      {"util/time.h", ""},
  };
  EXPECT_TRUE(RunLint(files, "layering").empty());
}

TEST(LayeringTest, DirectForbiddenIncludeFails) {
  const std::vector<SourceFile> files = {
      {"core/replica.h", "#include \"harness/cluster.h\"\n"},
      {"harness/cluster.h", ""},
  };
  const auto findings = RunLint(files, "layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(HasFinding(findings, "layering", "core/replica.h", 1));
  EXPECT_NE(findings[0].message.find("harness"), std::string::npos);
}

TEST(LayeringTest, TransitiveReachabilityFails) {
  // core -> types -> sim: the offending edge is core's include of types,
  // and the message names the full chain.
  const std::vector<SourceFile> files = {
      {"core/messages.h", "#include \"types/codec2.h\"\n"},
      {"types/codec2.h", "#include \"sim/network.h\"\n"},
      {"sim/network.h", ""},
  };
  const auto findings = RunLint(files, "layering");
  EXPECT_TRUE(HasFinding(findings, "layering", "core/messages.h", 1));
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("chain:"), std::string::npos);
  EXPECT_NE(findings[0].message.find("sim/network.h"), std::string::npos);
}

TEST(LayeringTest, AllProtectedAndForbiddenDirsCovered) {
  for (const char* protected_dir : {"core", "baselines", "client", "app"}) {
    for (const char* forbidden_dir : {"sim", "harness", "workload",
                                      "shard"}) {
      const std::string src = std::string(protected_dir) + "/x.h";
      const std::string dst = std::string(forbidden_dir) + "/y.h";
      const std::vector<SourceFile> files = {
          {src, "#include \"" + dst + "\"\n"},
          {dst, ""},
      };
      EXPECT_TRUE(HasFinding(RunLint(files, "layering"), "layering", src, 1))
          << src << " -> " << dst;
    }
  }
}

TEST(LayeringTest, UnprotectedDirsMayIncludeAnything) {
  // workload -> shard is the real PR 9 edge: generators route keys, but
  // shard/ itself stays out of protocol code (the loop above convicts
  // e.g. core -> shard).
  const std::vector<SourceFile> files = {
      {"harness/cluster.h", "#include \"sim/network.h\"\n"},
      {"bench_like/tool.h", "#include \"workload/client_pool.h\"\n"},
      {"workload/client_pool.h", "#include \"shard/router.h\"\n"},
      {"sim/network.h", ""},
      {"shard/router.h", ""},
  };
  EXPECT_TRUE(RunLint(files, "layering").empty());
}

TEST(LayeringTest, ForbiddenIncludeByPathAloneFailsWithoutTargetFile) {
  // The included file need not be part of the analyzed set: its path is
  // enough to convict the edge.
  const std::vector<SourceFile> files = {
      {"client/client.cc", "#include \"workload/fault_spec.h\"\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files, "layering"), "layering",
                         "client/client.cc", 1));
}

TEST(LayeringTest, IncludeCycleDoesNotHangOrCrash) {
  const std::vector<SourceFile> files = {
      {"core/a.h", "#include \"core/b.h\"\n"},
      {"core/b.h", "#include \"core/a.h\"\n"},
  };
  EXPECT_TRUE(RunLint(files, "layering").empty());
}

// -------------------------------------------------------------- determinism

TEST(DeterminismTest, EnvDrivenProtocolCodePasses) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "void Tick() { auto now = env().NowMicros(); auto r = rng().NextUint64();"
       " timeout_ = now + r; }\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

TEST(DeterminismTest, ChronoOutsideRuntimeFails) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "#include <chrono>\n"
       "auto T() { return std::chrono::steady_clock::now(); }\n"},
  };
  const auto findings = RunLint(files, "determinism");
  EXPECT_TRUE(HasFinding(findings, "determinism", "core/replica.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "determinism", "core/replica.cc", 2));
}

TEST(DeterminismTest, AmbientEntropyFails) {
  const std::vector<SourceFile> files = {
      {"ledger/block_store.cc",
       "int A() { return rand(); }\n"
       "std::random_device rd;\n"
       "int B() { return std::rand(); }\n"},
  };
  const auto findings = RunLint(files, "determinism");
  EXPECT_TRUE(HasFinding(findings, "determinism", "ledger/block_store.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "determinism", "ledger/block_store.cc", 2));
  EXPECT_TRUE(HasFinding(findings, "determinism", "ledger/block_store.cc", 3));
}

TEST(DeterminismTest, SleepAndTimeCallsFail) {
  const std::vector<SourceFile> files = {
      {"app/service.h",
       "void W() { std::this_thread::sleep_for(d); }\n"
       "long N() { return ::time(nullptr); }\n"},
  };
  const auto findings = RunLint(files, "determinism");
  EXPECT_TRUE(HasFinding(findings, "determinism", "app/service.h", 1));
  EXPECT_TRUE(HasFinding(findings, "determinism", "app/service.h", 2));
}

TEST(DeterminismTest, RuntimeSimHarnessAndTimeHeaderAreExempt) {
  const std::vector<SourceFile> files = {
      {"runtime/threaded_env.cc",
       "#include <chrono>\nauto e = std::chrono::steady_clock::now();\n"},
      {"sim/latency.cc", "#include <chrono>\n"},
      {"harness/threaded_cluster.h",
       "void S() { std::this_thread::sleep_for(x); }\n"},
      {"util/time.h", "#include <chrono>\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

TEST(DeterminismTest, IdentifierBoundariesAvoidFalsePositives) {
  // "timeout", "NextRand", "Timer", member .time() calls: none of these are
  // the banned primitives.
  const std::vector<SourceFile> files = {
      {"core/config.h",
       "int timeout_ms = 5; uint64_t NextRand(); struct Timer {};\n"
       "double t = stats.time();\n"
       "auto v = monochrono;\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

// --------------------------------------------------------------- codec-tags

TEST(CodecTagsTest, TaggedConstructionPasses) {
  const std::vector<SourceFile> files = {
      {"ledger/tx_block.cc",
       "types::HashingEncoder enc(\"ord\");\n"
       "types::Encoder wire(\"wire-tx\", 256);\n"},
  };
  EXPECT_TRUE(RunLint(files, "codec-tags").empty());
}

TEST(CodecTagsTest, NonLiteralTagFails) {
  const std::vector<SourceFile> files = {
      {"ledger/tx_block.cc",
       "types::HashingEncoder enc(tag_variable);\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files, "codec-tags"), "codec-tags",
                         "ledger/tx_block.cc", 1));
}

TEST(CodecTagsTest, TemporaryEncoderWithoutLiteralFails) {
  const std::vector<SourceFile> files = {
      {"core/messages.h", "auto d = types::Encoder(MakeTag()).Digest();\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files, "codec-tags"), "codec-tags",
                         "core/messages.h", 1));
}

TEST(CodecTagsTest, DuplicateDomainTagsFailAtEverySite) {
  const std::vector<SourceFile> files = {
      {"ledger/tx_block.cc", "types::HashingEncoder enc(\"ord\");\n"},
      {"core/messages.h", "types::HashingEncoder enc(\"ord\");\n"},
  };
  const auto findings = RunLint(files, "codec-tags");
  EXPECT_TRUE(HasFinding(findings, "codec-tags", "ledger/tx_block.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "codec-tags", "core/messages.h", 1));
  ASSERT_FALSE(findings.empty());
  // The message names every colliding site.
  EXPECT_NE(findings[0].message.find("ledger/tx_block.cc:1"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("core/messages.h:1"), std::string::npos);
}

TEST(CodecTagsTest, RawAppendOutsideCodecHeaderFails) {
  const std::vector<SourceFile> files = {
      {"core/messages.h", "enc.Append(bytes.data(), bytes.size());\n"},
      {"ledger/vc_block.cc", "enc->Append(p, n);\n"},
  };
  const auto findings = RunLint(files, "codec-tags");
  EXPECT_TRUE(HasFinding(findings, "codec-tags", "core/messages.h", 1));
  EXPECT_TRUE(HasFinding(findings, "codec-tags", "ledger/vc_block.cc", 1));
}

TEST(CodecTagsTest, CodecHeaderItselfIsExemptFromAppendAndCtorRules) {
  const std::vector<SourceFile> files = {
      {"types/codec.h",
       "explicit Encoder(const char* domain_tag) { PutString(domain_tag); }\n"
       "void PutU8(uint8_t v) { self().Append(&v, 1); }\n"},
  };
  EXPECT_TRUE(RunLint(files, "codec-tags").empty());
}

TEST(CodecTagsTest, ReferencesAndTemplateUsesAreNotConstructions) {
  const std::vector<SourceFile> files = {
      {"core/messages.h",
       "void Fill(types::Encoder& enc);\n"
       "std::vector<types::HashingEncoder>* pool;\n"},
  };
  EXPECT_TRUE(RunLint(files, "codec-tags").empty());
}

TEST(CodecTagsTest, ExtractDomainTagsReturnsSortedRegistry) {
  const std::vector<SourceFile> files = {
      {"ledger/tx_block.cc",
       "types::HashingEncoder a(\"ord\");\ntypes::HashingEncoder b(\"cmt\");\n"},
      {"core/messages.h", "types::HashingEncoder c(\"camp\");\n"},
  };
  const auto tags = ExtractDomainTags(files);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].tag, "camp");
  EXPECT_EQ(tags[1].tag, "cmt");
  EXPECT_EQ(tags[2].tag, "ord");
  EXPECT_EQ(tags[2].path, "ledger/tx_block.cc");
  EXPECT_EQ(tags[2].line, 1);
}

// ---------------------------------------------------------------- timer-tag

TEST(TimerTagTest, PackTimerTagHelperPasses) {
  const std::vector<SourceFile> files = {
      {"core/replica.h",
       "uint64_t Tag(TimerKind k, uint64_t p) {"
       " return util::PackTimerTag(k, p); }\n"},
  };
  EXPECT_TRUE(RunLint(files, "timer-tag").empty());
}

TEST(TimerTagTest, AdHocPackingFails) {
  const std::vector<SourceFile> files = {
      {"core/replica.h",
       "uint64_t tag = (static_cast<uint64_t>(kind) << 48) | seq;\n"},
  };
  EXPECT_TRUE(
      HasFinding(RunLint(files, "timer-tag"), "timer-tag", "core/replica.h", 1));
}

TEST(TimerTagTest, HandRolledUseOfPayloadBitsConstantFails) {
  const std::vector<SourceFile> files = {
      {"baselines/sbft/sbft_replica.h",
       "uint64_t tag = kind << util::kTimerTagPayloadBits;\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files, "timer-tag"), "timer-tag",
                         "baselines/sbft/sbft_replica.h", 1));
}

TEST(TimerTagTest, TimerTagHeaderItselfIsExempt) {
  const std::vector<SourceFile> files = {
      {"util/timer_tag.h",
       "return (static_cast<uint64_t>(kind) << kTimerTagPayloadBits) |\n"
       "       (payload & kTimerTagPayloadMask);\n"},
  };
  EXPECT_TRUE(RunLint(files, "timer-tag").empty());
}

TEST(TimerTagTest, SmallShiftsAndPureShiftsPass) {
  // Byte packing (<< 24) and large non-or'd shifts (1ull << 32) are not the
  // timer-tag bug class.
  const std::vector<SourceFile> files = {
      {"crypto/sha256.cc",
       "uint32_t v = (a << 24) | (b << 16) | (c << 8) | d;\n"
       "uint64_t max_iterations = 1ull << 48;\n"},
  };
  EXPECT_TRUE(RunLint(files, "timer-tag").empty());
}

// ---------------------------------------------------------------- adversary

TEST(AdversaryTest, PointerOnlyUseInProtocolCodePasses) {
  const std::vector<SourceFile> files = {
      {"core/replica.h",
       "const types::AdversaryPolicy* adversary_ = nullptr;\n"
       "void SetAdversary(const types::AdversaryPolicy* a) { adversary_ = a; "
       "}\n"},
      {"client/client.h",
       "const types::AdversaryPolicy  *adversary_ = nullptr;\n"},
  };
  EXPECT_TRUE(RunLint(files, "adversary").empty());
}

TEST(AdversaryTest, ScriptedAdversaryInProtocolCodeFails) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "harness::ScriptedAdversary adversary(spec);\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files, "adversary"), "adversary",
                         "core/replica.cc", 1));
}

TEST(AdversaryTest, NonPointerPolicyUseInProtocolCodeFails) {
  const std::vector<SourceFile> files = {
      {"baselines/hotstuff/hotstuff_replica.h",
       "types::AdversaryPolicy policy;\n"},
      {"client/client.cc",
       "class Evil : public types::AdversaryPolicy {};\n"},
      {"app/service.h",
       "const types::AdversaryPolicy& policy_ref = *adversary_;\n"},
  };
  const auto findings = RunLint(files, "adversary");
  EXPECT_TRUE(HasFinding(findings, "adversary",
                         "baselines/hotstuff/hotstuff_replica.h", 1));
  EXPECT_TRUE(HasFinding(findings, "adversary", "client/client.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "adversary", "app/service.h", 1));
}

TEST(AdversaryTest, HarnessAndTypesMayConstructPolicies) {
  const std::vector<SourceFile> files = {
      {"harness/adversary.h",
       "class ScriptedAdversary : public types::AdversaryPolicy {};\n"},
      {"types/adversary.h", "class AdversaryPolicy {};\n"},
  };
  EXPECT_TRUE(RunLint(files, "adversary").empty());
}

TEST(AdversaryTest, SuppressibleLikeEveryRule) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// lint:allow(adversary: test double lives here deliberately)\n"
       "harness::ScriptedAdversary adversary(spec);\n"},
  };
  EXPECT_TRUE(RunLint(files, "adversary").empty());
}

// ---------------------------------------------------------------- threading

TEST(ThreadingTest, ThreadHeadersInProtocolCodeFail) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "#include <mutex>\n"
       "#include <thread>\n"
       "#include <vector>\n"},
      {"baselines/sbft/sbft_replica.cc",
       "#include <atomic>\n"
       "#include <condition_variable>\n"},
  };
  const auto findings = RunLint(files, "threading");
  EXPECT_TRUE(HasFinding(findings, "threading", "core/replica.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "threading", "core/replica.cc", 2));
  EXPECT_TRUE(
      HasFinding(findings, "threading", "baselines/sbft/sbft_replica.cc", 1));
  EXPECT_TRUE(
      HasFinding(findings, "threading", "baselines/sbft/sbft_replica.cc", 2));
  // <vector> is not a threading header.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(ThreadingTest, RuntimeAndInfrastructureMayThread) {
  // runtime/ implements the worker pool; harness/sim drive it; client/'s
  // blocking Call() API is cross-thread by contract; ledger's digest cache
  // and util's logging are deliberately concurrent.
  const std::vector<SourceFile> files = {
      {"runtime/ordered_runner.h",
       "#include <condition_variable>\n#include <mutex>\n#include <thread>\n"},
      {"harness/threaded_cluster.h", "#include <thread>\n"},
      {"sim/network.h", "#include <atomic>\n"},
      {"client/client.cc", "#include <condition_variable>\n#include <mutex>\n"},
      {"ledger/digest_cache.h", "#include <atomic>\n#include <thread>\n"},
      {"util/logging.cc", "#include <atomic>\n"},
  };
  EXPECT_TRUE(RunLint(files, "threading").empty());
}

TEST(ThreadingTest, QuotedIncludesAndLookalikesDoNotTrigger) {
  const std::vector<SourceFile> files = {
      {"core/replica.h",
       "#include \"runtime/env.h\"\n"          // quoted: layering's job.
       "#include <threads_util.hpp>\n"         // not an exact header name.
       "// discussing <thread> in a comment is fine\n"},
  };
  EXPECT_TRUE(RunLint(files, "threading").empty());
}

TEST(ThreadingTest, SuppressibleLikeEveryRule) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// lint:allow(threading: measurement-only counter)\n"
       "#include <atomic>\n"},
  };
  EXPECT_TRUE(RunLint(files, "threading").empty());
}

// ----------------------------------------------------------------- sockets

TEST(SocketsTest, RawSocketHeadersOutsideNetAndRuntimeFail) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "#include <sys/socket.h>\n"
       "#include <netinet/in.h>\n"
       "#include <vector>\n"},
      {"harness/process_cluster.cc",
       "#include <arpa/inet.h>\n"
       "#include <poll.h>\n"
       "#include <sys/epoll.h>\n"},
  };
  const auto findings = RunLint(files, "sockets");
  EXPECT_TRUE(HasFinding(findings, "sockets", "core/replica.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "sockets", "core/replica.cc", 2));
  EXPECT_TRUE(
      HasFinding(findings, "sockets", "harness/process_cluster.cc", 1));
  EXPECT_TRUE(
      HasFinding(findings, "sockets", "harness/process_cluster.cc", 2));
  EXPECT_TRUE(
      HasFinding(findings, "sockets", "harness/process_cluster.cc", 3));
  // <vector> is not a networking header.
  EXPECT_EQ(findings.size(), 5u);
}

TEST(SocketsTest, NetAndRuntimeMayUseRawSockets) {
  const std::vector<SourceFile> files = {
      {"net/socket.cc",
       "#include <arpa/inet.h>\n#include <netinet/in.h>\n"
       "#include <poll.h>\n#include <sys/socket.h>\n"},
      {"runtime/socket_env.cc", "#include <poll.h>\n"},
  };
  EXPECT_TRUE(RunLint(files, "sockets").empty());
}

TEST(SocketsTest, NetinetPrefixMatchesEverySubHeader) {
  const std::vector<SourceFile> files = {
      {"workload/client_pool.cc",
       "#include <netinet/tcp.h>\n#include <netinet/udp.h>\n"},
  };
  const auto findings = RunLint(files, "sockets");
  EXPECT_TRUE(HasFinding(findings, "sockets", "workload/client_pool.cc", 1));
  EXPECT_TRUE(HasFinding(findings, "sockets", "workload/client_pool.cc", 2));
}

TEST(SocketsTest, QuotedWrapperIncludesAndLookalikesDoNotTrigger) {
  const std::vector<SourceFile> files = {
      {"harness/socket_cluster.h",
       "#include \"net/socket.h\"\n"          // the sanctioned wrapper.
       "#include <sys/socket_stats.hpp>\n"    // not an exact header name.
       "// discussing <sys/socket.h> in a comment is fine\n"},
  };
  EXPECT_TRUE(RunLint(files, "sockets").empty());
}

TEST(SocketsTest, SuppressibleLikeEveryRule) {
  const std::vector<SourceFile> files = {
      {"tools/capture.cc",
       "// lint:allow(sockets: pcap shim)\n"
       "#include <sys/socket.h>\n"},
  };
  EXPECT_TRUE(RunLint(files, "sockets").empty());
}

// ------------------------------------------------------------- suppressions

TEST(SuppressionTest, SameLineAllowSuppresses) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "#include <chrono>  // lint:allow(determinism)\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

TEST(SuppressionTest, PrecedingCommentLineSuppressesNextLine) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// lint:allow(determinism: wall-clock wait is intentional here)\n"
       "auto t = std::chrono::steady_clock::now();\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

TEST(SuppressionTest, ReasonAndMultipleRulesAreParsed) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// lint:allow(determinism: reason, layering: other reason)\n"
       "#include \"harness/cluster.h\"  // and chrono on the same line\n"},
      {"harness/cluster.h", "#include <chrono>\n"},
  };
  EXPECT_TRUE(RunLint(files).empty());
}

TEST(SuppressionTest, SuppressionOfOneRuleDoesNotHideAnother) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "#include \"sim/network.h\"  // lint:allow(determinism)\n"},
      {"sim/network.h", ""},
  };
  EXPECT_TRUE(HasFinding(RunLint(files), "layering", "core/replica.cc", 1));
}

TEST(SuppressionTest, ViolationWithoutAllowStillFires) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// a comment that is not an allow\n"
       "#include <chrono>\n"},
  };
  EXPECT_TRUE(HasFinding(RunLint(files), "determinism", "core/replica.cc", 2));
}

// ----------------------------------------------------- comment/string aware

TEST(ScannerTest, CommentsAndStringsDoNotTriggerRules) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc",
       "// std::chrono is banned here; rand() too\n"
       "/* std::random_device in a block comment */\n"
       "const char* msg = \"do not call rand() or use std::chrono\";\n"},
  };
  EXPECT_TRUE(RunLint(files, "determinism").empty());
}

TEST(ScannerTest, FindingsCarryFormattedOutput) {
  const std::vector<SourceFile> files = {
      {"core/replica.cc", "#include <chrono>\n"},
  };
  const auto findings = RunLint(files, "determinism");
  ASSERT_EQ(findings.size(), 1u);
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_NE(formatted.find("core/replica.cc:1"), std::string::npos);
  EXPECT_NE(formatted.find("[determinism]"), std::string::npos);
}

// ----------------------------------------------------------- real-tree gate

#ifdef PRESTIGE_SOURCE_DIR

TEST(RealTreeTest, SrcIsLintClean) {
  const auto files = LoadTree(std::string(PRESTIGE_SOURCE_DIR) + "/src");
  ASSERT_GT(files.size(), 50u) << "tree load looks truncated";
  const auto findings = Lint(files);
  for (const auto& finding : findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
}

// The golden domain-separation tag registry. Every Encoder/HashingEncoder
// construction site in src/ must carry one of these tags, each tag exactly
// once. Adding a message kind means adding its tag here — a conscious
// registry update — or the test (and the no-collision argument) fails.
TEST(RealTreeTest, DomainTagRegistryMatchesGoldenList) {
  const std::vector<std::string> kGoldenTags = {
      "batch",     // types/transaction.cc — transaction batch digest
      "camp",      // core/messages.h — campaign message digest
      "cmt",       // ledger/tx_block.cc — commit-phase block digest
      "confvc",    // ledger/vc_block.cc — VC confirmation share
      "heartbeat", // core/messages.h — leader heartbeat digest
      "hs-vote",   // baselines/hotstuff — HotStuff vote digest
      "ord",       // ledger/tx_block.cc — ordering-phase block digest
      "refresh",   // ledger/vc_block.cc — reputation refresh digest
      "sbft",      // baselines/sbft — SBFT share digest
      "tx",        // types/transaction.h — single transaction digest
      "txblock",   // ledger/tx_block.h — transaction block digest
      "vcblock",   // ledger/vc_block.h — view-change block digest
      "vcyes",     // ledger/vc_block.cc — VC yes-vote digest
      "votecp",    // ledger/vc_block.cc — vote checkpoint digest
  };

  const auto files = LoadTree(std::string(PRESTIGE_SOURCE_DIR) + "/src");
  const auto tags = ExtractDomainTags(files);

  std::set<std::string> unique;
  for (const auto& tag : tags) {
    EXPECT_TRUE(unique.insert(tag.tag).second)
        << "domain tag collision: \"" << tag.tag << "\" at " << tag.path
        << ":" << tag.line;
  }
  const std::set<std::string> golden(kGoldenTags.begin(), kGoldenTags.end());
  for (const auto& tag : tags) {
    EXPECT_TRUE(golden.count(tag.tag) != 0)
        << "tag \"" << tag.tag << "\" (" << tag.path << ":" << tag.line
        << ") is not in the golden registry; update kGoldenTags consciously";
  }
  for (const auto& tag : golden) {
    EXPECT_TRUE(unique.count(tag) != 0)
        << "golden tag \"" << tag << "\" no longer appears in src/";
  }
}

#endif  // PRESTIGE_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace prestige
