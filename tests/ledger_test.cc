// Unit tests for the ledger substrate: blocks, chaining, block store, and
// the KV application service (app::KvService).

#include <gtest/gtest.h>

#include "app/kv_service.h"
#include "ledger/block_store.h"
#include "ledger/tx_block.h"
#include "ledger/vc_block.h"

namespace prestige {
namespace ledger {
namespace {

types::Transaction MakeTx(uint64_t seq, uint64_t fingerprint = 0) {
  types::Transaction tx;
  tx.pool = 0;
  tx.client_seq = seq;
  tx.sent_at = static_cast<util::TimeMicros>(seq * 10);
  tx.payload_size = 32;
  tx.fingerprint = fingerprint == 0 ? seq * 7919 : fingerprint;
  return tx;
}

TxBlock MakeTxBlock(types::SeqNum n, types::View v,
                    const crypto::Sha256Digest& prev, size_t txs = 3) {
  TxBlock b;
  b.set_n(n);
  b.v = v;
  b.set_prev_hash(prev);
  std::vector<types::Transaction> batch;
  for (size_t i = 0; i < txs; ++i) {
    batch.push_back(MakeTx(static_cast<uint64_t>(n) * 100 + i));
  }
  b.set_txs(std::move(batch));
  b.status.assign(b.BatchSize(), 1);
  return b;
}

VcBlock MakeVcBlock(types::View v, types::ReplicaId leader,
                    const crypto::Sha256Digest& prev) {
  VcBlock b;
  b.set_v(v);
  b.set_leader(leader);
  b.set_prev_hash(prev);
  for (types::ReplicaId id = 0; id < 4; ++id) {
    b.SetPenalty(id, 1);
    b.SetCompensation(id, 1);
  }
  return b;
}

// ----------------------------------------------------------------- Blocks

TEST(TxBlockTest, DigestCoversContent) {
  TxBlock a = MakeTxBlock(1, 1, {});
  TxBlock b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  std::vector<types::Transaction> txs = b.txs();
  txs[0].fingerprint ^= 1;
  b.set_txs(std::move(txs));
  EXPECT_NE(a.Digest(), b.Digest());
  b = a;
  b.set_n(2);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(TxBlockTest, DigestIgnoresQcs) {
  // QCs certify the block; they are not part of its address.
  TxBlock a = MakeTxBlock(1, 1, {});
  const crypto::Sha256Digest before = a.Digest();
  a.ordering_qc.threshold = 3;
  EXPECT_EQ(a.Digest(), before);
}

TEST(VcBlockTest, DigestCoversReputationSegment) {
  VcBlock a = MakeVcBlock(2, 1, {});
  VcBlock b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  b.SetPenalty(2, 5);
  EXPECT_NE(a.Digest(), b.Digest());
  b = a;
  b.SetCompensation(3, 10);
  EXPECT_NE(a.Digest(), b.Digest());
  b = a;
  b.set_leader(2);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(VcBlockTest, PenaltyDefaultsToInitial) {
  VcBlock b;
  EXPECT_EQ(b.PenaltyOf(7), 1);
  EXPECT_EQ(b.CompensationOf(7), 1);
  b.SetPenalty(7, 4);
  EXPECT_EQ(b.PenaltyOf(7), 4);
}

TEST(DigestDomainsTest, SigningDigestsAreDomainSeparated) {
  const crypto::Sha256Digest block = MakeTxBlock(1, 1, {}).Digest();
  EXPECT_NE(OrderingDigest(1, 1, block), CommitDigest(1, 1, block));
  EXPECT_NE(ConfDigest(1), VoteDigest(1, 0));
  EXPECT_NE(RefreshDigest(0, 1), ConfDigest(1));
}

// ------------------------------------------------------------- BlockStore

TEST(BlockStoreTest, AppendsChainedTxBlocks) {
  BlockStore store;
  EXPECT_EQ(store.LatestTxSeq(), 0);
  ASSERT_TRUE(store.AppendTxBlock(MakeTxBlock(1, 1, {})).ok());
  ASSERT_TRUE(
      store.AppendTxBlock(MakeTxBlock(2, 1, store.LatestTxDigest())).ok());
  EXPECT_EQ(store.LatestTxSeq(), 2);
  EXPECT_EQ(store.TotalCommittedTxs(), 6);
}

TEST(BlockStoreTest, RejectsSequenceGap) {
  BlockStore store;
  ASSERT_TRUE(store.AppendTxBlock(MakeTxBlock(1, 1, {})).ok());
  EXPECT_TRUE(store.AppendTxBlock(MakeTxBlock(3, 1, store.LatestTxDigest()))
                  .IsCorruption());
}

TEST(BlockStoreTest, RejectsBrokenHashChain) {
  BlockStore store;
  ASSERT_TRUE(store.AppendTxBlock(MakeTxBlock(1, 1, {})).ok());
  crypto::Sha256Digest wrong{};
  wrong[0] = 0xab;
  EXPECT_TRUE(store.AppendTxBlock(MakeTxBlock(2, 1, wrong)).IsCorruption());
}

TEST(BlockStoreTest, RejectsNonIncreasingViews) {
  BlockStore store;
  ASSERT_TRUE(store.AppendVcBlock(MakeVcBlock(2, 1, {})).ok());
  EXPECT_TRUE(store.AppendVcBlock(MakeVcBlock(2, 2, store.LatestVcBlock()->Digest()))
                  .IsCorruption());
}

TEST(BlockStoreTest, ViewsMaySkip) {
  BlockStore store;
  ASSERT_TRUE(store.AppendVcBlock(MakeVcBlock(2, 1, {})).ok());
  ASSERT_TRUE(
      store.AppendVcBlock(MakeVcBlock(5, 2, store.LatestVcBlock()->Digest()))
          .ok());
  EXPECT_EQ(store.CurrentView(), 5);
  EXPECT_NE(store.VcBlockFor(5), nullptr);
  EXPECT_EQ(store.VcBlockFor(3), nullptr);
}

TEST(BlockStoreTest, LookupByIndexAndView) {
  BlockStore store;
  ASSERT_TRUE(store.AppendTxBlock(MakeTxBlock(1, 1, {})).ok());
  ASSERT_TRUE(
      store.AppendTxBlock(MakeTxBlock(2, 1, store.LatestTxDigest())).ok());
  ASSERT_NE(store.TxBlockAt(1), nullptr);
  EXPECT_EQ(store.TxBlockAt(1)->n(), 1);
  EXPECT_EQ(store.TxBlockAt(0), nullptr);
  EXPECT_EQ(store.TxBlockAt(3), nullptr);
}

TEST(BlockStoreTest, RangeQueriesForSyncUp) {
  BlockStore store;
  crypto::Sha256Digest prev{};
  for (types::SeqNum n = 1; n <= 5; ++n) {
    ASSERT_TRUE(store.AppendTxBlock(MakeTxBlock(n, 1, prev)).ok());
    prev = store.LatestTxDigest();
  }
  const auto blocks = store.TxBlocksAfter(2, 4);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].n(), 3);
  EXPECT_EQ(blocks[1].n(), 4);
}

TEST(BlockStoreTest, HistoricPenaltiesNewestFirst) {
  BlockStore store;
  VcBlock b2 = MakeVcBlock(2, 0, {});
  b2.SetPenalty(0, 2);
  ASSERT_TRUE(store.AppendVcBlock(b2).ok());
  VcBlock b3 = MakeVcBlock(3, 0, store.LatestVcBlock()->Digest());
  b3.SetPenalty(0, 3);
  ASSERT_TRUE(store.AppendVcBlock(b3).ok());
  const auto penalties = store.HistoricPenalties(0);
  ASSERT_EQ(penalties.size(), 2u);
  EXPECT_EQ(penalties[0], 3);
  EXPECT_EQ(penalties[1], 2);
}

// ---------------------------------------------------- Application service

void ExecuteAll(app::Service& service, const TxBlock& block) {
  for (const types::Transaction& tx : block.txs()) service.Execute(tx);
  service.OnBlockCommitted(block.n(), block.v);
}

TEST(KvServiceTest, ExecutesDeterministically) {
  app::KvService a(64), b(64);
  const TxBlock block = MakeTxBlock(1, 1, {});
  ExecuteAll(a, block);
  ExecuteAll(b, block);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  EXPECT_EQ(a.applied_count(), 3);
  EXPECT_GT(a.size(), 0u);
}

TEST(KvServiceTest, OrderMatters) {
  app::KvService a(64), b(64);
  TxBlock b1 = MakeTxBlock(1, 1, {});
  TxBlock b2 = MakeTxBlock(2, 1, b1.Digest());
  ExecuteAll(a, b1);
  ExecuteAll(a, b2);
  ExecuteAll(b, b2);
  ExecuteAll(b, b1);
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(KvServiceTest, CommandEncodedPutReturnsPreviousValue) {
  app::KvService kv(1024);
  types::Transaction put = MakeTx(1);
  put.command = app::kv::EncodePut(42, 1111);
  app::Response first = kv.Execute(put);
  EXPECT_EQ(first.status, app::ExecStatus::kOk);
  EXPECT_EQ(app::kv::DecodeValue(first.result), 0u);  // No previous value.

  types::Transaction put2 = MakeTx(2);
  put2.command = app::kv::EncodePut(42, 2222);
  app::Response second = kv.Execute(put2);
  EXPECT_EQ(app::kv::DecodeValue(second.result), 1111u);
  EXPECT_EQ(kv.Get(42), 2222u);
}

TEST(KvServiceTest, CommandEncodedGetReadsCurrentValue) {
  app::KvService kv(1024);
  types::Transaction put = MakeTx(1);
  put.command = app::kv::EncodePut(7, 7777);
  kv.Execute(put);

  types::Transaction get = MakeTx(2);
  get.command = app::kv::EncodeGet(7);
  app::Response r = kv.Execute(get);
  EXPECT_EQ(r.status, app::ExecStatus::kOk);
  EXPECT_EQ(app::kv::DecodeValue(r.result), 7777u);

  types::Transaction miss = MakeTx(3);
  miss.command = app::kv::EncodeGet(8);
  EXPECT_EQ(app::kv::DecodeValue(kv.Execute(miss).result), 0u);
}

TEST(KvServiceTest, LegacyFingerprintTransactionsActAsPuts) {
  // Migration path from the fingerprint-driven KvStateMachine: an empty
  // command executes as Put(fingerprint % key_space, fingerprint).
  app::KvService kv(1024);
  types::Transaction tx = MakeTx(1, /*fingerprint=*/12345);
  kv.Execute(tx);
  EXPECT_EQ(kv.Get(12345 % 1024), 12345u);
  EXPECT_EQ(kv.Get(999), 0u);
}

TEST(KvServiceTest, MalformedCommandReportsError) {
  app::KvService kv(64);
  types::Transaction tx = MakeTx(1);
  tx.command = {0x7f, 0x01};
  app::Response r = kv.Execute(tx);
  EXPECT_EQ(r.status, app::ExecStatus::kError);
  EXPECT_TRUE(r.result.empty());
}

TEST(KvServiceTest, ResultDigestDistinguishesResults) {
  app::Response a;
  a.result = {1, 2, 3};
  app::Response b;
  b.result = {1, 2, 4};
  app::Response c = a;
  EXPECT_NE(app::ResultDigest(a), app::ResultDigest(b));
  EXPECT_EQ(app::ResultDigest(a), app::ResultDigest(c));
  app::Response d = a;
  d.status = app::ExecStatus::kError;
  EXPECT_NE(app::ResultDigest(a), app::ResultDigest(d));
}

TEST(NullServiceTest, CountsAndFoldsOrder) {
  app::NullService sm;
  ExecuteAll(sm, MakeTxBlock(1, 1, {}));
  EXPECT_EQ(sm.applied_count(), 3);
  app::NullService other;
  ExecuteAll(other, MakeTxBlock(1, 1, {}));
  EXPECT_EQ(sm.StateDigest(), other.StateDigest());
}

}  // namespace
}  // namespace ledger
}  // namespace prestige
