// Tests for the real-time backend: ThreadedRuntime primitives (loopback
// transport, monotonic timers, lifecycle) and the end-to-end smoke that
// runs PrestigeBFT and HotStuff with true concurrency and checks the
// cross-replica safety invariants. This suite is the TSan CI job's main
// subject: every primitive here crosses threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "core/replica.h"
#include "harness/invariants.h"
#include "harness/threaded_cluster.h"
#include "harness/threaded_runner.h"
#include "runtime/threaded_env.h"

namespace prestige {
namespace runtime {
namespace {

using util::Millis;

struct CountMsg : public NetMessage {
  int hop = 0;
  size_t WireSize() const override { return 8; }
  const char* Name() const override { return "Count"; }
};

/// Waits (really) until `pred` holds or `deadline_ms` passes.
template <typename Pred>
bool SpinUntil(Pred pred, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Ping-pong node: bounces a CountMsg back to the sender, incrementing the
/// hop count, until `limit` hops. The atomic makes progress observable
/// from the test thread while the loops run.
class PongNode : public Node {
 public:
  explicit PongNode(int limit) : limit_(limit) {}

  void OnMessage(NodeId from, const MessagePtr& msg) override {
    auto* count = dynamic_cast<const CountMsg*>(msg.get());
    if (count == nullptr) return;
    hops_.fetch_add(1, std::memory_order_relaxed);
    if (count->hop >= limit_) return;
    auto next = std::make_shared<CountMsg>();
    next->hop = count->hop + 1;
    Send(from, next);
  }

  void Kick(NodeId to) {
    auto msg = std::make_shared<CountMsg>();
    msg->hop = 1;
    Send(to, msg);
  }

  int hops() const { return hops_.load(std::memory_order_relaxed); }

 private:
  int limit_;
  std::atomic<int> hops_{0};
};

/// Kicks off the ping-pong from its own OnStart.
class KickingPongNode : public PongNode {
 public:
  KickingPongNode(int limit, NodeId peer) : PongNode(limit), peer_(peer) {}
  void OnStart() override { Kick(peer_); }

 private:
  NodeId peer_;
};

TEST(ThreadedRuntimeTest, PingPongAcrossThreads) {
  ThreadedRuntime runtime(1);
  PongNode a(200);
  KickingPongNode b(200, /*peer=*/0);
  ASSERT_EQ(runtime.AddNode(&a), 0u);
  ASSERT_EQ(runtime.AddNode(&b), 1u);
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return a.hops() + b.hops() >= 200; }, 5000));
  runtime.Stop();
  EXPECT_GE(a.hops() + b.hops(), 200);
  EXPECT_GE(runtime.messages_delivered(), 200u);
}

class TimerNode : public Node {
 public:
  void OnStart() override {
    armed_at_ = Now();
    SetTimer(Millis(5), 5);
    SetTimer(Millis(15), 15);
    const TimerId doomed = SetTimer(Millis(10), 10);
    CancelTimer(doomed);
  }
  void OnMessage(NodeId, const MessagePtr&) override {}
  void OnTimer(uint64_t tag) override {
    fired_order_.push_back(tag);
    if (tag == 15) fired_at_ = Now();
    count_.fetch_add(1, std::memory_order_release);
  }

  int count() const { return count_.load(std::memory_order_acquire); }
  // Loop-thread state; read after Stop() only.
  std::vector<uint64_t> fired_order_;
  util::TimeMicros armed_at_ = 0;
  util::TimeMicros fired_at_ = 0;

 private:
  std::atomic<int> count_{0};
};

TEST(ThreadedRuntimeTest, TimersFireOnWallClockInOrderAndHonorCancel) {
  ThreadedRuntime runtime(1);
  TimerNode node;
  runtime.AddNode(&node);
  runtime.Start();
  EXPECT_TRUE(SpinUntil([&] { return node.count() >= 2; }, 5000));
  // Give the cancelled 10ms timer every chance to (wrongly) fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.Stop();
  ASSERT_EQ(node.fired_order_.size(), 2u);
  EXPECT_EQ(node.fired_order_, (std::vector<uint64_t>{5, 15}));
  // The 15ms timer cannot have fired before 15ms of wall time elapsed.
  EXPECT_GE(node.fired_at_ - node.armed_at_, Millis(15));
}

TEST(ThreadedRuntimeTest, ClockIsMonotonicAndStopIsIdempotent) {
  ThreadedRuntime runtime(3);
  TimerNode node;
  runtime.AddNode(&node);
  runtime.Start();
  const util::TimeMicros t0 = runtime.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const util::TimeMicros t1 = runtime.Now();
  EXPECT_GE(t1 - t0, Millis(4));
  runtime.Stop();
  runtime.Stop();  // Second stop is a no-op.
}

// ---------------------------------------------------- protocol smoke tests

harness::WorkloadOptions SmokeWorkload() {
  harness::WorkloadOptions w;
  w.num_pools = 2;
  w.clients_per_pool = 25;
  w.payload_size = 32;
  w.client_timeout = util::Seconds(2);
  w.seed = 5;
  return w;
}

core::PrestigeConfig SmokeConfig() {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 50;
  config.batch_wait = Millis(2);
  // Generous timeouts: TSan/valgrind-grade slowdowns must not trip
  // spurious view changes in a smoke test.
  config.timeout_min = util::Seconds(2);
  config.timeout_max = util::Seconds(3);
  return config;
}

TEST(ThreadedClusterTest, PrestigeBftCommitsUnderTrueConcurrency) {
  harness::ThreadedCluster<core::PrestigeReplica, core::PrestigeConfig>
      cluster(SmokeConfig(), SmokeWorkload());
  cluster.Start();
  cluster.RunFor(Millis(700));
  cluster.Stop();

  EXPECT_GT(cluster.ClientCommitted(), 0);
  const harness::SafetyReport safety = harness::CheckSafety(cluster);
  EXPECT_TRUE(safety.ok) << safety.violation;
  EXPECT_GT(safety.max_height, 0);
  // Committed work reached the replicas' chains, not just the pools.
  EXPECT_GT(cluster.replica(0).metrics().committed_txs, 0);
}

TEST(ThreadedClusterTest, HotStuffRunsOnTheSameRuntime) {
  baselines::hotstuff::HotStuffConfig config;
  config.n = 4;
  config.batch_size = 50;
  config.batch_wait = Millis(2);
  config.view_timeout = util::Seconds(2);
  harness::ThreadedCluster<baselines::hotstuff::HotStuffReplica,
                           baselines::hotstuff::HotStuffConfig>
      cluster(config, SmokeWorkload());
  cluster.Start();
  cluster.RunFor(Millis(700));
  cluster.Stop();

  EXPECT_GT(cluster.ClientCommitted(), 0);
  const harness::SafetyReport safety = harness::CheckSafety(cluster);
  EXPECT_TRUE(safety.ok) << safety.violation;
}

TEST(ThreadedRunnerTest, SteadyStateScenarioRunsAndFaultyScenariosRefuse) {
  const harness::ScenarioSpec* steady = harness::FindScenario("steady-state");
  ASSERT_NE(steady, nullptr);
  EXPECT_TRUE(harness::ThreadedCapable(*steady));

  // Shrink the scripted durations so the smoke stays fast.
  harness::ScenarioSpec quick = *steady;
  for (harness::Phase& p : quick.phases) p.duration = Millis(300);
  const harness::ThreadedRunResult result =
      harness::RunThreadedScenario<core::PrestigeReplica,
                                   core::PrestigeConfig>(quick, SmokeConfig(),
                                                         SmokeWorkload());
  EXPECT_TRUE(result.ran) << result.error;
  EXPECT_TRUE(result.safety_ok) << result.violation;
  EXPECT_GT(result.committed, 0);
  EXPECT_GT(result.tps, 0.0);

  // Every fault-bearing scenario must refuse the threaded backend.
  const harness::ScenarioSpec* churn = harness::FindScenario("churn");
  ASSERT_NE(churn, nullptr);
  EXPECT_FALSE(harness::ThreadedCapable(*churn));
  const harness::ThreadedRunResult refused =
      harness::RunThreadedScenario<core::PrestigeReplica,
                                   core::PrestigeConfig>(*churn, SmokeConfig(),
                                                         SmokeWorkload());
  EXPECT_FALSE(refused.ran);
  EXPECT_FALSE(refused.error.empty());
}

}  // namespace
}  // namespace runtime
}  // namespace prestige
