// Tests for the embeddable client::Client library.
//
// Sim-side: reply-quorum matching on result digests (f+1 distinct
// replicas, divergent results never complete), retransmission, and
// complaint escalation, against scripted replicas.
//
// Threaded-side: the acceptance path — a standalone client embedded next
// to a real 4-replica PrestigeBFT cluster on the ThreadedRuntime, driving
// a kv Put and verifying the Get round-trips the written value through the
// real reply path; plus the same client::Client (as ClientPool) driving
// HotStuff and SBFT clusters on the threaded backend.

#include <gtest/gtest.h>

#include "app/kv_service.h"
#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/sbft/sbft_replica.h"
#include "client/client.h"
#include "core/replica.h"
#include "harness/invariants.h"
#include "harness/threaded_cluster.h"
#include "runtime/sim_env.h"
#include "runtime/threaded_env.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace prestige {
namespace client {
namespace {

using util::Millis;
using util::Seconds;

/// Scripted replica: replies to every proposal with its own id; votes are
/// bound to the transport sender client-side, so each fixture replica is
/// its own actor. Optionally reports a divergent execution result.
class ScriptedReplica : public sim::Actor {
 public:
  explicit ScriptedReplica(types::ReplicaId id) : id_(id) {}

  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    if (auto* batch = dynamic_cast<const types::ClientBatch*>(msg.get())) {
      batches_received_ += 1;
      txs_received_ += static_cast<int64_t>(batch->txs.size());
      if (!respond_) return;
      auto reply = std::make_shared<types::ClientReply>();
      reply->replica = id_;
      reply->n = 1;
      reply->pool = 0;
      for (const types::Transaction& tx : batch->txs) {
        types::ReplyEntry entry;
        entry.client_seq = tx.client_seq;
        app::Response response;
        response.result = {diverge_ ? uint8_t{0xcd} : uint8_t{0xab}};
        entry.status = static_cast<uint8_t>(response.status);
        entry.result = response.result;
        entry.result_digest = app::ResultDigest(response);
        reply->entries.push_back(std::move(entry));
      }
      Send(from, reply);
    } else if (dynamic_cast<const types::ClientComplaint*>(msg.get())) {
      ++complaints_;
    }
  }

  void set_respond(bool respond) { respond_ = respond; }
  void set_diverge(bool diverge) { diverge_ = diverge; }
  int64_t batches_received() const { return batches_received_; }
  int64_t txs_received() const { return txs_received_; }
  int64_t complaints() const { return complaints_; }

 private:
  types::ReplicaId id_;
  bool respond_ = true;
  bool diverge_ = false;
  int64_t batches_received_ = 0;
  int64_t txs_received_ = 0;
  int64_t complaints_ = 0;
};

struct ClientFixture {
  explicit ClientFixture(ClientConfig config, int ack_replicas)
      : sim(1),
        net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{}),
        client(config) {
    std::vector<runtime::NodeId> replica_ids;
    for (int r = 0; r < ack_replicas; ++r) {
      replicas.push_back(
          std::make_unique<ScriptedReplica>(static_cast<types::ReplicaId>(r)));
      replica_ids.push_back(sim.AddActor(replicas.back().get()));
      replicas.back()->AttachNetwork(&net);
    }
    client_env = std::make_unique<runtime::SimEnv>(&client);
    sim.AddActor(client_env.get());
    client_env->AttachNetwork(&net);
    client.SetReplicas(replica_ids);
    sim.ScheduleAfter(0, [this] { client.OnStart(); });
  }

  ScriptedReplica& replica(int i = 0) { return *replicas[i]; }
  void SetRespond(bool respond) {
    for (auto& r : replicas) r->set_respond(respond);
  }

  sim::Simulator sim;
  sim::Network net;
  std::vector<std::unique_ptr<ScriptedReplica>> replicas;
  Client client;
  std::unique_ptr<runtime::SimEnv> client_env;
};

ClientConfig TestConfig(uint32_t f = 1) {
  ClientConfig config;
  config.client_id = 0;
  config.f = f;
  config.retransmit_after = Millis(300);
  config.request_timeout = Millis(700);
  config.retry_scan_period = Millis(100);
  return config;
}

TEST(ClientTest, CompletesOnMatchingQuorumAndReturnsResult) {
  ClientFixture fx(TestConfig(/*f=*/1), /*ack_replicas=*/2);
  SubmitResult seen;
  int completions = 0;
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({1, 2, 3}, [&](const SubmitResult& r) {
      seen = r;
      ++completions;
    });
  });
  fx.sim.RunUntil(Millis(100));
  ASSERT_EQ(completions, 1);
  EXPECT_EQ(seen.status, app::ExecStatus::kOk);
  EXPECT_EQ(seen.result, std::vector<uint8_t>({0xab}));
  EXPECT_GT(seen.latency, 0);
  EXPECT_EQ(fx.client.outstanding(), 0u);
  EXPECT_EQ(fx.client.stats().completed, 1);
}

TEST(ClientTest, InsufficientQuorumNeverCompletes) {
  // f = 2 needs 3 matching replies but only 2 arrive.
  ClientFixture fx(TestConfig(/*f=*/2), /*ack_replicas=*/2);
  int completions = 0;
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({}, [&](const SubmitResult&) { ++completions; });
  });
  fx.sim.RunUntil(Millis(200));
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(fx.client.outstanding(), 1u);
}

TEST(ClientTest, DivergentResultsNeverFormAQuorum) {
  // 3 replies but one reports a different execution result: only 2 match,
  // f=2 needs 3 -> the request must not complete, and the divergence is
  // surfaced in the mismatch counter.
  ClientFixture fx(TestConfig(/*f=*/2), /*ack_replicas=*/3);
  fx.replica(2).set_diverge(true);
  int completions = 0;
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({}, [&](const SubmitResult&) { ++completions; });
  });
  fx.sim.RunUntil(Millis(200));
  EXPECT_EQ(completions, 0);
  EXPECT_GE(fx.client.stats().result_mismatches, 1);
}

TEST(ClientTest, DuplicateRepliesFromOneReplicaCountOnce) {
  // The same replica acking twice must not fake a quorum: scripted replica
  // sends each reply once, but retransmission triggers a second identical
  // reply wave from the same ids.
  ClientFixture fx(TestConfig(/*f=*/2), /*ack_replicas=*/2);
  int completions = 0;
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({}, [&](const SubmitResult&) { ++completions; });
  });
  fx.sim.RunUntil(Seconds(1));  // Several retransmit rounds elapse.
  EXPECT_EQ(completions, 0);
  EXPECT_GT(fx.client.stats().duplicate_replies, 0);
}

/// A Byzantine replica that answers every proposal with `copies` replies,
/// each under a different claimed replica id — the quorum-forgery attack.
/// Optionally it forges the result bytes while quoting an honest digest.
class ForgingReplica : public sim::Actor {
 public:
  ForgingReplica(int copies, bool forge_bytes)
      : copies_(copies), forge_bytes_(forge_bytes) {}

  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    auto* batch = dynamic_cast<const types::ClientBatch*>(msg.get());
    if (batch == nullptr) return;
    for (int r = 0; r < copies_; ++r) {
      auto reply = std::make_shared<types::ClientReply>();
      reply->replica = static_cast<types::ReplicaId>(r);  // Claimed id.
      reply->n = 1;
      reply->pool = 0;
      for (const types::Transaction& tx : batch->txs) {
        types::ReplyEntry entry;
        entry.client_seq = tx.client_seq;
        app::Response honest;
        honest.result = {0xab};
        entry.result_digest = app::ResultDigest(honest);  // Honest digest…
        entry.status = static_cast<uint8_t>(honest.status);
        entry.result = forge_bytes_ ? std::vector<uint8_t>{0x66}  // …forged
                                    : honest.result;              //   bytes.
        reply->entries.push_back(std::move(entry));
      }
      Send(from, reply);
    }
  }

 private:
  int copies_;
  bool forge_bytes_;
};

TEST(ClientTest, OneReplicaCannotForgeAQuorumUnderManyIds) {
  // Replica 0 is Byzantine and sends f+1 = 2 replies under distinct
  // claimed ids; replica 1 stays silent. Votes bind to the transport
  // sender, so the request must not complete.
  ClientConfig config = TestConfig(/*f=*/1);
  sim::Simulator sim(1);
  sim::Network net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{});
  ForgingReplica byzantine(/*copies=*/2, /*forge_bytes=*/false);
  ScriptedReplica silent(1);
  silent.set_respond(false);
  Client client(config);
  sim.AddActor(&byzantine);
  byzantine.AttachNetwork(&net);
  sim.AddActor(&silent);
  silent.AttachNetwork(&net);
  auto env = std::make_unique<runtime::SimEnv>(&client);
  sim.AddActor(env.get());
  env->AttachNetwork(&net);
  client.SetReplicas({0, 1});
  sim.ScheduleAfter(0, [&] { client.OnStart(); });

  int completions = 0;
  sim.ScheduleAfter(Millis(1), [&] {
    client.Submit({}, [&](const SubmitResult&) { ++completions; });
  });
  sim.RunUntil(Millis(200));
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(client.outstanding(), 1u);
  // The extra same-sender copies registered as duplicates, not votes.
  EXPECT_GT(client.stats().duplicate_replies, 0);
}

TEST(ClientTest, ForgedResultBytesCannotRideAnHonestDigest) {
  // Replica 0 quotes the honest result digest but forges the result
  // bytes; replica 1 is honest. The client recomputes digests from the
  // entry's own bytes, so the forged entry lands in its own bucket and
  // the f+1 = 2 quorum never includes it.
  ClientConfig config = TestConfig(/*f=*/1);
  sim::Simulator sim(1);
  sim::Network net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{});
  ForgingReplica byzantine(/*copies=*/1, /*forge_bytes=*/true);
  ScriptedReplica honest(1);
  Client client(config);
  sim.AddActor(&byzantine);
  byzantine.AttachNetwork(&net);
  sim.AddActor(&honest);
  honest.AttachNetwork(&net);
  auto env = std::make_unique<runtime::SimEnv>(&client);
  sim.AddActor(env.get());
  env->AttachNetwork(&net);
  client.SetReplicas({0, 1});
  sim.ScheduleAfter(0, [&] { client.OnStart(); });

  int completions = 0;
  sim.ScheduleAfter(Millis(1), [&] {
    client.Submit({}, [&](const SubmitResult&) { ++completions; });
  });
  sim.RunUntil(Millis(200));
  EXPECT_EQ(completions, 0);  // 1 honest + 1 forged != 2 matching.
  EXPECT_GE(client.stats().result_mismatches, 1);
}

TEST(ClientTest, ExpiredSubmitsAreAbandonedWithTimedOut) {
  ClientFixture fx(TestConfig(), /*ack_replicas=*/2);
  fx.SetRespond(false);
  SubmitResult seen;
  int completions = 0;
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit(
        {},
        [&](const SubmitResult& r) {
          seen = r;
          ++completions;
        },
        /*expire_after=*/Millis(400));
  });
  fx.sim.RunUntil(Seconds(2));
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(seen.timed_out);
  EXPECT_EQ(fx.client.outstanding(), 0u);  // No eternal retransmit churn.
  EXPECT_EQ(fx.client.stats().expired, 1);
}

TEST(ClientTest, RetransmitsUnansweredProposals) {
  ClientFixture fx(TestConfig(), /*ack_replicas=*/2);
  fx.SetRespond(false);
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({}, [](const SubmitResult&) {});
  });
  fx.sim.RunUntil(Seconds(1));
  EXPECT_GT(fx.client.stats().retransmissions, 0);
  EXPECT_GT(fx.replica().batches_received(), 1);  // Original + retransmits.
}

TEST(ClientTest, EscalatesToComplaintsAfterTimeout) {
  ClientFixture fx(TestConfig(), /*ack_replicas=*/2);
  fx.SetRespond(false);
  fx.sim.ScheduleAfter(Millis(1), [&] {
    fx.client.Submit({}, [](const SubmitResult&) {});
  });
  fx.sim.RunUntil(Seconds(2));
  EXPECT_GT(fx.client.stats().complaints_sent, 0);
  EXPECT_GT(fx.replica().complaints(), 0);
}

// ----------------------------------------------------- threaded round-trip

/// The acceptance check: a kv Put round-trips to a verified Get through
/// the real reply path on the threaded backend.
TEST(ThreadedClientTest, KvPutGetRoundTripsThroughRealReplies) {
  constexpr uint32_t kN = 4;
  core::PrestigeConfig config;
  config.n = kN;
  config.batch_size = 16;
  config.batch_wait = Millis(1);
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);

  runtime::ThreadedRuntime runtime(/*seed=*/99);
  crypto::KeyStore keys(99 ^ 0xc0ffee);
  std::vector<std::unique_ptr<core::PrestigeReplica>> replicas;
  std::vector<runtime::NodeId> replica_ids;
  for (uint32_t i = 0; i < kN; ++i) {
    replicas.push_back(
        std::make_unique<core::PrestigeReplica>(config, i, &keys));
    replicas.back()->SetService(std::make_unique<app::KvService>(4096));
    replica_ids.push_back(runtime.AddNode(replicas.back().get()));
  }

  ClientConfig client_config;
  client_config.client_id = 0;
  client_config.f = types::MaxFaulty(kN);
  Client client(client_config);
  const runtime::NodeId client_id = runtime.AddNode(&client);
  client.SetReplicas(replica_ids);
  for (auto& replica : replicas) {
    replica->SetTopology(replica_ids, {client_id});
  }

  runtime.Start();

  // Blocking convenience calls from the test thread (not an event loop).
  SubmitResult put = client.Call(app::kv::EncodePut(1234, 5678),
                                 /*wait_limit=*/Seconds(20));
  ASSERT_FALSE(put.timed_out) << "Put did not complete on the threaded path";
  EXPECT_EQ(put.status, app::ExecStatus::kOk);
  EXPECT_EQ(app::kv::DecodeValue(put.result), 0u);  // No previous value.
  EXPECT_GT(put.height, 0);

  SubmitResult get = client.Call(app::kv::EncodeGet(1234),
                                 /*wait_limit=*/Seconds(20));
  ASSERT_FALSE(get.timed_out) << "Get did not complete on the threaded path";
  EXPECT_EQ(get.status, app::ExecStatus::kOk);
  EXPECT_EQ(app::kv::DecodeValue(get.result), 5678u)
      << "Get must observe the committed Put through the real reply path";

  runtime.Stop();

  // After Stop(), replica state is safely inspectable: the Put executed
  // exactly once everywhere it committed.
  for (auto& replica : replicas) {
    const auto& stats = replica->delivery().stats();
    EXPECT_EQ(stats.executed, replica->service().applied_count());
  }
}

/// One client::Client implementation (as ClientPool) drives the baselines
/// on the threaded backend too.
template <typename Replica, typename Config>
void RunThreadedBaseline(Config config) {
  config.n = 4;
  harness::WorkloadOptions workload;
  workload.num_pools = 2;
  workload.clients_per_pool = 20;
  workload.seed = 3;
  harness::ThreadedCluster<Replica, Config> cluster(config, workload);
  cluster.Start();
  cluster.RunFor(Millis(800));
  cluster.Stop();
  EXPECT_GT(cluster.ClientCommitted(), 0);
  EXPECT_EQ(cluster.ResultMismatches(), 0);
  const harness::SafetyReport report = harness::CheckSafety(cluster);
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(ThreadedClientTest, DrivesHotStuffOnThreadedRuntime) {
  baselines::hotstuff::HotStuffConfig config;
  config.batch_size = 50;
  config.batch_wait = Millis(1);
  RunThreadedBaseline<baselines::hotstuff::HotStuffReplica>(config);
}

TEST(ThreadedClientTest, DrivesSbftOnThreadedRuntime) {
  baselines::sbft::SbftConfig config;
  config.batch_size = 50;
  config.batch_wait = Millis(1);
  RunThreadedBaseline<baselines::sbft::SbftReplica>(config);
}

}  // namespace
}  // namespace client
}  // namespace prestige
