// Property-based safety and liveness tests: randomized adversarial
// schedules over many seeds, asserting the paper's core guarantees on
// every run:
//   * Safety (Theorem 3): no two replicas commit different blocks at the
//     same sequence number; chains are prefix-consistent.
//   * No duplicate commits: a transaction appears at most once per chain.
//   * Liveness (Theorem 2): after faults stop / stabilize, commits resume.
//   * Lemma 10: unsuccessful elections never change a server's penalty.

#include <gtest/gtest.h>

#include <set>

#include "core/replica.h"
#include "harness/cluster.h"

namespace prestige {
namespace core {
namespace {

using harness::Cluster;
using harness::WorkloadOptions;
using util::Millis;
using util::Seconds;

using PrestigeCluster = Cluster<PrestigeReplica, PrestigeConfig>;

PrestigeConfig FastConfig(uint32_t n) {
  PrestigeConfig config;
  config.n = n;
  config.batch_size = 100;
  config.timeout_min = Millis(400);
  config.timeout_max = Millis(600);
  config.election_timeout = Millis(300);
  config.complaint_wait = Millis(200);
  return config;
}

void AssertChainsConsistent(PrestigeCluster& cluster, uint32_t n) {
  for (uint32_t i = 1; i < n; ++i) {
    const auto& a = cluster.replica(0).store().tx_chain();
    const auto& b = cluster.replica(i).store().tx_chain();
    const size_t common = std::min(a.size(), b.size());
    for (size_t k = 0; k < common; ++k) {
      ASSERT_EQ(a[k].Digest(), b[k].Digest())
          << "divergence at block " << k << " replica " << i;
    }
  }
}

void AssertNoDuplicateCommits(PrestigeCluster& cluster, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    std::set<std::pair<uint32_t, uint64_t>> seen;
    for (const auto& block : cluster.replica(i).store().tx_chain()) {
      for (const auto& tx : block.txs()) {
        ASSERT_TRUE(seen.insert({tx.pool, tx.client_seq}).second)
            << "tx (" << tx.pool << "," << tx.client_seq
            << ") committed twice on replica " << i;
      }
    }
  }
}

// ------------------------------------------------- randomized adversary

struct AdversaryCase {
  uint64_t seed;
  uint32_t n;
  types::FaultType fault;
};

class RandomAdversaryTest : public ::testing::TestWithParam<AdversaryCase> {};

TEST_P(RandomAdversaryTest, SafetyHoldsUnderFaultsAndRotation) {
  const AdversaryCase c = GetParam();
  PrestigeConfig config = FastConfig(c.n);
  config.rotation_period = Seconds(1);

  std::vector<types::FaultSpec> faults(c.n, types::FaultSpec::Honest());
  const uint32_t f = types::MaxFaulty(c.n);
  util::Rng rng(c.seed);
  std::set<uint32_t> chosen;
  while (chosen.size() < f) {
    chosen.insert(static_cast<uint32_t>(rng.NextBounded(c.n)));
  }
  for (uint32_t id : chosen) {
    types::FaultSpec spec;
    spec.type = c.fault;
    spec.start_at = Millis(rng.NextInRange(0, 2000));
    if (c.fault == types::FaultType::kRepeatedVc) {
      spec.strategy = rng.NextBool(0.5) ? types::AttackStrategy::kS1
                                        : types::AttackStrategy::kS2;
      spec.as_leader = rng.NextBool(0.5)
                           ? types::LeaderMisbehaviour::kQuiet
                           : types::LeaderMisbehaviour::kEquivocate;
    }
    faults[id] = spec;
  }

  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 40;
  w.client_timeout = Millis(800);
  w.seed = c.seed;

  PrestigeCluster cluster(config, w, faults);
  cluster.Start();
  cluster.RunFor(Seconds(8));

  AssertChainsConsistent(cluster, c.n);
  AssertNoDuplicateCommits(cluster, c.n);
  EXPECT_GT(cluster.ClientCommitted(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomAdversaryTest,
    ::testing::Values(
        AdversaryCase{101, 4, types::FaultType::kQuiet},
        AdversaryCase{102, 4, types::FaultType::kEquivocate},
        AdversaryCase{103, 4, types::FaultType::kRepeatedVc},
        AdversaryCase{104, 7, types::FaultType::kQuiet},
        AdversaryCase{105, 7, types::FaultType::kRepeatedVc},
        AdversaryCase{106, 7, types::FaultType::kEquivocate},
        AdversaryCase{107, 4, types::FaultType::kRepeatedVc},
        AdversaryCase{108, 7, types::FaultType::kRepeatedVc}));

// ----------------------------------------------- crash-recover schedules

class CrashScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashScheduleTest, RepeatedLeaderCrashesPreserveSafetyAndLiveness) {
  const uint64_t seed = GetParam();
  PrestigeConfig config = FastConfig(4);
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 40;
  w.client_timeout = Millis(800);
  w.seed = seed;
  PrestigeCluster cluster(config, w);
  cluster.Start();
  cluster.RunFor(Seconds(1));

  util::Rng rng(seed * 31);
  uint32_t down = 4;  // None.
  for (int round = 0; round < 3; ++round) {
    // Crash the current leader; recover the previously crashed replica so
    // at most one is down at a time (f = 1).
    uint32_t leader = 0;
    for (uint32_t i = 0; i < 4; ++i) {
      if (cluster.replica(i).IsLeader()) leader = i;
    }
    if (down < 4) cluster.SetReplicaDown(down, false);
    cluster.SetReplicaDown(leader, true);
    down = leader;
    cluster.RunFor(Seconds(3) + Millis(rng.NextInRange(0, 500)));
  }

  AssertChainsConsistent(cluster, 4);
  AssertNoDuplicateCommits(cluster, 4);

  // Liveness: commits resumed after the final crash settled.
  const int64_t before = cluster.ClientCommitted();
  cluster.RunFor(Seconds(3));
  EXPECT_GT(cluster.ClientCommitted(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashScheduleTest,
                         ::testing::Values(11, 22, 33, 44));

// ----------------------------------------------------- reputation lemmas

TEST(ReputationLemmaTest, UnsuccessfulElectionsDoNotChangePenalty) {
  // Lemma 10: only elected leaders' (rp, ci) enter vcBlocks. Verify that
  // every vcBlock changes at most the new leader's entries.
  PrestigeConfig config = FastConfig(4);
  config.rotation_period = Seconds(1);
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 40;
  w.seed = 55;
  PrestigeCluster cluster(config, w);
  cluster.Start();
  cluster.RunFor(Seconds(8));

  const auto& chain = cluster.replica(0).store().vc_chain();
  ASSERT_GT(chain.size(), 2u);
  for (size_t i = 1; i < chain.size(); ++i) {
    const auto& prev = chain[i - 1];
    const auto& cur = chain[i];
    for (uint32_t r = 0; r < 4; ++r) {
      if (r == cur.leader()) continue;
      EXPECT_EQ(cur.PenaltyOf(r), prev.PenaltyOf(r))
          << "non-leader penalty changed at view " << cur.v();
      EXPECT_EQ(cur.CompensationOf(r), prev.CompensationOf(r))
          << "non-leader ci changed at view " << cur.v();
    }
  }
}

TEST(ReputationLemmaTest, ElectedLeaderIsAlwaysVerifiable) {
  // Property P3: every vcBlock's recorded leader penalty must be
  // recomputable from the previous chain state via CalcRP. (Verified
  // implicitly by every replica at vote time; re-checked here offline for
  // penalization-only growth: rp' <= rp + view skip.)
  PrestigeConfig config = FastConfig(4);
  config.rotation_period = Seconds(1);
  WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 40;
  w.seed = 77;
  PrestigeCluster cluster(config, w);
  cluster.Start();
  cluster.RunFor(Seconds(8));

  const auto& chain = cluster.replica(0).store().vc_chain();
  for (size_t i = 1; i < chain.size(); ++i) {
    const auto& prev = chain[i - 1];
    const auto& cur = chain[i];
    const types::Penalty before = prev.PenaltyOf(cur.leader());
    const types::Penalty after = cur.PenaltyOf(cur.leader());
    EXPECT_GE(after, 1);
    EXPECT_LE(after, before + (cur.v() - prev.v()));
  }
}

}  // namespace
}  // namespace core
}  // namespace prestige
