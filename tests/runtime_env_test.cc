// Unit tests for the runtime abstraction layer: the shared timer-tag
// packing (util/timer_tag.h) and the SimEnv backend (runtime/sim_env.h)
// that hosts runtime::Nodes on the discrete-event simulator.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/env.h"
#include "runtime/sim_env.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/timer_tag.h"

namespace prestige {
namespace runtime {
namespace {

using util::Millis;

// ------------------------------------------------------------- timer tags

enum class TestKind : uint64_t { kAlpha = 1, kBeta = 2, kMax = 0xffff };

TEST(TimerTagTest, RoundTripsKindAndPayload) {
  const uint64_t tag = util::PackTimerTag(TestKind::kBeta, 0x1234abcdULL);
  EXPECT_EQ(util::TimerTagKind<TestKind>(tag), TestKind::kBeta);
  EXPECT_EQ(util::TimerTagPayload(tag), 0x1234abcdULL);
}

TEST(TimerTagTest, ZeroPayloadByDefault) {
  const uint64_t tag = util::PackTimerTag(TestKind::kAlpha);
  EXPECT_EQ(util::TimerTagKind<TestKind>(tag), TestKind::kAlpha);
  EXPECT_EQ(util::TimerTagPayload(tag), 0u);
}

TEST(TimerTagTest, MaxPayloadSurvives) {
  const uint64_t tag =
      util::PackTimerTag(TestKind::kAlpha, util::kTimerTagMaxPayload);
  EXPECT_EQ(util::TimerTagKind<TestKind>(tag), TestKind::kAlpha);
  EXPECT_EQ(util::TimerTagPayload(tag), util::kTimerTagMaxPayload);
}

TEST(TimerTagTest, OversizePayloadIsMaskedNotSmearedIntoKind) {
  // A full 64-bit key does NOT fit: the top bits are masked off, never
  // allowed to corrupt the kind. (This is why complaint keys go through a
  // probe table instead of the tag.)
  const uint64_t key = 0xdeadbeefcafef00dULL;
  const uint64_t tag = util::PackTimerTag(TestKind::kBeta, key);
  EXPECT_EQ(util::TimerTagKind<TestKind>(tag), TestKind::kBeta);
  EXPECT_EQ(util::TimerTagPayload(tag), key & util::kTimerTagPayloadMask);
  EXPECT_NE(util::TimerTagPayload(tag), key);
}

TEST(TimerTagTest, SixteenBitKindRange) {
  const uint64_t tag = util::PackTimerTag(TestKind::kMax, 7);
  EXPECT_EQ(util::TimerTagKind<TestKind>(tag), TestKind::kMax);
  EXPECT_EQ(util::TimerTagPayload(tag), 7u);
}

// ----------------------------------------------------------------- SimEnv

struct PingMsg : public NetMessage {
  int value = 0;
  size_t WireSize() const override { return 16; }
  const char* Name() const override { return "Ping"; }
};

/// Records every callback; sends / arms timers on demand via its Env.
class RecorderNode : public Node {
 public:
  void OnStart() override { ++starts; }
  void OnMessage(NodeId from, const MessagePtr& msg) override {
    froms.push_back(from);
    if (auto* ping = dynamic_cast<const PingMsg*>(msg.get())) {
      values.push_back(ping->value);
    }
  }
  void OnTimer(uint64_t tag) override { fired.push_back(tag); }

  // Exercise the protected Node helpers from test code.
  TimerId Arm(util::DurationMicros delay, uint64_t tag) {
    return SetTimer(delay, tag);
  }
  void Disarm(TimerId t) { CancelTimer(t); }
  void DisarmAll() { CancelAllTimers(); }
  void Ping(NodeId to, int value) {
    auto msg = std::make_shared<PingMsg>();
    msg->value = value;
    Send(to, msg);
  }
  void PingAll(const std::vector<NodeId>& to, int value) {
    auto msg = std::make_shared<PingMsg>();
    msg->value = value;
    Send(to, msg);
  }
  util::TimeMicros NowForTest() const { return Now(); }
  uint64_t Draw() { return rng()->NextUint64(); }

  int starts = 0;
  std::vector<NodeId> froms;
  std::vector<int> values;
  std::vector<uint64_t> fired;
};

class SimEnvTest : public ::testing::Test {
 protected:
  SimEnvTest()
      : sim_(7),
        net_(&sim_, sim::LatencyModel::Fixed(1.0), sim::CostModel{}) {
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(std::make_unique<RecorderNode>());
      envs_.push_back(std::make_unique<SimEnv>(nodes_.back().get()));
      sim_.AddActor(envs_.back().get());
      envs_.back()->AttachNetwork(&net_);
    }
  }

  RecorderNode& node(int i) { return *nodes_[i]; }

  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<RecorderNode>> nodes_;
  std::vector<std::unique_ptr<SimEnv>> envs_;
};

TEST_F(SimEnvTest, BindsIdsInRegistrationOrder) {
  EXPECT_EQ(node(0).id(), 0u);
  EXPECT_EQ(node(1).id(), 1u);
  EXPECT_EQ(envs_[0]->node(), &node(0));
}

TEST_F(SimEnvTest, DeliversMessagesThroughTheNetwork) {
  sim_.ScheduleAfter(0, [this] { node(0).Ping(1, 42); });
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(node(1).values.size(), 1u);
  EXPECT_EQ(node(1).values[0], 42);
  EXPECT_EQ(node(1).froms[0], 0u);
  EXPECT_TRUE(node(0).values.empty());
}

TEST_F(SimEnvTest, BroadcastReachesEveryTarget) {
  sim_.ScheduleAfter(0, [this] { node(0).PingAll({0, 1}, 9); });
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(node(0).values.size(), 1u);  // Self-send delivered too.
  ASSERT_EQ(node(1).values.size(), 1u);
  EXPECT_EQ(node(1).values[0], 9);
}

TEST_F(SimEnvTest, TimersFireInVirtualTimeOrder) {
  sim_.ScheduleAfter(0, [this] {
    node(0).Arm(Millis(30), 30);
    node(0).Arm(Millis(10), 10);
    node(0).Arm(Millis(20), 20);
  });
  sim_.RunUntil(Millis(100));
  ASSERT_EQ(node(0).fired.size(), 3u);
  EXPECT_EQ(node(0).fired, (std::vector<uint64_t>{10, 20, 30}));
}

TEST_F(SimEnvTest, CancelSuppressesFiring) {
  sim_.ScheduleAfter(0, [this] {
    const TimerId t = node(0).Arm(Millis(10), 1);
    node(0).Arm(Millis(20), 2);
    node(0).Disarm(t);
  });
  sim_.RunUntil(Millis(100));
  EXPECT_EQ(node(0).fired, (std::vector<uint64_t>{2}));
}

TEST_F(SimEnvTest, CancelAllSuppressesEverything) {
  sim_.ScheduleAfter(0, [this] {
    node(0).Arm(Millis(10), 1);
    node(0).Arm(Millis(20), 2);
    node(0).DisarmAll();
  });
  sim_.RunUntil(Millis(100));
  EXPECT_TRUE(node(0).fired.empty());
}

TEST_F(SimEnvTest, ClockTracksVirtualTime) {
  util::TimeMicros seen = -1;
  sim_.ScheduleAt(Millis(25), [this, &seen] { seen = node(0).NowForTest(); });
  sim_.RunUntil(Millis(100));
  EXPECT_EQ(seen, Millis(25));
}

TEST(SimEnvDeterminismTest, RngStreamsDependOnlyOnSeedAndOrder) {
  // Two independent deployments with the same seed and registration order
  // hand every node the same random stream — the property the bit-identical
  // BENCH JSON guarantee rests on.
  auto draw = [](uint64_t seed) {
    sim::Simulator sim(seed);
    sim::Network net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{});
    RecorderNode a;
    RecorderNode b;
    SimEnv ea(&a);
    SimEnv eb(&b);
    sim.AddActor(&ea);
    sim.AddActor(&eb);
    ea.AttachNetwork(&net);
    eb.AttachNetwork(&net);
    return std::vector<uint64_t>{a.Draw(), a.Draw(), b.Draw()};
  };
  EXPECT_EQ(draw(11), draw(11));
  EXPECT_NE(draw(11), draw(12));
}

TEST(SimEnvDeterminismTest, StartCallbackRunsOnce) {
  sim::Simulator sim(1);
  sim::Network net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{});
  RecorderNode a;
  SimEnv env(&a);
  sim.AddActor(&env);
  env.AttachNetwork(&net);
  sim.ScheduleAfter(0, [&a] { a.OnStart(); });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(a.starts, 1);
}

}  // namespace
}  // namespace runtime
}  // namespace prestige
