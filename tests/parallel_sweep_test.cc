// Determinism under parallelism: a seed sweep fanned out over worker
// threads must produce byte-identical per-seed results — and a
// byte-identical aggregate — to the serial sweep, and the per-run
// CryptoMeter hash accounting must stay exact in both modes (in a
// single-threaded sweep the per-run counts sum to the thread-cumulative
// Sha256::TotalFinished delta).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/replica.h"
#include "crypto/sha256.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"
#include "util/random.h"
#include "workload/arrival.h"
#include "workload/key_dist.h"

namespace prestige {
namespace harness {
namespace {

using util::Millis;

/// Small but eventful: flaky links, then a minority partition, then heal —
/// enough protocol activity to make any cross-thread bleed visible.
ScenarioSpec SweepSpec() {
  ScenarioSpec spec;
  spec.name = "test-parallel-sweep";
  spec.n = 4;

  Phase warmup;
  warmup.name = "warmup";
  warmup.duration = Millis(400);
  spec.phases.push_back(warmup);

  Phase flaky;
  flaky.name = "flaky";
  flaky.duration = Millis(400);
  flaky.set_link_faults = true;
  flaky.default_link_fault = sim::LinkFault::Flaky(0.05, 0.02, 0.10);
  spec.phases.push_back(flaky);

  Phase split;
  split.name = "split";
  split.duration = Millis(400);
  split.set_partition = true;
  split.set_link_faults = true;
  split.partition = {{0, 1, 2}, {3}};
  spec.phases.push_back(split);

  Phase heal;
  heal.name = "heal";
  heal.duration = Millis(400);
  heal.set_partition = true;
  spec.phases.push_back(heal);
  return spec;
}

WorkloadOptions SweepWorkload() {
  WorkloadOptions w;
  w.num_pools = 2;
  w.clients_per_pool = 25;
  return w;
}

core::PrestigeConfig SweepConfig() {
  core::PrestigeConfig config;
  config.batch_size = 100;
  return config;
}

TEST(ParallelSweepTest, FourJobsMatchSerialByteForByte) {
  const ScenarioSpec spec = SweepSpec();
  constexpr uint32_t kSeeds = 6;

  const ScenarioAggregate serial =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SweepConfig(), SweepWorkload(), /*base_seed=*/1, kSeeds,
          /*jobs=*/1);
  const ScenarioAggregate parallel =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SweepConfig(), SweepWorkload(), /*base_seed=*/1, kSeeds,
          /*jobs=*/4);

  ASSERT_EQ(serial.seeds.size(), kSeeds);
  ASSERT_EQ(parallel.seeds.size(), kSeeds);
  for (uint32_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(SeedResultJson(serial.seeds[i]),
              SeedResultJson(parallel.seeds[i]))
        << "seed " << serial.seeds[i].seed;
  }

  // The aggregate is computed on the calling thread in seed order in both
  // modes, so even the floating-point means match exactly.
  EXPECT_EQ(serial.all_safe, parallel.all_safe);
  EXPECT_EQ(serial.committed_total, parallel.committed_total);
  EXPECT_EQ(serial.view_changes_total, parallel.view_changes_total);
  EXPECT_EQ(serial.messages_dropped_total, parallel.messages_dropped_total);
  EXPECT_EQ(serial.events_total, parallel.events_total);
  EXPECT_EQ(serial.hashes_total, parallel.hashes_total);
  EXPECT_EQ(serial.tps_mean, parallel.tps_mean);
  EXPECT_EQ(serial.p50_ms_mean, parallel.p50_ms_mean);
  EXPECT_EQ(serial.p99_ms_mean, parallel.p99_ms_mean);
  EXPECT_EQ(serial.tps_min, parallel.tps_min);
  EXPECT_EQ(serial.tps_max, parallel.tps_max);
}

TEST(ParallelSweepTest, OpenLoopSweepFourJobsMatchSerialByteForByte) {
  // PR 9's workload generators (Poisson arrivals, zipfian keys) must stay
  // a pure function of the seed when seed runs share a process with other
  // runs on worker threads — no thread-local or global generator state.
  const ScenarioSpec spec = SweepSpec();
  constexpr uint32_t kSeeds = 4;

  WorkloadOptions w = SweepWorkload();
  w.open_loop = true;
  w.arrival.kind = workload::ArrivalKind::kPoisson;
  w.arrival.rate_per_sec = 2000.0;
  w.kv_key_space = 4096;
  w.zipf_theta = 0.9;
  w.max_outstanding = 128;
  w.max_backlog = 256;

  const ScenarioAggregate serial =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SweepConfig(), w, /*base_seed=*/11, kSeeds, /*jobs=*/1);
  const ScenarioAggregate parallel =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SweepConfig(), w, /*base_seed=*/11, kSeeds, /*jobs=*/4);

  ASSERT_EQ(serial.seeds.size(), kSeeds);
  ASSERT_EQ(parallel.seeds.size(), kSeeds);
  for (uint32_t i = 0; i < kSeeds; ++i) {
    EXPECT_GT(serial.seeds[i].committed, 0) << "seed " << serial.seeds[i].seed;
    EXPECT_EQ(SeedResultJson(serial.seeds[i]),
              SeedResultJson(parallel.seeds[i]))
        << "seed " << serial.seeds[i].seed;
  }
  EXPECT_EQ(serial.events_total, parallel.events_total);
  EXPECT_EQ(serial.hashes_total, parallel.hashes_total);
}

TEST(ParallelSweepTest, GeneratorStreamsAreByteIdenticalAcrossThreads) {
  // The generators underneath the sweep, exercised directly: each thread
  // regenerates the same seeded Poisson timestamp + zipfian key streams
  // and must reproduce the serial reference exactly.
  workload::ArrivalSpec spec;
  spec.kind = workload::ArrivalKind::kPoisson;
  spec.rate_per_sec = 5000.0;
  constexpr uint64_t kSeed = 99;
  constexpr size_t kDraws = 10000;

  std::vector<util::TimeMicros> ref_times;
  std::vector<uint64_t> ref_keys;
  {
    workload::ArrivalGenerator gen(spec, kSeed);
    const workload::ZipfianGenerator zipf(4096, 0.99);
    util::Rng rng(kSeed ^ 1);
    for (size_t i = 0; i < kDraws; ++i) {
      ref_times.push_back(gen.Next());
      ref_keys.push_back(zipf.Next(&rng));
    }
  }

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      workload::ArrivalGenerator gen(spec, kSeed);
      const workload::ZipfianGenerator zipf(4096, 0.99);
      util::Rng rng(kSeed ^ 1);
      for (size_t i = 0; i < kDraws; ++i) {
        if (gen.Next() != ref_times[i]) ++mismatches[t];
        if (zipf.Next(&rng) != ref_keys[i]) ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(ParallelSweepTest, PerRunMetersSumToThreadTotalInSerialSweep) {
  const ScenarioSpec spec = SweepSpec();
  constexpr uint32_t kSeeds = 3;

  // jobs=1 keeps every run on this thread, so the thread-cumulative
  // counter must advance by exactly the sum of the per-run meters (the
  // sweep itself hashes nothing outside the runs).
  const uint64_t total_before = crypto::Sha256::TotalFinished();
  const ScenarioAggregate agg =
      RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
          spec, SweepConfig(), SweepWorkload(), /*base_seed=*/7, kSeeds,
          /*jobs=*/1);
  const uint64_t total_delta = crypto::Sha256::TotalFinished() - total_before;

  uint64_t per_run_sum = 0;
  for (const ScenarioSeedResult& r : agg.seeds) {
    EXPECT_GT(r.hashes, 0u) << "seed " << r.seed;
    per_run_sum += r.hashes;
  }
  EXPECT_EQ(per_run_sum, agg.hashes_total);
  EXPECT_EQ(per_run_sum, total_delta);
}

TEST(ParallelSweepTest, ScopedMeterNestsAndRestores) {
  crypto::CryptoMeter outer;
  crypto::CryptoMeter inner;
  const uint8_t byte = 0x42;
  {
    crypto::ScopedCryptoMeter outer_scope(&outer);
    crypto::Sha256::Hash(&byte, 1);
    {
      crypto::ScopedCryptoMeter inner_scope(&inner);
      crypto::Sha256::Hash(&byte, 1);
      crypto::Sha256::Hash(&byte, 1);
    }
    crypto::Sha256::Hash(&byte, 1);
  }
  // Only the innermost meter is credited while it is installed.
  EXPECT_EQ(outer.finished, 2u);
  EXPECT_EQ(inner.finished, 2u);
  // After the scopes unwind, hashing is unmetered but still counts toward
  // the thread total.
  const uint64_t before = crypto::Sha256::TotalFinished();
  crypto::Sha256::Hash(&byte, 1);
  EXPECT_EQ(crypto::Sha256::TotalFinished(), before + 1);
  EXPECT_EQ(outer.finished, 2u);
}

}  // namespace
}  // namespace harness
}  // namespace prestige
