// The active-adversary plane, end to end: per-behaviour unit tests of the
// ScriptedAdversary hooks, scenario-level suppression runs (wedged and
// equivocating leaders lose office and accumulate reputation penalty;
// PrestigeBFT keeps them out while a rotation schedule hands the view
// back), the Byzantine-aware safety sweep (a forged-reply replica must not
// read as a protocol violation), honest-run byte-identity (an empty
// ByzantineSpec leaves SeedResultJson byte-identical to a spec without
// one), and byzantine-fuzz determinism (the seed-keyed schedule generator
// sweeps byte-identically for any --jobs value, mirroring
// parallel_sweep_test.cc).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/kv_service.h"
#include "baselines/hotstuff/hotstuff_replica.h"
#include "core/replica.h"
#include "harness/adversary.h"
#include "harness/cluster.h"
#include "harness/invariants.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"
#include "types/byzantine_spec.h"
#include "util/time.h"

namespace prestige {
namespace harness {
namespace {

using util::Millis;
using util::Seconds;

/// Small workload: adversary scenarios exercise the control plane, not
/// saturation throughput.
WorkloadOptions SmallWorkload() {
  WorkloadOptions w;
  w.num_pools = 2;
  w.clients_per_pool = 25;
  return w;
}

core::PrestigeConfig SmallConfig(uint32_t n = 4) {
  core::PrestigeConfig config;
  config.n = n;
  config.batch_size = 100;
  return config;
}

// ------------------------------------------------------- hook unit tests

types::ByzantineSpec OneReplicaSpec(uint32_t replica, types::Misbehaviour kind,
                                    util::TimeMicros start,
                                    util::TimeMicros stop = 0) {
  types::ByzantineSpec spec;
  types::ReplicaMisbehaviour m;
  m.replica = replica;
  m.kind = kind;
  m.start_at = start;
  m.stop_at = stop;
  spec.replicas.push_back(m);
  return spec;
}

TEST(ScriptedAdversaryTest, WedgeRespectsActivationWindow) {
  const ScriptedAdversary adversary(OneReplicaSpec(
      0, types::Misbehaviour::kSlowLeader, Seconds(2), Seconds(5)));
  EXPECT_FALSE(adversary.WedgeProposals(0, Seconds(1)));
  EXPECT_TRUE(adversary.WedgeProposals(0, Seconds(2)));
  EXPECT_TRUE(adversary.WedgeProposals(0, Seconds(4)));
  EXPECT_FALSE(adversary.WedgeProposals(0, Seconds(5)));  // stop_at exclusive.
  EXPECT_FALSE(adversary.WedgeProposals(1, Seconds(3)));  // Honest replica.
}

TEST(ScriptedAdversaryTest, ProposalVariantSplitsDestinationsIntoGroups) {
  types::ByzantineSpec spec =
      OneReplicaSpec(0, types::Misbehaviour::kEquivocatingLeader, Seconds(1));
  spec.replicas[0].equivocation_groups = 2;
  const ScriptedAdversary adversary(spec);
  // Before activation: canonical body for everyone.
  EXPECT_EQ(adversary.ProposalVariant(0, 1, Millis(500)), 0u);
  // Active: destination parity picks the group; group 0 is canonical.
  EXPECT_EQ(adversary.ProposalVariant(0, 2, Seconds(2)), 0u);
  EXPECT_EQ(adversary.ProposalVariant(0, 1, Seconds(2)), 1u);
  EXPECT_EQ(adversary.ProposalVariant(0, 3, Seconds(2)), 1u);
  // Honest replicas never equivocate.
  EXPECT_EQ(adversary.ProposalVariant(1, 3, Seconds(2)), 0u);
}

TEST(ScriptedAdversaryTest, WithholdVoteTargetsListedReplicasOrEveryone) {
  types::ByzantineSpec spec =
      OneReplicaSpec(2, types::Misbehaviour::kVoteWithholding, Seconds(1));
  spec.replicas[0].withhold_against = {0};
  const ScriptedAdversary targeted(spec);
  EXPECT_TRUE(targeted.WithholdVote(2, 0, Seconds(2)));
  EXPECT_FALSE(targeted.WithholdVote(2, 1, Seconds(2)));
  EXPECT_FALSE(targeted.WithholdVote(2, 0, Millis(500)));  // Pre-window.

  spec.replicas[0].withhold_against.clear();  // Empty = starve everyone.
  const ScriptedAdversary blanket(spec);
  EXPECT_TRUE(blanket.WithholdVote(2, 0, Seconds(2)));
  EXPECT_TRUE(blanket.WithholdVote(2, 3, Seconds(2)));
}

TEST(ScriptedAdversaryTest, SpamBurstAppliesToScriptedPoolsInWindow) {
  types::ByzantineSpec spec;
  spec.spam_pools = 2;
  spec.spam_complaints_per_scan = 3;
  spec.spam_start_at = Seconds(2);
  spec.spam_stop_at = Seconds(4);
  const ScriptedAdversary adversary(spec);
  EXPECT_EQ(adversary.ComplaintSpamBurst(0, Seconds(3)), 3u);
  EXPECT_EQ(adversary.ComplaintSpamBurst(1, Seconds(3)), 3u);
  EXPECT_EQ(adversary.ComplaintSpamBurst(2, Seconds(3)), 0u);  // Honest pool.
  EXPECT_EQ(adversary.ComplaintSpamBurst(0, Seconds(1)), 0u);  // Pre-window.
  EXPECT_EQ(adversary.ComplaintSpamBurst(0, Seconds(4)), 0u);  // Post-window.
}

TEST(ScriptedAdversaryTest, IsByzantineReflectsTheCast) {
  const ScriptedAdversary adversary(
      OneReplicaSpec(3, types::Misbehaviour::kForgedReply, 0));
  EXPECT_TRUE(adversary.TamperExecution(3, Seconds(1)));
  EXPECT_FALSE(adversary.TamperExecution(0, Seconds(1)));
  EXPECT_TRUE(adversary.IsByzantine(3));
  EXPECT_FALSE(adversary.IsByzantine(0));
}

TEST(BuildByzantineSetTest, ComposesFaultSpecAndAdversaryCasts) {
  ScenarioSpec spec;
  spec.n = 7;
  spec.byzantine.assign(7, types::FaultSpec::Honest());
  spec.byzantine[1] = types::FaultSpec::Crash(Seconds(1));
  spec.byzantine[2] = types::FaultSpec::RepeatedVc(
      types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet, 1.0);
  spec.adversary =
      OneReplicaSpec(5, types::Misbehaviour::kSlowLeader, Seconds(2));

  const std::vector<bool> byzantine = BuildByzantineSet(spec);
  ASSERT_EQ(byzantine.size(), 7u);
  EXPECT_FALSE(byzantine[0]);
  // Crashed replicas are honest: their shorter prefix must still agree.
  EXPECT_FALSE(byzantine[1]);
  EXPECT_TRUE(byzantine[2]);  // FaultSpec attacker.
  EXPECT_TRUE(byzantine[5]);  // Scripted adversary.
  EXPECT_FALSE(byzantine[6]);
}

// --------------------------------------------- fuzz-schedule determinism

TEST(ByzantineFuzzSpecTest, SameSeedSameSchedule) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ScenarioSpec a = ByzantineFuzzSpec(seed);
    const ScenarioSpec b = ByzantineFuzzSpec(seed);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.kv_workload, b.kv_workload);
    ASSERT_EQ(a.adversary.replicas.size(), b.adversary.replicas.size());
    for (size_t i = 0; i < a.adversary.replicas.size(); ++i) {
      EXPECT_EQ(a.adversary.replicas[i].replica,
                b.adversary.replicas[i].replica);
      EXPECT_EQ(a.adversary.replicas[i].kind, b.adversary.replicas[i].kind);
      EXPECT_EQ(a.adversary.replicas[i].start_at,
                b.adversary.replicas[i].start_at);
      EXPECT_EQ(a.adversary.replicas[i].stop_at,
                b.adversary.replicas[i].stop_at);
    }
    EXPECT_EQ(a.adversary.spam_pools, b.adversary.spam_pools);
    EXPECT_EQ(a.adversary.spam_complaints_per_scan,
              b.adversary.spam_complaints_per_scan);
  }
}

TEST(ByzantineFuzzSpecTest, SchedulesAreBoundedAndDiverse) {
  bool saw_n4 = false;
  bool saw_n7 = false;
  bool saw_spam = false;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const ScenarioSpec spec = ByzantineFuzzSpec(seed);
    ASSERT_TRUE(spec.n == 4 || spec.n == 7);
    saw_n4 = saw_n4 || spec.n == 4;
    saw_n7 = saw_n7 || spec.n == 7;
    saw_spam = saw_spam || spec.adversary.spam_pools > 0;
    const uint32_t f = (spec.n - 1) / 3;
    ASSERT_GE(spec.adversary.replicas.size(), 1u);
    ASSERT_LE(spec.adversary.replicas.size(), static_cast<size_t>(f));
    bool any_forged = false;
    std::vector<bool> cast(spec.n, false);
    for (const types::ReplicaMisbehaviour& m : spec.adversary.replicas) {
      ASSERT_LT(m.replica, spec.n);
      EXPECT_FALSE(cast[m.replica]) << "duplicate attacker, seed " << seed;
      cast[m.replica] = true;
      EXPECT_NE(m.kind, types::Misbehaviour::kNone);
      EXPECT_GE(m.start_at, Millis(1500));  // Inside the attack timeline.
      any_forged = any_forged || m.kind == types::Misbehaviour::kForgedReply;
    }
    // Forged replies only diverge real application state.
    EXPECT_EQ(spec.kv_workload, any_forged) << "seed " << seed;
    ASSERT_EQ(spec.phases.size(), 3u);
  }
  EXPECT_TRUE(saw_n4);
  EXPECT_TRUE(saw_n7);
  EXPECT_TRUE(saw_spam);
}

TEST(ByzantineFuzzSweepTest, JobsMatchSerialByteForByte) {
  constexpr uint32_t kSeeds = 3;
  auto gen = [](uint64_t seed) { return ByzantineFuzzSpec(seed); };

  const ScenarioAggregate serial =
      RunScenarioSweepGen<core::PrestigeReplica, core::PrestigeConfig>(
          gen, SmallConfig(), SmallWorkload(), /*base_seed=*/42, kSeeds,
          /*jobs=*/1);
  const ScenarioAggregate parallel =
      RunScenarioSweepGen<core::PrestigeReplica, core::PrestigeConfig>(
          gen, SmallConfig(), SmallWorkload(), /*base_seed=*/42, kSeeds,
          /*jobs=*/3);

  ASSERT_EQ(serial.seeds.size(), kSeeds);
  ASSERT_EQ(parallel.seeds.size(), kSeeds);
  for (uint32_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(SeedResultJson(serial.seeds[i]),
              SeedResultJson(parallel.seeds[i]))
        << "seed " << serial.seeds[i].seed;
    EXPECT_TRUE(serial.seeds[i].safety_ok) << serial.seeds[i].violation;
    EXPECT_TRUE(serial.seeds[i].adversary_present);
  }
  EXPECT_EQ(serial.all_safe, parallel.all_safe);
  EXPECT_EQ(serial.events_total, parallel.events_total);
  EXPECT_EQ(serial.hashes_total, parallel.hashes_total);
  EXPECT_EQ(serial.tps_mean, parallel.tps_mean);
  EXPECT_EQ(serial.committed_total, parallel.committed_total);
}

// ------------------------------------------------- honest byte-identity

ScenarioSpec ShortHonestSpec() {
  ScenarioSpec spec;
  spec.name = "test-honest";
  spec.n = 4;
  Phase warmup;
  warmup.name = "warmup";
  warmup.duration = Millis(400);
  spec.phases.push_back(warmup);
  Phase steady;
  steady.name = "steady";
  steady.duration = Millis(400);
  spec.phases.push_back(steady);
  return spec;
}

TEST(HonestIdentityTest, EmptyAdversarySpecIsByteIdenticalAndUnreported) {
  const ScenarioSpec plain = ShortHonestSpec();
  // A spec whose ByzantineSpec is present but *empty* (kNone entries, spam
  // with zero complaints) must not perturb the run: Empty() gates all
  // adversary wiring, so the JSON stays byte-identical.
  ScenarioSpec noop = ShortHonestSpec();
  types::ReplicaMisbehaviour none;
  none.replica = 1;
  none.kind = types::Misbehaviour::kNone;
  noop.adversary.replicas.push_back(none);
  noop.adversary.spam_pools = 1;
  noop.adversary.spam_complaints_per_scan = 0;
  ASSERT_TRUE(noop.adversary.Empty());

  const ScenarioSeedResult a = RunScenarioSeed<core::PrestigeReplica>(
      plain, SmallConfig(), SmallWorkload());
  const ScenarioSeedResult b = RunScenarioSeed<core::PrestigeReplica>(
      noop, SmallConfig(), SmallWorkload());
  const std::string json = SeedResultJson(a);
  EXPECT_EQ(json, SeedResultJson(b));
  EXPECT_EQ(json.find("suppression"), std::string::npos);
  EXPECT_FALSE(a.adversary_present);
  EXPECT_TRUE(a.safety_ok) << a.violation;
}

// ------------------------------------------------ suppression scenarios

TEST(SuppressionTest, WedgedLeaderIsReplacedPenalizedAndKeptOut) {
  const ScenarioSpec* spec = FindScenario("slow-leader");
  ASSERT_NE(spec, nullptr);
  const ScenarioSeedResult r = RunScenarioSeed<core::PrestigeReplica>(
      *spec, SmallConfig(), SmallWorkload());

  EXPECT_TRUE(r.safety_ok) << r.violation;
  ASSERT_EQ(r.phases.size(), 3u);
  // The wedge stalls progress, the complaint path forces a view change,
  // and commits resume: the settle phase must make real progress.
  EXPECT_GT(r.phases[2].committed, 0);
  EXPECT_GE(r.view_changes, 1);
  // The attacker contests every deposition (S1 + collusion speed-up) and
  // wins the early contested re-elections while its puzzle is cheap — but
  // each wedged reign adds +1 to its penalty (no commits => no
  // compensation), so the ratcheting difficulty prices it out after a
  // handful of reigns: views held stay bounded and leadership lands with
  // honest replicas for good.
  EXPECT_TRUE(r.adversary_present);
  EXPECT_GE(r.byz_views_led, 2);  // Genesis plus at least one comeback.
  EXPECT_LE(r.byz_views_led, 8);  // ...but priced out, not unbounded.
  EXPECT_GE(r.honest_views_led, 1);
  // Time to suppression: once priced out, the attacker never holds office
  // again — the run's final second is honest-led (9s total).
  EXPECT_LT(r.last_byz_led_us, Seconds(8));
  // The reputation engine penalized it: the recorded penalty climbed with
  // every re-election (the fig13-style trajectory), well above genesis
  // rp=1.
  ASSERT_EQ(r.final_rp.size(), 4u);
  EXPECT_GE(r.final_rp[0], 2);
  EXPECT_FALSE(r.byz_rp_trajectory.empty());
  EXPECT_NE(SeedResultJson(r).find("\"suppression\""), std::string::npos);
}

TEST(SuppressionTest, RotationScheduleHandsViewBackToWedgedLeader) {
  // The churn contrast: HotStuff's passive schedule re-elects the attacker
  // after the attack begins, where PrestigeBFT's reputation engine keeps it
  // out (previous test: last_byz_led_us < 6s).
  const ScenarioSpec* spec = FindScenario("slow-leader");
  ASSERT_NE(spec, nullptr);
  baselines::hotstuff::HotStuffConfig config;
  config.batch_size = 100;
  config.rotation_period = Seconds(1);
  const ScenarioSeedResult r =
      RunScenarioSeed<baselines::hotstuff::HotStuffReplica>(
          *spec, config, SmallWorkload());

  EXPECT_TRUE(r.safety_ok) << r.violation;
  EXPECT_TRUE(r.adversary_present);
  EXPECT_GE(r.byz_views_led, 1);
  // The schedule handed the view back after the wedge engaged at 2s.
  EXPECT_GT(r.last_byz_led_us, Seconds(2));
  // Baselines record no reputation: the penalty series stays empty.
  ASSERT_EQ(r.final_rp.size(), 4u);
  EXPECT_EQ(r.final_rp[0], 0);
  EXPECT_TRUE(r.byz_rp_trajectory.empty());
}

TEST(SuppressionTest, EquivocatingLeaderIsPenalizedWithoutSafetyLoss) {
  const ScenarioSpec* spec = FindScenario("equivocating-leader");
  ASSERT_NE(spec, nullptr);
  const ScenarioSeedResult r = RunScenarioSeed<core::PrestigeReplica>(
      *spec, SmallConfig(), SmallWorkload());

  // Conflicting bodies can never gather a verified 2f+1 quorum, so honest
  // chains stay in agreement and clients never see conflicting results.
  EXPECT_TRUE(r.safety_ok) << r.violation;
  EXPECT_EQ(r.result_mismatches, 0);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_GT(r.phases[2].committed, 0);  // Commits resume once replaced.
  EXPECT_GE(r.view_changes, 1);
  EXPECT_LE(r.byz_views_led, 8);  // Bounded: priced out after a few reigns.
  ASSERT_EQ(r.final_rp.size(), 4u);
  EXPECT_GE(r.final_rp[0], 2);  // Penalized above the genesis rp=1.
}

TEST(SuppressionTest, VoteWithholdingCliqueCannotStallTheQuorum) {
  const ScenarioSpec* spec = FindScenario("vote-withholding");
  ASSERT_NE(spec, nullptr);
  const ScenarioSeedResult r = RunScenarioSeed<core::PrestigeReplica>(
      *spec, SmallConfig(7), SmallWorkload());

  EXPECT_TRUE(r.safety_ok) << r.violation;
  ASSERT_EQ(r.phases.size(), 3u);
  // n=7 leaves exactly 2f+1 honest replicas: the cluster must keep
  // committing straight through the withholding window.
  EXPECT_GT(r.phases[1].committed, 0);
  EXPECT_GT(r.phases[2].committed, 0);
}

// -------------------------------------- Byzantine-aware safety invariants

TEST(ByzantineSafetyTest, ForgedReplyReplicaIsNoFalseSafetyViolation) {
  const ScenarioSpec* spec = FindScenario("forged-replies");
  ASSERT_NE(spec, nullptr);

  // Manual wiring (mirroring RunScenarioSeed) so both CheckSafety overloads
  // can sweep the same cluster.
  core::PrestigeConfig config = SmallConfig(spec->n);
  WorkloadOptions workload = SmallWorkload();
  workload.command_kind = workload::CommandKind::kKvPut;
  const ScriptedAdversary adversary(spec->adversary);
  const std::vector<bool> byzantine = BuildByzantineSet(*spec);

  Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(config,
                                                               workload);
  cluster.network().fault_plane().Seed(workload.seed);
  cluster.InstallServices([&workload]() {
    return std::make_unique<app::KvService>(workload.kv_key_space);
  });
  cluster.SetAdversary(&adversary);
  cluster.Start();
  cluster.RunFor(Seconds(6));  // Warmup 2s + 4s of tampered execution.
  // Quiesce so every honest replica converges to the same chain height
  // before the sweep compares per-height execution state.
  for (uint32_t p = 0; p < cluster.num_pools(); ++p) {
    cluster.pool(p).SetActive(false);
  }
  cluster.RunFor(Seconds(1));

  // The tampering replica genuinely diverged its KV state, so the naive
  // all-honest sweep reports divergent execution...
  const SafetyReport naive = CheckSafety(cluster);
  EXPECT_FALSE(naive.ok);
  EXPECT_NE(naive.violation.find("divergent execution"), std::string::npos)
      << naive.violation;
  // ...while the Byzantine-aware sweep excludes it and passes: honest
  // replicas still agree on chains and execution results.
  const SafetyReport aware = CheckSafety(cluster, byzantine);
  EXPECT_TRUE(aware.ok) << aware.violation;
  // Clients saw the forged result digests but never completed on them.
  EXPECT_GT(cluster.ResultMismatches(), 0);
  EXPECT_GT(cluster.ClientCommitted(), 0);
}

TEST(ByzantineSafetyTest, ForgedRepliesScenarioRunsSafe) {
  const ScenarioSpec* spec = FindScenario("forged-replies");
  ASSERT_NE(spec, nullptr);
  const ScenarioSeedResult r = RunScenarioSeed<core::PrestigeReplica>(
      *spec, SmallConfig(), SmallWorkload());
  EXPECT_TRUE(r.safety_ok) << r.violation;
  EXPECT_GT(r.committed, 0);
  EXPECT_GT(r.result_mismatches, 0);  // Forged digests reached clients.
}

// ----------------------------------------------------- complaint spam

TEST(ComplaintSpamTest, SpamReachesReplicasWithoutStallingCommits) {
  const ScenarioSpec* spec = FindScenario("complaint-spam");
  ASSERT_NE(spec, nullptr);

  auto complaints_received = [](bool spam, int64_t* committed) {
    const ScenarioSpec* s = FindScenario("complaint-spam");
    const ScriptedAdversary adversary(spam ? s->adversary
                                           : types::ByzantineSpec());
    Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        SmallConfig(s->n), SmallWorkload());
    cluster.network().fault_plane().Seed(1);
    if (spam) cluster.SetAdversary(&adversary);
    cluster.Start();
    cluster.RunFor(Seconds(5));  // Spam window opens at 2s.
    int64_t total = 0;
    for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
      total += cluster.replica(i).metrics().complaints_received;
    }
    *committed = cluster.ClientCommitted();
    return total;
  };

  int64_t committed_spam = 0;
  int64_t committed_quiet = 0;
  const int64_t with_spam = complaints_received(true, &committed_spam);
  const int64_t without = complaints_received(false, &committed_quiet);
  // The bogus complaints actually flow...
  EXPECT_GT(with_spam, without);
  // ...and free complaints do not translate into a stalled cluster.
  EXPECT_GT(committed_spam, 0);
}

}  // namespace
}  // namespace harness
}  // namespace prestige
