// Tests for the open-loop workload engine: arrival trace generators,
// zipfian key skew, and the OpenLoopPool's backpressure / shedding / SLO
// accounting on the deterministic simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "app/service.h"
#include "runtime/sim_env.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "types/client_messages.h"
#include "workload/arrival.h"
#include "workload/key_dist.h"
#include "workload/open_loop_pool.h"

namespace prestige {
namespace workload {
namespace {

using util::Millis;
using util::Seconds;

// ----------------------------------------------------- arrival generators

TEST(ArrivalGeneratorTest, StreamIsDeterministicPerSeedAndMonotone) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_sec = 5000.0;

  ArrivalGenerator a(spec, 42), b(spec, 42), other(spec, 43);
  util::TimeMicros prev = 0;
  bool any_differs = false;
  for (int i = 0; i < 1000; ++i) {
    const util::TimeMicros ta = a.Next();
    EXPECT_EQ(ta, b.Next()) << "same (spec, seed) diverged at index " << i;
    EXPECT_GT(ta, prev) << "arrival stream must strictly advance";
    prev = ta;
    if (other.Next() != ta) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced the same stream";
}

TEST(ArrivalGeneratorTest, PoissonMatchesItsMeanRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_sec = 1000.0;  // Mean gap 1000us.
  ArrivalGenerator gen(spec, 7);
  const int n = 20000;
  util::TimeMicros last = 0;
  for (int i = 0; i < n; ++i) last = gen.Next();
  const double mean_gap = static_cast<double>(last) / n;
  EXPECT_GT(mean_gap, 900.0);
  EXPECT_LT(mean_gap, 1100.0);
}

TEST(ArrivalGeneratorTest, ConstantTraceIsExactlyPaced) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kConstant;
  spec.rate_per_sec = 1000.0;
  ArrivalGenerator gen(spec, 1);
  EXPECT_EQ(gen.Next(), 1000);
  EXPECT_EQ(gen.Next(), 2000);
  EXPECT_EQ(gen.Next(), 3000);
}

TEST(ArrivalGeneratorTest, RampInterpolatesRateThenHolds) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kRamp;
  spec.rate_per_sec = 100.0;
  spec.end_rate_per_sec = 1000.0;
  spec.ramp_duration = Seconds(1);
  ArrivalGenerator gen(spec, 1);

  EXPECT_DOUBLE_EQ(gen.RateAt(0), 100.0);
  EXPECT_DOUBLE_EQ(gen.RateAt(Millis(500)), 550.0);
  EXPECT_DOUBLE_EQ(gen.RateAt(Seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(gen.RateAt(Seconds(5)), 1000.0);  // Holds after ramp.
}

TEST(ArrivalGeneratorTest, RampTraceSpeedsUpOverTime) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kRamp;
  spec.rate_per_sec = 100.0;
  spec.end_rate_per_sec = 1000.0;
  spec.ramp_duration = Seconds(1);
  ArrivalGenerator gen(spec, 11);

  int early = 0, late = 0;
  for (util::TimeMicros t = gen.Next(); t < Seconds(2); t = gen.Next()) {
    if (t < Millis(500)) ++early;
    if (t >= Millis(1500)) ++late;
  }
  // ~100-325/s over the first half second vs a held ~1000/s at the end:
  // the late window must carry several times the early one.
  EXPECT_GT(late, early * 2);
  EXPECT_GT(early, 0);
}

// ------------------------------------------------------------ key skew

TEST(ZipfianGeneratorTest, ThetaZeroIsUniformWithinBounds) {
  const uint64_t keys = 1000;
  ZipfianGenerator zipf(keys, 0.0);
  util::Rng rng(3);
  std::vector<int64_t> counts(keys, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = zipf.Next(&rng);
    ASSERT_LT(k, keys);
    ++counts[k];
  }
  const double mean = static_cast<double>(draws) / keys;
  for (uint64_t k = 0; k < keys; ++k) {
    EXPECT_LT(counts[k], mean * 2.0) << "key " << k << " is hot under theta=0";
  }
}

TEST(ZipfianGeneratorTest, HighThetaConcentratesOnHeadRanks) {
  const uint64_t keys = 1000;
  ZipfianGenerator zipf(keys, 0.99);
  util::Rng rng(4);
  std::vector<int64_t> counts(keys, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = zipf.Next(&rng);
    ASSERT_LT(k, keys);
    ++counts[k];
  }
  // Rank 0 is the hottest key and carries a double-digit share (the
  // zipfian head), while deep-tail ranks are orders of magnitude colder.
  for (uint64_t k = 1; k < keys; ++k) {
    EXPECT_GE(counts[0], counts[k]) << "rank 0 must be the hottest";
  }
  EXPECT_GT(counts[0], draws / 20);
  EXPECT_LT(counts[900], counts[0] / 50);
}

TEST(ZipfianGeneratorTest, ClampsDegenerateParameters) {
  ZipfianGenerator zipf(0, 2.0);  // 0 keys, theta beyond [0, 1).
  EXPECT_EQ(zipf.num_keys(), 1u);
  EXPECT_LT(zipf.theta(), 1.0);
  util::Rng rng(1);
  EXPECT_EQ(zipf.Next(&rng), 0u);
}

// ------------------------------------------------------- OpenLoopPool

/// Scripted replica acking every batch entry (as in workload_test.cc):
/// f+1 distinct ackers complete a request with matching result digests.
class AckingReplica : public sim::Actor {
 public:
  explicit AckingReplica(types::ReplicaId id) : id_(id) {}

  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    if (auto* batch = dynamic_cast<const types::ClientBatch*>(msg.get())) {
      received_ += static_cast<int64_t>(batch->txs.size());
      ++batches_;
      max_batch_ = std::max(max_batch_,
                            static_cast<int64_t>(batch->txs.size()));
      auto reply = std::make_shared<types::ClientReply>();
      reply->replica = id_;
      reply->n = ++seq_;
      reply->pool = 0;
      for (const types::Transaction& tx : batch->txs) {
        types::ReplyEntry entry;
        entry.client_seq = tx.client_seq;
        entry.status = static_cast<uint8_t>(app::ExecStatus::kOk);
        entry.result_digest = app::ResultDigest(app::Response{});
        reply->entries.push_back(entry);
      }
      Send(from, reply);
    }
  }

  int64_t received() const { return received_; }
  int64_t batches() const { return batches_; }
  int64_t max_batch() const { return max_batch_; }

 private:
  types::ReplicaId id_;
  int64_t received_ = 0;
  int64_t batches_ = 0;
  int64_t max_batch_ = 0;
  types::SeqNum seq_ = 0;
};

struct OpenLoopFixture {
  explicit OpenLoopFixture(OpenLoopConfig config, uint64_t seed = 1)
      : sim(seed),
        net(&sim, sim::LatencyModel::Fixed(1.0), sim::CostModel{}),
        pool(config) {
    std::vector<runtime::NodeId> replica_ids;
    for (int r = 0; r < 2; ++r) {
      replicas.push_back(
          std::make_unique<AckingReplica>(static_cast<types::ReplicaId>(r)));
      replica_ids.push_back(sim.AddActor(replicas.back().get()));
      replicas.back()->AttachNetwork(&net);
    }
    pool_env = std::make_unique<runtime::SimEnv>(&pool);
    sim.AddActor(pool_env.get());
    pool_env->AttachNetwork(&net);
    pool.SetReplicas(replica_ids);
  }

  void Run(util::DurationMicros for_time) {
    sim.ScheduleAfter(0, [this] { pool.OnStart(); });
    sim.RunUntil(for_time);
  }

  sim::Simulator sim;
  sim::Network net;
  std::vector<std::unique_ptr<AckingReplica>> replicas;
  OpenLoopPool pool;
  std::unique_ptr<runtime::SimEnv> pool_env;
};

OpenLoopConfig BaseConfig() {
  OpenLoopConfig config;
  config.pool_id = 0;  // AckingReplica stamps replies for pool 0.
  config.f = 1;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate_per_sec = 500.0;
  config.logical_sessions = 1000000;
  config.kv_key_space = 4096;
  config.max_outstanding = 64;
  config.max_backlog = 128;
  config.slo_ms = 500.0;
  return config;
}

TEST(OpenLoopPoolTest, LightLoadCompletesEverythingInsideSlo) {
  OpenLoopFixture fx(BaseConfig());
  fx.Run(Seconds(1));

  const OpenLoopStats& stats = fx.pool.open_stats();
  EXPECT_GT(stats.arrivals, 300);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.admitted, stats.arrivals);
  // Everything admitted either completed or is still in flight.
  EXPECT_EQ(fx.pool.committed() +
                static_cast<int64_t>(fx.pool.outstanding()),
            stats.admitted);
  EXPECT_GT(fx.pool.committed(), 0);
  EXPECT_DOUBLE_EQ(fx.pool.slo_fraction(), 1.0);
  EXPECT_GT(fx.pool.e2e_latencies().count(), 0u);
}

TEST(OpenLoopPoolTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  OpenLoopConfig config = BaseConfig();
  config.arrival.rate_per_sec = 50000.0;
  config.max_outstanding = 8;
  config.max_backlog = 16;
  OpenLoopFixture fx(config);
  fx.Run(Millis(300));

  const OpenLoopStats& stats = fx.pool.open_stats();
  EXPECT_GT(stats.arrivals, 5000);
  EXPECT_GT(stats.shed, 0) << "open loop at 50k/s must overload 8-deep";
  EXPECT_LT(stats.admitted, stats.arrivals);
  EXPECT_LE(stats.backlog_peak, 16);
  EXPECT_LE(fx.pool.outstanding(), 8u);
  // Bounded queues bound the tail: every e2e sample is capped by the
  // (backlog + in-flight) pipeline depth times the ack round-trip, far
  // under the SLO — overload degrades goodput, not admitted latency.
  EXPECT_GT(stats.backlogged, 0);
  EXPECT_DOUBLE_EQ(fx.pool.slo_fraction(), 1.0);
}

TEST(OpenLoopPoolTest, BacklogDrainsInAdaptiveBursts) {
  OpenLoopConfig config = BaseConfig();
  config.arrival.rate_per_sec = 20000.0;
  config.max_outstanding = 32;
  config.max_backlog = 512;
  OpenLoopFixture fx(config);
  fx.Run(Millis(300));

  const OpenLoopStats& stats = fx.pool.open_stats();
  EXPECT_GT(stats.drain_bursts, 0);
  EXPECT_GT(stats.max_burst, 1) << "drains should batch, not trickle";
  // The adaptive burst rides one ClientBatch: replicas must have seen at
  // least one batch bigger than a single command.
  EXPECT_GT(fx.replicas[0]->max_batch(), 1);
}

TEST(OpenLoopPoolTest, StopAtHaltsTheArrivalStream) {
  OpenLoopConfig config = BaseConfig();
  config.arrival.rate_per_sec = 2000.0;
  config.stop_at = Millis(100);
  OpenLoopFixture fx(config);
  fx.Run(Millis(400));

  const int64_t arrivals = fx.pool.open_stats().arrivals;
  EXPECT_GT(arrivals, 100);
  EXPECT_LT(arrivals, 300);  // ~200 expected by 100ms; none after.
  // Everything admitted before the cutoff still completed (drain).
  EXPECT_EQ(fx.pool.committed(), fx.pool.open_stats().admitted);
  EXPECT_EQ(fx.pool.outstanding(), 0u);
}

TEST(OpenLoopPoolTest, RunsAreDeterministicPerSeed) {
  OpenLoopConfig config = BaseConfig();
  config.arrival.rate_per_sec = 5000.0;
  OpenLoopFixture a(config), b(config);
  a.Run(Millis(500));
  b.Run(Millis(500));
  EXPECT_EQ(a.pool.open_stats().arrivals, b.pool.open_stats().arrivals);
  EXPECT_EQ(a.pool.open_stats().admitted, b.pool.open_stats().admitted);
  EXPECT_EQ(a.pool.committed(), b.pool.committed());
  EXPECT_EQ(a.replicas[0]->received(), b.replicas[0]->received());
}

}  // namespace
}  // namespace workload
}  // namespace prestige
