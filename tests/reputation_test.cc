// Golden tests for the reputation engine against every numeric example in
// the paper: Figure 4c rows 1-5 and the step-by-step calculations in
// Appendix C (examples 1-6), plus edge cases and property sweeps.

#include <gtest/gtest.h>

#include <vector>

#include "ledger/block_store.h"
#include "reputation/reputation_engine.h"

namespace prestige {
namespace reputation {
namespace {

using types::Penalty;

std::vector<Penalty> PaperSetFive() { return {1, 2, 3, 4, 5}; }
std::vector<Penalty> PaperSetSix() { return {1, 2, 3, 4, 5, 5}; }
std::vector<Penalty> PaperSetP5() {
  // {1,2,3,4} plus ten 5s (Appendix C example 5).
  std::vector<Penalty> p = {1, 2, 3, 4};
  p.insert(p.end(), 10, 5);
  return p;
}

class ReputationGoldenTest : public ::testing::Test {
 protected:
  ReputationEngine engine_;
};

// Fig. 4c row 1: ci=1 ti=1, P={1..5}, delta_vc=0.19, delta=0, rp(V')=6.
TEST_F(ReputationGoldenTest, Row1NoReplicationNoCompensation) {
  auto r = engine_.CalcRp(/*v_new=*/6, /*v_cur=*/5, /*rp_cur=*/5,
                          /*ti=*/1, /*ci=*/1, PaperSetFive());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rp_temp, 6);
  EXPECT_DOUBLE_EQ(r->delta_tx, 0.0);
  EXPECT_NEAR(r->delta_vc, 0.19, 0.01);
  EXPECT_NEAR(r->delta, 0.0, 1e-12);
  EXPECT_EQ(r->new_rp, 6);
}

// Fig. 4c row 2: ci=1 ti=20, delta ~= 1.14 (paper rounds delta_tx to 1),
// rp(V')=5. Appendix C confirms compensation of 1.
TEST_F(ReputationGoldenTest, Row2FullCompensation) {
  auto r = engine_.CalcRp(6, 5, 5, /*ti=*/20, /*ci=*/1, PaperSetFive());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delta_tx, 0.95, 1e-9);  // (20-1)/20; paper rounds to 1.
  EXPECT_NEAR(r->delta_vc, 0.19, 0.01);
  EXPECT_NEAR(r->delta, 1.14, 0.07);
  EXPECT_EQ(r->new_rp, 5);  // Compensated by 1: unchanged from rp=5.
  EXPECT_EQ(r->new_ci, 20);
}

// Fig. 4c row 3: ci=20 ti=50, P={1,2,3,4,5,5}, delta_vc=0.25, delta=0.89,
// no compensation, rp(V')=6.
TEST_F(ReputationGoldenTest, Row3InsufficientIncrementalReplication) {
  auto r = engine_.CalcRp(7, 6, 5, /*ti=*/50, /*ci=*/20, PaperSetSix());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delta_tx, 0.6, 1e-9);
  EXPECT_NEAR(r->delta_vc, 0.25, 0.005);
  EXPECT_NEAR(r->delta, 0.89, 0.02);
  EXPECT_EQ(r->new_rp, 6);
  EXPECT_EQ(r->new_ci, 50);
}

// Fig. 4c row 4: ci=20 ti=100, delta=1.2, compensated, rp(V')=5.
TEST_F(ReputationGoldenTest, Row4MoreReplicationEarnsCompensation) {
  auto r = engine_.CalcRp(7, 6, 5, /*ti=*/100, /*ci=*/20, PaperSetSix());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delta_tx, 0.8, 1e-9);
  EXPECT_NEAR(r->delta_vc, 0.25, 0.005);
  EXPECT_NEAR(r->delta, 1.2, 0.02);
  EXPECT_EQ(r->new_rp, 5);
}

// Fig. 4c row 5 / Appendix C example 5: staying a follower through V7..V14
// grows P to {1,2,3,4,5 x10}; delta_vc=0.36, delta=1.29, rp(15)=5.
TEST_F(ReputationGoldenTest, Row5IndifferenceToLeadershipRaisesDeltaVc) {
  auto r = engine_.CalcRp(15, 14, 5, /*ti=*/50, /*ci=*/20, PaperSetP5());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delta_tx, 0.6, 1e-9);
  EXPECT_NEAR(r->delta_vc, 0.36, 0.01);
  EXPECT_NEAR(r->delta, 1.29, 0.03);
  EXPECT_EQ(r->new_rp, 5);
}

// Appendix C example 6: ti=400 -> delta_tx=0.95, delta=2.05, rp(15)=4.
TEST_F(ReputationGoldenTest, Example6HighReplicationReducesPenalty) {
  auto r = engine_.CalcRp(15, 14, 5, /*ti=*/400, /*ci=*/20, PaperSetP5());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delta_tx, 0.95, 1e-9);
  EXPECT_NEAR(r->delta, 2.05, 0.04);
  EXPECT_EQ(r->new_rp, 4);
}

// Appendix C first calculation: campaigning V1 -> V2 with no replication:
// rp_temp = 1 + 1 = 2, no compensation, rp(2)=2.
TEST_F(ReputationGoldenTest, InitialCampaignWithoutReplication) {
  auto r = engine_.CalcRp(2, 1, 1, /*ti=*/1, /*ci=*/1, {1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rp_temp, 2);
  EXPECT_DOUBLE_EQ(r->delta_tx, 0.0);
  EXPECT_EQ(r->new_rp, 2);
}

// Paper §3 example 1: leader from V1 to V5 without replication reaches
// rp(6)=6 — iterate the engine through the whole history.
TEST_F(ReputationGoldenTest, RepeatedRepossessionWithoutProgress) {
  std::vector<Penalty> history;  // Oldest last; rebuilt each view.
  Penalty rp = 1;
  types::View v = 1;
  for (types::View v_new = 2; v_new <= 6; ++v_new) {
    std::vector<Penalty> p;
    p.push_back(rp);
    p.insert(p.end(), history.rbegin(), history.rend());
    auto r = engine_.CalcRp(v_new, v, rp, /*ti=*/1, /*ci=*/1, p);
    ASSERT_TRUE(r.ok());
    history.push_back(rp);
    rp = r->new_rp;
    v = v_new;
  }
  EXPECT_EQ(rp, 6);  // rp grows 1,2,3,4,5 -> 6 at the V6 campaign.
}

// ------------------------------------------------------------ Edge cases

TEST_F(ReputationGoldenTest, RejectsNonIncreasingView) {
  EXPECT_FALSE(engine_.CalcRp(5, 5, 1, 1, 1, {1}).ok());
  EXPECT_FALSE(engine_.CalcRp(4, 5, 1, 1, 1, {1}).ok());
}

TEST_F(ReputationGoldenTest, RejectsEmptyPenaltySet) {
  EXPECT_FALSE(engine_.CalcRp(2, 1, 1, 1, 1, {}).ok());
}

TEST_F(ReputationGoldenTest, ZeroSigmaGivesHalfDeltaVc) {
  // All penalties identical -> z := 0 -> delta_vc = 0.5.
  auto r = engine_.CalcRp(2, 1, 1, /*ti=*/10, /*ci=*/1, {1});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->delta_vc, 0.5);
}

TEST_F(ReputationGoldenTest, ViewSkipPenalizedProportionally) {
  // A campaigner jumping 10 views pays 10 (Eq. 1 anti-overflow rule).
  auto r = engine_.CalcRp(11, 1, 1, 1, 1, {1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rp_temp, 11);
  EXPECT_EQ(r->new_rp, 11);
}

TEST_F(ReputationGoldenTest, TiClampedToOne) {
  auto r = engine_.CalcRp(2, 1, 1, /*ti=*/0, /*ci=*/1, {1});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->delta_tx, 0.0);
  EXPECT_EQ(r->new_ci, 1);
}

TEST_F(ReputationGoldenTest, CompensationNeverExceedsPenalization) {
  // 0 <= delta < rp_temp must hold for any input (paper invariant).
  ReputationEngine engine;
  for (Penalty rp = 1; rp <= 20; ++rp) {
    for (types::SeqNum ti : {1, 10, 100, 10000}) {
      auto r = engine.CalcRp(rp + 2, rp + 1, rp, ti, 1,
                             {rp, rp / 2 + 1, 1});
      ASSERT_TRUE(r.ok());
      EXPECT_GE(r->delta, 0.0);
      EXPECT_LT(r->delta, static_cast<double>(r->rp_temp));
      EXPECT_GE(r->new_rp, 1);
      EXPECT_LE(r->new_rp, r->rp_temp);
    }
  }
}

TEST_F(ReputationGoldenTest, CDeltaScalesCompensation) {
  ReputationConfig strong;
  strong.c_delta = 2.0;
  ReputationEngine eager(strong);
  auto weak = engine_.CalcRp(7, 6, 5, 100, 20, PaperSetSix());
  auto boosted = eager.CalcRp(7, 6, 5, 100, 20, PaperSetSix());
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(boosted.ok());
  EXPECT_GT(boosted->delta, weak->delta);
  EXPECT_LE(boosted->new_rp, weak->new_rp);
}

TEST_F(ReputationGoldenTest, AblationDisablingDeltaVc) {
  ReputationConfig cfg;
  cfg.enable_delta_vc = false;
  ReputationEngine ablated(cfg);
  auto r = ablated.CalcRp(6, 5, 5, 20, 1, PaperSetFive());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->delta_vc, 1.0);
  // Compensation now much larger: floor(0.95 * 1 * 6) = 5.
  EXPECT_EQ(r->new_rp, 1);
}

// ----------------------------------------- Adversary-suppression pins
//
// The byzantine scenario suite (tests/byzantine_test.cc) asserts the
// *direction* of reputation suppression end-to-end; these regressions pin
// the underlying penalty/recovery arithmetic exactly, so a drift in the
// engine shows up here first with small numbers.

// An equivocating/wedged leader whose every view ends in a forced view
// change (no replication credit, ti=1) accrues exactly +1 penalty per
// failed view: the trajectory is 1 -> 2 -> 3 -> ... with no compensation.
TEST_F(ReputationGoldenTest, FailedLeaderPenaltyTrajectoryPinned) {
  std::vector<Penalty> history;
  Penalty rp = 1;
  types::View v = 1;
  const Penalty kExpected[] = {2, 3, 4, 5, 6, 7};
  for (int step = 0; step < 6; ++step) {
    std::vector<Penalty> p;
    p.push_back(rp);
    p.insert(p.end(), history.rbegin(), history.rend());
    auto r = engine_.CalcRp(v + 1, v, rp, /*ti=*/1, /*ci=*/1, p);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->delta_tx, 0.0) << "step " << step;
    EXPECT_EQ(r->new_rp, kExpected[step]) << "step " << step;
    history.push_back(rp);
    rp = r->new_rp;
    ++v;
  }
}

// Recovery arithmetic, exact: a suppressed replica (rp=9, all recorded
// penalties equal so sigma=0 and delta_vc is exactly 0.5) that replicates
// ti=20 against ci=1 earns delta_tx = 19/20 = 0.95 exactly, so
// delta = 0.95 * 0.5 * rp_temp = 4.75 and floor() compensates 4:
// new_rp = 10 - 4 = 6.
TEST_F(ReputationGoldenTest, RecoveryCompensationPinnedExactly) {
  auto r = engine_.CalcRp(/*v_new=*/11, /*v_cur=*/10, /*rp_cur=*/9,
                          /*ti=*/20, /*ci=*/1, {9, 9, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rp_temp, 10);
  EXPECT_DOUBLE_EQ(r->delta_tx, 0.95);
  EXPECT_DOUBLE_EQ(r->delta_vc, 0.5);
  EXPECT_DOUBLE_EQ(r->delta, 4.75);
  EXPECT_EQ(r->new_rp, 6);
}

// Complaint-spam shape: every spam-triggered view change an attacker wins
// and fumbles skips views for it. Campaigning across a k-view gap pays k
// (Eq. 1's anti-overflow rule), so three failed 2-view jumps compound
// 1 -> 3 -> 5 -> 7 with no compensation at ti=1.
TEST_F(ReputationGoldenTest, SpamDrivenViewSkipsCompound) {
  std::vector<Penalty> history;
  Penalty rp = 1;
  types::View v = 1;
  const Penalty kExpected[] = {3, 5, 7};
  for (int step = 0; step < 3; ++step) {
    std::vector<Penalty> p;
    p.push_back(rp);
    p.insert(p.end(), history.rbegin(), history.rend());
    auto r = engine_.CalcRp(v + 2, v, rp, /*ti=*/1, /*ci=*/1, p);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rp_temp, rp + 2) << "step " << step;
    EXPECT_EQ(r->new_rp, kExpected[step]) << "step " << step;
    history.push_back(rp);
    rp = r->new_rp;
    v += 2;
  }
}

// Vote-withholding shape: a withholder sits out as a quiet follower, so
// its penalty stays flat while honest views accumulate; when it finally
// campaigns, the longer quiet tail has *raised* delta_vc (the engine
// rewards indifference to leadership) — recovery is easier, not harder,
// exactly as Appendix C example 5 prescribes. Pin the direction plus the
// row-5 magnitude.
TEST_F(ReputationGoldenTest, WithholderQuietTailRaisesDeltaVcPinned) {
  std::vector<Penalty> p = {1, 2, 3, 4};
  p.insert(p.end(), 10, 5);
  auto late = engine_.CalcRp(15, 14, 5, /*ti=*/50, /*ci=*/20, p);
  auto early = engine_.CalcRp(7, 6, 5, /*ti=*/50, /*ci=*/20,
                              {1, 2, 3, 4, 5, 5});
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(early.ok());
  EXPECT_NEAR(late->delta_vc, 0.36, 0.01);
  EXPECT_NEAR(early->delta_vc, 0.25, 0.005);
  EXPECT_GT(late->delta_vc, early->delta_vc);
  EXPECT_LE(late->new_rp, early->new_rp);
}

TEST(SigmoidTest, StandardValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.414), 0.804, 0.01);
  EXPECT_NEAR(Sigmoid(-1.414), 0.196, 0.01);
  EXPECT_GT(Sigmoid(10.0), 0.9999);
  EXPECT_LT(Sigmoid(-10.0), 0.0001);
}

// -------------------------------------------------- Store-driven CalcRP

class StoreDrivenTest : public ::testing::Test {
 protected:
  // Builds the Appendix C scenario in an actual BlockStore: S1 is leader
  // V1..V5 with no replication, replicates 20 txBlocks in V5, campaigns V6.
  void BuildAppendixChain() {
    crypto::Sha256Digest prev{};
    Penalty rp = 1;
    for (types::View v = 2; v <= 5; ++v) {
      ledger::VcBlock b;
      b.set_v(v);
      b.set_leader(0);
      b.set_prev_hash(prev);
      for (types::ReplicaId id = 0; id < 4; ++id) {
        b.SetPenalty(id, 1);
        b.SetCompensation(id, 1);
      }
      b.SetPenalty(0, ++rp);  // S1 penalized 2,3,4,5 across V2..V5.
      ASSERT_TRUE(store_.AppendVcBlock(b).ok());
      prev = store_.LatestVcBlock()->Digest();
    }
    crypto::Sha256Digest tx_prev{};
    for (types::SeqNum n = 1; n <= 20; ++n) {
      ledger::TxBlock b;
      b.set_n(n);
      b.v = 5;
      b.set_prev_hash(tx_prev);
      b.set_txs({types::Transaction{}});
      ASSERT_TRUE(store_.AppendTxBlock(b).ok());
      tx_prev = store_.LatestTxDigest();
    }
  }

  ledger::BlockStore store_;
  ReputationEngine engine_;
};

TEST_F(StoreDrivenTest, MatchesAppendixVcBlockV6) {
  BuildAppendixChain();
  // Note: the store has vcBlocks V2..V5 (V1 is implicit genesis with rp=1),
  // so P = {5,4,3,2,1} exactly as the appendix requires... except the
  // appendix's V1 entry comes from genesis. Add it via an explicit call:
  auto r = engine_.CalcRpFromStore(6, store_, /*id=*/0);
  ASSERT_TRUE(r.ok());
  // P from the chain is {5,4,3,2} + seeded current 5 -> close to the paper's
  // {1,2,3,4,5}; with the genesis block appended it is exact. Verify the
  // exact variant:
  auto exact = engine_.CalcRp(6, 5, 5, 20, 1, PaperSetFive());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->new_rp, 5);
  // And the store-driven result agrees on the decision (compensated by 1).
  EXPECT_EQ(r->new_rp, 5);
  EXPECT_EQ(r->new_ci, 20);
}

TEST_F(StoreDrivenTest, FreshStoreUsesInitialValues) {
  auto r = engine_.CalcRpFromStore(2, store_, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rp_temp, 2);
  EXPECT_EQ(r->new_rp, 2);
}

// --------------------------------------------- Parameterized properties

struct RpSweepCase {
  types::SeqNum ti;
  types::CompensationIndex ci;
};

class RpMonotonicityTest : public ::testing::TestWithParam<RpSweepCase> {};

TEST_P(RpMonotonicityTest, MoreReplicationNeverHurts) {
  // For fixed history, a larger ti never yields a larger new_rp.
  ReputationEngine engine;
  const RpSweepCase c = GetParam();
  auto base = engine.CalcRp(7, 6, 5, c.ti, c.ci, PaperSetSix());
  auto more = engine.CalcRp(7, 6, 5, c.ti * 2, c.ci, PaperSetSix());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(more.ok());
  EXPECT_LE(more->new_rp, base->new_rp);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RpMonotonicityTest,
    ::testing::Values(RpSweepCase{10, 1}, RpSweepCase{20, 10},
                      RpSweepCase{50, 20}, RpSweepCase{100, 20},
                      RpSweepCase{400, 100}, RpSweepCase{1000, 999}));

class DeltaVcHistoryTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaVcHistoryTest, LongerQuietHistoryRaisesDeltaVc) {
  // Appendix C example 5's mechanism: the longer a penalized server stays a
  // follower (its penalty constant), the larger delta_vc grows.
  ReputationEngine engine;
  const int quiet_views = GetParam();
  std::vector<Penalty> p = {1, 2, 3, 4};
  p.insert(p.end(), static_cast<size_t>(quiet_views), 5);
  auto shorter = engine.CalcRp(100, 99, 5, 50, 20, p);
  p.insert(p.end(), 5, 5);
  auto longer = engine.CalcRp(100, 99, 5, 50, 20, p);
  ASSERT_TRUE(shorter.ok());
  ASSERT_TRUE(longer.ok());
  EXPECT_GT(longer->delta_vc, shorter->delta_vc);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeltaVcHistoryTest,
                         ::testing::Values(2, 5, 10, 20, 50));

}  // namespace
}  // namespace reputation
}  // namespace prestige
