// Figure 14: availability under different attack strategies.
//
// pb-S1 (attack whenever not leader), pb-S2 (attack only when compensation
// is available), and hs, each with f=3 colluding attackers at n=16.
// Availability = fraction of 1-second windows with at least one commit,
// reported cumulatively at log-spaced checkpoints. Paper shape: pb-S2 makes
// attackers behave correctly for growing stretches (availability high);
// pb-S1 dips early then recovers as attackers are suppressed; hs suffers
// continuously under its passive schedule.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr uint32_t kN = 16;
constexpr util::DurationMicros kRun = util::Seconds(40);

std::vector<types::FaultSpec> Attackers(types::AttackStrategy strategy) {
  std::vector<types::FaultSpec> faults(kN, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < 3; ++i) {
    faults[kN - 1 - i] = types::FaultSpec::RepeatedVc(
        strategy, types::LeaderMisbehaviour::kQuiet, 3.0);
  }
  return faults;
}

void PrintAvailability(const char* name,
                       const util::WindowedCounter& timeline) {
  std::printf("%-8s", name);
  for (int64_t t : {5, 10, 20, 30, 40}) {
    std::printf(" %7.1f%%",
                100.0 * timeline.AvailableFraction(util::Seconds(t)));
  }
  std::printf("\n");
}

void Run() {
  PrintHeader("Figure 14",
              "Availability under attacks (n=16, f=3): fraction of 1 s\n"
              "windows with commits, cumulative at t = 5/10/20/40/60 s");
  std::printf("%-8s %8s %8s %8s %8s %8s\n", "series", "5s", "10s", "20s",
              "30s", "40s");

  {
    core::PrestigeConfig config = PaperPrestigeConfig(kN, 1000);
    config.rotation_period = util::Seconds(2);
    harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        config, SaturatingWorkload(1400, 12, 150),
        Attackers(types::AttackStrategy::kS1));
    cluster.Start();
    cluster.RunFor(kRun);
    PrintAvailability("pb-S1", cluster.replica(0).metrics().commit_timeline);
  }
  {
    core::PrestigeConfig config = PaperPrestigeConfig(kN, 1000);
    config.rotation_period = util::Seconds(2);
    harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        config, SaturatingWorkload(1401, 12, 150),
        Attackers(types::AttackStrategy::kS2));
    cluster.Start();
    cluster.RunFor(kRun);
    PrintAvailability("pb-S2", cluster.replica(0).metrics().commit_timeline);
  }
  {
    baselines::hotstuff::HotStuffConfig config = PaperHotStuffConfig(kN, 1000);
    config.rotation_period = util::Seconds(2);
    harness::Cluster<baselines::hotstuff::HotStuffReplica,
                     baselines::hotstuff::HotStuffConfig>
        cluster(config, SaturatingWorkload(1402, 12, 150),
                Attackers(types::AttackStrategy::kS1));
    cluster.Start();
    cluster.RunFor(kRun);
    PrintAvailability("hs", cluster.replica(0).metrics().commit_timeline);
  }

  PrintFooter(
      "Shape to check: pb availability improves over time (S2 > S1 early;\n"
      "both climb as attackers must behave to be compensated or price\n"
      "themselves out); hs stays depressed under its passive schedule.");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
