// Figure 10: throughput under repeated view-change attacks (F4+F2, F4+F3).
//
// Faulty servers campaign for leadership at every opportunity and, once in
// power, go quiet (F4+F2) or equivocate (F4+F3); colluders share logs and
// pool PoW computation. Paper shape: hs suffers the same sustained drop as
// Fig. 9 (its passive schedule ignores campaigns); pb takes a moderate hit
// (~24% at n=4, f=1) because its reputation engine progressively suppresses
// the attackers.
//
// Every cell runs through the scenario runner (MeasureScenario): the
// cross-replica safety invariants sweep after warmup and after the
// measurement window, and any violation makes the binary exit non-zero.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr util::DurationMicros kWarmup = util::Seconds(1);
constexpr util::DurationMicros kMeasure = util::Seconds(6);

/// All cells safe so far; cleared by MeasureScenario on any violation.
bool g_safe = true;

std::vector<types::FaultSpec> MakeAttackers(
    uint32_t n, uint32_t f, types::LeaderMisbehaviour misbehaviour) {
  std::vector<types::FaultSpec> faults(n, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < f; ++i) {
    const uint32_t id = (n - 1 - i) % n;
    faults[id] = types::FaultSpec::RepeatedVc(
        types::AttackStrategy::kS1, misbehaviour,
        /*collusion_speedup=*/std::max(1.0, static_cast<double>(f)));
  }
  return faults;
}

std::string CellName(const char* proto, const char* kind, uint32_t n,
                     uint32_t f) {
  return std::string("fig10_") + proto + "_r10_" + kind + "_n" +
         std::to_string(n) + "_f" + std::to_string(f);
}

void RunScale(uint32_t n, const std::vector<uint32_t>& f_values) {
  std::printf("--- n=%u ---\n", n);
  const types::LeaderMisbehaviour kinds[] = {
      types::LeaderMisbehaviour::kQuiet,
      types::LeaderMisbehaviour::kEquivocate};
  const char* kind_names[] = {"quiet", "equiv"};

  for (int k = 0; k < 2; ++k) {
    std::printf("pb_r10_%-12s", kind_names[k]);
    for (uint32_t f : f_values) {
      core::PrestigeConfig config = PaperPrestigeConfig(n, 1000);
      config.rotation_period = util::Seconds(2);
      auto r = MeasureScenario<core::PrestigeReplica>(
          CellName("pb", kind_names[k], n, f), config,
          SaturatingWorkload(1000 + n + f + k, 8, 150),
          MakeAttackers(n, f, kinds[k]), kWarmup, kMeasure, &g_safe);
      std::printf(" f=%u: %8.0f", f, r.tps);
    }
    std::printf("\n");
    std::printf("hs_r10_%-12s", kind_names[k]);
    for (uint32_t f : f_values) {
      baselines::hotstuff::HotStuffConfig config =
          PaperHotStuffConfig(n, 1000);
      config.rotation_period = util::Seconds(2);
      auto r = MeasureScenario<baselines::hotstuff::HotStuffReplica>(
          CellName("hs", kind_names[k], n, f), config,
          SaturatingWorkload(1050 + n + f + k, 8, 150),
          MakeAttackers(n, f, kinds[k]), kWarmup, kMeasure, &g_safe);
      std::printf(" f=%u: %8.0f", f, r.tps);
    }
    std::printf("\n");
  }
}

int Run() {
  PrintHeader("Figure 10",
              "Throughput under repeated VC attacks (F4+F2 / F4+F3), TPS");
  RunScale(4, {0, 1});
  RunScale(16, {0, 3, 5});
  PrintFooter(
      "Shape to check: pb drops moderately (paper: -24% at n=4 f=1) and\n"
      "recovers as attackers are penalized; hs shows the Fig. 9-style\n"
      "sustained drop (paper: -69%).");
  return g_safe ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() { return prestige::bench::Run(); }
