// Figure 7: throughput and latency under increasing system scales.
//
// pb vs hs at n in {4, 16, 31, 61, 100}, message sizes m in {32, 64} bytes,
// and emulated network delay d in {0, 10 +- 5 ms} (netem). Paper shape:
// both algorithms' throughput falls and latency rises with cluster size;
// pb stays above hs throughout; the netem delay raises latency sharply.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr util::DurationMicros kWarmup = util::Millis(1500);
constexpr util::DurationMicros kMeasure = util::Millis(1200);

void Run() {
  PrintHeader("Figure 7",
              "Throughput/latency vs scale (m=32/64, d=0 / 10±5 ms)");
  std::printf("%-4s %-4s %-4s %-6s %12s %12s %12s\n", "algo", "n", "m", "d",
              "TPS", "mean ms", "p99 ms");

  for (uint32_t n : {4u, 16u, 31u, 61u, 100u}) {
    for (uint32_t m : {32u, 64u}) {
      for (int d : {0, 10}) {
        if (m == 64 && d == 10) continue;  // Redundant combo (runtime).
        harness::WorkloadOptions w = SaturatingWorkload(
            700 + n + m + d, n <= 16 ? 16 : 8, n <= 16 ? 300 : 120, m);
        w.latency = d == 0 ? sim::LatencyModel::Datacenter()
                           : sim::LatencyModel::NetemEmulated();
        {
          auto r = MeasureCluster<core::PrestigeReplica>(
              PaperPrestigeConfig(n), w, {}, kWarmup, kMeasure);
          std::printf("pb   %-4u %-4u d=%-4d %12.0f %12.1f %12.1f\n", n, m, d,
                      r.tps, r.mean_latency_ms, r.p99_latency_ms);
        }
        {
          auto r = MeasureCluster<baselines::hotstuff::HotStuffReplica>(
              PaperHotStuffConfig(n), w, {}, kWarmup, kMeasure);
          std::printf("hs   %-4u %-4u d=%-4d %12.0f %12.1f %12.1f\n", n, m, d,
                      r.tps, r.mean_latency_ms, r.p99_latency_ms);
        }
      }
    }
  }

  PrintFooter(
      "Shape to check: throughput decreases / latency increases with n for\n"
      "both algorithms; pb > hs at every scale; d=10 ms inflates latency\n"
      "and its variance (paper Fig. 7).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
