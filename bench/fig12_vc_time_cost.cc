// Figure 12: time cost to start a view change vs number of attacks.
//
// Under F4+F2 (n=16, f in {1,3}), each campaign requires proof-of-work
// whose difficulty is the campaigner's reputation penalty. Faulty servers'
// costs skyrocket (Pr(rp) = 2^-bits_per_unit*rp) while correct servers stay
// in the sub-millisecond range. Colluders (f=3) pool computation, which
// delays — but does not prevent — their suppression.
//
// Also prints the closed-form expected solve times from the PoW model,
// which is what the measured samples are drawn from.

#include <map>

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

void RunAttack(uint32_t f) {
  const uint32_t n = 16;
  core::PrestigeConfig config = PaperPrestigeConfig(n, 1000);
  config.rotation_period = util::Seconds(2);
  std::vector<types::FaultSpec> faults(n, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < f; ++i) {
    faults[n - 1 - i] = types::FaultSpec::RepeatedVc(
        types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet,
        std::max(1.0, static_cast<double>(f)));
  }
  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, SaturatingWorkload(1200 + f, 12, 150), faults);
  cluster.Start();
  cluster.RunFor(util::Seconds(30));

  // Collect campaign costs in attack order for faulty vs correct servers.
  std::vector<double> faulty_ms, correct_ms;
  for (uint32_t i = 0; i < n; ++i) {
    for (const auto& sample : cluster.replica(i).metrics().vc_costs) {
      const double ms = util::ToMillis(sample.solve_time);
      if (cluster.replica(i).fault().IsByzantine()) {
        faulty_ms.push_back(ms);
      } else {
        correct_ms.push_back(ms);
      }
    }
  }

  std::printf("--- f=%u ---\n", f);
  std::printf("attack#   faulty_cost_ms      (correct servers, same index)\n");
  for (size_t a = 0; a < faulty_ms.size() && a < 20; ++a) {
    std::printf("%5zu %15.3f %15.3f\n", a + 1, faulty_ms[a],
                a < correct_ms.size() ? correct_ms[a] : 0.0);
  }
}

void Run() {
  PrintHeader("Figure 12",
              "Time cost to start a view change vs number of attacks\n"
              "(F4+F2, n=16); plus the PoW model's expected solve times");

  crypto::PowParams params;  // Paper-calibrated: 4 bits/unit, 3.3 MH/s.
  std::printf("rp : expected PoW solve time\n");
  for (types::Penalty rp = 1; rp <= 10; ++rp) {
    const double ms = util::ToMillis(params.ExpectedSolveMicros(rp));
    if (ms < 1000) {
      std::printf("%2lld : %10.3f ms\n", static_cast<long long>(rp), ms);
    } else {
      std::printf("%2lld : %10.1f s\n", static_cast<long long>(rp),
                  ms / 1000.0);
    }
  }
  std::printf("(paper: <20 ms for rp<5; hours for rp>8)\n\n");

  RunAttack(1);
  RunAttack(3);

  PrintFooter(
      "Shape to check: faulty servers' campaign costs grow exponentially\n"
      "with successive attacks (each unsuccessful reign raises rp), while\n"
      "correct servers' costs stay in the microsecond-millisecond range.");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
