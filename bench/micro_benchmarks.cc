// Micro-benchmarks (google-benchmark): crypto substrate, reputation engine,
// proof-of-work, and simulator hot paths. Not a paper figure — these bound
// the constants the cost model abstracts.

#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/pow.h"
#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "reputation/reputation_engine.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "types/transaction.h"

namespace prestige {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  std::vector<uint8_t> key(32, 0x0b);
  std::vector<uint8_t> data(256, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyStore keys(42);
  const crypto::Sha256Digest digest =
      crypto::Sha256::Hash(std::string("message"));
  const crypto::Signature sig = keys.Sign(1, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.Verify(sig, digest));
  }
}
BENCHMARK(BM_SignVerify);

// Aggregate KeyStore::Verify throughput across 1..N concurrent threads —
// the scaling the OrderedRunner prologue pool (runtime/ordered_runner.h)
// banks on. Verify is const over immutable keys, so threads share one
// store with no synchronization, exactly like worker prologues do.
// UseRealTime reports wall time: flat ns/op with rising thread count
// means near-linear aggregate throughput.
void BM_VerifyThroughputThreaded(benchmark::State& state) {
  static crypto::KeyStore keys(42);
  static const crypto::Sha256Digest digest =
      crypto::Sha256::Hash(std::string("parallel-verify"));
  static const crypto::Signature sig = keys.Sign(1, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.Verify(sig, digest));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VerifyThroughputThreaded)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// Same scaling probe for raw Sha256 over a batch-sized payload (the
// prologue's block-hashing half).
void BM_Sha256ThroughputThreaded(benchmark::State& state) {
  static const std::vector<uint8_t> data(4096, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha256ThroughputThreaded)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_QuorumCertVerify(benchmark::State& state) {
  crypto::KeyStore keys(42);
  const crypto::Sha256Digest digest =
      crypto::Sha256::Hash(std::string("block"));
  const uint32_t quorum = static_cast<uint32_t>(state.range(0));
  crypto::QuorumCertBuilder builder(digest, quorum);
  for (uint32_t i = 0; i < quorum; ++i) {
    builder.Add(keys.Sign(i, digest), digest);
  }
  const crypto::QuorumCert qc = builder.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::VerifyQuorumCert(keys, qc, digest, quorum));
  }
}
BENCHMARK(BM_QuorumCertVerify)->Arg(3)->Arg(11)->Arg(67);

void BM_CalcRp(benchmark::State& state) {
  reputation::ReputationEngine engine;
  std::vector<types::Penalty> penalties;
  for (int64_t i = 0; i < state.range(0); ++i) {
    penalties.push_back(1 + i % 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.CalcRp(100, 99, 5, 1000, 200, penalties));
  }
}
BENCHMARK(BM_CalcRp)->Arg(8)->Arg(64)->Arg(1024);

void BM_PowSolve(benchmark::State& state) {
  util::Rng rng(7);
  crypto::RealPowSolver solver;
  const crypto::Sha256Digest payload =
      crypto::Sha256::Hash(std::string("txblock"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Solve(payload, static_cast<int>(state.range(0)), &rng));
  }
}
BENCHMARK(BM_PowSolve)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_PowVerify(benchmark::State& state) {
  util::Rng rng(7);
  crypto::RealPowSolver solver;
  const crypto::Sha256Digest payload =
      crypto::Sha256::Hash(std::string("txblock"));
  const auto sol = solver.Solve(payload, 12, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::PowVerify(payload, sol->nonce, 12));
  }
}
BENCHMARK(BM_PowVerify);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i * 10, [] {});
    }
    sim.RunUntil(100000);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_TransactionDigest(benchmark::State& state) {
  types::Transaction tx;
  tx.pool = 3;
  tx.client_seq = 12345;
  tx.fingerprint = 0xdeadbeef;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.Digest());
  }
}
BENCHMARK(BM_TransactionDigest);

}  // namespace
}  // namespace prestige

BENCHMARK_MAIN();
