// Figure 11: throughput recovery under F4+F2 (pb_r10_quiet, n=16).
//
// Windowed throughput over the run, normalized to the f=0 level. Paper
// shape: heavy early damage while attackers still win elections, then the
// reputation engine suppresses them and throughput climbs back (the paper
// reaches 87% of fault-free throughput by t=1000 s; simulation time here is
// compressed, the recovery curve shape is the target).

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr uint32_t kN = 16;
constexpr util::DurationMicros kRun = util::Seconds(24);

std::vector<double> WindowedTps(uint32_t f, uint64_t seed) {
  core::PrestigeConfig config = PaperPrestigeConfig(kN, 1000);
  config.rotation_period = util::Seconds(2);
  std::vector<types::FaultSpec> faults(kN, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < f; ++i) {
    faults[kN - 1 - i] = types::FaultSpec::RepeatedVc(
        types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet,
        std::max(1.0, static_cast<double>(f)));
  }
  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, SaturatingWorkload(seed, 8, 150), faults);
  cluster.Start();
  cluster.RunFor(kRun);

  // Use an honest replica's commit timeline (1 s windows).
  const auto& timeline = cluster.replica(0).metrics().commit_timeline;
  std::vector<double> tps;
  for (int64_t b : timeline.buckets()) {
    tps.push_back(static_cast<double>(b));
  }
  tps.resize(static_cast<size_t>(util::ToSeconds(kRun)), 0.0);
  return tps;
}

void Run() {
  PrintHeader("Figure 11",
              "Throughput recovery under F4+F2 (pb_r10_quiet, n=16),\n"
              "windowed TPS as % of the f=0 run");

  const std::vector<double> base = WindowedTps(0, 1100);
  double base_steady = 0.0;
  for (size_t i = 2; i < base.size(); ++i) base_steady += base[i];
  base_steady /= static_cast<double>(base.size() - 2);

  std::printf("%-6s", "t(s)");
  for (uint32_t f : {0u, 1u, 3u, 5u}) std::printf("   f=%-6u", f);
  std::printf("\n");

  std::vector<std::vector<double>> series;
  series.push_back(base);
  for (uint32_t f : {1u, 3u, 5u}) series.push_back(WindowedTps(f, 1100 + f));

  for (size_t t = 1; t < base.size(); t += 3) {
    std::printf("%-6zu", t);
    for (const auto& s : series) {
      const double pct =
          base_steady > 0 ? 100.0 * s[t] / base_steady : 0.0;
      std::printf("   %6.1f%%", pct);
    }
    std::printf("\n");
  }

  PrintFooter(
      "Shape to check: f>0 runs start far below 100%, then recover toward\n"
      "the fault-free level as attackers' penalties price them out of\n"
      "elections (paper: ~87% recovery by the end of the run).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
