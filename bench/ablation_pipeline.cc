// Ablation (beyond the paper's figures): replication pipelining depth.
//
// PrestigeBFT's two-phase replication allows multiple instances in flight;
// Prosecutor runs with depth 1. Sweeps max_inflight to show where the
// throughput between them comes from.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation: pipelining depth",
              "PrestigeBFT n=4, beta=3000, m=32; max in-flight instances");
  std::printf("%-10s %12s %12s\n", "depth", "TPS", "mean ms");

  for (size_t depth : {1, 2, 4, 8, 16}) {
    core::PrestigeConfig config = PaperPrestigeConfig(4);
    config.max_inflight = depth;
    auto r = MeasureCluster<core::PrestigeReplica>(
        config, SaturatingWorkload(2100 + depth), {}, util::Seconds(1),
        util::Seconds(2));
    std::printf("%-10zu %12.0f %12.1f\n", depth, r.tps, r.mean_latency_ms);
  }

  PrintFooter(
      "Reading: depth 1 approximates Prosecutor's serial replication;\n"
      "depth >= 4 saturates the leader (diminishing returns beyond).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
