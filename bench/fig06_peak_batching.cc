// Figure 6: peak performance under batching (n = 4, m = 32 bytes).
//
// Reproduces the batch-size sweep for PrestigeBFT (pb), HotStuff (hs),
// Prosecutor (ps), and SBFT (sb). Paper peaks: pb 186,012 TPS @ 166 ms
// (beta=3000); hs 35,428 @ 129 ms (beta=1000); sb 4,872 @ 148 ms (beta=800);
// ps similar throughput to hs at lower latency. Absolute values depend on
// the calibrated cost model; the ordering pb > hs ~ ps > sb and the
// batching trends are the reproduced shape.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr util::DurationMicros kWarmup = util::Seconds(1);
constexpr util::DurationMicros kMeasure = util::Seconds(2);

void Row(const char* algo, size_t batch, const RunResult& r,
         const char* paper) {
  std::printf("%-4s beta=%-5zu  %10.0f TPS  %7.1f ms mean  %7.1f ms p99   %s\n",
              algo, batch, r.tps, r.mean_latency_ms, r.p99_latency_ms, paper);
}

void Run() {
  PrintHeader("Figure 6", "Peak performance under batching (n=4, m=32)");

  for (size_t batch : {2000, 3000, 5000}) {
    auto r = MeasureCluster<core::PrestigeReplica>(
        PaperPrestigeConfig(4, batch), SaturatingWorkload(601), {}, kWarmup,
        kMeasure);
    Row("pb", batch, r,
        batch == 3000 ? "(paper peak: 186,012 TPS @ 166 ms)" : "");
  }
  for (size_t batch : {800, 1000, 2000}) {
    auto r = MeasureCluster<baselines::hotstuff::HotStuffReplica>(
        PaperHotStuffConfig(4, batch), SaturatingWorkload(602), {}, kWarmup,
        kMeasure);
    Row("hs", batch, r,
        batch == 1000 ? "(paper peak: 35,428 TPS @ 129 ms)" : "");
  }
  for (size_t batch : {800, 1000, 1500}) {
    core::PrestigeConfig config =
        baselines::prosecutor::MakeProsecutorConfig(4, batch);
    auto r = MeasureCluster<baselines::prosecutor::ProsecutorReplica>(
        config, SaturatingWorkload(603), {}, kWarmup, kMeasure);
    Row("ps", batch, r,
        batch == 1000 ? "(paper: ~HotStuff throughput, lower latency)" : "");
  }
  for (size_t batch : {500, 800, 1000}) {
    baselines::sbft::SbftConfig config;
    config.n = 4;
    config.batch_size = batch;
    auto r = MeasureCluster<baselines::sbft::SbftReplica>(
        config, SaturatingWorkload(604, 24, 120), {}, kWarmup, kMeasure);
    Row("sb", batch, r,
        batch == 800 ? "(paper peak: 4,872 TPS @ 148 ms)" : "");
  }

  PrintFooter(
      "Shape to check: pb fastest (two-phase + pipelining), hs/ps mid, sb\n"
      "slowest (per-request threshold-RSA verification); throughput grows\n"
      "with batch size until the leader saturates.");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
