// bench_runner: scenario driver emitting machine-readable BENCH_*.json.
//
// Unlike the fig*_ binaries (which pretty-print one paper figure each),
// this driver exists so CI and future PRs can track the performance
// trajectory numerically. Each scenario writes BENCH_<scenario>.json
// (full schema: docs/BENCHMARKS.md). Flat fields shared by every file:
//
//   {
//     "scenario":      name,
//     "n":             cluster size,
//     "committed":     client-observed committed txs in the window,
//     "throughput_tps": client-observed virtual-time throughput,
//     "p50_latency_ms" / "p99_latency_ms": client latency percentiles,
//     "view_changes":  redeemer activations summed over replicas,
//     "elections_won": completed elections summed over replicas,
//     "replies" / "duplicate_suppressed" / "result_mismatches":
//                      client-observed reply metrics (PrestigeBFT
//                      aggregate for declarative scenarios; 0 otherwise),
//     "wall_seconds" / "wall_ms": host wall time for the run,
//     "events" / "events_per_sec": simulator events executed / host rate,
//     "hashes" == "sha256_hashes": SHA-256 computations the run performed
//   }
//
// Declarative fault scenarios (src/harness/scenario.h) additionally carry
// a "protocols" array: a seed sweep per protocol (PrestigeBFT, HotStuff,
// SBFT) with per-seed virtual-time metrics and safety verdicts. The flat
// fields then mirror the PrestigeBFT aggregate so trajectory tooling can
// read every BENCH file uniformly.
//
// Virtual-time metrics (tps, latency) track protocol behaviour; wall
// time and the hash counter track implementation cost — digest caching
// and similar optimisations show up there even when simulated network
// latency dominates the virtual clock.
//
// Usage: bench_runner [--outdir DIR] [--seeds N] [--seed BASE] [--jobs N]
//                     [--runtime sim|threaded|socket] [--workers LIST]
//                     [--groups LIST] [--arrival-rate R] [--slo-ms MS]
//                     [scenario ...]
//        bench_runner --scenario NAME [--scenario NAME ...]
//        bench_runner --list
// With no scenario arguments — or with the pseudo-name "all" — every
// scenario runs. `--jobs N` fans declarative seed sweeps out over N worker
// threads (default: hardware concurrency); per-seed metric blocks are
// byte-identical to the serial path regardless of N.
// `--runtime=threaded` additionally executes each selected (fault-free)
// declarative scenario on the real-time ThreadedRuntime backend and adds a
// "threaded" JSON block with real wall-clock TPS/latency next to the
// simulated numbers (docs/BENCHMARKS.md). `--workers 0,2,4` (threaded only)
// repeats each threaded run with that many OrderedRunner prologue workers
// per node and records the sweep in "threaded.worker_sweep"; the flat
// threaded fields always describe the classic workers=0 path, which is
// included automatically. `--groups 1,2,4` (threaded only) additionally
// runs one sharded OPEN-LOOP deployment per group count — G disjoint
// consensus groups behind a shard::Router, Poisson arrivals at
// `--arrival-rate` req/s per pool, zipfian keys, end-to-end latency held
// to `--slo-ms` — and records the sweep in "threaded.group_sweep"
// (groups=1 joins automatically as the unsharded reference; the flat
// threaded fields still describe the classic closed-loop run). Every
// sharded run passes through the full cross-group safety sweep
// (per-group committed-prefix safety + router consistency + shard
// exclusivity). `--runtime=socket` instead runs each selected (fault-free)
// declarative scenario on the socket runtime — real loopback UDP datagrams
// through the hardened wire codec — and adds a "socket" JSON block with
// wall-clock numbers plus frame/drop counters. `--list` prints scenarios,
// protocol configs, and runtime backends. Exit status is 2 on usage
// errors (unknown scenarios, unknown --runtime values, sim-only scenarios
// under a real-time backend), 1 when any output failed to write OR any
// scenario — simulated, threaded, or socket — violated a safety invariant
// — CI keys off this.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_service.h"
#include "bench/bench_util.h"
#include "crypto/sha256.h"
#include "harness/scenario.h"
#include "harness/scenario_runner.h"
#include "harness/sharded_runner.h"
#include "harness/socket_runner.h"
#include "harness/threaded_runner.h"

namespace prestige {
namespace bench {
namespace {

struct ScenarioResult {
  uint32_t n = 0;
  int64_t committed = 0;
  double tps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t view_changes = 0;
  int64_t elections_won = 0;
  /// Client-observed reply metrics (PrestigeBFT aggregate for declarative
  /// scenarios; zero for classic scenarios without the sweep machinery).
  int64_t replies = 0;
  int64_t duplicate_suppressed = 0;
  int64_t result_mismatches = 0;
  double wall_seconds = 0.0;
  uint64_t sha256_hashes = 0;
  uint64_t events = 0;  ///< Simulator events executed across the run.
  /// Declarative scenarios: false when any seed of any protocol violated a
  /// safety invariant (drives the process exit code).
  bool safe = true;
  /// Extra JSON members appended verbatim to the BENCH file (the per-
  /// protocol seed-sweep detail); empty for classic scenarios.
  std::string extra_json;
};

// Seed-sweep knobs for declarative scenarios (set from the command line).
uint32_t g_sweep_seeds = 3;
uint64_t g_sweep_base_seed = 1;

/// Execution backend (--runtime). "sim" runs everything on the
/// deterministic discrete-event simulator as always. "threaded"
/// additionally runs each selected scenario's workload on the real-time
/// ThreadedRuntime (one thread per node, wall-clock timers, loopback
/// queues) and reports real TPS/latency next to the simulated numbers.
bool g_threaded = false;

/// Third backend (--runtime=socket): the same workload over the socket
/// runtime — every node still in-process but all replica/pool traffic
/// crossing real loopback UDP sockets through the hardened wire codec.
/// Adds a "socket" JSON block with wall-clock numbers plus frame/drop
/// counters next to the simulated ones.
bool g_socket = false;

/// Worker threads for declarative seed sweeps (--jobs). Defaults to the
/// machine's hardware concurrency so sweeps saturate it out of the box.
uint32_t DefaultJobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}
uint32_t g_jobs = 0;  // 0 = not set; resolved to DefaultJobs() in Main.

/// Per-node prologue worker counts for the threaded backend (--workers).
/// Comma-separated list; a single K>0 expands to {0, K} so every sweep
/// carries the classic-path reference point. Empty = {0} (classic only).
std::vector<uint32_t> g_worker_counts;

/// Resolved sweep: always starts with 0 so the flat "threaded" fields (and
/// the CI gates reading them) keep describing the classic path.
std::vector<uint32_t> WorkerCounts() {
  std::vector<uint32_t> counts = g_worker_counts;
  if (counts.empty()) counts.push_back(0);
  if (std::find(counts.begin(), counts.end(), 0u) == counts.end()) {
    counts.insert(counts.begin(), 0);
  }
  return counts;
}

/// Consensus-group counts for the sharded open-loop sweep (--groups,
/// threaded backend only). Empty = no group sweep.
std::vector<uint32_t> g_group_counts;
/// Open-loop Poisson arrival rate, req/s per client pool (--arrival-rate).
double g_arrival_rate = 2000.0;
/// End-to-end latency SLO for the group sweep (--slo-ms).
double g_slo_ms = 500.0;

/// Resolved group sweep: groups=1 always leads so every sweep carries the
/// unsharded reference point scaling claims are made against.
std::vector<uint32_t> GroupCounts() {
  std::vector<uint32_t> counts = g_group_counts;
  if (counts.empty()) return counts;
  if (std::find(counts.begin(), counts.end(), 1u) == counts.end()) {
    counts.insert(counts.begin(), 1);
  }
  return counts;
}

/// Runs `body` with wall-clock and hash-count accounting around it. The
/// CryptoMeter credits hashing done on this thread outside any nested
/// per-run meter; declarative sweeps add their workers' per-run counts to
/// r.sha256_hashes themselves, so the sum stays exact for any --jobs.
ScenarioResult Instrumented(const std::function<void(ScenarioResult&)>& body) {
  ScenarioResult r;
  crypto::CryptoMeter meter;
  const auto wall_before = std::chrono::steady_clock::now();
  {
    crypto::ScopedCryptoMeter scope(&meter);
    body(r);
  }
  const auto wall_after = std::chrono::steady_clock::now();
  r.wall_seconds =
      std::chrono::duration<double>(wall_after - wall_before).count();
  r.sha256_hashes += meter.finished;
  return r;
}

template <typename Cluster>
void FillClusterCounters(Cluster& cluster, ScenarioResult& r) {
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    r.view_changes += cluster.replica(i).metrics().view_changes_started;
    r.elections_won += cluster.replica(i).metrics().elections_won;
  }
}

/// Steady-state replication on an n-server fault-free cluster.
ScenarioResult RunReplication(uint32_t n) {
  return Instrumented([n](ScenarioResult& r) {
    r.n = n;
    core::PrestigeConfig config = PaperPrestigeConfig(n, 1000);
    harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        config, SaturatingWorkload(/*seed=*/42, /*pools=*/8, /*clients=*/200));
    cluster.Start();
    const util::DurationMicros warmup = util::Seconds(2);
    const util::DurationMicros measure = util::Seconds(4);
    cluster.RunFor(warmup);
    const int64_t before = cluster.ClientCommitted();
    cluster.RunFor(measure);
    r.committed = cluster.ClientCommitted() - before;
    r.tps = static_cast<double>(r.committed) / util::ToSeconds(measure);
    r.p50_ms = cluster.LatencyPercentileMs(50);
    r.p99_ms = cluster.LatencyPercentileMs(99);
    FillClusterCounters(cluster, r);
    r.events = cluster.simulator().events_executed();
  });
}

/// Replication with periodic leader rotation: exercises the view-change
/// path (redeemer -> candidate -> leader) many times per run.
ScenarioResult RunViewChangeChurn() {
  return Instrumented([](ScenarioResult& r) {
    constexpr uint32_t kN = 8;
    r.n = kN;
    core::PrestigeConfig config = PaperPrestigeConfig(kN, 500);
    config.rotation_period = util::Seconds(1);
    harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        config, SaturatingWorkload(/*seed=*/7, /*pools=*/4, /*clients=*/100));
    cluster.Start();
    const util::DurationMicros warmup = util::Seconds(2);
    const util::DurationMicros measure = util::Seconds(8);
    cluster.RunFor(warmup);
    const int64_t before = cluster.ClientCommitted();
    cluster.RunFor(measure);
    r.committed = cluster.ClientCommitted() - before;
    r.tps = static_cast<double>(r.committed) / util::ToSeconds(measure);
    r.p50_ms = cluster.LatencyPercentileMs(50);
    r.p99_ms = cluster.LatencyPercentileMs(99);
    FillClusterCounters(cluster, r);
    r.events = cluster.simulator().events_executed();
  });
}

/// Leader crash and recovery: one forced view change under load.
ScenarioResult RunLeaderCrash() {
  return Instrumented([](ScenarioResult& r) {
    constexpr uint32_t kN = 4;
    r.n = kN;
    core::PrestigeConfig config = PaperPrestigeConfig(kN, 500);
    std::vector<types::FaultSpec> faults(kN, types::FaultSpec::Honest());
    faults[0] = types::FaultSpec::Crash(util::Seconds(3));
    harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
        config, SaturatingWorkload(/*seed=*/13, /*pools=*/4, /*clients=*/100),
        faults);
    cluster.Start();
    const util::DurationMicros warmup = util::Seconds(2);
    const util::DurationMicros measure = util::Seconds(6);
    cluster.RunFor(warmup);
    const int64_t before = cluster.ClientCommitted();
    cluster.SetReplicaDown(0, true);  // Replica 0 starts as view-1 leader.
    cluster.RunFor(measure);
    r.committed = cluster.ClientCommitted() - before;
    r.tps = static_cast<double>(r.committed) / util::ToSeconds(measure);
    r.p50_ms = cluster.LatencyPercentileMs(50);
    r.p99_ms = cluster.LatencyPercentileMs(99);
    FillClusterCounters(cluster, r);
    r.events = cluster.simulator().events_executed();
  });
}

/// Hot-path microbenchmark: repeated TxBlock / VcBlock digest reads, the
/// pattern replication and view change hit per protocol message.
ScenarioResult RunDigestMicro() {
  return Instrumented([](ScenarioResult& r) {
    constexpr size_t kTxs = 1000;
    constexpr int kReads = 20000;
    r.n = 1;
    ledger::TxBlock block;
    block.set_n(1);
    std::vector<types::Transaction> txs;
    txs.reserve(kTxs);
    for (size_t i = 0; i < kTxs; ++i) {
      types::Transaction tx;
      tx.pool = 0;
      tx.client_seq = static_cast<uint64_t>(i);
      tx.fingerprint = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull;
      txs.push_back(tx);
    }
    block.set_txs(std::move(txs));

    ledger::VcBlock vc;
    vc.set_v(2);
    vc.set_leader(1);
    for (types::ReplicaId id = 0; id < 64; ++id) {
      vc.SetPenalty(id, 3);
      vc.SetCompensation(id, 2);
    }

    // Digest() once per simulated protocol message, as OnOrd/OnCmt/commit
    // and the vcBlock handshake do.
    crypto::Sha256Digest sink{};
    for (int i = 0; i < kReads; ++i) {
      const crypto::Sha256Digest& d = block.Digest();
      const crypto::Sha256Digest& e = vc.Digest();
      sink[0] = static_cast<unsigned char>(sink[0] ^ d[0] ^ e[0]);
    }
    // Folding sink into the result keeps the loop observable. kReads is
    // even, so sink[0] XORed an even number of times is 0 and the value
    // reported is exactly kReads.
    r.committed = kReads ^ static_cast<int64_t>(sink[0]);
  });
}

// --------------------------------------------- declarative fault scenarios

/// Modest closed-loop load for fault scenarios: enough traffic to keep the
/// pipeline busy without making a 20-seed × 3-protocol sweep slow.
harness::WorkloadOptions ScenarioWorkload(uint64_t seed) {
  harness::WorkloadOptions w;
  w.num_pools = 4;
  w.clients_per_pool = 50;
  w.payload_size = 32;
  w.client_timeout = util::Seconds(1);
  w.seed = seed;
  return w;
}

/// Open-loop sharded load for the --groups sweep: per-pool Poisson
/// arrivals, zipfian keys, bounded admission. The per-pool rate is fixed
/// (not divided by G), so offered load scales with the group count — the
/// planet-scale question is whether committed throughput follows it.
harness::WorkloadOptions GroupSweepWorkload(uint64_t seed, uint32_t groups) {
  harness::WorkloadOptions w;
  w.num_pools = 2;  // Per group.
  w.payload_size = 32;
  w.client_timeout = util::Seconds(1);
  w.seed = seed;
  w.kv_key_space = 1 << 16;
  w.num_groups = groups;
  w.open_loop = true;
  w.arrival.kind = workload::ArrivalKind::kPoisson;
  w.arrival.rate_per_sec = g_arrival_rate;
  w.zipf_theta = 0.5;
  w.max_outstanding = 1024;
  w.max_backlog = 4096;
  w.slo_ms = g_slo_ms;
  return w;
}

/// One protocol's sweep rendered as a JSON object. events/hashes are
/// deterministic sums over the seeds; run_wall_ms sums per-run CPU wall
/// time (with --jobs > 1 it exceeds elapsed time by roughly the speedup).
std::string ProtocolJson(const char* protocol,
                         const harness::ScenarioAggregate& agg) {
  char buf[960];
  std::snprintf(buf, sizeof(buf),
                "    {\n"
                "      \"protocol\": \"%s\",\n"
                "      \"all_safe\": %s,\n"
                "      \"throughput_tps_mean\": %.1f,\n"
                "      \"throughput_tps_min\": %.1f,\n"
                "      \"throughput_tps_max\": %.1f,\n"
                "      \"p50_latency_ms_mean\": %.3f,\n"
                "      \"p99_latency_ms_mean\": %.3f,\n"
                "      \"committed\": %lld,\n"
                "      \"view_changes\": %lld,\n"
                "      \"elections_won\": %lld,\n"
                "      \"replies\": %lld,\n"
                "      \"duplicate_suppressed\": %lld,\n"
                "      \"result_mismatches\": %lld,\n"
                "      \"messages_dropped\": %llu,\n"
                "      \"events\": %llu,\n"
                "      \"hashes\": %llu,\n"
                "      \"run_wall_ms\": %.3f,\n"
                "      \"per_seed\": [\n",
                protocol, agg.all_safe ? "true" : "false", agg.tps_mean,
                agg.tps_min, agg.tps_max, agg.p50_ms_mean, agg.p99_ms_mean,
                static_cast<long long>(agg.committed_total),
                static_cast<long long>(agg.view_changes_total),
                static_cast<long long>(agg.elections_won_total),
                static_cast<long long>(agg.replies_total),
                static_cast<long long>(agg.duplicate_suppressed_total),
                static_cast<long long>(agg.result_mismatches_total),
                static_cast<unsigned long long>(agg.messages_dropped_total),
                static_cast<unsigned long long>(agg.events_total),
                static_cast<unsigned long long>(agg.hashes_total),
                agg.run_wall_ms_total);
  std::string out = buf;
  for (size_t i = 0; i < agg.seeds.size(); ++i) {
    out += "        ";
    out += harness::SeedResultJson(agg.seeds[i]);
    if (i + 1 < agg.seeds.size()) out += ",";
    out += "\n";
  }
  out += "      ]\n    }";
  return out;
}

/// Runs `spec` as a seed sweep on PrestigeBFT + the HotStuff and SBFT
/// baselines. Flat result fields mirror the PrestigeBFT aggregate.
ScenarioResult RunDeclarative(const harness::ScenarioSpec& spec) {
  const uint32_t seeds = g_sweep_seeds;
  const uint64_t base_seed = g_sweep_base_seed;
  const uint32_t jobs = g_jobs == 0 ? DefaultJobs() : g_jobs;
  ScenarioResult result = Instrumented([&](ScenarioResult& r) {
    r.n = spec.n;

    const auto prestige =
        harness::RunScenarioSweep<core::PrestigeReplica, core::PrestigeConfig>(
            spec, PaperPrestigeConfig(spec.n, 500), ScenarioWorkload(0),
            base_seed, seeds, jobs);
    const auto hotstuff = harness::RunScenarioSweep<
        baselines::hotstuff::HotStuffReplica,
        baselines::hotstuff::HotStuffConfig>(
        spec, PaperHotStuffConfig(spec.n, 500), ScenarioWorkload(0),
        base_seed, seeds, jobs);
    baselines::sbft::SbftConfig sbft_config;
    sbft_config.n = spec.n;
    sbft_config.batch_size = 500;
    const auto sbft =
        harness::RunScenarioSweep<baselines::sbft::SbftReplica,
                                  baselines::sbft::SbftConfig>(
            spec, sbft_config, ScenarioWorkload(0), base_seed, seeds, jobs);

    r.committed = prestige.committed_total;
    r.tps = prestige.tps_mean;
    r.p50_ms = prestige.p50_ms_mean;
    r.p99_ms = prestige.p99_ms_mean;
    r.view_changes = prestige.view_changes_total;
    r.elections_won = prestige.elections_won_total;
    r.replies = prestige.replies_total;
    r.duplicate_suppressed = prestige.duplicate_suppressed_total;
    r.result_mismatches = prestige.result_mismatches_total;
    r.safe = prestige.all_safe && hotstuff.all_safe && sbft.all_safe;
    // Per-run meters on the sweep workers counted this hashing; add it to
    // the (calling-thread) Instrumented meter's count.
    r.sha256_hashes = prestige.hashes_total + hotstuff.hashes_total +
                      sbft.hashes_total;
    r.events = prestige.events_total + hotstuff.events_total +
               sbft.events_total;

    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"seeds\": %u,\n  \"base_seed\": %llu,\n"
                  "  \"jobs\": %u,\n"
                  "  \"all_safe\": %s,\n  \"protocols\": [\n",
                  seeds, static_cast<unsigned long long>(base_seed), jobs,
                  r.safe ? "true" : "false");
    r.extra_json = buf;
    r.extra_json += ProtocolJson("prestigebft", prestige) + ",\n";
    r.extra_json += ProtocolJson("hotstuff", hotstuff) + ",\n";
    r.extra_json += ProtocolJson("sbft", sbft) + "\n  ],\n";

    for (const auto* agg : {&prestige, &hotstuff, &sbft}) {
      for (const auto& seed : agg->seeds) {
        if (!seed.safety_ok) {
          std::fprintf(stderr,
                       "bench_runner: SAFETY VIOLATION %s seed %llu: %s\n",
                       spec.name.c_str(),
                       static_cast<unsigned long long>(seed.seed),
                       seed.violation.c_str());
        }
      }
    }
  });

  // Real-time comparison runs: the same workload on the threaded backend
  // (PrestigeBFT; wall-clock numbers, scheduler-dependent by design), once
  // per --workers count. The flat "threaded" fields always describe the
  // workers=0 classic path — CI gates read them — and the full sweep rides
  // in "worker_sweep". Deliberately OUTSIDE the Instrumented window:
  // wall_ms / events / events_per_sec track the simulator hot path across
  // PRs, and a 6 s real-time sleep per count would corrupt that trajectory.
  if (g_threaded) {
    std::vector<harness::ThreadedRunResult> sweep;
    for (const uint32_t workers : WorkerCounts()) {
      harness::WorkloadOptions workload = ScenarioWorkload(g_sweep_base_seed);
      workload.workers_per_node = workers;
      const harness::ThreadedRunResult rt =
          harness::RunThreadedScenario<core::PrestigeReplica,
                                       core::PrestigeConfig>(
              spec, PaperPrestigeConfig(spec.n, 500), workload);
      if (!rt.ran) {
        std::fprintf(stderr, "bench_runner: threaded run skipped: %s\n",
                     rt.error.c_str());
        result.safe = false;
        break;
      }
      if (!rt.safety_ok) {
        std::fprintf(stderr,
                     "bench_runner: SAFETY VIOLATION (threaded, workers=%u) "
                     "%s: %s\n",
                     workers, spec.name.c_str(), rt.violation.c_str());
        result.safe = false;
      }
      std::printf(
          "  threaded[workers=%u]: committed=%lld tps=%.1f p50=%.2fms "
          "p99=%.2fms msgs=%llu safe=%s   (sim tps=%.1f p50=%.2fms)\n",
          workers, static_cast<long long>(rt.committed), rt.tps, rt.p50_ms,
          rt.p99_ms, static_cast<unsigned long long>(rt.messages_delivered),
          rt.safety_ok ? "yes" : "NO", result.tps, result.p50_ms);
      sweep.push_back(rt);
    }
    // Sharded open-loop group sweep (--groups): one wall-clock run per
    // group count — G disjoint consensus groups of spec.n replicas each
    // behind a shard::Router, open-loop Poisson load, and the full
    // cross-group safety sweep. The flat threaded fields above are
    // untouched: they keep describing the classic unsharded closed-loop
    // run, so trajectory tooling reads every BENCH file uniformly.
    std::string group_json;
    const std::vector<uint32_t> group_counts = GroupCounts();
    if (!sweep.empty()) {
      for (size_t gi = 0; gi < group_counts.size(); ++gi) {
        const uint32_t groups = group_counts[gi];
        const harness::ShardedRunResult sr =
            harness::RunShardedThreaded<core::PrestigeReplica,
                                        core::PrestigeConfig>(
                PaperPrestigeConfig(spec.n, 500),
                GroupSweepWorkload(g_sweep_base_seed, groups),
                spec.TotalDuration(),
                [] { return std::make_unique<app::KvService>(1 << 16); });
        if (!sr.safety_ok) {
          std::fprintf(stderr,
                       "bench_runner: SAFETY VIOLATION (threaded, "
                       "groups=%u) %s: %s\n",
                       groups, spec.name.c_str(), sr.violation.c_str());
          result.safe = false;
        }
        std::printf(
            "  threaded[groups=%u]: committed=%lld tps=%.1f "
            "e2e_p50=%.2fms e2e_p99=%.2fms slo_frac=%.3f shed=%lld "
            "keys=%lld safe=%s\n",
            groups, static_cast<long long>(sr.committed), sr.tps,
            sr.e2e_p50_ms, sr.e2e_p99_ms, sr.slo_fraction,
            static_cast<long long>(sr.shed),
            static_cast<long long>(sr.distinct_keys),
            sr.safety_ok ? "yes" : "NO");
        char gbuf[640];
        std::snprintf(
            gbuf, sizeof(gbuf),
            "      {\"groups\": %u, \"duration_seconds\": %.3f, "
            "\"committed\": %lld, \"throughput_tps\": %.1f, "
            "\"p50_latency_ms\": %.4f, \"p99_latency_ms\": %.4f, "
            "\"e2e_p50_ms\": %.4f, \"e2e_p99_ms\": %.4f, "
            "\"e2e_p999_ms\": %.4f, \"slo_ms\": %.1f, "
            "\"slo_fraction\": %.4f, \"arrivals\": %lld, "
            "\"admitted\": %lld, \"shed\": %lld, \"routed_txs\": %lld, "
            "\"distinct_keys\": %lld, \"safe\": %s}%s\n",
            sr.groups, sr.duration_seconds,
            static_cast<long long>(sr.committed), sr.tps, sr.p50_ms,
            sr.p99_ms, sr.e2e_p50_ms, sr.e2e_p99_ms, sr.e2e_p999_ms,
            sr.slo_ms, sr.slo_fraction,
            static_cast<long long>(sr.arrivals),
            static_cast<long long>(sr.admitted),
            static_cast<long long>(sr.shed),
            static_cast<long long>(sr.routed_txs),
            static_cast<long long>(sr.distinct_keys),
            sr.safety_ok ? "true" : "false",
            gi + 1 < group_counts.size() ? "," : "");
        group_json += gbuf;
      }
    }
    if (!sweep.empty()) {
      const harness::ThreadedRunResult& rt = sweep.front();  // workers=0.
      char tbuf[768];
      std::snprintf(
          tbuf, sizeof(tbuf),
          "  \"threaded\": {\n"
          "    \"protocol\": \"prestigebft\",\n"
          "    \"duration_seconds\": %.3f,\n"
          "    \"committed\": %lld,\n"
          "    \"throughput_tps\": %.1f,\n"
          "    \"p50_latency_ms\": %.4f,\n"
          "    \"p99_latency_ms\": %.4f,\n"
          "    \"mean_latency_ms\": %.4f,\n"
          "    \"view_changes\": %lld,\n"
          "    \"replies\": %lld,\n"
          "    \"duplicate_suppressed\": %lld,\n"
          "    \"result_mismatches\": %lld,\n"
          "    \"executed\": %lld,\n"
          "    \"messages_delivered\": %llu,\n"
          "    \"min_height\": %lld,\n"
          "    \"max_height\": %lld,\n"
          "    \"safe\": %s,\n"
          "    \"worker_sweep\": [\n",
          rt.duration_seconds, static_cast<long long>(rt.committed), rt.tps,
          rt.p50_ms, rt.p99_ms, rt.mean_ms,
          static_cast<long long>(rt.view_changes),
          static_cast<long long>(rt.replies),
          static_cast<long long>(rt.duplicate_suppressed),
          static_cast<long long>(rt.result_mismatches),
          static_cast<long long>(rt.executed),
          static_cast<unsigned long long>(rt.messages_delivered),
          static_cast<long long>(rt.min_height),
          static_cast<long long>(rt.max_height),
          rt.safety_ok ? "true" : "false");
      result.extra_json += tbuf;
      for (size_t i = 0; i < sweep.size(); ++i) {
        const harness::ThreadedRunResult& wr = sweep[i];
        char wbuf[384];
        std::snprintf(
            wbuf, sizeof(wbuf),
            "      {\"workers\": %u, \"duration_seconds\": %.3f, "
            "\"committed\": %lld, \"throughput_tps\": %.1f, "
            "\"p50_latency_ms\": %.4f, \"p99_latency_ms\": %.4f, "
            "\"mean_latency_ms\": %.4f, \"messages_delivered\": %llu, "
            "\"safe\": %s}%s\n",
            wr.workers, wr.duration_seconds,
            static_cast<long long>(wr.committed), wr.tps, wr.p50_ms,
            wr.p99_ms, wr.mean_ms,
            static_cast<unsigned long long>(wr.messages_delivered),
            wr.safety_ok ? "true" : "false",
            i + 1 < sweep.size() ? "," : "");
        result.extra_json += wbuf;
      }
      result.extra_json += "    ]";
      if (!group_json.empty()) {
        result.extra_json += ",\n    \"group_sweep\": [\n";
        result.extra_json += group_json;
        result.extra_json += "    ]";
      }
      result.extra_json += "\n  },\n";
    }
  }

  // Socket-backend comparison run: the same workload with every node's
  // traffic crossing real loopback UDP datagrams through the wire codec
  // and per-peer sequence framing. Like the threaded block this stays
  // OUTSIDE the Instrumented window (real-time sleep would corrupt the
  // simulator wall/event trajectory). The "socket" JSON block carries the
  // frame/drop counters so CI can watch the decode-hardening surface.
  if (g_socket) {
    const harness::SocketRunResult sr =
        harness::RunSocketScenario<core::PrestigeReplica,
                                   core::PrestigeConfig>(
            spec, PaperPrestigeConfig(spec.n, 500),
            ScenarioWorkload(g_sweep_base_seed));
    if (!sr.base.ran) {
      std::fprintf(stderr, "bench_runner: socket run skipped: %s\n",
                   sr.base.error.c_str());
      result.safe = false;
    } else {
      if (!sr.base.safety_ok) {
        std::fprintf(stderr,
                     "bench_runner: SAFETY VIOLATION (socket) %s: %s\n",
                     spec.name.c_str(), sr.base.violation.c_str());
        result.safe = false;
      }
      std::printf(
          "  socket: committed=%lld tps=%.1f p50=%.2fms p99=%.2fms "
          "frames=%llu/%llu gaps=%llu drops=%llu safe=%s   (sim "
          "tps=%.1f)\n",
          static_cast<long long>(sr.base.committed), sr.base.tps,
          sr.base.p50_ms, sr.base.p99_ms,
          static_cast<unsigned long long>(sr.net.frames_sent),
          static_cast<unsigned long long>(sr.net.frames_received),
          static_cast<unsigned long long>(sr.net.seq_gaps),
          static_cast<unsigned long long>(
              sr.net.header_drops + sr.net.length_drops +
              sr.net.checksum_drops + sr.net.frag_drops +
              sr.net.decode_drops),
          sr.base.safety_ok ? "yes" : "NO", result.tps);
      char sbuf[1024];
      std::snprintf(
          sbuf, sizeof(sbuf),
          "  \"socket\": {\n"
          "    \"protocol\": \"prestigebft\",\n"
          "    \"duration_seconds\": %.3f,\n"
          "    \"committed\": %lld,\n"
          "    \"throughput_tps\": %.1f,\n"
          "    \"p50_latency_ms\": %.4f,\n"
          "    \"p99_latency_ms\": %.4f,\n"
          "    \"mean_latency_ms\": %.4f,\n"
          "    \"view_changes\": %lld,\n"
          "    \"replies\": %lld,\n"
          "    \"duplicate_suppressed\": %lld,\n"
          "    \"result_mismatches\": %lld,\n"
          "    \"executed\": %lld,\n"
          "    \"messages_delivered\": %llu,\n"
          "    \"min_height\": %lld,\n"
          "    \"max_height\": %lld,\n"
          "    \"safe\": %s,\n"
          "    \"net\": {\"frames_sent\": %llu, \"frames_received\": %llu,\n"
          "      \"messages_assembled\": %llu, \"seq_gaps\": %llu,\n"
          "      \"seq_out_of_order\": %llu, \"header_drops\": %llu,\n"
          "      \"checksum_drops\": %llu, \"length_drops\": %llu,\n"
          "      \"frag_drops\": %llu, \"decode_drops\": %llu,\n"
          "      \"send_errors\": %llu, \"unserializable_drops\": %llu}\n"
          "  },\n",
          sr.base.duration_seconds, static_cast<long long>(sr.base.committed),
          sr.base.tps, sr.base.p50_ms, sr.base.p99_ms, sr.base.mean_ms,
          static_cast<long long>(sr.base.view_changes),
          static_cast<long long>(sr.base.replies),
          static_cast<long long>(sr.base.duplicate_suppressed),
          static_cast<long long>(sr.base.result_mismatches),
          static_cast<long long>(sr.base.executed),
          static_cast<unsigned long long>(sr.base.messages_delivered),
          static_cast<long long>(sr.base.min_height),
          static_cast<long long>(sr.base.max_height),
          sr.base.safety_ok ? "true" : "false",
          static_cast<unsigned long long>(sr.net.frames_sent),
          static_cast<unsigned long long>(sr.net.frames_received),
          static_cast<unsigned long long>(sr.net.messages_assembled),
          static_cast<unsigned long long>(sr.net.seq_gaps),
          static_cast<unsigned long long>(sr.net.seq_out_of_order),
          static_cast<unsigned long long>(sr.net.header_drops),
          static_cast<unsigned long long>(sr.net.checksum_drops),
          static_cast<unsigned long long>(sr.net.length_drops),
          static_cast<unsigned long long>(sr.net.frag_drops),
          static_cast<unsigned long long>(sr.net.decode_drops),
          static_cast<unsigned long long>(sr.net.send_errors),
          static_cast<unsigned long long>(sr.net.unserializable_drops));
      result.extra_json += sbuf;
    }
  }
  return result;
}

/// Seed-swept adversary-schedule fuzzer: every seed runs a *different*
/// randomized ByzantineSpec (harness::ByzantineFuzzSpec), on all three
/// protocols, through the generator sweep. Deterministic like every other
/// sweep — the schedule is a pure function of the seed — so the per-seed
/// JSON blocks are byte-identical for any --jobs value.
ScenarioResult RunByzantineFuzz() {
  const uint32_t seeds = g_sweep_seeds;
  const uint64_t base_seed = g_sweep_base_seed;
  const uint32_t jobs = g_jobs == 0 ? DefaultJobs() : g_jobs;
  return Instrumented([&](ScenarioResult& r) {
    const harness::ScenarioSpec first = harness::ByzantineFuzzSpec(base_seed);
    r.n = first.n;

    const auto prestige = harness::RunScenarioSweepGen<
        core::PrestigeReplica, core::PrestigeConfig>(
        [](uint64_t seed) { return harness::ByzantineFuzzSpec(seed); },
        PaperPrestigeConfig(first.n, 500), ScenarioWorkload(0), base_seed,
        seeds, jobs);
    const auto hotstuff = harness::RunScenarioSweepGen<
        baselines::hotstuff::HotStuffReplica,
        baselines::hotstuff::HotStuffConfig>(
        [](uint64_t seed) { return harness::ByzantineFuzzSpec(seed); },
        PaperHotStuffConfig(first.n, 500), ScenarioWorkload(0), base_seed,
        seeds, jobs);
    baselines::sbft::SbftConfig sbft_config;
    sbft_config.n = first.n;
    sbft_config.batch_size = 500;
    const auto sbft = harness::RunScenarioSweepGen<
        baselines::sbft::SbftReplica, baselines::sbft::SbftConfig>(
        [](uint64_t seed) { return harness::ByzantineFuzzSpec(seed); },
        sbft_config, ScenarioWorkload(0), base_seed, seeds, jobs);

    r.committed = prestige.committed_total;
    r.tps = prestige.tps_mean;
    r.p50_ms = prestige.p50_ms_mean;
    r.p99_ms = prestige.p99_ms_mean;
    r.view_changes = prestige.view_changes_total;
    r.elections_won = prestige.elections_won_total;
    r.replies = prestige.replies_total;
    r.duplicate_suppressed = prestige.duplicate_suppressed_total;
    r.result_mismatches = prestige.result_mismatches_total;
    r.safe = prestige.all_safe && hotstuff.all_safe && sbft.all_safe;
    r.sha256_hashes = prestige.hashes_total + hotstuff.hashes_total +
                      sbft.hashes_total;
    r.events = prestige.events_total + hotstuff.events_total +
               sbft.events_total;

    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"seeds\": %u,\n  \"base_seed\": %llu,\n"
                  "  \"jobs\": %u,\n"
                  "  \"all_safe\": %s,\n  \"protocols\": [\n",
                  seeds, static_cast<unsigned long long>(base_seed), jobs,
                  r.safe ? "true" : "false");
    r.extra_json = buf;
    r.extra_json += ProtocolJson("prestigebft", prestige) + ",\n";
    r.extra_json += ProtocolJson("hotstuff", hotstuff) + ",\n";
    r.extra_json += ProtocolJson("sbft", sbft) + "\n  ],\n";

    for (const auto* agg : {&prestige, &hotstuff, &sbft}) {
      for (const auto& seed : agg->seeds) {
        if (!seed.safety_ok) {
          std::fprintf(stderr,
                       "bench_runner: SAFETY VIOLATION byzantine-fuzz "
                       "seed %llu: %s\n",
                       static_cast<unsigned long long>(seed.seed),
                       seed.violation.c_str());
        }
      }
    }
  });
}

struct Scenario {
  const char* name;
  const char* description;
  std::function<ScenarioResult()> run;
};

const std::vector<Scenario>& Scenarios() {
  static const std::vector<Scenario> kScenarios = [] {
    std::vector<Scenario> scenarios = {
        {"replication_n4", "steady-state replication, n=4, fault-free",
         [] { return RunReplication(4); }},
        {"replication_n16", "steady-state replication, n=16, fault-free",
         [] { return RunReplication(16); }},
        {"view_change_churn", "1s leader rotation, n=8 (active view changes)",
         [] { return RunViewChangeChurn(); }},
        {"leader_crash", "leader crash at t=3s, n=4 (forced view change)",
         [] { return RunLeaderCrash(); }},
        {"digest_micro", "repeated TxBlock/VcBlock digest reads (hot path)",
         [] { return RunDigestMicro(); }},
        {"byzantine-fuzz",
         "seed-randomized adversary schedules, all protocols (fuzzer)",
         [] { return RunByzantineFuzz(); }},
    };
    // Declarative fault scenarios (seed-swept over all three protocols).
    // The specs live in a function-local static, so the c_str() pointers
    // stay valid for the process lifetime.
    for (const harness::ScenarioSpec& spec : harness::NamedScenarios()) {
      scenarios.push_back({spec.name.c_str(), spec.description.c_str(),
                           [&spec] { return RunDeclarative(spec); }});
    }
    return scenarios;
  }();
  return kScenarios;
}

bool WriteJson(const std::string& outdir, const char* scenario,
               const ScenarioResult& r) {
  const std::string path = outdir + "/BENCH_" + scenario + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runner: cannot open %s\n", path.c_str());
    return false;
  }
  // wall_ms duplicates wall_seconds and hashes duplicates sha256_hashes:
  // wall_ms/events_per_sec/hashes are the canonical wall-clock trio shared
  // by every BENCH consumer going forward; the older two names stay so the
  // BENCH_*.json trajectory across PRs remains directly comparable.
  const double events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
  std::fprintf(f,
               "{\n"
               "  \"scenario\": \"%s\",\n"
               "  \"n\": %u,\n"
               "  \"committed\": %lld,\n"
               "  \"throughput_tps\": %.1f,\n"
               "  \"p50_latency_ms\": %.3f,\n"
               "  \"p99_latency_ms\": %.3f,\n"
               "  \"view_changes\": %lld,\n"
               "  \"elections_won\": %lld,\n"
               "  \"replies\": %lld,\n"
               "  \"duplicate_suppressed\": %lld,\n"
               "  \"result_mismatches\": %lld,\n"
               "%s"
               "  \"build\": %s,\n"
               "  \"sanitized\": %s,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"events\": %llu,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"hashes\": %llu,\n"
               "  \"sha256_hashes\": %llu\n"
               "}\n",
               scenario, r.n, static_cast<long long>(r.committed), r.tps,
               r.p50_ms, r.p99_ms, static_cast<long long>(r.view_changes),
               static_cast<long long>(r.elections_won),
               static_cast<long long>(r.replies),
               static_cast<long long>(r.duplicate_suppressed),
               static_cast<long long>(r.result_mismatches),
               r.extra_json.c_str(), BuildMetadataJson().c_str(),
               SanitizedBuild() ? "true" : "false",
               r.wall_seconds, r.wall_seconds * 1000.0,
               static_cast<unsigned long long>(r.events), events_per_sec,
               static_cast<unsigned long long>(r.sha256_hashes),
               static_cast<unsigned long long>(r.sha256_hashes));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// --list: everything a driver script can select — scenarios, the protocol
/// configurations the sweeps use, and the runtime backends.
void PrintList() {
  std::printf("scenarios:\n");
  for (const Scenario& s : Scenarios()) {
    const harness::ScenarioSpec* spec = harness::FindScenario(s.name);
    const char* kind = spec == nullptr ? "classic   "
                       : harness::ThreadedCapable(*spec)
                           ? "sim+thread"
                           : "sim-only  ";
    std::printf("  %-30s %s %s\n", s.name, kind, s.description);
  }
  std::printf("\nprotocol configs (declarative sweeps):\n");
  const core::PrestigeConfig pc = PaperPrestigeConfig(4, 500);
  std::printf(
      "  %-12s batch=%zu timeout=[%lld,%lld]ms rotation=%s refresh=%s\n",
      "prestigebft", pc.batch_size,
      static_cast<long long>(pc.timeout_min / util::kMicrosPerMilli),
      static_cast<long long>(pc.timeout_max / util::kMicrosPerMilli),
      pc.rotation_period > 0 ? "on" : "off",
      pc.enable_refresh ? "on" : "off");
  const baselines::hotstuff::HotStuffConfig hc = PaperHotStuffConfig(4, 500);
  std::printf("  %-12s batch=%zu view_timeout=%lldms (passive pacemaker)\n",
              "hotstuff", hc.batch_size,
              static_cast<long long>(hc.view_timeout /
                                     util::kMicrosPerMilli));
  baselines::sbft::SbftConfig sc;
  sc.batch_size = 500;
  std::printf("  %-12s batch=%zu crypto_weight=%d (collector fast path)\n",
              "sbft", sc.batch_size, sc.crypto_weight);
  std::printf(
      "\nruntime backends (--runtime):\n"
      "  sim       deterministic discrete-event simulator (default):\n"
      "            virtual time, modelled network, bit-identical per-seed "
      "JSON\n"
      "  threaded  real-time: one event-loop thread per node, loopback\n"
      "            queues, wall-clock timers; adds a \"threaded\" block "
      "with\n"
      "            real TPS/latency next to the simulated numbers\n"
      "            (fault-free declarative scenarios only)\n"
      "  socket    real loopback UDP: one event-loop thread + one datagram\n"
      "            socket per node, hardened wire encode/decode, per-peer\n"
      "            sequence framing; adds a \"socket\" block with wall-clock\n"
      "            TPS/latency and frame/drop counters\n"
      "            (fault-free declarative scenarios only)\n");
}

int Main(int argc, char** argv) {
  std::string outdir = ".";
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      PrintList();
      return 0;
    }
    if (std::strncmp(argv[i], "--runtime", 9) == 0) {
      std::string value;
      if (argv[i][9] == '=') {
        value = argv[i] + 10;
      } else if (argv[i][9] == '\0' && i + 1 < argc) {
        value = argv[++i];
      }
      if (value == "sim") {
        g_threaded = false;
        g_socket = false;
      } else if (value == "threaded") {
        g_threaded = true;
        g_socket = false;
      } else if (value == "socket") {
        g_socket = true;
        g_threaded = false;
      } else {
        std::fprintf(stderr,
                     "bench_runner: unknown runtime '%s'; valid backends: "
                     "sim, threaded, socket\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--outdir") == 0 && i + 1 < argc) {
      outdir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      selected.emplace_back(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      g_sweep_seeds = static_cast<uint32_t>(std::atoi(argv[++i]));
      if (g_sweep_seeds == 0) {
        std::fprintf(stderr, "bench_runner: --seeds must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      g_sweep_base_seed = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const int jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "bench_runner: --jobs must be >= 1\n");
        return 2;
      }
      g_jobs = static_cast<uint32_t>(jobs);
      continue;
    }
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      // Comma-separated per-node prologue worker counts for the threaded
      // backend; 0 always joins the sweep as the classic-path reference.
      const char* p = argv[++i];
      g_worker_counts.clear();
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || (*end != ',' && *end != '\0') || v > 256) {
          std::fprintf(stderr,
                       "bench_runner: --workers expects a comma-separated "
                       "list of counts in [0,256]\n");
          return 2;
        }
        g_worker_counts.push_back(static_cast<uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
      if (g_worker_counts.empty()) {
        std::fprintf(stderr, "bench_runner: --workers needs a value\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      // Comma-separated consensus-group counts for the sharded open-loop
      // sweep (threaded backend); 1 always joins as the unsharded
      // reference.
      const char* p = argv[++i];
      g_group_counts.clear();
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || (*end != ',' && *end != '\0') || v < 1 || v > 64) {
          std::fprintf(stderr,
                       "bench_runner: --groups expects a comma-separated "
                       "list of counts in [1,64]\n");
          return 2;
        }
        g_group_counts.push_back(static_cast<uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
      if (g_group_counts.empty()) {
        std::fprintf(stderr, "bench_runner: --groups needs a value\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--arrival-rate") == 0 && i + 1 < argc) {
      g_arrival_rate = std::atof(argv[++i]);
      if (g_arrival_rate <= 0.0) {
        std::fprintf(stderr, "bench_runner: --arrival-rate must be > 0\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--slo-ms") == 0 && i + 1 < argc) {
      g_slo_ms = std::atof(argv[++i]);
      if (g_slo_ms <= 0.0) {
        std::fprintf(stderr, "bench_runner: --slo-ms must be > 0\n");
        return 2;
      }
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "bench_runner: unknown flag '%s'\n", argv[i]);
      return 2;
    }
    selected.emplace_back(argv[i]);
  }

  // The pseudo-name "all" selects every scenario, same as passing none.
  if (std::find(selected.begin(), selected.end(), "all") != selected.end()) {
    selected.clear();
  }

  // Reject unknown names up front so a typo cannot silently drop a
  // scenario from a CI smoke run or a measurement script.
  for (const std::string& name : selected) {
    const bool known =
        std::any_of(Scenarios().begin(), Scenarios().end(),
                    [&](const Scenario& s) { return name == s.name; });
    if (!known) {
      std::fprintf(stderr,
                   "bench_runner: unknown scenario '%s'; try --list\n",
                   name.c_str());
      return 2;
    }
  }

  // The real-time backends run explicit, fault-free declarative
  // scenarios; reject anything else up front rather than mid-run.
  if (g_threaded || g_socket) {
    const char* backend = g_threaded ? "threaded" : "socket";
    if (selected.empty()) {
      std::fprintf(stderr,
                   "bench_runner: --runtime=%s needs an explicit "
                   "--scenario selection (try --scenario steady-state)\n",
                   backend);
      return 2;
    }
    for (const std::string& name : selected) {
      const harness::ScenarioSpec* spec = harness::FindScenario(name);
      if (spec == nullptr || !harness::ThreadedCapable(*spec)) {
        std::fprintf(stderr,
                     "bench_runner: scenario '%s' cannot run on the "
                     "%s backend (sim-only faults); see --list\n",
                     name.c_str(), backend);
        return 2;
      }
    }
  }

  bool ok = true;
  bool any = false;
  for (const Scenario& s : Scenarios()) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), s.name) ==
            selected.end()) {
      continue;
    }
    any = true;
    std::printf("running %-28s (%s)\n", s.name, s.description);
    const ScenarioResult r = s.run();
    std::printf(
        "  n=%u committed=%lld tps=%.1f p50=%.2fms p99=%.2fms vc=%lld "
        "wall=%.2fs sha256=%llu%s\n",
        r.n, static_cast<long long>(r.committed), r.tps, r.p50_ms, r.p99_ms,
        static_cast<long long>(r.view_changes), r.wall_seconds,
        static_cast<unsigned long long>(r.sha256_hashes),
        r.safe ? "" : "  ** SAFETY VIOLATION **");
    ok = WriteJson(outdir, s.name, r) && r.safe && ok;
  }
  if (!any) {
    std::fprintf(stderr,
                 "bench_runner: no scenario matched; try --list for names\n");
    return 2;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main(int argc, char** argv) {
  return prestige::bench::Main(argc, argv);
}
