// Figure 9: throughput under quiet participants (F2) and equivocation (F3)
// with timing-policy view changes.
//
// pb vs hs, rotation policies r_fast / r_slow (the paper's r10 / r30,
// scaled 1:3 for simulation time), n=4 (f=0,1) and n=16 (f=0,1,3).
// Paper shape: hs drops steeply when its passive schedule assigns faulty
// leaders (each costs ~timeout + switch); pb is nearly unaffected, and F2
// can even raise its throughput slightly (quiet servers free bandwidth);
// F3 hurts more than F2 (erroneous messages burn bandwidth/CPU).
//
// Every cell runs through the scenario runner (MeasureScenario), so the
// cross-replica safety invariants sweep after warmup and after the
// measurement window; any violation prints to stderr and the binary exits
// non-zero — the figure doubles as a Byzantine safety regression.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr util::DurationMicros kWarmup = util::Seconds(1);
constexpr util::DurationMicros kMeasure = util::Seconds(4);

/// All cells safe so far; cleared by MeasureScenario on any violation.
bool g_safe = true;

std::vector<types::FaultSpec> MakeFaults(uint32_t n, uint32_t f,
                                            types::FaultType type) {
  std::vector<types::FaultSpec> faults(n, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < f; ++i) {
    // Spread faulty ids across the schedule (paper: arbitrarily chosen).
    const uint32_t id = 1 + i * (n > 4 ? 3 : 1);
    faults[id % n] = type == types::FaultType::kQuiet
                         ? types::FaultSpec::Quiet()
                         : types::FaultSpec::Equivocate();
  }
  return faults;
}

std::string CellName(const char* proto, const char* policy, const char* kind,
                     uint32_t n, uint32_t f) {
  return std::string("fig09_") + proto + "_" + policy + "_" + kind + "_n" +
         std::to_string(n) + "_f" + std::to_string(f);
}

void RunScale(uint32_t n, const std::vector<uint32_t>& f_values) {
  std::printf("--- n=%u ---\n", n);
  std::printf("%-22s %8s", "series", "f=0");
  for (size_t i = 1; i < f_values.size(); ++i) {
    std::printf(" %10s", ("f=" + std::to_string(f_values[i])).c_str());
  }
  std::printf("\n");

  struct Policy {
    const char* name;
    util::DurationMicros period;
  };
  const Policy policies[] = {{"r10", util::Seconds(2)},
                             {"r30", util::Seconds(6)}};
  const types::FaultType fault_types[] = {types::FaultType::kQuiet,
                                             types::FaultType::kEquivocate};
  const char* fault_names[] = {"quiet", "equiv"};

  for (const Policy& policy : policies) {
    for (int ft = 0; ft < 2; ++ft) {
      // PrestigeBFT.
      std::printf("pb_%s_%-14s", policy.name, fault_names[ft]);
      for (uint32_t f : f_values) {
        core::PrestigeConfig config = PaperPrestigeConfig(n, 1000);
        config.rotation_period = policy.period;
        auto r = MeasureScenario<core::PrestigeReplica>(
            CellName("pb", policy.name, fault_names[ft], n, f), config,
            SaturatingWorkload(900 + n + f + ft, 8, 150),
            MakeFaults(n, f, fault_types[ft]), kWarmup, kMeasure, &g_safe);
        std::printf(" %10.0f", r.tps);
      }
      std::printf("\n");
      // HotStuff.
      std::printf("hs_%s_%-14s", policy.name, fault_names[ft]);
      for (uint32_t f : f_values) {
        baselines::hotstuff::HotStuffConfig config =
            PaperHotStuffConfig(n, 1000);
        config.rotation_period = policy.period;
        auto r = MeasureScenario<baselines::hotstuff::HotStuffReplica>(
            CellName("hs", policy.name, fault_names[ft], n, f), config,
            SaturatingWorkload(950 + n + f + ft, 8, 150),
            MakeFaults(n, f, fault_types[ft]), kWarmup, kMeasure, &g_safe);
        std::printf(" %10.0f", r.tps);
      }
      std::printf("\n");
    }
  }
}

int Run() {
  PrintHeader("Figure 9",
              "Throughput under F2 (quiet) and F3 (equivocation), timing-\n"
              "policy rotations (r10/r30 scaled to 2s/6s sim time), TPS");
  RunScale(4, {0, 1});
  RunScale(16, {0, 1, 3});
  PrintFooter(
      "Shape to check: hs throughput drops sharply with f (passive VC keeps\n"
      "scheduling the faulty servers; ~1.2 s lost per faulty slot), more at\n"
      "r10 than r30 and under equiv than quiet; pb stays near its f=0 level\n"
      "(paper: hs -62%, pb ~0% with a slight gain under quiet).");
  return g_safe ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() { return prestige::bench::Run(); }
