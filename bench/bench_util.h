// Shared helpers for the figure-reproduction benches. Each bench binary
// runs argument-free and prints the series of one paper figure, with the
// paper's reported values alongside for comparison (see EXPERIMENTS.md).

#ifndef PRESTIGE_BENCH_BENCH_UTIL_H_
#define PRESTIGE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/prosecutor/prosecutor.h"
#include "baselines/sbft/sbft_replica.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "harness/scenario_runner.h"

namespace prestige {
namespace bench {

/// Outcome of one measured run.
struct RunResult {
  double tps = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t committed = 0;
};

/// Builds a cluster of `Replica`, runs warmup + measure, and reports
/// client-observed throughput/latency over the measurement window.
template <typename Replica, typename Config>
RunResult MeasureCluster(Config config, harness::WorkloadOptions workload,
                         std::vector<types::FaultSpec> faults,
                         util::DurationMicros warmup,
                         util::DurationMicros measure,
                         int timeline_replica = -1) {
  harness::Cluster<Replica, Config> cluster(config, workload,
                                            std::move(faults));
  cluster.Start();
  cluster.RunFor(warmup);
  const int64_t committed_before = cluster.ClientCommitted();
  cluster.RunFor(measure);

  RunResult result;
  result.committed = cluster.ClientCommitted();
  if (timeline_replica >= 0) {
    result.tps = cluster.ClientThroughputTps(warmup, warmup + measure,
                                             timeline_replica);
  } else {
    result.tps = static_cast<double>(result.committed - committed_before) /
                 util::ToSeconds(measure);
  }
  result.mean_latency_ms = cluster.MeanLatencyMs();
  result.p50_latency_ms = cluster.LatencyPercentileMs(50);
  result.p99_latency_ms = cluster.LatencyPercentileMs(99);
  return result;
}

/// Invariant-checked variant of MeasureCluster: wraps the (faults, warmup,
/// measure) shape into a two-phase ScenarioSpec and runs it through the
/// scenario runner, so the cross-replica safety invariants sweep at both
/// phase boundaries. TPS covers the measure phase only, like
/// MeasureCluster's window. A violation prints to stderr and clears
/// `*safe` (never set back to true), letting figure binaries keep their
/// tables while exiting non-zero on any safety failure.
template <typename Replica, typename Config>
RunResult MeasureScenario(const std::string& name, Config config,
                          harness::WorkloadOptions workload,
                          std::vector<types::FaultSpec> faults,
                          util::DurationMicros warmup,
                          util::DurationMicros measure, bool* safe) {
  harness::ScenarioSpec spec;
  spec.name = name;
  spec.n = config.n;
  spec.byzantine = std::move(faults);
  harness::Phase warm;
  warm.name = "warmup";
  warm.duration = warmup;
  spec.phases.push_back(warm);
  harness::Phase meas;
  meas.name = "measure";
  meas.duration = measure;
  spec.phases.push_back(meas);

  const harness::ScenarioSeedResult r =
      harness::RunScenarioSeed<Replica, Config>(spec, config, workload);

  RunResult result;
  result.committed = r.committed;
  result.tps = static_cast<double>(r.phases.back().committed) /
               util::ToSeconds(std::max<util::DurationMicros>(1, measure));
  result.p50_latency_ms = r.p50_ms;
  result.p99_latency_ms = r.p99_ms;
  if (!r.safety_ok) {
    std::fprintf(stderr, "SAFETY VIOLATION %s (seed %llu): %s\n",
                 name.c_str(), static_cast<unsigned long long>(r.seed),
                 r.violation.c_str());
    *safe = false;
  }
  return result;
}

/// True when this binary was built with any sanitizer instrumentation.
/// Sanitized builds run 2-20x slower; their wall-clock numbers must never
/// enter the perf trajectory, so every BENCH_*.json carries this flag.
inline bool SanitizedBuild() {
  return PRESTIGE_BUILD_SANITIZERS[0] != '\0';
}

/// Build-provenance JSON object stamped into every BENCH_*.json:
///   {"sanitizers": "tsan", "build_type": "RelWithDebInfo",
///    "werror": false, "sanitized": true}
/// The CMake cache supplies the macro values (see the BENCH metadata block
/// in CMakeLists.txt).
inline std::string BuildMetadataJson() {
  std::string json = "{\"sanitizers\": \"";
  json += PRESTIGE_BUILD_SANITIZERS;
  json += "\", \"build_type\": \"";
  json += PRESTIGE_BUILD_TYPE;
  json += "\", \"werror\": ";
  json += PRESTIGE_BUILD_WERROR ? "true" : "false";
  json += ", \"sanitized\": ";
  json += SanitizedBuild() ? "true" : "false";
  json += "}";
  return json;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure, description);
  std::printf("==============================================================\n");
}

inline void PrintFooter(const char* note) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("%s\n\n", note);
}

/// Default workload sized to saturate an n=4 cluster.
inline harness::WorkloadOptions SaturatingWorkload(uint64_t seed,
                                                   uint32_t pools = 24,
                                                   uint32_t clients = 400,
                                                   uint32_t payload = 32) {
  harness::WorkloadOptions w;
  w.num_pools = pools;
  w.clients_per_pool = clients;
  w.payload_size = payload;
  w.client_timeout = util::Seconds(2);
  w.seed = seed;
  return w;
}

/// The paper's PrestigeBFT configuration scaled for simulation runs.
inline core::PrestigeConfig PaperPrestigeConfig(uint32_t n,
                                                size_t batch = 3000) {
  core::PrestigeConfig config;
  config.n = n;
  config.batch_size = batch;
  config.timeout_min = util::Millis(800);
  config.timeout_max = util::Millis(1200);
  return config;
}

/// The paper's HotStuff configuration (1 s initial timeout).
inline baselines::hotstuff::HotStuffConfig PaperHotStuffConfig(
    uint32_t n, size_t batch = 1000) {
  baselines::hotstuff::HotStuffConfig config;
  config.n = n;
  config.batch_size = batch;
  config.view_timeout = util::Seconds(1);
  return config;
}

}  // namespace bench
}  // namespace prestige

#endif  // PRESTIGE_BENCH_BENCH_UTIL_H_
