// Figure 8: probability of split votes under timeout randomization.
//
// Timeouts are drawn from [800, 800 + eps] ms. For each eps in
// {0, 10, 50, 100, 200} ms and n in {4, 16, 64}, repeated leader crashes
// force view changes; a split vote is an election round that expires with
// no candidate reaching 2f+1 votes. F1 (timeout attacks: f faulty servers
// mimic the timeout streams of correct victims) is overlaid for the byz_n*
// series. Paper shape: splits vanish by eps ~= 50 ms without attacks, and
// eps > 100 ms defeats even F1.
//
// The extra randomization aids (stand-down, candidacy courtesy) are
// disabled here so eps alone controls candidacy collisions.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

double MeasureSplitProbability(uint32_t n, int eps_ms, bool with_f1,
                               int cycles) {
  core::PrestigeConfig config = PaperPrestigeConfig(n, 200);
  config.timeout_min = util::Millis(800);
  config.timeout_max = util::Millis(800 + std::max(eps_ms, 1));
  config.enable_standdown = false;
  config.enable_courtesy = false;
  config.election_timeout = util::Millis(300);

  std::vector<types::FaultSpec> faults(n, types::FaultSpec::Honest());
  if (with_f1) {
    // f attackers each mimic a distinct correct victim's timeout stream.
    const uint32_t f = types::MaxFaulty(n);
    for (uint32_t i = 0; i < f; ++i) {
      types::FaultSpec spec = types::FaultSpec::TimeoutAttack();
      spec.mimic_target = (n - 1 - i + f) % n;  // Victims among correct ids.
      spec.has_mimic_target = true;
      faults[n - 1 - i] = spec;
    }
  }

  harness::WorkloadOptions w = SaturatingWorkload(800 + n + eps_ms, 2, 20);
  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, w, faults);
  cluster.Start();
  cluster.RunFor(util::Millis(500));

  // Crash the current leader repeatedly; each cycle forces one view change.
  for (int c = 0; c < cycles; ++c) {
    types::ReplicaId leader = cluster.replica(0).current_leader();
    for (uint32_t i = 0; i < n; ++i) {
      if (cluster.replica(i).IsLeader()) leader = i;
    }
    cluster.SetReplicaDown(leader, true);
    cluster.RunFor(util::Millis(2500));
    cluster.SetReplicaDown(leader, false);
    cluster.RunFor(util::Millis(300));
  }

  int64_t splits = 0, campaigns = 0;
  for (uint32_t i = 0; i < n; ++i) {
    splits += cluster.replica(i).metrics().election_timeouts;
    campaigns += cluster.replica(i).metrics().campaigns_sent;
  }
  if (campaigns == 0) return 0.0;
  return 100.0 * static_cast<double>(splits) /
         static_cast<double>(campaigns);
}

void Run() {
  PrintHeader("Figure 8",
              "Split votes vs timeout randomization eps (timeouts in\n"
              "[800, 800+eps] ms); byz_* rows add F1 timeout attacks");
  std::printf("%-10s %6s %6s %6s %6s %6s\n", "series", "eps=0", "10", "50",
              "100", "200");

  for (uint32_t n : {4u, 16u, 64u}) {
    const int cycles = n <= 16 ? 8 : 3;
    for (bool byz : {false, true}) {
      std::printf("%s%-8u ", byz ? "byz_n" : "n    ", n);
      for (int eps : {0, 10, 50, 100, 200}) {
        std::printf("%5.1f%% ",
                    MeasureSplitProbability(n, eps, byz, cycles));
      }
      std::printf("\n");
    }
  }

  PrintFooter(
      "Shape to check: split probability falls steeply with eps; ~0% by\n"
      "eps=50 without attacks; F1 adds a small bump that eps>100 removes\n"
      "(paper: no splits in 10,000 VCs at eps=50 without faults).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
