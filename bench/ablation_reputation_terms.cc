// Ablation (beyond the paper's figures): which reputation terms drive
// attacker suppression?
//
// Runs the F4+F2 scenario (n=16, f=3) with (a) the full mechanism, (b)
// delta_vc disabled, (c) delta_tx disabled, (d) C_delta in {0.5, 1, 2}.
// Reported: attacker election wins, final attacker penalty, and client
// throughput — quantifying each design choice DESIGN.md calls out.

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

constexpr uint32_t kN = 16;
constexpr util::DurationMicros kRun = util::Seconds(20);

struct AblationResult {
  int64_t attacker_wins = 0;
  types::Penalty attacker_rp = 0;
  double tps = 0.0;
};

AblationResult RunOnce(reputation::ReputationConfig rep, uint64_t seed) {
  core::PrestigeConfig config = PaperPrestigeConfig(kN, 1000);
  config.rotation_period = util::Seconds(2);
  config.reputation = rep;
  std::vector<types::FaultSpec> faults(kN, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < 3; ++i) {
    faults[kN - 1 - i] = types::FaultSpec::RepeatedVc(
        types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet,
        3.0);
  }
  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, SaturatingWorkload(seed, 12, 150), faults);
  cluster.Start();
  cluster.RunFor(kRun);

  AblationResult result;
  for (uint32_t i = kN - 3; i < kN; ++i) {
    result.attacker_wins += cluster.replica(i).metrics().elections_won;
    result.attacker_rp =
        std::max(result.attacker_rp, cluster.replica(0).EffectiveRp(i));
  }
  result.tps = static_cast<double>(cluster.ClientCommitted()) /
               util::ToSeconds(kRun);
  return result;
}

void Row(const char* name, const AblationResult& r) {
  std::printf("%-24s wins=%-4lld max_rp=%-4lld tps=%8.0f\n", name,
              static_cast<long long>(r.attacker_wins),
              static_cast<long long>(r.attacker_rp), r.tps);
}

void Run() {
  PrintHeader("Ablation: reputation terms",
              "F4+F2, n=16, f=3 colluders, 20 s runs");

  reputation::ReputationConfig full;
  Row("full mechanism", RunOnce(full, 2000));

  reputation::ReputationConfig no_vc = full;
  no_vc.enable_delta_vc = false;
  Row("delta_vc disabled", RunOnce(no_vc, 2001));

  reputation::ReputationConfig no_tx = full;
  no_tx.enable_delta_tx = false;
  Row("delta_tx disabled", RunOnce(no_tx, 2002));

  for (double c : {0.5, 2.0}) {
    reputation::ReputationConfig scaled = full;
    scaled.c_delta = c;
    Row(c < 1 ? "C_delta = 0.5" : "C_delta = 2.0", RunOnce(scaled, 2003));
  }

  reputation::ReputationConfig monotone = full;
  monotone.c_delta = 0.0;  // Prosecutor-style: no compensation at all.
  Row("no compensation (ps)", RunOnce(monotone, 2005));

  PrintFooter(
      "Reading: disabling a compensation term makes penalties harsher\n"
      "(faster suppression but honest servers also pay more); larger\n"
      "C_delta forgives attackers faster (more wins).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
