// Figure 13: evolution of server reputation penalties under attack.
//
// n=16 with f=3 colluding F4+F2 attackers (the paper's S6-S8). Tracks each
// server's recorded rp across the vcBlock chain. Paper shape: the faulty
// servers' penalties climb toward ~8 as they repeat attacks and then they
// can no longer afford the required computation; correct servers hover in
// the 1-3 range (with compensation as they lead productively).

#include "bench/bench_util.h"

namespace prestige {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 13",
              "Server rp evolution under f=3 repeated-VC attackers (n=16;\n"
              "attackers are S13-S15)");

  const uint32_t n = 16;
  core::PrestigeConfig config = PaperPrestigeConfig(n, 1000);
  config.rotation_period = util::Seconds(2);
  std::vector<types::FaultSpec> faults(n, types::FaultSpec::Honest());
  for (uint32_t i = 0; i < 3; ++i) {
    faults[n - 1 - i] = types::FaultSpec::RepeatedVc(
        types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet,
        /*collusion_speedup=*/3.0);
  }
  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, SaturatingWorkload(1300, 12, 150), faults);
  cluster.Start();
  cluster.RunFor(util::Seconds(40));

  // Walk an honest replica's vcBlock chain: each block records every
  // server's penalty in that view.
  const auto& chain = cluster.replica(0).store().vc_chain();
  std::printf("view   leader  rp[S0..S15]\n");
  size_t printed = 0;
  for (const auto& block : chain) {
    if (printed++ % 2 != 0 && printed < chain.size() - 4) continue;
    std::printf("%-6lld S%-6u", static_cast<long long>(block.v()),
                block.leader());
    for (uint32_t r = 0; r < n; ++r) {
      std::printf("%2lld ", static_cast<long long>(block.PenaltyOf(r)));
    }
    std::printf("\n");
  }

  std::printf("\nfinal penalties: ");
  for (uint32_t r = 0; r < n; ++r) {
    std::printf("S%u=%lld ", r,
                static_cast<long long>(cluster.replica(0).EffectiveRp(r)));
  }
  std::printf("\nattacker elections won: ");
  for (uint32_t r = n - 3; r < n; ++r) {
    std::printf("S%u=%lld ", r,
                static_cast<long long>(
                    cluster.replica(r).metrics().elections_won));
  }
  std::printf("\n");

  PrintFooter(
      "Shape to check: attacker (S13-S15) penalties ratchet upward with\n"
      "each attack and plateau once the PoW becomes unaffordable; correct\n"
      "servers stay low (paper Fig. 13: faulty rp reaches 8, correct 1-2).");
}

}  // namespace
}  // namespace bench
}  // namespace prestige

int main() {
  prestige::bench::Run();
  return 0;
}
