// reputation_walkthrough: the paper's Appendix C, executed.
//
// Replays the step-by-step reputation-penalty calculations for server S1
// through the scenarios of Figure 4 (repeated leadership without progress,
// compensation via replication, leadership indifference) and prints every
// intermediate quantity next to the paper's reported value.

#include <cstdio>

#include "reputation/reputation_engine.h"

using namespace prestige;
using reputation::ReputationEngine;
using reputation::RpResult;

namespace {

void Show(const char* label, const util::Result<RpResult>& r,
          const char* paper) {
  if (!r.ok()) {
    std::printf("%-34s ERROR: %s\n", label, r.status().ToString().c_str());
    return;
  }
  std::printf("%-34s rp_temp=%-3lld dtx=%-5.2f dvc=%-5.2f delta=%-5.2f "
              "rp'=%-3lld ci'=%-5lld | paper: %s\n",
              label, static_cast<long long>(r->rp_temp), r->delta_tx,
              r->delta_vc, r->delta, static_cast<long long>(r->new_rp),
              static_cast<long long>(r->new_ci), paper);
}

}  // namespace

int main() {
  ReputationEngine engine;  // C_delta = 1, initial rp = ci = 1.

  std::printf("PrestigeBFT reputation mechanism — Appendix C walkthrough\n");
  std::printf("========================================================\n\n");

  std::printf("S1 is leader V1..V5 with no replication (example 1):\n");
  // Penalties accumulate 1 -> 2 -> 3 -> 4 -> 5 across V2..V5 campaigns.
  std::vector<types::Penalty> history = {1};
  types::Penalty rp = 1;
  for (types::View v_new = 2; v_new <= 5; ++v_new) {
    std::vector<types::Penalty> p(history.rbegin(), history.rend());
    p.insert(p.begin(), rp);
    auto r = engine.CalcRp(v_new, v_new - 1, rp, 1, 1, p);
    history.push_back(rp);
    rp = r->new_rp;
  }
  std::printf("  after V5: rp = %lld (paper: 5)\n\n",
              static_cast<long long>(rp));

  std::printf("Campaigning for V6 (P = {1,2,3,4,5}):\n");
  Show("  no replication (ti=1, ci=1)",
       engine.CalcRp(6, 5, 5, 1, 1, {1, 2, 3, 4, 5}),
       "dvc=0.19, delta=0, rp'=6");
  Show("  20 txBlocks (ti=20, ci=1)",
       engine.CalcRp(6, 5, 5, 20, 1, {1, 2, 3, 4, 5}),
       "delta=1.14, rp'=5, ci'=20");

  std::printf("\nCampaigning for V7 (P = {1,2,3,4,5,5}):\n");
  Show("  ti=50, ci=20 (example 3)",
       engine.CalcRp(7, 6, 5, 50, 20, {1, 2, 3, 4, 5, 5}),
       "dtx=0.6, dvc=0.25, delta=0.89, rp'=6");
  Show("  ti=100, ci=20 (example 4)",
       engine.CalcRp(7, 6, 5, 100, 20, {1, 2, 3, 4, 5, 5}),
       "dtx=0.8, delta=1.2, rp'=5");

  std::printf("\nStaying a follower V7..V14, campaigning for V15\n");
  std::printf("(P = {1,2,3,4} + ten 5s):\n");
  std::vector<types::Penalty> p5 = {1, 2, 3, 4};
  p5.insert(p5.end(), 10, 5);
  Show("  ti=50, ci=20 (example 5)", engine.CalcRp(15, 14, 5, 50, 20, p5),
       "dvc=0.36, delta=1.29, rp'=5");
  Show("  ti=400, ci=20 (example 6)", engine.CalcRp(15, 14, 5, 400, 20, p5),
       "dtx=0.95, delta=2.05, rp'=4");

  std::printf(
      "\nReading: the mechanism penalizes leadership repossession without\n"
      "replication, compensates incremental log responsiveness (dtx) and\n"
      "leadership indifference (dvc), and never compensates more than the\n"
      "penalization itself (0 <= delta < rp_temp).\n");
  return 0;
}
