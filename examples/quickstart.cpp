// Quickstart: a 4-server PrestigeBFT cluster committing client requests.
//
// Builds a simulated deployment (4 replicas + 2 client pools), runs two
// seconds of virtual time, and prints throughput, latency, and the state of
// each replica. This is the smallest end-to-end use of the public API:
//
//   harness::Cluster<core::PrestigeReplica, core::PrestigeConfig>
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/replica.h"
#include "harness/cluster.h"

using namespace prestige;

int main() {
  // Protocol parameters: n = 3f+1 servers, batching, timeout windows.
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 500;
  config.timeout_min = util::Millis(800);
  config.timeout_max = util::Millis(1200);

  // Workload: two pools of 100 closed-loop clients, 32-byte requests, on a
  // datacenter-like network (sub-2ms one-way latency, 400 MB/s NICs).
  harness::WorkloadOptions workload;
  workload.num_pools = 2;
  workload.clients_per_pool = 100;
  workload.payload_size = 32;
  workload.seed = 7;

  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, workload);
  cluster.Start();

  std::printf("Running 2 seconds of virtual time...\n\n");
  cluster.RunFor(util::Seconds(2));

  std::printf("committed requests : %lld\n",
              static_cast<long long>(cluster.ClientCommitted()));
  std::printf("throughput         : %.0f tx/s\n",
              static_cast<double>(cluster.ClientCommitted()) / 2.0);
  std::printf("mean latency       : %.2f ms\n", cluster.MeanLatencyMs());
  std::printf("p99 latency        : %.2f ms\n\n",
              cluster.LatencyPercentileMs(99));

  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    const core::PrestigeReplica& replica = cluster.replica(i);
    std::printf(
        "replica %u: role=%-9s view=%lld chain=%lld blocks rp=%lld\n", i,
        core::RoleName(replica.role()),
        static_cast<long long>(replica.view()),
        static_cast<long long>(replica.store().LatestTxSeq()),
        static_cast<long long>(replica.EffectiveRp(i)));
  }

  // Safety check: all replicas agree on the chain prefix.
  bool consistent = true;
  const auto& reference = cluster.replica(0).store().tx_chain();
  for (uint32_t i = 1; i < 4; ++i) {
    const auto& other = cluster.replica(i).store().tx_chain();
    const size_t common = std::min(reference.size(), other.size());
    for (size_t k = 0; k < common; ++k) {
      if (reference[k].Digest() != other[k].Digest()) consistent = false;
    }
  }
  std::printf("\nchains consistent  : %s\n", consistent ? "yes" : "NO!");
  return consistent ? 0 : 1;
}
