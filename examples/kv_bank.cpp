// kv_bank: a replicated key-value "bank" on the v2 application API.
//
// Part 1 (simulator): attaches an app::KvService to every replica, drives
// real command-encoded Put traffic through the client pools, crashes the
// leader mid-run, and shows the active view change electing an up-to-date
// replacement with the application state identical on every replica
// (StateDigest agreement + exactly-once execution counters).
//
// Part 2 (threaded runtime): embeds a standalone client::Client next to a
// real 4-replica cluster running on OS threads and round-trips a Put
// through consensus to a verified Get result — the blocking convenience
// API an embedder would use.

#include <cstdio>
#include <memory>

#include "app/kv_service.h"
#include "client/client.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "runtime/threaded_env.h"

using namespace prestige;

namespace {

bool RunSimulatedBank() {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 200;
  config.timeout_min = util::Millis(500);
  config.timeout_max = util::Millis(800);

  harness::WorkloadOptions workload;
  workload.num_pools = 4;
  workload.clients_per_pool = 50;
  workload.seed = 11;
  // Real command payloads: every request is a KV Put over a shared space.
  workload.command_kind = workload::CommandKind::kKvPut;
  workload.kv_key_space = 4096;

  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, workload);
  cluster.InstallServices(
      [] { return std::make_unique<app::KvService>(4096); });
  cluster.Start();

  std::printf("Phase 1: normal operation under leader S0...\n");
  cluster.RunFor(util::Seconds(1));
  std::printf("  committed so far: %lld\n\n",
              static_cast<long long>(cluster.ClientCommitted()));

  std::printf("Phase 2: crash the leader; the cluster must elect an\n");
  std::printf("up-to-date replacement via the active view change...\n");
  cluster.SetReplicaDown(0, true);
  cluster.RunFor(util::Seconds(4));

  for (uint32_t i = 1; i < 4; ++i) {
    const auto& replica = cluster.replica(i);
    if (replica.IsLeader()) {
      std::printf("  new leader: S%u (view %lld)\n", i,
                  static_cast<long long>(replica.view()));
    }
  }
  std::printf("  committed total : %lld\n\n",
              static_cast<long long>(cluster.ClientCommitted()));

  std::printf("Phase 3: verify the replicated bank state...\n");
  uint64_t reference_digest = 0;
  int64_t reference_count = 0;
  bool agree = true;
  for (uint32_t i = 1; i < 4; ++i) {
    const app::Service& kv = cluster.replica(i).service();
    const auto& delivery = cluster.replica(i).delivery().stats();
    std::printf(
        "  replica %u: %lld ops executed (exactly-once; %lld duplicates "
        "suppressed), digest=%016llx\n",
        i, static_cast<long long>(kv.applied_count()),
        static_cast<long long>(delivery.duplicates_suppressed),
        static_cast<unsigned long long>(kv.StateDigest()));
    if (reference_count == 0) {
      reference_digest = kv.StateDigest();
      reference_count = kv.applied_count();
    } else if (kv.applied_count() == reference_count &&
               kv.StateDigest() != reference_digest) {
      agree = false;
    }
  }
  std::printf("state machines agree: %s\n\n", agree ? "yes" : "NO!");
  return agree;
}

bool RunThreadedRoundTrip() {
  std::printf("Part 2: threaded runtime — embedded client Put/Get...\n");
  constexpr uint32_t kN = 4;
  core::PrestigeConfig config;
  config.n = kN;
  config.batch_size = 16;
  config.batch_wait = util::Millis(1);
  config.timeout_min = util::Millis(400);
  config.timeout_max = util::Millis(600);

  runtime::ThreadedRuntime runtime(/*seed=*/42);
  crypto::KeyStore keys(42 ^ 0xc0ffee);
  std::vector<std::unique_ptr<core::PrestigeReplica>> replicas;
  std::vector<runtime::NodeId> replica_ids;
  for (uint32_t i = 0; i < kN; ++i) {
    replicas.push_back(
        std::make_unique<core::PrestigeReplica>(config, i, &keys));
    replicas.back()->SetService(std::make_unique<app::KvService>(4096));
    replica_ids.push_back(runtime.AddNode(replicas.back().get()));
  }

  client::ClientConfig client_config;
  client_config.client_id = 0;
  client_config.f = types::MaxFaulty(kN);
  client::Client client(client_config);
  const runtime::NodeId client_id = runtime.AddNode(&client);
  client.SetReplicas(replica_ids);
  for (auto& replica : replicas) {
    replica->SetTopology(replica_ids, {client_id});
  }

  runtime.Start();
  const client::SubmitResult put =
      client.Call(app::kv::EncodePut(7, 700), util::Seconds(20));
  const client::SubmitResult get =
      client.Call(app::kv::EncodeGet(7), util::Seconds(20));
  runtime.Stop();

  const bool ok = !put.timed_out && !get.timed_out &&
                  put.status == app::ExecStatus::kOk &&
                  get.status == app::ExecStatus::kOk &&
                  app::kv::DecodeValue(get.result) == 700;
  std::printf(
      "  Put(7, 700) committed at height %lld (%.2f ms); Get(7) -> %llu "
      "(%.2f ms)\n",
      static_cast<long long>(put.height),
      static_cast<double>(put.latency) / 1000.0,
      static_cast<unsigned long long>(app::kv::DecodeValue(get.result)),
      static_cast<double>(get.latency) / 1000.0);
  std::printf("round-trip verified : %s\n", ok ? "yes" : "NO!");
  return ok;
}

}  // namespace

int main() {
  const bool sim_ok = RunSimulatedBank();
  const bool threaded_ok = RunThreadedRoundTrip();
  return sim_ok && threaded_ok ? 0 : 1;
}
