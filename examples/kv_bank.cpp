// kv_bank: a replicated key-value "bank" on top of PrestigeBFT.
//
// Attaches a KvStateMachine to every replica, commits client traffic, then
// crashes the leader mid-run to show the active view change electing an
// up-to-date replacement with the application state intact and identical
// on every replica.

#include <cstdio>

#include "core/replica.h"
#include "harness/cluster.h"
#include "ledger/kv_state_machine.h"

using namespace prestige;

int main() {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 200;
  config.timeout_min = util::Millis(500);
  config.timeout_max = util::Millis(800);

  harness::WorkloadOptions workload;
  workload.num_pools = 4;
  workload.clients_per_pool = 50;
  workload.seed = 11;

  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, workload);
  for (uint32_t i = 0; i < 4; ++i) {
    cluster.replica(i).SetStateMachine(
        std::make_unique<ledger::KvStateMachine>(4096));
  }
  cluster.Start();

  std::printf("Phase 1: normal operation under leader S0...\n");
  cluster.RunFor(util::Seconds(1));
  std::printf("  committed so far: %lld\n\n",
              static_cast<long long>(cluster.ClientCommitted()));

  std::printf("Phase 2: crash the leader; the cluster must elect an\n");
  std::printf("up-to-date replacement via the active view change...\n");
  cluster.SetReplicaDown(0, true);
  cluster.RunFor(util::Seconds(4));

  for (uint32_t i = 1; i < 4; ++i) {
    const auto& replica = cluster.replica(i);
    if (replica.IsLeader()) {
      std::printf("  new leader: S%u (view %lld)\n", i,
                  static_cast<long long>(replica.view()));
    }
  }
  std::printf("  committed total : %lld\n\n",
              static_cast<long long>(cluster.ClientCommitted()));

  std::printf("Phase 3: verify the replicated bank state...\n");
  uint64_t reference_digest = 0;
  int64_t reference_count = 0;
  bool agree = true;
  for (uint32_t i = 1; i < 4; ++i) {
    const auto& kv = static_cast<const ledger::KvStateMachine&>(
        cluster.replica(i).state_machine());
    std::printf("  replica %u: %lld ops applied, %zu keys, digest=%016llx\n",
                i, static_cast<long long>(kv.applied_count()), kv.size(),
                static_cast<unsigned long long>(kv.state_digest()));
    if (reference_count == 0) {
      reference_digest = kv.state_digest();
      reference_count = kv.applied_count();
    } else if (kv.applied_count() == reference_count &&
               kv.state_digest() != reference_digest) {
      agree = false;
    }
  }
  std::printf("\nstate machines agree: %s\n", agree ? "yes" : "NO!");
  return agree ? 0 : 1;
}
