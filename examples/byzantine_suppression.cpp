// byzantine_suppression: watch the reputation engine fight off a
// repeated-view-change attacker (the paper's F4+F2 scenario).
//
// One server campaigns for leadership at every opportunity and stonewalls
// replication whenever it wins. The trace shows its reputation penalty
// ratcheting upward until the imposed proof-of-work prices it out of
// elections, and throughput recovering (paper Figs. 11-13 in miniature).

#include <cstdio>

#include "core/replica.h"
#include "harness/cluster.h"

using namespace prestige;

int main() {
  core::PrestigeConfig config;
  config.n = 4;
  config.batch_size = 200;
  config.timeout_min = util::Millis(400);
  config.timeout_max = util::Millis(600);
  config.rotation_period = util::Seconds(1);  // Leadership rotates.

  harness::WorkloadOptions workload;
  workload.num_pools = 4;
  workload.clients_per_pool = 50;
  workload.client_timeout = util::Millis(800);
  workload.seed = 23;

  std::vector<types::FaultSpec> faults(4, types::FaultSpec::Honest());
  faults[3] = types::FaultSpec::RepeatedVc(
      types::AttackStrategy::kS1, types::LeaderMisbehaviour::kQuiet);

  harness::Cluster<core::PrestigeReplica, core::PrestigeConfig> cluster(
      config, workload, faults);
  cluster.Start();

  std::printf("S3 attacks: campaigns at every view change, goes quiet as\n");
  std::printf("leader. Watch its penalty climb and throughput recover.\n\n");
  std::printf("%-5s %-6s %-7s %-22s %-10s %s\n", "t(s)", "view", "leader",
              "rp[S0 S1 S2 S3]", "tput", "attacker wins");

  int64_t prev_committed = 0;
  for (int second = 1; second <= 15; ++second) {
    cluster.RunFor(util::Seconds(1));
    const auto& observer = cluster.replica(0);
    const int64_t committed = cluster.ClientCommitted();
    std::printf("%-5d %-6lld S%-6u [%2lld %2lld %2lld %2lld]%9s %7lld/s %8lld\n",
                second, static_cast<long long>(observer.view()),
                observer.current_leader(),
                static_cast<long long>(observer.EffectiveRp(0)),
                static_cast<long long>(observer.EffectiveRp(1)),
                static_cast<long long>(observer.EffectiveRp(2)),
                static_cast<long long>(observer.EffectiveRp(3)), "",
                static_cast<long long>(committed - prev_committed),
                static_cast<long long>(
                    cluster.replica(3).metrics().elections_won));
    prev_committed = committed;
  }

  const auto& attacker = cluster.replica(3).metrics();
  std::printf("\nattacker summary: %lld campaigns, %lld elections won,\n",
              static_cast<long long>(attacker.campaigns_sent),
              static_cast<long long>(attacker.elections_won));
  std::printf("final penalty %lld (honest penalties stay low; the PoW for\n",
              static_cast<long long>(cluster.replica(0).EffectiveRp(3)));
  std::printf("each further attack now costs it seconds of computation).\n");
  return 0;
}
