// prestige_cluster: spawns an n-replica (+ client pool) loopback cluster
// as separate prestige_node OS processes, runs a scripted steady-state
// window, harvests per-process metrics over the control sockets, and
// sweeps the committed-prefix / execution invariants over the reported
// chains (harness/process_cluster.h).
//
// Usage:
//   prestige_cluster --node-binary ./prestige_node [--protocol prestigebft]
//       [--n 4] [--pools 1] [--clients-per-pool 200] [--batch 500]
//       [--payload 32] [--duration-s 6] [--seed 1] [--min-committed 1000]
//       [--work-dir DIR] [--json BENCH_socket_cluster.json]
//
// Exit status: 0 when the run completed, every invariant held, AND the
// committed total met --min-committed; 1 otherwise. CI's loopback smoke
// job keys off this.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "harness/process_cluster.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: prestige_cluster --node-binary PATH [--protocol "
      "prestigebft|hotstuff|sbft]\n"
      "    [--n N] [--pools P] [--clients-per-pool C] [--batch B]\n"
      "    [--payload BYTES] [--duration-s S] [--seed SEED]\n"
      "    [--min-committed MIN] [--work-dir DIR] [--json PATH]\n");
  return 2;
}

std::string ClusterJson(const prestige::harness::ProcessClusterResult& r,
                        const prestige::net::ClusterConfig& config,
                        int64_t min_committed) {
  char buf[1600];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"scenario\": \"socket-cluster\",\n"
      "  \"protocol\": \"%s\",\n"
      "  \"n\": %u,\n"
      "  \"pools\": %u,\n"
      "  \"clients_per_pool\": %u,\n"
      "  \"batch\": %u,\n"
      "  \"payload\": %u,\n"
      "  \"processes\": %u,\n"
      "  \"seed\": %llu,\n"
      "  \"duration_seconds\": %.3f,\n"
      "  \"committed\": %lld,\n"
      "  \"min_committed\": %lld,\n"
      "  \"throughput_tps\": %.1f,\n"
      "  \"p50_latency_ms\": %.4f,\n"
      "  \"p99_latency_ms\": %.4f,\n"
      "  \"view_changes\": %lld,\n"
      "  \"elections_won\": %lld,\n"
      "  \"executed\": %lld,\n"
      "  \"duplicates\": %lld,\n"
      "  \"replies\": %lld,\n"
      "  \"result_mismatches\": %lld,\n"
      "  \"min_height\": %lld,\n"
      "  \"max_height\": %lld,\n"
      "  \"safe\": %s,\n"
      "  \"net\": {\"frames_sent\": %llu, \"frames_received\": %llu,\n"
      "    \"messages_assembled\": %llu, \"seq_gaps\": %llu,\n"
      "    \"seq_out_of_order\": %llu, \"header_drops\": %llu,\n"
      "    \"checksum_drops\": %llu, \"length_drops\": %llu,\n"
      "    \"frag_drops\": %llu, \"decode_drops\": %llu,\n"
      "    \"send_errors\": %llu, \"unserializable_drops\": %llu},\n",
      config.protocol.c_str(), config.n, config.pools,
      config.clients_per_pool, config.batch, config.payload,
      config.n + config.pools,
      static_cast<unsigned long long>(config.seed), r.duration_seconds,
      static_cast<long long>(r.committed),
      static_cast<long long>(min_committed), r.tps, r.p50_ms, r.p99_ms,
      static_cast<long long>(r.view_changes),
      static_cast<long long>(r.elections_won),
      static_cast<long long>(r.executed),
      static_cast<long long>(r.duplicates),
      static_cast<long long>(r.replies),
      static_cast<long long>(r.result_mismatches),
      static_cast<long long>(r.min_height),
      static_cast<long long>(r.max_height),
      r.safety_ok ? "true" : "false",
      static_cast<unsigned long long>(r.net.frames_sent),
      static_cast<unsigned long long>(r.net.frames_received),
      static_cast<unsigned long long>(r.net.messages_assembled),
      static_cast<unsigned long long>(r.net.seq_gaps),
      static_cast<unsigned long long>(r.net.seq_out_of_order),
      static_cast<unsigned long long>(r.net.header_drops),
      static_cast<unsigned long long>(r.net.checksum_drops),
      static_cast<unsigned long long>(r.net.length_drops),
      static_cast<unsigned long long>(r.net.frag_drops),
      static_cast<unsigned long long>(r.net.decode_drops),
      static_cast<unsigned long long>(r.net.send_errors),
      static_cast<unsigned long long>(r.net.unserializable_drops));
  std::string json = buf;
  json += "  \"build\": " + prestige::bench::BuildMetadataJson() + ",\n";
  json += std::string("  \"sanitized\": ") +
          (prestige::bench::SanitizedBuild() ? "true" : "false") + "\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  prestige::harness::ProcessClusterOptions options;
  int64_t min_committed = 1000;
  double duration_s = 6.0;
  std::string json_path;
  options.work_dir = "prestige-cluster-out";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "prestige_cluster: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--node-binary") == 0) {
      const char* v = next("--node-binary");
      if (v == nullptr) return Usage();
      options.node_binary = v;
    } else if (std::strcmp(argv[i], "--protocol") == 0) {
      const char* v = next("--protocol");
      if (v == nullptr) return Usage();
      options.config.protocol = v;
    } else if (std::strcmp(argv[i], "--n") == 0) {
      const char* v = next("--n");
      if (v == nullptr) return Usage();
      options.config.n = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--pools") == 0) {
      const char* v = next("--pools");
      if (v == nullptr) return Usage();
      options.config.pools = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--clients-per-pool") == 0) {
      const char* v = next("--clients-per-pool");
      if (v == nullptr) return Usage();
      options.config.clients_per_pool = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      const char* v = next("--batch");
      if (v == nullptr) return Usage();
      options.config.batch = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--payload") == 0) {
      const char* v = next("--payload");
      if (v == nullptr) return Usage();
      options.config.payload = static_cast<uint32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      const char* v = next("--duration-s");
      if (v == nullptr) return Usage();
      duration_s = std::atof(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next("--seed");
      if (v == nullptr) return Usage();
      options.config.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-committed") == 0) {
      const char* v = next("--min-committed");
      if (v == nullptr) return Usage();
      min_committed = std::strtoll(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--work-dir") == 0) {
      const char* v = next("--work-dir");
      if (v == nullptr) return Usage();
      options.work_dir = v;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = next("--json");
      if (v == nullptr) return Usage();
      json_path = v;
    } else {
      std::fprintf(stderr, "prestige_cluster: unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (options.node_binary.empty()) {
    std::fprintf(stderr, "prestige_cluster: --node-binary is required\n");
    return Usage();
  }
  if (options.config.n < 4 || duration_s <= 0.0) {
    std::fprintf(stderr,
                 "prestige_cluster: need --n >= 4 and --duration-s > 0\n");
    return 2;
  }
  options.config.duration_us = static_cast<int64_t>(duration_s * 1e6);
  ::mkdir(options.work_dir.c_str(), 0755);

  std::printf(
      "prestige_cluster: %u replicas + %u pool(s) of %s over loopback UDP, "
      "%.1fs window\n",
      options.config.n, options.config.pools,
      options.config.protocol.c_str(), duration_s);
  const prestige::harness::ProcessClusterResult result =
      prestige::harness::RunProcessCluster(options);

  if (!result.ran) {
    std::fprintf(stderr, "prestige_cluster: run failed: %s\n",
                 result.error.c_str());
    return 1;
  }
  std::printf(
      "  committed=%lld (floor %lld) tps=%.1f p50=%.2fms p99=%.2fms\n"
      "  heights=[%lld,%lld] view_changes=%lld frames=%llu/%llu "
      "seq_gaps=%llu drops(hdr/len/sum/frag/decode)=%llu/%llu/%llu/%llu/%llu\n"
      "  safety=%s%s%s\n",
      static_cast<long long>(result.committed),
      static_cast<long long>(min_committed), result.tps, result.p50_ms,
      result.p99_ms, static_cast<long long>(result.min_height),
      static_cast<long long>(result.max_height),
      static_cast<long long>(result.view_changes),
      static_cast<unsigned long long>(result.net.frames_sent),
      static_cast<unsigned long long>(result.net.frames_received),
      static_cast<unsigned long long>(result.net.seq_gaps),
      static_cast<unsigned long long>(result.net.header_drops),
      static_cast<unsigned long long>(result.net.length_drops),
      static_cast<unsigned long long>(result.net.checksum_drops),
      static_cast<unsigned long long>(result.net.frag_drops),
      static_cast<unsigned long long>(result.net.decode_drops),
      result.safety_ok ? "ok" : "VIOLATION",
      result.safety_ok ? "" : ": ",
      result.safety_ok ? "" : result.violation.c_str());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "prestige_cluster: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    const std::string json =
        ClusterJson(result, options.config, min_committed);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!result.safety_ok) return 1;
  if (result.committed < min_committed) {
    std::fprintf(stderr,
                 "prestige_cluster: committed %lld below floor %lld\n",
                 static_cast<long long>(result.committed),
                 static_cast<long long>(min_committed));
    return 1;
  }
  return 0;
}
