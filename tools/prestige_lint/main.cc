// prestige_lint CLI — runs the project-invariant checker over a source
// tree (default: src/ relative to the current directory).
//
//   prestige_lint [--root DIR] [--rule NAME]... [--tags] [--list-rules]
//
//   --root DIR    tree to analyze (default "src")
//   --rule NAME   run only the named rule; repeatable (default: all rules)
//   --tags        print the extracted domain-tag registry and exit
//   --list-rules  print the implemented rule names and exit
//
// Exit status: 0 = clean, 1 = findings reported, 2 = usage/I-O error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "prestige_lint/prestige_lint.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: prestige_lint [--root DIR] [--rule NAME]... [--tags] "
               "[--list-rules]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  prestige::lint::Options options;
  bool print_tags = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(arg, "--rule") == 0 && i + 1 < argc) {
      options.rules.push_back(argv[++i]);
    } else if (std::strcmp(arg, "--tags") == 0) {
      print_tags = true;
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      for (const std::string& rule : prestige::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr, "prestige_lint: unknown argument '%s'\n", arg);
      return Usage();
    }
  }

  for (const std::string& rule : options.rules) {
    const auto& known = prestige::lint::RuleNames();
    if (std::find(known.begin(), known.end(), rule) == known.end()) {
      std::fprintf(stderr, "prestige_lint: unknown rule '%s'\n", rule.c_str());
      return Usage();
    }
  }

  std::vector<prestige::lint::SourceFile> files;
  try {
    files = prestige::lint::LoadTree(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (print_tags) {
    for (const auto& tag : prestige::lint::ExtractDomainTags(files)) {
      std::printf("%-12s %s:%d\n", tag.tag.c_str(), tag.path.c_str(),
                  tag.line);
    }
    return 0;
  }

  const auto findings = prestige::lint::Lint(files, options);
  for (const auto& finding : findings) {
    std::printf("%s\n", prestige::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "prestige_lint: %zu finding(s) over %zu files\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("prestige_lint: clean (%zu files)\n", files.size());
  return 0;
}
