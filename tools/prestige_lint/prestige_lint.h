// prestige_lint — project-invariant static checker for the PrestigeBFT tree.
//
// A deliberately small analysis: a comment/string-aware token scanner plus a
// quoted-include graph walker, no libclang. It machine-checks the seven
// invariants that reviews have historically had to defend by hand:
//
//   layering     — nothing under core/, baselines/, client/, or app/ may
//                  include (directly or transitively) sim/, harness/,
//                  workload/, or shard/. Protocol code talks to the outside
//                  world only through runtime::Env (PR 4's decoupling);
//                  sharding is a harness-side concern (PR 9) and replicas
//                  stay group-oblivious.
//   determinism  — wall-clock and ambient-randomness primitives
//                  (std::chrono, ::time(), rand(), std::random_device,
//                  this_thread::sleep_*, ...) are banned outside runtime/,
//                  sim/, harness/, and util/time.h. Protocol code draws time
//                  and entropy from its Env, which is what makes seed sweeps
//                  bit-reproducible (PR 3).
//   codec-tags   — every Encoder / HashingEncoder construction site must
//                  carry a string-literal domain-separation tag, the global
//                  tag set must be collision-free, and raw Append() is
//                  confined to types/codec.h (the no-collision argument of
//                  src/types/codec.h).
//   timer-tag    — no ad-hoc `(kind << N) | payload` bit packing outside
//                  util/timer_tag.h (the PR 2 48-bit truncation bug class).
//   adversary    — protocol code (core/, baselines/, client/, app/) may
//                  hold the types::AdversaryPolicy interface only as a
//                  pointer (nullptr = honest) and may never name the
//                  concrete ScriptedAdversary: attacks are enacted solely
//                  through harness/sim scenario wiring, keeping the
//                  protocol honest-path-only.
//   threading    — thread/synchronization system headers (<thread>, <mutex>,
//                  <condition_variable>, <atomic>, ...) are banned in core/
//                  and baselines/. Replica state is mutated only on its loop
//                  thread; off-thread CPU work is expressed through the
//                  Node::PreVerify prologue hook (runtime/ordered_runner.h,
//                  PR 8), so protocol code never needs its own threads or
//                  locks.
//   sockets      — raw OS networking headers (<sys/socket.h>, <netinet/*>,
//                  <arpa/inet.h>, <poll.h>, <sys/epoll.h>) are confined to
//                  net/ and runtime/. Everything else reaches the network
//                  through the bounds-checked net:: wrappers (or
//                  runtime::Env one level higher), so hostile bytes can
//                  only enter through the hardened decode pipeline.
//
// Suppressions: a finding on line L is suppressed when a comment on L — or
// on an immediately preceding comment-only line — contains
//
//   lint:allow(rule)            e.g.  // lint:allow(determinism)
//   lint:allow(rule: reason)    e.g.  // lint:allow(layering: test shim)
//   lint:allow(rule1, rule2)
//
// The library operates on in-memory SourceFile lists so the gtest fixture
// suite (tests/lint_test.cc) can feed it deliberate violations; the CLI
// (tools/prestige_lint/main.cc) loads a real tree via LoadTree().

#ifndef PRESTIGE_TOOLS_PRESTIGE_LINT_H_
#define PRESTIGE_TOOLS_PRESTIGE_LINT_H_

#include <string>
#include <vector>

namespace prestige {
namespace lint {

/// One file under analysis. `path` is root-relative with '/' separators
/// (e.g. "core/replica.h") — rule scoping keys off its leading directory.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation.
struct Finding {
  std::string rule;     ///< Rule name, e.g. "layering".
  std::string path;     ///< Root-relative file path.
  int line = 0;         ///< 1-based line number.
  std::string message;  ///< Human-readable description.
};

/// One extracted Encoder/HashingEncoder domain-separation tag site.
struct DomainTag {
  std::string tag;
  std::string path;
  int line = 0;
};

/// Which rules to run; empty means all.
struct Options {
  std::vector<std::string> rules;
};

/// Names of every implemented rule, in canonical order.
const std::vector<std::string>& RuleNames();

/// Runs the selected rules over `files` and returns findings sorted by
/// (path, line, rule). Suppressed findings are dropped.
std::vector<Finding> Lint(const std::vector<SourceFile>& files,
                          const Options& options = Options());

/// Extracts every domain-separation tag construction site (suppressions do
/// not apply — the registry must reflect reality). Sorted by (tag, path,
/// line).
std::vector<DomainTag> ExtractDomainTags(const std::vector<SourceFile>& files);

/// Loads every .h/.cc/.cpp under `root_dir` (recursively) with paths
/// relative to it, sorted by path. Throws std::runtime_error when the root
/// does not exist.
std::vector<SourceFile> LoadTree(const std::string& root_dir);

/// "path:line: [rule] message" — the CLI output format.
std::string FormatFinding(const Finding& finding);

}  // namespace lint
}  // namespace prestige

#endif  // PRESTIGE_TOOLS_PRESTIGE_LINT_H_
