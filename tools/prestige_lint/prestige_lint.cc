#include "prestige_lint/prestige_lint.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace prestige {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Leading directory of a root-relative path ("core/replica.h" -> "core");
/// empty for files at the root.
std::string TopDir(const std::string& path) {
  const size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// ------------------------------------------------------------- scrubbing

/// A file prepared for token scanning: comments and string/char literal
/// *bodies* are blanked with spaces (delimiters and layout preserved, so
/// offsets and line numbers match the original), and lint:allow(...)
/// suppressions have been collected per line.
struct Scrubbed {
  std::string code;                  ///< Same length as the original.
  std::vector<size_t> line_starts;   ///< Offset of each line's first char.
  /// line (1-based) -> rules suppressed on that line.
  std::map<int, std::set<std::string>> allow;

  int LineOf(size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }
};

/// Parses every `lint:allow(rule[, rule...])` in `comment` into `out`.
/// A rule entry may carry a free-form reason after ':'.
void ParseAllow(const std::string& comment, std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = comment.find("lint:allow(", pos)) != std::string::npos) {
    pos += 11;  // strlen("lint:allow(")
    const size_t close = comment.find(')', pos);
    if (close == std::string::npos) return;
    std::string inside = comment.substr(pos, close - pos);
    pos = close + 1;
    std::stringstream ss(inside);
    std::string entry;
    while (std::getline(ss, entry, ',')) {
      const size_t colon = entry.find(':');
      if (colon != std::string::npos) entry = entry.substr(0, colon);
      const size_t b = entry.find_first_not_of(" \t");
      const size_t e = entry.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      out->insert(entry.substr(b, e - b + 1));
    }
  }
}

Scrubbed Scrub(const std::string& content) {
  Scrubbed s;
  s.code = content;
  s.line_starts.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment_text;   // Text of the comment currently being read.
  int comment_line = 1;       // Line on which that comment started.
  int line = 1;

  // Collects the finished comment's suppressions onto its starting line.
  const auto flush_comment = [&]() {
    std::set<std::string> rules;
    ParseAllow(comment_text, &rules);
    if (!rules.empty()) s.allow[comment_line].insert(rules.begin(), rules.end());
    comment_text.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      s.line_starts.push_back(i + 1);
      ++line;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          s.code[i] = ' ';
          s.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          s.code[i] = ' ';
          s.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw strings (R"( ... )") are rare here; handle them so a ')"'
          // inside one cannot desynchronize the scan.
          if (i > 0 && content[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(content[i - 2]))) {
            const size_t open = content.find('(', i + 1);
            if (open == std::string::npos) break;
            const std::string delim =
                ")" + content.substr(i + 1, open - i - 1) + "\"";
            const size_t close = content.find(delim, open + 1);
            const size_t end =
                close == std::string::npos ? content.size()
                                           : close + delim.size();
            for (size_t j = i + 1; j < end - 1 && j < content.size(); ++j) {
              if (s.code[j] == '\n') {
                s.line_starts.push_back(j + 1);
                ++line;
              } else {
                s.code[j] = ' ';
              }
            }
            i = end - 1;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;

      case State::kLineComment:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
        } else {
          comment_text.push_back(c);
          s.code[i] = ' ';
        }
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          s.code[i] = ' ';
          s.code[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          comment_text.push_back(c);
          s.code[i] = ' ';
        } else {
          comment_text.push_back('\n');
        }
        break;

      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          s.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            s.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          s.code[i] = ' ';
        }
        break;
      }
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }

  // A comment-only line's suppressions also cover the next line (so
  // `// lint:allow(x)` can sit above the offending statement); chains of
  // comment-only lines carry accumulated suppressions forward.
  const int total_lines = static_cast<int>(s.line_starts.size());
  for (int l = 1; l <= total_lines; ++l) {
    const auto it = s.allow.find(l);
    if (it == s.allow.end()) continue;
    const size_t begin = s.line_starts[static_cast<size_t>(l) - 1];
    const size_t end = static_cast<size_t>(l) < s.line_starts.size()
                           ? s.line_starts[static_cast<size_t>(l)]
                           : s.code.size();
    bool code_on_line = false;
    for (size_t i = begin; i < end; ++i) {
      if (!IsSpace(s.code[i])) {
        code_on_line = true;
        break;
      }
    }
    if (!code_on_line && l + 1 <= total_lines + 1) {
      s.allow[l + 1].insert(it->second.begin(), it->second.end());
    }
  }
  return s;
}

bool Suppressed(const Scrubbed& s, int line, const std::string& rule) {
  const auto it = s.allow.find(line);
  if (it == s.allow.end()) return false;
  return it->second.count(rule) != 0 || it->second.count("all") != 0;
}

// --------------------------------------------------------- token helpers

/// True when `code[pos..pos+len)` is the whole identifier `token`.
bool TokenAt(const std::string& code, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  if (pos + len < code.size() && IsIdentChar(code[pos + len])) return false;
  return true;
}

size_t SkipSpace(const std::string& code, size_t i) {
  while (i < code.size() && IsSpace(code[i])) ++i;
  return i;
}

/// True when the identifier ending just before `pos` (skipping whitespace
/// backwards) is reached through `.` or `->` (a member call on some object,
/// not the global/std function of the same name).
bool IsMemberAccess(const std::string& code, size_t token_begin) {
  size_t i = token_begin;
  while (i > 0 && IsSpace(code[i - 1])) --i;
  if (i == 0) return false;
  if (code[i - 1] == '.') return true;
  if (code[i - 1] == '>' && i >= 2 && code[i - 2] == '-') return true;
  return false;
}

// ------------------------------------------------------------- includes

struct IncludeEdge {
  std::string target;  ///< The include path, verbatim (no delimiters).
  int line = 0;
  bool system = false;  ///< True for <...> includes, false for "..." ones.
};

/// Both include forms. Quoted edges feed the layering graph (system
/// includes cannot point back into src/); angle-bracket edges feed the
/// threading rule.
std::vector<IncludeEdge> ParseIncludes(const std::string& content) {
  std::vector<IncludeEdge> edges;
  int line = 1;
  size_t i = 0;
  while (i < content.size()) {
    size_t eol = content.find('\n', i);
    if (eol == std::string::npos) eol = content.size();
    size_t j = i;
    while (j < eol && (content[j] == ' ' || content[j] == '\t')) ++j;
    if (j < eol && content[j] == '#') {
      ++j;
      while (j < eol && (content[j] == ' ' || content[j] == '\t')) ++j;
      if (content.compare(j, 7, "include") == 0) {
        j = SkipSpace(content, j + 7);
        if (j < eol && content[j] == '"') {
          const size_t close = content.find('"', j + 1);
          if (close != std::string::npos && close < eol) {
            edges.push_back({content.substr(j + 1, close - j - 1), line,
                             /*system=*/false});
          }
        } else if (j < eol && content[j] == '<') {
          const size_t close = content.find('>', j + 1);
          if (close != std::string::npos && close < eol) {
            edges.push_back({content.substr(j + 1, close - j - 1), line,
                             /*system=*/true});
          }
        }
      }
    }
    i = eol + 1;
    ++line;
  }
  return edges;
}

// --------------------------------------------------------------- context

struct FileCtx {
  const SourceFile* file = nullptr;
  Scrubbed scrubbed;
  std::vector<IncludeEdge> includes;
};

struct LintCtx {
  std::vector<FileCtx> files;
  std::unordered_map<std::string, size_t> by_path;
  std::vector<Finding> findings;

  void Report(const FileCtx& f, int line, const std::string& rule,
              const std::string& message) {
    if (Suppressed(f.scrubbed, line, rule)) return;
    findings.push_back({rule, f.file->path, line, message});
  }
};

// ------------------------------------------------------------- layering

const std::set<std::string>& ProtectedDirs() {
  static const std::set<std::string> kDirs = {"core", "baselines", "client",
                                              "app"};
  return kDirs;
}

const std::set<std::string>& ForbiddenDirs() {
  // shard/ is harness-side routing (PR 9): protocol code must stay
  // group-oblivious — a replica never knows which shard it serves.
  static const std::set<std::string> kDirs = {"sim", "harness", "workload",
                                              "shard"};
  return kDirs;
}

/// Per-file taint: does this file's include closure touch a forbidden
/// layer? `witness` holds one offending chain for the error message.
struct Taint {
  int state = 0;  // 0 = unvisited, 1 = in progress, 2 = done.
  bool tainted = false;
  std::vector<std::string> witness;  // file, ..., forbidden file.
};

bool ComputeTaint(LintCtx& ctx, size_t idx, std::vector<Taint>& taints) {
  Taint& t = taints[idx];
  if (t.state == 2) return t.tainted;
  if (t.state == 1) return false;  // Include cycle: break conservatively.
  t.state = 1;
  const FileCtx& f = ctx.files[idx];
  if (ForbiddenDirs().count(TopDir(f.file->path)) != 0) {
    t.tainted = true;
    t.witness = {f.file->path};
  } else {
    for (const IncludeEdge& e : f.includes) {
      if (e.system) continue;
      const auto it = ctx.by_path.find(e.target);
      if (it != ctx.by_path.end()) {
        if (ComputeTaint(ctx, it->second, taints)) {
          t.tainted = true;
          t.witness = taints[it->second].witness;
          t.witness.insert(t.witness.begin(), f.file->path);
          break;
        }
      } else if (ForbiddenDirs().count(TopDir(e.target)) != 0) {
        // Not in the analyzed set (e.g. a fixture) but named into a
        // forbidden layer: the path alone convicts it.
        t.tainted = true;
        t.witness = {f.file->path, e.target};
        break;
      }
    }
  }
  t.state = 2;
  return t.tainted;
}

void RunLayering(LintCtx& ctx) {
  std::vector<Taint> taints(ctx.files.size());
  for (size_t i = 0; i < ctx.files.size(); ++i) {
    const FileCtx& f = ctx.files[i];
    if (ProtectedDirs().count(TopDir(f.file->path)) == 0) continue;
    for (const IncludeEdge& e : f.includes) {
      if (e.system) continue;
      bool bad = false;
      std::vector<std::string> chain;
      const auto it = ctx.by_path.find(e.target);
      if (it != ctx.by_path.end()) {
        bad = ComputeTaint(ctx, it->second, taints);
        if (bad) chain = taints[it->second].witness;
      } else if (ForbiddenDirs().count(TopDir(e.target)) != 0) {
        bad = true;
        chain = {e.target};
      }
      if (!bad) continue;
      std::string msg = "layering-protected '" + TopDir(f.file->path) +
                        "/' must not reach '" + TopDir(chain.back()) +
                        "/': include of \"" + e.target + "\"";
      if (chain.size() > 1) {
        msg += " (chain:";
        for (const std::string& hop : chain) msg += " " + hop;
        msg += ")";
      }
      ctx.Report(f, e.line, "layering", msg);
    }
  }
}

// ---------------------------------------------------------- determinism

bool DeterminismExempt(const std::string& path) {
  const std::string top = TopDir(path);
  // runtime/ is where wall clocks are implemented; sim/ and harness/ are
  // measurement/simulation infrastructure whose wall-clock use is the
  // point; util/time.h defines the virtual-time vocabulary itself.
  return top == "runtime" || top == "sim" || top == "harness" ||
         path == "util/time.h";
}

void RunDeterminism(LintCtx& ctx) {
  // Identifier tokens banned anywhere (types, engines, clocks).
  static const char* const kBannedTokens[] = {
      "chrono",       "random_device",         "mt19937",
      "mt19937_64",   "default_random_engine", "steady_clock",
      "system_clock", "high_resolution_clock", "sleep_for",
      "sleep_until",  "usleep",                "nanosleep",
  };
  // Identifier tokens banned when used as a call (followed by '(') and not
  // reached through member access.
  static const char* const kBannedCalls[] = {
      "time", "clock", "gettimeofday", "rand", "srand", "rand_r", "random",
      "drand48",
  };

  for (const FileCtx& f : ctx.files) {
    if (DeterminismExempt(f.file->path)) continue;
    const std::string& code = f.scrubbed.code;

    for (const char* token : kBannedTokens) {
      const std::string t(token);
      for (size_t pos = code.find(t); pos != std::string::npos;
           pos = code.find(t, pos + 1)) {
        if (!TokenAt(code, pos, t.size())) continue;
        ctx.Report(f, f.scrubbed.LineOf(pos), "determinism",
                   "'" + t +
                       "' is a wall-clock/ambient-randomness primitive; "
                       "protocol code must use runtime::Env time and RNG");
      }
    }
    for (const char* call : kBannedCalls) {
      const std::string t(call);
      for (size_t pos = code.find(t); pos != std::string::npos;
           pos = code.find(t, pos + 1)) {
        if (!TokenAt(code, pos, t.size())) continue;
        const size_t after = SkipSpace(code, pos + t.size());
        if (after >= code.size() || code[after] != '(') continue;
        if (IsMemberAccess(code, pos)) continue;
        ctx.Report(f, f.scrubbed.LineOf(pos), "determinism",
                   "call to '" + t +
                       "()' bypasses runtime::Env; seed sweeps are only "
                       "reproducible when all time/entropy flows through Env");
      }
    }
  }
}

// ----------------------------------------------------------- codec-tags

bool IsCodecHeader(const std::string& path) {
  return path == "types/codec.h";
}

struct TagSite {
  std::string tag;
  size_t file_idx = 0;
  int line = 0;
};

/// Scans one file for Encoder/HashingEncoder construction sites. For each
/// site with a string-literal first argument, records the tag; for each
/// site without one, reports a finding (when `ctx` is non-null).
void ScanEncoderSites(const FileCtx& f, size_t file_idx,
                      std::vector<TagSite>* tags, LintCtx* ctx) {
  static const char* const kTypes[] = {"Encoder", "HashingEncoder"};
  const std::string& code = f.scrubbed.code;
  const std::string& orig = f.file->content;

  for (const char* type : kTypes) {
    const std::string t(type);
    for (size_t pos = code.find(t); pos != std::string::npos;
         pos = code.find(t, pos + 1)) {
      if (!TokenAt(code, pos, t.size())) continue;
      size_t i = SkipSpace(code, pos + t.size());
      if (i >= code.size()) continue;
      // `Encoder&`, `Encoder*`, `Encoder>` ... are uses of the type, not
      // construction sites.
      if (code[i] != '(' && code[i] != '{' && !IsIdentChar(code[i])) continue;
      if (IsIdentChar(code[i])) {
        // `Encoder enc(...)` / `types::HashingEncoder enc{...}`.
        while (i < code.size() && IsIdentChar(code[i])) ++i;
        i = SkipSpace(code, i);
        if (i >= code.size() || (code[i] != '(' && code[i] != '{')) continue;
      }
      const size_t args = SkipSpace(code, i + 1);
      const int line = f.scrubbed.LineOf(pos);
      if (args < code.size() && code[args] == '"') {
        // Read the literal from the original text (the scrubbed view blanks
        // literal bodies but preserves offsets).
        std::string tag;
        for (size_t j = args + 1; j < orig.size() && orig[j] != '"'; ++j) {
          if (orig[j] == '\\' && j + 1 < orig.size()) ++j;
          tag.push_back(orig[j]);
        }
        if (tags != nullptr) tags->push_back({tag, file_idx, line});
      } else if (ctx != nullptr) {
        ctx->Report(f, line, "codec-tags",
                    t + " constructed without a string-literal domain tag; "
                        "every digest must commit to its message kind at "
                        "the construction site");
      }
    }
  }
}

void RunCodecTags(LintCtx& ctx) {
  std::vector<TagSite> sites;
  for (size_t i = 0; i < ctx.files.size(); ++i) {
    const FileCtx& f = ctx.files[i];
    if (IsCodecHeader(f.file->path)) continue;
    ScanEncoderSites(f, i, &sites, &ctx);

    // Raw Append() is the unframed escape hatch around the Put* layer; it
    // is private to the encoders and may only appear inside types/codec.h.
    const std::string& code = f.scrubbed.code;
    const std::string t = "Append";
    for (size_t pos = code.find(t); pos != std::string::npos;
         pos = code.find(t, pos + 1)) {
      if (!TokenAt(code, pos, t.size())) continue;
      const size_t after = SkipSpace(code, pos + t.size());
      if (after >= code.size() || code[after] != '(') continue;
      if (!IsMemberAccess(code, pos)) continue;
      ctx.Report(f, f.scrubbed.LineOf(pos), "codec-tags",
                 "raw Append() outside types/codec.h voids the framed "
                 "no-collision encoding; use the Put* methods");
    }
  }

  // Domain tags must be globally unique: two kinds sharing a tag collapses
  // the domain separation that makes digests of different kinds collision
  // free.
  std::map<std::string, std::vector<const TagSite*>> by_tag;
  for (const TagSite& s : sites) by_tag[s.tag].push_back(&s);
  for (const auto& entry : by_tag) {
    if (entry.second.size() < 2) continue;
    std::string all_sites;
    for (const TagSite* s : entry.second) {
      if (!all_sites.empty()) all_sites += ", ";
      all_sites += ctx.files[s->file_idx].file->path + ":" +
                   std::to_string(s->line);
    }
    for (const TagSite* s : entry.second) {
      ctx.Report(ctx.files[s->file_idx], s->line, "codec-tags",
                 "domain tag \"" + entry.first +
                     "\" is used by more than one encoder site (" +
                     all_sites + "); tags must be globally unique");
    }
  }
}

// ------------------------------------------------------------ timer-tag

void RunTimerTag(LintCtx& ctx) {
  for (const FileCtx& f : ctx.files) {
    if (f.file->path == "util/timer_tag.h") continue;
    const std::string& code = f.scrubbed.code;
    const std::vector<size_t>& starts = f.scrubbed.line_starts;

    for (size_t l = 0; l < starts.size(); ++l) {
      const size_t begin = starts[l];
      const size_t end = l + 1 < starts.size() ? starts[l + 1] : code.size();
      bool shift_like = false;
      bool has_or = false;
      for (size_t i = begin; i + 1 < end; ++i) {
        if (code[i] == '|') {
          if (code[i + 1] == '|' || (i > begin && code[i - 1] == '|')) {
            continue;  // Logical ||.
          }
          has_or = true;
        }
        if (code[i] != '<' || code[i + 1] != '<') continue;
        size_t j = SkipSpace(code, i + 2);
        if (j < end && (code[j] >= '0' && code[j] <= '9')) {
          size_t k = j;
          while (k < end && code[k] >= '0' && code[k] <= '9') ++k;
          if (k < end && IsIdentChar(code[k])) {
            while (k < end && IsIdentChar(code[k])) ++k;  // 48ull etc.
          }
          const int amount = std::atoi(code.substr(j, k - j).c_str());
          // The timer-tag layout shifts the kind past the 48-bit payload;
          // anything in the 40..56 neighbourhood OR'd with a payload is
          // the PR 2 truncation bug class being re-implemented by hand.
          if (amount >= 40 && amount <= 56) shift_like = true;
        } else if (j < end && IsIdentChar(code[j])) {
          size_t k = j;
          // Walk a possibly qualified name (util::kTimerTagPayloadBits).
          while (k < end &&
                 (IsIdentChar(code[k]) ||
                  (code[k] == ':' && k + 1 < end && code[k + 1] == ':'))) {
            k += code[k] == ':' ? 2 : 1;
          }
          const std::string ident = code.substr(j, k - j);
          if (ident.find("TimerTagPayloadBits") != std::string::npos) {
            shift_like = true;
            has_or = true;  // Using the constant by hand is enough.
          }
        }
      }
      if (shift_like && has_or) {
        ctx.Report(f, static_cast<int>(l + 1), "timer-tag",
                   "ad-hoc timer-tag bit packing; use "
                   "util::PackTimerTag/TimerTagKind/TimerTagPayload so "
                   "64-bit payloads cannot be silently truncated");
      }
    }
  }
}

// ------------------------------------------------------------- threading

/// Directories whose code must stay single-threaded: protocol state is
/// mutated only on the owning node's loop thread (or the simulator's one
/// thread), and CPU-parallelism is expressed through the PreVerify prologue
/// hook, never by spawning threads or sharing synchronized state. client/
/// is deliberately NOT here: its blocking Call() API is cross-thread by
/// contract. runtime/, harness/, and sim/ implement the threading.
const std::set<std::string>& SingleThreadedDirs() {
  static const std::set<std::string> kDirs = {"core", "baselines"};
  return kDirs;
}

void RunThreading(LintCtx& ctx) {
  static const std::set<std::string> kThreadHeaders = {
      "thread",  "mutex",     "condition_variable", "shared_mutex",
      "atomic",  "future",    "semaphore",          "latch",
      "barrier", "stop_token"};
  for (const FileCtx& f : ctx.files) {
    if (SingleThreadedDirs().count(TopDir(f.file->path)) == 0) continue;
    for (const IncludeEdge& e : f.includes) {
      if (!e.system || kThreadHeaders.count(e.target) == 0) continue;
      ctx.Report(f, e.line, "threading",
                 "#include <" + e.target +
                     "> in single-threaded protocol code; replica state is "
                     "mutated only on its loop thread — off-thread CPU work "
                     "goes through the Node::PreVerify prologue hook "
                     "(runtime/ordered_runner.h), not ad-hoc threads or "
                     "shared synchronized state");
    }
  }
}

// --------------------------------------------------------------- sockets

/// Raw OS networking headers are confined to src/net/ (the socket / poll /
/// framing primitives) and src/runtime/ (the socket event loop). Everything
/// else — protocol code, harnesses, tools — reaches the network through
/// net::UdpSocket / net::TcpConn / net::PollSockets or, one level higher,
/// through runtime::Env. This keeps every recv/poll/sockaddr call path
/// behind the bounds-checked wrappers so hostile bytes can only enter
/// through the hardened decode pipeline.
const std::set<std::string>& SocketCapableDirs() {
  static const std::set<std::string> kDirs = {"net", "runtime"};
  return kDirs;
}

void RunSockets(LintCtx& ctx) {
  static const std::set<std::string> kSocketHeaders = {
      "sys/socket.h", "arpa/inet.h", "poll.h", "sys/epoll.h"};
  for (const FileCtx& f : ctx.files) {
    if (SocketCapableDirs().count(TopDir(f.file->path)) != 0) continue;
    for (const IncludeEdge& e : f.includes) {
      if (!e.system) continue;
      const bool banned = kSocketHeaders.count(e.target) != 0 ||
                          e.target.compare(0, 8, "netinet/") == 0;
      if (!banned) continue;
      ctx.Report(f, e.line, "sockets",
                 "#include <" + e.target +
                     "> outside net/ and runtime/; raw OS networking is "
                     "confined to the bounds-checked wrappers in "
                     "net/socket.h so hostile bytes can only enter through "
                     "the hardened decode pipeline");
    }
  }
}

// ------------------------------------------------------------- adversary

void RunAdversary(LintCtx& ctx) {
  for (const FileCtx& f : ctx.files) {
    if (ProtectedDirs().count(TopDir(f.file->path)) == 0) continue;
    const std::string& code = f.scrubbed.code;

    // The concrete scripted policy is harness wiring; naming it at all in
    // protocol code means an attack could be enacted outside any scenario.
    {
      const std::string t = "ScriptedAdversary";
      for (size_t pos = code.find(t); pos != std::string::npos;
           pos = code.find(t, pos + 1)) {
        if (!TokenAt(code, pos, t.size())) continue;
        ctx.Report(f, f.scrubbed.LineOf(pos), "adversary",
                   "ScriptedAdversary is harness-only; protocol code stays "
                   "honest-path and consults the installed "
                   "types::AdversaryPolicy through its pointer");
      }
    }

    // The interface may be *held* (a const pointer, nullptr = honest) but
    // never constructed, copied, or inherited from in protocol code.
    {
      const std::string t = "AdversaryPolicy";
      for (size_t pos = code.find(t); pos != std::string::npos;
           pos = code.find(t, pos + 1)) {
        if (!TokenAt(code, pos, t.size())) continue;
        const size_t after = SkipSpace(code, pos + t.size());
        if (after < code.size() && code[after] == '*') continue;
        ctx.Report(f, f.scrubbed.LineOf(pos), "adversary",
                   "AdversaryPolicy may appear in protocol code only as a "
                   "pointer ('AdversaryPolicy*'); constructing, copying, or "
                   "deriving from a policy belongs to harness/sim wiring");
      }
    }
  }
}

}  // namespace

// ----------------------------------------------------------- public API

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "layering",  "determinism", "codec-tags", "timer-tag",
      "adversary", "threading",   "sockets"};
  return kRules;
}

std::vector<Finding> Lint(const std::vector<SourceFile>& files,
                          const Options& options) {
  LintCtx ctx;
  ctx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    FileCtx fc;
    fc.file = &f;
    fc.scrubbed = Scrub(f.content);
    fc.includes = ParseIncludes(f.content);
    ctx.by_path.emplace(f.path, ctx.files.size());
    ctx.files.push_back(std::move(fc));
  }

  const auto enabled = [&options](const char* rule) {
    return options.rules.empty() ||
           std::find(options.rules.begin(), options.rules.end(), rule) !=
               options.rules.end();
  };
  if (enabled("layering")) RunLayering(ctx);
  if (enabled("determinism")) RunDeterminism(ctx);
  if (enabled("codec-tags")) RunCodecTags(ctx);
  if (enabled("timer-tag")) RunTimerTag(ctx);
  if (enabled("adversary")) RunAdversary(ctx);
  if (enabled("threading")) RunThreading(ctx);
  if (enabled("sockets")) RunSockets(ctx);

  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return ctx.findings;
}

std::vector<DomainTag> ExtractDomainTags(
    const std::vector<SourceFile>& files) {
  std::vector<DomainTag> out;
  std::vector<TagSite> sites;
  std::vector<FileCtx> ctxs(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    if (IsCodecHeader(files[i].path)) continue;
    ctxs[i].file = &files[i];
    ctxs[i].scrubbed = Scrub(files[i].content);
    ScanEncoderSites(ctxs[i], i, &sites, nullptr);
  }
  for (const TagSite& s : sites) {
    out.push_back({s.tag, files[s.file_idx].path, s.line});
  }
  std::sort(out.begin(), out.end(),
            [](const DomainTag& a, const DomainTag& b) {
              if (a.tag != b.tag) return a.tag < b.tag;
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return out;
}

std::vector<SourceFile> LoadTree(const std::string& root_dir) {
  namespace fs = std::filesystem;
  const fs::path root(root_dir);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("prestige_lint: not a directory: " + root_dir);
  }
  std::vector<SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files.push_back({fs::relative(entry.path(), root).generic_string(),
                     body.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

std::string FormatFinding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace lint
}  // namespace prestige
