// prestige_node: one deployment node (replica or client pool) as an OS
// process over the socket runtime.
//
// Usage:
//   prestige_node --config cluster.cfg --id 2
//
// The config (net/address.h format) names every node's data (UDP) and
// control (TCP) address plus the workload parameters; --id selects which
// entry this process embodies. Ids 0..n-1 are replicas of the configured
// protocol, n..n+pools-1 are closed-loop client pools.
//
// The control socket speaks a line-oriented protocol, one command per
// connection:
//   ping    ->  "ok" (liveness, safe mid-run)
//   stop    ->  stops the runtime (joins the event loop), replies "ok"
//   status  ->  one JSON line; full counters + committed chain after stop,
//               a minimal {"running":true} subset while live
//   quit    ->  "ok", then the process exits 0
//
// prestige_cluster (tools/prestige_cluster) drives fleets of these and
// sweeps cross-replica invariants over their status reports.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/hotstuff/hotstuff_replica.h"
#include "baselines/sbft/sbft_replica.h"
#include "core/replica.h"
#include "net/address.h"
#include "net/socket.h"
#include "runtime/socket_env.h"
#include "util/hex.h"
#include "workload/client_pool.h"

namespace {

using prestige::net::ClusterConfig;
using prestige::net::PeerEntry;

std::string FrameCountersJson(const prestige::net::FrameCounters& c) {
  std::ostringstream out;
  out << "{\"frames_sent\":" << c.frames_sent
      << ",\"bytes_sent\":" << c.bytes_sent
      << ",\"send_errors\":" << c.send_errors
      << ",\"frames_received\":" << c.frames_received
      << ",\"bytes_received\":" << c.bytes_received
      << ",\"header_drops\":" << c.header_drops
      << ",\"wrong_dst_drops\":" << c.wrong_dst_drops
      << ",\"length_drops\":" << c.length_drops
      << ",\"checksum_drops\":" << c.checksum_drops
      << ",\"frag_drops\":" << c.frag_drops
      << ",\"decode_drops\":" << c.decode_drops
      << ",\"messages_assembled\":" << c.messages_assembled
      << ",\"seq_gaps\":" << c.seq_gaps
      << ",\"seq_out_of_order\":" << c.seq_out_of_order
      << ",\"unserializable_drops\":" << c.unserializable_drops << "}";
  return out.str();
}

/// Serves the control protocol until `quit`. `status` renders this node's
/// report; `running` flips false once `stop` has joined the event loops,
/// making the full (state-reading) report race-free.
int ControlLoop(prestige::net::TcpListener* control,
                prestige::runtime::SocketRuntime* runtime,
                const std::function<std::string(bool)>& status) {
  bool running = true;
  for (;;) {
    const int fd = control->Accept(200);
    if (fd < 0) continue;
    prestige::net::TcpConn conn(fd);
    std::string command;
    if (!conn.RecvLine(&command, 2000)) continue;
    if (command == "ping") {
      conn.SendLine("ok");
    } else if (command == "stop") {
      runtime->Stop();
      running = false;
      conn.SendLine("ok");
    } else if (command == "status") {
      conn.SendLine(status(running));
    } else if (command == "quit") {
      conn.SendLine("ok");
      runtime->Stop();
      return 0;
    } else {
      conn.SendLine("err unknown command '" + command + "'");
    }
  }
}

void PublishPeers(prestige::runtime::SocketRuntime* runtime,
                  const ClusterConfig& config, uint32_t self_id) {
  for (const PeerEntry& peer : config.peers) {
    if (peer.id != self_id) runtime->SetPeer(peer.id, peer.data);
  }
}

template <typename Replica>
std::string ReplicaStatusJson(const Replica& replica,
                              prestige::runtime::SocketRuntime& runtime,
                              const ClusterConfig& config,
                              const PeerEntry& self, bool running) {
  std::ostringstream out;
  out << "{\"id\":" << self.id << ",\"kind\":\"replica\",\"protocol\":\""
      << config.protocol << "\",\"running\":" << (running ? "true" : "false");
  if (running) {
    // The event loop still owns replica state; report only what is safe.
    out << "}";
    return out.str();
  }
  const auto& metrics = replica.metrics();
  const auto& delivery = replica.delivery();
  char digest[24];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(
                    delivery.service().StateDigest()));
  out << ",\"committed_txs\":" << metrics.committed_txs
      << ",\"committed_blocks\":" << metrics.committed_blocks
      << ",\"view_changes\":" << metrics.view_changes_started
      << ",\"elections_won\":" << metrics.elections_won
      << ",\"executed\":" << delivery.stats().executed
      << ",\"duplicates\":" << delivery.stats().duplicates_suppressed
      << ",\"state_digest\":\"" << digest << "\""
      << ",\"net\":" << FrameCountersJson(runtime.node_net_stats(self.id))
      << ",\"chain\":[";
  const auto& chain = replica.store().tx_chain();
  for (size_t k = 0; k < chain.size(); ++k) {
    if (k > 0) out << ",";
    out << "{\"n\":" << chain[k].n() << ",\"d\":\""
        << prestige::util::HexEncode(chain[k].Digest().data(), 8)
        << "\",\"t\":" << chain[k].BatchSize() << "}";
  }
  out << "]}";
  return out.str();
}

std::string PoolStatusJson(prestige::workload::ClientPool& pool,
                           prestige::runtime::SocketRuntime& runtime,
                           const PeerEntry& self, bool running) {
  std::ostringstream out;
  out << "{\"id\":" << self.id << ",\"kind\":\"pool\",\"running\":"
      << (running ? "true" : "false");
  if (running) {
    out << "}";
    return out.str();
  }
  const auto& stats = pool.stats();
  out << ",\"completed\":" << stats.completed
      << ",\"replies\":" << stats.replies_received
      << ",\"result_mismatches\":" << stats.result_mismatches
      << ",\"retransmissions\":" << stats.retransmissions
      << ",\"complaints\":" << stats.complaints_sent
      << ",\"expired\":" << stats.expired << ",\"p50_ms\":"
      << pool.latencies().Percentile(50) << ",\"p99_ms\":"
      << pool.latencies().Percentile(99) << ",\"mean_ms\":"
      << pool.latencies().Mean()
      << ",\"net\":" << FrameCountersJson(runtime.node_net_stats(self.id))
      << "}";
  return out.str();
}

template <typename Replica, typename Config>
int RunReplicaNode(const ClusterConfig& config, const PeerEntry& self,
                   Config protocol) {
  prestige::crypto::KeyStore keys(config.seed ^ 0xc0ffee);
  prestige::runtime::SocketRuntime runtime(config.seed);
  Replica replica(protocol, self.id, &keys,
                  prestige::types::FaultSpec::Honest());
  std::string error;
  if (!runtime.AddNode(&replica, self.id, self.data, &error)) {
    std::fprintf(stderr, "prestige_node: %s\n", error.c_str());
    return 1;
  }
  PublishPeers(&runtime, config, self.id);
  replica.SetTopology(config.ReplicaIds(), config.PoolIds());

  prestige::net::TcpListener control;
  if (!control.Listen(self.control, &error)) {
    std::fprintf(stderr, "prestige_node: %s\n", error.c_str());
    return 1;
  }
  runtime.Start();
  return ControlLoop(&control, &runtime, [&](bool running) {
    return ReplicaStatusJson(replica, runtime, config, self, running);
  });
}

int RunPoolNode(const ClusterConfig& config, const PeerEntry& self) {
  prestige::runtime::SocketRuntime runtime(config.seed);
  prestige::workload::ClientPoolConfig pool_config;
  pool_config.pool_id = self.id - config.n;
  pool_config.num_clients = config.clients_per_pool;
  pool_config.payload_size = config.payload;
  pool_config.f = prestige::types::MaxFaulty(config.n);
  pool_config.request_timeout = prestige::util::Seconds(2);
  prestige::workload::ClientPool pool(pool_config);
  std::string error;
  if (!runtime.AddNode(&pool, self.id, self.data, &error)) {
    std::fprintf(stderr, "prestige_node: %s\n", error.c_str());
    return 1;
  }
  PublishPeers(&runtime, config, self.id);
  pool.SetReplicas(config.ReplicaIds());

  prestige::net::TcpListener control;
  if (!control.Listen(self.control, &error)) {
    std::fprintf(stderr, "prestige_node: %s\n", error.c_str());
    return 1;
  }
  runtime.Start();
  return ControlLoop(&control, &runtime, [&](bool running) {
    return PoolStatusJson(pool, runtime, self, running);
  });
}

int Usage() {
  std::fprintf(stderr,
               "usage: prestige_node --config <cluster.cfg> --id <node-id>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  int64_t id = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--id") == 0 && i + 1 < argc) {
      id = std::strtoll(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (config_path.empty() || id < 0) return Usage();

  std::ifstream in(config_path);
  if (!in) {
    std::fprintf(stderr, "prestige_node: cannot read %s\n",
                 config_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ClusterConfig config;
  std::string error;
  if (!prestige::net::ParseClusterConfig(text.str(), &config, &error)) {
    std::fprintf(stderr, "prestige_node: %s: %s\n", config_path.c_str(),
                 error.c_str());
    return 1;
  }
  const PeerEntry* self = config.Find(static_cast<uint32_t>(id));
  if (self == nullptr) {
    std::fprintf(stderr, "prestige_node: id %lld not in %s\n",
                 static_cast<long long>(id), config_path.c_str());
    return 1;
  }

  if (self->kind == PeerEntry::Kind::kPool) {
    return RunPoolNode(config, *self);
  }
  if (config.protocol == "prestigebft") {
    prestige::core::PrestigeConfig protocol;
    protocol.n = config.n;
    protocol.batch_size = config.batch;
    protocol.timeout_min = prestige::util::Millis(800);
    protocol.timeout_max = prestige::util::Millis(1200);
    return RunReplicaNode<prestige::core::PrestigeReplica>(config, *self,
                                                           protocol);
  }
  if (config.protocol == "hotstuff") {
    prestige::baselines::hotstuff::HotStuffConfig protocol;
    protocol.n = config.n;
    protocol.batch_size = config.batch;
    protocol.view_timeout = prestige::util::Seconds(1);
    return RunReplicaNode<prestige::baselines::hotstuff::HotStuffReplica>(
        config, *self, protocol);
  }
  if (config.protocol == "sbft") {
    prestige::baselines::sbft::SbftConfig protocol;
    protocol.n = config.n;
    protocol.batch_size = config.batch;
    return RunReplicaNode<prestige::baselines::sbft::SbftReplica>(
        config, *self, protocol);
  }
  std::fprintf(stderr, "prestige_node: unknown protocol '%s'\n",
               config.protocol.c_str());
  return 1;
}
