// Hex encoding/decoding for digests and test vectors.

#ifndef PRESTIGE_UTIL_HEX_H_
#define PRESTIGE_UTIL_HEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace prestige {
namespace util {

/// Lower-case hex encoding of a byte buffer.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const std::vector<uint8_t>& data);

/// Decodes a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<std::vector<uint8_t>> HexDecode(const std::string& hex);

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_HEX_H_
