// Virtual-time types shared by the simulator and the protocols.
//
// All simulation time is expressed as integral microseconds so that event
// ordering is exact and runs are bit-for-bit reproducible.

#ifndef PRESTIGE_UTIL_TIME_H_
#define PRESTIGE_UTIL_TIME_H_

#include <cstdint>

namespace prestige {
namespace util {

/// Microseconds of virtual time since the start of a simulation.
using TimeMicros = int64_t;

/// A span of virtual time, in microseconds.
using DurationMicros = int64_t;

constexpr DurationMicros kMicrosPerMilli = 1000;
constexpr DurationMicros kMicrosPerSecond = 1000 * 1000;

/// Converts milliseconds to microseconds.
constexpr DurationMicros Millis(int64_t ms) { return ms * kMicrosPerMilli; }

/// Converts seconds to microseconds.
constexpr DurationMicros Seconds(int64_t s) { return s * kMicrosPerSecond; }

/// Converts microseconds to fractional milliseconds.
constexpr double ToMillis(DurationMicros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

/// Converts microseconds to fractional seconds.
constexpr double ToSeconds(DurationMicros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_TIME_H_
