// Result<T>: value-or-Status, the return type for fallible producers.

#ifndef PRESTIGE_UTIL_RESULT_H_
#define PRESTIGE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace prestige {
namespace util {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced (Arrow's arrow::Result idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The wrapped status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors require ok(); enforced by assertion.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace util
}  // namespace prestige

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define PRESTIGE_ASSIGN_OR_RETURN(lhs, expr)     \
  auto _res_##__LINE__ = (expr);                 \
  if (!_res_##__LINE__.ok()) {                   \
    return _res_##__LINE__.status();             \
  }                                              \
  lhs = std::move(_res_##__LINE__).value()

#endif  // PRESTIGE_UTIL_RESULT_H_
