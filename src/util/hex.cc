#include "util/hex.h"

namespace prestige {
namespace util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string HexEncode(const std::vector<uint8_t>& data) {
  return HexEncode(data.data(), data.size());
}

Result<std::vector<uint8_t>> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace util
}  // namespace prestige
