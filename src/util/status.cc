#include "util/status.h"

namespace prestige {
namespace util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidSignature:
      return "InvalidSignature";
    case StatusCode::kStaleView:
      return "StaleView";
    case StatusCode::kInvalidProtocol:
      return "InvalidProtocol";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace util
}  // namespace prestige
