// Minimal leveled logging.
//
// The simulator injects the virtual timestamp; experiments default to
// kWarning so multi-thousand-view runs stay quiet.

#ifndef PRESTIGE_UTIL_LOGGING_H_
#define PRESTIGE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace prestige {
namespace util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr. Prefer the PRESTIGE_LOG macro.
void LogMessage(LogLevel level, const std::string& message);

/// True if `level` would currently be emitted.
bool LogEnabled(LogLevel level);

}  // namespace util
}  // namespace prestige

/// Streams a log line: PRESTIGE_LOG(kInfo) << "view " << v;
#define PRESTIGE_LOG(level)                                              \
  if (!::prestige::util::LogEnabled(::prestige::util::LogLevel::level)) \
    ;                                                                    \
  else                                                                   \
    ::prestige::util::LogStream(::prestige::util::LogLevel::level)

namespace prestige {
namespace util {

/// RAII helper that flushes its accumulated stream on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_LOGGING_H_
