// 48-bit timer-tag packing shared by every protocol and the runtime layer.
//
// Timers carry one opaque uint64_t tag. By convention the top 16 bits hold
// a protocol-defined kind (an enum) and the low 48 bits an optional
// payload. Each protocol used to re-implement this split privately
// (PrestigeReplica::Tag and copies in the baselines); it lives here once so
// runtime::Env implementations, protocols, and tests agree on the layout.
//
// The 48-bit payload ceiling is a real protocol constraint: 64-bit keys
// (e.g. complaint tx keys) do NOT fit and must be routed through an
// indirection table instead of being truncated into the tag — truncation
// silently breaks the timer's lookup on fire (found the hard way in PR 2).

#ifndef PRESTIGE_UTIL_TIMER_TAG_H_
#define PRESTIGE_UTIL_TIMER_TAG_H_

#include <cstdint>

namespace prestige {
namespace util {

/// Bits of payload a timer tag can carry alongside its kind.
constexpr int kTimerTagPayloadBits = 48;

/// Mask selecting the payload bits of a packed tag.
constexpr uint64_t kTimerTagPayloadMask =
    (uint64_t{1} << kTimerTagPayloadBits) - 1;

/// Largest payload representable without truncation.
constexpr uint64_t kTimerTagMaxPayload = kTimerTagPayloadMask;

/// Packs (kind, payload) into one tag. `Kind` is any enum (or integer)
/// whose values fit in 16 bits; payloads wider than 48 bits are masked —
/// callers owning 64-bit keys must map them through a table first (see
/// PrestigeReplica::complaint_probe_keys_).
template <typename Kind>
constexpr uint64_t PackTimerTag(Kind kind, uint64_t payload = 0) {
  return (static_cast<uint64_t>(kind) << kTimerTagPayloadBits) |
         (payload & kTimerTagPayloadMask);
}

/// Recovers the kind of a packed tag.
template <typename Kind>
constexpr Kind TimerTagKind(uint64_t tag) {
  return static_cast<Kind>(tag >> kTimerTagPayloadBits);
}

/// Recovers the payload of a packed tag.
constexpr uint64_t TimerTagPayload(uint64_t tag) {
  return tag & kTimerTagPayloadMask;
}

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_TIMER_TAG_H_
