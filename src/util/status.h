// Status: lightweight error propagation for fallible library paths.
//
// Modeled on the RocksDB/Arrow Status idiom: functions that can fail return a
// Status (or util::Result<T>) instead of throwing. Internal invariant
// violations use assertions, not Status.

#ifndef PRESTIGE_UTIL_STATUS_H_
#define PRESTIGE_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace prestige {
namespace util {

/// Error taxonomy for the PrestigeBFT library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller passed a malformed value.
  kNotFound,           ///< Lookup target does not exist.
  kAlreadyExists,      ///< Insert target already present.
  kCorruption,         ///< Persistent/ledger structure failed validation.
  kInvalidSignature,   ///< A signature or quorum certificate failed to verify.
  kStaleView,          ///< Message belongs to a lower view than ours.
  kInvalidProtocol,    ///< Message violates the protocol state machine.
  kTimedOut,           ///< Operation exceeded its deadline.
  kAborted,            ///< Operation was cancelled (e.g. higher view seen).
  kUnavailable,        ///< Transient inability to serve (e.g. not leader).
  kInternal,           ///< Bug or unclassified failure.
};

/// Returns a human-readable name for a status code ("Ok", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional detail message.
///
/// Cheap to copy in the OK case (no allocation). Use the factory functions
/// (`Status::OK()`, `Status::InvalidArgument("...")`, ...) to construct.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidSignature(std::string msg) {
    return Status(StatusCode::kInvalidSignature, std::move(msg));
  }
  static Status StaleView(std::string msg) {
    return Status(StatusCode::kStaleView, std::move(msg));
  }
  static Status InvalidProtocol(std::string msg) {
    return Status(StatusCode::kInvalidProtocol, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidSignature() const {
    return code_ == StatusCode::kInvalidSignature;
  }
  bool IsStaleView() const { return code_ == StatusCode::kStaleView; }
  bool IsInvalidProtocol() const {
    return code_ == StatusCode::kInvalidProtocol;
  }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }
  bool operator!=(const Status& other) const { return code_ != other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace util
}  // namespace prestige

/// Propagates a non-OK Status to the caller (RocksDB-style early return).
#define PRESTIGE_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::prestige::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                        \
  } while (0)

#endif  // PRESTIGE_UTIL_STATUS_H_
