// SmallBitset: a compact dynamic bitset with explicit bound checks.
//
// Replaces the previous __uint128_t ack-mask idiom in the client's
// reply-quorum matcher, which silently capped deployments at 128 replicas
// and compiled only on GCC/Clang. Word storage grows to the declared
// capacity; indices at or beyond the capacity are rejected (reported to the
// caller) instead of being truncated into an aliased bit.

#ifndef PRESTIGE_UTIL_BITSET_H_
#define PRESTIGE_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prestige {
namespace util {

/// Fixed-capacity bitset sized at construction (capacity checked on every
/// access, no silent modulo/truncation).
class SmallBitset {
 public:
  SmallBitset() = default;
  explicit SmallBitset(size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  size_t capacity() const { return capacity_; }
  size_t count() const { return count_; }

  /// True when `index` is within capacity and set.
  bool Test(size_t index) const {
    if (index >= capacity_) return false;
    return (words_[index / 64] >> (index % 64)) & 1u;
  }

  /// Sets `index`; returns false (and changes nothing) when the bit was
  /// already set OR the index is out of bounds. Callers that must
  /// distinguish the two cases check InBounds() first.
  bool TestAndSet(size_t index) {
    if (index >= capacity_) return false;
    uint64_t& word = words_[index / 64];
    const uint64_t bit = uint64_t{1} << (index % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++count_;
    return true;
  }

  bool InBounds(size_t index) const { return index < capacity_; }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
    count_ = 0;
  }

 private:
  size_t capacity_ = 0;
  size_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_BITSET_H_
