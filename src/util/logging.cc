#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace prestige {
namespace util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace util
}  // namespace prestige
