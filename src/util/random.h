// Deterministic pseudo-random number generation.
//
// Every stochastic component of the system (network latency sampling,
// timeout randomization, PoW iteration counts, client behaviour) owns an Rng
// seeded from a single experiment seed, making every run reproducible.

#ifndef PRESTIGE_UTIL_RANDOM_H_
#define PRESTIGE_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace prestige {
namespace util {

/// xoshiro256** PRNG (Blackman & Vigna) seeded via SplitMix64.
///
/// Fast, high-quality, and — unlike std::mt19937 distributions — fully
/// specified here, so sampled values are identical across standard libraries.
class Rng {
 public:
  /// Seeds the four lanes of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& lane : state_) {
      lane = SplitMix64(&x);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded sampling (biased tail negligible
    // for the bounds used here; determinism is what matters).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(NextUint64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextBounded(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Normal sample via Box-Muller (mean `mu`, stddev `sigma`).
  double NextNormal(double mu, double sigma) {
    // Avoid log(0).
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mu + sigma * mag * std::cos(2.0 * M_PI * u2);
  }

  /// Exponential sample with mean `mean`.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Number of Bernoulli(p) trials up to and including the first success.
  ///
  /// Sampled in closed form (inverse CDF), so it works for astronomically
  /// small p (e.g. PoW difficulty 2^-64) without iterating. Result is
  /// clamped to [1, 2^62] to stay within integral virtual time.
  double NextGeometricTrials(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 1.0;
    double u = NextDouble();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    const double trials = std::ceil(std::log(u) / std::log1p(-p));
    const double kMax = 4.6116860184273879e18;  // 2^62
    if (trials < 1.0) return 1.0;
    if (trials > kMax) return kMax;
    return trials;
  }

  /// Derives an independent child generator; used to give each component
  /// (per replica, per link, per client) its own stream.
  Rng Fork() { return Rng(NextUint64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_RANDOM_H_
