// Streaming statistics used by the experiment harness and reputation engine.

#ifndef PRESTIGE_UTIL_STATS_H_
#define PRESTIGE_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace prestige {
namespace util {

/// Online mean / population standard deviation (Welford's algorithm).
///
/// The reputation mechanism's Eq. 3 uses the *population* stddev of the
/// penalty set P (validated against the paper's numeric examples).
class OnlineStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by N, not N-1).
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Collects raw samples and answers percentile queries. Used for client
/// latency reporting (the paper reports mean/steady-state latencies).
class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted sample set.
  double Percentile(double p) {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  /// Appends every sample of `other`. Percentiles over the merged set are
  /// exact (raw samples, not bucket approximations) — this is how the
  /// harness combines per-pool latency histograms into a cluster-wide view.
  void MergeFrom(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  void Reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Buckets event counts into fixed-width windows of virtual time.
///
/// Used for the availability / throughput-recovery timelines (Figs. 11, 14):
/// each commit increments the window covering its commit time.
class WindowedCounter {
 public:
  explicit WindowedCounter(DurationMicros window) : window_(window) {}

  void Add(TimeMicros t, int64_t count = 1) {
    const size_t idx = static_cast<size_t>(t / window_);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    buckets_[idx] += count;
  }

  DurationMicros window() const { return window_; }
  const std::vector<int64_t>& buckets() const { return buckets_; }

  int64_t Total() const {
    int64_t sum = 0;
    for (int64_t b : buckets_) sum += b;
    return sum;
  }

  /// Fraction of windows in [0, horizon) with at least `threshold` events —
  /// the availability metric of Fig. 14.
  double AvailableFraction(TimeMicros horizon, int64_t threshold = 1) const {
    const size_t n = static_cast<size_t>(horizon / window_);
    if (n == 0) return 0.0;
    size_t live = 0;
    for (size_t i = 0; i < n; ++i) {
      const int64_t v = i < buckets_.size() ? buckets_[i] : 0;
      if (v >= threshold) ++live;
    }
    return static_cast<double>(live) / static_cast<double>(n);
  }

 private:
  DurationMicros window_;
  std::vector<int64_t> buckets_;
};

}  // namespace util
}  // namespace prestige

#endif  // PRESTIGE_UTIL_STATS_H_
