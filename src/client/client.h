// client::Client — the embeddable BFT client library.
//
// One Client is one client session (a `pool` in the transaction id space)
// that can keep any number of commands in flight. It is layered only on
// runtime::Env, so the same implementation drives PrestigeBFT, HotStuff,
// and SBFT on both the deterministic simulator (runtime::SimEnv) and the
// real-time threaded backend (runtime::ThreadedRuntime).
//
// Protocol per request (§4.3 / §4.2.1 of the paper, with results):
//   * Submit assigns the next client_seq and broadcasts the command to all
//     replicas (batched within `aggregation_window`);
//   * replies (types::ClientReply) carry each replica's execution result;
//     the request completes when f+1 distinct replicas report the SAME
//     result digest — divergent digests are counted as result mismatches
//     and never complete a request;
//   * an unanswered request is retransmitted after `retransmit_after`, and
//     escalated with a ClientComplaint broadcast after `request_timeout`
//     (repeating every timeout) — the complaint feeds the replicas'
//     failure-detection path and, for already-committed requests, re-serves
//     the cached reply from their session tables.
//
// Threading: Submit()/Flush() are loop-context calls — legal only from
// this node's own callbacks (OnStart / completion callbacks / timers).
// SubmitAsync() and the blocking Call() are thread-safe: they marshal the
// command onto the owning event loop through a loopback self-send, which
// is how an embedder on ThreadedRuntime drives the cluster from ordinary
// threads. (On the simulator there is no foreign thread, so sim code uses
// Submit directly.)

#ifndef PRESTIGE_CLIENT_CLIENT_H_
#define PRESTIGE_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "app/service.h"
#include "runtime/env.h"
#include "types/adversary.h"
#include "types/client_messages.h"
#include "types/ids.h"
#include "types/transaction.h"
#include "util/bitset.h"
#include "util/stats.h"

namespace prestige {
namespace client {

/// Client session parameters.
struct ClientConfig {
  types::ClientPoolId client_id = 0;  ///< Session id (transaction `pool`).
  /// Consensus group this session is bound to. A sharded embedder runs one
  /// Client per group (SetReplicas with that group's replica set); every
  /// transaction it submits is stamped with this id. 0 when unsharded.
  types::GroupId group = 0;
  uint32_t f = 1;                     ///< Reply quorum is f+1 matching.
  uint32_t payload_size = 32;         ///< Modelled bytes per command.
  /// Rebroadcast an unanswered proposal after this long.
  util::DurationMicros retransmit_after = util::Millis(500);
  /// Escalate to a ClientComplaint after this long (then every timeout).
  util::DurationMicros request_timeout = util::Seconds(1);
  /// Commands submitted within one window ride one ClientBatch.
  util::DurationMicros aggregation_window = util::Millis(1);
  /// Period of the retransmit / complaint scan.
  util::DurationMicros retry_scan_period = util::Millis(200);
};

/// Outcome of one submitted command.
struct SubmitResult {
  app::ExecStatus status = app::ExecStatus::kOk;
  std::vector<uint8_t> result;     ///< Opaque result (f+1-matched).
  types::SeqNum height = 0;        ///< Block height it committed at.
  util::DurationMicros latency = 0;
  bool timed_out = false;          ///< Only set by the blocking Call().
};

using SubmitCallback = std::function<void(const SubmitResult&)>;

/// Client-observed counters.
struct ClientStats {
  int64_t completed = 0;          ///< Requests with an f+1 reply quorum.
  int64_t replies_received = 0;   ///< Reply entries matched to a request.
  int64_t duplicate_replies = 0;  ///< Same replica re-acking same digest.
  int64_t result_mismatches = 0;  ///< Conflicting result digests seen.
  int64_t retransmissions = 0;
  int64_t complaints_sent = 0;
  int64_t expired = 0;            ///< Requests abandoned at their deadline.
};

/// Internal marshal message for SubmitAsync/Call: carries the command (and
/// its completion) from a foreign thread onto the owning event loop via a
/// loopback self-send. Never leaves the local node.
struct SubmitRequestMsg : public runtime::NetMessage {
  std::vector<uint8_t> command;
  SubmitCallback done;
  util::DurationMicros expire_after = 0;

  size_t WireSize() const override { return command.size() + 72; }
  const char* Name() const override { return "ClientSubmit"; }
};

/// The client session node.
class Client : public runtime::Node {
 public:
  explicit Client(ClientConfig config);
  ~Client() override = default;

  /// Node ids of all replicas (proposals and complaints are broadcast).
  void SetReplicas(std::vector<runtime::NodeId> replicas);

  /// Installs an active-adversary policy (harness wiring only; nullptr =
  /// honest, the default). A spam-scripted client broadcasts bogus
  /// complaints about never-submitted transactions on every retry scan.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    adversary_ = adversary;
  }

  /// Submits one command from loop context (this node's own callbacks).
  /// Returns the assigned client_seq. `done` fires on completion — or,
  /// when `expire_after` > 0 and the deadline passes first, with
  /// `timed_out` set, after which the request is abandoned (no further
  /// retransmission or complaints). 0 = retry until completion.
  uint64_t Submit(std::vector<uint8_t> command, SubmitCallback done,
                  util::DurationMicros expire_after = 0);

  /// Thread-safe submit: marshals onto the owning event loop. For
  /// embedders on the threaded backend.
  void SubmitAsync(std::vector<uint8_t> command, SubmitCallback done,
                   util::DurationMicros expire_after = 0);

  /// Blocking convenience for the threaded backend: submits and waits for
  /// the f+1-matched result (or `wait_limit`, returning timed_out). Must
  /// NOT be called from this node's own event loop.
  SubmitResult Call(std::vector<uint8_t> command,
                    util::DurationMicros wait_limit = util::Seconds(30));

  /// Sends the aggregation buffer now instead of waiting for the window.
  void Flush();

  // runtime::Node interface.
  void OnStart() override;
  void OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) override;
  void OnTimer(uint64_t tag) override;

  const ClientConfig& config() const { return config_; }
  const ClientStats& stats() const { return stats_; }
  /// Completed-request latencies in milliseconds.
  util::Histogram& latencies() { return latencies_; }
  size_t outstanding() const { return pending_.size(); }

 private:
  enum TimerTag : uint64_t { kFlush = 1, kRetryScan = 2 };
  // Shared 48-bit tag packing (util/timer_tag.h).
  static uint64_t Tag(TimerTag kind) { return util::PackTimerTag(kind, 0); }
  static TimerTag TagKind(uint64_t tag) {
    return util::TimerTagKind<TimerTag>(tag);
  }

  /// Reply votes for one result digest.
  struct DigestVotes {
    util::SmallBitset replicas;       ///< Who reported this digest.
    types::ReplyEntry first;          ///< Representative entry (result bytes).
    types::SeqNum height = 0;
  };

  struct Pending {
    types::Transaction tx;
    SubmitCallback done;
    util::TimeMicros last_send = 0;
    util::TimeMicros last_complaint = 0;
    util::TimeMicros expire_at = 0;  ///< 0 = retry until completion.
    std::unordered_map<uint64_t, DigestVotes> votes;  ///< By result digest.
  };

  void OnReply(runtime::NodeId from, const types::ClientReply& reply);
  void ScanRetries();

  ClientConfig config_;
  /// Active-adversary interposer (nullptr = honest; harness-owned).
  const types::AdversaryPolicy* adversary_ = nullptr;
  /// Content counter for spam complaints (distinct bogus transactions).
  uint64_t spam_seq_ = 0;
  std::vector<runtime::NodeId> replicas_;
  /// Transport node id -> replica index; votes are keyed by the
  /// authenticated sender, never by a claimed id inside the message.
  std::unordered_map<runtime::NodeId, size_t> replica_index_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;  ///< By client_seq.
  std::vector<types::Transaction> pending_send_;
  bool flush_armed_ = false;
  util::Histogram latencies_;
  ClientStats stats_;
};

}  // namespace client
}  // namespace prestige

#endif  // PRESTIGE_CLIENT_CLIENT_H_
