#include "client/client.h"

#include <algorithm>
// The blocking Call() below parks the *caller's* thread on a condition
// variable until the event loop delivers the reply; that wait is wall-clock
// by nature (threaded embedders only) and never runs under the simulator.
#include <chrono>  // lint:allow(determinism: blocking Call waits wall-clock)
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

namespace prestige {
namespace client {

Client::Client(ClientConfig config) : config_(config) {}

void Client::SetReplicas(std::vector<runtime::NodeId> replicas) {
  replicas_ = std::move(replicas);
  replica_index_.clear();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replica_index_[replicas_[i]] = i;
  }
}

void Client::OnStart() {
  SetTimer(config_.retry_scan_period, Tag(kRetryScan));
}

uint64_t Client::Submit(std::vector<uint8_t> command, SubmitCallback done,
                        util::DurationMicros expire_after) {
  types::Transaction tx;
  tx.pool = config_.client_id;
  tx.client_seq = next_seq_++;
  tx.group = config_.group;
  tx.sent_at = Now();
  tx.payload_size = config_.payload_size;
  tx.fingerprint = rng()->NextUint64();
  tx.command = std::move(command);

  Pending pending;
  pending.tx = tx;
  pending.done = std::move(done);
  pending.last_send = tx.sent_at;
  if (expire_after > 0) pending.expire_at = tx.sent_at + expire_after;
  pending_.emplace(tx.client_seq, std::move(pending));

  pending_send_.push_back(std::move(tx));
  if (!flush_armed_) {
    flush_armed_ = true;
    SetTimer(config_.aggregation_window, Tag(kFlush));
  }
  return next_seq_ - 1;
}

void Client::SubmitAsync(std::vector<uint8_t> command, SubmitCallback done,
                         util::DurationMicros expire_after) {
  auto msg = std::make_shared<SubmitRequestMsg>();
  msg->command = std::move(command);
  msg->done = std::move(done);
  msg->expire_after = expire_after;
  Send(id(), std::move(msg));  // Marshal onto the owning event loop.
}

SubmitResult Client::Call(std::vector<uint8_t> command,
                          util::DurationMicros wait_limit) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    SubmitResult result;
  };
  auto state = std::make_shared<SyncState>();
  // The request expires loop-side at the same deadline the caller stops
  // waiting, so an abandoned Call does not retransmit/complain forever.
  SubmitAsync(
      std::move(command),
      [state](const SubmitResult& r) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->result = r;
        state->done = true;
        state->cv.notify_all();
      },
      wait_limit);
  std::unique_lock<std::mutex> lock(state->mu);
  // lint:allow(determinism: caller-side wall-clock timeout, threaded only)
  if (!state->cv.wait_for(lock, std::chrono::microseconds(wait_limit),
                          [&] { return state->done; })) {
    SubmitResult timeout;
    timeout.status = app::ExecStatus::kError;
    timeout.timed_out = true;
    return timeout;
  }
  return state->result;
}

void Client::Flush() {
  if (pending_send_.empty()) return;
  auto batch = std::make_shared<types::ClientBatch>();
  batch->txs = std::move(pending_send_);
  pending_send_.clear();
  Send(replicas_, std::move(batch));
}

void Client::OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (const auto* reply = dynamic_cast<const types::ClientReply*>(msg.get())) {
    OnReply(from, *reply);
    return;
  }
  if (const auto* submit =
          dynamic_cast<const SubmitRequestMsg*>(msg.get())) {
    // Marshalled SubmitAsync arriving on the loop; the message is only ever
    // self-addressed, so consuming its movable fields is safe.
    auto* mutable_submit = const_cast<SubmitRequestMsg*>(submit);
    Submit(std::move(mutable_submit->command),
           std::move(mutable_submit->done), submit->expire_after);
    return;
  }
}

/// Digest of the deterministic "committed, result evicted" reply shape
/// (ExecStatus::kStaleDup). A request answered partly from live caches and
/// partly post-eviction legitimately sees two digests; that split is
/// honest behaviour, not result divergence.
static uint64_t StaleDupDigest() {
  app::Response stale;
  stale.status = app::ExecStatus::kStaleDup;
  return app::ResultDigest(stale);
}

void Client::OnReply(runtime::NodeId from, const types::ClientReply& reply) {
  if (reply.pool != config_.client_id) return;
  // Votes are attributed to the authenticated transport sender; the
  // message's claimed `replica` field is ignored, so one Byzantine
  // replica cannot fabricate a quorum by sending under many ids.
  auto sender = replica_index_.find(from);
  if (sender == replica_index_.end()) return;  // Not a known replica.
  const size_t voter = sender->second;

  for (const types::ReplyEntry& entry : reply.entries) {
    auto it = pending_.find(entry.client_seq);
    if (it == pending_.end()) continue;  // Already completed.
    Pending& pending = it->second;

    // Recompute the digest from the entry's own status/result bytes:
    // honest replicas always satisfy result_digest ==
    // ResultDigest({status, result}), so trusting the wire field would
    // let forged result bytes ride an honest digest into the quorum.
    app::Response reported;
    reported.status = static_cast<app::ExecStatus>(entry.status);
    reported.result = entry.result;
    const uint64_t digest = app::ResultDigest(reported);

    DigestVotes& votes = pending.votes[digest];
    if (votes.replicas.capacity() == 0) {
      // First reply with this digest: remember the representative result
      // and note a divergence if another digest already has votes. The
      // matcher is bounded by the replica id space, checked explicitly —
      // out-of-range indices are dropped, never aliased.
      votes.replicas = util::SmallBitset(
          std::max<size_t>(replicas_.size(), 3 * config_.f + 1));
      votes.first = entry;
      votes.height = reply.n;
      // A stale-dup digest alongside a real one is reply-cache eviction,
      // not divergent execution; only count genuine result conflicts.
      if (pending.votes.size() > 1 && digest != StaleDupDigest() &&
          pending.votes.count(StaleDupDigest()) + 1 <
              pending.votes.size()) {
        ++stats_.result_mismatches;
      }
    }
    if (!votes.replicas.InBounds(voter)) continue;
    if (!votes.replicas.TestAndSet(voter)) {
      ++stats_.duplicate_replies;
      continue;
    }
    ++stats_.replies_received;
    if (votes.replicas.count() < config_.f + 1) continue;

    // f+1 replicas agree on the result digest: the request is complete.
    SubmitResult result;
    result.status = static_cast<app::ExecStatus>(votes.first.status);
    result.result = votes.first.result;
    result.height = votes.height;
    result.latency = Now() - pending.tx.sent_at;
    latencies_.Add(util::ToMillis(result.latency));
    ++stats_.completed;
    SubmitCallback done = std::move(pending.done);
    pending_.erase(it);
    if (done) done(result);  // Closed loops re-Submit from here; Submit
                             // arms the aggregation window itself.
  }
}

void Client::OnTimer(uint64_t tag) {
  switch (TagKind(tag)) {
    case kFlush:
      flush_armed_ = false;
      Flush();
      break;
    case kRetryScan:
      ScanRetries();
      SetTimer(config_.retry_scan_period, Tag(kRetryScan));
      break;
  }
}

void Client::ScanRetries() {
  const util::TimeMicros now = Now();
  // One aggregated batch per scan: after a leader failure whole closed
  // loops go overdue together, and per-request batches would multiply the
  // broadcast load by the outstanding count.
  std::shared_ptr<types::ClientBatch> retransmit;
  // Expiry callbacks run after the scan: one that re-Submits would
  // mutate pending_ mid-iteration.
  std::vector<SubmitCallback> expired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& pending = it->second;
    // Abandon requests past their caller-supplied deadline (Call()
    // timeouts): completing them with timed_out stops the retransmit /
    // complaint churn and bounds pending_.
    if (pending.expire_at != 0 && now >= pending.expire_at) {
      ++stats_.expired;
      if (pending.done) expired.push_back(std::move(pending.done));
      it = pending_.erase(it);
      continue;
    }
    ++it;
    // Retransmit the proposal: replicas treat replays idempotently (their
    // request pools and session tables dedup by (pool, client_seq)).
    if (now - pending.last_send >= config_.retransmit_after) {
      pending.last_send = now;
      ++stats_.retransmissions;
      if (retransmit == nullptr) {
        retransmit = std::make_shared<types::ClientBatch>();
      }
      retransmit->txs.push_back(pending.tx);
    }
    // Escalate: a request past its deadline becomes a complaint (§4.2.1),
    // feeding the replicas' failure-detection path. Replicas that already
    // committed it re-serve the cached reply instead.
    const util::TimeMicros reference = pending.last_complaint == 0
                                           ? pending.tx.sent_at
                                           : pending.last_complaint;
    if (now - reference >= config_.request_timeout) {
      pending.last_complaint = now;
      ++stats_.complaints_sent;
      auto compt = std::make_shared<types::ClientComplaint>();
      compt->tx = pending.tx;
      Send(replicas_, std::move(compt));
    }
  }
  if (retransmit != nullptr) Send(replicas_, std::move(retransmit));
  // Complaint spam: broadcast complaints about transactions that were
  // never submitted. Each bogus complaint invites the replicas to start an
  // inspection — the attack the reputation engine's penalty for failed
  // view changes is meant to price out. Spam client_seqs live far above
  // the real sequence space, so replies (if the spam ever commits) fall
  // through OnReply's unknown-seq filter harmlessly.
  if (adversary_ != nullptr) {
    const uint32_t burst =
        adversary_->ComplaintSpamBurst(config_.client_id, now);
    for (uint32_t i = 0; i < burst; ++i) {
      types::Transaction bogus;
      bogus.pool = config_.client_id;
      bogus.client_seq = (1ull << 40) + ++spam_seq_;
      bogus.group = config_.group;
      bogus.sent_at = now - config_.request_timeout;  // Looks overdue.
      bogus.payload_size = config_.payload_size;
      bogus.fingerprint = bogus.client_seq * 0x9e3779b97f4a7c15ULL;
      auto compt = std::make_shared<types::ClientComplaint>();
      compt->tx = std::move(bogus);
      ++stats_.complaints_sent;
      Send(replicas_, std::move(compt));
    }
  }
  if (!expired.empty()) {
    SubmitResult timeout;
    timeout.status = app::ExecStatus::kError;
    timeout.timed_out = true;
    for (SubmitCallback& done : expired) done(timeout);
  }
}

}  // namespace client
}  // namespace prestige
