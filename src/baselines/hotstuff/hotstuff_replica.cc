#include "baselines/hotstuff/hotstuff_replica.h"

#include <algorithm>
#include <cassert>

namespace prestige {
namespace baselines {
namespace hotstuff {

const char* HsPhaseName(HsPhase phase) {
  switch (phase) {
    case HsPhase::kPrepare:
      return "prepare";
    case HsPhase::kPreCommit:
      return "pre-commit";
    case HsPhase::kCommit:
      return "commit";
    case HsPhase::kDecide:
      return "decide";
  }
  return "?";
}

crypto::Sha256Digest HsVoteDigest(HsPhase phase, types::View v,
                                  types::SeqNum n,
                                  const crypto::Sha256Digest& block_digest) {
  types::HashingEncoder enc("hs-vote");
  enc.PutU8(static_cast<uint8_t>(phase)).PutI64(v).PutI64(n).PutDigest(
      block_digest);
  return enc.Digest();
}

HotStuffReplica::HotStuffReplica(HotStuffConfig config, types::ReplicaId id,
                                 const crypto::KeyStore* keys,
                                 types::FaultSpec fault)
    : config_(config),
      id_(id),
      keys_(keys),
      signer_(keys, id),
      fault_(fault),
      delivery_(id) {}

void HotStuffReplica::SetTopology(std::vector<runtime::NodeId> replicas,
                                  std::vector<runtime::NodeId> clients) {
  replicas_ = std::move(replicas);
  clients_ = std::move(clients);
}

void HotStuffReplica::SetService(std::unique_ptr<app::Service> service) {
  delivery_.SetService(std::move(service));
}

uint64_t HotStuffReplica::TxKey(const types::Transaction& tx) {
  return static_cast<uint64_t>(tx.pool) * 0x9e3779b97f4a7c15ULL ^
         tx.client_seq * 0xc2b2ae3d27d4eb4fULL;
}

std::vector<runtime::NodeId> HotStuffReplica::PeerActors() const {
  std::vector<runtime::NodeId> peers;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<types::ReplicaId>(i) != id_) peers.push_back(replicas_[i]);
  }
  return peers;
}

bool HotStuffReplica::QuietActive() const {
  if (Now() < fault_.start_at) return false;
  if (fault_.type == types::FaultType::kQuiet) return true;
  if (fault_.type == types::FaultType::kRepeatedVc && IsLeader() &&
      fault_.as_leader == types::LeaderMisbehaviour::kQuiet) {
    return true;
  }
  return false;
}

bool HotStuffReplica::EquivocateActive() const {
  if (Now() < fault_.start_at) return false;
  if (fault_.type == types::FaultType::kEquivocate) return true;
  if (fault_.type == types::FaultType::kRepeatedVc && IsLeader() &&
      fault_.as_leader == types::LeaderMisbehaviour::kEquivocate) {
    return true;
  }
  return false;
}

void HotStuffReplica::GuardedSend(runtime::NodeId to, runtime::MessagePtr msg) {
  if (QuietActive()) return;
  Send(to, std::move(msg));
}

void HotStuffReplica::GuardedSend(const std::vector<runtime::NodeId>& to,
                                  runtime::MessagePtr msg) {
  if (QuietActive()) return;
  Send(to, std::move(msg));
}

crypto::Signature HotStuffReplica::SignMaybeCorrupt(
    const crypto::Sha256Digest& digest) {
  crypto::Signature sig = signer_.Sign(digest);
  if (EquivocateActive()) sig.mac[0] ^= 0xff;
  return sig;
}

void HotStuffReplica::OnStart() {
  view_ = 1;
  have_newview_quorum_ = true;  // View 1 starts by convention.
  if (IsLeader()) {
    ++metrics_.views_led;
    metrics_.last_led_at = Now();
  }
  ArmViewTimer();
  if (config_.rotation_period > 0) {
    rotation_timer_ = SetTimer(
        config_.rotation_period + rng()->NextInRange(0, util::Millis(100)),
        Tag(kRotationTimer));
  }
  if (fault_.type == types::FaultType::kEquivocate) {
    SetTimer(util::Millis(50), Tag(kNoiseTimer));
  }
}

void HotStuffReplica::ArmViewTimer() {
  if (view_timer_ != 0) CancelTimer(view_timer_);
  util::DurationMicros timeout = config_.view_timeout;
  for (int i = 0; i < consecutive_failures_ && i < 8; ++i) timeout *= 2;
  timeout = std::min(timeout, config_.max_view_timeout);
  view_timer_ = SetTimer(timeout, Tag(kViewTimer));
}

void HotStuffReplica::OnTimer(uint64_t tag) {
  if (fault_.type == types::FaultType::kCrash && fault_.start_at > 0 &&
      Now() >= fault_.start_at) {
    return;
  }
  switch (TagKind(tag)) {
    case kViewTimer:
      view_timer_ = 0;
      // The passive pacemaker: leader failed; blindly rotate to the next
      // scheduled server — it may itself be unavailable (the weakness the
      // paper's Figure 1 illustrates).
      ++consecutive_failures_;
      ++metrics_.view_changes_started;
      AdvanceView(/*failed=*/true);
      break;
    case kRotationTimer:
      rotation_timer_ = 0;
      if (config_.rotation_period > 0) {
        AdvanceView(/*failed=*/false);
        rotation_timer_ =
            SetTimer(config_.rotation_period +
                         rng()->NextInRange(0, util::Millis(100)),
                     Tag(kRotationTimer));
      }
      break;
    case kBatchTimer:
      batch_timer_ = 0;
      MaybePropose(/*allow_partial=*/true);
      break;
    case kNoiseTimer:
      if (EquivocateActive()) {
        auto noise = std::make_shared<core::NoiseMsg>();
        noise->bytes = 2048;
        Send(PeerActors(), noise);
      }
      if (fault_.type == types::FaultType::kEquivocate) {
        SetTimer(util::Millis(50), Tag(kNoiseTimer));
      }
      break;
  }
}

void HotStuffReplica::AdvanceView(bool failed) {
  EnterView(view_ + 1, failed);
  auto nv = std::make_shared<HsNewViewMsg>();
  nv->v = view_;
  nv->latest_n = store_.LatestTxSeq();
  nv->sig = SignMaybeCorrupt(ledger::ConfDigest(view_));
  GuardedSend(ActorOf(current_leader()), nv);
}

void HotStuffReplica::EnterView(types::View v, bool failed) {
  view_ = v;
  if (!failed) consecutive_failures_ = 0;
  proposal_active_ = false;
  // Pending bodies survive the rotation: the vote binding refuses
  // conflicting bodies at their sequences, so the next leader re-proposes
  // the inherited body instead of a fresh batch.
  ArmViewTimer();
  if (IsLeader()) {
    ++metrics_.elections_won;  // "Elected" by schedule.
    ++metrics_.views_led;
    metrics_.last_led_at = Now();
    MaybePropose(/*allow_partial=*/true);
  }
}

void HotStuffReplica::EnqueueTx(const types::Transaction& tx) {
  const uint64_t key = TxKey(tx);
  if (committed_tx_keys_.count(key) > 0) return;
  if (!pending_keys_.insert(key).second) return;
  pending_txs_.push_back(tx);
}

void HotStuffReplica::MaybePropose(bool allow_partial) {
  if (!IsLeader() || proposal_active_) return;
  // Slow/selective leader: hold the view without proposing. The passive
  // pacemaker only recovers via view timeouts — the churn PrestigeBFT's
  // complaint-driven inspection avoids charging to honest replicas.
  if (AdversaryWedged()) return;
  const types::SeqNum next = store_.LatestTxSeq() + 1;
  // Inherited in-flight body first: peers vote-bound to a body at the next
  // sequence refuse anything else there, so a new leader re-proposes the
  // body it saw instead of composing a fresh batch. If we are bound at
  // `next` but no longer hold the matching body, stand down *before*
  // consuming the request pool — until the schedule reaches a leader that
  // still has it.
  auto inherited = pending_blocks_.find(next);
  auto bound = vote_bound_.find(next);
  if (bound != vote_bound_.end() &&
      (inherited == pending_blocks_.end() ||
       inherited->second.Digest() != bound->second)) {
    return;
  }
  std::vector<types::Transaction> batch;
  if (inherited != pending_blocks_.end()) {
    batch = inherited->second.txs();
  } else {
    if (pending_txs_.empty()) return;
    if (pending_txs_.size() < config_.batch_size && !allow_partial) {
      if (batch_timer_ == 0) {
        batch_timer_ = SetTimer(config_.batch_wait, Tag(kBatchTimer));
      }
      return;
    }
    batch.reserve(std::min(pending_txs_.size(), config_.batch_size));
    while (!pending_txs_.empty() && batch.size() < config_.batch_size) {
      types::Transaction tx = pending_txs_.front();
      pending_txs_.pop_front();
      pending_keys_.erase(TxKey(tx));
      if (committed_tx_keys_.count(TxKey(tx)) > 0) continue;
      batch.push_back(std::move(tx));
    }
  }
  if (batch.empty()) return;

  proposal_active_ = true;
  current_block_ = ledger::TxBlock{};
  current_block_.v = view_;
  current_block_.set_n(next);
  current_block_.set_prev_hash(store_.LatestTxDigest());
  current_block_.set_txs(std::move(batch));
  current_block_.status.assign(current_block_.BatchSize(), 1);

  const crypto::Sha256Digest digest = current_block_.Digest();
  // The leader's own prepare vote binds it like any follower's. (A bound
  // conflict is impossible here: the stand-down above covered it, and an
  // inherited body reproduces the bound digest — TxBlock digests exclude
  // the view.)
  vote_bound_.emplace(current_block_.n(), digest);
  const crypto::Sha256Digest vote_digest =
      HsVoteDigest(HsPhase::kPrepare, view_, current_block_.n(), digest);
  collect_phase_ = HsPhase::kPrepare;
  vote_builder_ = crypto::QuorumCertBuilder(vote_digest, config_.quorum());
  vote_builder_.Add(signer_.Sign(vote_digest), vote_digest);

  auto proposal = std::make_shared<HsProposalMsg>();
  proposal->v = view_;
  proposal->block = current_block_;
  proposal->sig = SignMaybeCorrupt(vote_digest);
  if (adversary_ == nullptr) {
    GuardedSend(PeerActors(), proposal);
    return;
  }
  // Equivocating leader: conflicting, properly signed bodies per follower
  // group (variant 0 = the canonical body the leader's own vote covers).
  std::map<uint32_t, std::shared_ptr<HsProposalMsg>> variants;
  variants.emplace(0u, proposal);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const auto dest = static_cast<types::ReplicaId>(i);
    if (dest == id_) continue;
    const uint32_t variant = adversary_->ProposalVariant(id_, dest, Now());
    auto vit = variants.find(variant);
    if (vit == variants.end()) {
      auto forged = std::make_shared<HsProposalMsg>();
      forged->v = view_;
      forged->block = current_block_;
      std::vector<types::Transaction> txs = forged->block.release_txs();
      for (types::Transaction& tx : txs) {
        tx.fingerprint ^= 0x9e3779b97f4a7c15ULL * variant;
      }
      forged->block.set_txs(std::move(txs));
      forged->sig = SignMaybeCorrupt(
          HsVoteDigest(HsPhase::kPrepare, view_, forged->block.n(),
                       forged->block.Digest()));
      vit = variants.emplace(variant, std::move(forged)).first;
    }
    GuardedSend(replicas_[i], vit->second);
  }
}

void HotStuffReplica::OnProposal(runtime::NodeId from, const HsProposalMsg& msg,
                                 const HsProposalMsg::Verified* pre) {
  if (msg.v < view_) return;
  if (msg.v > view_) {
    // The cluster moved on; adopt the higher view (passive schedule makes
    // the leader identity implicit in the view number).
    EnterView(msg.v, /*failed=*/false);
  }
  if (IsLeader() || from != ActorOf(current_leader())) return;
  if (msg.block.n() <= store_.LatestTxSeq()) return;  // Stale proposal.
  if (msg.block.n() > store_.LatestTxSeq() + 1) {
    // Links are not FIFO: this proposal overtook the previous decide.
    // Fetch the gap; ordering is enforced when blocks are decided.
    auto req = std::make_shared<core::SyncReqMsg>();
    req->kind = core::SyncReqMsg::Kind::kTxBlocks;
    req->after = store_.LatestTxSeq();
    req->up_to = msg.block.n() - 1;
    GuardedSend(from, req);
  }
  const crypto::Sha256Digest digest =
      pre != nullptr ? pre->block_digest : msg.block.Digest();
  // Vote binding: never back a second body at a sequence we already voted
  // for (commit quorums need 2f+1 votes, so this keeps at most one
  // certifiable body per sequence across view rotations).
  auto bound = vote_bound_.find(msg.block.n());
  if (bound != vote_bound_.end() && bound->second != digest) return;
  const crypto::Sha256Digest vote_digest =
      pre != nullptr
          ? pre->vote_digest
          : HsVoteDigest(HsPhase::kPrepare, msg.v, msg.block.n(), digest);
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(msg.sig, vote_digest);
  if (!sig_ok || msg.sig.signer != current_leader()) {
    ++metrics_.invalid_messages;
    return;
  }
  vote_bound_.emplace(msg.block.n(), digest);
  pending_blocks_[msg.block.n()] = msg.block;

  if (AdversaryWithholds(ReplicaIndexOf(from))) {  // Starve the prepare QC.
    ArmViewTimer();
    consecutive_failures_ = 0;
    return;
  }

  auto vote = std::make_shared<HsVoteMsg>();
  vote->v = msg.v;
  vote->phase = HsPhase::kPrepare;
  vote->n = msg.block.n();
  vote->block_digest = digest;
  vote->partial = SignMaybeCorrupt(vote_digest);
  GuardedSend(from, vote);
  ArmViewTimer();
  consecutive_failures_ = 0;
}

void HotStuffReplica::OnVote(runtime::NodeId from, const HsVoteMsg& msg) {
  (void)from;
  if (!IsLeader() || !proposal_active_ || msg.v != view_ ||
      msg.n != current_block_.n() || msg.phase != collect_phase_) {
    return;
  }
  const crypto::Sha256Digest expected = vote_builder_.digest();
  if (!keys_->Verify(msg.partial, expected)) {
    ++metrics_.invalid_messages;
    return;
  }
  vote_builder_.Add(msg.partial, expected);
  if (!vote_builder_.Complete()) return;

  const crypto::QuorumCert qc = vote_builder_.Build();
  const crypto::Sha256Digest digest = current_block_.Digest();

  if (collect_phase_ == HsPhase::kPrepare) {
    current_block_.ordering_qc = qc;  // prepareQC.
  } else if (collect_phase_ == HsPhase::kCommit) {
    current_block_.commit_qc = qc;  // commitQC.
  }

  if (collect_phase_ == HsPhase::kCommit) {
    // Decision reached: append, notify, broadcast Decide, next proposal.
    auto decide = std::make_shared<HsPhaseMsg>();
    decide->v = view_;
    decide->phase = HsPhase::kDecide;
    decide->n = current_block_.n();
    decide->block_digest = digest;
    decide->justify = qc;
    decide->sig = SignMaybeCorrupt(
        HsVoteDigest(HsPhase::kDecide, view_, current_block_.n(), digest));
    GuardedSend(PeerActors(), decide);

    proposal_active_ = false;
    DecideBlock(current_block_);
    MaybePropose(/*allow_partial=*/true);
    return;
  }

  // Advance to the next phase: pre-commit after prepare, commit after
  // pre-commit (the third phase PrestigeBFT does not need).
  const HsPhase next_phase = collect_phase_ == HsPhase::kPrepare
                                 ? HsPhase::kPreCommit
                                 : HsPhase::kCommit;
  auto phase_msg = std::make_shared<HsPhaseMsg>();
  phase_msg->v = view_;
  phase_msg->phase = next_phase;
  phase_msg->n = current_block_.n();
  phase_msg->block_digest = digest;
  phase_msg->justify = qc;
  phase_msg->sig = SignMaybeCorrupt(
      HsVoteDigest(next_phase, view_, current_block_.n(), digest));

  collect_phase_ = next_phase;
  const crypto::Sha256Digest next_digest =
      HsVoteDigest(next_phase, view_, current_block_.n(), digest);
  vote_builder_ = crypto::QuorumCertBuilder(next_digest, config_.quorum());
  vote_builder_.Add(signer_.Sign(next_digest), next_digest);

  GuardedSend(PeerActors(), phase_msg);
}

void HotStuffReplica::OnPhase(runtime::NodeId from, const HsPhaseMsg& msg,
                              const HsPhaseMsg::Verified* pre) {
  if (msg.v != view_ || IsLeader() || from != ActorOf(current_leader())) {
    return;
  }
  // Justify QC certifies the previous phase. This is the per-message
  // bottleneck (quorum-many signature checks), so the threaded backend's
  // prologue precomputes the verdict off the loop thread.
  const bool justify_ok =
      pre != nullptr
          ? pre->justify_ok
          : [&]() {
              const HsPhase prev_phase =
                  msg.phase == HsPhase::kPreCommit
                      ? HsPhase::kPrepare
                      : (msg.phase == HsPhase::kCommit ? HsPhase::kPreCommit
                                                       : HsPhase::kCommit);
              return crypto::VerifyQuorumCert(
                         *keys_, msg.justify,
                         HsVoteDigest(prev_phase, msg.v, msg.n,
                                      msg.block_digest),
                         config_.quorum())
                  .ok();
            }();
  if (!justify_ok) {
    ++metrics_.invalid_messages;
    return;
  }

  if (msg.phase == HsPhase::kDecide) {
    auto it = pending_blocks_.find(msg.n);
    if (it == pending_blocks_.end()) return;
    if (it->second.Digest() != msg.block_digest) {
      ++metrics_.invalid_messages;
      return;
    }
    ledger::TxBlock block = std::move(it->second);
    pending_blocks_.erase(it);
    block.commit_qc = msg.justify;
    DecideBlock(std::move(block));
    return;
  }

  // Vote for this phase (binding: refuse conflicting bodies at this n).
  auto bound = vote_bound_.find(msg.n);
  if (bound != vote_bound_.end() && bound->second != msg.block_digest) {
    return;
  }
  vote_bound_.emplace(msg.n, msg.block_digest);
  if (AdversaryWithholds(ReplicaIndexOf(from))) {  // Starve the phase QC.
    ArmViewTimer();
    return;
  }
  auto vote = std::make_shared<HsVoteMsg>();
  vote->v = msg.v;
  vote->phase = msg.phase;
  vote->n = msg.n;
  vote->block_digest = msg.block_digest;
  vote->partial = SignMaybeCorrupt(
      HsVoteDigest(msg.phase, msg.v, msg.n, msg.block_digest));
  GuardedSend(from, vote);
  ArmViewTimer();
}

void HotStuffReplica::OnNewView(runtime::NodeId from, const HsNewViewMsg& msg) {
  (void)from;
  if (msg.v <= view_) return;
  // Enough of the cluster moved to a higher view; follow along so the
  // schedule stays roughly synchronized. (Basic pacemaker: any NewView from
  // a higher view triggers adoption; safety is QC-based, not view-based.)
  if (msg.v == view_ + 1) {
    EnterView(msg.v, /*failed=*/false);
  }
}

void HotStuffReplica::DecideBlock(ledger::TxBlock block) {
  if (block.n() <= store_.LatestTxSeq()) return;
  if (block.n() > store_.LatestTxSeq() + 1) {
    buffered_commits_[block.n()] = std::move(block);
    return;
  }
  for (const types::Transaction& tx : block.txs()) {
    committed_tx_keys_.insert(TxKey(tx));
  }
  metrics_.committed_txs += static_cast<int64_t>(block.txs().size());
  ++metrics_.committed_blocks;
  metrics_.commit_timeline.Add(Now(), static_cast<int64_t>(block.txs().size()));
  // Shared commit-delivery path: exactly-once execution + result replies.
  ledger::TxBlock to_execute = block;
  if (AdversaryTampers()) {
    // Forged replies: execute a tampered copy so local application state
    // diverges and the reported results are forged (see core/replica.cc).
    std::vector<types::Transaction> txs = to_execute.release_txs();
    for (types::Transaction& tx : txs) {
      tx.fingerprint ^= 0xf00dfacef00dfaceULL;
      for (uint8_t& b : tx.command) b ^= 0x5a;
    }
    to_execute.set_txs(std::move(txs));
  }
  for (const auto& reply : delivery_.Deliver(to_execute)) {
    if (reply->pool < clients_.size()) {
      GuardedSend(clients_[reply->pool], reply);
    }
  }
  util::Status st = store_.AppendTxBlock(std::move(block));
  assert(st.ok());
  (void)st;
  // Decided sequences release their bindings and pending bodies.
  vote_bound_.erase(vote_bound_.begin(),
                    vote_bound_.upper_bound(store_.LatestTxSeq()));
  pending_blocks_.erase(pending_blocks_.begin(),
                        pending_blocks_.upper_bound(store_.LatestTxSeq()));
  ArmViewTimer();
  consecutive_failures_ = 0;
  // Unblock any buffered successors.
  auto it = buffered_commits_.find(store_.LatestTxSeq() + 1);
  if (it != buffered_commits_.end()) {
    ledger::TxBlock next = std::move(it->second);
    buffered_commits_.erase(it);
    DecideBlock(std::move(next));
  }
}

bool HotStuffReplica::CrashedNow() const {
  return fault_.type == types::FaultType::kCrash && fault_.start_at > 0 &&
         Now() >= fault_.start_at;
}

runtime::Node::VerdictFn HotStuffReplica::PreVerify(
    runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (auto m = std::dynamic_pointer_cast<const HsProposalMsg>(msg)) {
    auto pre = std::make_shared<HsProposalMsg::Verified>();
    pre->block_digest = m->block.Digest();
    pre->vote_digest = HsVoteDigest(HsPhase::kPrepare, m->v, m->block.n(),
                                    pre->block_digest);
    pre->sig_ok = keys_->Verify(m->sig, pre->vote_digest);
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnProposal(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const HsPhaseMsg>(msg)) {
    auto pre = std::make_shared<HsPhaseMsg::Verified>();
    const HsPhase prev_phase =
        m->phase == HsPhase::kPreCommit
            ? HsPhase::kPrepare
            : (m->phase == HsPhase::kCommit ? HsPhase::kPreCommit
                                            : HsPhase::kCommit);
    pre->justify_ok =
        crypto::VerifyQuorumCert(
            *keys_, m->justify,
            HsVoteDigest(prev_phase, m->v, m->n, m->block_digest),
            config_.quorum())
            .ok();
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnPhase(from, *m, pre.get());
    };
  }
  (void)from;
  return nullptr;  // Votes, NewView, client and sync traffic: no split.
}

void HotStuffReplica::OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (CrashedNow()) {
    return;
  }
  if (auto* m = dynamic_cast<const types::ClientBatch*>(msg.get())) {
    for (const types::Transaction& tx : m->txs) EnqueueTx(tx);
    MaybePropose(/*allow_partial=*/false);
    return;
  }
  if (auto* m =
          dynamic_cast<const types::ClientComplaint*>(msg.get())) {
    ++metrics_.complaints_received;
    if (committed_tx_keys_.count(TxKey(m->tx)) > 0) {
      // Already committed; the client missed the replies. Re-serve the
      // cached execution result from the session table (same recovery
      // path as PrestigeBFT's complaint handler).
      if (m->tx.pool < clients_.size()) {
        GuardedSend(clients_[m->tx.pool], delivery_.ReplyFor(m->tx, view_));
      }
      return;
    }
    EnqueueTx(m->tx);
    MaybePropose(/*allow_partial=*/true);
    return;
  }
  if (auto* m = dynamic_cast<const HsProposalMsg*>(msg.get())) {
    OnProposal(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const HsVoteMsg*>(msg.get())) {
    OnVote(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const HsPhaseMsg*>(msg.get())) {
    OnPhase(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const HsNewViewMsg*>(msg.get())) {
    OnNewView(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const core::SyncReqMsg*>(msg.get())) {
    auto resp = std::make_shared<core::SyncRespMsg>();
    resp->tx_blocks = store_.TxBlocksAfter(m->after, m->up_to);
    if (!resp->tx_blocks.empty()) GuardedSend(from, resp);
    return;
  }
  if (auto* m = dynamic_cast<const core::SyncRespMsg*>(msg.get())) {
    for (const ledger::TxBlock& block : m->tx_blocks) {
      if (block.n() == store_.LatestTxSeq() + 1) {
        DecideBlock(block);
      }
    }
    return;
  }
  if (dynamic_cast<const core::NoiseMsg*>(msg.get()) != nullptr) {
    // Attack traffic; cost already charged by the network model.
  }
}

}  // namespace baselines
}  // namespace hotstuff
}  // namespace prestige
