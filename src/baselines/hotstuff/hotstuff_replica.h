// Basic (non-chained) HotStuff baseline with a passive view-change protocol.
//
// The paper's primary comparator (§6): three quorum-certificate phases
// (prepare, pre-commit, commit) plus a decide broadcast — the extra phase
// relative to PrestigeBFT is precisely the sync-up cost HotStuff pays for
// its passive pacemaker (§1, §4.3 of the paper). Leadership follows the
// predefined schedule L = V mod n; view changes occur on leader timeout
// (with exponential back-off) or the timing policy (r10/r30), and cannot
// skip an already-crashed scheduled leader.
//
// Shares the simulation substrate, client messages, ledger, and fault
// profiles with PrestigeBFT, so harness experiments drive both identically.

#ifndef PRESTIGE_BASELINES_HOTSTUFF_REPLICA_H_
#define PRESTIGE_BASELINES_HOTSTUFF_REPLICA_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/commit_delivery.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "crypto/keys.h"
#include "crypto/quorum_cert.h"
#include "ledger/block_store.h"
#include "runtime/env.h"
#include "types/adversary.h"
#include "types/client_messages.h"
#include "types/ids.h"
#include "types/fault_spec.h"

namespace prestige {
namespace baselines {
namespace hotstuff {

/// HotStuff protocol phases.
enum class HsPhase : uint8_t {
  kPrepare = 0,
  kPreCommit = 1,
  kCommit = 2,
  kDecide = 3,
};

const char* HsPhaseName(HsPhase phase);

/// Digest signed by votes of `phase` for block (v, n, digest).
crypto::Sha256Digest HsVoteDigest(HsPhase phase, types::View v,
                                  types::SeqNum n,
                                  const crypto::Sha256Digest& block_digest);

/// Leader proposal carrying the batch body (the prepare broadcast).
struct HsProposalMsg : public runtime::NetMessage {
  types::View v = 0;
  ledger::TxBlock block;
  crypto::Signature sig;

  /// Stateless prologue result (never serialized): the block hash, the
  /// kPrepare vote digest derived from it, and the leader signature over
  /// that digest. The handler still checks signer-vs-schedule and its
  /// vote-binding rule on the loop thread.
  struct Verified {
    crypto::Sha256Digest block_digest{};
    crypto::Sha256Digest vote_digest{};
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    size_t payload = 0;
    for (const auto& tx : block.txs()) payload += tx.WireBytes();
    return core::kHeaderBytes + payload + core::kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "HsProposal"; }
};

/// Follower vote: partial signature for one phase.
struct HsVoteMsg : public runtime::NetMessage {
  types::View v = 0;
  HsPhase phase = HsPhase::kPrepare;
  types::SeqNum n = 0;
  crypto::Sha256Digest block_digest{};
  crypto::Signature partial;

  size_t WireSize() const override {
    return core::kHeaderBytes + core::kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "HsVote"; }
};

/// Leader phase broadcast carrying the QC of the previous phase.
struct HsPhaseMsg : public runtime::NetMessage {
  types::View v = 0;
  HsPhase phase = HsPhase::kPreCommit;  // kPreCommit / kCommit / kDecide.
  types::SeqNum n = 0;
  crypto::Sha256Digest block_digest{};
  crypto::QuorumCert justify;
  crypto::Signature sig;

  /// Stateless prologue result (never serialized): the justify QC checked
  /// over the previous phase's vote digest, which is derived purely from
  /// message fields (phase, v, n, block_digest) plus the configured quorum.
  struct Verified {
    bool justify_ok = false;
  };

  size_t WireSize() const override {
    return core::kHeaderBytes + core::kQcBytes + core::kSigBytes;
  }
  // libhotstuff verifies each of the quorum's secp256k1 signatures
  // individually when checking a QC (no threshold aggregation), which is
  // the dominant per-phase cost and the known scaling bottleneck.
  int NumSigVerifies() const override {
    return 1 + static_cast<int>(justify.partials.size());
  }
  const char* Name() const override { return "HsPhase"; }
};

/// Pacemaker message sent to the next scheduled leader on view advance.
struct HsNewViewMsg : public runtime::NetMessage {
  types::View v = 0;           ///< The view being entered.
  types::SeqNum latest_n = 0;  ///< Sender's chain height.
  crypto::Signature sig;

  size_t WireSize() const override {
    return core::kHeaderBytes + core::kQcBytes + core::kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "HsNewView"; }
};

/// Cluster parameters (mirrors the paper's hs configuration).
struct HotStuffConfig {
  uint32_t n = 4;
  size_t batch_size = 1000;
  util::DurationMicros batch_wait = util::Millis(3);
  /// Initial view timeout (paper: 1 s), doubled per consecutive failure.
  util::DurationMicros view_timeout = util::Seconds(1);
  util::DurationMicros max_view_timeout = util::Seconds(8);
  /// Timing policy: rotate every r (0 = only on failure).
  util::DurationMicros rotation_period = 0;

  uint32_t f() const { return types::MaxFaulty(n); }
  uint32_t quorum() const { return types::QuorumSize(n); }
};

/// One HotStuff server.
class HotStuffReplica : public runtime::Node {
 public:
  HotStuffReplica(HotStuffConfig config, types::ReplicaId id,
                  const crypto::KeyStore* keys,
                  types::FaultSpec fault = types::FaultSpec::Honest());

  void SetTopology(std::vector<runtime::NodeId> replicas,
                   std::vector<runtime::NodeId> clients);
  void SetService(std::unique_ptr<app::Service> service);

  /// Installs an active-adversary policy (harness wiring only; nullptr =
  /// honest, the default). See types/adversary.h.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    adversary_ = adversary;
  }

  void OnStart() override;
  void OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) override;
  /// Stateless prologues for the threaded backend's worker pool: proposal
  /// hashing + leader signature, and phase-QC verification (the dominant
  /// cost — see HsPhaseMsg::NumSigVerifies). Votes check against live
  /// builder state and are declined. See src/core/pre_verify.cc for the
  /// splitting discipline.
  runtime::Node::VerdictFn PreVerify(runtime::NodeId from,
                                     const runtime::MessagePtr& msg) override;
  void OnTimer(uint64_t tag) override;

  types::View view() const { return view_; }
  types::ReplicaId current_leader() const {
    return static_cast<types::ReplicaId>(view_ % config_.n);
  }
  bool IsLeader() const { return current_leader() == id_; }
  const ledger::BlockStore& store() const { return store_; }
  const app::Service& service() const { return delivery_.service(); }
  const core::CommitPipeline& delivery() const { return delivery_; }
  const core::ReplicaMetrics& metrics() const { return metrics_; }
  const types::FaultSpec& fault() const { return fault_; }
  types::ReplicaId replica_id() const { return id_; }

 private:
  enum TimerKind : uint64_t {
    kViewTimer = 1,
    kBatchTimer = 2,
    kRotationTimer = 3,
    kNoiseTimer = 4,
  };
  // Shared 48-bit tag packing (util/timer_tag.h).
  static uint64_t Tag(TimerKind kind, uint64_t payload = 0) {
    return util::PackTimerTag(kind, payload);
  }
  static TimerKind TagKind(uint64_t tag) {
    return util::TimerTagKind<TimerKind>(tag);
  }

  static uint64_t TxKey(const types::Transaction& tx);
  runtime::NodeId ActorOf(types::ReplicaId id) const { return replicas_[id]; }
  std::vector<runtime::NodeId> PeerActors() const;

  bool QuietActive() const;
  bool EquivocateActive() const;
  /// True once a kCrash fault has activated; epilogues re-check this
  /// because the fault may trip between prologue and epilogue.
  bool CrashedNow() const;

  // Active-adversary queries (all false when no policy is installed).
  bool AdversaryWedged() const {
    return adversary_ != nullptr && adversary_->WedgeProposals(id_, Now());
  }
  bool AdversaryWithholds(types::ReplicaId target) const {
    return adversary_ != nullptr &&
           adversary_->WithholdVote(id_, target, Now());
  }
  bool AdversaryTampers() const {
    return adversary_ != nullptr && adversary_->TamperExecution(id_, Now());
  }
  types::ReplicaId ReplicaIndexOf(runtime::NodeId node) const {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i] == node) return static_cast<types::ReplicaId>(i);
    }
    return id_;
  }

  void GuardedSend(runtime::NodeId to, runtime::MessagePtr msg);
  void GuardedSend(const std::vector<runtime::NodeId>& to, runtime::MessagePtr msg);
  crypto::Signature SignMaybeCorrupt(const crypto::Sha256Digest& digest);

  void EnqueueTx(const types::Transaction& tx);
  void EnterView(types::View v, bool failed);
  void AdvanceView(bool failed);
  void MaybePropose(bool allow_partial);
  void OnProposal(runtime::NodeId from, const HsProposalMsg& msg,
                  const HsProposalMsg::Verified* pre = nullptr);
  void OnVote(runtime::NodeId from, const HsVoteMsg& msg);
  void OnPhase(runtime::NodeId from, const HsPhaseMsg& msg,
               const HsPhaseMsg::Verified* pre = nullptr);
  void OnNewView(runtime::NodeId from, const HsNewViewMsg& msg);
  void DecideBlock(ledger::TxBlock block);
  void ArmViewTimer();

  HotStuffConfig config_;
  types::ReplicaId id_;
  const crypto::KeyStore* keys_;
  crypto::Signer signer_;
  types::FaultSpec fault_;
  /// Active-adversary interposer (nullptr = honest; harness-owned).
  const types::AdversaryPolicy* adversary_ = nullptr;

  std::vector<runtime::NodeId> replicas_;
  std::vector<runtime::NodeId> clients_;

  ledger::BlockStore store_;
  core::CommitPipeline delivery_;

  types::View view_ = 1;
  int consecutive_failures_ = 0;
  runtime::TimerId view_timer_ = 0;
  runtime::TimerId rotation_timer_ = 0;
  runtime::TimerId batch_timer_ = 0;

  // Request pool (all replicas buffer; the scheduled leader proposes).
  std::deque<types::Transaction> pending_txs_;
  std::unordered_set<uint64_t> pending_keys_;
  std::unordered_set<uint64_t> committed_tx_keys_;

  // Leader state: the single in-flight proposal (basic HotStuff has no
  // pipelining — one decision per view sequence of phases).
  bool proposal_active_ = false;
  ledger::TxBlock current_block_;
  HsPhase collect_phase_ = HsPhase::kPrepare;
  crypto::QuorumCertBuilder vote_builder_;
  crypto::QuorumCertBuilder newview_builder_;
  bool have_newview_quorum_ = false;

  // Follower state for the in-flight proposal.
  std::map<types::SeqNum, ledger::TxBlock> pending_blocks_;
  std::map<types::SeqNum, ledger::TxBlock> buffered_commits_;
  /// Cross-view vote binding (the role basic HotStuff's lock rule plays):
  /// once this replica votes — in any phase — for a block body at sequence
  /// n, it refuses votes for a different body at n until n decides. Every
  /// commitQC needs 2f+1 votes, so at most one body is ever certifiable per
  /// sequence even when views drift under message loss (found by the
  /// flaky-links scenario).
  std::map<types::SeqNum, crypto::Sha256Digest> vote_bound_;

  core::ReplicaMetrics metrics_;
};

}  // namespace hotstuff
}  // namespace baselines
}  // namespace prestige

#endif  // PRESTIGE_BASELINES_HOTSTUFF_REPLICA_H_
