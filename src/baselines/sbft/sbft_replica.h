// SBFT-like baseline: linear collector-based BFT (Gueta et al., DSN'19).
//
// Round structure (fast path): pre-prepare broadcast → sign-shares to the
// collector → full-commit-proof broadcast → state-shares → execute-proof,
// then client notification. Message complexity is linear like PrestigeBFT
// and HotStuff, but the concord-style implementation verifies every client
// request signature individually with heavyweight threshold-RSA crypto,
// which dominates its throughput (the paper measures sb at ~4.9k TPS peak,
// §6.1). We model that cost with a per-transaction signature-verification
// weight on the pre-prepare message (see DESIGN.md §4).

#ifndef PRESTIGE_BASELINES_SBFT_REPLICA_H_
#define PRESTIGE_BASELINES_SBFT_REPLICA_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/commit_delivery.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "crypto/keys.h"
#include "crypto/quorum_cert.h"
#include "ledger/block_store.h"
#include "runtime/env.h"
#include "types/adversary.h"
#include "types/client_messages.h"
#include "types/ids.h"
#include "types/fault_spec.h"

namespace prestige {
namespace baselines {
namespace sbft {

/// Pre-prepare: the batch body; every replica verifies each request's
/// client signature individually (RSA-style weight).
struct SbPrePrepareMsg : public runtime::NetMessage {
  types::View v = 0;
  ledger::TxBlock block;
  crypto::Signature sig;
  /// Relative cost of one threshold-RSA client-signature verification vs
  /// the baseline HMAC verify in the cost model.
  int crypto_weight = 8;

  /// Stateless prologue result (never serialized): the block hash, the
  /// stage-0 digest derived from it, and the leader signature over that
  /// digest — the modeled threshold-RSA hotspot, moved off the loop thread
  /// by the threaded backend's worker pool.
  struct Verified {
    crypto::Sha256Digest block_digest{};
    crypto::Sha256Digest stage_digest{};
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    size_t payload = 0;
    for (const auto& tx : block.txs()) payload += tx.WireBytes();
    return core::kHeaderBytes + payload + core::kSigBytes;
  }
  int NumSigVerifies() const override {
    return 1 + crypto_weight * static_cast<int>(block.BatchSize());
  }
  const char* Name() const override { return "SbPrePrepare"; }
};

/// Threshold signature share sent to the collector.
struct SbShareMsg : public runtime::NetMessage {
  enum class Stage : uint8_t { kCommit = 0, kExecute = 1 } stage = Stage::kCommit;
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Signature partial;

  size_t WireSize() const override {
    return core::kHeaderBytes + core::kSigBytes;
  }
  int NumSigVerifies() const override { return 4; }  // Share verification.
  const char* Name() const override { return "SbShare"; }
};

/// Collector broadcast carrying a combined proof.
struct SbProofMsg : public runtime::NetMessage {
  enum class Stage : uint8_t { kCommit = 0, kExecute = 1 } stage = Stage::kCommit;
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Sha256Digest block_digest{};
  crypto::QuorumCert proof;
  crypto::Signature sig;

  /// Stateless prologue result (never serialized): the combined proof
  /// checked over SbStageDigest(stage, v, n, block_digest), all of which
  /// come from message fields plus the configured quorum.
  struct Verified {
    bool proof_ok = false;
  };

  size_t WireSize() const override {
    return core::kHeaderBytes + core::kQcBytes + core::kSigBytes;
  }
  int NumSigVerifies() const override { return 2; }
  const char* Name() const override { return "SbProof"; }
};

/// Cluster parameters.
struct SbftConfig {
  uint32_t n = 4;
  size_t batch_size = 800;
  util::DurationMicros batch_wait = util::Millis(3);
  util::DurationMicros view_timeout = util::Seconds(1);
  int crypto_weight = 8;  ///< Threshold-RSA verify weight per request.

  uint32_t f() const { return types::MaxFaulty(n); }
  uint32_t quorum() const { return types::QuorumSize(n); }
};

/// Digest signed in SBFT stage `stage` for block (v, n, digest).
crypto::Sha256Digest SbStageDigest(int stage, types::View v, types::SeqNum n,
                                   const crypto::Sha256Digest& block_digest);

/// One SBFT server (leader doubles as the collector, fast path only; view
/// changes use the passive schedule like HotStuff).
class SbftReplica : public runtime::Node {
 public:
  SbftReplica(SbftConfig config, types::ReplicaId id,
              const crypto::KeyStore* keys,
              types::FaultSpec fault = types::FaultSpec::Honest());

  void SetTopology(std::vector<runtime::NodeId> replicas,
                   std::vector<runtime::NodeId> clients);
  void SetService(std::unique_ptr<app::Service> service);

  /// Installs an active-adversary policy (harness wiring only; nullptr =
  /// honest, the default). See types/adversary.h.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    adversary_ = adversary;
  }

  void OnStart() override;
  void OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) override;
  /// Stateless prologues for the threaded backend's worker pool:
  /// pre-prepare hashing + leader signature (the modeled RSA hotspot) and
  /// proof verification. Shares check against live builder state and are
  /// declined. See src/core/pre_verify.cc for the splitting discipline.
  runtime::Node::VerdictFn PreVerify(runtime::NodeId from,
                                     const runtime::MessagePtr& msg) override;
  void OnTimer(uint64_t tag) override;

  types::View view() const { return view_; }
  types::ReplicaId current_leader() const {
    return static_cast<types::ReplicaId>(view_ % config_.n);
  }
  bool IsLeader() const { return current_leader() == id_; }
  const ledger::BlockStore& store() const { return store_; }
  const app::Service& service() const { return delivery_.service(); }
  const core::CommitPipeline& delivery() const { return delivery_; }
  const core::ReplicaMetrics& metrics() const { return metrics_; }
  const types::FaultSpec& fault() const { return fault_; }

 private:
  enum TimerKind : uint64_t { kViewTimer = 1, kBatchTimer = 2 };
  // Shared 48-bit tag packing (util/timer_tag.h).
  static uint64_t Tag(TimerKind kind, uint64_t payload = 0) {
    return util::PackTimerTag(kind, payload);
  }
  static TimerKind TagKind(uint64_t tag) {
    return util::TimerTagKind<TimerKind>(tag);
  }

  static uint64_t TxKey(const types::Transaction& tx);
  std::vector<runtime::NodeId> PeerActors() const;
  void EnqueueTx(const types::Transaction& tx);
  void MaybePropose(bool allow_partial);
  void ExecuteBlock(ledger::TxBlock block);
  void OnPrePrepare(runtime::NodeId from, const SbPrePrepareMsg& msg,
                    const SbPrePrepareMsg::Verified* pre = nullptr);
  void OnProof(runtime::NodeId from, const SbProofMsg& msg,
               const SbProofMsg::Verified* pre = nullptr);
  /// True once a kCrash fault has activated; epilogues re-check this
  /// because the fault may trip between prologue and epilogue.
  bool CrashedNow() const;

  // Active-adversary queries (all false when no policy is installed).
  bool AdversaryWedged() const {
    return adversary_ != nullptr && adversary_->WedgeProposals(id_, Now());
  }
  bool AdversaryWithholds(types::ReplicaId target) const {
    return adversary_ != nullptr &&
           adversary_->WithholdVote(id_, target, Now());
  }
  bool AdversaryTampers() const {
    return adversary_ != nullptr && adversary_->TamperExecution(id_, Now());
  }
  types::ReplicaId ReplicaIndexOf(runtime::NodeId node) const {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i] == node) return static_cast<types::ReplicaId>(i);
    }
    return id_;
  }

  SbftConfig config_;
  types::ReplicaId id_;
  const crypto::KeyStore* keys_;
  crypto::Signer signer_;
  types::FaultSpec fault_;
  /// Active-adversary interposer (nullptr = honest; harness-owned).
  const types::AdversaryPolicy* adversary_ = nullptr;

  std::vector<runtime::NodeId> replicas_;
  std::vector<runtime::NodeId> clients_;

  ledger::BlockStore store_;
  core::CommitPipeline delivery_;

  types::View view_ = 1;
  runtime::TimerId view_timer_ = 0;
  runtime::TimerId batch_timer_ = 0;

  std::deque<types::Transaction> pending_txs_;
  std::unordered_set<uint64_t> pending_keys_;
  std::unordered_set<uint64_t> committed_tx_keys_;

  bool proposal_active_ = false;
  ledger::TxBlock current_block_;
  int collect_stage_ = 0;
  crypto::QuorumCertBuilder share_builder_;

  std::map<types::SeqNum, ledger::TxBlock> pending_blocks_;
  std::map<types::SeqNum, ledger::TxBlock> buffered_commits_;
  /// Cross-view share binding: once this replica sends a share for a block
  /// body at sequence n, it never shares for a *different* body at n until
  /// n executes. Any execute-proof needs 2f+1 shares, so at most one body
  /// can ever be certified per sequence — without this, view drift under
  /// message loss lets two leaders certify conflicting blocks at the same
  /// height (found by the flaky-links scenario).
  std::map<types::SeqNum, crypto::Sha256Digest> share_bound_;

  core::ReplicaMetrics metrics_;
};

}  // namespace sbft
}  // namespace baselines
}  // namespace prestige

#endif  // PRESTIGE_BASELINES_SBFT_REPLICA_H_
