#include "baselines/sbft/sbft_replica.h"

#include <algorithm>
#include <cassert>

namespace prestige {
namespace baselines {
namespace sbft {

crypto::Sha256Digest SbStageDigest(int stage, types::View v, types::SeqNum n,
                                   const crypto::Sha256Digest& block_digest) {
  types::HashingEncoder enc("sbft");
  enc.PutU8(static_cast<uint8_t>(stage)).PutI64(v).PutI64(n).PutDigest(
      block_digest);
  return enc.Digest();
}

SbftReplica::SbftReplica(SbftConfig config, types::ReplicaId id,
                         const crypto::KeyStore* keys,
                         types::FaultSpec fault)
    : config_(config),
      id_(id),
      keys_(keys),
      signer_(keys, id),
      fault_(fault),
      delivery_(id) {}

void SbftReplica::SetTopology(std::vector<runtime::NodeId> replicas,
                              std::vector<runtime::NodeId> clients) {
  replicas_ = std::move(replicas);
  clients_ = std::move(clients);
}

void SbftReplica::SetService(std::unique_ptr<app::Service> service) {
  delivery_.SetService(std::move(service));
}

uint64_t SbftReplica::TxKey(const types::Transaction& tx) {
  return static_cast<uint64_t>(tx.pool) * 0x9e3779b97f4a7c15ULL ^
         tx.client_seq * 0xc2b2ae3d27d4eb4fULL;
}

std::vector<runtime::NodeId> SbftReplica::PeerActors() const {
  std::vector<runtime::NodeId> peers;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<types::ReplicaId>(i) != id_) peers.push_back(replicas_[i]);
  }
  return peers;
}

void SbftReplica::OnStart() {
  view_ = 1;
  if (IsLeader()) {
    ++metrics_.views_led;
    metrics_.last_led_at = Now();
  }
  view_timer_ = SetTimer(config_.view_timeout, Tag(kViewTimer));
}

void SbftReplica::OnTimer(uint64_t tag) {
  switch (TagKind(tag)) {
    case kViewTimer:
      // Passive rotation on timeout (fast path only — dual paths and view
      // change details of full SBFT are out of scope for the peak-
      // performance comparison this baseline serves). Pending block bodies
      // survive the rotation: the share binding refuses conflicting bodies
      // at their sequences, so the new leader must re-propose them.
      ++view_;
      proposal_active_ = false;
      view_timer_ = SetTimer(config_.view_timeout, Tag(kViewTimer));
      if (IsLeader()) {
        ++metrics_.views_led;
        metrics_.last_led_at = Now();
        MaybePropose(true);
      }
      break;
    case kBatchTimer:
      batch_timer_ = 0;
      MaybePropose(true);
      break;
  }
}

void SbftReplica::EnqueueTx(const types::Transaction& tx) {
  const uint64_t key = TxKey(tx);
  if (committed_tx_keys_.count(key) > 0) return;
  if (!pending_keys_.insert(key).second) return;
  pending_txs_.push_back(tx);
}

void SbftReplica::MaybePropose(bool allow_partial) {
  if (!IsLeader() || proposal_active_) return;
  // Slow/selective leader: hold the view without proposing; only the view
  // timeout recovers (passive schedule — same exposure as HotStuff).
  if (AdversaryWedged()) return;
  const types::SeqNum next = store_.LatestTxSeq() + 1;
  // Inherited in-flight body first: peers share-bound to a body at the
  // next sequence refuse anything else there, so a new leader re-proposes
  // the body it saw instead of composing a fresh batch. If we are bound at
  // `next` but no longer hold the matching body, stand down *before*
  // consuming the request pool — a leader that still has the body will
  // re-propose it after a rotation.
  auto inherited = pending_blocks_.find(next);
  auto bound = share_bound_.find(next);
  if (bound != share_bound_.end() &&
      (inherited == pending_blocks_.end() ||
       inherited->second.Digest() != bound->second)) {
    return;
  }
  std::vector<types::Transaction> batch;
  if (inherited != pending_blocks_.end()) {
    batch = inherited->second.txs();
  } else {
    if (pending_txs_.empty()) return;
    if (pending_txs_.size() < config_.batch_size && !allow_partial) {
      if (batch_timer_ == 0) {
        batch_timer_ = SetTimer(config_.batch_wait, Tag(kBatchTimer));
      }
      return;
    }
    while (!pending_txs_.empty() && batch.size() < config_.batch_size) {
      types::Transaction tx = pending_txs_.front();
      pending_txs_.pop_front();
      pending_keys_.erase(TxKey(tx));
      if (committed_tx_keys_.count(TxKey(tx)) > 0) continue;
      batch.push_back(std::move(tx));
    }
  }
  if (batch.empty()) return;

  proposal_active_ = true;
  current_block_ = ledger::TxBlock{};
  current_block_.v = view_;
  current_block_.set_n(next);
  current_block_.set_prev_hash(store_.LatestTxDigest());
  current_block_.set_txs(std::move(batch));
  current_block_.status.assign(current_block_.BatchSize(), 1);

  const crypto::Sha256Digest digest = current_block_.Digest();
  // The leader's own share binds it like any follower's. (A bound conflict
  // is impossible here: the stand-down above covered it, and an inherited
  // body reproduces the bound digest — TxBlock digests exclude the view.)
  share_bound_.emplace(current_block_.n(), digest);
  const crypto::Sha256Digest stage_digest =
      SbStageDigest(0, view_, current_block_.n(), digest);
  collect_stage_ = 0;
  share_builder_ = crypto::QuorumCertBuilder(stage_digest, config_.quorum());
  share_builder_.Add(signer_.Sign(stage_digest), stage_digest);

  auto pp = std::make_shared<SbPrePrepareMsg>();
  pp->v = view_;
  pp->block = current_block_;
  pp->crypto_weight = config_.crypto_weight;
  pp->sig = signer_.Sign(stage_digest);
  if (adversary_ == nullptr) {
    Send(PeerActors(), pp);
    return;
  }
  // Equivocating leader: conflicting, properly signed bodies per follower
  // group (variant 0 = the canonical body the leader's own share covers).
  std::map<uint32_t, std::shared_ptr<SbPrePrepareMsg>> variants;
  variants.emplace(0u, pp);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const auto dest = static_cast<types::ReplicaId>(i);
    if (dest == id_) continue;
    const uint32_t variant = adversary_->ProposalVariant(id_, dest, Now());
    auto vit = variants.find(variant);
    if (vit == variants.end()) {
      auto forged = std::make_shared<SbPrePrepareMsg>();
      forged->v = view_;
      forged->block = current_block_;
      forged->crypto_weight = config_.crypto_weight;
      std::vector<types::Transaction> txs = forged->block.release_txs();
      for (types::Transaction& tx : txs) {
        tx.fingerprint ^= 0x9e3779b97f4a7c15ULL * variant;
      }
      forged->block.set_txs(std::move(txs));
      forged->sig = signer_.Sign(
          SbStageDigest(0, view_, forged->block.n(), forged->block.Digest()));
      vit = variants.emplace(variant, std::move(forged)).first;
    }
    Send(replicas_[i], vit->second);
  }
}

void SbftReplica::ExecuteBlock(ledger::TxBlock block) {
  if (block.n() <= store_.LatestTxSeq()) return;
  if (block.n() > store_.LatestTxSeq() + 1) {
    buffered_commits_[block.n()] = std::move(block);
    return;
  }
  for (const types::Transaction& tx : block.txs()) {
    committed_tx_keys_.insert(TxKey(tx));
  }
  metrics_.committed_txs += static_cast<int64_t>(block.txs().size());
  ++metrics_.committed_blocks;
  metrics_.commit_timeline.Add(Now(), static_cast<int64_t>(block.txs().size()));
  // Shared commit-delivery path: exactly-once execution + result replies.
  ledger::TxBlock to_execute = block;
  if (AdversaryTampers()) {
    // Forged replies: execute a tampered copy so local application state
    // diverges and the reported results are forged (see core/replica.cc).
    std::vector<types::Transaction> txs = to_execute.release_txs();
    for (types::Transaction& tx : txs) {
      tx.fingerprint ^= 0xf00dfacef00dfaceULL;
      for (uint8_t& b : tx.command) b ^= 0x5a;
    }
    to_execute.set_txs(std::move(txs));
  }
  for (const auto& reply : delivery_.Deliver(to_execute)) {
    if (reply->pool < clients_.size()) {
      Send(clients_[reply->pool], reply);
    }
  }
  util::Status st = store_.AppendTxBlock(std::move(block));
  assert(st.ok());
  (void)st;
  // Executed sequences release their bindings and pending bodies.
  share_bound_.erase(share_bound_.begin(),
                     share_bound_.upper_bound(store_.LatestTxSeq()));
  pending_blocks_.erase(pending_blocks_.begin(),
                        pending_blocks_.upper_bound(store_.LatestTxSeq()));
  // Progress: reset the view timer.
  if (view_timer_ != 0) CancelTimer(view_timer_);
  view_timer_ = SetTimer(config_.view_timeout, Tag(kViewTimer));
  auto it = buffered_commits_.find(store_.LatestTxSeq() + 1);
  if (it != buffered_commits_.end()) {
    ledger::TxBlock next = std::move(it->second);
    buffered_commits_.erase(it);
    ExecuteBlock(std::move(next));
  }
}

void SbftReplica::OnPrePrepare(runtime::NodeId from, const SbPrePrepareMsg& msg,
                               const SbPrePrepareMsg::Verified* pre) {
  if (msg.v != view_ || IsLeader()) return;
  if (msg.block.n() <= store_.LatestTxSeq()) return;  // Stale.
  const crypto::Sha256Digest digest =
      pre != nullptr ? pre->block_digest : msg.block.Digest();
  // Share binding: never back a second body at a sequence we already
  // shared for (commit quorums need 2f+1 shares, so this keeps at most
  // one certifiable body per sequence across view rotations).
  auto bound = share_bound_.find(msg.block.n());
  if (bound != share_bound_.end() && bound->second != digest) return;
  const crypto::Sha256Digest stage_digest =
      pre != nullptr ? pre->stage_digest
                     : SbStageDigest(0, msg.v, msg.block.n(), digest);
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(msg.sig, stage_digest);
  if (!sig_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  share_bound_.emplace(msg.block.n(), digest);
  pending_blocks_[msg.block.n()] = msg.block;
  if (AdversaryWithholds(ReplicaIndexOf(from))) return;  // Starve shares.
  auto share = std::make_shared<SbShareMsg>();
  share->stage = SbShareMsg::Stage::kCommit;
  share->v = msg.v;
  share->n = msg.block.n();
  share->partial = signer_.Sign(stage_digest);
  Send(from, share);
}

void SbftReplica::OnProof(runtime::NodeId from, const SbProofMsg& msg,
                          const SbProofMsg::Verified* pre) {
  if (msg.v != view_ || IsLeader()) return;
  const int stage = static_cast<int>(msg.stage);
  const bool proof_ok =
      pre != nullptr
          ? pre->proof_ok
          : crypto::VerifyQuorumCert(
                *keys_, msg.proof,
                SbStageDigest(stage, msg.v, msg.n, msg.block_digest),
                config_.quorum())
                .ok();
  if (!proof_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  auto it = pending_blocks_.find(msg.n);
  if (it == pending_blocks_.end()) return;
  if (it->second.Digest() != msg.block_digest) {
    // Proof for a different body than the one we hold; never certify or
    // execute a body under another body's proof.
    ++metrics_.invalid_messages;
    return;
  }
  if (msg.stage == SbProofMsg::Stage::kCommit) {
    // Reply with an execution share.
    it->second.commit_qc = msg.proof;
    if (AdversaryWithholds(ReplicaIndexOf(from))) return;  // Starve exec.
    const crypto::Sha256Digest exec_digest =
        SbStageDigest(1, msg.v, msg.n, msg.block_digest);
    auto share = std::make_shared<SbShareMsg>();
    share->stage = SbShareMsg::Stage::kExecute;
    share->v = msg.v;
    share->n = msg.n;
    share->partial = signer_.Sign(exec_digest);
    Send(from, share);
  } else {
    ledger::TxBlock block = std::move(it->second);
    pending_blocks_.erase(it);
    ExecuteBlock(std::move(block));
  }
}

bool SbftReplica::CrashedNow() const {
  return fault_.type == types::FaultType::kCrash && fault_.start_at > 0 &&
         Now() >= fault_.start_at;
}

runtime::Node::VerdictFn SbftReplica::PreVerify(
    runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (auto m = std::dynamic_pointer_cast<const SbPrePrepareMsg>(msg)) {
    auto pre = std::make_shared<SbPrePrepareMsg::Verified>();
    pre->block_digest = m->block.Digest();
    pre->stage_digest = SbStageDigest(0, m->v, m->block.n(),
                                      pre->block_digest);
    pre->sig_ok = keys_->Verify(m->sig, pre->stage_digest);
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnPrePrepare(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const SbProofMsg>(msg)) {
    auto pre = std::make_shared<SbProofMsg::Verified>();
    pre->proof_ok =
        crypto::VerifyQuorumCert(
            *keys_, m->proof,
            SbStageDigest(static_cast<int>(m->stage), m->v, m->n,
                          m->block_digest),
            config_.quorum())
            .ok();
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnProof(from, *m, pre.get());
    };
  }
  (void)from;
  return nullptr;  // Shares, client and sync traffic: no split.
}

void SbftReplica::OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (CrashedNow()) {
    return;
  }
  if (auto* m = dynamic_cast<const types::ClientBatch*>(msg.get())) {
    for (const types::Transaction& tx : m->txs) EnqueueTx(tx);
    MaybePropose(false);
    return;
  }
  if (auto* m =
          dynamic_cast<const types::ClientComplaint*>(msg.get())) {
    if (committed_tx_keys_.count(TxKey(m->tx)) > 0) {
      // Already committed; re-serve the cached reply (the client missed
      // the originals) instead of dropping the complaint.
      if (m->tx.pool < clients_.size()) {
        Send(clients_[m->tx.pool], delivery_.ReplyFor(m->tx, view_));
      }
      return;
    }
    EnqueueTx(m->tx);
    MaybePropose(true);
    return;
  }
  if (auto* m = dynamic_cast<const SbPrePrepareMsg*>(msg.get())) {
    OnPrePrepare(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const SbShareMsg*>(msg.get())) {
    (void)from;
    if (!IsLeader() || !proposal_active_ || m->v != view_ ||
        m->n != current_block_.n() ||
        static_cast<int>(m->stage) != collect_stage_) {
      return;
    }
    const crypto::Sha256Digest expected = share_builder_.digest();
    if (!keys_->Verify(m->partial, expected)) {
      ++metrics_.invalid_messages;
      return;
    }
    share_builder_.Add(m->partial, expected);
    if (!share_builder_.Complete()) return;

    const crypto::QuorumCert proof = share_builder_.Build();
    const crypto::Sha256Digest digest = current_block_.Digest();
    auto out = std::make_shared<SbProofMsg>();
    out->v = view_;
    out->n = current_block_.n();
    out->block_digest = digest;
    out->proof = proof;

    if (collect_stage_ == 0) {
      // Full-commit-proof; start collecting execution shares.
      current_block_.commit_qc = proof;
      out->stage = SbProofMsg::Stage::kCommit;
      out->sig = signer_.Sign(SbStageDigest(0, view_, current_block_.n(), digest));
      collect_stage_ = 1;
      const crypto::Sha256Digest exec_digest =
          SbStageDigest(1, view_, current_block_.n(), digest);
      share_builder_ =
          crypto::QuorumCertBuilder(exec_digest, config_.quorum());
      share_builder_.Add(signer_.Sign(exec_digest), exec_digest);
      Send(PeerActors(), out);
    } else {
      // Execute-proof: decision complete.
      out->stage = SbProofMsg::Stage::kExecute;
      out->sig = signer_.Sign(SbStageDigest(1, view_, current_block_.n(), digest));
      Send(PeerActors(), out);
      proposal_active_ = false;
      ExecuteBlock(current_block_);
      MaybePropose(true);
    }
    return;
  }
  if (auto* m = dynamic_cast<const SbProofMsg*>(msg.get())) {
    OnProof(from, *m);
    return;
  }
}

}  // namespace sbft
}  // namespace baselines
}  // namespace prestige
