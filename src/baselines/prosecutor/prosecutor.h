// Prosecutor baseline (Zhang & Jacobsen, Middleware'21) — PrestigeBFT's
// precursor from the same group.
//
// Prosecutor combines two-phase replication with a campaign-based view
// change in which suspected servers must perform proof-of-work whose
// difficulty grows monotonically with their suspicion record: penalties
// only ever accumulate; there is no compensation and no history-aware
// z-score. PrestigeBFT's contribution on top of Prosecutor is precisely the
// two-sided reputation mechanism (δtx / δvc compensation, Eqs. 2-4).
//
// This repository therefore realizes Prosecutor as a configuration of the
// PrestigeBFT engine with the compensation terms disabled and pipelining
// off (Prosecutor commits one batch at a time), which matches its message
// and round complexity. See DESIGN.md §4 (substitutions).

#ifndef PRESTIGE_BASELINES_PROSECUTOR_H_
#define PRESTIGE_BASELINES_PROSECUTOR_H_

#include "core/config.h"
#include "core/replica.h"

namespace prestige {
namespace baselines {
namespace prosecutor {

/// The Prosecutor server type: PrestigeBFT's replica under the Prosecutor
/// reputation/pipelining configuration.
using ProsecutorReplica = core::PrestigeReplica;

/// Prosecutor protocol parameters derived from a base configuration.
inline core::PrestigeConfig MakeProsecutorConfig(uint32_t n,
                                                 size_t batch_size = 1000) {
  core::PrestigeConfig config;
  config.n = n;
  config.batch_size = batch_size;
  // One consensus instance at a time: Prosecutor does not pipeline.
  config.max_inflight = 1;
  // Monotone penalization: no compensation of any kind.
  config.reputation.enable_delta_tx = false;
  config.reputation.enable_delta_vc = false;
  config.reputation.c_delta = 0.0;
  // Prosecutor has no penalty refresh.
  config.enable_refresh = false;
  return config;
}

}  // namespace prosecutor
}  // namespace baselines
}  // namespace prestige

#endif  // PRESTIGE_BASELINES_PROSECUTOR_H_
