#include "harness/process_cluster.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <thread>

#include "net/socket.h"

namespace prestige {
namespace harness {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Finds the value position after `"key":`, or npos.
size_t FindValue(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return std::string::npos;
  size_t pos = at + needle.size();
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(
                                  json[pos]))) {
    ++pos;
  }
  return pos;
}

}  // namespace

bool JsonFindInt(const std::string& json, const std::string& key,
                 int64_t* out) {
  const size_t pos = FindValue(json, key);
  if (pos == std::string::npos || pos >= json.size()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(json.c_str() + pos, &end, 10);
  if (end == json.c_str() + pos) return false;
  *out = value;
  return true;
}

bool JsonFindDouble(const std::string& json, const std::string& key,
                    double* out) {
  const size_t pos = FindValue(json, key);
  if (pos == std::string::npos || pos >= json.size()) return false;
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) return false;
  *out = value;
  return true;
}

bool JsonFindString(const std::string& json, const std::string& key,
                    std::string* out) {
  size_t pos = FindValue(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '"') {
    return false;
  }
  ++pos;
  const size_t close = json.find('"', pos);
  if (close == std::string::npos) return false;
  out->assign(json, pos, close - pos);
  return true;
}

bool ParseNodeStatus(const std::string& json, NodeReport* out) {
  std::string kind;
  if (!JsonFindString(json, "kind", &kind)) return false;
  out->raw = json;
  out->responded = true;
  out->is_replica = (kind == "replica");
  int64_t id = 0;
  JsonFindInt(json, "id", &id);
  out->id = static_cast<uint32_t>(id);

  if (out->is_replica) {
    JsonFindInt(json, "committed_txs", &out->committed_txs);
    JsonFindInt(json, "committed_blocks", &out->committed_blocks);
    JsonFindInt(json, "view_changes", &out->view_changes);
    JsonFindInt(json, "elections_won", &out->elections_won);
    JsonFindInt(json, "executed", &out->executed);
    JsonFindInt(json, "duplicates", &out->duplicates);
    std::string digest_hex;
    if (JsonFindString(json, "state_digest", &digest_hex)) {
      out->state_digest = std::strtoull(digest_hex.c_str(), nullptr, 16);
    }
    // Chain array: [{"n":1,"d":"16hex","t":50},...]
    const size_t chain_at = FindValue(json, "chain");
    if (chain_at != std::string::npos && chain_at < json.size() &&
        json[chain_at] == '[') {
      size_t pos = chain_at;
      const size_t end = json.find(']', pos);
      while (pos < end) {
        const size_t obj = json.find('{', pos);
        if (obj == std::string::npos || obj > end) break;
        const size_t obj_end = json.find('}', obj);
        if (obj_end == std::string::npos) break;
        const std::string entry = json.substr(obj, obj_end - obj + 1);
        NodeReport::ChainEntry ce;
        JsonFindInt(entry, "n", &ce.n);
        JsonFindString(entry, "d", &ce.digest_hex);
        JsonFindInt(entry, "t", &ce.txs);
        out->chain.push_back(std::move(ce));
        pos = obj_end + 1;
      }
    }
  } else {
    JsonFindInt(json, "completed", &out->completed);
    JsonFindInt(json, "replies", &out->replies);
    JsonFindInt(json, "result_mismatches", &out->result_mismatches);
    JsonFindInt(json, "retransmissions", &out->retransmissions);
    JsonFindInt(json, "expired", &out->expired);
    JsonFindDouble(json, "p50_ms", &out->p50_ms);
    JsonFindDouble(json, "p99_ms", &out->p99_ms);
    JsonFindDouble(json, "mean_ms", &out->mean_ms);
  }

  // Frame counters shared by both kinds (flat keys inside "net":{...}).
  int64_t v = 0;
  if (JsonFindInt(json, "frames_sent", &v)) {
    out->net.frames_sent = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "frames_received", &v)) {
    out->net.frames_received = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "messages_assembled", &v)) {
    out->net.messages_assembled = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "decode_drops", &v)) {
    out->net.decode_drops = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "checksum_drops", &v)) {
    out->net.checksum_drops = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "header_drops", &v)) {
    out->net.header_drops = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "seq_gaps", &v)) {
    out->net.seq_gaps = static_cast<uint64_t>(v);
  }
  if (JsonFindInt(json, "send_errors", &v)) {
    out->net.send_errors = static_cast<uint64_t>(v);
  }
  return true;
}

bool SweepReportedSafety(const std::vector<NodeReport>& nodes,
                         std::string* violation, int64_t* min_height,
                         int64_t* max_height) {
  // Reference digest per height index, and execution reference per chain
  // height — the same sweep CheckSafety performs, over reported data.
  struct Reference {
    std::string digest_hex;
    uint32_t owner = 0;
  };
  std::vector<Reference> reference;
  struct ExecReference {
    uint64_t state_digest = 0;
    int64_t executed = 0;
    uint32_t owner = 0;
    bool set = false;
  };
  std::map<int64_t, ExecReference> exec_reference;
  bool first = true;
  *min_height = 0;
  *max_height = 0;

  for (const NodeReport& node : nodes) {
    if (!node.is_replica) continue;
    if (!node.responded) {
      *violation =
          "replica " + std::to_string(node.id) + " reported no status";
      return false;
    }
    const int64_t height = static_cast<int64_t>(node.chain.size());
    if (first || height < *min_height) *min_height = height;
    if (first || height > *max_height) *max_height = height;
    first = false;

    if (reference.size() < node.chain.size()) {
      reference.resize(node.chain.size());
    }
    for (size_t k = 0; k < node.chain.size(); ++k) {
      const NodeReport::ChainEntry& entry = node.chain[k];
      if (reference[k].digest_hex.empty()) {
        reference[k] = Reference{entry.digest_hex, node.id};
        continue;
      }
      if (reference[k].digest_hex != entry.digest_hex) {
        char buf[200];
        std::snprintf(buf, sizeof(buf),
                      "conflicting txBlocks at n=%lld: replica %u has %s…, "
                      "replica %u has %s…",
                      static_cast<long long>(entry.n), reference[k].owner,
                      reference[k].digest_hex.c_str(), node.id,
                      entry.digest_hex.c_str());
        *violation = buf;
        return false;
      }
    }

    ExecReference& exec = exec_reference[height];
    if (!exec.set) {
      exec = ExecReference{node.state_digest, node.executed, node.id, true};
    } else if (exec.state_digest != node.state_digest ||
               exec.executed != node.executed) {
      char buf[220];
      std::snprintf(buf, sizeof(buf),
                    "divergent execution at height %lld: replica %u "
                    "(digest=%016llx, executed=%lld) vs replica %u "
                    "(digest=%016llx, executed=%lld)",
                    static_cast<long long>(height), exec.owner,
                    static_cast<unsigned long long>(exec.state_digest),
                    static_cast<long long>(exec.executed), node.id,
                    static_cast<unsigned long long>(node.state_digest),
                    static_cast<long long>(node.executed));
      *violation = buf;
      return false;
    }

    int64_t chain_txs = 0;
    for (const NodeReport::ChainEntry& entry : node.chain) {
      chain_txs += entry.txs;
    }
    if (node.executed + node.duplicates != chain_txs) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "execution count mismatch on replica %u: chain carries "
                    "%lld txs but executed=%lld + duplicates=%lld",
                    node.id, static_cast<long long>(chain_txs),
                    static_cast<long long>(node.executed),
                    static_cast<long long>(node.duplicates));
      *violation = buf;
      return false;
    }
  }
  if (first) {
    *violation = "no replica reports to sweep";
    return false;
  }
  return true;
}

bool AllocateLoopbackPorts(net::ClusterConfig* config, std::string* error) {
  const uint32_t total = config->n + config->pools;
  config->peers.clear();
  // Hold every probe socket open until all ports are drawn so the kernel
  // cannot hand the same port out twice within this loop.
  std::vector<net::UdpSocket> data_probes;
  std::vector<std::unique_ptr<net::TcpListener>> control_probes;
  net::SockAddr loopback;
  loopback.ip = 0x7f000001;
  loopback.port = 0;
  for (uint32_t i = 0; i < total; ++i) {
    net::PeerEntry peer;
    peer.id = i;
    peer.kind = i < config->n ? net::PeerEntry::Kind::kReplica
                              : net::PeerEntry::Kind::kPool;
    net::UdpSocket data;
    if (!data.Bind(loopback, error)) return false;
    peer.data = data.local_addr();
    data_probes.push_back(std::move(data));
    auto control = std::make_unique<net::TcpListener>();
    if (!control->Listen(loopback, error)) return false;
    peer.control = control->local_addr();
    control_probes.push_back(std::move(control));
    config->peers.push_back(peer);
  }
  return true;
}

namespace {

/// One spawned prestige_node process.
struct Child {
  pid_t pid = -1;
  uint32_t node_id = 0;
};

pid_t SpawnNode(const std::string& binary, const std::string& config_path,
                uint32_t id, const std::string& log_path) {
  // Flush stdio first: fork duplicates unflushed buffers, and each child
  // would re-emit the launcher's pending output when its streams close.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: stdout/stderr to the node's log, then exec.
  std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log != nullptr) ::dup2(::fileno(stdout), 2);
  const std::string id_str = std::to_string(id);
  ::execl(binary.c_str(), "prestige_node", "--config", config_path.c_str(),
          "--id", id_str.c_str(), static_cast<char*>(nullptr));
  std::perror("execl prestige_node");
  std::_Exit(127);
}

/// One control command; returns false on connect/timeout failure.
bool ControlCommand(const net::SockAddr& addr, const std::string& command,
                    std::string* reply, int timeout_ms) {
  net::TcpConn conn = net::TcpConn::Connect(addr, timeout_ms);
  if (!conn.valid()) return false;
  if (!conn.SendLine(command)) return false;
  return conn.RecvLine(reply, timeout_ms);
}

void ReapAll(std::vector<Child>* children, bool force) {
  for (Child& child : *children) {
    if (child.pid <= 0) continue;
    if (force) ::kill(child.pid, SIGKILL);
    int status = 0;
    ::waitpid(child.pid, &status, 0);
    child.pid = -1;
  }
}

}  // namespace

ProcessClusterResult RunProcessCluster(const ProcessClusterOptions& options) {
  ProcessClusterResult result;
  net::ClusterConfig config = options.config;
  if (config.peers.empty() &&
      !AllocateLoopbackPorts(&config, &result.error)) {
    return result;
  }

  const std::string config_path = options.work_dir + "/cluster.cfg";
  {
    std::ofstream out(config_path);
    if (!out) {
      result.error = "cannot write " + config_path;
      return result;
    }
    out << net::FormatClusterConfig(config);
  }

  std::vector<Child> children;
  for (const net::PeerEntry& peer : config.peers) {
    Child child;
    child.node_id = peer.id;
    child.pid = SpawnNode(
        options.node_binary, config_path, peer.id,
        options.work_dir + "/node-" + std::to_string(peer.id) + ".log");
    if (child.pid < 0) {
      result.error = "fork failed for node " + std::to_string(peer.id);
      ReapAll(&children, /*force=*/true);
      return result;
    }
    children.push_back(child);
  }

  // Ping barrier: every control socket must answer before the clock
  // starts, so no node spends the measured window still booting.
  const auto barrier_start = std::chrono::steady_clock::now();
  for (const net::PeerEntry& peer : config.peers) {
    for (;;) {
      std::string reply;
      if (ControlCommand(peer.control, "ping", &reply, 500) &&
          reply == "ok") {
        break;
      }
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - barrier_start);
      if (waited.count() > options.startup_timeout_ms) {
        result.error =
            "node " + std::to_string(peer.id) + " failed the ping barrier";
        ReapAll(&children, /*force=*/true);
        return result;
      }
      SleepMs(50);
    }
  }

  SleepMs(static_cast<int>(config.duration_us / 1000));
  result.duration_seconds = static_cast<double>(config.duration_us) / 1e6;

  // Stop the whole fleet before harvesting so chains are final and reads
  // are race-free on the node side.
  for (const net::PeerEntry& peer : config.peers) {
    std::string reply;
    ControlCommand(peer.control, "stop", &reply, options.control_timeout_ms);
  }
  for (const net::PeerEntry& peer : config.peers) {
    NodeReport report;
    report.id = peer.id;
    report.is_replica = peer.kind == net::PeerEntry::Kind::kReplica;
    std::string reply;
    if (ControlCommand(peer.control, "status", &reply,
                       options.control_timeout_ms)) {
      ParseNodeStatus(reply, &report);
    }
    result.nodes.push_back(std::move(report));
  }
  for (const net::PeerEntry& peer : config.peers) {
    std::string reply;
    ControlCommand(peer.control, "quit", &reply, 2000);
  }
  SleepMs(200);
  ReapAll(&children, /*force=*/true);  // SIGKILL is a no-op for exited pids.

  result.ran = true;
  for (const NodeReport& node : result.nodes) {
    if (!node.responded) {
      result.error =
          "node " + std::to_string(node.id) + " reported no status";
      result.ran = false;
    }
    result.net.MergeFrom(node.net);
    if (node.is_replica) {
      result.view_changes += node.view_changes;
      result.elections_won += node.elections_won;
      result.executed += node.executed;
      result.duplicates += node.duplicates;
    } else {
      result.committed += node.completed;
      result.replies += node.replies;
      result.result_mismatches += node.result_mismatches;
      if (node.p50_ms > result.p50_ms) result.p50_ms = node.p50_ms;
      if (node.p99_ms > result.p99_ms) result.p99_ms = node.p99_ms;
    }
  }
  result.tps = result.duration_seconds > 0
                   ? static_cast<double>(result.committed) /
                         result.duration_seconds
                   : 0.0;
  result.safety_ok =
      result.ran && SweepReportedSafety(result.nodes, &result.violation,
                                        &result.min_height,
                                        &result.max_height);
  return result;
}

}  // namespace harness
}  // namespace prestige
