// Cluster: wires n replicas + client pools onto one simulator instance.
//
// Generic over the protocol: any Replica type with
//   Replica(Config, ReplicaId, const KeyStore*, FaultSpec)
//   SetTopology(replica_actor_ids, client_actor_ids)
//   metrics() -> core::ReplicaMetrics
// works (PrestigeBFT and all baselines follow this shape). The protocol
// Config must expose `n` and `f()`.

#ifndef PRESTIGE_HARNESS_CLUSTER_H_
#define PRESTIGE_HARNESS_CLUSTER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "app/service.h"
#include "core/metrics.h"
#include "crypto/keys.h"
#include "runtime/sim_env.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/client_pool.h"
#include "types/adversary.h"
#include "types/fault_spec.h"

namespace prestige {
namespace harness {

/// Workload / environment parameters shared by all protocols.
struct WorkloadOptions {
  uint32_t num_pools = 8;
  uint32_t clients_per_pool = 100;
  uint32_t payload_size = 32;  ///< m.
  util::DurationMicros client_timeout = util::Seconds(1);
  sim::LatencyModel latency = sim::LatencyModel::Datacenter();
  sim::CostModel cost;
  uint64_t seed = 1;
  /// Command shape the virtual clients issue (opaque vs real KV puts).
  workload::CommandKind command_kind = workload::CommandKind::kOpaque;
  uint64_t kv_key_space = 1024;
  /// Threaded backend only (ignored in simulation): size of each node's
  /// OrderedRunner prologue pool. 0 = classic single-thread-per-node path.
  uint32_t workers_per_node = 0;
};

/// A complete simulated deployment of one protocol.
template <typename Replica, typename Config>
class Cluster {
 public:
  Cluster(Config protocol, WorkloadOptions workload,
          std::vector<types::FaultSpec> faults = {})
      : protocol_(protocol),
        workload_(workload),
        sim_(workload.seed),
        net_(&sim_, workload.latency, workload.cost),
        keys_(workload.seed ^ 0xc0ffee) {
    faults.resize(protocol_.n, types::FaultSpec::Honest());

    // Registration order (replicas first, then pools) fixes both the id
    // layout and each node's forked RNG stream — identical to the
    // pre-runtime-layer direct-actor wiring, so runs stay bit-for-bit
    // reproducible across the refactor.
    std::vector<sim::ActorId> replica_ids;
    std::vector<sim::ActorId> pool_ids;
    for (uint32_t i = 0; i < protocol_.n; ++i) {
      replicas_.push_back(
          std::make_unique<Replica>(protocol_, i, &keys_, faults[i]));
      envs_.push_back(
          std::make_unique<runtime::SimEnv>(replicas_.back().get()));
      replica_ids.push_back(sim_.AddActor(envs_.back().get()));
      envs_.back()->AttachNetwork(&net_);
    }
    for (uint32_t p = 0; p < workload_.num_pools; ++p) {
      workload::ClientPoolConfig pool_config;
      pool_config.pool_id = p;
      pool_config.num_clients = workload_.clients_per_pool;
      pool_config.payload_size = workload_.payload_size;
      pool_config.f = protocol_.f();
      pool_config.request_timeout = workload_.client_timeout;
      pool_config.command_kind = workload_.command_kind;
      pool_config.kv_key_space = workload_.kv_key_space;
      pools_.push_back(std::make_unique<workload::ClientPool>(pool_config));
      envs_.push_back(std::make_unique<runtime::SimEnv>(pools_.back().get()));
      pool_ids.push_back(sim_.AddActor(envs_.back().get()));
      envs_.back()->AttachNetwork(&net_);
      pools_.back()->SetReplicas(replica_ids);
    }
    for (auto& replica : replicas_) {
      replica->SetTopology(replica_ids, pool_ids);
    }
    replica_actor_ids_ = replica_ids;
    // All actors are registered; size the network's per-actor resource
    // tables once instead of growing them lazily inside Send/Deliver.
    net_.PresizeActors(sim_.num_actors());
  }

  /// Schedules every actor's OnStart at the current virtual time. Call once
  /// before the first Run*.
  void Start() {
    for (auto& replica : replicas_) {
      sim_.ScheduleAfter(0, [r = replica.get()]() { r->OnStart(); });
    }
    for (auto& pool : pools_) {
      sim_.ScheduleAfter(0, [p = pool.get()]() { p->OnStart(); });
    }
  }

  void RunFor(util::DurationMicros duration) {
    sim_.RunUntil(sim_.Now() + duration);
  }
  void RunUntil(util::TimeMicros until) { sim_.RunUntil(until); }

  Replica& replica(uint32_t i) { return *replicas_[i]; }
  const Replica& replica(uint32_t i) const { return *replicas_[i]; }
  workload::ClientPool& pool(uint32_t p) { return *pools_[p]; }
  /// Actor id of replica i (for fault-plane partitions / link faults).
  sim::ActorId replica_actor_id(uint32_t i) const {
    return replica_actor_ids_[i];
  }
  uint32_t num_replicas() const { return protocol_.n; }
  uint32_t num_pools() const { return workload_.num_pools; }
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }
  const Config& protocol_config() const { return protocol_; }

  /// Crash / recover replica i at the network level (it neither sends nor
  /// receives while down).
  void SetReplicaDown(uint32_t i, bool down) {
    net_.SetNodeDown(replica_actor_ids_[i], down);
  }

  /// Installs an application service on every replica (each gets its own
  /// instance from `factory`). Call before Start().
  void InstallServices(
      const std::function<std::unique_ptr<app::Service>()>& factory) {
    for (auto& replica : replicas_) replica->SetService(factory());
  }

  /// Installs an active-adversary policy on every replica and client pool
  /// (the policy decides per node id whether and how to misbehave). The
  /// caller keeps ownership; call before Start() and keep `adversary`
  /// alive for the cluster's lifetime.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    for (auto& replica : replicas_) replica->SetAdversary(adversary);
    for (auto& pool : pools_) pool->SetAdversary(adversary);
  }

  // ---------------------------------------------- client/execution metrics

  /// Reply entries matched to outstanding requests, summed over pools.
  int64_t RepliesReceived() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().replies_received;
    return total;
  }

  /// Conflicting result digests observed by clients (should be 0 with
  /// honest replicas).
  int64_t ResultMismatches() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().result_mismatches;
    return total;
  }

  /// Replica-side duplicate executions suppressed by the session tables.
  int64_t DuplicatesSuppressed() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().duplicates_suppressed;
    }
    return total;
  }

  /// Exactly-once service executions, summed over replicas.
  int64_t ExecutedTotal() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().executed;
    }
    return total;
  }

  /// Transactions committed, summed over all client pools (client-observed).
  int64_t ClientCommitted() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->committed();
    return total;
  }

  /// Throughput observed by clients over [from, to] in tx/s. Uses replica 0's
  /// honest commit timeline when `replica_timeline` >= 0.
  double ClientThroughputTps(util::TimeMicros from, util::TimeMicros to,
                             int replica_timeline = -1) const {
    if (to <= from) return 0.0;
    if (replica_timeline >= 0) {
      const auto& timeline =
          replicas_[replica_timeline]->metrics().commit_timeline;
      int64_t count = 0;
      const auto& buckets = timeline.buckets();
      const size_t lo = static_cast<size_t>(from / timeline.window());
      const size_t hi = static_cast<size_t>(to / timeline.window());
      for (size_t i = lo; i < hi && i < buckets.size(); ++i) {
        count += buckets[i];
      }
      return static_cast<double>(count) / util::ToSeconds(to - from);
    }
    return static_cast<double>(ClientCommitted()) /
           util::ToSeconds(to - from);
  }

  /// Mean client latency in milliseconds across pools.
  double MeanLatencyMs() {
    double weighted = 0.0;
    size_t count = 0;
    for (auto& pool : pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    return count == 0 ? 0.0 : weighted / static_cast<double>(count);
  }

  /// Latency percentile. Pools see statistically identical latency
  /// distributions, so pool 0's histogram is a representative sample.
  double LatencyPercentileMs(double p) {
    return pools_.empty() ? 0.0 : pools_[0]->latencies().Percentile(p);
  }

 private:
  Config protocol_;
  WorkloadOptions workload_;
  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<workload::ClientPool>> pools_;
  /// One SimEnv per node, in registration order; must outlive the sim.
  std::vector<std::unique_ptr<runtime::SimEnv>> envs_;
  std::vector<sim::ActorId> replica_actor_ids_;
};

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_CLUSTER_H_
