// Cluster: wires n replicas + client pools onto one simulator instance.
//
// Generic over the protocol: any Replica type with
//   Replica(Config, ReplicaId, const KeyStore*, FaultSpec)
//   SetTopology(replica_actor_ids, client_actor_ids)
//   metrics() -> core::ReplicaMetrics
// works (PrestigeBFT and all baselines follow this shape). The protocol
// Config must expose `n` and `f()`.

#ifndef PRESTIGE_HARNESS_CLUSTER_H_
#define PRESTIGE_HARNESS_CLUSTER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "app/service.h"
#include "core/metrics.h"
#include "crypto/keys.h"
#include "runtime/sim_env.h"
#include "shard/router.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/client_pool.h"
#include "workload/open_loop_pool.h"
#include "types/adversary.h"
#include "types/fault_spec.h"

namespace prestige {
namespace harness {

/// Workload / environment parameters shared by all protocols.
struct WorkloadOptions {
  uint32_t num_pools = 8;
  uint32_t clients_per_pool = 100;
  uint32_t payload_size = 32;  ///< m.
  util::DurationMicros client_timeout = util::Seconds(1);
  sim::LatencyModel latency = sim::LatencyModel::Datacenter();
  sim::CostModel cost;
  uint64_t seed = 1;
  /// Command shape the virtual clients issue (opaque vs real KV puts).
  workload::CommandKind command_kind = workload::CommandKind::kOpaque;
  uint64_t kv_key_space = 1024;
  /// Threaded backend only (ignored in simulation): size of each node's
  /// OrderedRunner prologue pool. 0 = classic single-thread-per-node path.
  uint32_t workers_per_node = 0;

  // ---- Sharding ---------------------------------------------------------
  /// Number of consensus groups. Each group is an independent replica set
  /// of `protocol.n` replicas — its own leader, views, and reputation —
  /// sharing one runtime backend; shard::Router hash-partitions the key
  /// space across groups and `num_pools` client pools drive EACH group.
  /// 1 = the classic unsharded deployment (wiring, ids, and RNG streams
  /// are bit-for-bit the historical ones). With more than one group the
  /// workload is forced to kKvPut: only real keys can be routed, opaque
  /// fingerprints cannot be generated pre-targeted at a group.
  uint32_t num_groups = 1;
  /// Router salt; must match whatever checks routing later.
  uint64_t router_salt = shard::Router::kDefaultSalt;

  // ---- Open-loop workload engine ----------------------------------------
  /// When true, pools are workload::OpenLoopPool arrival engines instead
  /// of closed-loop ClientPools. clients_per_pool is then unused (load
  /// comes from `arrival`, sessions from `logical_sessions`), and the
  /// scenario SetActive machinery does not apply.
  bool open_loop = false;
  workload::ArrivalSpec arrival;        ///< Per-pool arrival trace.
  uint64_t logical_sessions = 1000000;  ///< Sessions multiplexed per pool.
  double zipf_theta = 0.0;              ///< Key skew (0 = uniform).
  uint32_t max_outstanding = 2048;      ///< Per-pool in-flight budget.
  uint32_t max_backlog = 4096;          ///< Per-pool admission queue bound.
  double slo_ms = 500.0;                ///< End-to-end latency SLO.
  util::TimeMicros open_loop_stop_at = 0;  ///< Stop arrivals (0 = never).
};

/// A complete simulated deployment of one protocol.
template <typename Replica, typename Config>
class Cluster {
 public:
  Cluster(Config protocol, WorkloadOptions workload,
          std::vector<types::FaultSpec> faults = {})
      : protocol_(protocol),
        workload_(workload),
        sim_(workload.seed),
        net_(&sim_, workload.latency, workload.cost),
        keys_(workload.seed ^ 0xc0ffee) {
    if (workload_.num_groups == 0) workload_.num_groups = 1;
    const uint32_t groups = workload_.num_groups;
    // Faults address replicas by global (group-major) index; the usual
    // n-entry list targets group 0 and every other group runs honest.
    faults.resize(static_cast<size_t>(protocol_.n) * groups,
                  types::FaultSpec::Honest());

    // Registration order (replicas group-major, then pools group-major)
    // fixes both the id layout and each node's forked RNG stream. With one
    // group this is exactly the historical wiring — replicas 0..n-1, then
    // pools 0..num_pools-1 — so unsharded runs stay bit-for-bit
    // reproducible across the sharding refactor.
    std::vector<std::vector<sim::ActorId>> group_replica_ids(groups);
    std::vector<std::vector<sim::ActorId>> group_pool_ids(groups);
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t i = 0; i < protocol_.n; ++i) {
        replicas_.push_back(std::make_unique<Replica>(
            protocol_, i, &keys_,
            faults[static_cast<size_t>(g) * protocol_.n + i]));
        envs_.push_back(
            std::make_unique<runtime::SimEnv>(replicas_.back().get()));
        const sim::ActorId id = sim_.AddActor(envs_.back().get());
        envs_.back()->AttachNetwork(&net_);
        group_replica_ids[g].push_back(id);
        replica_actor_ids_.push_back(id);
      }
    }
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t p = 0; p < workload_.num_pools; ++p) {
        client::Client* client = MakePool(g, p);
        envs_.push_back(std::make_unique<runtime::SimEnv>(client));
        group_pool_ids[g].push_back(sim_.AddActor(envs_.back().get()));
        envs_.back()->AttachNetwork(&net_);
        client->SetReplicas(group_replica_ids[g]);
      }
    }
    // Each group's topology is its own replica set: groups never
    // intercommunicate, which is what makes per-group leaders, views, and
    // reputation independent by construction.
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t i = 0; i < protocol_.n; ++i) {
        replicas_[static_cast<size_t>(g) * protocol_.n + i]->SetTopology(
            group_replica_ids[g], group_pool_ids[g]);
      }
    }
    // All actors are registered; size the network's per-actor resource
    // tables once instead of growing them lazily inside Send/Deliver.
    net_.PresizeActors(sim_.num_actors());
  }

  /// Schedules every actor's OnStart at the current virtual time. Call once
  /// before the first Run*.
  void Start() {
    for (auto& replica : replicas_) {
      sim_.ScheduleAfter(0, [r = replica.get()]() { r->OnStart(); });
    }
    for (auto& pool : pools_) {
      sim_.ScheduleAfter(0, [p = pool.get()]() { p->OnStart(); });
    }
    for (auto& pool : open_pools_) {
      sim_.ScheduleAfter(0, [p = pool.get()]() { p->OnStart(); });
    }
  }

  void RunFor(util::DurationMicros duration) {
    sim_.RunUntil(sim_.Now() + duration);
  }
  void RunUntil(util::TimeMicros until) { sim_.RunUntil(until); }

  Replica& replica(uint32_t i) { return *replicas_[i]; }
  const Replica& replica(uint32_t i) const { return *replicas_[i]; }
  workload::ClientPool& pool(uint32_t p) { return *pools_[p]; }
  workload::OpenLoopPool& open_pool(uint32_t p) { return *open_pools_[p]; }
  /// Actor id of replica i (for fault-plane partitions / link faults).
  sim::ActorId replica_actor_id(uint32_t i) const {
    return replica_actor_ids_[i];
  }
  /// Total replicas across groups (group-major: group g owns global
  /// indices [g*n, (g+1)*n)). Equal to protocol n when unsharded.
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t num_pools() const { return static_cast<uint32_t>(pools_.size()); }
  uint32_t num_open_pools() const {
    return static_cast<uint32_t>(open_pools_.size());
  }
  uint32_t num_groups() const { return workload_.num_groups; }
  uint32_t replicas_per_group() const { return protocol_.n; }
  /// Replica i of group g (the group-local view of the global layout).
  Replica& group_replica(uint32_t g, uint32_t i) {
    return *replicas_[static_cast<size_t>(g) * protocol_.n + i];
  }
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }
  const Config& protocol_config() const { return protocol_; }

  /// Crash / recover replica i at the network level (it neither sends nor
  /// receives while down).
  void SetReplicaDown(uint32_t i, bool down) {
    net_.SetNodeDown(replica_actor_ids_[i], down);
  }

  /// Installs an application service on every replica (each gets its own
  /// instance from `factory`). Call before Start().
  void InstallServices(
      const std::function<std::unique_ptr<app::Service>()>& factory) {
    for (auto& replica : replicas_) replica->SetService(factory());
  }

  /// Installs an active-adversary policy on every replica and client pool
  /// (the policy decides per node id whether and how to misbehave). The
  /// caller keeps ownership; call before Start() and keep `adversary`
  /// alive for the cluster's lifetime.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    for (auto& replica : replicas_) replica->SetAdversary(adversary);
    for (auto& pool : pools_) pool->SetAdversary(adversary);
    for (auto& pool : open_pools_) pool->SetAdversary(adversary);
  }

  // ---------------------------------------------- client/execution metrics

  /// Reply entries matched to outstanding requests, summed over pools.
  int64_t RepliesReceived() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().replies_received;
    for (const auto& pool : open_pools_) {
      total += pool->stats().replies_received;
    }
    return total;
  }

  /// Conflicting result digests observed by clients (should be 0 with
  /// honest replicas).
  int64_t ResultMismatches() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().result_mismatches;
    for (const auto& pool : open_pools_) {
      total += pool->stats().result_mismatches;
    }
    return total;
  }

  /// Replica-side duplicate executions suppressed by the session tables.
  int64_t DuplicatesSuppressed() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().duplicates_suppressed;
    }
    return total;
  }

  /// Exactly-once service executions, summed over replicas.
  int64_t ExecutedTotal() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().executed;
    }
    return total;
  }

  /// Transactions committed, summed over all client pools (client-observed).
  int64_t ClientCommitted() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->committed();
    for (const auto& pool : open_pools_) total += pool->committed();
    return total;
  }

  /// Transactions committed by group g's pools alone.
  int64_t GroupCommitted(uint32_t g) const {
    int64_t total = 0;
    const uint32_t per = workload_.num_pools;
    for (uint32_t p = g * per; p < (g + 1) * per; ++p) {
      if (p < pools_.size()) total += pools_[p]->committed();
      if (p < open_pools_.size()) total += open_pools_[p]->committed();
    }
    return total;
  }

  /// Throughput observed by clients over [from, to] in tx/s. Uses replica 0's
  /// honest commit timeline when `replica_timeline` >= 0.
  double ClientThroughputTps(util::TimeMicros from, util::TimeMicros to,
                             int replica_timeline = -1) const {
    if (to <= from) return 0.0;
    if (replica_timeline >= 0) {
      const auto& timeline =
          replicas_[replica_timeline]->metrics().commit_timeline;
      int64_t count = 0;
      const auto& buckets = timeline.buckets();
      const size_t lo = static_cast<size_t>(from / timeline.window());
      const size_t hi = static_cast<size_t>(to / timeline.window());
      for (size_t i = lo; i < hi && i < buckets.size(); ++i) {
        count += buckets[i];
      }
      return static_cast<double>(count) / util::ToSeconds(to - from);
    }
    return static_cast<double>(ClientCommitted()) /
           util::ToSeconds(to - from);
  }

  /// Mean client latency in milliseconds across pools.
  double MeanLatencyMs() {
    double weighted = 0.0;
    size_t count = 0;
    for (auto& pool : pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    for (auto& pool : open_pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    return count == 0 ? 0.0 : weighted / static_cast<double>(count);
  }

  /// Latency percentile over the merged samples of EVERY pool. (This used
  /// to read pool 0's histogram alone on the theory that pools are
  /// statistically identical — no longer true once pools belong to
  /// different shard groups or mix open- and closed-loop drivers, and the
  /// merged percentile is exact either way.)
  double LatencyPercentileMs(double p) {
    util::Histogram merged;
    for (auto& pool : pools_) merged.MergeFrom(pool->latencies());
    for (auto& pool : open_pools_) merged.MergeFrom(pool->latencies());
    return merged.Percentile(p);
  }

  // ------------------------------------------------- open-loop aggregates

  /// End-to-end latency percentile (arrival → completion, including
  /// admission queueing) merged across every open-loop pool.
  double E2eLatencyPercentileMs(double p) {
    util::Histogram merged;
    for (auto& pool : open_pools_) merged.MergeFrom(pool->e2e_latencies());
    return merged.Percentile(p);
  }

  /// Trace arrivals generated / admitted into consensus / shed at
  /// admission, summed over open-loop pools.
  int64_t TotalArrivals() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().arrivals;
    return total;
  }
  int64_t TotalAdmitted() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().admitted;
    return total;
  }
  int64_t TotalShed() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().shed;
    return total;
  }

  /// Fraction of completions meeting the SLO across open-loop pools
  /// (1.0 when nothing completed).
  double SloFraction() const {
    int64_t met = 0, completed = 0;
    for (const auto& pool : open_pools_) {
      met += pool->open_stats().slo_met;
      completed += pool->stats().completed;
    }
    return completed == 0
               ? 1.0
               : static_cast<double>(met) / static_cast<double>(completed);
  }

 private:
  /// Builds pool p of group g (closed- or open-loop per the workload) and
  /// returns it as the common client::Client base.
  client::Client* MakePool(uint32_t g, uint32_t p) {
    const uint32_t groups = workload_.num_groups;
    // Only real keys can be routed to a group, so sharded deployments
    // always drive KV puts regardless of the requested command kind.
    const workload::CommandKind kind = groups > 1
                                           ? workload::CommandKind::kKvPut
                                           : workload_.command_kind;
    // Pool ids are group-local: replicas index their own group's client
    // topology by pool id (clients_[reply->pool]), and cross-group
    // transaction identity is carried by the digest-covered group field.
    const types::ClientPoolId pool_id = p;
    if (workload_.open_loop) {
      workload::OpenLoopConfig pc;
      pc.pool_id = pool_id;
      pc.f = protocol_.f();
      pc.payload_size = workload_.payload_size;
      pc.request_timeout = workload_.client_timeout;
      pc.arrival = workload_.arrival;
      pc.logical_sessions = workload_.logical_sessions;
      pc.command_kind = kind;
      pc.kv_key_space = workload_.kv_key_space;
      pc.zipf_theta = workload_.zipf_theta;
      pc.max_outstanding = workload_.max_outstanding;
      pc.max_backlog = workload_.max_backlog;
      pc.slo_ms = workload_.slo_ms;
      pc.stop_at = workload_.open_loop_stop_at;
      pc.group = g;
      pc.num_groups = groups;
      pc.router_salt = workload_.router_salt;
      open_pools_.push_back(std::make_unique<workload::OpenLoopPool>(pc));
      return open_pools_.back().get();
    }
    workload::ClientPoolConfig pool_config;
    pool_config.pool_id = pool_id;
    pool_config.num_clients = workload_.clients_per_pool;
    pool_config.payload_size = workload_.payload_size;
    pool_config.f = protocol_.f();
    pool_config.request_timeout = workload_.client_timeout;
    pool_config.command_kind = kind;
    pool_config.kv_key_space = workload_.kv_key_space;
    pool_config.group = g;
    pool_config.num_groups = groups;
    pool_config.router_salt = workload_.router_salt;
    pools_.push_back(std::make_unique<workload::ClientPool>(pool_config));
    return pools_.back().get();
  }

  Config protocol_;
  WorkloadOptions workload_;
  sim::Simulator sim_;
  sim::Network net_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<workload::ClientPool>> pools_;
  std::vector<std::unique_ptr<workload::OpenLoopPool>> open_pools_;
  /// One SimEnv per node, in registration order; must outlive the sim.
  std::vector<std::unique_ptr<runtime::SimEnv>> envs_;
  std::vector<sim::ActorId> replica_actor_ids_;
};

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_CLUSTER_H_
