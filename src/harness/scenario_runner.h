// Executes a ScenarioSpec on any Cluster<Replica, Config>.
//
// The runner walks the spec's phases in virtual time: at each phase start
// it applies the phase's partition / link faults / crashes / load settings,
// runs the cluster for the phase's duration, then sweeps the cross-replica
// safety invariants (invariants.h). A seed sweep repeats the whole run for
// N consecutive seeds and aggregates the per-seed results.
//
// Everything virtual-time here is deterministic: the same (spec, config,
// workload.seed) triple reproduces byte-identical ScenarioSeedResults —
// SeedResultJson() exists so tests and bench_runner can assert exactly that.
//
// Seed sweeps parallelize: each (spec, config, seed) run is a fully
// self-contained Simulator + Cluster with no shared mutable state, so
// RunScenarioSweep(jobs > 1) fans the seeds out over a worker pool. Results
// land in a seed-indexed slot and are aggregated in seed order afterwards,
// so the aggregate — including every floating-point mean — is byte-
// identical to the serial path (asserted by tests/parallel_sweep_test.cc).

#ifndef PRESTIGE_HARNESS_SCENARIO_RUNNER_H_
#define PRESTIGE_HARNESS_SCENARIO_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_service.h"
#include "harness/adversary.h"
#include "harness/cluster.h"
#include "harness/invariants.h"
#include "harness/scenario.h"

namespace prestige {
namespace harness {

/// Per-phase record of one scenario run.
struct PhaseOutcome {
  std::string name;
  util::TimeMicros start = 0;
  util::TimeMicros end = 0;
  int64_t committed = 0;  ///< Client-observed commits during the phase.
  SafetyReport safety;
};

/// All metrics of one (spec, seed) execution. Everything except `wall_ms`
/// is a deterministic function of (spec, config, seed) — including `events`
/// and `hashes`, which count implementation work, not virtual-time
/// behaviour, but are exactly reproducible. SeedResultJson() renders only
/// the deterministic fields, so equal seeds produce byte-identical JSON.
struct ScenarioSeedResult {
  uint64_t seed = 0;
  uint64_t events = 0;   ///< Simulator events executed (deterministic).
  uint64_t hashes = 0;   ///< SHA-256 computations performed (deterministic).
  double wall_ms = 0.0;  ///< Host wall-clock cost; NOT in SeedResultJson.
  bool safety_ok = true;
  std::string violation;
  int64_t committed = 0;
  double tps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t view_changes = 0;
  int64_t elections_won = 0;
  /// Client-observed reply entries matched to outstanding requests.
  int64_t replies = 0;
  /// Replica-side duplicate executions suppressed by session tables.
  int64_t duplicate_suppressed = 0;
  /// Conflicting result digests observed by clients (0 when honest).
  int64_t result_mismatches = 0;
  /// Exactly-once service executions summed over honest replicas.
  int64_t executed = 0;
  types::SeqNum min_height = 0;
  types::SeqNum max_height = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_cut = 0;
  uint64_t messages_duplicated = 0;
  uint64_t messages_reordered = 0;

  // Suppression metrics, filled only when the spec carries an adversary
  // (adversary_present false ⇒ SeedResultJson omits the block, keeping
  // honest-run JSON byte-identical to pre-adversary builds).
  bool adversary_present = false;
  int64_t byz_views_led = 0;     ///< Views held by scripted attackers.
  int64_t honest_views_led = 0;  ///< Views held by everyone else.
  /// Last virtual time an attacker assumed leadership (0 = never led);
  /// "time to suppression" — after this point the reputation system kept
  /// attackers out of office for the rest of the run.
  util::TimeMicros last_byz_led_us = 0;
  /// Final reputation penalty per replica (vcBlock series; 0 when the
  /// protocol records no reputation, i.e. the baselines).
  std::vector<types::Penalty> final_rp;
  /// One point of an attacker's reputation-penalty trajectory (fig13).
  struct RpPoint {
    uint32_t replica = 0;
    util::TimeMicros at = 0;
    types::View view = 0;
    types::Penalty rp = 0;
  };
  std::vector<RpPoint> byz_rp_trajectory;

  std::vector<PhaseOutcome> phases;
};

/// Seed-sweep aggregate over one protocol.
struct ScenarioAggregate {
  std::string scenario;
  uint32_t n = 0;
  uint64_t base_seed = 0;
  uint32_t num_seeds = 0;
  bool all_safe = true;
  double tps_mean = 0.0;
  double tps_min = 0.0;
  double tps_max = 0.0;
  double p50_ms_mean = 0.0;
  double p99_ms_mean = 0.0;
  int64_t committed_total = 0;
  int64_t view_changes_total = 0;
  int64_t elections_won_total = 0;
  int64_t replies_total = 0;
  int64_t duplicate_suppressed_total = 0;
  int64_t result_mismatches_total = 0;
  uint64_t messages_dropped_total = 0;
  uint64_t events_total = 0;   ///< Deterministic (sum of per-seed events).
  uint64_t hashes_total = 0;   ///< Deterministic (sum of per-seed hashes).
  double run_wall_ms_total = 0.0;  ///< Summed per-run CPU wall time; with
                                   ///< jobs > 1 this exceeds elapsed time.
  std::vector<ScenarioSeedResult> seeds;
};

/// Replica index a majority of honest replicas currently consider leader
/// (ties break toward the lowest index; every protocol here exposes
/// current_leader()).
template <typename Cluster>
uint32_t CurrentLeaderIndex(const Cluster& cluster) {
  std::vector<uint32_t> votes(cluster.num_replicas(), 0);
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    const auto& replica = cluster.replica(i);
    if (replica.fault().IsByzantine()) continue;
    const uint32_t leader = replica.current_leader();
    if (leader < votes.size()) ++votes[leader];
  }
  return static_cast<uint32_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

/// Applies one phase's settings to the cluster at the current virtual time.
template <typename Cluster>
void ApplyPhase(Cluster& cluster, const Phase& phase) {
  sim::FaultPlane& plane = cluster.network().fault_plane();

  auto replica_group = [&](const std::vector<uint32_t>& indices) {
    std::vector<sim::ActorId> ids;
    ids.reserve(indices.size());
    for (uint32_t i : indices) ids.push_back(cluster.replica_actor_id(i));
    return ids;
  };

  if (phase.set_partition) {
    if (phase.partition.empty()) {
      plane.Heal();
    } else {
      std::vector<std::vector<sim::ActorId>> groups;
      groups.reserve(phase.partition.size());
      for (const auto& group : phase.partition) {
        groups.push_back(replica_group(group));
      }
      plane.Partition(groups);
    }
  } else if (phase.partition_leader) {
    const uint32_t leader = CurrentLeaderIndex(cluster);
    std::vector<uint32_t> rest;
    for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
      if (i != leader) rest.push_back(i);
    }
    plane.Partition({replica_group({leader}), replica_group(rest)});
  }

  if (phase.set_link_faults) {
    plane.ClearAllLinkFaults();
    // The phase's default degrades every replica-to-replica link; client
    // links stay clean (the scenarios target the consensus fabric).
    if (phase.default_link_fault.has_value() &&
        phase.default_link_fault->Active()) {
      for (uint32_t a = 0; a < cluster.num_replicas(); ++a) {
        for (uint32_t b = 0; b < cluster.num_replicas(); ++b) {
          if (a == b) continue;
          plane.SetLinkFault(cluster.replica_actor_id(a),
                             cluster.replica_actor_id(b),
                             *phase.default_link_fault);
        }
      }
    }
    for (const LinkFaultRule& rule : phase.link_faults) {
      plane.SetLinkFault(cluster.replica_actor_id(rule.from),
                         cluster.replica_actor_id(rule.to), rule.fault);
    }
  }

  for (uint32_t i : phase.crash) cluster.SetReplicaDown(i, true);
  for (uint32_t i : phase.recover) cluster.SetReplicaDown(i, false);

  const double load = std::min(1.0, std::max(0.0, phase.load));
  const uint32_t active_pools = static_cast<uint32_t>(
      std::lround(load * static_cast<double>(cluster.num_pools())));
  for (uint32_t p = 0; p < cluster.num_pools(); ++p) {
    cluster.pool(p).SetActive(p < active_pools);
  }
}

/// Runs `spec` once on a fresh cluster built from (config, workload).
/// config.n is overridden by the spec's cluster size.
template <typename Replica, typename Config>
ScenarioSeedResult RunScenarioSeed(const ScenarioSpec& spec, Config config,
                                   WorkloadOptions workload) {
  // Per-run hash attribution: every Sha256::Finish on this thread (cluster
  // construction included — the KeyStore hashes) is credited to this run,
  // which stays exact when sweeps run seeds on parallel worker threads.
  crypto::CryptoMeter meter;
  crypto::ScopedCryptoMeter meter_scope(&meter);
  const auto wall_start = std::chrono::steady_clock::now();

  config.n = spec.n;
  std::vector<types::FaultSpec> faults = spec.byzantine;
  faults.resize(spec.n, types::FaultSpec::Honest());

  // Active adversaries: one scripted policy per run, installed on every
  // replica and client pool before Start(). Honest specs skip the wiring
  // entirely, so their runs stay byte-identical to pre-adversary builds.
  const bool adversary_present = !spec.adversary.Empty();
  const ScriptedAdversary adversary(spec.adversary);
  const std::vector<bool> byzantine = BuildByzantineSet(spec);
  if (spec.kv_workload) {
    // Forged-reply adversaries need real command bytes: only a service
    // that folds them into its state digest can genuinely diverge.
    workload.command_kind = workload::CommandKind::kKvPut;
  }

  Cluster<Replica, Config> cluster(config, workload, faults);
  cluster.network().fault_plane().Seed(workload.seed);
  if (spec.kv_workload) {
    cluster.InstallServices([&workload]() {
      return std::make_unique<app::KvService>(workload.kv_key_space);
    });
  }
  if (adversary_present) cluster.SetAdversary(&adversary);
  cluster.Start();

  ScenarioSeedResult result;
  result.seed = workload.seed;
  result.adversary_present = adversary_present;

  int64_t committed_at_phase_start = 0;
  for (const Phase& phase : spec.phases) {
    PhaseOutcome outcome;
    outcome.name = phase.name;
    outcome.start = cluster.simulator().Now();
    ApplyPhase(cluster, phase);
    cluster.RunFor(phase.duration);
    outcome.end = cluster.simulator().Now();
    const int64_t committed_now = cluster.ClientCommitted();
    outcome.committed = committed_now - committed_at_phase_start;
    committed_at_phase_start = committed_now;
    outcome.safety = CheckSafety(cluster, byzantine);
    if (!outcome.safety.ok && result.safety_ok) {
      result.safety_ok = false;
      result.violation = phase.name + ": " + outcome.safety.violation;
    }
    result.phases.push_back(std::move(outcome));
  }

  result.committed = cluster.ClientCommitted();
  result.tps = static_cast<double>(result.committed) /
               util::ToSeconds(std::max<util::DurationMicros>(
                   1, spec.TotalDuration()));
  result.p50_ms = cluster.LatencyPercentileMs(50);
  result.p99_ms = cluster.LatencyPercentileMs(99);
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    result.view_changes += cluster.replica(i).metrics().view_changes_started;
    result.elections_won += cluster.replica(i).metrics().elections_won;
  }
  if (adversary_present) {
    for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
      const auto& m = cluster.replica(i).metrics();
      const bool byz = i < byzantine.size() && byzantine[i];
      if (byz) {
        result.byz_views_led += m.views_led;
        result.last_byz_led_us =
            std::max(result.last_byz_led_us, m.last_led_at);
        for (const core::RpSample& s : m.rp_history) {
          result.byz_rp_trajectory.push_back(
              ScenarioSeedResult::RpPoint{i, s.at, s.view, s.rp});
        }
      } else {
        result.honest_views_led += m.views_led;
      }
      result.final_rp.push_back(
          m.rp_history.empty() ? 0 : m.rp_history.back().rp);
    }
  }
  result.replies = cluster.RepliesReceived();
  result.duplicate_suppressed = cluster.DuplicatesSuppressed();
  result.result_mismatches = cluster.ResultMismatches();
  result.executed = cluster.ExecutedTotal();
  if (!result.phases.empty()) {
    result.min_height = result.phases.back().safety.min_height;
    result.max_height = result.phases.back().safety.max_height;
  }
  const sim::NetworkStats& net = cluster.network().stats();
  result.messages_sent = net.messages_sent;
  result.messages_dropped = net.messages_dropped;
  result.messages_cut = net.messages_cut;
  result.messages_duplicated = net.messages_duplicated;
  result.messages_reordered = net.messages_reordered;
  result.events = cluster.simulator().events_executed();
  result.hashes = meter.finished;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

/// Runs `spec` for `num_seeds` consecutive seeds starting at `base_seed`
/// and aggregates. Each seed gets a fresh cluster; workload.seed is
/// overridden per run.
///
/// `jobs` > 1 runs the seeds on that many worker threads. Runs share
/// nothing mutable (each owns its Simulator, Network, KeyStore, replicas,
/// and — via thread-scoped CryptoMeters — its hash accounting), so the
/// per-seed results are identical to the serial path's; aggregation always
/// happens on the calling thread in ascending seed order, which keeps even
/// the floating-point means byte-identical. Worker count is capped at
/// num_seeds; jobs == 0 behaves as 1.
template <typename Replica, typename Config, typename SpecFn>
ScenarioAggregate RunScenarioSweepGen(SpecFn spec_fn, Config config,
                                      WorkloadOptions workload,
                                      uint64_t base_seed, uint32_t num_seeds,
                                      uint32_t jobs = 1) {
  std::vector<ScenarioSeedResult> results(num_seeds);
  const uint32_t workers = std::min(std::max<uint32_t>(jobs, 1), num_seeds);
  if (workers <= 1) {
    for (uint32_t i = 0; i < num_seeds; ++i) {
      WorkloadOptions w = workload;
      w.seed = base_seed + i;
      const ScenarioSpec spec = spec_fn(w.seed);
      results[i] = RunScenarioSeed<Replica, Config>(spec, config, w);
    }
  } else {
    std::atomic<uint32_t> next_index{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back([&]() {
        for (;;) {
          const uint32_t i =
              next_index.fetch_add(1, std::memory_order_relaxed);
          if (i >= num_seeds) return;
          WorkloadOptions w = workload;
          w.seed = base_seed + i;
          const ScenarioSpec spec = spec_fn(w.seed);
          results[i] = RunScenarioSeed<Replica, Config>(spec, config, w);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  ScenarioAggregate agg;
  const ScenarioSpec first = spec_fn(base_seed);
  agg.scenario = first.name;
  agg.n = first.n;
  agg.base_seed = base_seed;
  agg.num_seeds = num_seeds;
  for (uint32_t i = 0; i < num_seeds; ++i) {
    ScenarioSeedResult& r = results[i];
    agg.all_safe = agg.all_safe && r.safety_ok;
    agg.committed_total += r.committed;
    agg.view_changes_total += r.view_changes;
    agg.elections_won_total += r.elections_won;
    agg.replies_total += r.replies;
    agg.duplicate_suppressed_total += r.duplicate_suppressed;
    agg.result_mismatches_total += r.result_mismatches;
    agg.messages_dropped_total += r.messages_dropped;
    agg.events_total += r.events;
    agg.hashes_total += r.hashes;
    agg.run_wall_ms_total += r.wall_ms;
    agg.tps_mean += r.tps;
    agg.p50_ms_mean += r.p50_ms;
    agg.p99_ms_mean += r.p99_ms;
    if (i == 0 || r.tps < agg.tps_min) agg.tps_min = r.tps;
    if (i == 0 || r.tps > agg.tps_max) agg.tps_max = r.tps;
    agg.seeds.push_back(std::move(r));
  }
  if (num_seeds > 0) {
    agg.tps_mean /= num_seeds;
    agg.p50_ms_mean /= num_seeds;
    agg.p99_ms_mean /= num_seeds;
  }
  return agg;
}

/// Fixed-spec sweep: every seed runs the same ScenarioSpec. The seed-keyed
/// generator overload above exists for schedule randomizers (byzantine-fuzz)
/// whose spec is itself a deterministic function of the seed.
template <typename Replica, typename Config>
ScenarioAggregate RunScenarioSweep(const ScenarioSpec& spec, Config config,
                                   WorkloadOptions workload,
                                   uint64_t base_seed, uint32_t num_seeds,
                                   uint32_t jobs = 1) {
  return RunScenarioSweepGen<Replica, Config>(
      [&spec](uint64_t) { return spec; }, config, workload, base_seed,
      num_seeds, jobs);
}

/// Canonical JSON rendering of one seed's deterministic metrics (wall_ms is
/// deliberately excluded). Two runs of the same (spec, seed) must produce
/// byte-identical strings — regardless of sweep parallelism — asserted by
/// tests/sim_fault_test.cc and tests/parallel_sweep_test.cc and usable as a
/// quick determinism probe.
inline std::string SeedResultJson(const ScenarioSeedResult& r) {
  char buf[832];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"seed\": %llu, \"safety_ok\": %s, \"committed\": %lld, "
                "\"tps\": %.3f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                "\"view_changes\": %lld, \"elections_won\": %lld, "
                "\"replies\": %lld, \"duplicate_suppressed\": %lld, "
                "\"result_mismatches\": %lld, \"executed\": %lld, "
                "\"min_height\": %lld, \"max_height\": %lld, "
                "\"messages_sent\": %llu, \"messages_dropped\": %llu, "
                "\"messages_cut\": %llu, \"messages_duplicated\": %llu, "
                "\"messages_reordered\": %llu, \"events\": %llu, "
                "\"hashes\": %llu",
                static_cast<unsigned long long>(r.seed),
                r.safety_ok ? "true" : "false",
                static_cast<long long>(r.committed), r.tps, r.p50_ms,
                r.p99_ms, static_cast<long long>(r.view_changes),
                static_cast<long long>(r.elections_won),
                static_cast<long long>(r.replies),
                static_cast<long long>(r.duplicate_suppressed),
                static_cast<long long>(r.result_mismatches),
                static_cast<long long>(r.executed),
                static_cast<long long>(r.min_height),
                static_cast<long long>(r.max_height),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.messages_dropped),
                static_cast<unsigned long long>(r.messages_cut),
                static_cast<unsigned long long>(r.messages_duplicated),
                static_cast<unsigned long long>(r.messages_reordered),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.hashes));
  out += buf;
  // Suppression metrics appear only for adversary runs, so honest-run JSON
  // stays byte-identical to pre-adversary builds.
  if (r.adversary_present) {
    std::snprintf(buf, sizeof(buf),
                  ", \"suppression\": {\"byz_views_led\": %lld, "
                  "\"honest_views_led\": %lld, \"last_byz_led_us\": %lld, "
                  "\"final_rp\": [",
                  static_cast<long long>(r.byz_views_led),
                  static_cast<long long>(r.honest_views_led),
                  static_cast<long long>(r.last_byz_led_us));
    out += buf;
    for (size_t i = 0; i < r.final_rp.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%lld", i == 0 ? "" : ", ",
                    static_cast<long long>(r.final_rp[i]));
      out += buf;
    }
    out += "], \"byz_rp_trajectory\": [";
    for (size_t i = 0; i < r.byz_rp_trajectory.size(); ++i) {
      const ScenarioSeedResult::RpPoint& p = r.byz_rp_trajectory[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"replica\": %u, \"at_us\": %lld, \"view\": %lld, "
                    "\"rp\": %lld}",
                    i == 0 ? "" : ", ", p.replica,
                    static_cast<long long>(p.at),
                    static_cast<long long>(p.view),
                    static_cast<long long>(p.rp));
      out += buf;
    }
    out += "]}";
  }
  out += ", \"phases\": [";
  for (size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseOutcome& p = r.phases[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"start_us\": %lld, \"end_us\": "
                  "%lld, \"committed\": %lld, \"safe\": %s}",
                  i == 0 ? "" : ", ", p.name.c_str(),
                  static_cast<long long>(p.start),
                  static_cast<long long>(p.end),
                  static_cast<long long>(p.committed),
                  p.safety.ok ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_SCENARIO_RUNNER_H_
