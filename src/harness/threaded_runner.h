// Executes a (threaded-capable) ScenarioSpec on the real-time backend.
//
// The simulator runner (scenario_runner.h) measures protocol behaviour in
// virtual time; this one measures what the implementation actually
// sustains on the host: real TPS, real client latency, true concurrency.
// The workload is identical — closed-loop client pools against the same
// protocol code — only the runtime::Env backend differs.
//
// Only fault-free full-load specs run here (harness::ThreadedCapable):
// partitions, link faults, and crashes are simulator machinery. The
// scenario's scripted duration becomes wall-clock run time, after which the
// cluster stops and the same cross-replica committed-prefix invariants
// (invariants.h) are swept over the replicas' chains.

#ifndef PRESTIGE_HARNESS_THREADED_RUNNER_H_
#define PRESTIGE_HARNESS_THREADED_RUNNER_H_

#include <string>

#include "harness/invariants.h"
#include "harness/scenario.h"
#include "harness/threaded_cluster.h"

namespace prestige {
namespace harness {

/// Metrics of one real-time run. All quantities are wall-clock and
/// scheduler-dependent: reruns will differ (that is the point).
struct ThreadedRunResult {
  bool ran = false;          ///< False when the spec is not threaded-capable.
  std::string error;         ///< Why it did not run.
  double duration_seconds = 0.0;  ///< Wall-clock measurement window.
  int64_t committed = 0;     ///< Client-observed committed transactions.
  double tps = 0.0;          ///< committed / duration.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  int64_t view_changes = 0;
  int64_t elections_won = 0;
  int64_t replies = 0;               ///< Client-matched reply entries.
  int64_t duplicate_suppressed = 0;  ///< Session-table dedup hits.
  int64_t result_mismatches = 0;     ///< Conflicting result digests seen.
  int64_t executed = 0;              ///< Exactly-once service executions.
  uint64_t messages_delivered = 0;
  uint32_t workers = 0;  ///< Prologue workers per node (0 = classic path).
  bool safety_ok = true;
  std::string violation;
  types::SeqNum min_height = 0;
  types::SeqNum max_height = 0;
};

/// Runs `spec`'s workload on a fresh ThreadedCluster for its scripted
/// duration of *wall* time, then checks safety. config.n is overridden by
/// the spec's cluster size.
template <typename Replica, typename Config>
ThreadedRunResult RunThreadedScenario(const ScenarioSpec& spec, Config config,
                                      WorkloadOptions workload) {
  ThreadedRunResult result;
  if (!ThreadedCapable(spec)) {
    result.error = "scenario '" + spec.name +
                   "' uses simulator-only faults (partitions / link faults / "
                   "crashes / partial load); the threaded backend runs "
                   "fault-free workloads";
    return result;
  }

  config.n = spec.n;
  ThreadedCluster<Replica, Config> cluster(config, workload);
  const util::DurationMicros duration = spec.TotalDuration();
  cluster.Start();
  cluster.RunFor(duration);
  cluster.Stop();

  result.ran = true;
  result.duration_seconds = util::ToSeconds(duration);
  result.committed = cluster.ClientCommitted();
  result.tps =
      static_cast<double>(result.committed) / result.duration_seconds;
  result.p50_ms = cluster.LatencyPercentileMs(50);
  result.p99_ms = cluster.LatencyPercentileMs(99);
  result.mean_ms = cluster.MeanLatencyMs();
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    result.view_changes += cluster.replica(i).metrics().view_changes_started;
    result.elections_won += cluster.replica(i).metrics().elections_won;
  }
  result.replies = cluster.RepliesReceived();
  result.duplicate_suppressed = cluster.DuplicatesSuppressed();
  result.result_mismatches = cluster.ResultMismatches();
  result.executed = cluster.ExecutedTotal();
  result.messages_delivered = cluster.runtime().messages_delivered();
  result.workers = cluster.runtime().workers_per_node();

  const SafetyReport safety = CheckSafety(cluster);
  result.safety_ok = safety.ok;
  result.violation = safety.violation;
  result.min_height = safety.min_height;
  result.max_height = safety.max_height;
  return result;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_THREADED_RUNNER_H_
