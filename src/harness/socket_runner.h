// Executes a (socket-capable) ScenarioSpec on the socket backend inside
// one process.
//
// Same shape as threaded_runner.h, but every message crosses the kernel's
// UDP stack through the net/ framing and wire codec — this measures what
// the implementation sustains over a real (loopback) network, including
// serialization cost and datagram loss under overload. Capability gating
// is shared with the threaded backend (ThreadedCapable): fault-free,
// full-load, single-group, closed-loop scenarios only.
//
// The result reuses ThreadedRunResult so bench/report plumbing treats the
// backends uniformly; `workers` is always 0 here (no prologue pool) and
// frame-level counters are exposed separately via `net`.

#ifndef PRESTIGE_HARNESS_SOCKET_RUNNER_H_
#define PRESTIGE_HARNESS_SOCKET_RUNNER_H_

#include <string>

#include "harness/invariants.h"
#include "harness/scenario.h"
#include "harness/socket_cluster.h"
#include "harness/threaded_runner.h"

namespace prestige {
namespace harness {

/// ThreadedRunResult plus the socket backend's frame-level counters.
struct SocketRunResult {
  ThreadedRunResult base;
  net::FrameCounters net;
};

/// Runs `spec`'s workload on a fresh SocketCluster for its scripted
/// duration of wall time, then checks safety. config.n is overridden by
/// the spec's cluster size.
template <typename Replica, typename Config>
SocketRunResult RunSocketScenario(const ScenarioSpec& spec, Config config,
                                  WorkloadOptions workload) {
  SocketRunResult result;
  if (!ThreadedCapable(spec)) {
    result.base.error =
        "scenario '" + spec.name +
        "' uses simulator-only faults (partitions / link faults / crashes / "
        "partial load); the socket backend runs fault-free workloads";
    return result;
  }

  config.n = spec.n;
  SocketCluster<Replica, Config> cluster(config, workload);
  const util::DurationMicros duration = spec.TotalDuration();
  cluster.Start();
  cluster.RunFor(duration);
  cluster.Stop();

  result.base.ran = true;
  result.base.duration_seconds = util::ToSeconds(duration);
  result.base.committed = cluster.ClientCommitted();
  result.base.tps = static_cast<double>(result.base.committed) /
                    result.base.duration_seconds;
  result.base.p50_ms = cluster.LatencyPercentileMs(50);
  result.base.p99_ms = cluster.LatencyPercentileMs(99);
  result.base.mean_ms = cluster.MeanLatencyMs();
  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    result.base.view_changes +=
        cluster.replica(i).metrics().view_changes_started;
    result.base.elections_won += cluster.replica(i).metrics().elections_won;
  }
  result.base.replies = cluster.RepliesReceived();
  result.base.duplicate_suppressed = cluster.DuplicatesSuppressed();
  result.base.result_mismatches = cluster.ResultMismatches();
  result.base.executed = cluster.ExecutedTotal();
  result.base.messages_delivered = cluster.runtime().messages_delivered();
  result.net = cluster.runtime().net_stats();

  const SafetyReport safety = CheckSafety(cluster);
  result.base.safety_ok = safety.ok;
  result.base.violation = safety.violation;
  result.base.min_height = safety.min_height;
  result.base.max_height = safety.max_height;
  return result;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_SOCKET_RUNNER_H_
