// ProcessCluster: launches an n-replica (+ client pools) deployment as
// separate OS processes over loopback UDP and sweeps safety invariants
// over their post-mortem reports.
//
// The launcher side of the deployment story (the node side is
// tools/prestige_node):
//   1. allocate loopback ports and write a net::ClusterConfig file;
//   2. fork/exec one prestige_node per node, stdout/err to per-node logs;
//   3. ping-barrier every control socket until the fleet is up;
//   4. let the scripted duration elapse, then `stop` + `status` + `quit`
//      each node over its control socket and reap the processes;
//   5. parse the status JSON and re-run the CheckSafety sweep — per-height
//      digest agreement, execution agreement at equal heights, and
//      executed + duplicates == chain-tx conservation — over the reported
//      chains, exactly the invariants the in-process harnesses enforce.
//
// Unlike the in-process clusters this cannot inspect replica objects, so
// nodes self-report: each status reply carries the replica's committed
// chain as (n, digest-prefix, tx-count) triples plus its execution
// counters, or the pool's client statistics. A crashed node (no status
// reply) fails the run.

#ifndef PRESTIGE_HARNESS_PROCESS_CLUSTER_H_
#define PRESTIGE_HARNESS_PROCESS_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/frame.h"

namespace prestige {
namespace harness {

/// Everything one node reported in its final `status` reply.
struct NodeReport {
  uint32_t id = 0;
  bool is_replica = true;
  bool responded = false;
  std::string raw;  ///< The full status JSON line, for logs/artifacts.

  // Replica fields.
  int64_t committed_txs = 0;
  int64_t committed_blocks = 0;
  int64_t view_changes = 0;
  int64_t elections_won = 0;
  int64_t executed = 0;
  int64_t duplicates = 0;
  uint64_t state_digest = 0;
  struct ChainEntry {
    int64_t n = 0;
    std::string digest_hex;  ///< First 8 digest bytes, 16 hex chars.
    int64_t txs = 0;
  };
  std::vector<ChainEntry> chain;

  // Pool fields.
  int64_t completed = 0;
  int64_t replies = 0;
  int64_t result_mismatches = 0;
  int64_t retransmissions = 0;
  int64_t expired = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  net::FrameCounters net;
};

/// Outcome of one multi-process run.
struct ProcessClusterResult {
  bool ran = false;
  std::string error;  ///< Launch/harvest failure when !ran.
  double duration_seconds = 0.0;
  int64_t committed = 0;  ///< Client-observed, summed over pools.
  double tps = 0.0;
  double p50_ms = 0.0;  ///< Max over pools (conservative).
  double p99_ms = 0.0;
  int64_t view_changes = 0;
  int64_t elections_won = 0;
  int64_t executed = 0;
  int64_t duplicates = 0;
  int64_t replies = 0;
  int64_t result_mismatches = 0;
  bool safety_ok = false;
  std::string violation;
  int64_t min_height = 0;
  int64_t max_height = 0;
  net::FrameCounters net;  ///< Summed over every node.
  std::vector<NodeReport> nodes;
};

/// Launch parameters beyond the cluster config itself.
struct ProcessClusterOptions {
  net::ClusterConfig config;  ///< Peer addresses are filled by the launcher.
  std::string node_binary;    ///< Path to prestige_node.
  std::string work_dir;       ///< Config + per-node logs land here.
  int startup_timeout_ms = 15000;  ///< Ping-barrier budget for the fleet.
  int control_timeout_ms = 30000;  ///< Per-command control-socket budget.
};

/// Allocates loopback ports for every node of `options.config` (replicas
/// 0..n-1 then pools n..n+pools-1) and rewrites its peer list. Returns
/// false if the kernel refuses a port.
bool AllocateLoopbackPorts(net::ClusterConfig* config, std::string* error);

/// Runs the full launch → run → harvest → sweep sequence. Always reaps
/// every child it spawned (SIGKILL on the error paths).
ProcessClusterResult RunProcessCluster(const ProcessClusterOptions& options);

/// The CheckSafety sweep over self-reported chains; exposed for tests.
/// Returns true and fills heights when every invariant holds, else false
/// with `violation` describing the first failure.
bool SweepReportedSafety(const std::vector<NodeReport>& nodes,
                         std::string* violation, int64_t* min_height,
                         int64_t* max_height);

// Minimal JSON field extractors for the flat status documents the control
// protocol emits (exposed for tests and prestige_cluster's reporting).
// They scan for `"key":` at top level or inside nested objects; the first
// occurrence wins, so emit unambiguous keys.
bool JsonFindInt(const std::string& json, const std::string& key,
                 int64_t* out);
bool JsonFindDouble(const std::string& json, const std::string& key,
                    double* out);
bool JsonFindString(const std::string& json, const std::string& key,
                    std::string* out);

/// Parses one node's status JSON into a NodeReport (id/kind/counters/
/// chain). Returns false on documents missing the `kind` marker.
bool ParseNodeStatus(const std::string& json, NodeReport* out);

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_PROCESS_CLUSTER_H_
