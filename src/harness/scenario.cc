// Built-in scenario library. Each spec targets one adversarial regime the
// paper's evaluation cares about (§6.2) but that the fig* benches cannot
// express: partitions, asymmetric flaky links, and faults timed against the
// view-change window.

#include "harness/scenario.h"

namespace prestige {
namespace harness {
namespace {

Phase Warmup(util::DurationMicros duration = util::Seconds(2)) {
  Phase p;
  p.name = "warmup";
  p.duration = duration;
  return p;
}

Phase HealAll(const char* name, util::DurationMicros duration) {
  Phase p;
  p.name = name;
  p.duration = duration;
  p.set_partition = true;  // Empty group list = heal.
  p.set_link_faults = true;  // No faults listed = clean links.
  return p;
}

/// Fault-free full-load replication. The reference workload for comparing
/// execution backends: it has no partition / link-fault / crash phases, so
/// it runs unchanged on both the simulator and the threaded real-time
/// runtime (bench_runner --runtime=threaded).
ScenarioSpec SteadyState() {
  ScenarioSpec s;
  s.name = "steady-state";
  s.description = "n=4: fault-free full-load replication (backend baseline)";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase steady;
  steady.name = "steady";
  steady.duration = util::Seconds(4);
  s.phases.push_back(steady);
  return s;
}

/// A minority replica is cut off; the majority must keep committing and,
/// on heal, the minority catches up without forking.
ScenarioSpec PartitionMinority() {
  ScenarioSpec s;
  s.name = "partition-minority";
  s.description = "n=4: replica 3 partitioned 3s, then healed";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase split;
  split.name = "minority-cut";
  split.duration = util::Seconds(3);
  split.set_partition = true;
  split.partition = {{0, 1, 2}, {3}};
  s.phases.push_back(split);

  s.phases.push_back(HealAll("heal", util::Seconds(3)));
  return s;
}

/// The *leader* is cut off mid-run: the majority side must detect the
/// failure and elect a replacement (active view change under partition).
ScenarioSpec PartitionLeader() {
  ScenarioSpec s;
  s.name = "partition-leader";
  s.description = "n=4: current leader isolated 4s (forced view change)";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase cut;
  cut.name = "leader-cut";
  cut.duration = util::Seconds(4);
  cut.partition_leader = true;
  s.phases.push_back(cut);

  s.phases.push_back(HealAll("heal", util::Seconds(3)));
  return s;
}

/// Every link degrades at once: loss, duplication, and reordering. The
/// protocols must stay safe and keep (reduced) throughput.
ScenarioSpec FlakyLinks() {
  ScenarioSpec s;
  s.name = "flaky-links";
  s.description =
      "n=4: all links 5% loss / 2% duplication / 10% reordering for 4s";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase flaky;
  flaky.name = "flaky";
  flaky.duration = util::Seconds(4);
  flaky.set_link_faults = true;
  flaky.default_link_fault = sim::LinkFault::Flaky(0.05, 0.02, 0.10);
  s.phases.push_back(flaky);

  s.phases.push_back(HealAll("clean", util::Seconds(2)));
  return s;
}

/// Rolling crash/recovery churn under reduced load: one replica at a time
/// goes down, a previously crashed one comes back.
ScenarioSpec Churn() {
  ScenarioSpec s;
  s.name = "churn";
  s.description = "n=7: rolling single-replica crash/recovery at half load";
  s.n = 7;
  s.phases.push_back(Warmup());

  const uint32_t victims[] = {1, 2, 3};
  uint32_t previous = 0;
  bool first = true;
  for (uint32_t victim : victims) {
    Phase p;
    p.name = "crash-" + std::to_string(victim);
    p.duration = util::Seconds(2);
    p.crash = {victim};
    if (!first) p.recover = {previous};
    p.load = 0.5;
    s.phases.push_back(p);
    previous = victim;
    first = false;
  }

  Phase recover;
  recover.name = "recover-all";
  recover.duration = util::Seconds(3);
  recover.recover = {previous};
  s.phases.push_back(recover);
  return s;
}

/// The nastiest timing: the leader crashes, and while the survivors are
/// mid view change the survivor set itself partitions (no quorum anywhere).
/// Nothing may commit on either side of the split; after heal the three
/// survivors (exactly 2f+1) must finish the election and resume.
ScenarioSpec PartitionDuringViewChange() {
  ScenarioSpec s;
  s.name = "partition-during-view-change";
  s.description =
      "n=4: leader crash, then survivors partition mid view change";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase crash;
  crash.name = "leader-crash";
  crash.duration = util::Millis(600);  // Inside the timeout window.
  crash.crash = {0};
  s.phases.push_back(crash);

  Phase split;
  split.name = "split-survivors";
  split.duration = util::Seconds(3);
  split.set_partition = true;
  split.partition = {{1}, {2, 3}};  // No side holds a 2f+1 quorum.
  s.phases.push_back(split);

  Phase heal = HealAll("heal-elect", util::Seconds(4));
  s.phases.push_back(heal);
  return s;
}

}  // namespace

const std::vector<ScenarioSpec>& NamedScenarios() {
  static const std::vector<ScenarioSpec> kScenarios = {
      SteadyState(),        PartitionMinority(), PartitionLeader(),
      FlakyLinks(),         Churn(),             PartitionDuringViewChange(),
  };
  return kScenarios;
}

bool ThreadedCapable(const ScenarioSpec& spec) {
  for (const types::FaultSpec& fault : spec.byzantine) {
    if (fault.type != types::FaultType::kHonest) return false;
  }
  for (const Phase& p : spec.phases) {
    if (p.set_partition || p.partition_leader || p.set_link_faults ||
        !p.crash.empty() || !p.recover.empty() || p.load < 1.0) {
      return false;
    }
  }
  return true;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : NamedScenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace harness
}  // namespace prestige
