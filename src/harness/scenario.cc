// Built-in scenario library. Each spec targets one adversarial regime the
// paper's evaluation cares about (§6.2) but that the fig* benches cannot
// express: partitions, asymmetric flaky links, and faults timed against the
// view-change window.

#include "harness/scenario.h"

namespace prestige {
namespace harness {
namespace {

Phase Warmup(util::DurationMicros duration = util::Seconds(2)) {
  Phase p;
  p.name = "warmup";
  p.duration = duration;
  return p;
}

Phase HealAll(const char* name, util::DurationMicros duration) {
  Phase p;
  p.name = name;
  p.duration = duration;
  p.set_partition = true;  // Empty group list = heal.
  p.set_link_faults = true;  // No faults listed = clean links.
  return p;
}

/// Fault-free full-load replication. The reference workload for comparing
/// execution backends: it has no partition / link-fault / crash phases, so
/// it runs unchanged on both the simulator and the threaded real-time
/// runtime (bench_runner --runtime=threaded).
ScenarioSpec SteadyState() {
  ScenarioSpec s;
  s.name = "steady-state";
  s.description = "n=4: fault-free full-load replication (backend baseline)";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase steady;
  steady.name = "steady";
  steady.duration = util::Seconds(4);
  s.phases.push_back(steady);
  return s;
}

/// A minority replica is cut off; the majority must keep committing and,
/// on heal, the minority catches up without forking.
ScenarioSpec PartitionMinority() {
  ScenarioSpec s;
  s.name = "partition-minority";
  s.description = "n=4: replica 3 partitioned 3s, then healed";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase split;
  split.name = "minority-cut";
  split.duration = util::Seconds(3);
  split.set_partition = true;
  split.partition = {{0, 1, 2}, {3}};
  s.phases.push_back(split);

  s.phases.push_back(HealAll("heal", util::Seconds(3)));
  return s;
}

/// The *leader* is cut off mid-run: the majority side must detect the
/// failure and elect a replacement (active view change under partition).
ScenarioSpec PartitionLeader() {
  ScenarioSpec s;
  s.name = "partition-leader";
  s.description = "n=4: current leader isolated 4s (forced view change)";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase cut;
  cut.name = "leader-cut";
  cut.duration = util::Seconds(4);
  cut.partition_leader = true;
  s.phases.push_back(cut);

  s.phases.push_back(HealAll("heal", util::Seconds(3)));
  return s;
}

/// Every link degrades at once: loss, duplication, and reordering. The
/// protocols must stay safe and keep (reduced) throughput.
ScenarioSpec FlakyLinks() {
  ScenarioSpec s;
  s.name = "flaky-links";
  s.description =
      "n=4: all links 5% loss / 2% duplication / 10% reordering for 4s";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase flaky;
  flaky.name = "flaky";
  flaky.duration = util::Seconds(4);
  flaky.set_link_faults = true;
  flaky.default_link_fault = sim::LinkFault::Flaky(0.05, 0.02, 0.10);
  s.phases.push_back(flaky);

  s.phases.push_back(HealAll("clean", util::Seconds(2)));
  return s;
}

/// Rolling crash/recovery churn under reduced load: one replica at a time
/// goes down, a previously crashed one comes back.
ScenarioSpec Churn() {
  ScenarioSpec s;
  s.name = "churn";
  s.description = "n=7: rolling single-replica crash/recovery at half load";
  s.n = 7;
  s.phases.push_back(Warmup());

  const uint32_t victims[] = {1, 2, 3};
  uint32_t previous = 0;
  bool first = true;
  for (uint32_t victim : victims) {
    Phase p;
    p.name = "crash-" + std::to_string(victim);
    p.duration = util::Seconds(2);
    p.crash = {victim};
    if (!first) p.recover = {previous};
    p.load = 0.5;
    s.phases.push_back(p);
    previous = victim;
    first = false;
  }

  Phase recover;
  recover.name = "recover-all";
  recover.duration = util::Seconds(3);
  recover.recover = {previous};
  s.phases.push_back(recover);
  return s;
}

/// The nastiest timing: the leader crashes, and while the survivors are
/// mid view change the survivor set itself partitions (no quorum anywhere).
/// Nothing may commit on either side of the split; after heal the three
/// survivors (exactly 2f+1) must finish the election and resume.
ScenarioSpec PartitionDuringViewChange() {
  ScenarioSpec s;
  s.name = "partition-during-view-change";
  s.description =
      "n=4: leader crash, then survivors partition mid view change";
  s.n = 4;
  s.phases.push_back(Warmup());

  Phase crash;
  crash.name = "leader-crash";
  crash.duration = util::Millis(600);  // Inside the timeout window.
  crash.crash = {0};
  s.phases.push_back(crash);

  Phase split;
  split.name = "split-survivors";
  split.duration = util::Seconds(3);
  split.set_partition = true;
  split.partition = {{1}, {2, 3}};  // No side holds a 2f+1 quorum.
  s.phases.push_back(split);

  Phase heal = HealAll("heal-elect", util::Seconds(4));
  s.phases.push_back(heal);
  return s;
}

// ------------------------------------------------- active-adversary suite
//
// Each scenario scripts one ByzantineSpec behaviour through a
// warmup / attack / settle timeline. The attack window starts at 2s (after
// warmup) so every protocol is in steady state when the misbehaviour
// begins; the settle phase then shows whether the reputation engine keeps
// the attacker suppressed (PrestigeBFT) or the rotation schedule hands the
// view back (baselines).

Phase AttackPhase(util::DurationMicros duration = util::Seconds(4)) {
  Phase p;
  p.name = "attack";
  p.duration = duration;
  return p;
}

Phase SettlePhase(util::DurationMicros duration = util::Seconds(3)) {
  Phase p;
  p.name = "settle";
  p.duration = duration;
  return p;
}

/// The one FaultSpec the leader-attack scenarios compose with: an S1
/// campaigner that behaves honestly while leading (kNone — the scripted
/// ByzantineSpec supplies the in-office misbehaviour). Re-campaigning is
/// what makes the reputation engine's suppression observable: each failed
/// reign stalls the attacker's log contribution, so every re-election
/// ratchets its recorded penalty until the PoW prices it out of office.
/// The collusion speed-up (§6.2 joint computation) lets it reliably win
/// the first contested re-elections; the ratcheting difficulty still
/// prices it out within a couple of reigns.
types::FaultSpec RecampaignFault(util::TimeMicros at) {
  types::FaultSpec f = types::FaultSpec::RepeatedVc(
      types::AttackStrategy::kS1, types::LeaderMisbehaviour::kNone, 6.0);
  f.start_at = at;
  return f;
}

/// The genesis leader equivocates: conflicting block bodies per sequence
/// number to disjoint follower halves. Neither body can gather a verified
/// 2f+1 quorum, clients complain, and the view change both replaces and
/// penalizes the attacker — who keeps campaigning to get back in.
ScenarioSpec EquivocatingLeader() {
  ScenarioSpec s;
  s.name = "equivocating-leader";
  s.description =
      "n=4: replica 0 proposes conflicting bodies to follower halves from "
      "2s and re-campaigns after every deposition";
  s.n = 4;
  types::ReplicaMisbehaviour m;
  m.replica = 0;
  m.kind = types::Misbehaviour::kEquivocatingLeader;
  m.start_at = util::Seconds(2);
  m.equivocation_groups = 2;
  s.adversary.replicas.push_back(m);
  s.byzantine.assign(s.n, types::FaultSpec::Honest());
  s.byzantine[0] = RecampaignFault(util::Seconds(2));
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

/// The genesis leader wedges: heartbeats keep flowing (no crash signal)
/// but it never proposes or retransmits, so progress stalls until the
/// client-complaint path forces it out of office.
ScenarioSpec SlowLeader() {
  ScenarioSpec s;
  s.name = "slow-leader";
  s.description =
      "n=4: replica 0 wedged-but-heartbeat-alive from 2s, re-campaigning "
      "after every deposition (liveness attack)";
  s.n = 4;
  types::ReplicaMisbehaviour m;
  m.replica = 0;
  m.kind = types::Misbehaviour::kSlowLeader;
  m.start_at = util::Seconds(2);
  s.adversary.replicas.push_back(m);
  s.byzantine.assign(s.n, types::FaultSpec::Honest());
  s.byzantine[0] = RecampaignFault(util::Seconds(2));
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

/// Complaint-spamming clients: two pools broadcast bogus complaints about
/// never-submitted transactions every retry scan. The failure-detection
/// path must not let free complaints translate into free view changes.
ScenarioSpec ComplaintSpam() {
  ScenarioSpec s;
  s.name = "complaint-spam";
  s.description =
      "n=4: pools 0-1 spam 4 bogus complaints per scan from 2s";
  s.n = 4;
  s.adversary.spam_pools = 2;
  s.adversary.spam_complaints_per_scan = 4;
  s.adversary.spam_start_at = util::Seconds(2);
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

/// A vote-withholding clique: two replicas (f = 2 at n = 7) starve
/// everyone of their ordering/commit replies and campaign votes. The
/// remaining 2f+1 replicas must keep committing without them.
ScenarioSpec VoteWithholding() {
  ScenarioSpec s;
  s.name = "vote-withholding";
  s.description =
      "n=7: replicas 5 and 6 withhold all votes and replies from 2s";
  s.n = 7;
  for (uint32_t attacker : {5u, 6u}) {
    types::ReplicaMisbehaviour m;
    m.replica = attacker;
    m.kind = types::Misbehaviour::kVoteWithholding;
    m.start_at = util::Seconds(2);
    s.adversary.replicas.push_back(m);
  }
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

/// A forged-reply replica: executes tampered command bytes (its local KV
/// state genuinely diverges) and reports the forged results. Clients must
/// never complete a request on the forged digest (f+1 matching), and the
/// safety sweep must exclude the self-corrupted replica rather than call
/// its divergence a protocol violation.
ScenarioSpec ForgedReplies() {
  ScenarioSpec s;
  s.name = "forged-replies";
  s.description =
      "n=4: replica 2 executes tampered commands and forges replies from 2s";
  s.n = 4;
  s.kv_workload = true;
  types::ReplicaMisbehaviour m;
  m.replica = 2;
  m.kind = types::Misbehaviour::kForgedReply;
  m.start_at = util::Seconds(2);
  s.adversary.replicas.push_back(m);
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

/// Everything at once, bounded by f: an equivocator and a withholder among
/// the replicas plus complaint-spamming clients, at n = 7 (f = 2). The
/// composite stress run behind the fig09-style "benign vs Byzantine"
/// comparison.
ScenarioSpec MixedAdversary() {
  ScenarioSpec s;
  s.name = "mixed-adversary";
  s.description =
      "n=7: equivocator + vote withholder + complaint spam from 2s";
  s.n = 7;
  types::ReplicaMisbehaviour equivocator;
  equivocator.replica = 0;
  equivocator.kind = types::Misbehaviour::kEquivocatingLeader;
  equivocator.start_at = util::Seconds(2);
  s.adversary.replicas.push_back(equivocator);
  types::ReplicaMisbehaviour withholder;
  withholder.replica = 6;
  withholder.kind = types::Misbehaviour::kVoteWithholding;
  withholder.start_at = util::Seconds(2);
  s.adversary.replicas.push_back(withholder);
  s.adversary.spam_pools = 1;
  s.adversary.spam_complaints_per_scan = 2;
  s.adversary.spam_start_at = util::Seconds(2);
  s.phases.push_back(Warmup());
  s.phases.push_back(AttackPhase());
  s.phases.push_back(SettlePhase());
  return s;
}

}  // namespace

const std::vector<ScenarioSpec>& NamedScenarios() {
  static const std::vector<ScenarioSpec> kScenarios = {
      SteadyState(),        PartitionMinority(), PartitionLeader(),
      FlakyLinks(),         Churn(),             PartitionDuringViewChange(),
      EquivocatingLeader(), SlowLeader(),        ComplaintSpam(),
      VoteWithholding(),    ForgedReplies(),     MixedAdversary(),
  };
  return kScenarios;
}

bool ThreadedCapable(const ScenarioSpec& spec) {
  for (const types::FaultSpec& fault : spec.byzantine) {
    if (fault.type != types::FaultType::kHonest) return false;
  }
  // Scripted adversaries and the KV workload wiring are simulator-only
  // harness machinery.
  if (!spec.adversary.Empty() || spec.kv_workload) return false;
  for (const Phase& p : spec.phases) {
    if (p.set_partition || p.partition_leader || p.set_link_faults ||
        !p.crash.empty() || !p.recover.empty() || p.load < 1.0) {
      return false;
    }
  }
  return true;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : NamedScenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace harness
}  // namespace prestige
