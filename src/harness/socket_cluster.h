// SocketCluster: wires n replicas + closed-loop client pools onto the
// socket runtime inside ONE process — every node gets its own loopback UDP
// socket and event-loop thread, and all traffic crosses the kernel.
//
// This is the in-process twin of the multi-process deployment that
// prestige_node / prestige_cluster build: same runtime backend, same
// framing, same wire codec, same per-(seed, id) RNG derivation — only the
// process boundary differs. It exists so tests and bench_runner can
// exercise the socket transport without fork/exec, and so the cross-backend
// equivalence suite can sweep identical invariants over sim, threaded, and
// socket runs.
//
// Genericity contract matches ThreadedCluster (single-group, closed-loop):
// any Replica with
//   Replica(Config, ReplicaId, const KeyStore*, FaultSpec)
//   SetTopology(replica_node_ids, client_node_ids)
//   store() / metrics() / fault() / delivery()
// works. Node-id layout mirrors the other backends: replicas 0..n-1, then
// pools n..n+pools-1. After Stop() returns, reading replica stores,
// metrics, and pool histograms from the caller's thread is race-free.

#ifndef PRESTIGE_HARNESS_SOCKET_CLUSTER_H_
#define PRESTIGE_HARNESS_SOCKET_CLUSTER_H_

#include <cassert>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/keys.h"
#include "harness/cluster.h"
#include "runtime/socket_env.h"

namespace prestige {
namespace harness {

/// The loopback address nodes bind to (port 0 = kernel-assigned).
inline net::SockAddr LoopbackAny() {
  net::SockAddr addr;
  addr.ip = 0x7f000001;  // 127.0.0.1
  addr.port = 0;
  return addr;
}

/// A complete single-process socket deployment of one protocol. Reuses
/// WorkloadOptions; sim-only fields (latency, cost) and the sharding /
/// open-loop knobs are ignored — this backend runs single-group
/// closed-loop workloads (what ThreadedCapable admits).
template <typename Replica, typename Config>
class SocketCluster {
 public:
  SocketCluster(Config protocol, WorkloadOptions workload,
                std::vector<types::FaultSpec> faults = {})
      : protocol_(protocol),
        workload_(workload),
        runtime_(workload.seed),
        keys_(workload.seed ^ 0xc0ffee) {
    faults.resize(protocol_.n, types::FaultSpec::Honest());

    std::vector<runtime::NodeId> replica_ids;
    std::vector<runtime::NodeId> pool_ids;
    std::string error;
    for (uint32_t i = 0; i < protocol_.n; ++i) {
      replicas_.push_back(
          std::make_unique<Replica>(protocol_, i, &keys_, faults[i]));
      const bool ok =
          runtime_.AddNode(replicas_.back().get(), i, LoopbackAny(), &error);
      assert(ok && "loopback bind failed");
      (void)ok;
      replica_ids.push_back(i);
    }
    for (uint32_t p = 0; p < workload_.num_pools; ++p) {
      workload::ClientPoolConfig pool_config;
      pool_config.pool_id = p;
      pool_config.num_clients = workload_.clients_per_pool;
      pool_config.payload_size = workload_.payload_size;
      pool_config.f = protocol_.f();
      pool_config.request_timeout = workload_.client_timeout;
      pool_config.command_kind = workload_.command_kind;
      pool_config.kv_key_space = workload_.kv_key_space;
      pools_.push_back(std::make_unique<workload::ClientPool>(pool_config));
      const runtime::NodeId id = protocol_.n + p;
      const bool ok =
          runtime_.AddNode(pools_.back().get(), id, LoopbackAny(), &error);
      assert(ok && "loopback bind failed");
      (void)ok;
      pool_ids.push_back(id);
      pools_.back()->SetReplicas(replica_ids);
    }
    for (auto& replica : replicas_) {
      replica->SetTopology(replica_ids, pool_ids);
    }
  }

  /// Joins the event loops before any node is destroyed (members destruct
  /// in reverse declaration order; see ThreadedCluster::~ThreadedCluster).
  ~SocketCluster() { runtime_.Stop(); }

  void Start() { runtime_.Start(); }

  /// Lets the deployment run for `duration` of wall-clock time.
  void RunFor(util::DurationMicros duration) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }

  /// Stops every event loop and joins. Call before inspecting state.
  void Stop() { runtime_.Stop(); }

  Replica& replica(uint32_t i) { return *replicas_[i]; }
  const Replica& replica(uint32_t i) const { return *replicas_[i]; }
  workload::ClientPool& pool(uint32_t p) { return *pools_[p]; }
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t num_pools() const { return static_cast<uint32_t>(pools_.size()); }
  runtime::SocketRuntime& runtime() { return runtime_; }
  const Config& protocol_config() const { return protocol_; }

  /// Transactions committed, summed over all client pools (after Stop()).
  int64_t ClientCommitted() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->committed();
    return total;
  }

  /// Mean client latency in milliseconds across pools (after Stop()).
  double MeanLatencyMs() {
    double weighted = 0.0;
    size_t count = 0;
    for (auto& pool : pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    return count == 0 ? 0.0 : weighted / static_cast<double>(count);
  }

  /// Latency percentile over the merged samples of every pool.
  double LatencyPercentileMs(double p) {
    util::Histogram merged;
    for (auto& pool : pools_) merged.MergeFrom(pool->latencies());
    return merged.Percentile(p);
  }

  /// Installs an application service on every replica. Call before
  /// Start().
  void InstallServices(
      const std::function<std::unique_ptr<app::Service>()>& factory) {
    for (auto& replica : replicas_) replica->SetService(factory());
  }

  // Client/execution metrics (after Stop(); see cluster.h counterparts).
  int64_t RepliesReceived() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().replies_received;
    return total;
  }
  int64_t ResultMismatches() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().result_mismatches;
    return total;
  }
  int64_t DuplicatesSuppressed() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().duplicates_suppressed;
    }
    return total;
  }
  int64_t ExecutedTotal() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().executed;
    }
    return total;
  }

 private:
  Config protocol_;
  WorkloadOptions workload_;
  runtime::SocketRuntime runtime_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<workload::ClientPool>> pools_;
};

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_SOCKET_CLUSTER_H_
