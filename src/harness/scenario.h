// Declarative fault/workload scenarios.
//
// A ScenarioSpec is an ordered list of timed phases. Each phase can, at its
// start: install or heal a partition (expressed over replica *indices*, not
// actor ids), replace the cluster-wide / per-link degradation (LinkFault),
// crash or recover replicas, and set the workload intensity (fraction of
// client pools issuing requests). The spec also carries per-replica
// Byzantine FaultSpecs (F1-F4 behaviours activate at their own start_at
// inside a phase timeline).
//
// Specs are pure data: the same spec runs unchanged against PrestigeBFT,
// HotStuff, and SBFT clusters via scenario_runner.h, and the same
// (spec, seed) pair reproduces byte-identical virtual-time metrics.

#ifndef PRESTIGE_HARNESS_SCENARIO_H_
#define PRESTIGE_HARNESS_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "util/time.h"
#include "types/byzantine_spec.h"
#include "types/fault_spec.h"

namespace prestige {
namespace harness {

/// A LinkFault on one directed replica-to-replica link.
struct LinkFaultRule {
  uint32_t from = 0;  ///< Sender replica index.
  uint32_t to = 0;    ///< Receiver replica index.
  sim::LinkFault fault;
};

/// One timed phase of a scenario. All settings apply at phase start; the
/// phase then runs for `duration` of virtual time, after which the safety
/// invariants are checked (see invariants.h) and the next phase begins.
struct Phase {
  std::string name;
  util::DurationMicros duration = util::Seconds(2);

  /// When true, replaces the partition state: `partition` lists groups of
  /// replica indices that can only reach their own group (client pools stay
  /// unrestricted). An empty group list heals the network.
  bool set_partition = false;
  std::vector<std::vector<uint32_t>> partition;

  /// When true, isolates whichever replica currently leads (resolved at
  /// phase start by majority of the replicas' leader views) from all other
  /// replicas. Combines with `set_partition` being false.
  bool partition_leader = false;

  /// When true, replaces all link-level degradation: `default_link_fault`
  /// (if set) applies to every replica-to-replica link, then `link_faults`
  /// override individual directed links. When false, previous-phase faults
  /// persist.
  bool set_link_faults = false;
  std::optional<sim::LinkFault> default_link_fault;
  std::vector<LinkFaultRule> link_faults;

  /// Replicas crashed (network-level down) / recovered at phase start.
  std::vector<uint32_t> crash;
  std::vector<uint32_t> recover;

  /// Fraction of client pools issuing requests during this phase [0, 1].
  double load = 1.0;
};

/// A complete scenario: cluster size, Byzantine cast, and phase script.
struct ScenarioSpec {
  std::string name;
  std::string description;
  uint32_t n = 4;
  /// Per-replica Byzantine behaviours (resized to n with Honest()).
  std::vector<types::FaultSpec> byzantine;
  /// Active scripted adversaries (equivocation, wedging, withholding,
  /// forged replies, complaint spam), enacted via an AdversaryPolicy the
  /// runner installs on replicas and client pools. Empty = no adversary.
  types::ByzantineSpec adversary;
  /// Run the KV workload (real command bytes + KvService) instead of the
  /// null service — forged-reply adversaries need genuine application
  /// state to diverge.
  bool kv_workload = false;
  std::vector<Phase> phases;

  /// Total scripted virtual time.
  util::DurationMicros TotalDuration() const {
    util::DurationMicros total = 0;
    for (const Phase& p : phases) total += p.duration;
    return total;
  }
};

/// The built-in scenario library: fault scenarios (partition-minority,
/// partition-leader, flaky-links, churn, partition-during-view-change) and
/// the active-adversary suite (equivocating-leader, slow-leader,
/// complaint-spam, vote-withholding, forged-replies, mixed-adversary).
const std::vector<ScenarioSpec>& NamedScenarios();

/// Looks up a built-in scenario by name; nullptr when unknown.
const ScenarioSpec* FindScenario(const std::string& name);

/// True when `spec` uses no simulator-only machinery — partitions, link
/// faults, crashes, partial load, or a Byzantine cast — and can therefore
/// run unchanged on the threaded real-time backend (threaded_runner.h).
bool ThreadedCapable(const ScenarioSpec& spec);

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_SCENARIO_H_
