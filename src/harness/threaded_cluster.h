// ThreadedCluster: wires n replicas + client pools onto the real-time
// threaded runtime — the wall-clock twin of Cluster (cluster.h).
//
// Same genericity contract: any Replica with
//   Replica(Config, ReplicaId, const KeyStore*, FaultSpec)
//   SetTopology(replica_node_ids, client_node_ids)
//   store() / metrics() / fault()
// works, because the protocols speak only runtime::Env and never see which
// backend drives them. Node-id layout and RNG forking order mirror
// Cluster's (replicas first, then pools), so a protocol's per-node random
// streams are the same ones it would get in simulation for the same seed —
// though thread scheduling makes the interleaving, and therefore the run,
// nondeterministic.
//
// There is no Network here: no modelled bandwidth, latency, or CPU costs,
// and no fault plane. Messages travel through the runtime's in-process
// loopback queues at whatever rate the hardware sustains. Use RunFor /
// Stop, then inspect — after Stop() returns, reading replica stores,
// metrics, and pool histograms from the caller's thread is race-free.

#ifndef PRESTIGE_HARNESS_THREADED_CLUSTER_H_
#define PRESTIGE_HARNESS_THREADED_CLUSTER_H_

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "crypto/keys.h"
#include "harness/cluster.h"
#include "runtime/threaded_env.h"

namespace prestige {
namespace harness {

/// A complete real-time deployment of one protocol. Reuses WorkloadOptions;
/// the sim-only fields (latency, cost) are ignored by this backend.
template <typename Replica, typename Config>
class ThreadedCluster {
 public:
  ThreadedCluster(Config protocol, WorkloadOptions workload,
                  std::vector<types::FaultSpec> faults = {})
      : protocol_(protocol),
        workload_(workload),
        runtime_(workload.seed, workload.workers_per_node),
        keys_(workload.seed ^ 0xc0ffee) {
    faults.resize(protocol_.n, types::FaultSpec::Honest());

    std::vector<runtime::NodeId> replica_ids;
    std::vector<runtime::NodeId> pool_ids;
    for (uint32_t i = 0; i < protocol_.n; ++i) {
      replicas_.push_back(
          std::make_unique<Replica>(protocol_, i, &keys_, faults[i]));
      replica_ids.push_back(runtime_.AddNode(replicas_.back().get()));
    }
    for (uint32_t p = 0; p < workload_.num_pools; ++p) {
      workload::ClientPoolConfig pool_config;
      pool_config.pool_id = p;
      pool_config.num_clients = workload_.clients_per_pool;
      pool_config.payload_size = workload_.payload_size;
      pool_config.f = protocol_.f();
      pool_config.request_timeout = workload_.client_timeout;
      pool_config.command_kind = workload_.command_kind;
      pool_config.kv_key_space = workload_.kv_key_space;
      pools_.push_back(std::make_unique<workload::ClientPool>(pool_config));
      pool_ids.push_back(runtime_.AddNode(pools_.back().get()));
      pools_.back()->SetReplicas(replica_ids);
    }
    for (auto& replica : replicas_) {
      replica->SetTopology(replica_ids, pool_ids);
    }
  }

  /// Joins the event loops before any node is destroyed: members destruct
  /// in reverse declaration order, so without this a still-running cluster
  /// going out of scope (exception between Start and Stop) would tear down
  /// replicas/pools while loop threads are mid-callback.
  ~ThreadedCluster() { runtime_.Stop(); }

  /// Spawns the event loops (each node's OnStart runs on its own thread).
  void Start() { runtime_.Start(); }

  /// Lets the deployment run for `duration` of wall-clock time. The caller
  /// simply sleeps; the node threads do the work.
  void RunFor(util::DurationMicros duration) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }

  /// Stops every event loop and joins. Call before inspecting state.
  void Stop() { runtime_.Stop(); }

  Replica& replica(uint32_t i) { return *replicas_[i]; }
  const Replica& replica(uint32_t i) const { return *replicas_[i]; }
  workload::ClientPool& pool(uint32_t p) { return *pools_[p]; }
  uint32_t num_replicas() const { return protocol_.n; }
  uint32_t num_pools() const { return workload_.num_pools; }
  runtime::ThreadedRuntime& runtime() { return runtime_; }
  const Config& protocol_config() const { return protocol_; }

  /// Transactions committed, summed over all client pools. Pool counters
  /// are owned by their event-loop threads: call only after Stop(), which
  /// joins them and publishes the final values.
  int64_t ClientCommitted() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->committed();
    return total;
  }

  /// Mean client latency in milliseconds across pools (after Stop()).
  double MeanLatencyMs() {
    double weighted = 0.0;
    size_t count = 0;
    for (auto& pool : pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    return count == 0 ? 0.0 : weighted / static_cast<double>(count);
  }

  /// Latency percentile over pool 0's histogram (after Stop()).
  double LatencyPercentileMs(double p) {
    return pools_.empty() ? 0.0 : pools_[0]->latencies().Percentile(p);
  }

  /// Installs an application service on every replica (each gets its own
  /// instance from `factory`). Call before Start().
  void InstallServices(
      const std::function<std::unique_ptr<app::Service>()>& factory) {
    for (auto& replica : replicas_) replica->SetService(factory());
  }

  // Client/execution metrics (after Stop(); see cluster.h counterparts).
  int64_t RepliesReceived() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().replies_received;
    return total;
  }
  int64_t ResultMismatches() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().result_mismatches;
    return total;
  }
  int64_t DuplicatesSuppressed() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().duplicates_suppressed;
    }
    return total;
  }
  int64_t ExecutedTotal() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().executed;
    }
    return total;
  }

 private:
  Config protocol_;
  WorkloadOptions workload_;
  runtime::ThreadedRuntime runtime_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<workload::ClientPool>> pools_;
};

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_THREADED_CLUSTER_H_
