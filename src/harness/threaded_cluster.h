// ThreadedCluster: wires n replicas + client pools onto the real-time
// threaded runtime — the wall-clock twin of Cluster (cluster.h).
//
// Same genericity contract: any Replica with
//   Replica(Config, ReplicaId, const KeyStore*, FaultSpec)
//   SetTopology(replica_node_ids, client_node_ids)
//   store() / metrics() / fault()
// works, because the protocols speak only runtime::Env and never see which
// backend drives them. Node-id layout and RNG forking order mirror
// Cluster's (replicas first, then pools), so a protocol's per-node random
// streams are the same ones it would get in simulation for the same seed —
// though thread scheduling makes the interleaving, and therefore the run,
// nondeterministic.
//
// There is no Network here: no modelled bandwidth, latency, or CPU costs,
// and no fault plane. Messages travel through the runtime's in-process
// loopback queues at whatever rate the hardware sustains. Use RunFor /
// Stop, then inspect — after Stop() returns, reading replica stores,
// metrics, and pool histograms from the caller's thread is race-free.

#ifndef PRESTIGE_HARNESS_THREADED_CLUSTER_H_
#define PRESTIGE_HARNESS_THREADED_CLUSTER_H_

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "crypto/keys.h"
#include "harness/cluster.h"
#include "runtime/threaded_env.h"

namespace prestige {
namespace harness {

/// A complete real-time deployment of one protocol. Reuses WorkloadOptions;
/// the sim-only fields (latency, cost) are ignored by this backend.
template <typename Replica, typename Config>
class ThreadedCluster {
 public:
  ThreadedCluster(Config protocol, WorkloadOptions workload,
                  std::vector<types::FaultSpec> faults = {})
      : protocol_(protocol),
        workload_(workload),
        runtime_(workload.seed, workload.workers_per_node),
        keys_(workload.seed ^ 0xc0ffee) {
    if (workload_.num_groups == 0) workload_.num_groups = 1;
    const uint32_t groups = workload_.num_groups;
    // Group-major fault addressing, mirroring Cluster: an n-entry list
    // targets group 0, every other group runs honest.
    faults.resize(static_cast<size_t>(protocol_.n) * groups,
                  types::FaultSpec::Honest());

    // Node-id layout and RNG forking order mirror Cluster's (replicas
    // group-major, then pools group-major); one group reproduces the
    // historical wiring exactly.
    std::vector<std::vector<runtime::NodeId>> group_replica_ids(groups);
    std::vector<std::vector<runtime::NodeId>> group_pool_ids(groups);
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t i = 0; i < protocol_.n; ++i) {
        replicas_.push_back(std::make_unique<Replica>(
            protocol_, i, &keys_,
            faults[static_cast<size_t>(g) * protocol_.n + i]));
        group_replica_ids[g].push_back(
            runtime_.AddNode(replicas_.back().get()));
      }
    }
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t p = 0; p < workload_.num_pools; ++p) {
        client::Client* client = MakePool(g, p);
        group_pool_ids[g].push_back(runtime_.AddNode(client));
        client->SetReplicas(group_replica_ids[g]);
      }
    }
    // Per-group topologies: groups never intercommunicate, so each runs
    // its own leaders, views, and reputation.
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t i = 0; i < protocol_.n; ++i) {
        replicas_[static_cast<size_t>(g) * protocol_.n + i]->SetTopology(
            group_replica_ids[g], group_pool_ids[g]);
      }
    }
  }

  /// Joins the event loops before any node is destroyed: members destruct
  /// in reverse declaration order, so without this a still-running cluster
  /// going out of scope (exception between Start and Stop) would tear down
  /// replicas/pools while loop threads are mid-callback.
  ~ThreadedCluster() { runtime_.Stop(); }

  /// Spawns the event loops (each node's OnStart runs on its own thread).
  void Start() { runtime_.Start(); }

  /// Lets the deployment run for `duration` of wall-clock time. The caller
  /// simply sleeps; the node threads do the work.
  void RunFor(util::DurationMicros duration) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }

  /// Stops every event loop and joins. Call before inspecting state.
  void Stop() { runtime_.Stop(); }

  Replica& replica(uint32_t i) { return *replicas_[i]; }
  const Replica& replica(uint32_t i) const { return *replicas_[i]; }
  workload::ClientPool& pool(uint32_t p) { return *pools_[p]; }
  workload::OpenLoopPool& open_pool(uint32_t p) { return *open_pools_[p]; }
  /// Total replicas across groups (group-major; == protocol n unsharded).
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t num_pools() const { return static_cast<uint32_t>(pools_.size()); }
  uint32_t num_open_pools() const {
    return static_cast<uint32_t>(open_pools_.size());
  }
  uint32_t num_groups() const { return workload_.num_groups; }
  uint32_t replicas_per_group() const { return protocol_.n; }
  Replica& group_replica(uint32_t g, uint32_t i) {
    return *replicas_[static_cast<size_t>(g) * protocol_.n + i];
  }
  runtime::ThreadedRuntime& runtime() { return runtime_; }
  const Config& protocol_config() const { return protocol_; }

  /// Transactions committed, summed over all client pools. Pool counters
  /// are owned by their event-loop threads: call only after Stop(), which
  /// joins them and publishes the final values.
  int64_t ClientCommitted() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->committed();
    for (const auto& pool : open_pools_) total += pool->committed();
    return total;
  }

  /// Transactions committed by group g's pools alone (after Stop()).
  int64_t GroupCommitted(uint32_t g) const {
    int64_t total = 0;
    const uint32_t per = workload_.num_pools;
    for (uint32_t p = g * per; p < (g + 1) * per; ++p) {
      if (p < pools_.size()) total += pools_[p]->committed();
      if (p < open_pools_.size()) total += open_pools_[p]->committed();
    }
    return total;
  }

  /// Mean client latency in milliseconds across pools (after Stop()).
  double MeanLatencyMs() {
    double weighted = 0.0;
    size_t count = 0;
    for (auto& pool : pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    for (auto& pool : open_pools_) {
      weighted += pool->latencies().Mean() *
                  static_cast<double>(pool->latencies().count());
      count += pool->latencies().count();
    }
    return count == 0 ? 0.0 : weighted / static_cast<double>(count);
  }

  /// Latency percentile over the merged samples of EVERY pool (after
  /// Stop()). Mirrors Cluster::LatencyPercentileMs — pool 0 alone stopped
  /// being representative once pools can belong to different groups.
  double LatencyPercentileMs(double p) {
    util::Histogram merged;
    for (auto& pool : pools_) merged.MergeFrom(pool->latencies());
    for (auto& pool : open_pools_) merged.MergeFrom(pool->latencies());
    return merged.Percentile(p);
  }

  /// End-to-end (arrival → completion) percentile across open-loop pools.
  double E2eLatencyPercentileMs(double p) {
    util::Histogram merged;
    for (auto& pool : open_pools_) merged.MergeFrom(pool->e2e_latencies());
    return merged.Percentile(p);
  }

  // Open-loop aggregates (after Stop(); see cluster.h counterparts).
  int64_t TotalArrivals() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().arrivals;
    return total;
  }
  int64_t TotalAdmitted() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().admitted;
    return total;
  }
  int64_t TotalShed() const {
    int64_t total = 0;
    for (const auto& pool : open_pools_) total += pool->open_stats().shed;
    return total;
  }
  double SloFraction() const {
    int64_t met = 0, completed = 0;
    for (const auto& pool : open_pools_) {
      met += pool->open_stats().slo_met;
      completed += pool->stats().completed;
    }
    return completed == 0
               ? 1.0
               : static_cast<double>(met) / static_cast<double>(completed);
  }

  /// Installs an application service on every replica (each gets its own
  /// instance from `factory`). Call before Start().
  void InstallServices(
      const std::function<std::unique_ptr<app::Service>()>& factory) {
    for (auto& replica : replicas_) replica->SetService(factory());
  }

  // Client/execution metrics (after Stop(); see cluster.h counterparts).
  int64_t RepliesReceived() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().replies_received;
    return total;
  }
  int64_t ResultMismatches() const {
    int64_t total = 0;
    for (const auto& pool : pools_) total += pool->stats().result_mismatches;
    return total;
  }
  int64_t DuplicatesSuppressed() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().duplicates_suppressed;
    }
    return total;
  }
  int64_t ExecutedTotal() const {
    int64_t total = 0;
    for (const auto& replica : replicas_) {
      total += replica->delivery().stats().executed;
    }
    return total;
  }

 private:
  /// Builds pool p of group g; same policy as Cluster::MakePool (sharded
  /// deployments force kKvPut so keys can be routed).
  client::Client* MakePool(uint32_t g, uint32_t p) {
    const uint32_t groups = workload_.num_groups;
    const workload::CommandKind kind = groups > 1
                                           ? workload::CommandKind::kKvPut
                                           : workload_.command_kind;
    // Group-local pool ids: replicas index their own group's client
    // topology by pool id (see cluster.h).
    const types::ClientPoolId pool_id = p;
    if (workload_.open_loop) {
      workload::OpenLoopConfig pc;
      pc.pool_id = pool_id;
      pc.f = protocol_.f();
      pc.payload_size = workload_.payload_size;
      pc.request_timeout = workload_.client_timeout;
      pc.arrival = workload_.arrival;
      pc.logical_sessions = workload_.logical_sessions;
      pc.command_kind = kind;
      pc.kv_key_space = workload_.kv_key_space;
      pc.zipf_theta = workload_.zipf_theta;
      pc.max_outstanding = workload_.max_outstanding;
      pc.max_backlog = workload_.max_backlog;
      pc.slo_ms = workload_.slo_ms;
      pc.stop_at = workload_.open_loop_stop_at;
      pc.group = g;
      pc.num_groups = groups;
      pc.router_salt = workload_.router_salt;
      open_pools_.push_back(std::make_unique<workload::OpenLoopPool>(pc));
      return open_pools_.back().get();
    }
    workload::ClientPoolConfig pool_config;
    pool_config.pool_id = pool_id;
    pool_config.num_clients = workload_.clients_per_pool;
    pool_config.payload_size = workload_.payload_size;
    pool_config.f = protocol_.f();
    pool_config.request_timeout = workload_.client_timeout;
    pool_config.command_kind = kind;
    pool_config.kv_key_space = workload_.kv_key_space;
    pool_config.group = g;
    pool_config.num_groups = groups;
    pool_config.router_salt = workload_.router_salt;
    pools_.push_back(std::make_unique<workload::ClientPool>(pool_config));
    return pools_.back().get();
  }

  Config protocol_;
  WorkloadOptions workload_;
  runtime::ThreadedRuntime runtime_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<workload::ClientPool>> pools_;
  std::vector<std::unique_ptr<workload::OpenLoopPool>> open_pools_;
};

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_THREADED_CLUSTER_H_
