// Runs a sharded, open-loop deployment and sweeps its safety invariants.
//
// This is the planet-scale measurement harness: G consensus groups on one
// backend, driven by open-loop arrival traces (workload/open_loop_pool.h)
// instead of scenario scripts. Two entry points share one result shape:
//
//   RunShardedThreaded — wall-clock run on runtime::ThreadedRuntime; TPS
//     and latency are what the host actually sustains, and aggregate
//     committed throughput should rise with the group count on multicore
//     hardware (groups never intercommunicate, so they scale like
//     independent clusters sharing cores).
//   RunShardedSim — the same deployment in virtual time on the
//     deterministic simulator; numbers are modelled, runs are
//     reproducible per seed, and tests use this to pin invariant and
//     wiring behaviour without wall-clock flakiness.
//
// After the run, CheckShardedSafety (invariants.h) sweeps per-group
// committed-prefix/execution agreement, router consistency, and shard
// exclusivity; the report rides in the result. Latency is reported on
// both ladders: consensus latency (submit → f+1 completion) and the
// SLO-relevant end-to-end latency (arrival → completion, including
// admission queueing), the latter with p50/p99/p999.

#ifndef PRESTIGE_HARNESS_SHARDED_RUNNER_H_
#define PRESTIGE_HARNESS_SHARDED_RUNNER_H_

#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/invariants.h"
#include "harness/threaded_cluster.h"
#include "shard/router.h"

namespace prestige {
namespace harness {

/// Per-group slice of a sharded run.
struct GroupRunStats {
  int64_t committed = 0;      ///< Client-observed commits in this group.
  int64_t view_changes = 0;   ///< Summed over the group's replicas.
  int64_t elections_won = 0;
};

/// Metrics of one sharded open-loop run (threaded: wall-clock and
/// scheduler-dependent; sim: virtual-time and seed-deterministic).
struct ShardedRunResult {
  double duration_seconds = 0.0;
  uint32_t groups = 1;
  int64_t committed = 0;  ///< Aggregate over all groups.
  double tps = 0.0;       ///< committed / duration.

  // Consensus latency (submit → f+1-matched completion), merged pools.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  // End-to-end latency (arrival → completion, incl. admission queueing).
  double e2e_p50_ms = 0.0;
  double e2e_p99_ms = 0.0;
  double e2e_p999_ms = 0.0;
  double slo_ms = 0.0;        ///< The SLO the run was held to.
  double slo_fraction = 1.0;  ///< Completions inside the SLO.

  // Open-loop admission accounting, summed over pools.
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t shed = 0;

  int64_t replies = 0;
  int64_t result_mismatches = 0;
  int64_t executed = 0;
  uint64_t messages_delivered = 0;  ///< Threaded backend only.
  uint32_t workers = 0;             ///< Threaded backend only.

  std::vector<GroupRunStats> per_group;

  // CheckShardedSafety outcome.
  bool safety_ok = true;
  std::string violation;
  int64_t routed_txs = 0;
  int64_t distinct_keys = 0;
};

/// Harvests metrics + safety from a finished sharded cluster (threaded
/// after Stop(), sim after RunFor). Shared by both entry points.
template <typename AnyCluster>
ShardedRunResult CollectShardedRun(AnyCluster& cluster,
                                   const WorkloadOptions& workload,
                                   util::DurationMicros duration) {
  ShardedRunResult result;
  result.duration_seconds = util::ToSeconds(duration);
  result.groups = cluster.num_groups();
  result.committed = cluster.ClientCommitted();
  result.tps = result.duration_seconds > 0.0
                   ? static_cast<double>(result.committed) /
                         result.duration_seconds
                   : 0.0;
  result.p50_ms = cluster.LatencyPercentileMs(50);
  result.p99_ms = cluster.LatencyPercentileMs(99);
  result.mean_ms = cluster.MeanLatencyMs();
  result.e2e_p50_ms = cluster.E2eLatencyPercentileMs(50);
  result.e2e_p99_ms = cluster.E2eLatencyPercentileMs(99);
  result.e2e_p999_ms = cluster.E2eLatencyPercentileMs(99.9);
  result.slo_ms = workload.slo_ms;
  result.slo_fraction = cluster.SloFraction();
  result.arrivals = cluster.TotalArrivals();
  result.admitted = cluster.TotalAdmitted();
  result.shed = cluster.TotalShed();
  result.replies = cluster.RepliesReceived();
  result.result_mismatches = cluster.ResultMismatches();
  result.executed = cluster.ExecutedTotal();

  for (uint32_t g = 0; g < cluster.num_groups(); ++g) {
    GroupRunStats stats;
    stats.committed = cluster.GroupCommitted(g);
    for (uint32_t i = 0; i < cluster.replicas_per_group(); ++i) {
      const auto& metrics = cluster.group_replica(g, i).metrics();
      stats.view_changes += metrics.view_changes_started;
      stats.elections_won += metrics.elections_won;
    }
    result.per_group.push_back(stats);
  }

  const shard::Router router(cluster.num_groups(), workload.router_salt);
  const ShardedSafetyReport safety = CheckShardedSafety(cluster, router);
  result.safety_ok = safety.ok;
  result.violation = safety.violation;
  result.routed_txs = safety.routed_txs;
  result.distinct_keys = safety.distinct_keys;
  return result;
}

/// Per-replica application factory (nullptr keeps the default service).
using ServiceFactory = std::function<std::unique_ptr<app::Service>()>;

/// Wall-clock sharded run: G groups of config.n replicas, open-loop load,
/// `duration` of real time, then the full safety sweep.
template <typename Replica, typename Config>
ShardedRunResult RunShardedThreaded(Config config, WorkloadOptions workload,
                                    util::DurationMicros duration,
                                    const ServiceFactory& services = {}) {
  workload.open_loop = true;
  ThreadedCluster<Replica, Config> cluster(config, workload);
  if (services) cluster.InstallServices(services);
  cluster.Start();
  cluster.RunFor(duration);
  cluster.Stop();
  ShardedRunResult result = CollectShardedRun(cluster, workload, duration);
  result.messages_delivered = cluster.runtime().messages_delivered();
  result.workers = cluster.runtime().workers_per_node();
  return result;
}

/// Virtual-time sharded run on the deterministic simulator: same wiring
/// and checks, reproducible per seed (tests pin behaviour here).
template <typename Replica, typename Config>
ShardedRunResult RunShardedSim(Config config, WorkloadOptions workload,
                               util::DurationMicros duration,
                               const ServiceFactory& services = {}) {
  workload.open_loop = true;
  Cluster<Replica, Config> cluster(config, workload);
  if (services) cluster.InstallServices(services);
  cluster.Start();
  cluster.RunFor(duration);
  return CollectShardedRun(cluster, workload, duration);
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_SHARDED_RUNNER_H_
