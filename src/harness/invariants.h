// Cross-replica safety invariants, checked between scenario phases.
//
// Two checks over the honest replicas' committed txBlock chains:
//  1. agreement at every sequence number — no two honest replicas hold
//     different blocks at the same height (Theorem 3's guarantee);
//  2. committed-prefix agreement — combined with (1) and BlockStore's
//     append-time hash-chain enforcement, equal digests at every common
//     height imply one replica's chain is a prefix of the other's.
//
// Byzantine replicas (per their FaultSpec) are excluded: an equivocator's
// local bookkeeping carries no safety obligation. Crashed replicas are
// honest — they simply stopped early, and their (shorter) prefix must
// still agree.

#ifndef PRESTIGE_HARNESS_INVARIANTS_H_
#define PRESTIGE_HARNESS_INVARIANTS_H_

#include <cstdio>
#include <string>
#include <vector>

#include "ledger/block_store.h"
#include "util/hex.h"

namespace prestige {
namespace harness {

/// Outcome of one safety sweep.
struct SafetyReport {
  bool ok = true;
  std::string violation;  ///< Human-readable description when !ok.
  types::SeqNum min_height = 0;  ///< Shortest honest committed chain.
  types::SeqNum max_height = 0;  ///< Longest honest committed chain.
};

/// Checks chain agreement across every honest replica of `cluster`. Works
/// for any Cluster<Replica, Config> whose Replica exposes store() and
/// fault() (PrestigeBFT, HotStuff, and SBFT all do).
template <typename Cluster>
SafetyReport CheckSafety(const Cluster& cluster) {
  SafetyReport report;
  // Reference chain per height: (digest, owner) of the first honest
  // replica seen holding that height.
  struct Reference {
    crypto::Sha256Digest digest;
    uint32_t owner;
  };
  std::vector<Reference> reference;
  bool first_honest = true;

  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    const auto& replica = cluster.replica(i);
    if (replica.fault().IsByzantine() &&
        replica.fault().type != workload::FaultType::kCrash) {
      continue;
    }
    const auto& chain = replica.store().tx_chain();
    const types::SeqNum height = static_cast<types::SeqNum>(chain.size());
    if (first_honest || height < report.min_height) {
      report.min_height = height;
    }
    if (first_honest || height > report.max_height) {
      report.max_height = height;
    }
    first_honest = false;

    if (reference.size() < chain.size()) reference.resize(chain.size());
    for (size_t k = 0; k < chain.size(); ++k) {
      const crypto::Sha256Digest& digest = chain[k].Digest();
      if (reference[k].digest == crypto::Sha256Digest{}) {
        reference[k] = Reference{digest, i};
        continue;
      }
      if (reference[k].digest != digest) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "conflicting txBlocks at n=%lld: replica %u has %s…, "
                      "replica %u has %s…",
                      static_cast<long long>(chain[k].n()), reference[k].owner,
                      util::HexEncode(reference[k].digest.data(), 4).c_str(),
                      i, util::HexEncode(digest.data(), 4).c_str());
        report.ok = false;
        report.violation = buf;
        return report;
      }
    }
  }
  return report;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_INVARIANTS_H_
