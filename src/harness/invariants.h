// Cross-replica safety invariants, checked between scenario phases.
//
// Checks over the honest replicas' committed txBlock chains AND their
// application execution state:
//  1. agreement at every sequence number — no two honest replicas hold
//     different blocks at the same height (Theorem 3's guarantee);
//  2. committed-prefix agreement — combined with (1) and BlockStore's
//     append-time hash-chain enforcement, equal digests at every common
//     height imply one replica's chain is a prefix of the other's;
//  3. execution-result agreement — replicas at the same chain height must
//     report the same app::Service::StateDigest() and the same
//     exactly-once execution count (divergence means the service executed
//     different commands, in a different order, or a duplicate slipped
//     past a session table);
//  4. execution conservation — per replica, executed + duplicates
//     suppressed equals the transactions in its committed chain (nothing
//     double-executed, nothing skipped).
//
// Byzantine replicas are excluded: an equivocator's or forger's local
// bookkeeping carries no safety obligation. The exclusion set is the
// union of the FaultSpec cast (crash excluded — crashed replicas are
// honest, they simply stopped early, and their shorter prefix must still
// agree) and any scripted active adversaries the caller passes in
// (BuildByzantineSet in harness/adversary.h composes both). A scripted
// forged-reply replica genuinely diverges its application state, so
// including it would turn check (3) into a false safety violation.

#ifndef PRESTIGE_HARNESS_INVARIANTS_H_
#define PRESTIGE_HARNESS_INVARIANTS_H_

#include <cstdio>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ledger/block_store.h"
#include "shard/router.h"
#include "util/hex.h"

namespace prestige {
namespace harness {

/// Outcome of one safety sweep.
struct SafetyReport {
  bool ok = true;
  std::string violation;  ///< Human-readable description when !ok.
  types::SeqNum min_height = 0;  ///< Shortest honest committed chain.
  types::SeqNum max_height = 0;  ///< Longest honest committed chain.
  int64_t executed_total = 0;    ///< Service executions over honest replicas.
  int64_t duplicates_total = 0;  ///< Session-table dedup hits, ditto.
};

/// Checks chain agreement across every honest replica of `cluster`. Works
/// for any Cluster<Replica, Config> whose Replica exposes store() and
/// fault() (PrestigeBFT, HotStuff, and SBFT all do). `byzantine` marks
/// replicas excluded from every agreement check in addition to the
/// FaultSpec-derived exclusions; indices beyond its size count as honest.
template <typename Cluster>
SafetyReport CheckSafety(const Cluster& cluster,
                         const std::vector<bool>& byzantine) {
  SafetyReport report;
  // Reference chain per height: (digest, owner) of the first honest
  // replica seen holding that height.
  struct Reference {
    crypto::Sha256Digest digest;
    uint32_t owner;
  };
  std::vector<Reference> reference;
  bool first_honest = true;
  // Execution reference per chain height: (state digest, executed count,
  // owner) of the first honest replica seen at that height.
  struct ExecReference {
    uint64_t state_digest = 0;
    int64_t executed = 0;
    uint32_t owner = 0;
    bool set = false;
  };
  std::unordered_map<types::SeqNum, ExecReference> exec_reference;

  for (uint32_t i = 0; i < cluster.num_replicas(); ++i) {
    const auto& replica = cluster.replica(i);
    if (replica.fault().IsByzantine() &&
        replica.fault().type != types::FaultType::kCrash) {
      continue;
    }
    if (i < byzantine.size() && byzantine[i]) continue;
    const auto& chain = replica.store().tx_chain();
    const types::SeqNum height = static_cast<types::SeqNum>(chain.size());
    if (first_honest || height < report.min_height) {
      report.min_height = height;
    }
    if (first_honest || height > report.max_height) {
      report.max_height = height;
    }
    first_honest = false;

    if (reference.size() < chain.size()) reference.resize(chain.size());
    for (size_t k = 0; k < chain.size(); ++k) {
      const crypto::Sha256Digest& digest = chain[k].Digest();
      if (reference[k].digest == crypto::Sha256Digest{}) {
        reference[k] = Reference{digest, i};
        continue;
      }
      if (reference[k].digest != digest) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "conflicting txBlocks at n=%lld: replica %u has %s…, "
                      "replica %u has %s…",
                      static_cast<long long>(chain[k].n()), reference[k].owner,
                      util::HexEncode(reference[k].digest.data(), 4).c_str(),
                      i, util::HexEncode(digest.data(), 4).c_str());
        report.ok = false;
        report.violation = buf;
        return report;
      }
    }

    // 3. Execution-result agreement among replicas at this chain height.
    const auto& delivery = replica.delivery();
    const int64_t executed = delivery.stats().executed;
    const int64_t duplicates = delivery.stats().duplicates_suppressed;
    const uint64_t state_digest = delivery.service().StateDigest();
    report.executed_total += executed;
    report.duplicates_total += duplicates;
    ExecReference& exec = exec_reference[height];
    if (!exec.set) {
      exec = ExecReference{state_digest, executed, i, true};
    } else if (exec.state_digest != state_digest ||
               exec.executed != executed) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "divergent execution at height %lld: replica %u "
                    "(digest=%016llx, executed=%lld) vs replica %u "
                    "(digest=%016llx, executed=%lld)",
                    static_cast<long long>(height), exec.owner,
                    static_cast<unsigned long long>(exec.state_digest),
                    static_cast<long long>(exec.executed), i,
                    static_cast<unsigned long long>(state_digest),
                    static_cast<long long>(executed));
      report.ok = false;
      report.violation = buf;
      return report;
    }

    // 4. Conservation: every committed transaction either executed exactly
    // once or was suppressed as a session duplicate — never both, never
    // neither.
    int64_t chain_txs = 0;
    for (const auto& block : chain) {
      chain_txs += static_cast<int64_t>(block.BatchSize());
    }
    if (executed + duplicates != chain_txs) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "execution count mismatch on replica %u: chain carries "
                    "%lld txs but executed=%lld + duplicates=%lld",
                    i, static_cast<long long>(chain_txs),
                    static_cast<long long>(executed),
                    static_cast<long long>(duplicates));
      report.ok = false;
      report.violation = buf;
      return report;
    }
  }
  return report;
}

/// All-honest convenience overload: no scripted adversaries beyond the
/// FaultSpec cast.
template <typename Cluster>
SafetyReport CheckSafety(const Cluster& cluster) {
  return CheckSafety(cluster, std::vector<bool>());
}

// ------------------------------------------------------- sharded clusters

/// One group's slice of a sharded cluster, shaped like an unsharded
/// cluster (num_replicas() / replica(i)) so CheckSafety runs on it
/// verbatim. Group g owns global replica indices
/// [g * replicas_per_group, (g + 1) * replicas_per_group).
template <typename Cluster>
class GroupView {
 public:
  GroupView(const Cluster& cluster, uint32_t group)
      : cluster_(cluster), group_(group) {}

  uint32_t num_replicas() const { return cluster_.replicas_per_group(); }
  decltype(auto) replica(uint32_t i) const {
    return cluster_.replica(group_ * cluster_.replicas_per_group() + i);
  }

 private:
  const Cluster& cluster_;
  uint32_t group_;
};

/// Outcome of one sharded safety sweep.
struct ShardedSafetyReport {
  bool ok = true;
  std::string violation;  ///< Human-readable description when !ok.
  /// Per-group chain/execution sweeps, in group order (truncated at the
  /// first failing group).
  std::vector<SafetyReport> groups;
  int64_t routed_txs = 0;     ///< Committed txs checked against the router.
  int64_t distinct_keys = 0;  ///< Distinct routing keys seen committed.
};

/// The sharded safety sweep:
///  1. per-group committed-prefix + execution agreement — CheckSafety over
///     each group's replica slice (groups never intercommunicate, so
///     cross-group chains are unrelated by design and compared by nobody);
///  2. router consistency — every committed transaction routes (by its
///     routing key, under `router`) to the group that committed it, and
///     carries that group's id in its digest-covered `group` field;
///  3. shard exclusivity — no routing key appears in the committed chains
///     of two different groups ("no key executes in two groups").
///
/// `router` must be the geometry the workload generated against (same
/// num_groups and salt).
template <typename Cluster>
ShardedSafetyReport CheckShardedSafety(const Cluster& cluster,
                                       const shard::Router& router) {
  ShardedSafetyReport report;
  const uint32_t groups = cluster.num_groups();
  const uint32_t per_group = cluster.replicas_per_group();
  for (uint32_t g = 0; g < groups; ++g) {
    GroupView<Cluster> view(cluster, g);
    SafetyReport group_report = CheckSafety(view);
    const bool group_ok = group_report.ok;
    if (!group_ok) {
      report.ok = false;
      report.violation =
          "group " + std::to_string(g) + ": " + group_report.violation;
    }
    report.groups.push_back(std::move(group_report));
    if (!group_ok) return report;
  }

  // Checks 2 and 3 over each group's longest honest chain: per-group
  // agreement (check 1) makes every other honest chain in the group a
  // prefix of it, so the longest chain covers everything the group
  // committed.
  std::unordered_map<uint64_t, uint32_t> key_owner;
  for (uint32_t g = 0; g < groups; ++g) {
    using Chain = std::decay_t<decltype(cluster.replica(0).store().tx_chain())>;
    const Chain* chain = nullptr;
    for (uint32_t i = 0; i < per_group; ++i) {
      const auto& replica = cluster.replica(g * per_group + i);
      if (replica.fault().IsByzantine() &&
          replica.fault().type != types::FaultType::kCrash) {
        continue;
      }
      const auto& candidate = replica.store().tx_chain();
      if (chain == nullptr || candidate.size() > chain->size()) {
        chain = &candidate;
      }
    }
    if (chain == nullptr) continue;  // All-Byzantine group: nothing to owe.
    for (const auto& block : *chain) {
      for (const auto& tx : block.txs()) {
        ++report.routed_txs;
        std::string violation;
        if (!shard::VerifyRoutingAssignment(router, g, tx, &violation)) {
          report.ok = false;
          report.violation = violation;
          return report;
        }
        const uint64_t key = shard::Router::RoutingKey(tx);
        const auto [it, inserted] = key_owner.emplace(key, g);
        if (!inserted && it->second != g) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "routing key %llu executed in two groups: %u and %u",
                        static_cast<unsigned long long>(key), it->second, g);
          report.ok = false;
          report.violation = buf;
          return report;
        }
      }
    }
  }
  report.distinct_keys = static_cast<int64_t>(key_owner.size());
  return report;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_INVARIANTS_H_
