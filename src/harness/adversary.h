// ScriptedAdversary: the one concrete types::AdversaryPolicy — a pure
// function of a types::ByzantineSpec, constructed and wired by harness
// code only (prestige_lint's `adversary` rule holds protocol code to
// pointer-only use of the interface).
//
// Also home to the byzantine-fuzz schedule generator: a deterministic
// mapping seed -> ScenarioSpec-with-adversary that doubles as a protocol
// fuzzer. The generator uses util::Rng (harness/ is exempt from the
// determinism lint the way sim/ is) but every sampled value is a pure
// function of the seed, so fuzz sweeps stay byte-identical for any
// --jobs value.

#ifndef PRESTIGE_HARNESS_ADVERSARY_H_
#define PRESTIGE_HARNESS_ADVERSARY_H_

#include <algorithm>
#include <vector>

#include "harness/scenario.h"
#include "types/adversary.h"
#include "types/byzantine_spec.h"
#include "util/random.h"

namespace prestige {
namespace harness {

/// Enacts a ByzantineSpec. Stateless beyond the spec copy: every hook is
/// a pure function of (spec, arguments), as the interface requires.
class ScriptedAdversary : public types::AdversaryPolicy {
 public:
  explicit ScriptedAdversary(types::ByzantineSpec spec)
      : spec_(std::move(spec)) {}

  bool WedgeProposals(uint32_t self, util::TimeMicros now) const override {
    const types::ReplicaMisbehaviour* m = spec_.ForReplica(self);
    return m != nullptr && m->kind == types::Misbehaviour::kSlowLeader &&
           m->ActiveAt(now);
  }

  uint32_t ProposalVariant(uint32_t self, uint32_t dest,
                           util::TimeMicros now) const override {
    const types::ReplicaMisbehaviour* m = spec_.ForReplica(self);
    if (m == nullptr || m->kind != types::Misbehaviour::kEquivocatingLeader ||
        !m->ActiveAt(now)) {
      return 0;
    }
    const uint32_t groups = std::max<uint32_t>(2, m->equivocation_groups);
    return dest % groups;
  }

  bool WithholdVote(uint32_t self, uint32_t target,
                    util::TimeMicros now) const override {
    const types::ReplicaMisbehaviour* m = spec_.ForReplica(self);
    if (m == nullptr || m->kind != types::Misbehaviour::kVoteWithholding ||
        !m->ActiveAt(now)) {
      return false;
    }
    if (m->withhold_against.empty()) return true;
    return std::find(m->withhold_against.begin(), m->withhold_against.end(),
                     target) != m->withhold_against.end();
  }

  bool TamperExecution(uint32_t self, util::TimeMicros now) const override {
    const types::ReplicaMisbehaviour* m = spec_.ForReplica(self);
    return m != nullptr && m->kind == types::Misbehaviour::kForgedReply &&
           m->ActiveAt(now);
  }

  uint32_t ComplaintSpamBurst(uint32_t pool,
                              util::TimeMicros now) const override {
    if (pool >= spec_.spam_pools || !spec_.SpamActiveAt(now)) return 0;
    return spec_.spam_complaints_per_scan;
  }

  bool IsByzantine(uint32_t id) const override {
    return spec_.ForReplica(id) != nullptr;
  }

  const types::ByzantineSpec& spec() const { return spec_; }

 private:
  types::ByzantineSpec spec_;
};

/// Per-replica exclusion set for the safety invariants: a replica is
/// Byzantine when its FaultSpec misbehaves (crash excluded — crashed
/// replicas are honest and their shorter prefix must still agree) OR the
/// scenario's ByzantineSpec scripts it.
inline std::vector<bool> BuildByzantineSet(const ScenarioSpec& spec) {
  std::vector<bool> byzantine(spec.n, false);
  for (uint32_t i = 0; i < spec.n && i < spec.byzantine.size(); ++i) {
    byzantine[i] = spec.byzantine[i].IsByzantine() &&
                   spec.byzantine[i].type != types::FaultType::kCrash;
  }
  for (const types::ReplicaMisbehaviour& m : spec.adversary.replicas) {
    if (m.kind != types::Misbehaviour::kNone && m.replica < spec.n) {
      byzantine[m.replica] = true;
    }
  }
  return byzantine;
}

/// Deterministic adversary-schedule randomizer (the byzantine-fuzz
/// scenario): seed -> a complete ScenarioSpec with a randomized adversary
/// cast. Cluster size, attacker count (bounded by f), behaviours,
/// activation windows, equivocation fanout, and complaint spam are all
/// sampled from an Rng seeded only by `seed`, so the same seed always
/// produces the same schedule — the property the parallel-sweep
/// determinism contract extends to the fuzzer.
inline ScenarioSpec ByzantineFuzzSpec(uint64_t seed) {
  util::Rng rng(seed ^ 0x5ca1ab1e5eedULL);
  ScenarioSpec s;
  s.name = "byzantine-fuzz";
  s.n = rng.NextBool(0.5) ? 4 : 7;
  const uint32_t f = (s.n - 1) / 3;
  s.description = "seed-randomized adversary schedule (protocol fuzzer)";

  // Attackers: 1..f distinct replicas, each with a random behaviour and
  // a random activation window inside the attack phase.
  const uint32_t attackers =
      1 + static_cast<uint32_t>(rng.NextBounded(std::max<uint32_t>(1, f)));
  std::vector<uint32_t> cast;
  for (uint32_t i = 0; i < s.n; ++i) cast.push_back(i);
  for (uint32_t i = 0; i < attackers; ++i) {
    // Deterministic partial Fisher-Yates pick without replacement.
    const uint32_t j =
        i + static_cast<uint32_t>(rng.NextBounded(s.n - i));
    std::swap(cast[i], cast[j]);
  }
  static const types::Misbehaviour kBehaviours[] = {
      types::Misbehaviour::kEquivocatingLeader,
      types::Misbehaviour::kSlowLeader,
      types::Misbehaviour::kVoteWithholding,
      types::Misbehaviour::kForgedReply,
  };
  bool any_forged = false;
  for (uint32_t i = 0; i < attackers; ++i) {
    types::ReplicaMisbehaviour m;
    m.replica = cast[i];
    m.kind = kBehaviours[rng.NextBounded(4)];
    any_forged = any_forged || m.kind == types::Misbehaviour::kForgedReply;
    m.start_at = util::Millis(1500 + static_cast<int64_t>(
                                         rng.NextBounded(1500)));
    m.stop_at = rng.NextBool(0.5)
                    ? 0
                    : m.start_at + util::Millis(1500 + static_cast<int64_t>(
                                                           rng.NextBounded(
                                                               2000)));
    m.equivocation_groups = 2 + static_cast<uint32_t>(rng.NextBounded(2));
    s.adversary.replicas.push_back(m);
  }
  if (rng.NextBool(0.4)) {
    s.adversary.spam_pools = 1 + static_cast<uint32_t>(rng.NextBounded(2));
    s.adversary.spam_complaints_per_scan =
        1 + static_cast<uint32_t>(rng.NextBounded(4));
    s.adversary.spam_start_at = util::Millis(1500);
  }
  // Forged replies need real command bytes to diverge application state.
  s.kv_workload = any_forged;

  Phase warmup;
  warmup.name = "warmup";
  warmup.duration = util::Millis(1500);
  s.phases.push_back(warmup);

  Phase attack;
  attack.name = "attack";
  attack.duration = util::Millis(3500);
  s.phases.push_back(attack);

  Phase settle;
  settle.name = "settle";
  settle.duration = util::Millis(2000);
  s.phases.push_back(settle);
  return s;
}

}  // namespace harness
}  // namespace prestige

#endif  // PRESTIGE_HARNESS_ADVERSARY_H_
