#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace prestige {
namespace workload {

namespace {
/// Arrivals below this rate are clamped: a zero/negative rate would stall
/// the stream forever, and the generator promises an unbounded stream.
constexpr double kMinRate = 1e-3;
}  // namespace

ArrivalGenerator::ArrivalGenerator(ArrivalSpec spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  if (spec_.rate_per_sec < kMinRate) spec_.rate_per_sec = kMinRate;
  if (spec_.kind == ArrivalKind::kRamp) {
    if (spec_.end_rate_per_sec < kMinRate) spec_.end_rate_per_sec = kMinRate;
    if (spec_.ramp_duration <= 0) spec_.ramp_duration = 1;
  }
}

double ArrivalGenerator::RateAt(util::TimeMicros t) const {
  if (spec_.kind != ArrivalKind::kRamp) return spec_.rate_per_sec;
  const double frac = std::min(
      1.0, static_cast<double>(t) / static_cast<double>(spec_.ramp_duration));
  return spec_.rate_per_sec +
         (spec_.end_rate_per_sec - spec_.rate_per_sec) * frac;
}

util::TimeMicros ArrivalGenerator::Next() {
  // Mean inter-arrival at the stream's current position. For kRamp this is
  // a per-step rate refresh (piecewise-homogeneous approximation of the
  // inhomogeneous process): exact in the flat tail, and within one
  // inter-arrival of exact during the ramp — plenty for load shaping,
  // and it keeps the stream a pure function of (spec, seed, index).
  const double rate = RateAt(next_);
  double gap_us;
  switch (spec_.kind) {
    case ArrivalKind::kConstant:
      gap_us = 1e6 / rate;
      break;
    case ArrivalKind::kPoisson:
    case ArrivalKind::kRamp:
      gap_us = rng_.NextExponential(1e6 / rate);
      break;
    default:
      gap_us = 1e6 / rate;
      break;
  }
  // Quantize to integral microseconds, always advancing: simultaneous
  // arrivals would otherwise stall catch-up loops that drain "all arrivals
  // due by now".
  const auto gap = static_cast<util::DurationMicros>(
      std::max(1.0, std::floor(gap_us)));
  next_ += gap;
  return next_;
}

}  // namespace workload
}  // namespace prestige
