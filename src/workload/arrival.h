// Open-loop arrival trace generators.
//
// A closed-loop client waits for its previous request before issuing the
// next one, so offered load self-throttles to the system's capacity and
// overload is unobservable. An open-loop workload decouples arrivals from
// completions: requests arrive on a schedule drawn from a trace process,
// whether or not the system has kept up — the regime where latency SLOs
// and backpressure behaviour actually mean something.
//
// An ArrivalGenerator turns an ArrivalSpec + seed into a monotone stream
// of absolute arrival timestamps (microseconds since the run began). The
// stream is a pure function of (spec, seed, call index): no wall clock, no
// ambient entropy — the same discipline as every other stochastic
// component — so serial and fanned-out generation are byte-identical and
// a threaded run's offered load is reproducible even though its service
// times are not.
//
// Traces:
//   kConstant — fixed inter-arrival 1/rate (paced load, no burstiness).
//   kPoisson  — exponential inter-arrivals at `rate_per_sec` (memoryless
//               arrivals; the standard open-system model).
//   kRamp     — inhomogeneous Poisson whose rate ramps linearly from
//               `rate_per_sec` to `end_rate_per_sec` over `ramp_duration`,
//               then holds (capacity-probing and diurnal-edge shapes).

#ifndef PRESTIGE_WORKLOAD_ARRIVAL_H_
#define PRESTIGE_WORKLOAD_ARRIVAL_H_

#include <cstdint>

#include "util/random.h"
#include "util/time.h"

namespace prestige {
namespace workload {

enum class ArrivalKind {
  kConstant,
  kPoisson,
  kRamp,
};

/// Shape of one arrival trace.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_sec = 1000.0;  ///< Base rate (start rate for kRamp).
  /// kRamp only: target rate reached after `ramp_duration`, held after.
  double end_rate_per_sec = 0.0;
  util::DurationMicros ramp_duration = util::Seconds(10);
};

/// Deterministic arrival-time stream for one spec + seed.
class ArrivalGenerator {
 public:
  ArrivalGenerator(ArrivalSpec spec, uint64_t seed);

  /// Absolute time of the next arrival, strictly after all previous ones.
  /// Monotone; call indefinitely.
  util::TimeMicros Next();

  /// Instantaneous rate at absolute time `t` (kRamp interpolates; the
  /// other kinds are flat). Exposed for tests and reporting.
  double RateAt(util::TimeMicros t) const;

 private:
  ArrivalSpec spec_;
  util::Rng rng_;
  util::TimeMicros next_ = 0;
};

}  // namespace workload
}  // namespace prestige

#endif  // PRESTIGE_WORKLOAD_ARRIVAL_H_
