// OpenLoopPool: an open-loop arrival engine multiplexing a large population
// of lightweight logical sessions over ONE client::Client instance.
//
// Where ClientPool drives N closed loops (each session waits for its
// previous request), OpenLoopPool decouples offered load from completions:
// an ArrivalGenerator (workload/arrival.h) schedules request arrivals on a
// Poisson / ramp / constant trace, each arrival belongs to one of
// `logical_sessions` simulated sessions, and the session's key is drawn
// from a zipfian or uniform popularity distribution (workload/key_dist.h).
// Millions of sessions cost nothing per session: a session is just an id
// carried in the command, not a struct — the Client's (pool, client_seq)
// space is the only per-request state.
//
// Backpressure (overload is the point of open loop):
//   * at most `max_outstanding` requests are in flight; arrivals beyond
//     that wait in a bounded backlog (their queueing time counts toward
//     end-to-end latency);
//   * a full backlog sheds new arrivals at admission (counted, never
//     submitted) — bounded queues are what keep tail latency inside the
//     SLO while the system runs at capacity;
//   * adaptive batching: when completions free capacity, the backlog
//     drains in one burst sized to the free in-flight budget and rides a
//     single ClientBatch — batches grow exactly when the system is behind.
//
// SLO accounting: end-to-end latency (arrival → f+1-matched completion,
// including backlog queueing) feeds a dedicated histogram with
// p50/p99/p999 accessors plus the fraction of completions inside
// `slo_ms`. The Client's own latencies() histogram still measures
// submit → completion (consensus latency) as everywhere else.
//
// Sharding: with num_groups > 1 the pool is bound to one consensus group
// and rejection-samples keys until shard::Router assigns them to that
// group — the generator-side half of the "no key executes in two groups"
// invariant the harness sweeps checker-side.

#ifndef PRESTIGE_WORKLOAD_OPEN_LOOP_POOL_H_
#define PRESTIGE_WORKLOAD_OPEN_LOOP_POOL_H_

#include <deque>
#include <memory>

#include "client/client.h"
#include "shard/router.h"
#include "types/ids.h"
#include "util/stats.h"
#include "workload/arrival.h"
#include "workload/client_pool.h"
#include "workload/key_dist.h"

namespace prestige {
namespace workload {

/// Open-loop pool parameters.
struct OpenLoopConfig {
  types::ClientPoolId pool_id = 0;
  uint32_t f = 1;
  uint32_t payload_size = 32;
  util::DurationMicros request_timeout = util::Seconds(1);
  util::DurationMicros aggregation_window = util::Millis(1);
  util::DurationMicros complaint_scan_period = util::Millis(200);

  /// Arrival trace feeding this pool (per-pool rate: a deployment-wide
  /// rate is divided across pools by the harness).
  ArrivalSpec arrival;
  /// Simulated session population multiplexed over this one Client.
  uint64_t logical_sessions = 1000000;
  /// Command shape; kKvPut routes on real keys, kOpaque on fingerprints.
  CommandKind command_kind = CommandKind::kKvPut;
  uint64_t kv_key_space = 1 << 20;
  /// Key-popularity skew: 0 = uniform, 0.99 = heavy YCSB zipfian.
  double zipf_theta = 0.0;

  /// Backpressure bounds (see header comment).
  uint32_t max_outstanding = 2048;
  uint32_t max_backlog = 4096;
  /// End-to-end latency SLO for slo_fraction() reporting.
  double slo_ms = 500.0;
  /// Stop generating arrivals after this time (0 = never).
  util::TimeMicros stop_at = 0;

  /// Sharded deployments: this pool's consensus group and the router
  /// geometry (must match the harness's checker-side Router).
  types::GroupId group = 0;
  uint32_t num_groups = 1;
  uint64_t router_salt = shard::Router::kDefaultSalt;
};

/// Open-loop engine counters (completions/latency live in ClientStats and
/// the histograms).
struct OpenLoopStats {
  int64_t arrivals = 0;         ///< Trace arrivals generated.
  int64_t admitted = 0;         ///< Submitted into consensus.
  int64_t backlogged = 0;       ///< Arrivals that waited in the backlog.
  int64_t shed = 0;             ///< Dropped at admission (backlog full).
  int64_t backlog_peak = 0;     ///< Deepest backlog observed.
  int64_t drain_bursts = 0;     ///< Adaptive-batch backlog drains.
  int64_t max_burst = 0;        ///< Largest single drain burst.
  int64_t slo_met = 0;          ///< Completions within slo_ms end-to-end.
};

/// The pool node. One Client session; arrivals ride timers.
class OpenLoopPool : public client::Client {
 public:
  explicit OpenLoopPool(OpenLoopConfig config);

  void OnStart() override;
  void OnTimer(uint64_t tag) override;

  int64_t committed() const { return stats().completed; }
  const OpenLoopStats& open_stats() const { return open_stats_; }
  const OpenLoopConfig& open_config() const { return pool_config_; }

  /// End-to-end latency histogram (arrival → completion, milliseconds).
  util::Histogram& e2e_latencies() { return e2e_latencies_; }
  /// Fraction of completions that met the SLO (1.0 when none completed).
  double slo_fraction() const {
    const int64_t completed = stats().completed;
    return completed == 0
               ? 1.0
               : static_cast<double>(open_stats_.slo_met) /
                     static_cast<double>(completed);
  }

 private:
  /// Timer kinds; Client privately uses kinds 1 and 2, and kinds are
  /// namespaced per node type, so any distinct values work — kept high to
  /// make collisions with future Client kinds unlikely.
  static constexpr uint64_t kArrivalKind = 7;
  /// Deferred backlog drain: completions arrive in reply batches, and
  /// draining once per batch (not once per completion) is what lets the
  /// refill ride one ClientBatch instead of trickling out 1-tx flushes.
  static constexpr uint64_t kDrainKind = 8;

  struct QueuedArrival {
    util::TimeMicros arrived_at = 0;
    uint64_t key = 0;
    uint64_t session = 0;
  };

  static client::ClientConfig ToClientConfig(const OpenLoopConfig& config);

  void PumpArrivals();
  void ProcessArrival(util::TimeMicros arrived_at);
  void SubmitArrival(const QueuedArrival& arrival);
  void OnCompletion(util::TimeMicros arrived_at,
                    const client::SubmitResult& result);
  void DrainBacklog();
  uint64_t PickKey();
  std::vector<uint8_t> MakeCommand(uint64_t key, uint64_t session);

  OpenLoopConfig pool_config_;
  shard::Router router_;
  ZipfianGenerator zipf_;
  /// Constructed in OnStart from the node RNG (registration-order fork
  /// discipline); absent until then.
  std::unique_ptr<ArrivalGenerator> arrivals_;
  util::TimeMicros next_arrival_ = 0;
  bool stream_done_ = false;
  bool drain_armed_ = false;  ///< A kDrainKind timer is pending.
  std::deque<QueuedArrival> backlog_;
  util::Histogram e2e_latencies_;
  OpenLoopStats open_stats_;
};

}  // namespace workload
}  // namespace prestige

#endif  // PRESTIGE_WORKLOAD_OPEN_LOOP_POOL_H_
