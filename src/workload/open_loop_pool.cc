#include "workload/open_loop_pool.h"

#include <algorithm>

#include "app/kv_service.h"
#include "util/timer_tag.h"

namespace prestige {
namespace workload {

namespace {

/// Degenerate parameters are clamped to their smallest meaningful values
/// (same policy as ClientPool / app::KvService) so generators never divide
/// by zero and backpressure never deadlocks on a zero budget.
OpenLoopConfig Normalize(OpenLoopConfig config) {
  if (config.kv_key_space == 0) config.kv_key_space = 1;
  if (config.logical_sessions == 0) config.logical_sessions = 1;
  if (config.num_groups == 0) config.num_groups = 1;
  if (config.max_outstanding == 0) config.max_outstanding = 1;
  return config;
}

}  // namespace

client::ClientConfig OpenLoopPool::ToClientConfig(
    const OpenLoopConfig& config) {
  client::ClientConfig cc;
  cc.client_id = config.pool_id;
  cc.group = config.group;
  cc.f = config.f;
  cc.payload_size = config.payload_size;
  // Same retry ladder as ClientPool: one cheap retransmit at half the
  // complaint deadline before escalating.
  cc.retransmit_after = config.request_timeout / 2;
  cc.request_timeout = config.request_timeout;
  cc.aggregation_window = config.aggregation_window;
  cc.retry_scan_period = config.complaint_scan_period;
  return cc;
}

OpenLoopPool::OpenLoopPool(OpenLoopConfig config)
    : client::Client(ToClientConfig(config)),
      pool_config_(Normalize(config)),
      router_(pool_config_.num_groups, pool_config_.router_salt),
      zipf_(pool_config_.kv_key_space, pool_config_.zipf_theta) {}

void OpenLoopPool::OnStart() {
  client::Client::OnStart();
  // The trace RNG forks off this node's stream at a fixed point (first
  // draw after Client::OnStart), keeping the arrival schedule a pure
  // function of the pool's registration-order seed.
  arrivals_ = std::make_unique<ArrivalGenerator>(pool_config_.arrival,
                                                 rng()->NextUint64());
  next_arrival_ = arrivals_->Next();
  PumpArrivals();
}

void OpenLoopPool::OnTimer(uint64_t tag) {
  const uint64_t kind = util::TimerTagKind<uint64_t>(tag);
  if (kind == kArrivalKind) {
    PumpArrivals();
    return;
  }
  if (kind == kDrainKind) {
    drain_armed_ = false;
    DrainBacklog();
    return;
  }
  client::Client::OnTimer(tag);
}

void OpenLoopPool::PumpArrivals() {
  // Drain every arrival due by now (a timer can fire late on the threaded
  // backend; the catch-up loop keeps offered load on schedule), then sleep
  // until the next one.
  while (!stream_done_ && next_arrival_ <= Now()) {
    if (pool_config_.stop_at != 0 && next_arrival_ > pool_config_.stop_at) {
      stream_done_ = true;
      break;
    }
    ProcessArrival(next_arrival_);
    next_arrival_ = arrivals_->Next();
  }
  if (stream_done_) return;
  if (pool_config_.stop_at != 0 && next_arrival_ > pool_config_.stop_at) {
    stream_done_ = true;  // Backlog keeps draining off completions.
    return;
  }
  SetTimer(std::max<util::DurationMicros>(1, next_arrival_ - Now()),
           util::PackTimerTag(kArrivalKind));
}

void OpenLoopPool::ProcessArrival(util::TimeMicros arrived_at) {
  ++open_stats_.arrivals;
  QueuedArrival arrival;
  arrival.arrived_at = arrived_at;
  arrival.key = PickKey();
  arrival.session = rng()->NextBounded(pool_config_.logical_sessions);

  if (backlog_.empty() && outstanding() < pool_config_.max_outstanding) {
    SubmitArrival(arrival);
    return;
  }
  // Over budget (or behind an existing queue — FIFO admission): wait if
  // the backlog has room, shed if it doesn't. Shedding at admission is
  // what bounds queueing delay, and with it the latency tail.
  if (backlog_.size() < pool_config_.max_backlog) {
    backlog_.push_back(arrival);
    ++open_stats_.backlogged;
    open_stats_.backlog_peak = std::max(
        open_stats_.backlog_peak, static_cast<int64_t>(backlog_.size()));
  } else {
    ++open_stats_.shed;
  }
}

void OpenLoopPool::SubmitArrival(const QueuedArrival& arrival) {
  ++open_stats_.admitted;
  const util::TimeMicros arrived_at = arrival.arrived_at;
  Submit(MakeCommand(arrival.key, arrival.session),
         [this, arrived_at](const client::SubmitResult& result) {
           OnCompletion(arrived_at, result);
         });
}

void OpenLoopPool::OnCompletion(util::TimeMicros arrived_at,
                                const client::SubmitResult& result) {
  (void)result;  // f+1-matched by the client library; success implied.
  const double e2e_ms =
      static_cast<double>(Now() - arrived_at) / 1000.0;
  e2e_latencies_.Add(e2e_ms);
  if (e2e_ms <= pool_config_.slo_ms) ++open_stats_.slo_met;
  // Completions land in reply batches; defer the refill one tick so every
  // slot the batch frees is drained as ONE burst (see kDrainKind).
  if (!backlog_.empty() && !drain_armed_) {
    drain_armed_ = true;
    SetTimer(1, util::PackTimerTag(kDrainKind));
  }
}

void OpenLoopPool::DrainBacklog() {
  if (backlog_.empty()) return;
  int64_t burst = 0;
  while (!backlog_.empty() &&
         outstanding() < pool_config_.max_outstanding) {
    SubmitArrival(backlog_.front());
    backlog_.pop_front();
    ++burst;
  }
  if (burst == 0) return;
  ++open_stats_.drain_bursts;
  open_stats_.max_burst = std::max(open_stats_.max_burst, burst);
  // Adaptive batching: the whole burst rides one ClientBatch instead of
  // waiting out the aggregation window — batches grow exactly when the
  // system is catching up.
  Flush();
}

uint64_t OpenLoopPool::PickKey() {
  uint64_t key = zipf_.Next(rng());
  if (pool_config_.num_groups <= 1) return key;
  // Rejection-sample until the router assigns the key to this pool's
  // group. Expected num_groups draws; the cap only matters for degenerate
  // geometries (more groups than keys this group owns).
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (router_.GroupForKey(key) == pool_config_.group) return key;
    key = zipf_.Next(rng());
  }
  for (uint64_t probe = 0; probe < pool_config_.kv_key_space; ++probe) {
    if (router_.GroupForKey(probe) == pool_config_.group) return probe;
  }
  return key;  // No key in the space routes here; config is unusable.
}

std::vector<uint8_t> OpenLoopPool::MakeCommand(uint64_t key,
                                               uint64_t session) {
  switch (pool_config_.command_kind) {
    case CommandKind::kKvPut:
      // The session id rides as the stored value: sessions exist on the
      // wire (and in the applied state), not as per-session structs.
      return app::kv::EncodePut(key, session);
    case CommandKind::kOpaque:
      break;
  }
  return {};
}

}  // namespace workload
}  // namespace prestige
