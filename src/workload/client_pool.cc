#include "workload/client_pool.h"

namespace prestige {
namespace workload {

void ClientPool::OnStart() {
  for (uint32_t i = 0; i < config_.num_clients; ++i) {
    IssueRequest();
  }
  Flush();
  SetTimer(config_.complaint_scan_period, Tag(kComplaintScan));
}

void ClientPool::SetActive(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) return;
  // Wake the clients that completed while the pool was paused.
  const uint32_t deferred = deferred_requests_;
  deferred_requests_ = 0;
  for (uint32_t i = 0; i < deferred; ++i) IssueRequest();
  Flush();
}

void ClientPool::IssueRequest() {
  if (config_.stop_at != 0 && Now() >= config_.stop_at) return;
  if (!active_) {
    ++deferred_requests_;
    return;
  }
  types::Transaction tx;
  tx.pool = config_.pool_id;
  tx.client_seq = next_seq_++;
  tx.sent_at = Now();
  tx.payload_size = config_.payload_size;
  tx.fingerprint = rng()->NextUint64();
  Outstanding out;
  out.tx = tx;
  outstanding_.emplace(TxKey(tx), std::move(out));
  pending_send_.push_back(tx);
}

void ClientPool::Flush() {
  if (pending_send_.empty()) return;
  auto batch = std::make_shared<types::ClientBatch>();
  batch->txs = std::move(pending_send_);
  pending_send_.clear();
  Send(replicas_, batch);
}

void ClientPool::OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) {
  (void)from;
  const auto* notif = dynamic_cast<const types::CommitNotif*>(msg.get());
  if (notif == nullptr) return;
  if (notif->replica >= 128) return;

  bool issued = false;
  for (const types::Transaction& tx : notif->txs) {
    if (tx.pool != config_.pool_id) continue;
    auto it = outstanding_.find(TxKey(tx));
    if (it == outstanding_.end()) continue;  // Already completed.
    Outstanding& out = it->second;
    const __uint128_t bit = static_cast<__uint128_t>(1) << notif->replica;
    if ((out.ack_mask & bit) != 0) continue;  // Duplicate ack.
    out.ack_mask |= bit;
    if (++out.acks < static_cast<int>(config_.f) + 1) continue;

    // f+1 Notifs: the request is committed (§4.3).
    latencies_.Add(util::ToMillis(Now() - out.tx.sent_at));
    ++committed_;
    outstanding_.erase(it);
    IssueRequest();  // Closed loop: next request for this virtual client.
    issued = true;
  }
  if (issued && !flush_armed_) {
    flush_armed_ = true;
    SetTimer(config_.aggregation_window, Tag(kFlush));
  }
}

void ClientPool::OnTimer(uint64_t tag) {
  switch (TagKind(tag)) {
    case kFlush:
      flush_armed_ = false;
      Flush();
      break;
    case kComplaintScan: {
      const util::TimeMicros now = Now();
      for (auto& [key, out] : outstanding_) {
        (void)key;
        const util::TimeMicros reference =
            out.last_complaint == 0 ? out.tx.sent_at : out.last_complaint;
        if (now - reference < config_.request_timeout) continue;
        out.last_complaint = now;
        ++complaints_sent_;
        auto compt = std::make_shared<types::ClientComplaint>();
        compt->tx = out.tx;
        Send(replicas_, compt);
      }
      SetTimer(config_.complaint_scan_period, Tag(kComplaintScan));
      break;
    }
  }
}

}  // namespace workload
}  // namespace prestige
