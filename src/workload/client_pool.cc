#include "workload/client_pool.h"

#include "app/kv_service.h"

namespace prestige {
namespace workload {

client::ClientConfig ClientPool::ToClientConfig(
    const ClientPoolConfig& config) {
  client::ClientConfig cc;
  cc.client_id = config.pool_id;
  cc.f = config.f;
  cc.payload_size = config.payload_size;
  // Retransmit at half the complaint deadline: one cheap re-send gets a
  // lost proposal back in flight before the heavyweight complaint path.
  cc.retransmit_after = config.request_timeout / 2;
  cc.request_timeout = config.request_timeout;
  cc.aggregation_window = config.aggregation_window;
  cc.retry_scan_period = config.complaint_scan_period;
  cc.group = config.group;
  return cc;
}

ClientPool::ClientPool(ClientPoolConfig config)
    : client::Client(ToClientConfig(config)),
      pool_config_(config),
      router_(config.num_groups == 0 ? 1 : config.num_groups,
              config.router_salt == 0 ? shard::Router::kDefaultSalt
                                      : config.router_salt) {
  // Same clamp app::KvService applies: key space 0 means one key, not a
  // divide-by-zero in the command generator.
  if (pool_config_.kv_key_space == 0) pool_config_.kv_key_space = 1;
}

void ClientPool::OnStart() {
  client::Client::OnStart();
  for (uint32_t i = 0; i < pool_config_.num_clients; ++i) {
    IssueNext();
  }
  Flush();  // The initial burst goes out immediately.
}

void ClientPool::SetActive(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) return;
  // Wake the clients that completed while the pool was paused.
  const uint32_t deferred = deferred_requests_;
  deferred_requests_ = 0;
  for (uint32_t i = 0; i < deferred; ++i) IssueNext();
  Flush();
}

std::vector<uint8_t> ClientPool::MakeCommand() {
  switch (pool_config_.command_kind) {
    case CommandKind::kKvPut: {
      uint64_t key = rng()->NextUint64() % pool_config_.kv_key_space;
      if (pool_config_.num_groups > 1) {
        // Sharded pool: only generate keys the router assigns to this
        // pool's group. Rejection sampling terminates in num_groups
        // expected draws; the linear probe only exists for degenerate
        // geometries where this group owns almost no keys.
        int attempt = 0;
        while (router_.GroupForKey(key) != pool_config_.group &&
               attempt < 64) {
          key = rng()->NextUint64() % pool_config_.kv_key_space;
          ++attempt;
        }
        if (router_.GroupForKey(key) != pool_config_.group) {
          for (uint64_t probe = 0; probe < pool_config_.kv_key_space;
               ++probe) {
            if (router_.GroupForKey(probe) == pool_config_.group) {
              key = probe;
              break;
            }
          }
        }
      }
      // Unsharded pools draw (key, value) exactly as before this field
      // existed, keeping per-seed simulation runs byte-identical.
      return app::kv::EncodePut(key, rng()->NextUint64());
    }
    case CommandKind::kOpaque:
      break;
  }
  return {};
}

void ClientPool::IssueNext() {
  if (pool_config_.stop_at != 0 && Now() >= pool_config_.stop_at) return;
  if (!active_) {
    ++deferred_requests_;
    return;
  }
  Submit(MakeCommand(), [this](const client::SubmitResult& result) {
    (void)result;
    IssueNext();  // Closed loop: next request for this virtual client.
  });
}

}  // namespace workload
}  // namespace prestige
