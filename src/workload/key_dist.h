// Key-popularity distributions for workload generators.
//
// Real key-value traffic is skewed: a small set of hot keys absorbs most
// operations. ZipfianGenerator samples ranks from the standard zipfian
// distribution (P(rank i) ∝ 1/i^theta) using the Gray et al. constant-time
// algorithm (the one YCSB uses), with the zeta normalization constant
// precomputed at construction. theta = 0 degenerates to uniform;
// theta = 0.99 is the YCSB default "hotspot" skew.
//
// Rank 0 is the hottest key. The rank space is NOT scrambled here: sharded
// deployments route keys through shard::Router's avalanche hash, which
// already spreads consecutive hot ranks across groups, and tests want the
// "rank 0 is hottest" property observable.
//
// Sampling draws from a caller-supplied util::Rng, so the stream is
// deterministic per seed and composes with the per-node RNG forking
// discipline.

#ifndef PRESTIGE_WORKLOAD_KEY_DIST_H_
#define PRESTIGE_WORKLOAD_KEY_DIST_H_

#include <cstdint>

#include "util/random.h"

namespace prestige {
namespace workload {

/// Constant-time zipfian rank sampler over [0, num_keys).
class ZipfianGenerator {
 public:
  /// `theta` in [0, 1): skew parameter; 0 = uniform, 0.99 = heavy YCSB
  /// skew. Values outside [0, 1) are clamped into it.
  ZipfianGenerator(uint64_t num_keys, double theta);

  /// Samples a rank in [0, num_keys); rank 0 is the most popular.
  uint64_t Next(util::Rng* rng) const;

  uint64_t num_keys() const { return num_keys_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t num_keys_;
  double theta_;
  double zetan_;   ///< zeta(num_keys, theta).
  double alpha_;   ///< 1 / (1 - theta).
  double eta_;
  double half_pow_theta_;  ///< (1/2)^theta aka 1 + 0.5^theta threshold term.
};

}  // namespace workload
}  // namespace prestige

#endif  // PRESTIGE_WORKLOAD_KEY_DIST_H_
