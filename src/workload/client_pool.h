// ClientPool: a population of closed-loop clients, reimplemented as N
// closed-loop sessions of the embeddable client::Client library.
//
// Each virtual client keeps one request outstanding (the paper's workload:
// "clients generated random requests ... and waited for one request to
// complete before sending the next one") by re-Submitting from its
// completion callback. Everything protocol-side — batching within the
// aggregation window, retransmission, complaint escalation (§4.2.1), and
// the f+1 reply-quorum matching on result digests (§4.3) — is the client
// library's; this class only drives the closed loop and generates
// commands.
//
// Aggregation: proposals from many virtual clients ride one ClientBatch
// event whose cost model still charges per-proposal work (DESIGN.md §4) —
// a simulation device, not a protocol change.

#ifndef PRESTIGE_WORKLOAD_CLIENT_POOL_H_
#define PRESTIGE_WORKLOAD_CLIENT_POOL_H_

#include "client/client.h"
#include "shard/router.h"
#include "types/ids.h"
#include "util/stats.h"

namespace prestige {
namespace workload {

/// What the virtual clients ask the application to do.
enum class CommandKind {
  kOpaque,  ///< Empty command + random fingerprint (consensus-only load).
  kKvPut,   ///< Random app::KvService Put commands (real payload bytes).
};

/// Client population parameters.
struct ClientPoolConfig {
  types::ClientPoolId pool_id = 0;
  uint32_t num_clients = 100;       ///< Virtual closed-loop clients.
  uint32_t payload_size = 32;       ///< m: request payload bytes.
  uint32_t f = 1;                   ///< Reply quorum threshold is f+1.
  util::DurationMicros request_timeout = util::Seconds(1);
  util::DurationMicros aggregation_window = util::Millis(1);
  util::DurationMicros complaint_scan_period = util::Millis(200);
  /// Stop issuing new requests after this time (0 = never); lets benches
  /// drain cleanly.
  util::TimeMicros stop_at = 0;
  /// Workload shape (see CommandKind).
  CommandKind command_kind = CommandKind::kOpaque;
  uint64_t kv_key_space = 1024;  ///< Key range for kKvPut commands.
  /// Sharded deployments: the consensus group this pool drives and the
  /// shard::Router geometry (must match the harness's checker-side
  /// Router). With num_groups > 1, kKvPut keys are rejection-sampled
  /// until the router assigns them to `group`; defaults describe the
  /// unsharded single-group world.
  types::GroupId group = 0;
  uint32_t num_groups = 1;
  uint64_t router_salt = 0;  ///< 0 = shard::Router::kDefaultSalt.
};

/// The pool node: one client::Client session shared by num_clients
/// closed-loop drivers.
class ClientPool : public client::Client {
 public:
  explicit ClientPool(ClientPoolConfig config);

  void OnStart() override;

  /// Pauses / resumes request issuance (scenario workload-intensity
  /// phases). While inactive, completed closed-loop clients defer their
  /// next request instead of issuing it; resuming issues every deferred
  /// request immediately. Safe to call between simulation runs.
  void SetActive(bool active);
  bool active() const { return active_; }

  int64_t committed() const { return stats().completed; }
  int64_t complaints_sent() const { return stats().complaints_sent; }

 private:
  static client::ClientConfig ToClientConfig(const ClientPoolConfig& config);

  /// One closed-loop step: submit the next command; its completion
  /// callback calls back here.
  void IssueNext();
  std::vector<uint8_t> MakeCommand();

  ClientPoolConfig pool_config_;
  shard::Router router_;
  bool active_ = true;
  uint32_t deferred_requests_ = 0;  ///< Clients idled while inactive.
};

}  // namespace workload
}  // namespace prestige

#endif  // PRESTIGE_WORKLOAD_CLIENT_POOL_H_
