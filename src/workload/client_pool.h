// ClientPool: a population of closed-loop clients as one simulation actor.
//
// Each virtual client keeps one request outstanding (the paper's workload:
// "clients generated random requests ... and waited for one request to
// complete before sending the next one"). A request counts as committed
// once f+1 distinct replicas have sent a CommitNotif covering it (§4.3).
// Overdue requests are complained about with a Compt broadcast (§4.2.1).
//
// Aggregation: proposals from many virtual clients are shipped in one
// ClientBatch event whose cost model still charges per-proposal work
// (DESIGN.md §4) — a simulation device, not a protocol change.

#ifndef PRESTIGE_WORKLOAD_CLIENT_POOL_H_
#define PRESTIGE_WORKLOAD_CLIENT_POOL_H_

#include <unordered_map>
#include <vector>

#include "runtime/env.h"
#include "types/client_messages.h"
#include "types/ids.h"
#include "types/transaction.h"
#include "util/stats.h"

namespace prestige {
namespace workload {

/// Client population parameters.
struct ClientPoolConfig {
  types::ClientPoolId pool_id = 0;
  uint32_t num_clients = 100;       ///< Virtual closed-loop clients.
  uint32_t payload_size = 32;       ///< m: request payload bytes.
  uint32_t f = 1;                   ///< Commit ack threshold is f+1.
  util::DurationMicros request_timeout = util::Seconds(1);
  util::DurationMicros aggregation_window = util::Millis(1);
  util::DurationMicros complaint_scan_period = util::Millis(200);
  /// Stop issuing new requests after this time (0 = never); lets benches
  /// drain cleanly.
  util::TimeMicros stop_at = 0;
};

/// The pool actor.
class ClientPool : public runtime::Node {
 public:
  explicit ClientPool(ClientPoolConfig config) : config_(config) {}

  /// Node ids of all replicas (proposals and complaints are broadcast).
  void SetReplicas(std::vector<runtime::NodeId> replicas) {
    replicas_ = std::move(replicas);
  }

  void OnStart() override;
  void OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) override;
  void OnTimer(uint64_t tag) override;

  /// Pauses / resumes request issuance (scenario workload-intensity
  /// phases). While inactive, completed closed-loop clients defer their
  /// next request instead of issuing it; resuming issues every deferred
  /// request immediately. Safe to call between simulation runs.
  void SetActive(bool active);
  bool active() const { return active_; }

  /// Completed-request latencies in milliseconds.
  util::Histogram& latencies() { return latencies_; }
  int64_t committed() const { return committed_; }
  int64_t complaints_sent() const { return complaints_sent_; }
  size_t outstanding() const { return outstanding_.size(); }

 private:
  enum TimerTag : uint64_t { kFlush = 1, kComplaintScan = 2 };
  // Shared 48-bit tag packing (util/timer_tag.h).
  static uint64_t Tag(TimerTag kind, uint64_t payload = 0) {
    return util::PackTimerTag(kind, payload);
  }
  static TimerTag TagKind(uint64_t tag) {
    return util::TimerTagKind<TimerTag>(tag);
  }

  struct Outstanding {
    types::Transaction tx;
    __uint128_t ack_mask = 0;  ///< Replica ids that confirmed (n <= 128).
    int acks = 0;
    util::TimeMicros last_complaint = 0;
  };

  static uint64_t TxKey(const types::Transaction& tx) {
    return static_cast<uint64_t>(tx.pool) * 0x9e3779b97f4a7c15ULL ^
           tx.client_seq * 0xc2b2ae3d27d4eb4fULL;
  }

  void IssueRequest();
  void Flush();

  ClientPoolConfig config_;
  std::vector<runtime::NodeId> replicas_;
  bool active_ = true;
  uint32_t deferred_requests_ = 0;  ///< Clients idled while inactive.
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Outstanding> outstanding_;
  std::vector<types::Transaction> pending_send_;
  bool flush_armed_ = false;
  util::Histogram latencies_;
  int64_t committed_ = 0;
  int64_t complaints_sent_ = 0;
};

}  // namespace workload
}  // namespace prestige

#endif  // PRESTIGE_WORKLOAD_CLIENT_POOL_H_
