#include "workload/key_dist.h"

#include <algorithm>
#include <cmath>

namespace prestige {
namespace workload {

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // O(n) once per generator. Key spaces here are workload parameters
  // (thousands to millions), not open-ended — the largest sweeps use
  // ~1e6 keys, well under a millisecond of setup.
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t num_keys, double theta)
    : num_keys_(num_keys == 0 ? 1 : num_keys),
      theta_(std::clamp(theta, 0.0, 0.9999)) {
  zetan_ = Zeta(num_keys_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

uint64_t ZipfianGenerator::Next(util::Rng* rng) const {
  // Gray et al., "Quickly generating billion-record synthetic databases"
  // (SIGMOD '94), as popularized by YCSB's ZipfianGenerator.
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(num_keys_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, num_keys_ - 1);
}

}  // namespace workload
}  // namespace prestige
