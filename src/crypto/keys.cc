#include "crypto/keys.h"

namespace prestige {
namespace crypto {

std::vector<uint8_t> KeyStore::SecretKey(SignerId signer) const {
  // secret = SHA256(master_seed || signer_id), both little-endian fixed width.
  uint8_t material[12];
  for (int i = 0; i < 8; ++i) {
    material[i] = static_cast<uint8_t>(master_seed_ >> (i * 8));
  }
  for (int i = 0; i < 4; ++i) {
    material[8 + i] = static_cast<uint8_t>(signer >> (i * 8));
  }
  const Sha256Digest d = Sha256::Hash(material, sizeof(material));
  return std::vector<uint8_t>(d.begin(), d.end());
}

Signature KeyStore::Sign(SignerId signer, const Sha256Digest& digest) const {
  Signature sig;
  sig.signer = signer;
  sig.mac = HmacSha256(SecretKey(signer), digest);
  return sig;
}

bool KeyStore::Verify(const Signature& sig, const Sha256Digest& digest) const {
  const Sha256Digest expected = HmacSha256(SecretKey(sig.signer), digest);
  return expected == sig.mac;
}

}  // namespace crypto
}  // namespace prestige
