// HMAC-SHA256 (RFC 2104), built on the from-scratch SHA-256.
//
// Backs the simulated signature scheme: in this reproduction a "signature"
// is an HMAC over the canonical message digest under the signer's secret key
// (see DESIGN.md §4 for why this substitution preserves protocol behaviour).

#ifndef PRESTIGE_CRYPTO_HMAC_H_
#define PRESTIGE_CRYPTO_HMAC_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace prestige {
namespace crypto {

/// Computes HMAC-SHA256(key, message).
Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data,
                        size_t len);

inline Sha256Digest HmacSha256(const std::vector<uint8_t>& key,
                               const std::vector<uint8_t>& data) {
  return HmacSha256(key, data.data(), data.size());
}

inline Sha256Digest HmacSha256(const std::vector<uint8_t>& key,
                               const Sha256Digest& digest) {
  return HmacSha256(key, digest.data(), digest.size());
}

}  // namespace crypto
}  // namespace prestige

#endif  // PRESTIGE_CRYPTO_HMAC_H_
