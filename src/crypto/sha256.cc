#include "crypto/sha256.h"

#include <cstring>

#include "util/hex.h"

namespace prestige {
namespace crypto {

namespace {

constexpr uint32_t kInitialState[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t BigSigma0(uint32_t x) {
  return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}
inline uint32_t Ch(uint32_t e, uint32_t f, uint32_t g) {
  return (e & f) ^ (~e & g);
}
inline uint32_t Maj(uint32_t a, uint32_t b, uint32_t c) {
  return (a & b) ^ (a & c) ^ (b & c);
}

/// Big-endian 32-bit load; a single bswap instruction on little-endian
/// targets instead of four shift-or byte loads.
inline uint32_t LoadBe32(const uint8_t* p) {
#if defined(__GNUC__) && defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
#else
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
#endif
}

// Hash accounting. Thread-local on purpose: parallel seed sweeps run one
// Simulator per worker thread, and per-run attribution must not race or
// bleed across runs. t_active is the innermost installed CryptoMeter (or
// null); t_total_finished is the thread's cumulative count backing
// Sha256::TotalFinished().
thread_local uint64_t t_total_finished = 0;
thread_local CryptoMeter* t_active_meter = nullptr;

}  // namespace

ScopedCryptoMeter::ScopedCryptoMeter(CryptoMeter* meter)
    : prev_(t_active_meter) {
  t_active_meter = meter;
}

ScopedCryptoMeter::~ScopedCryptoMeter() { t_active_meter = prev_; }

void Sha256::Reset() {
  std::memcpy(state_, kInitialState, sizeof(state_));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBe32(block + i * 4);
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = w[i - 16] + SmallSigma0(w[i - 15]) + w[i - 7] +
           SmallSigma1(w[i - 2]);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

// One compression round with the working variables already permuted, so the
// eight-way unrolled loop below needs no register rotation at the end of
// each round (the rotation is encoded in the argument order instead).
#define PRESTIGE_SHA256_ROUND(a, b, c, d, e, f, g, h, i)                  \
  do {                                                                    \
    const uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) +                  \
                        kRoundConstants[i] + w[i];                        \
    const uint32_t t2 = BigSigma0(a) + Maj(a, b, c);                      \
    d += t1;                                                              \
    h = t1 + t2;                                                          \
  } while (0)

  for (int i = 0; i < 64; i += 8) {
    PRESTIGE_SHA256_ROUND(a, b, c, d, e, f, g, h, i + 0);
    PRESTIGE_SHA256_ROUND(h, a, b, c, d, e, f, g, i + 1);
    PRESTIGE_SHA256_ROUND(g, h, a, b, c, d, e, f, i + 2);
    PRESTIGE_SHA256_ROUND(f, g, h, a, b, c, d, e, i + 3);
    PRESTIGE_SHA256_ROUND(e, f, g, h, a, b, c, d, i + 4);
    PRESTIGE_SHA256_ROUND(d, e, f, g, h, a, b, c, i + 5);
    PRESTIGE_SHA256_ROUND(c, d, e, f, g, h, a, b, i + 6);
    PRESTIGE_SHA256_ROUND(b, c, d, e, f, g, h, a, i + 7);
  }

#undef PRESTIGE_SHA256_ROUND

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  // Zero-length updates may legitimately carry data == nullptr (e.g. an
  // empty command payload streamed through HashingEncoder); return before
  // any pointer arithmetic or memcpy sees the null.
  if (len == 0) return;
  bit_count_ += static_cast<uint64_t>(len) * 8;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 64) {
      ProcessBlock(data);
      data += 64;
      len -= 64;
      continue;
    }
    const size_t take = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

uint64_t Sha256::TotalFinished() { return t_total_finished; }

Sha256Digest Sha256::Finish() {
  ++t_total_finished;
  if (t_active_meter != nullptr) ++t_active_meter->finished;

  // Pad directly in the block buffer (one memset + at most two compression
  // calls) instead of the old byte-at-a-time Update loop: append 0x80, zero
  // to 56 mod 64, then the 64-bit big-endian message length.
  const uint64_t total_bits = bit_count_;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, 64 - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(total_bits >> (56 - i * 8));
  }
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::Hash(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

std::string DigestToHex(const Sha256Digest& digest) {
  return util::HexEncode(digest.data(), digest.size());
}

int CountLeadingZeroBits(const Sha256Digest& digest) {
  int bits = 0;
  for (uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int b = 7; b >= 0; --b) {
      if ((byte >> b) & 1) return bits;
      ++bits;
    }
  }
  return bits;
}

}  // namespace crypto
}  // namespace prestige
