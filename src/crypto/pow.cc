#include "crypto/pow.h"

#include <cmath>

namespace prestige {
namespace crypto {

util::DurationMicros PowParams::ExpectedSolveMicros(int64_t rp) const {
  const int bits = DifficultyBits(rp);
  const double expected_iters = std::pow(2.0, static_cast<double>(bits));
  const double seconds = expected_iters / hashes_per_second;
  const double micros = seconds * 1e6;
  if (micros < 1.0) return 1;
  if (micros > 9e18) return static_cast<util::DurationMicros>(9e18);
  return static_cast<util::DurationMicros>(micros);
}

Sha256Digest PowAttempt(const Sha256Digest& payload, uint64_t nonce) {
  Sha256 h;
  h.Update(payload.data(), payload.size());
  uint8_t nonce_bytes[8];
  for (int i = 0; i < 8; ++i) {
    nonce_bytes[i] = static_cast<uint8_t>(nonce >> (i * 8));
  }
  h.Update(nonce_bytes, sizeof(nonce_bytes));
  return h.Finish();
}

bool PowCheck(const Sha256Digest& hash, int difficulty_bits) {
  return CountLeadingZeroBits(hash) >= difficulty_bits;
}

bool PowVerify(const Sha256Digest& payload, uint64_t nonce,
               int difficulty_bits) {
  return PowCheck(PowAttempt(payload, nonce), difficulty_bits);
}

util::Result<PowSolution> RealPowSolver::Solve(const Sha256Digest& payload,
                                               int difficulty_bits,
                                               util::Rng* rng,
                                               uint64_t max_iterations) const {
  for (uint64_t i = 1; i <= max_iterations; ++i) {
    const uint64_t nonce = rng->NextUint64();
    const Sha256Digest hash = PowAttempt(payload, nonce);
    if (PowCheck(hash, difficulty_bits)) {
      PowSolution sol;
      sol.nonce = nonce;
      sol.hash = hash;
      sol.iterations = i;
      return sol;
    }
  }
  return util::Status::TimedOut("PoW search exhausted max_iterations");
}

double ModeledPowSolver::SampleIterations(int difficulty_bits,
                                          util::Rng* rng) const {
  const double p = std::pow(2.0, -static_cast<double>(difficulty_bits));
  return rng->NextGeometricTrials(p);
}

util::DurationMicros ModeledPowSolver::SampleSolveMicros(
    int difficulty_bits, util::Rng* rng) const {
  const double iters = SampleIterations(difficulty_bits, rng);
  const double seconds = iters / params_.hashes_per_second;
  const double micros = seconds * 1e6;
  if (micros < 1.0) return 1;
  if (micros > 9e18) return static_cast<util::DurationMicros>(9e18);
  return static_cast<util::DurationMicros>(micros);
}

}  // namespace crypto
}  // namespace prestige
