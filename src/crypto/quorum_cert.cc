#include "crypto/quorum_cert.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace prestige {
namespace crypto {

std::vector<SignerId> QuorumCert::SignerIds() const {
  std::vector<SignerId> ids;
  ids.reserve(partials.size());
  for (const Signature& sig : partials) ids.push_back(sig.signer);
  return ids;
}

bool QuorumCertBuilder::Add(const Signature& sig, const Sha256Digest& digest) {
  if (digest != digest_) return false;
  for (const Signature& existing : partials_) {
    if (existing.signer == sig.signer) return false;
  }
  partials_.push_back(sig);
  return true;
}

QuorumCert QuorumCertBuilder::Build() const {
  assert(Complete() && "QuorumCertBuilder::Build before threshold reached");
  QuorumCert qc;
  qc.digest = digest_;
  qc.threshold = threshold_;
  qc.partials = partials_;
  // Canonical signer order so certificates compare deterministically.
  std::sort(qc.partials.begin(), qc.partials.end(),
            [](const Signature& a, const Signature& b) {
              return a.signer < b.signer;
            });
  return qc;
}

util::Status VerifyQuorumCert(const KeyStore& keys, const QuorumCert& qc,
                              const Sha256Digest& expected_digest,
                              uint32_t expected_threshold) {
  if (qc.empty()) {
    return util::Status::InvalidSignature("empty quorum certificate");
  }
  if (qc.digest != expected_digest) {
    return util::Status::InvalidSignature("QC digest mismatch");
  }
  if (qc.threshold < expected_threshold) {
    return util::Status::InvalidSignature("QC threshold below required");
  }
  if (qc.partials.size() < qc.threshold) {
    return util::Status::InvalidSignature("QC has fewer partials than threshold");
  }
  std::unordered_set<SignerId> seen;
  for (const Signature& sig : qc.partials) {
    if (!seen.insert(sig.signer).second) {
      return util::Status::InvalidSignature("duplicate signer in QC");
    }
    if (!keys.Verify(sig, qc.digest)) {
      return util::Status::InvalidSignature("bad partial signature in QC");
    }
  }
  return util::Status::OK();
}

}  // namespace crypto
}  // namespace prestige
