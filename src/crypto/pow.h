// The reputation-weighted proof-of-work puzzle (§4.2.2).
//
// A redeemer with reputation penalty rp must find a nonce nc such that
// SHA256(txBlock-digest || nc) has a prefix of rp "zero units". Followers
// verify with a single hash (criterion C5).
//
// Difficulty calibration: the paper's prose says rp leading zero *bytes*
// (Pr = 2^-8rp), but its measured costs — "<20 ms for rp<5, hours for rp>8"
// (§4.2.4) and Fig. 12's 10^0..10^6 ms range — are only consistent with
// 4 bits per rp unit (hex-digit zeros) at a few MH/s. We therefore expose
// `bits_per_unit` (default 4, matching the measured numbers) and calibrate
// the modeled hash rate accordingly; see DESIGN.md §4.
//
// Two solvers share one interface:
//  * RealPowSolver actually searches nonces (tests, examples, Fig. 12's
//    verification path for small rp).
//  * ModeledPowSolver samples the iteration count from the exact geometric
//    distribution Geom(2^-bits) and converts it to virtual time, so the
//    simulator can express "hours of work" without burning wall clock.

#ifndef PRESTIGE_CRYPTO_POW_H_
#define PRESTIGE_CRYPTO_POW_H_

#include <cstdint>

#include "crypto/sha256.h"
#include "util/random.h"
#include "util/result.h"
#include "util/time.h"

namespace prestige {
namespace crypto {

/// A solved puzzle: the nonce, its hash, and how many attempts were made.
struct PowSolution {
  uint64_t nonce = 0;
  Sha256Digest hash{};
  uint64_t iterations = 0;
};

/// Difficulty & cost model shared by solvers and verifiers.
struct PowParams {
  /// Leading zero bits demanded per unit of reputation penalty.
  int bits_per_unit = 4;
  /// Modeled hash throughput of one server (hashes / second of virtual time).
  double hashes_per_second = 3.3e6;

  /// Difficulty in bits for penalty `rp` (clamped to the digest width).
  int DifficultyBits(int64_t rp) const {
    const int64_t bits = rp * bits_per_unit;
    return bits > 256 ? 256 : static_cast<int>(bits < 0 ? 0 : bits);
  }

  /// Expected solve time for penalty `rp` in virtual microseconds.
  util::DurationMicros ExpectedSolveMicros(int64_t rp) const;
};

/// Hashes one attempt: SHA256(payload-digest || nonce-LE64).
Sha256Digest PowAttempt(const Sha256Digest& payload, uint64_t nonce);

/// True iff `hash` has at least `difficulty_bits` leading zero bits.
bool PowCheck(const Sha256Digest& hash, int difficulty_bits);

/// Verifies a claimed solution with a single hash (O(1), criterion C5).
bool PowVerify(const Sha256Digest& payload, uint64_t nonce,
               int difficulty_bits);

/// Brute-force solver (real hashing).
class RealPowSolver {
 public:
  /// Searches random nonces until one satisfies `difficulty_bits` or
  /// `max_iterations` attempts are exhausted (TimedOut).
  util::Result<PowSolution> Solve(const Sha256Digest& payload,
                                  int difficulty_bits, util::Rng* rng,
                                  uint64_t max_iterations = 1ull << 32) const;
};

/// Analytic solver for the simulator: samples the attempt count from
/// Geom(p = 2^-difficulty_bits) and reports the virtual time the search
/// would have taken at `params.hashes_per_second`.
class ModeledPowSolver {
 public:
  explicit ModeledPowSolver(PowParams params) : params_(params) {}

  /// Sampled number of hash attempts for one solve.
  double SampleIterations(int difficulty_bits, util::Rng* rng) const;

  /// Sampled virtual duration of one solve (>= 1 microsecond).
  util::DurationMicros SampleSolveMicros(int difficulty_bits,
                                         util::Rng* rng) const;

  const PowParams& params() const { return params_; }

 private:
  PowParams params_;
};

}  // namespace crypto
}  // namespace prestige

#endif  // PRESTIGE_CRYPTO_POW_H_
