// Quorum certificates via simulated (t, n) threshold signatures.
//
// The paper (§4.1) converts t individually signed messages into one fully
// signed message of size O(1). We keep the logical content (which signers
// contributed) for verifiability inside the simulation, while the *physical*
// size of a QC on the simulated wire is a protocol constant — preserving the
// O(1) bandwidth property the paper relies on.

#ifndef PRESTIGE_CRYPTO_QUORUM_CERT_H_
#define PRESTIGE_CRYPTO_QUORUM_CERT_H_

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "util/status.h"

namespace prestige {
namespace crypto {

/// A combined threshold signature over one message digest.
struct QuorumCert {
  Sha256Digest digest{};            ///< The signed message digest.
  uint32_t threshold = 0;           ///< Required signer count (f+1 or 2f+1).
  std::vector<Signature> partials;  ///< Distinct-signer partial signatures.

  /// True if default-constructed (no certificate present).
  bool empty() const { return threshold == 0 && partials.empty(); }

  /// Signers contributing to this certificate.
  std::vector<SignerId> SignerIds() const;
};

/// Accumulates partial signatures for one digest until a threshold is met.
class QuorumCertBuilder {
 public:
  QuorumCertBuilder() = default;
  QuorumCertBuilder(Sha256Digest digest, uint32_t threshold)
      : digest_(digest), threshold_(threshold) {}

  /// Adds a partial signature. Duplicates from the same signer and
  /// signatures over other digests are ignored (returns false).
  bool Add(const Signature& sig, const Sha256Digest& digest);

  /// Number of distinct signers collected so far.
  uint32_t Count() const { return static_cast<uint32_t>(partials_.size()); }

  /// True once `threshold` distinct signers have contributed.
  bool Complete() const { return Count() >= threshold_; }

  /// Combines the collected partials into a certificate. Requires Complete().
  QuorumCert Build() const;

  const Sha256Digest& digest() const { return digest_; }
  uint32_t threshold() const { return threshold_; }

 private:
  Sha256Digest digest_{};
  uint32_t threshold_ = 0;
  std::vector<Signature> partials_;
};

/// Verifies `qc`: threshold size, distinct signers, and every partial MAC.
/// `expected_threshold` guards against certificates built with a weaker
/// quorum than the protocol step requires (criterion C2 uses f+1, QCs in
/// replication use 2f+1).
util::Status VerifyQuorumCert(const KeyStore& keys, const QuorumCert& qc,
                              const Sha256Digest& expected_digest,
                              uint32_t expected_threshold);

}  // namespace crypto
}  // namespace prestige

#endif  // PRESTIGE_CRYPTO_QUORUM_CERT_H_
