// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block digests, HMAC-SHA256 (simulated signatures), and the
// view-change proof-of-work puzzle (§4.2.2 of the paper). Verified against
// NIST known-answer test vectors in tests/crypto_test.cc.

#ifndef PRESTIGE_CRYPTO_SHA256_H_
#define PRESTIGE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace prestige {
namespace crypto {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Hash-cost accounting for one unit of work (one seed run, one bench).
///
/// Replaces the old process-wide Sha256 counter, which assumed a
/// single-threaded simulation: with parallel seed sweeps, several
/// independent Simulator instances hash concurrently on different threads,
/// and a process-global counter could no longer attribute work to a run.
/// Install a meter with ScopedCryptoMeter; every Finish() on that thread is
/// then credited to it. Counts are deterministic per (spec, config, seed).
struct CryptoMeter {
  uint64_t finished = 0;  ///< Completed SHA-256 computations (Finish calls).
};

/// RAII installer: redirects this thread's hash accounting to `meter` for
/// the scope's lifetime, restoring the previous meter (if any) on exit.
/// Scopes nest; only the innermost meter is credited.
class ScopedCryptoMeter {
 public:
  explicit ScopedCryptoMeter(CryptoMeter* meter);
  ~ScopedCryptoMeter();

  ScopedCryptoMeter(const ScopedCryptoMeter&) = delete;
  ScopedCryptoMeter& operator=(const ScopedCryptoMeter&) = delete;

 private:
  CryptoMeter* prev_;
};

/// Incremental SHA-256 hasher.
///
///   Sha256 h;
///   h.Update(data, len);
///   Sha256Digest d = h.Finish();
///
/// Finish() may be called once; use Reset() to reuse the object.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Restores the initial hash state.
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Pads, finalizes, and returns the digest.
  Sha256Digest Finish();

  /// Cumulative count of completed SHA-256 computations on the calling
  /// thread. Thread-local (not process-wide): with parallel seed sweeps,
  /// per-run attribution goes through CryptoMeter; this counter remains as
  /// the whole-thread total, and in a single-threaded run the per-run
  /// meters sum exactly to its delta (asserted by
  /// tests/parallel_sweep_test.cc).
  static uint64_t TotalFinished();

  /// One-shot convenience.
  static Sha256Digest Hash(const uint8_t* data, size_t len);
  static Sha256Digest Hash(const std::vector<uint8_t>& data) {
    return Hash(data.data(), data.size());
  }
  static Sha256Digest Hash(const std::string& data) {
    return Hash(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Lower-case hex rendering of a digest.
std::string DigestToHex(const Sha256Digest& digest);

/// Number of leading zero *bits* in the digest (PoW difficulty check).
int CountLeadingZeroBits(const Sha256Digest& digest);

}  // namespace crypto
}  // namespace prestige

#endif  // PRESTIGE_CRYPTO_SHA256_H_
