#include "crypto/hmac.h"

#include <cstring>

namespace prestige {
namespace crypto {

Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data,
                        size_t len) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize] = {0};

  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize];
  uint8_t opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  inner.Update(data, len);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

}  // namespace crypto
}  // namespace prestige
