// Simulated PKI: deterministic per-node secret keys and HMAC signatures.
//
// Paper model (§4.1): servers use public-key signatures and (t,n) threshold
// signatures; faulty servers are computationally bound and cannot forge a
// non-faulty server's signature. In this reproduction a signature is
// HMAC-SHA256(secret_key[signer], message-digest). The KeyStore plays the
// role of the PKI: honest replicas hold a Signer restricted to their own
// identity, and verification recomputes the MAC. Forgery is impossible
// within the simulation because attacker code is never handed another
// node's Signer — mirroring the computational-boundedness assumption.

#ifndef PRESTIGE_CRYPTO_KEYS_H_
#define PRESTIGE_CRYPTO_KEYS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace prestige {
namespace crypto {

/// Raw node identity used by the crypto layer (replicas and clients share the
/// id space; clients are offset by the harness).
using SignerId = uint32_t;

/// A signature: the signer's identity plus an HMAC over the message digest.
struct Signature {
  SignerId signer = 0;
  Sha256Digest mac{};

  bool operator==(const Signature& other) const {
    return signer == other.signer && mac == other.mac;
  }
};

/// Holds every participant's secret key; acts as the trusted PKI oracle.
///
/// Keys are derived as SHA256(master_seed || signer_id), so a KeyStore is
/// fully determined by its seed.
class KeyStore {
 public:
  explicit KeyStore(uint64_t master_seed) : master_seed_(master_seed) {}

  /// Signs `digest` with `signer`'s key.
  Signature Sign(SignerId signer, const Sha256Digest& digest) const;

  /// True iff `sig` is a valid signature over `digest`.
  bool Verify(const Signature& sig, const Sha256Digest& digest) const;

  uint64_t master_seed() const { return master_seed_; }

 private:
  std::vector<uint8_t> SecretKey(SignerId signer) const;

  uint64_t master_seed_;
};

/// A signing capability restricted to one identity. Handed to each replica /
/// client so honest code cannot sign as anyone else.
class Signer {
 public:
  Signer(const KeyStore* store, SignerId id) : store_(store), id_(id) {}

  SignerId id() const { return id_; }

  Signature Sign(const Sha256Digest& digest) const {
    return store_->Sign(id_, digest);
  }

 private:
  const KeyStore* store_;
  SignerId id_;
};

}  // namespace crypto
}  // namespace prestige

#endif  // PRESTIGE_CRYPTO_KEYS_H_
