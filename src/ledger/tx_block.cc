#include "ledger/tx_block.h"

namespace prestige {
namespace ledger {

crypto::Sha256Digest OrderingDigest(types::View v, types::SeqNum n,
                                    const crypto::Sha256Digest& block_digest) {
  types::HashingEncoder enc("ord");
  enc.PutI64(v).PutI64(n).PutDigest(block_digest);
  return enc.Digest();
}

crypto::Sha256Digest CommitDigest(types::View v, types::SeqNum n,
                                  const crypto::Sha256Digest& block_digest) {
  types::HashingEncoder enc("cmt");
  enc.PutI64(v).PutI64(n).PutDigest(block_digest);
  return enc.Digest();
}

}  // namespace ledger
}  // namespace prestige
