// Memoized SHA-256 digest for block types whose identity fields mutate
// rarely but whose Digest() is read once per protocol message.

#ifndef PRESTIGE_LEDGER_DIGEST_CACHE_H_
#define PRESTIGE_LEDGER_DIGEST_CACHE_H_

#include "crypto/sha256.h"

namespace prestige {
namespace ledger {

/// Lazily computed digest with explicit invalidation.
///
/// The owning block calls Invalidate() from every mutator of a field the
/// digest covers; Get() then recomputes at most once per invalidation.
/// Copying a cache alongside its fields keeps the cached value valid, so
/// blocks remain freely copyable.
class DigestCache {
 public:
  void Invalidate() { valid_ = false; }
  bool valid() const { return valid_; }

  template <typename ComputeFn>
  const crypto::Sha256Digest& Get(ComputeFn&& compute) const {
    if (!valid_) {
      digest_ = compute();
      valid_ = true;
    }
    return digest_;
  }

 private:
  mutable crypto::Sha256Digest digest_{};
  mutable bool valid_ = false;
};

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_DIGEST_CACHE_H_
