// Memoized SHA-256 digest for block types whose identity fields mutate
// rarely but whose Digest() is read once per protocol message.

#ifndef PRESTIGE_LEDGER_DIGEST_CACHE_H_
#define PRESTIGE_LEDGER_DIGEST_CACHE_H_

#include <atomic>
#include <thread>

#include "crypto/sha256.h"

namespace prestige {
namespace ledger {

/// Lazily computed digest with explicit invalidation.
///
/// The owning block calls Invalidate() from every mutator of a field the
/// digest covers; Get() then recomputes at most once per invalidation.
/// Copying a cache alongside its fields keeps the cached value valid, so
/// blocks remain freely copyable.
///
/// Concurrency: under the threaded runtime a broadcast delivers one shared
/// message — and thus one shared cache — to receivers running on different
/// threads, so concurrent Get() calls on a *published* (no longer mutated)
/// block must be safe. A three-state atomic guards the fill: exactly one
/// thread computes, late arrivals spin until the digest is published.
/// Mutation (Invalidate / the mutating Get that follows) remains
/// single-threaded by the runtime::Env contract — only the block's owner
/// mutates it, and only before sending. On the single-threaded simulator
/// the fast path is one relaxed-ish atomic load, and the compute-once
/// accounting (hash counts) is unchanged.
class DigestCache {
 public:
  DigestCache() = default;

  /// Copies preserve a published value; a copy raced against an in-flight
  /// fill (impossible under the Env contract, but harmless) just starts
  /// invalid and recomputes.
  DigestCache(const DigestCache& other) { CopyFrom(other); }
  DigestCache& operator=(const DigestCache& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }

  void Invalidate() { state_.store(kEmpty, std::memory_order_relaxed); }
  bool valid() const {
    return state_.load(std::memory_order_acquire) == kValid;
  }

  template <typename ComputeFn>
  const crypto::Sha256Digest& Get(ComputeFn&& compute) const {
    if (state_.load(std::memory_order_acquire) == kValid) {
      return digest_;
    }
    int expected = kEmpty;
    if (state_.compare_exchange_strong(expected, kFilling,
                                       std::memory_order_acq_rel)) {
      digest_ = compute();
      state_.store(kValid, std::memory_order_release);
      return digest_;
    }
    // Another thread owns the fill; wait for it to publish.
    while (state_.load(std::memory_order_acquire) != kValid) {
      std::this_thread::yield();
    }
    return digest_;
  }

 private:
  enum : int { kEmpty = 0, kFilling = 1, kValid = 2 };

  void CopyFrom(const DigestCache& other) {
    if (other.state_.load(std::memory_order_acquire) == kValid) {
      digest_ = other.digest_;
      state_.store(kValid, std::memory_order_release);
    } else {
      state_.store(kEmpty, std::memory_order_relaxed);
    }
  }

  mutable crypto::Sha256Digest digest_{};
  mutable std::atomic<int> state_{kEmpty};
};

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_DIGEST_CACHE_H_
