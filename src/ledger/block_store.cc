#include "ledger/block_store.h"

#include <algorithm>

namespace prestige {
namespace ledger {

util::Status BlockStore::AppendTxBlock(TxBlock block) {
  const types::SeqNum expected = LatestTxSeq() + 1;
  if (block.n() != expected) {
    return util::Status::Corruption("txBlock sequence gap: expected " +
                                    std::to_string(expected) + ", got " +
                                    std::to_string(block.n()));
  }
  if (!tx_chain_.empty() && block.prev_hash() != tx_chain_.back().Digest()) {
    return util::Status::Corruption("txBlock prev_hash mismatch at n=" +
                                    std::to_string(block.n()));
  }
  total_txs_ += static_cast<int64_t>(block.BatchSize());
  tx_chain_.push_back(std::move(block));
  return util::Status::OK();
}

util::Status BlockStore::AppendVcBlock(VcBlock block) {
  if (!vc_chain_.empty()) {
    if (block.v() <= vc_chain_.back().v()) {
      return util::Status::Corruption("vcBlock view not increasing: " +
                                      std::to_string(block.v()));
    }
    if (block.prev_hash() != vc_chain_.back().Digest()) {
      return util::Status::Corruption("vcBlock prev_hash mismatch at v=" +
                                      std::to_string(block.v()));
    }
  }
  vc_chain_.push_back(std::move(block));
  return util::Status::OK();
}

util::Status BlockStore::AppendVcBlockResolvingFork(VcBlock block,
                                                    size_t max_unwind) {
  if (util::Status direct = AppendVcBlock(block); direct.ok()) {
    return direct;
  }
  if (vc_chain_.empty()) {
    return util::Status::Corruption("fork resolution on empty chain");
  }
  if (block.v() <= vc_chain_.back().v()) {
    return util::Status::Corruption("fork block does not exceed tip view");
  }
  // Search for the parent among the most recent blocks.
  const size_t limit = std::min(max_unwind, vc_chain_.size());
  for (size_t back = 1; back <= limit; ++back) {
    const size_t idx = vc_chain_.size() - back;
    if (vc_chain_[idx].Digest() == block.prev_hash()) {
      vc_chain_.resize(idx + 1);  // Unwind the conflicting tail.
      return AppendVcBlock(std::move(block));
    }
  }
  return util::Status::Corruption("fork parent not found in recent chain");
}

const TxBlock* BlockStore::TxBlockAt(types::SeqNum n) const {
  if (n < 1 || static_cast<size_t>(n) > tx_chain_.size()) return nullptr;
  return &tx_chain_[static_cast<size_t>(n - 1)];
}

const VcBlock* BlockStore::VcBlockFor(types::View v) const {
  // Views are strictly increasing but not dense; binary search.
  size_t lo = 0, hi = vc_chain_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (vc_chain_[mid].v() < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < vc_chain_.size() && vc_chain_[lo].v() == v) return &vc_chain_[lo];
  return nullptr;
}

std::vector<TxBlock> BlockStore::TxBlocksAfter(types::SeqNum after,
                                               types::SeqNum up_to) const {
  std::vector<TxBlock> out;
  for (const TxBlock& b : tx_chain_) {
    if (b.n() > after && b.n() <= up_to) out.push_back(b);
  }
  return out;
}

std::vector<VcBlock> BlockStore::VcBlocksAfter(types::View after,
                                               types::View up_to) const {
  std::vector<VcBlock> out;
  for (const VcBlock& b : vc_chain_) {
    if (b.v() > after && b.v() <= up_to) out.push_back(b);
  }
  return out;
}

std::vector<types::Penalty> BlockStore::HistoricPenalties(
    types::ReplicaId id) const {
  std::vector<types::Penalty> penalties;
  penalties.reserve(vc_chain_.size());
  for (auto it = vc_chain_.rbegin(); it != vc_chain_.rend(); ++it) {
    penalties.push_back(it->PenaltyOf(id));
  }
  return penalties;
}

}  // namespace ledger
}  // namespace prestige
