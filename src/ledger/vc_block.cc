#include "ledger/vc_block.h"

namespace prestige {
namespace ledger {

crypto::Sha256Digest ConfDigest(types::View v) {
  types::HashingEncoder enc("confvc");
  enc.PutI64(v);
  return enc.Digest();
}

crypto::Sha256Digest VoteDigest(types::View v_new,
                                types::ReplicaId candidate) {
  types::HashingEncoder enc("votecp");
  enc.PutI64(v_new).PutU32(candidate);
  return enc.Digest();
}

crypto::Sha256Digest VcYesDigest(const crypto::Sha256Digest& vc_block_digest) {
  types::HashingEncoder enc("vcyes");
  enc.PutDigest(vc_block_digest);
  return enc.Digest();
}

crypto::Sha256Digest RefreshDigest(types::ReplicaId id, types::View v) {
  types::HashingEncoder enc("refresh");
  enc.PutU32(id).PutI64(v);
  return enc.Digest();
}

}  // namespace ledger
}  // namespace prestige
