// A replicated key-value store: the example application service.
//
// Transactions are interpreted deterministically from their fingerprint as
// Put operations over a bounded key space, so all replicas converge to the
// same map. Used by the examples and by convergence tests.

#ifndef PRESTIGE_LEDGER_KV_STATE_MACHINE_H_
#define PRESTIGE_LEDGER_KV_STATE_MACHINE_H_

#include <cstdint>
#include <unordered_map>

#include "ledger/state_machine.h"

namespace prestige {
namespace ledger {

/// Deterministic KV store driven by transaction fingerprints.
class KvStateMachine : public StateMachine {
 public:
  explicit KvStateMachine(uint64_t key_space = 1024)
      : key_space_(key_space == 0 ? 1 : key_space) {}

  void Apply(const TxBlock& block) override {
    for (const types::Transaction& tx : block.txs()) {
      const uint64_t key = tx.fingerprint % key_space_;
      const uint64_t value = tx.fingerprint;
      map_[key] = value;
      // Rolling state digest for cheap cross-replica comparison.
      state_digest_ =
          state_digest_ * 1099511628211ULL ^ (key * 31 + value);
      ++applied_;
    }
  }

  int64_t applied_count() const override { return applied_; }

  /// Value for `key`, or 0 if absent.
  uint64_t Get(uint64_t key) const {
    auto it = map_.find(key % key_space_);
    return it == map_.end() ? 0 : it->second;
  }

  size_t size() const { return map_.size(); }

  /// Order-sensitive digest of the applied history; equal digests mean the
  /// replicas applied identical sequences.
  uint64_t state_digest() const { return state_digest_; }

 private:
  uint64_t key_space_;
  std::unordered_map<uint64_t, uint64_t> map_;
  int64_t applied_ = 0;
  uint64_t state_digest_ = 1469598103934665603ULL;
};

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_KV_STATE_MACHINE_H_
