// txBlock: the deterministic result of one replication consensus instance.
//
// Mirrors Figure 3 of the paper:
//   header    — view number v, block index n, addresses of this block and
//               the previous txBlock (hash chaining);
//   agreement — ordering_QC and commit_QC;
//   payload   — tx[] and per-transaction status[].

#ifndef PRESTIGE_LEDGER_TX_BLOCK_H_
#define PRESTIGE_LEDGER_TX_BLOCK_H_

#include <vector>

#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "types/codec.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace ledger {

/// One committed batch of transactions.
struct TxBlock {
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Sha256Digest prev_hash{};  ///< Address of the previous txBlock.

  std::vector<types::Transaction> txs;
  std::vector<uint8_t> status;  ///< Per-tx consensus result (1 = committed).

  crypto::QuorumCert ordering_qc;
  crypto::QuorumCert commit_qc;

  /// Digest of the block body, i.e. the block's address.
  ///
  /// Identity = (n, prev_hash, transactions). The view is deliberately
  /// excluded (like PBFT's request digests): a new leader re-proposing an
  /// in-flight block in a higher view keeps the same block identity, so
  /// followers commit-bound to it by an earlier view still converge. QCs
  /// certify the block and are likewise not part of the address.
  crypto::Sha256Digest Digest() const {
    types::Encoder enc("txblock");
    enc.PutI64(n).PutDigest(prev_hash).PutDigest(types::BatchDigest(txs));
    return enc.Digest();
  }

  /// Number of transactions (the batch size beta of this block).
  size_t BatchSize() const { return txs.size(); }
};

/// Digest signed in the ordering phase for block (v, n, body).
crypto::Sha256Digest OrderingDigest(types::View v, types::SeqNum n,
                                    const crypto::Sha256Digest& block_digest);

/// Digest signed in the commit phase for block (v, n, body).
crypto::Sha256Digest CommitDigest(types::View v, types::SeqNum n,
                                  const crypto::Sha256Digest& block_digest);

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_TX_BLOCK_H_
