// txBlock: the deterministic result of one replication consensus instance.
//
// Mirrors Figure 3 of the paper:
//   header    — view number v, block index n, addresses of this block and
//               the previous txBlock (hash chaining);
//   agreement — ordering_QC and commit_QC;
//   payload   — tx[] and per-transaction status[].

#ifndef PRESTIGE_LEDGER_TX_BLOCK_H_
#define PRESTIGE_LEDGER_TX_BLOCK_H_

#include <utility>
#include <vector>

#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "ledger/digest_cache.h"
#include "types/codec.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace ledger {

/// One committed batch of transactions.
///
/// The identity fields (n, prev_hash, txs) are private behind mutators so
/// the memoized Digest() can never go stale: every write invalidates the
/// cache. Fields the digest does not cover (v, status, QCs) stay public.
class TxBlock {
 public:
  types::View v = 0;
  std::vector<uint8_t> status;  ///< Per-tx consensus result (1 = committed).

  crypto::QuorumCert ordering_qc;
  crypto::QuorumCert commit_qc;

  types::SeqNum n() const { return n_; }
  void set_n(types::SeqNum n) {
    n_ = n;
    cache_.Invalidate();
  }

  const crypto::Sha256Digest& prev_hash() const { return prev_hash_; }
  void set_prev_hash(const crypto::Sha256Digest& h) {
    prev_hash_ = h;
    cache_.Invalidate();
  }

  const std::vector<types::Transaction>& txs() const { return txs_; }
  void set_txs(std::vector<types::Transaction> txs) {
    txs_ = std::move(txs);
    cache_.Invalidate();
  }
  /// Moves the batch out (for re-proposal); the block is left empty.
  std::vector<types::Transaction> release_txs() {
    cache_.Invalidate();
    return std::move(txs_);
  }

  /// Digest of the block body, i.e. the block's address. Memoized; valid
  /// until the next identity-field mutation.
  ///
  /// Identity = (n, prev_hash, transactions). The view is deliberately
  /// excluded (like PBFT's request digests): a new leader re-proposing an
  /// in-flight block in a higher view keeps the same block identity, so
  /// followers commit-bound to it by an earlier view still converge. QCs
  /// certify the block and are likewise not part of the address.
  const crypto::Sha256Digest& Digest() const {
    return cache_.Get([this] {
      types::HashingEncoder enc("txblock");
      enc.PutI64(n_).PutDigest(prev_hash_).PutDigest(types::BatchDigest(txs_));
      return enc.Digest();
    });
  }

  /// Number of transactions (the batch size beta of this block).
  size_t BatchSize() const { return txs_.size(); }

 private:
  types::SeqNum n_ = 0;
  crypto::Sha256Digest prev_hash_{};  ///< Address of the previous txBlock.
  std::vector<types::Transaction> txs_;
  DigestCache cache_;
};

/// Digest signed in the ordering phase for block (v, n, body).
crypto::Sha256Digest OrderingDigest(types::View v, types::SeqNum n,
                                    const crypto::Sha256Digest& block_digest);

/// Digest signed in the commit phase for block (v, n, body).
crypto::Sha256Digest CommitDigest(types::View v, types::SeqNum n,
                                  const crypto::Sha256Digest& block_digest);

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_TX_BLOCK_H_
