// BlockStore: a replica's state machine log of txBlocks and vcBlocks.
//
// Both chains are hash-linked and append-only. The reputation engine reads
// them ("retrieves information", Fig. 2) but never writes (§3 Features).

#ifndef PRESTIGE_LEDGER_BLOCK_STORE_H_
#define PRESTIGE_LEDGER_BLOCK_STORE_H_

#include <optional>
#include <vector>

#include "ledger/tx_block.h"
#include "ledger/vc_block.h"
#include "util/status.h"

namespace prestige {
namespace ledger {

/// Append-only store of the two block chains.
///
/// Invariants enforced on append:
///  * txBlocks arrive with consecutive sequence numbers (n = latest + 1)
///    and a prev_hash equal to the latest txBlock's digest;
///  * vcBlocks arrive with strictly increasing views and a prev_hash equal
///    to the latest vcBlock's digest.
class BlockStore {
 public:
  BlockStore() = default;

  /// Appends a committed txBlock. Fails with Corruption on chain breaks.
  util::Status AppendTxBlock(TxBlock block);

  /// Appends a view-change block. Fails with Corruption on chain breaks.
  util::Status AppendVcBlock(VcBlock block);

  /// Fork resolution: if `block`'s parent is an ancestor within the last
  /// `max_unwind` vcBlocks and `block.v` exceeds the current tip view,
  /// unwinds the conflicting tail and appends `block` (higher-view-wins;
  /// concurrent elections at different views can briefly fork the chain).
  util::Status AppendVcBlockResolvingFork(VcBlock block,
                                          size_t max_unwind = 8);

  /// Highest committed txBlock sequence number (ti in Eq. 2); 0 when empty.
  types::SeqNum LatestTxSeq() const {
    return tx_chain_.empty() ? 0 : tx_chain_.back().n();
  }

  /// Digest of the latest txBlock (all-zero when empty).
  crypto::Sha256Digest LatestTxDigest() const {
    return tx_chain_.empty() ? crypto::Sha256Digest{}
                             : tx_chain_.back().Digest();
  }

  /// Latest txBlock, or nullptr when empty.
  const TxBlock* LatestTxBlock() const {
    return tx_chain_.empty() ? nullptr : &tx_chain_.back();
  }

  /// View of the latest vcBlock; 1 (the initial view) when only genesis.
  types::View CurrentView() const {
    return vc_chain_.empty() ? 1 : vc_chain_.back().v();
  }

  /// Latest vcBlock, or nullptr before the first view change.
  const VcBlock* LatestVcBlock() const {
    return vc_chain_.empty() ? nullptr : &vc_chain_.back();
  }

  /// txBlock at sequence `n` (1-based), or nullptr.
  const TxBlock* TxBlockAt(types::SeqNum n) const;

  /// vcBlock for view `v`, or nullptr.
  const VcBlock* VcBlockFor(types::View v) const;

  /// txBlocks in (after, up_to], for SyncUp responses.
  std::vector<TxBlock> TxBlocksAfter(types::SeqNum after,
                                     types::SeqNum up_to) const;

  /// vcBlocks with views in (after, up_to], for SyncUp responses.
  std::vector<VcBlock> VcBlocksAfter(types::View after,
                                     types::View up_to) const;

  /// Walks the vcBlock chain newest-to-oldest collecting `id`'s penalty in
  /// each block — the historic penalty set P of Algorithm 1 (excluding the
  /// current block, which the caller seeds).
  std::vector<types::Penalty> HistoricPenalties(types::ReplicaId id) const;

  size_t tx_chain_size() const { return tx_chain_.size(); }
  size_t vc_chain_size() const { return vc_chain_.size(); }

  const std::vector<TxBlock>& tx_chain() const { return tx_chain_; }
  const std::vector<VcBlock>& vc_chain() const { return vc_chain_; }

  /// Total committed transactions across all txBlocks.
  int64_t TotalCommittedTxs() const { return total_txs_; }

 private:
  std::vector<TxBlock> tx_chain_;
  std::vector<VcBlock> vc_chain_;
  int64_t total_txs_ = 0;
};

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_BLOCK_STORE_H_
