// Application state machine interface (the SMR "service" being replicated).

#ifndef PRESTIGE_LEDGER_STATE_MACHINE_H_
#define PRESTIGE_LEDGER_STATE_MACHINE_H_

#include "ledger/tx_block.h"

namespace prestige {
namespace ledger {

/// Deterministic application applied in commit order.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies every transaction of a committed block, in order.
  virtual void Apply(const TxBlock& block) = 0;

  /// Number of transactions applied so far.
  virtual int64_t applied_count() const = 0;
};

/// No-op state machine for pure-throughput experiments.
class NullStateMachine : public StateMachine {
 public:
  void Apply(const TxBlock& block) override {
    applied_ += static_cast<int64_t>(block.BatchSize());
  }
  int64_t applied_count() const override { return applied_; }

 private:
  int64_t applied_ = 0;
};

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_STATE_MACHINE_H_
