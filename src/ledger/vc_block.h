// vcBlock: the deterministic result of one view-change consensus instance.
//
// Mirrors Figure 3 of the paper:
//   header           — view number v, leader id, addresses of this and the
//                      previous vcBlock;
//   election         — conf_QC (confirming the leader failure, threshold
//                      f+1) and vc_QC (confirming leadership legitimacy,
//                      threshold 2f+1);
//   reputation       — rp[Id] and ci[Id] maps for every server.

#ifndef PRESTIGE_LEDGER_VC_BLOCK_H_
#define PRESTIGE_LEDGER_VC_BLOCK_H_

#include <map>

#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "types/codec.h"
#include "types/ids.h"

namespace prestige {
namespace ledger {

/// One view-change consensus result.
struct VcBlock {
  types::View v = 0;
  types::ReplicaId leader = 0;
  /// The view whose failure conf_qc confirms (v - 1 normally; lower when
  /// split-vote retries skipped views). Lets any server recompute the
  /// conf_qc digest.
  types::View confirmed_view = 0;
  crypto::Sha256Digest prev_hash{};  ///< Address of the previous vcBlock.

  crypto::QuorumCert conf_qc;  ///< f+1 confirmation of the leader failure.
  crypto::QuorumCert vc_qc;    ///< 2f+1 votes electing `leader`.

  std::map<types::ReplicaId, types::Penalty> rp;
  std::map<types::ReplicaId, types::CompensationIndex> ci;

  /// Penalty of `id`, defaulting to the paper's initial value 1.
  types::Penalty PenaltyOf(types::ReplicaId id) const {
    auto it = rp.find(id);
    return it == rp.end() ? 1 : it->second;
  }

  /// Compensation index of `id`, defaulting to the initial value 1.
  types::CompensationIndex CompensationOf(types::ReplicaId id) const {
    auto it = ci.find(id);
    return it == ci.end() ? 1 : it->second;
  }

  /// Address of this block: header + full reputation segment. QCs certify
  /// the block and are excluded from the address.
  crypto::Sha256Digest Digest() const {
    types::Encoder enc("vcblock");
    enc.PutI64(v).PutU32(leader).PutI64(confirmed_view).PutDigest(prev_hash);
    enc.PutU64(rp.size());
    for (const auto& [id, penalty] : rp) {
      enc.PutU32(id).PutI64(penalty);
    }
    enc.PutU64(ci.size());
    for (const auto& [id, index] : ci) {
      enc.PutU32(id).PutI64(index);
    }
    return enc.Digest();
  }
};

/// Digest signed by ReVC replies confirming the failure of view v's leader.
crypto::Sha256Digest ConfDigest(types::View v);

/// Digest signed by VoteCP votes electing `candidate` for view v_new.
crypto::Sha256Digest VoteDigest(types::View v_new,
                                types::ReplicaId candidate);

/// Digest signed by vcYes acknowledgements of a vcBlock.
crypto::Sha256Digest VcYesDigest(const crypto::Sha256Digest& vc_block_digest);

/// Digest signed by refresh supporters for server `id` at view v (§4.2.5).
crypto::Sha256Digest RefreshDigest(types::ReplicaId id, types::View v);

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_VC_BLOCK_H_
