// vcBlock: the deterministic result of one view-change consensus instance.
//
// Mirrors Figure 3 of the paper:
//   header           — view number v, leader id, addresses of this and the
//                      previous vcBlock;
//   election         — conf_QC (confirming the leader failure, threshold
//                      f+1) and vc_QC (confirming leadership legitimacy,
//                      threshold 2f+1);
//   reputation       — rp[Id] and ci[Id] maps for every server.

#ifndef PRESTIGE_LEDGER_VC_BLOCK_H_
#define PRESTIGE_LEDGER_VC_BLOCK_H_

#include <map>

#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "ledger/digest_cache.h"
#include "types/codec.h"
#include "types/ids.h"

namespace prestige {
namespace ledger {

/// One view-change consensus result.
///
/// Everything the address covers (header + reputation segment) is private
/// behind mutators so the memoized Digest() can never go stale. The QCs
/// certify the block, are excluded from the address, and stay public.
class VcBlock {
 public:
  crypto::QuorumCert conf_qc;  ///< f+1 confirmation of the leader failure.
  crypto::QuorumCert vc_qc;    ///< 2f+1 votes electing the leader.

  types::View v() const { return v_; }
  void set_v(types::View v) {
    v_ = v;
    cache_.Invalidate();
  }

  types::ReplicaId leader() const { return leader_; }
  void set_leader(types::ReplicaId leader) {
    leader_ = leader;
    cache_.Invalidate();
  }

  /// The view whose failure conf_qc confirms (v - 1 normally; lower when
  /// split-vote retries skipped views). Lets any server recompute the
  /// conf_qc digest.
  types::View confirmed_view() const { return confirmed_view_; }
  void set_confirmed_view(types::View v) {
    confirmed_view_ = v;
    cache_.Invalidate();
  }

  const crypto::Sha256Digest& prev_hash() const { return prev_hash_; }
  void set_prev_hash(const crypto::Sha256Digest& h) {
    prev_hash_ = h;
    cache_.Invalidate();
  }

  const std::map<types::ReplicaId, types::Penalty>& rp() const { return rp_; }
  const std::map<types::ReplicaId, types::CompensationIndex>& ci() const {
    return ci_;
  }
  void SetPenalty(types::ReplicaId id, types::Penalty penalty) {
    rp_[id] = penalty;
    cache_.Invalidate();
  }
  void SetCompensation(types::ReplicaId id, types::CompensationIndex index) {
    ci_[id] = index;
    cache_.Invalidate();
  }

  /// Penalty of `id`, defaulting to the paper's initial value 1.
  types::Penalty PenaltyOf(types::ReplicaId id) const {
    auto it = rp_.find(id);
    return it == rp_.end() ? 1 : it->second;
  }

  /// Compensation index of `id`, defaulting to the initial value 1.
  types::CompensationIndex CompensationOf(types::ReplicaId id) const {
    auto it = ci_.find(id);
    return it == ci_.end() ? 1 : it->second;
  }

  /// Address of this block: header + full reputation segment. Memoized;
  /// valid until the next mutation of a covered field.
  const crypto::Sha256Digest& Digest() const {
    return cache_.Get([this] {
      types::HashingEncoder enc("vcblock");
      enc.PutI64(v_).PutU32(leader_).PutI64(confirmed_view_).PutDigest(
          prev_hash_);
      enc.PutU64(rp_.size());
      for (const auto& [id, penalty] : rp_) {
        enc.PutU32(id).PutI64(penalty);
      }
      enc.PutU64(ci_.size());
      for (const auto& [id, index] : ci_) {
        enc.PutU32(id).PutI64(index);
      }
      return enc.Digest();
    });
  }

 private:
  types::View v_ = 0;
  types::ReplicaId leader_ = 0;
  types::View confirmed_view_ = 0;
  crypto::Sha256Digest prev_hash_{};  ///< Address of the previous vcBlock.
  std::map<types::ReplicaId, types::Penalty> rp_;
  std::map<types::ReplicaId, types::CompensationIndex> ci_;
  DigestCache cache_;
};

/// Digest signed by ReVC replies confirming the failure of view v's leader.
crypto::Sha256Digest ConfDigest(types::View v);

/// Digest signed by VoteCP votes electing `candidate` for view v_new.
crypto::Sha256Digest VoteDigest(types::View v_new,
                                types::ReplicaId candidate);

/// Digest signed by vcYes acknowledgements of a vcBlock.
crypto::Sha256Digest VcYesDigest(const crypto::Sha256Digest& vc_block_digest);

/// Digest signed by refresh supporters for server `id` at view v (§4.2.5).
crypto::Sha256Digest RefreshDigest(types::ReplicaId id, types::View v);

}  // namespace ledger
}  // namespace prestige

#endif  // PRESTIGE_LEDGER_VC_BLOCK_H_
