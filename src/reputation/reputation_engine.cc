#include "reputation/reputation_engine.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace prestige {
namespace reputation {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

util::Result<RpResult> ReputationEngine::CalcRp(
    types::View v_new, types::View v_cur, types::Penalty rp_cur,
    types::SeqNum ti, types::CompensationIndex ci,
    const std::vector<types::Penalty>& penalty_set) const {
  if (v_new <= v_cur) {
    return util::Status::InvalidArgument(
        "CalcRP requires v_new > v_cur (got " + std::to_string(v_new) +
        " <= " + std::to_string(v_cur) + ")");
  }
  if (penalty_set.empty()) {
    return util::Status::InvalidArgument("penalty set P must be non-empty");
  }

  RpResult result;

  // Step 1 — penalization (Eq. 1): the increase in rp is the increase in
  // view numbers, so view-skipping campaigners pay proportionally.
  result.rp_temp = rp_cur + (v_new - v_cur);

  // Step 2a — incremental log responsiveness (Eq. 2).
  const double ti_clamped = static_cast<double>(std::max<types::SeqNum>(ti, 1));
  double delta_tx =
      (ti_clamped - static_cast<double>(ci)) / ti_clamped;
  delta_tx = std::clamp(delta_tx, 0.0, 1.0);
  if (!config_.enable_delta_tx) delta_tx = 1.0;
  result.delta_tx = delta_tx;

  // Step 2b — leadership zealousness (Eq. 3): z-score of the current
  // penalty within the server's historic penalty set, squashed by Sigmoid.
  util::OnlineStats stats;
  for (types::Penalty p : penalty_set) {
    stats.Add(static_cast<double>(p));
  }
  const double sigma = stats.stddev();
  const double z =
      sigma > 0.0 ? (static_cast<double>(rp_cur) - stats.mean()) / sigma : 0.0;
  double delta_vc = 1.0 - Sigmoid(z);
  if (!config_.enable_delta_vc) delta_vc = 1.0;
  result.delta_vc = delta_vc;

  // Eq. 4 — the deduction is a fraction of the post-penalization penalty,
  // so 0 <= delta < rp_temp and rp can never be compensated below zero.
  result.delta = config_.c_delta * delta_tx * delta_vc *
                 static_cast<double>(result.rp_temp);
  result.new_rp = result.rp_temp -
                  static_cast<types::Penalty>(std::floor(result.delta));
  result.new_ci = std::max<types::SeqNum>(ti, 1);
  return result;
}

util::Result<RpResult> ReputationEngine::CalcRpFromStore(
    types::View v_new, const ledger::BlockStore& store,
    types::ReplicaId id) const {
  const ledger::VcBlock* current = store.LatestVcBlock();

  const types::View v_cur = store.CurrentView();
  const types::Penalty rp_cur =
      current != nullptr ? current->PenaltyOf(id) : config_.initial_rp;
  const types::CompensationIndex ci =
      current != nullptr ? current->CompensationOf(id) : config_.initial_ci;
  const types::SeqNum ti = std::max<types::SeqNum>(store.LatestTxSeq(), 1);

  // P: current penalty first (Algorithm 1 line 4), then the penalty stored
  // in every earlier vcBlock (lines 5-7). Before any view change the chain
  // is empty and P = {initial_rp}.
  std::vector<types::Penalty> penalty_set;
  penalty_set.push_back(rp_cur);
  if (current != nullptr) {
    const std::vector<types::Penalty> historic = store.HistoricPenalties(id);
    // HistoricPenalties walks newest-to-oldest including the current block;
    // skip the first entry (the current block, already seeded).
    penalty_set.insert(penalty_set.end(), historic.begin() + 1,
                       historic.end());
  }

  return CalcRp(v_new, v_cur, rp_cur, ti, ci, penalty_set);
}

}  // namespace reputation
}  // namespace prestige
