// The reputation engine (paper §3, Algorithm 1 "CalcRP").
//
// Converts a server's behaviour history into an integer reputation penalty:
//
//   Step 1 (penalization, Eq. 1):
//       rp_temp = rp(V) + (V' - V)
//   Step 2 (compensation, Eqs. 2-4):
//       delta_tx = (ti - ci) / ti                  — incremental log
//                                                    responsiveness
//       delta_vc = 1 - Sigmoid((rp(V) - mu_P)/sigma_P)
//                                                  — leadership zealousness
//       delta    = C_delta * delta_tx * delta_vc * rp_temp
//       rp(V')   = rp_temp - floor(delta),   ci' = ti
//
// where P is the server's penalty across the current vcBlock and every
// previous vcBlock (walked to genesis), mu_P / sigma_P are the mean and
// *population* standard deviation of P, ti is the server's latest committed
// txBlock sequence number, and ci the compensation index recorded in the
// current vcBlock. sigma_P = 0 maps to z = 0 (delta_vc = 0.5).
//
// The engine is a pure "consultant" (§3 Features): it never writes state;
// only an elected leader's (rp, ci) enter the next vcBlock (§4.2.4).
// All numeric examples from Fig. 4c and Appendix C are golden tests.

#ifndef PRESTIGE_REPUTATION_REPUTATION_ENGINE_H_
#define PRESTIGE_REPUTATION_REPUTATION_ENGINE_H_

#include <vector>

#include "ledger/block_store.h"
#include "types/ids.h"
#include "util/result.h"

namespace prestige {
namespace reputation {

/// Tunables of the reputation mechanism.
struct ReputationConfig {
  /// C_delta in Eq. 4: scales the compensation (paper uses 1).
  double c_delta = 1.0;
  /// Initial reputation penalty rp(1) (paper uses 1).
  types::Penalty initial_rp = 1;
  /// Initial compensation index (paper uses 1).
  types::CompensationIndex initial_ci = 1;
  /// Refresh threshold pi (§4.2.5): refresh is permitted once rp exceeds it.
  types::Penalty refresh_threshold = 8;
  /// Ablation switch: disable the leadership-zealousness term (delta_vc is
  /// then pinned to 1, making compensation depend on replication only).
  bool enable_delta_vc = true;
  /// Ablation switch: disable the log-responsiveness term (delta_tx pinned
  /// to 1).
  bool enable_delta_tx = true;
};

/// Full CalcRP outcome, including diagnostic intermediates.
struct RpResult {
  types::Penalty new_rp = 0;          ///< rp(V') of Eq. 4.
  types::CompensationIndex new_ci = 0;  ///< ci' = ti.
  types::Penalty rp_temp = 0;         ///< Eq. 1 intermediate.
  double delta_tx = 0.0;              ///< Eq. 2.
  double delta_vc = 0.0;              ///< Eq. 3.
  double delta = 0.0;                 ///< Eq. 4 deduction before flooring.
};

/// The reputation "consultant". Stateless between calls.
class ReputationEngine {
 public:
  explicit ReputationEngine(ReputationConfig config = {})
      : config_(config) {}

  /// Algorithm 1 on explicit inputs.
  ///
  /// `v_new` must exceed `v_cur`. `penalty_set` is P: the server's penalty
  /// in the current vcBlock followed by its penalties in all previous
  /// vcBlocks (any order — only mean/stddev are used). `ti` is clamped to a
  /// minimum of 1 (the paper's initial value).
  util::Result<RpResult> CalcRp(types::View v_new, types::View v_cur,
                                types::Penalty rp_cur, types::SeqNum ti,
                                types::CompensationIndex ci,
                                const std::vector<types::Penalty>&
                                    penalty_set) const;

  /// Algorithm 1 reading (vcBlock chain, latest txBlock) from `store` for
  /// server `id` — the form replicas and vote verifiers use (C4).
  util::Result<RpResult> CalcRpFromStore(types::View v_new,
                                         const ledger::BlockStore& store,
                                         types::ReplicaId id) const;

  /// Values installed by a penalty refresh (§4.2.5).
  types::Penalty initial_rp() const { return config_.initial_rp; }
  types::CompensationIndex initial_ci() const { return config_.initial_ci; }
  types::Penalty refresh_threshold() const {
    return config_.refresh_threshold;
  }

  const ReputationConfig& config() const { return config_; }

 private:
  ReputationConfig config_;
};

/// The logistic function used by Eq. 3.
double Sigmoid(double z);

}  // namespace reputation
}  // namespace prestige

#endif  // PRESTIGE_REPUTATION_REPUTATION_ENGINE_H_
