// PrestigeBFT protocol messages (replication §4.3, view change §4.2).
//
// WireSize() models the physical encoding: QCs are threshold signatures of
// constant size (the O(1) property of §4.1); batches carry their payload
// bytes; block-carrying messages ship headers, not payloads, unless they
// serve SyncUp.

#ifndef PRESTIGE_CORE_MESSAGES_H_
#define PRESTIGE_CORE_MESSAGES_H_

#include <vector>

#include "crypto/quorum_cert.h"
#include "ledger/tx_block.h"
#include "ledger/vc_block.h"
#include "runtime/message.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace prestige {
namespace core {

constexpr size_t kSigBytes = 64;   ///< One signature on the wire.
constexpr size_t kQcBytes = 80;    ///< One combined threshold signature.
constexpr size_t kHeaderBytes = 48;

/// Phase-1 proposal: ⟨Ord, ⟨Prop...⟩, n, V, σ⟩ — carries the batch body.
struct OrdMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Sha256Digest prev_hash{};
  std::vector<types::Transaction> txs;
  crypto::Signature sig;  ///< Leader signature over OrderingDigest.

  /// Stateless prologue results (PreVerify, threaded backend): the block
  /// body rebuilt and hashed off the loop thread, plus the signature
  /// verdict. Never serialized — not part of the wire format.
  struct Verified {
    ledger::TxBlock block;
    crypto::Sha256Digest block_digest{};
    crypto::Sha256Digest ord_digest{};
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    size_t payload = 0;
    for (const auto& tx : txs) payload += tx.WireBytes();
    return kHeaderBytes + payload + kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "Ord"; }
};

/// Follower reply to Ord: a partial signature over OrderingDigest.
struct OrdReplyMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Signature partial;

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "OrdReply"; }
};

/// Phase-2 message: ⟨Cmt, ordering_QC, V, σ⟩.
struct CmtMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Sha256Digest block_digest{};
  crypto::QuorumCert ordering_qc;
  crypto::Signature sig;

  /// Stateless prologue results: QC and leader-signature verdicts over the
  /// digests derived from this message's own (v, n, block_digest).
  struct Verified {
    crypto::Sha256Digest cmt_digest{};
    bool qc_ok = false;
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    return kHeaderBytes + kQcBytes + kSigBytes;
  }
  int NumSigVerifies() const override { return 2; }  // QC + leader sig.
  const char* Name() const override { return "Cmt"; }
};

/// Follower reply to Cmt: a partial signature over CommitDigest.
struct CmtReplyMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum n = 0;
  crypto::Signature partial;

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "CmtReply"; }
};

/// Final txBlock broadcast. Followers already hold the batch body from Ord,
/// so the wire carries header + QCs + status bits only.
struct TxBlockMsg : public runtime::NetMessage {
  ledger::TxBlock block;

  size_t WireSize() const override {
    return kHeaderBytes + 2 * kQcBytes + block.status.size() / 8 + 8;
  }
  int NumSigVerifies() const override { return 1; }  // commit_QC.
  const char* Name() const override { return "TxBlock"; }
};

/// Complaint relayed from a follower to the leader (§4.2.1 line 2).
struct ComptRelayMsg : public runtime::NetMessage {
  types::Transaction tx;
  crypto::Signature sig;

  /// Stateless prologue result: sig verified over tx.Digest().
  struct Verified {
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    return tx.WireBytes() + kHeaderBytes + kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "ComptRelay"; }
};

/// Why a view change is being confirmed.
enum class VcReason : uint8_t {
  kClientComplaint = 0,  ///< A relayed complaint went uncommitted.
  kTimeout = 1,          ///< Leader progress timeout expired.
  kPolicy = 2,           ///< Timing policy (r10/r30) fired.
};

/// Inspection broadcast: ⟨ConfVC, V, σ⟩ (§4.2.1 line 6).
struct ConfVcMsg : public runtime::NetMessage {
  types::View v = 0;
  VcReason reason = VcReason::kClientComplaint;
  types::Transaction tx;  ///< The complained tx (kClientComplaint only).
  crypto::Signature sig;

  /// Stateless prologue result: sig verified over ConfDigest(v).
  struct Verified {
    bool sig_ok = false;
  };

  size_t WireSize() const override {
    return kHeaderBytes + tx.WireBytes() + kSigBytes;
  }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "ConfVC"; }
};

/// Reply supporting a view change: partial over ConfDigest(v).
struct ReVcMsg : public runtime::NetMessage {
  types::View v = 0;
  crypto::Signature partial;

  /// Stateless prologue result: partial verified over ConfDigest(v) — the
  /// digest the inspection builder holds whenever the handler's
  /// (inspecting, v == view) guard passes.
  struct Verified {
    bool sig_ok = false;
  };

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "ReVC"; }
};

/// Campaign broadcast (Algorithm 2 line 43).
struct CampMsg : public runtime::NetMessage {
  crypto::QuorumCert conf_qc;  ///< f+1 confirmation of the old view's failure.
  types::View v = 0;           ///< View in which the failure was confirmed.
  types::View v_new = 0;       ///< View campaigned for.
  types::Penalty rp = 0;       ///< Claimed penalty (verified via C4).
  types::CompensationIndex ci = 0;
  uint64_t nonce = 0;          ///< PoW nonce nc.
  crypto::Sha256Digest hash_result{};  ///< Claimed hr.
  int claimed_difficulty_bits = 0;     ///< Difficulty the work was done at.
  ledger::TxBlock latest_tx_block;     ///< Candidate's newest txBlock (C3).
  types::SeqNum latest_n = 0;
  types::View latest_vc_view = 0;      ///< Candidate's vcBlock view.
  crypto::Signature sig;

  /// Stateless prologue results: campaign signature, conf_QC (C2), the
  /// candidate snapshot's digest, and the PoW check (C5) against that
  /// digest. The stateful criteria — C4's reputation recomputation and the
  /// snapshot-vs-own-chain comparison — stay on the loop thread; pow_ok is
  /// only meaningful once the epilogue confirms snapshot_digest matches
  /// this replica's chain at latest_n.
  struct Verified {
    crypto::Sha256Digest snapshot_digest{};
    bool sig_ok = false;
    bool conf_qc_ok = false;
    bool pow_ok = false;
  };

  size_t WireSize() const override {
    // conf_QC + header + nonce/hash + latest block header.
    return kQcBytes + kHeaderBytes + 40 + 2 * kHeaderBytes + kSigBytes;
  }
  int NumSigVerifies() const override { return 3; }  // sig + conf_QC + C5.
  const char* Name() const override { return "Camp"; }
};

/// Vote for a candidate: partial over VoteDigest(v_new, candidate).
struct VoteCpMsg : public runtime::NetMessage {
  types::View v_new = 0;
  types::ReplicaId candidate = 0;
  crypto::Signature partial;

  /// Stateless prologue result: partial verified over
  /// VoteDigest(v_new, candidate) — the candidate's builder digest
  /// whenever the handler's (v_new, candidate) guards pass.
  struct Verified {
    bool sig_ok = false;
  };

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "VoteCP"; }
};

/// New-leader vcBlock broadcast (§4.2.4).
struct VcBlockMsg : public runtime::NetMessage {
  ledger::VcBlock block;

  size_t WireSize() const override {
    return kHeaderBytes + 2 * kQcBytes + block.rp().size() * 24;
  }
  int NumSigVerifies() const override { return 2; }  // conf_QC + vc_QC.
  const char* Name() const override { return "VcBlockMsg"; }
};

/// Acknowledgement of a vcBlock: partial over VcYesDigest. Carries the
/// follower's chain height so a marginally-behind new leader can catch up
/// before proposing.
struct VcYesMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum latest_n = 0;
  crypto::Signature partial;

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "VcYes"; }
};

/// Refresh request: ⟨Ref, V, σ⟩ (§4.2.5).
struct RefMsg : public runtime::NetMessage {
  types::View v = 0;
  crypto::Signature sig;

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "Ref"; }
};

/// Support for a refresh: partial over RefreshDigest(target, v).
struct RefReplyMsg : public runtime::NetMessage {
  types::ReplicaId target = 0;
  types::View v = 0;
  crypto::Signature partial;

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "RefReply"; }
};

/// Refresh completion: ⟨Rdone, rs_QC, V, rp, ci, σ⟩.
struct RdoneMsg : public runtime::NetMessage {
  types::ReplicaId target = 0;
  types::View v = 0;
  crypto::QuorumCert rs_qc;
  crypto::Signature sig;

  size_t WireSize() const override {
    return kHeaderBytes + kQcBytes + kSigBytes;
  }
  int NumSigVerifies() const override { return 2; }
  const char* Name() const override { return "Rdone"; }
};

/// SyncUp request (§4.2.3): fetch blocks in (after, up_to].
struct SyncReqMsg : public runtime::NetMessage {
  enum class Kind : uint8_t { kTxBlocks, kVcBlocks } kind = Kind::kTxBlocks;
  int64_t after = 0;
  int64_t up_to = 0;

  size_t WireSize() const override { return kHeaderBytes; }
  const char* Name() const override { return "SyncReq"; }
};

/// SyncUp response: the requested block ranges (validated via their QCs).
struct SyncRespMsg : public runtime::NetMessage {
  std::vector<ledger::TxBlock> tx_blocks;
  std::vector<ledger::VcBlock> vc_blocks;

  size_t WireSize() const override {
    size_t total = kHeaderBytes;
    for (const auto& b : tx_blocks) {
      total += kHeaderBytes + 2 * kQcBytes;
      for (const auto& tx : b.txs()) total += tx.WireBytes();
    }
    total += vc_blocks.size() * (kHeaderBytes + 2 * kQcBytes + 64);
    return total;
  }
  int NumSigVerifies() const override {
    return static_cast<int>(tx_blocks.size() + vc_blocks.size());
  }
  const char* Name() const override { return "SyncResp"; }
};

/// Leader liveness beacon; resets follower progress timers when idle.
struct HeartbeatMsg : public runtime::NetMessage {
  types::View v = 0;
  types::SeqNum latest_n = 0;
  crypto::Signature sig;

  /// Stateless prologue result: sig verified over HeartbeatDigest(v, n).
  struct Verified {
    bool sig_ok = false;
  };

  size_t WireSize() const override { return kHeaderBytes + kSigBytes; }
  int NumSigVerifies() const override { return 1; }
  const char* Name() const override { return "Heartbeat"; }
};

/// Junk broadcast used by equivocating attackers (F3) to burn bandwidth.
struct NoiseMsg : public runtime::NetMessage {
  size_t bytes = 1024;
  size_t WireSize() const override { return bytes; }
  const char* Name() const override { return "Noise"; }
};

/// Digest a candidate signs over its campaign message.
inline crypto::Sha256Digest CampaignDigest(const CampMsg& camp) {
  types::HashingEncoder enc("camp");
  enc.PutI64(camp.v)
      .PutI64(camp.v_new)
      .PutI64(camp.rp)
      .PutI64(camp.ci)
      .PutU64(camp.nonce)
      .PutI64(camp.latest_n)
      .PutU8(static_cast<uint8_t>(camp.claimed_difficulty_bits));
  return enc.Digest();
}

/// Digest signed by heartbeats.
inline crypto::Sha256Digest HeartbeatDigest(types::View v, types::SeqNum n) {
  types::HashingEncoder enc("heartbeat");
  enc.PutI64(v).PutI64(n);
  return enc.Digest();
}

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_MESSAGES_H_
