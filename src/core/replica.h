// PrestigeReplica: one PrestigeBFT server.
//
// Implements the paper's full protocol stack:
//  * two-phase replication with batching and pipelining (§4.3);
//  * the active view-change protocol — failure detection via client
//    complaints / timeouts / timing policies, redeemer PoW, candidate
//    campaigns with voting criteria C1-C5, vcBlock consensus, SyncUp
//    (§4.2, Algorithm 2);
//  * the reputation engine hookup (§3) and penalty refresh (§4.2.5).
//
// Fault injection for the evaluation's attack suite (F1-F4, S1/S2) is
// driven by a types::FaultSpec and implemented at clearly marked
// decision points; honest replicas take none of those branches.
//
// Implementation is split across replica.cc (dispatch, sync, shared
// helpers), replication.cc (§4.3), and view_change.cc (§4.2).

#ifndef PRESTIGE_CORE_REPLICA_H_
#define PRESTIGE_CORE_REPLICA_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/commit_delivery.h"
#include "core/config.h"
#include "core/messages.h"
#include "core/metrics.h"
#include "crypto/keys.h"
#include "crypto/pow.h"
#include "ledger/block_store.h"
#include "reputation/reputation_engine.h"
#include "runtime/env.h"
#include "types/adversary.h"
#include "types/client_messages.h"
#include "types/ids.h"
#include "types/fault_spec.h"

namespace prestige {
namespace core {

/// Server state per Figure 5.
enum class Role { kFollower, kRedeemer, kCandidate, kLeader };

const char* RoleName(Role role);

/// One PrestigeBFT server as a simulation actor.
class PrestigeReplica : public runtime::Node {
 public:
  PrestigeReplica(PrestigeConfig config, types::ReplicaId replica_id,
                  const crypto::KeyStore* keys,
                  types::FaultSpec fault = types::FaultSpec::Honest());
  ~PrestigeReplica() override;

  /// Wires actor ids: `replicas[i]` is replica i's actor id; `clients` are
  /// the client-pool actors to notify on commit.
  void SetTopology(std::vector<runtime::NodeId> replicas,
                   std::vector<runtime::NodeId> clients);

  /// Replaces the application service (defaults to app::NullService).
  void SetService(std::unique_ptr<app::Service> service);

  /// Installs an active-adversary policy (harness wiring only; nullptr =
  /// honest, the default). The replica consults it at its propose / reply
  /// / vote / execute sites; see types/adversary.h.
  void SetAdversary(const types::AdversaryPolicy* adversary) {
    adversary_ = adversary;
  }

  // runtime::Node interface.
  void OnStart() override;
  void OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) override;
  void OnTimer(uint64_t tag) override;
  /// Split verification for the threaded backend's worker pool: performs
  /// the stateless prologue (digests, HMAC/QC checks, PoW) off the loop
  /// thread for the hot message types and returns an epilogue that reruns
  /// the handler with the precomputed verdicts. See pre_verify.cc.
  runtime::Node::VerdictFn PreVerify(runtime::NodeId from,
                                     const runtime::MessagePtr& msg) override;

  // Observability.
  Role role() const { return role_; }
  types::View view() const { return view_; }
  types::ReplicaId replica_id() const { return id_; }
  types::ReplicaId current_leader() const { return leader_; }
  bool IsLeader() const { return role_ == Role::kLeader; }
  const ledger::BlockStore& store() const { return store_; }
  const app::Service& service() const { return delivery_.service(); }
  /// The commit-delivery pipeline (service + client session table).
  const CommitPipeline& delivery() const { return delivery_; }
  const ReplicaMetrics& metrics() const { return metrics_; }
  const types::FaultSpec& fault() const { return fault_; }
  /// Effective current penalty of `id` (vcBlock value + refresh overlay).
  types::Penalty EffectiveRp(types::ReplicaId id) const;
  types::CompensationIndex EffectiveCi(types::ReplicaId id) const;

  // Introspection for tests and debugging.
  bool replication_enabled() const { return replication_enabled_; }
  size_t pending_pool_size() const { return pending_txs_.size(); }
  size_t inflight_instances() const { return instances_.size(); }
  size_t pending_block_count() const { return pending_blocks_.size(); }
  types::View voted_view() const { return voted_view_; }
  /// Complaint-table sizes (regression tests pin that the probe table
  /// tracks the complaint table and never leaks entries).
  size_t complaint_count() const { return complaints_.size(); }
  size_t complaint_probe_count() const { return complaint_probe_keys_.size(); }
  std::vector<types::SeqNum> BoundSeqs() const {
    std::vector<types::SeqNum> out;
    for (const auto& [n, d] : commit_bound_) {
      (void)d;
      out.push_back(n);
    }
    return out;
  }
  std::vector<types::SeqNum> InflightSeqs() const {
    std::vector<types::SeqNum> out;
    for (const auto& [n, inst] : instances_) {
      (void)inst;
      out.push_back(n);
    }
    return out;
  }
  struct InstanceDebug {
    types::SeqNum n;
    bool ordered;
    uint32_t ord_count;
    uint32_t cmt_count;
  };
  std::vector<InstanceDebug> DebugInstances() const {
    std::vector<InstanceDebug> out;
    for (const auto& [n, inst] : instances_) {
      out.push_back(InstanceDebug{n, inst.ordered, inst.ord_builder.Count(),
                                  inst.cmt_builder.Count()});
    }
    return out;
  }

 private:
  // ------------------------------------------------------------ plumbing

  /// Leader-side state of one in-flight replication instance.
  struct Instance {
    ledger::TxBlock block;
    crypto::QuorumCertBuilder ord_builder;
    crypto::QuorumCertBuilder cmt_builder;
    bool ordered = false;  ///< ordering_QC complete, Cmt broadcast.
    bool done = false;     ///< commit_QC complete.
    /// Last Ord/Cmt broadcast for this instance (stalled-instance
    /// retransmits refresh it, giving a per-instance rebroadcast interval).
    util::TimeMicros last_broadcast_at = 0;
  };

  /// Follower-side record of a block body received via Ord.
  struct PendingBlock {
    ledger::TxBlock block;
    bool commit_signed = false;
  };

  /// A client complaint this replica relayed and is watching (§4.2.1).
  struct ComplaintState {
    types::Transaction tx;
    runtime::TimerId timer = 0;
    uint64_t probe = 0;      ///< complaint_probe_keys_ entry for the timer.
    bool escalated = false;  ///< Complaint wait expired; inspection begun.
  };

  enum TimerKind : uint64_t {
    kProgressTimeout = 1,
    kBatchTimer = 2,
    kElectionTimeout = 3,
    kPowDone = 4,
    kRotationDue = 5,
    kHeartbeat = 6,
    kComplaintWait = 7,
    kInspectionTimeout = 8,
    kNoiseTimer = 9,
    kAttackProbe = 10,
    kElectionRetry = 11,
  };
  // Tag packing shared with the baselines and runtime layer
  // (util/timer_tag.h): 16-bit kind, 48-bit payload.
  static uint64_t Tag(TimerKind kind, uint64_t payload = 0) {
    return util::PackTimerTag(kind, payload);
  }
  static TimerKind TagKind(uint64_t tag) {
    return util::TimerTagKind<TimerKind>(tag);
  }
  static uint64_t TagPayload(uint64_t tag) {
    return util::TimerTagPayload(tag);
  }

  static uint64_t TxKey(const types::Transaction& tx);

  runtime::NodeId ActorOf(types::ReplicaId id) const { return replicas_[id]; }
  std::vector<runtime::NodeId> PeerActors() const;  ///< All replicas but self.

  /// Send gated by fault behaviour (quiet servers drop all output).
  void GuardedSend(runtime::NodeId to, runtime::MessagePtr msg);
  void GuardedSend(const std::vector<runtime::NodeId>& to, runtime::MessagePtr msg);

  /// Signs `digest`, corrupting the MAC when equivocating (F3).
  crypto::Signature SignMaybeCorrupt(const crypto::Sha256Digest& digest);

  bool QuietActive() const;
  bool EquivocateActive() const;
  bool ByzantineActive() const;
  /// The OnMessage/OnTimer crash gate; PreVerify epilogues re-check it at
  /// delivery time (the fault may activate between prologue and epilogue).
  bool CrashedNow() const;

  // Active-adversary queries (all false/0 when no policy is installed).
  bool AdversaryWedged() const {
    return adversary_ != nullptr && adversary_->WedgeProposals(id_, Now());
  }
  bool AdversaryWithholds(types::ReplicaId target) const {
    return adversary_ != nullptr &&
           adversary_->WithholdVote(id_, target, Now());
  }
  bool AdversaryTampers() const {
    return adversary_ != nullptr && adversary_->TamperExecution(id_, Now());
  }
  /// Replica index of actor `node`, or id_ when it is not a replica.
  types::ReplicaId ReplicaIndexOf(runtime::NodeId node) const {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i] == node) return static_cast<types::ReplicaId>(i);
    }
    return id_;
  }

  // ------------------------------------------------------- replication
  void OnClientBatch(runtime::NodeId from, const types::ClientBatch& batch);
  void EnqueueTx(const types::Transaction& tx);
  void MaybePropose(bool allow_partial = false);
  void Propose(std::vector<types::Transaction> batch);
  /// Broadcasts an Ord to all peers; with an equivocating adversary
  /// installed, follower groups receive conflicting signed variants.
  void BroadcastOrd(const std::shared_ptr<OrdMsg>& ord);
  /// Handlers with a `pre` parameter accept precomputed stateless verify
  /// results from PreVerify (threaded backend); pre == nullptr (simulator
  /// and workers=0 path) computes everything inline, byte-identically.
  void OnOrd(runtime::NodeId from, const OrdMsg& ord,
             OrdMsg::Verified* pre = nullptr);
  void OnOrdReply(runtime::NodeId from, const OrdReplyMsg& reply);
  void OnCmt(runtime::NodeId from, const CmtMsg& cmt,
             const CmtMsg::Verified* pre = nullptr);
  void OnCmtReply(runtime::NodeId from, const CmtReplyMsg& reply);
  void OnTxBlockMsg(runtime::NodeId from, const TxBlockMsg& msg);
  void OnHeartbeat(runtime::NodeId from, const HeartbeatMsg& hb,
                   const HeartbeatMsg::Verified* pre = nullptr);
  /// Appends + applies a committed block, notifies clients, unblocks
  /// buffered successors.
  void CommitBlock(ledger::TxBlock block);
  void DrainBufferedBlocks();
  /// Routes per-pool ClientReply messages to their client-pool nodes.
  void SendReplies(
      const std::vector<std::shared_ptr<types::ClientReply>>& replies);
  void ResetProgress();
  void ArmProgressTimer();
  util::DurationMicros SampleTimeout();
  void StartLeading();
  void StopReplicationActivity();
  /// Re-broadcasts Ord / Cmt for in-flight instances whose quorum stalled
  /// (lost replies on lossy links); piggybacks on the heartbeat tick.
  void RetransmitStalledInstances();

  // ------------------------------------------------------- view change
  void OnClientComplaint(runtime::NodeId from,
                         const types::ClientComplaint& compt);
  void OnComptRelay(runtime::NodeId from, const ComptRelayMsg& msg,
                    const ComptRelayMsg::Verified* pre = nullptr);
  /// Arms a complaint-wait timer for the complaint keyed by `key`, filling
  /// `state`'s timer/probe fields. Timer tags carry only 48 payload bits,
  /// so the 64-bit key is mapped through a small probe-id table instead of
  /// being truncated into the tag.
  void ArmComplaintTimer(uint64_t key, ComplaintState& state);
  void HandleComplaintTimer(uint64_t probe);
  /// Erases one complaint and everything attached to it: its pending
  /// timer and its complaint_probe_keys_ entry. Every resolution path
  /// (commit, timer verdict, view install) funnels through here so the
  /// probe table can never outlive its complaints.
  void ResolveComplaint(std::unordered_map<uint64_t, ComplaintState>::iterator
                            it);
  void ResolveAllComplaints();
  void StartInspection(VcReason reason, const types::Transaction* tx);
  void OnConfVc(runtime::NodeId from, const ConfVcMsg& msg,
                const ConfVcMsg::Verified* pre = nullptr);
  void OnReVc(runtime::NodeId from, const ReVcMsg& msg,
              const ReVcMsg::Verified* pre = nullptr);
  void BecomeRedeemer(crypto::QuorumCert conf_qc, types::View confirmed_view,
                      types::View v_new);
  void OnPowSolved();
  void BecomeCandidate();
  /// Abandons any campaign and resumes normal follower operation.
  void ReturnToFollower();
  void OnCamp(runtime::NodeId from, const CampMsg& camp,
              const CampMsg::Verified* pre = nullptr);
  bool VerifyCampaign(runtime::NodeId from, const CampMsg& camp,
                      const CampMsg::Verified* pre = nullptr);
  void OnVoteCp(runtime::NodeId from, const VoteCpMsg& vote,
                const VoteCpMsg::Verified* pre = nullptr);
  void BecomeLeaderOfView();
  void OnVcBlockMsg(runtime::NodeId from, const VcBlockMsg& msg);
  void OnVcYes(runtime::NodeId from, const VcYesMsg& msg);
  void InstallVcBlock(const ledger::VcBlock& block, bool as_leader);
  void AbortCampaignActivities();
  void OnRotationDue();
  bool ShouldCampaign(types::View v_new);  ///< F4 S1/S2 strategy gate.

  // ----------------------------------------------------------- refresh
  void MaybeRequestRefresh();
  void OnRef(runtime::NodeId from, const RefMsg& msg);
  void OnRefReply(runtime::NodeId from, const RefReplyMsg& msg);
  void OnRdone(runtime::NodeId from, const RdoneMsg& msg);

  // ------------------------------------------------------------- sync
  void RequestSync(runtime::NodeId from, SyncReqMsg::Kind kind, int64_t after,
                   int64_t up_to);
  void OnSyncReq(runtime::NodeId from, const SyncReqMsg& msg);
  void OnSyncResp(runtime::NodeId from, const SyncRespMsg& msg);
  util::Status ValidateAndAppendTxBlock(const ledger::TxBlock& block);
  util::Status ValidateAndAppendVcBlock(const ledger::VcBlock& block);
  void ReplayStashedCampaigns();

  // ------------------------------------------------------------ members
  PrestigeConfig config_;
  types::ReplicaId id_;
  const crypto::KeyStore* keys_;
  crypto::Signer signer_;
  types::FaultSpec fault_;
  /// Active-adversary interposer (nullptr = honest; harness-owned).
  const types::AdversaryPolicy* adversary_ = nullptr;
  /// F4 attacker emulation: the latest client complaint received while
  /// leading, kept as evidence for contesting its own deposition
  /// (kAttackProbe) — the same evidence honest followers hold, minus
  /// their complaint_wait patience.
  types::Transaction attack_complaint_tx_;
  bool has_attack_complaint_ = false;

  std::vector<runtime::NodeId> replicas_;
  std::vector<runtime::NodeId> clients_;

  ledger::BlockStore store_;
  reputation::ReputationEngine engine_;
  CommitPipeline delivery_;
  crypto::RealPowSolver real_solver_;
  crypto::ModeledPowSolver modeled_solver_;

  Role role_ = Role::kFollower;
  util::Rng timeout_rng_{0};  ///< Timeout stream (mimicked under F1).
  crypto::Sha256Digest last_proposed_digest_{};
  types::View view_ = 1;
  types::ReplicaId leader_ = 0;
  util::TimeMicros view_entered_at_ = 0;
  bool replication_enabled_ = false;  ///< Leader: vcYes quorum reached.

  // Refresh overlay: effective (rp, ci) replacing the stored vcBlock values
  // until the next vcBlock folds them in (§4.2.5; see DESIGN.md).
  std::map<types::ReplicaId,
           std::pair<types::Penalty, types::CompensationIndex>>
      refresh_overlay_;

  // Request pool (all replicas buffer; only the leader proposes).
  std::deque<types::Transaction> pending_txs_;
  std::unordered_set<uint64_t> pending_keys_;  ///< Keys in pending_txs_.
  std::map<types::SeqNum, Instance> instances_;
  std::map<types::SeqNum, ledger::TxBlock> ready_blocks_;  ///< Out-of-order.
  types::SeqNum next_seq_ = 1;
  runtime::TimerId batch_timer_ = 0;
  runtime::TimerId heartbeat_timer_ = 0;
  /// The batch-wait deadline expired while the pipeline was full: propose
  /// the partial batch as soon as a slot frees instead of waiting for
  /// another full batch_wait.
  bool partial_due_ = false;

  // Follower replication state.
  std::map<types::SeqNum, PendingBlock> pending_blocks_;
  std::map<types::SeqNum, ledger::TxBlock> buffered_commits_;
  std::unordered_set<uint64_t> committed_tx_keys_;
  /// Cross-view ordering binding: once this replica ordering-signs a block
  /// at sequence n, it never ordering- or commit-signs a different block at
  /// n. Since an ordering_QC needs 2f+1 signers, at most one body can ever
  /// be certified per sequence number — the invariant behind Theorem 3's
  /// intersection argument. Entries clear when n commits.
  std::map<types::SeqNum, crypto::Sha256Digest> commit_bound_;
  /// Keys of transactions inside in-flight leader instances (prevents a
  /// re-proposed body's transactions from being batched a second time).
  std::unordered_set<uint64_t> inflight_tx_keys_;
  /// Block bodies a newly elected leader re-proposes first (its in-flight
  /// suffix from the previous view; preserves possibly-committed blocks).
  std::vector<ledger::TxBlock> repropose_;

  // Progress / timeout state.
  runtime::TimerId progress_timer_ = 0;
  bool progress_stale_ = false;
  runtime::TimerId rotation_timer_ = 0;

  // Complaint tracking.
  std::unordered_map<uint64_t, ComplaintState> complaints_;
  /// Probe-id -> complaint key for pending complaint-wait timers (keys are
  /// 64-bit; timer tags only carry 48 payload bits).
  std::unordered_map<uint64_t, uint64_t> complaint_probe_keys_;
  uint64_t next_complaint_probe_ = 1;

  // Inspection (ConfVC/ReVC collection).
  bool inspecting_ = false;
  VcReason inspection_reason_ = VcReason::kClientComplaint;
  crypto::QuorumCertBuilder revc_builder_;
  runtime::TimerId inspection_timer_ = 0;

  // Campaign state.
  types::View voted_view_ = 1;  ///< Highest view voted in (introspection).
  /// C1: at most one vote per view number. Entries at or below the
  /// installed view are pruned on view entry.
  std::map<types::View, types::ReplicaId> votes_by_view_;
  types::View campaign_view_ = 0;        ///< v_new being campaigned for.
  types::View confirmed_view_ = 0;       ///< View whose failure was confirmed.
  crypto::QuorumCert campaign_conf_qc_;
  types::Penalty campaign_rp_ = 0;
  types::CompensationIndex campaign_ci_ = 0;
  crypto::PowSolution campaign_solution_;
  int campaign_difficulty_bits_ = 0;
  /// Chain snapshot taken when the campaign began (redeemer entry): CalcRP,
  /// the PoW payload, and the Camp message all use this one consistent ti.
  types::SeqNum campaign_latest_n_ = 0;
  crypto::Sha256Digest campaign_payload_{};
  util::TimeMicros redeem_started_at_ = 0;
  util::DurationMicros campaign_solve_time_ = 0;
  crypto::QuorumCertBuilder vote_builder_;
  runtime::TimerId election_timer_ = 0;
  runtime::TimerId pow_timer_ = 0;
  int consecutive_election_timeouts_ = 0;
  int consecutive_pow_abandons_ = 0;
  /// Until this time, suppress starting our own inspection: we recently
  /// endorsed someone else's view change (ReVC) or voted for a candidate,
  /// so a campaign is already under way. Randomized, so concurrent
  /// candidacies (split votes) stay rare — the role the paper assigns to
  /// randomized timers (§4.2.3).
  util::TimeMicros standdown_until_ = 0;

  // Leader vcBlock acknowledgement state.
  std::optional<ledger::VcBlock> announced_vc_block_;
  crypto::QuorumCertBuilder vcyes_builder_;
  /// Catch-up before leading: highest chain height reported via vcYes and
  /// who reported it.
  types::SeqNum catchup_target_ = 0;
  runtime::NodeId catchup_source_ = 0;
  bool awaiting_catchup_ = false;

  // Refresh state.
  crypto::QuorumCertBuilder refresh_builder_;
  bool refresh_pending_ = false;

  // Sync state.
  /// Sync back-off: no new request of that kind until the deadline passes.
  /// A deadline (rather than a latch) keeps a lost SyncReq / SyncResp from
  /// suppressing catch-up forever on lossy links.
  util::TimeMicros tx_sync_backoff_until_ = 0;
  util::TimeMicros vc_sync_backoff_until_ = 0;
  std::vector<std::pair<runtime::NodeId, CampMsg>> stashed_camps_;
  std::vector<std::pair<runtime::NodeId, ledger::VcBlock>> stashed_vc_blocks_;

  // Equivocation guard: digests this replica signed per (view, seq).
  std::map<std::pair<types::View, types::SeqNum>, crypto::Sha256Digest>
      signed_ord_;

  ReplicaMetrics metrics_;
};

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_REPLICA_H_
