// The active view-change protocol (§4.2, Algorithm 2):
//   failure detection (client complaints, timeouts, timing policies),
//   inspection (ConfVC / ReVC -> conf_QC with threshold f+1),
//   redeemer (reputation-determined proof of work),
//   candidate (campaign + voting criteria C1-C5, vc_QC with 2f+1),
//   leader (vcBlock consensus with vcYes acknowledgements).

#include <cassert>

#include "core/replica.h"
#include "util/logging.h"

namespace prestige {
namespace core {

// ------------------------------------------------------ failure detection

void PrestigeReplica::OnClientComplaint(runtime::NodeId from,
                                        const types::ClientComplaint& compt) {
  (void)from;
  ++metrics_.complaints_received;
  const uint64_t key = TxKey(compt.tx);
  if (committed_tx_keys_.count(key) > 0) {
    // Already committed; the client likely missed the replies. Re-serve
    // the cached execution result from the session table.
    if (compt.tx.pool < clients_.size()) {
      GuardedSend(clients_[compt.tx.pool],
                  delivery_.ReplyFor(compt.tx, view_));
    }
    return;
  }
  auto existing = complaints_.find(key);
  if (existing != complaints_.end()) {
    // Re-complaint: if the previous escalation fizzled, watch again.
    if (existing->second.escalated) {
      existing->second.escalated = false;
      ArmComplaintTimer(key, existing->second);
    }
    return;
  }

  // Relay the proposal to the leader (Algorithm 2 line 2) and watch for the
  // commit (line 4).
  if (role_ == Role::kLeader) {
    // Attacker emulation: an F4 leader stashes the complaint as evidence
    // for contesting its own deposition (kAttackProbe cites it).
    if (fault_.type == types::FaultType::kRepeatedVc &&
        Now() >= fault_.start_at) {
      attack_complaint_tx_ = compt.tx;
      has_attack_complaint_ = true;
    }
    EnqueueTx(compt.tx);
    MaybePropose(/*allow_partial=*/true);
    return;
  }
  auto relay = std::make_shared<ComptRelayMsg>();
  relay->tx = compt.tx;
  relay->sig = SignMaybeCorrupt(compt.tx.Digest());
  GuardedSend(ActorOf(leader_), relay);

  ComplaintState state;
  state.tx = compt.tx;
  ArmComplaintTimer(key, state);
  complaints_.emplace(key, std::move(state));
}

void PrestigeReplica::ArmComplaintTimer(uint64_t key, ComplaintState& state) {
  // The 64-bit complaint key cannot ride in the 48-bit tag payload without
  // truncation (which would make HandleComplaintTimer miss every lookup and
  // silently disable complaint-driven view changes); route it through a
  // sequential probe id instead. The probe is recorded in the state so the
  // table entry can be reclaimed when the complaint is erased before its
  // timer fires.
  const uint64_t probe = next_complaint_probe_++;
  complaint_probe_keys_[probe] = key;
  state.probe = probe;
  state.timer = SetTimer(config_.complaint_wait, Tag(kComplaintWait, probe));
}

void PrestigeReplica::OnComptRelay(runtime::NodeId from, const ComptRelayMsg& msg,
                                   const ComptRelayMsg::Verified* pre) {
  (void)from;
  if (role_ != Role::kLeader) return;
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(msg.sig, msg.tx.Digest());
  if (!sig_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  EnqueueTx(msg.tx);
  MaybePropose(/*allow_partial=*/true);
}

void PrestigeReplica::ResolveComplaint(
    std::unordered_map<uint64_t, ComplaintState>::iterator it) {
  // The probe entry must die with the complaint whether the timer already
  // fired (stale ids cancel/erase as no-ops) or is still pending —
  // otherwise churning complaints leak probe-table entries.
  CancelTimer(it->second.timer);
  complaint_probe_keys_.erase(it->second.probe);
  complaints_.erase(it);
}

void PrestigeReplica::ResolveAllComplaints() {
  for (auto& [key, state] : complaints_) {
    (void)key;
    if (state.timer != 0) CancelTimer(state.timer);
  }
  complaints_.clear();
  complaint_probe_keys_.clear();
}

void PrestigeReplica::HandleComplaintTimer(uint64_t probe) {
  auto probe_it = complaint_probe_keys_.find(probe);
  if (probe_it == complaint_probe_keys_.end()) return;
  const uint64_t key = probe_it->second;
  complaint_probe_keys_.erase(probe_it);
  auto it = complaints_.find(key);
  if (it == complaints_.end()) return;  // Committed in the meantime.
  it->second.escalated = true;  // Entry kept: peers' ConfVCs need it.
  const types::Transaction tx = it->second.tx;
  if (committed_tx_keys_.count(key) > 0) {
    ResolveComplaint(it);
    return;  // Leader was correct.
  }
  // The leader failed to commit the complained tx in time: inspect
  // (Algorithm 2 line 6).
  StartInspection(VcReason::kClientComplaint, &tx);
}

void PrestigeReplica::StartInspection(VcReason reason,
                                      const types::Transaction* tx) {
  // Honest servers inspect only as followers. An F4 attacker additionally
  // inspects as a quiet leader to contest its own deposition.
  const bool byzantine_leader_probe =
      role_ == Role::kLeader &&
      fault_.type == types::FaultType::kRepeatedVc &&
      Now() >= fault_.start_at;
  if (role_ != Role::kFollower && !byzantine_leader_probe) return;
  if (inspecting_) return;  // One inspection at a time.
  // Someone else's view change is in flight; let it finish first (honest
  // servers only — attackers race on purpose and pay for it).
  if (config_.enable_standdown && !fault_.IsByzantine() &&
      Now() < standdown_until_) {
    return;
  }
  inspecting_ = true;
  inspection_reason_ = reason;

  const crypto::Sha256Digest conf_digest = ledger::ConfDigest(view_);
  revc_builder_ = crypto::QuorumCertBuilder(conf_digest, config_.confirm());
  revc_builder_.Add(signer_.Sign(conf_digest), conf_digest);

  auto conf = std::make_shared<ConfVcMsg>();
  conf->v = view_;
  conf->reason = reason;
  if (tx != nullptr) conf->tx = *tx;
  conf->sig = SignMaybeCorrupt(conf_digest);
  GuardedSend(PeerActors(), conf);

  if (inspection_timer_ != 0) CancelTimer(inspection_timer_);
  inspection_timer_ =
      SetTimer(config_.complaint_wait, Tag(kInspectionTimeout));
}

void PrestigeReplica::OnConfVc(runtime::NodeId from, const ConfVcMsg& msg,
                               const ConfVcMsg::Verified* pre) {
  if (msg.v != view_) return;
  if (role_ == Role::kLeader) return;  // A leader never endorses its removal.
  const bool sig_ok = pre != nullptr
                          ? pre->sig_ok
                          : keys_->Verify(msg.sig, ledger::ConfDigest(msg.v));
  if (!sig_ok) {
    ++metrics_.invalid_messages;
    return;
  }

  bool support = false;
  switch (msg.reason) {
    case VcReason::kClientComplaint: {
      // Support only if we saw the same complaint and it is still pending
      // (Algorithm 2 line 12-13), or it timed out on us already.
      const uint64_t key = TxKey(msg.tx);
      support = complaints_.count(key) > 0 &&
                committed_tx_keys_.count(key) == 0;
      break;
    }
    case VcReason::kTimeout:
      support = progress_stale_;
      break;
    case VcReason::kPolicy:
      support = config_.rotation_period > 0 &&
                Now() - view_entered_at_ >= config_.rotation_period * 9 / 10;
      break;
  }
  // Fault injection: colluding F4 attackers endorse any view change.
  if (fault_.type == types::FaultType::kRepeatedVc &&
      Now() >= fault_.start_at) {
    support = true;
  }
  if (!support) return;

  auto reply = std::make_shared<ReVcMsg>();
  reply->v = msg.v;
  reply->partial = SignMaybeCorrupt(ledger::ConfDigest(msg.v));
  GuardedSend(from, reply);

  // We endorsed this view change; stand down our own campaign plans long
  // enough for the initiator's election to complete.
  standdown_until_ = std::max(
      standdown_until_,
      Now() + rng()->NextInRange(util::Millis(300), util::Millis(900)));
}

void PrestigeReplica::OnReVc(runtime::NodeId from, const ReVcMsg& msg,
                             const ReVcMsg::Verified* pre) {
  (void)from;
  if (!inspecting_ || msg.v != view_) return;
  // While inspecting_, revc_builder_.digest() == ConfDigest(view_) ==
  // ConfDigest(msg.v) (built in StartInspection over view_, and msg.v ==
  // view_ here), so the prologue's stateless verdict is exactly this check.
  const crypto::Sha256Digest& conf_digest = revc_builder_.digest();
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(msg.partial, conf_digest);
  if (!sig_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  revc_builder_.Add(msg.partial, conf_digest);
  if (!revc_builder_.Complete()) return;

  // f+1 confirmations (including ourselves): the view change is necessary.
  inspecting_ = false;
  if (inspection_timer_ != 0) {
    CancelTimer(inspection_timer_);
    inspection_timer_ = 0;
  }
  BecomeRedeemer(revc_builder_.Build(), view_, view_ + 1);
}

// ---------------------------------------------------------------- redeemer

bool PrestigeReplica::ShouldCampaign(types::View v_new) {
  if (fault_.type != types::FaultType::kRepeatedVc ||
      Now() < fault_.start_at) {
    return true;
  }
  if (fault_.strategy == types::AttackStrategy::kS1) return true;
  // S2: attack only when the reputation engine would grant compensation
  // keeping rp from growing (§6.2 Availability).
  auto result = engine_.CalcRp(v_new, view_, EffectiveRp(id_),
                               std::max<types::SeqNum>(store_.LatestTxSeq(), 1),
                               EffectiveCi(id_), [&] {
                                 std::vector<types::Penalty> p;
                                 p.push_back(EffectiveRp(id_));
                                 auto h = store_.HistoricPenalties(id_);
                                 if (!h.empty()) {
                                   p.insert(p.end(), h.begin() + 1, h.end());
                                 }
                                 return p;
                               }());
  return result.ok() && result->new_rp <= EffectiveRp(id_);
}

void PrestigeReplica::ReturnToFollower() {
  role_ = Role::kFollower;
  consecutive_election_timeouts_ = 0;
  AbortCampaignActivities();
  ArmProgressTimer();
}

void PrestigeReplica::BecomeRedeemer(crypto::QuorumCert conf_qc,
                                     types::View confirmed_view,
                                     types::View v_new) {
  // C1 discipline: never campaign for a view number our vote is already
  // spent in — self-voting there would be a double vote. Advance to the
  // nearest free view (paying Eq. 1's view-skip penalty for it).
  while (votes_by_view_.count(v_new) > 0) {
    ++v_new;
  }
  if (!ShouldCampaign(v_new)) {
    ReturnToFollower();
    return;
  }
  role_ = Role::kRedeemer;
  ++metrics_.view_changes_started;
  StopReplicationActivity();
  if (progress_timer_ != 0) {
    CancelTimer(progress_timer_);
    progress_timer_ = 0;
  }

  campaign_conf_qc_ = std::move(conf_qc);
  confirmed_view_ = confirmed_view;
  campaign_view_ = v_new;
  redeem_started_at_ = Now();
  // One consistent chain snapshot for CalcRP, the puzzle payload, and the
  // campaign message (blocks may keep committing while we work).
  campaign_latest_n_ = store_.LatestTxSeq();
  campaign_payload_ = store_.LatestTxDigest();

  // Consult the reputation engine (Algorithm 2 line 33). The effective
  // (rp, ci) include any penalty refresh overlay.
  std::vector<types::Penalty> penalty_set;
  penalty_set.push_back(EffectiveRp(id_));
  {
    auto historic = store_.HistoricPenalties(id_);
    if (!historic.empty()) {
      penalty_set.insert(penalty_set.end(), historic.begin() + 1,
                         historic.end());
    }
  }
  auto result = engine_.CalcRp(
      v_new, view_, EffectiveRp(id_),
      std::max<types::SeqNum>(campaign_latest_n_, 1), EffectiveCi(id_),
      penalty_set);
  if (!result.ok()) {
    ReturnToFollower();
    return;
  }
  campaign_rp_ = result->new_rp;
  campaign_ci_ = result->new_ci;
  campaign_difficulty_bits_ = config_.pow.DifficultyBits(campaign_rp_);

  // Perform the reputation-determined work (hash puzzle, §4.2.2).
  const crypto::Sha256Digest payload = campaign_payload_;
  if (config_.pow_mode == PowMode::kReal) {
    util::Rng pow_rng = rng()->Fork();
    auto solution = real_solver_.Solve(payload, campaign_difficulty_bits_,
                                       &pow_rng, 1ull << 26);
    if (!solution.ok()) {
      // Puzzle beyond our means (cf. Lemma 3: computation bound gamma).
      ReturnToFollower();
      return;
    }
    campaign_solution_ = *solution;
    const double seconds = static_cast<double>(solution->iterations) /
                           (config_.pow.hashes_per_second *
                            std::max(1.0, fault_.collusion_speedup));
    campaign_solve_time_ = std::max<util::DurationMicros>(
        1, static_cast<util::DurationMicros>(seconds * 1e6));
  } else {
    campaign_solution_ = crypto::PowSolution{};
    campaign_solution_.hash = payload;  // Token checked via C4's rp.
    util::DurationMicros solve =
        modeled_solver_.SampleSolveMicros(campaign_difficulty_bits_, rng());
    if (fault_.collusion_speedup > 1.0) {
      solve = std::max<util::DurationMicros>(
          1, static_cast<util::DurationMicros>(
                 static_cast<double>(solve) / fault_.collusion_speedup));
    }
    campaign_solve_time_ = solve;
  }
  // Honest servers bound the work they will spend on one campaign: a
  // healthy cluster offers another (cheaper) chance at view_+1 later, and
  // doubling patience per abandon keeps liveness when a VC is mandatory.
  if (!fault_.IsByzantine()) {
    util::DurationMicros patience = config_.redeemer_patience;
    for (int i = 0; i < consecutive_pow_abandons_ && i < 16; ++i) {
      patience *= 2;
    }
    if (campaign_solve_time_ > patience) {
      ++consecutive_pow_abandons_;
      ReturnToFollower();
      return;
    }
  }
  if (pow_timer_ != 0) CancelTimer(pow_timer_);
  // Honest redeemers add a small randomized pause before campaigning (part
  // of the §4.2.1 randomization); attackers race at full speed — and win,
  // until their penalty makes the puzzle slower than everyone's pause.
  const util::DurationMicros courtesy =
      (fault_.IsByzantine() || !config_.enable_courtesy)
          ? 0
          : rng()->NextInRange(0, util::Millis(100));
  pow_timer_ = SetTimer(courtesy + campaign_solve_time_, Tag(kPowDone));
}

void PrestigeReplica::OnPowSolved() {
  if (role_ != Role::kRedeemer) return;
  metrics_.vc_costs.push_back(VcCostSample{Now(), campaign_view_,
                                           campaign_rp_,
                                           campaign_solve_time_});
  BecomeCandidate();
}

// --------------------------------------------------------------- candidate

void PrestigeReplica::BecomeCandidate() {
  // While redeeming we may have voted for another candidate at our target
  // view; self-voting there now would double-vote (C1). Yield.
  if (votes_by_view_.count(campaign_view_) > 0) {
    ReturnToFollower();
    return;
  }
  role_ = Role::kCandidate;
  ++metrics_.campaigns_sent;

  const crypto::Sha256Digest vote_digest =
      ledger::VoteDigest(campaign_view_, id_);
  vote_builder_ = crypto::QuorumCertBuilder(vote_digest, config_.quorum());
  vote_builder_.Add(signer_.Sign(vote_digest), vote_digest);
  votes_by_view_[campaign_view_] = id_;  // C1: our vote goes to ourselves.
  voted_view_ = std::max(voted_view_, campaign_view_);

  auto camp = std::make_shared<CampMsg>();
  camp->conf_qc = campaign_conf_qc_;
  camp->v = confirmed_view_;
  camp->v_new = campaign_view_;
  camp->rp = campaign_rp_;
  camp->ci = campaign_ci_;
  camp->nonce = campaign_solution_.nonce;
  camp->hash_result = campaign_solution_.hash;
  camp->claimed_difficulty_bits = campaign_difficulty_bits_;
  if (const ledger::TxBlock* snap = store_.TxBlockAt(campaign_latest_n_)) {
    camp->latest_tx_block = *snap;
  }
  camp->latest_n = campaign_latest_n_;
  camp->latest_vc_view = view_;
  camp->sig = SignMaybeCorrupt(CampaignDigest(*camp));
  GuardedSend(PeerActors(), camp);

  if (election_timer_ != 0) CancelTimer(election_timer_);
  election_timer_ = SetTimer(config_.election_timeout, Tag(kElectionTimeout));
}

bool PrestigeReplica::VerifyCampaign(runtime::NodeId from, const CampMsg& camp,
                                     const CampMsg::Verified* pre) {
  // Signature of the candidate.
  const types::ReplicaId candidate = camp.sig.signer;
  if (candidate >= config_.n || ActorOf(candidate) != from) return false;
  const bool sig_ok = pre != nullptr
                          ? pre->sig_ok
                          : keys_->Verify(camp.sig, CampaignDigest(camp));
  if (!sig_ok) return false;

  // C2: the view change was confirmed by f+1 servers.
  const bool conf_qc_ok =
      pre != nullptr
          ? pre->conf_qc_ok
          : crypto::VerifyQuorumCert(*keys_, camp.conf_qc,
                                     ledger::ConfDigest(camp.v),
                                     config_.confirm())
                .ok();
  if (!conf_qc_ok) return false;

  // C4: recompute the candidate's rp and ci with the same scheme. Per
  // Algorithm 2 line 21, ti is the candidate's txBlock.n — under a live
  // leader our own tip may already be ahead by a few blocks.
  std::vector<types::Penalty> penalty_set;
  penalty_set.push_back(EffectiveRp(candidate));
  {
    auto historic = store_.HistoricPenalties(candidate);
    if (!historic.empty()) {
      penalty_set.insert(penalty_set.end(), historic.begin() + 1,
                         historic.end());
    }
  }
  auto result = engine_.CalcRp(
      camp.v_new, view_, EffectiveRp(candidate),
      std::max<types::SeqNum>(camp.latest_n, 1),
      EffectiveCi(candidate), penalty_set);
  if (!result.ok()) return false;
  if (result->new_ci != camp.ci) return false;
  if (result->new_rp != camp.rp) return false;

  // C5: the performed computation matches the penalty. One hash — O(1).
  // The puzzle payload is the candidate's snapshot txBlock; verify the
  // snapshot is genuine (it must match our chain at that height).
  const int required_bits = config_.pow.DifficultyBits(camp.rp);
  if (camp.claimed_difficulty_bits != required_bits) return false;
  crypto::Sha256Digest payload{};
  if (camp.latest_n > 0) {
    const ledger::TxBlock* mine = store_.TxBlockAt(camp.latest_n);
    if (mine == nullptr) return false;
    payload = mine->Digest();
    // The prologue hashed the message's own snapshot; that verdict only
    // transfers once the snapshot is proven identical to our chain's block.
    const crypto::Sha256Digest claimed =
        pre != nullptr ? pre->snapshot_digest : camp.latest_tx_block.Digest();
    if (camp.latest_tx_block.n() != camp.latest_n || claimed != payload) {
      return false;
    }
  }
  if (config_.pow_mode == PowMode::kReal) {
    // pre->pow_ok was computed over pre->snapshot_digest with the claimed
    // bits; both are pinned to payload / required_bits by the checks above.
    const bool pow_ok =
        pre != nullptr
            ? pre->pow_ok
            : crypto::PowVerify(payload, camp.nonce, required_bits);
    if (!pow_ok) return false;
  }
  // In modeled mode the redeemer's work was expressed in virtual time; the
  // solution token is accepted once C4 pins the difficulty (DESIGN.md §4).
  return true;
}

void PrestigeReplica::OnCamp(runtime::NodeId from, const CampMsg& camp,
                             const CampMsg::Verified* pre) {
  if (camp.v_new <= view_) return;  // Stale campaign (line 16).
  if (votes_by_view_.count(camp.v_new) > 0) {
    return;  // C1: vote once per view number.
  }

  // Sync up view changes if the candidate is operating in a higher view
  // (lines 19-20).
  if (camp.v > view_) {
    stashed_camps_.emplace_back(from, camp);
    RequestSync(from, SyncReqMsg::Kind::kVcBlocks, store_.CurrentView(),
                camp.v);
    return;
  }

  // C3: the candidate's replication must be at least as up-to-date as ours
  // (lines 21-24), modulo the configured slack for blocks that committed
  // while the campaign was in flight (the winner catches up before it
  // starts proposing).
  if (camp.latest_n + config_.c3_slack_blocks < store_.LatestTxSeq()) return;
  if (camp.latest_n > store_.LatestTxSeq()) {
    stashed_camps_.emplace_back(from, camp);
    RequestSync(from, SyncReqMsg::Kind::kTxBlocks, store_.LatestTxSeq(),
                camp.latest_n);
    return;
  }

  if (!VerifyCampaign(from, camp, pre)) {
    ++metrics_.invalid_messages;
    return;
  }

  // Vote withholding: starve the candidate of our campaign vote. The C1
  // book-keeping is deliberately skipped too — the attacker keeps its
  // vote free for a colluder campaigning at the same view number.
  if (AdversaryWithholds(camp.sig.signer)) return;

  // All criteria hold: vote, and stand down our own plans — this candidate
  // is likely to win.
  votes_by_view_[camp.v_new] = camp.sig.signer;
  voted_view_ = std::max(voted_view_, camp.v_new);
  standdown_until_ = std::max(
      standdown_until_,
      Now() + rng()->NextInRange(util::Millis(300), util::Millis(900)));
  ++metrics_.votes_cast;
  auto vote = std::make_shared<VoteCpMsg>();
  vote->v_new = camp.v_new;
  vote->candidate = camp.sig.signer;
  vote->partial =
      SignMaybeCorrupt(ledger::VoteDigest(camp.v_new, camp.sig.signer));
  GuardedSend(from, vote);
}

void PrestigeReplica::OnVoteCp(runtime::NodeId from, const VoteCpMsg& vote,
                               const VoteCpMsg::Verified* pre) {
  (void)from;
  if (role_ != Role::kCandidate || vote.v_new != campaign_view_ ||
      vote.candidate != id_) {
    return;
  }
  // While campaigning, vote_builder_.digest() == VoteDigest(campaign_view_,
  // id_) == VoteDigest(vote.v_new, vote.candidate) under the guards above,
  // so the prologue's stateless verdict matches this check exactly.
  const crypto::Sha256Digest& digest = vote_builder_.digest();
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(vote.partial, digest);
  if (!sig_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  vote_builder_.Add(vote.partial, digest);
  if (vote_builder_.Complete()) {
    BecomeLeaderOfView();
  }
}

// ------------------------------------------------------------------ leader

void PrestigeReplica::BecomeLeaderOfView() {
  if (election_timer_ != 0) {
    CancelTimer(election_timer_);
    election_timer_ = 0;
  }
  ++metrics_.elections_won;
  catchup_target_ = store_.LatestTxSeq();
  awaiting_catchup_ = false;

  // Prepare the new vcBlock (§4.2.4): inherit the previous reputation
  // segment (with refresh overlay folded in) and update only our own entry.
  ledger::VcBlock block;
  block.set_v(campaign_view_);
  block.set_leader(id_);
  block.set_confirmed_view(confirmed_view_);
  block.set_prev_hash(store_.LatestVcBlock()->Digest());
  block.conf_qc = campaign_conf_qc_;
  block.vc_qc = vote_builder_.Build();
  for (types::ReplicaId r = 0; r < config_.n; ++r) {
    block.SetPenalty(r, EffectiveRp(r));
    block.SetCompensation(r, EffectiveCi(r));
  }
  block.SetPenalty(id_, campaign_rp_);
  block.SetCompensation(id_, campaign_ci_);

  const crypto::Sha256Digest yes_digest =
      ledger::VcYesDigest(block.Digest());
  vcyes_builder_ = crypto::QuorumCertBuilder(yes_digest, config_.quorum());
  vcyes_builder_.Add(signer_.Sign(yes_digest), yes_digest);
  announced_vc_block_ = block;

  auto msg = std::make_shared<VcBlockMsg>();
  msg->block = block;
  GuardedSend(PeerActors(), msg);

  util::Status st = store_.AppendVcBlock(block);
  assert(st.ok());
  (void)st;
  InstallVcBlock(block, /*as_leader=*/true);
}

void PrestigeReplica::OnVcBlockMsg(runtime::NodeId from, const VcBlockMsg& msg) {
  const ledger::VcBlock& block = msg.block;
  if (block.v() <= store_.CurrentView()) return;  // Old news.

  const bool extends_tip =
      store_.LatestVcBlock() == nullptr ||
      block.prev_hash() == store_.LatestVcBlock()->Digest();

  if (extends_tip) {
    // Normal path: validate QCs and the reputation segment — the only
    // change from our current segment may be the new leader's rp and ci
    // (§4.2.4).
    for (types::ReplicaId r = 0; r < config_.n; ++r) {
      if (r == block.leader()) continue;
      if (block.rp().count(r) == 0 || block.ci().count(r) == 0 ||
          block.rp().at(r) != EffectiveRp(r) ||
          block.ci().at(r) != EffectiveCi(r)) {
        ++metrics_.invalid_messages;
        return;
      }
    }
    ledger::VcBlock copy = block;
    if (!ValidateAndAppendVcBlock(copy).ok()) {
      ++metrics_.invalid_messages;
      return;
    }
  } else {
    // Concurrent elections at different views can fork the vcBlock chain;
    // a certified higher-view block extending a recent ancestor wins and
    // the conflicting tail unwinds. (The 2f+1 vc_QC carries the honest
    // majority's endorsement; the per-entry segment check is meaningful
    // only against the block's own parent.)
    if (!crypto::VerifyQuorumCert(*keys_, block.conf_qc,
                                  ledger::ConfDigest(block.confirmed_view()),
                                  config_.confirm())
             .ok() ||
        !crypto::VerifyQuorumCert(*keys_, block.vc_qc,
                                  ledger::VoteDigest(block.v(), block.leader()),
                                  config_.quorum())
             .ok()) {
      ++metrics_.invalid_messages;
      return;
    }
    if (!store_.AppendVcBlockResolvingFork(block).ok()) {
      // Not a shallow fork: we are missing history; fetch and retry.
      stashed_vc_blocks_.emplace_back(from, block);
      RequestSync(from, SyncReqMsg::Kind::kVcBlocks, store_.CurrentView(),
                  block.v());
      return;
    }
  }

  auto yes = std::make_shared<VcYesMsg>();
  yes->v = block.v();
  yes->latest_n = store_.LatestTxSeq();
  yes->partial = SignMaybeCorrupt(ledger::VcYesDigest(block.Digest()));
  GuardedSend(from, yes);

  InstallVcBlock(block, /*as_leader=*/false);
}

void PrestigeReplica::OnVcYes(runtime::NodeId from, const VcYesMsg& msg) {
  if (!announced_vc_block_.has_value() || msg.v != view_ ||
      role_ != Role::kLeader) {
    return;
  }
  const crypto::Sha256Digest& digest = vcyes_builder_.digest();
  if (!keys_->Verify(msg.partial, digest)) {
    ++metrics_.invalid_messages;
    return;
  }
  if (msg.latest_n > catchup_target_) {
    catchup_target_ = msg.latest_n;
    catchup_source_ = from;
  }
  vcyes_builder_.Add(msg.partial, digest);
  if (!vcyes_builder_.Complete()) return;

  // VC consensus complete. If blocks committed while the election ran
  // (C3 slack), fetch them first; normal operation then resumes under our
  // leadership.
  announced_vc_block_.reset();
  consecutive_election_timeouts_ = 0;
  if (catchup_target_ > store_.LatestTxSeq()) {
    awaiting_catchup_ = true;
    RequestSync(catchup_source_, SyncReqMsg::Kind::kTxBlocks,
                store_.LatestTxSeq(), catchup_target_);
    return;
  }
  StartLeading();
}

void PrestigeReplica::InstallVcBlock(const ledger::VcBlock& block,
                                     bool as_leader) {
  view_ = block.v();
  leader_ = block.leader();
  view_entered_at_ = Now();
  voted_view_ = std::max(voted_view_, block.v());
  votes_by_view_.erase(votes_by_view_.begin(),
                       votes_by_view_.upper_bound(block.v()));
  consecutive_election_timeouts_ = 0;
  consecutive_pow_abandons_ = 0;
  refresh_overlay_.clear();
  refresh_pending_ = false;

  AbortCampaignActivities();
  inspecting_ = false;
  if (inspection_timer_ != 0) {
    CancelTimer(inspection_timer_);
    inspection_timer_ = 0;
  }
  progress_stale_ = false;
  signed_ord_.clear();
  if (as_leader) {
    // Preserve the contiguous in-flight suffix for re-proposal: any block
    // that might have gathered a commit_QC in an earlier view is among
    // these bodies (we ordering-signed it, so we held on to it).
    repropose_.clear();
    types::SeqNum expect = store_.LatestTxSeq() + 1;
    for (auto& [n, pending] : pending_blocks_) {
      if (n < expect) continue;  // Already committed; pruned below.
      if (n != expect) break;
      repropose_.push_back(std::move(pending.block));
      ++expect;
    }
    pending_blocks_.clear();
  } else {
    // Keep uncommitted bodies we ordering-signed. commit_bound_ persists
    // across views (Theorem 3), so the cluster can only ever certify
    // those exact bodies at their sequence numbers — and the leader that
    // eventually re-proposes them may be several views away (e.g. after
    // an intermediate quiet leader). Discarding them here used to
    // livelock the cluster: every later leader composed a fresh body at
    // the bound sequence, which 2f+1 bound followers refused, forever.
    // Only the committed prefix is pruned.
    pending_blocks_.erase(pending_blocks_.begin(),
                          pending_blocks_.upper_bound(store_.LatestTxSeq()));
  }
  // Complaints targeted the old leader; clients re-complain if the new
  // leader also stalls. (Fired timers for erased keys are no-ops.)
  ResolveAllComplaints();

  metrics_.rp_history.push_back(
      RpSample{Now(), view_, block.PenaltyOf(id_)});

  if (as_leader) {
    role_ = Role::kLeader;
    replication_enabled_ = false;  // Awaits 2f+1 vcYes (§4.2.4).
    ++metrics_.views_led;
    metrics_.last_led_at = Now();
  } else {
    role_ = Role::kFollower;
    StopReplicationActivity();
    ArmProgressTimer();
  }

  if (config_.rotation_period > 0) {
    if (rotation_timer_ != 0) CancelTimer(rotation_timer_);
    const util::DurationMicros jitter =
        rng()->NextInRange(0, util::Millis(300));
    rotation_timer_ =
        SetTimer(config_.rotation_period + jitter, Tag(kRotationDue));
  }
  MaybeRequestRefresh();
}

void PrestigeReplica::AbortCampaignActivities() {
  if (pow_timer_ != 0) {
    CancelTimer(pow_timer_);
    pow_timer_ = 0;
  }
  if (election_timer_ != 0) {
    CancelTimer(election_timer_);
    election_timer_ = 0;
  }
  campaign_view_ = 0;
}

void PrestigeReplica::OnRotationDue() {
  // Timing policy (§4.2.1): the view has served its term; rotate.
  if (role_ == Role::kFollower) {
    StartInspection(VcReason::kPolicy, nullptr);
  }
  if (config_.rotation_period > 0) {
    const util::DurationMicros jitter =
        rng()->NextInRange(0, util::Millis(300));
    rotation_timer_ =
        SetTimer(config_.rotation_period + jitter, Tag(kRotationDue));
  }
}

}  // namespace core
}  // namespace prestige
