// PrestigeReplica::PreVerify — the stateless message prologues that the
// threaded backend's OrderedRunner executes on worker threads (see
// runtime/ordered_runner.h). Each prologue may touch only immutable state:
// the message itself, keys_ (KeyStore::Verify is const and thread-safe),
// and config_. Everything view- or ledger-dependent stays in the handler,
// which runs as the epilogue on the node's loop thread, strictly in
// receive order.
//
// Splitting discipline per message type:
//   * Ord / Cmt / Heartbeat / ComptRelay / ConfVc — expected digest derives
//     purely from message fields, so signature (and Cmt's ordering_QC)
//     verification moves wholesale to the prologue.
//   * ReVc / VoteCp — the handler checks against a QuorumCertBuilder
//     digest, but its guards pin that digest to a message-derived value
//     (ConfDigest(msg.v) resp. VoteDigest(v_new, candidate)), so the
//     stateless verdict is exact whenever the handler would consume it.
//   * Camp — signature, C2 conf_QC, the snapshot-block hash, and the C5
//     PoW hash move off-loop; C4 (reputation recomputation against our
//     store) and the snapshot-vs-own-chain comparison stay in the handler,
//     which re-anchors the prologue verdicts before trusting them.
//   * TxBlock / SyncResp — no split, but the prologue pre-warms the
//     DigestCache (concurrency-safe publish) so the loop-thread hashing
//     the handler performs becomes a cache hit.
//   * Reply types (OrdReply, CmtReply, VcYes) are verified against live
//     builder state, so they are declined entirely: the whole handler
//     runs as the epilogue.
//
// Every epilogue re-checks CrashedNow(): a kCrash fault may activate in
// the window between prologue and epilogue, and a crashed replica must
// process nothing.

#include <memory>

#include "core/replica.h"

namespace prestige {
namespace core {

runtime::Node::VerdictFn PrestigeReplica::PreVerify(
    runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (auto m = std::dynamic_pointer_cast<const OrdMsg>(msg)) {
    auto pre = std::make_shared<OrdMsg::Verified>();
    pre->block.v = m->v;
    pre->block.set_n(m->n);
    pre->block.set_prev_hash(m->prev_hash);
    pre->block.set_txs(m->txs);
    pre->block.status.assign(pre->block.BatchSize(), 1);
    pre->block_digest = pre->block.Digest();
    pre->ord_digest = ledger::OrderingDigest(m->v, m->n, pre->block_digest);
    pre->sig_ok = keys_->Verify(m->sig, pre->ord_digest);
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnOrd(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const CmtMsg>(msg)) {
    auto pre = std::make_shared<CmtMsg::Verified>();
    const crypto::Sha256Digest ord_digest =
        ledger::OrderingDigest(m->v, m->n, m->block_digest);
    pre->qc_ok = crypto::VerifyQuorumCert(*keys_, m->ordering_qc, ord_digest,
                                          config_.quorum())
                     .ok();
    pre->cmt_digest = ledger::CommitDigest(m->v, m->n, m->block_digest);
    pre->sig_ok = keys_->Verify(m->sig, pre->cmt_digest);
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnCmt(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const HeartbeatMsg>(msg)) {
    auto pre = std::make_shared<HeartbeatMsg::Verified>();
    pre->sig_ok = keys_->Verify(m->sig, HeartbeatDigest(m->v, m->latest_n));
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnHeartbeat(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const ComptRelayMsg>(msg)) {
    auto pre = std::make_shared<ComptRelayMsg::Verified>();
    pre->sig_ok = keys_->Verify(m->sig, m->tx.Digest());
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnComptRelay(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const ConfVcMsg>(msg)) {
    auto pre = std::make_shared<ConfVcMsg::Verified>();
    pre->sig_ok = keys_->Verify(m->sig, ledger::ConfDigest(m->v));
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnConfVc(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const ReVcMsg>(msg)) {
    auto pre = std::make_shared<ReVcMsg::Verified>();
    pre->sig_ok = keys_->Verify(m->partial, ledger::ConfDigest(m->v));
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnReVc(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const CampMsg>(msg)) {
    auto pre = std::make_shared<CampMsg::Verified>();
    pre->sig_ok = keys_->Verify(m->sig, CampaignDigest(*m));
    pre->conf_qc_ok = crypto::VerifyQuorumCert(*keys_, m->conf_qc,
                                               ledger::ConfDigest(m->v),
                                               config_.confirm())
                          .ok();
    pre->snapshot_digest = m->latest_tx_block.Digest();
    if (config_.pow_mode == PowMode::kReal) {
      // Same payload rule as VerifyCampaign: the snapshot block's digest,
      // or the zero digest for an empty chain. The handler only consumes
      // pow_ok after proving snapshot_digest equals its own chain's block
      // at latest_n and the claimed bits equal the required bits.
      const crypto::Sha256Digest payload =
          m->latest_n > 0 ? pre->snapshot_digest : crypto::Sha256Digest{};
      const int required_bits = config_.pow.DifficultyBits(m->rp);
      pre->pow_ok = crypto::PowVerify(payload, m->nonce, required_bits);
    }
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnCamp(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const VoteCpMsg>(msg)) {
    auto pre = std::make_shared<VoteCpMsg::Verified>();
    pre->sig_ok = keys_->Verify(
        m->partial, ledger::VoteDigest(m->v_new, m->candidate));
    return [this, from, m, pre]() {
      if (CrashedNow()) return;
      OnVoteCp(from, *m, pre.get());
    };
  }
  if (auto m = std::dynamic_pointer_cast<const TxBlockMsg>(msg)) {
    // No verdict to precompute, but hashing the block here publishes its
    // digest into the (concurrency-safe) DigestCache, so the handler's own
    // Digest() calls on the loop thread are cache hits.
    (void)m->block.Digest();
    return nullptr;
  }
  if (auto m = std::dynamic_pointer_cast<const SyncRespMsg>(msg)) {
    for (const ledger::TxBlock& b : m->tx_blocks) (void)b.Digest();
    return nullptr;
  }
  (void)from;
  return nullptr;  // Decline: the full handler runs as the epilogue.
}

}  // namespace core
}  // namespace prestige
