// CommitPipeline: the one commit-delivery path shared by PrestigeBFT and
// both baselines.
//
// Every protocol funnels each committed TxBlock through Deliver(), which
//   1. executes every *fresh* transaction exactly once via app::Service
//      (ClientSessionTable suppresses retransmitted / complaint-resubmitted
//      duplicates and re-serves their cached replies),
//   2. fires the service's block hook (and checkpoint hook + reply-cache
//      eviction every checkpoint_interval blocks),
//   3. returns the per-pool types::ClientReply messages — status + opaque
//      result + result digest per request — for the replica to send.
//
// Because the pipeline is driven only by the committed chain, its state
// (session table, execution counts, service state digest) is a
// deterministic function of the chain — the property the cross-replica
// execution invariant (harness/invariants.h) checks.

#ifndef PRESTIGE_CORE_COMMIT_DELIVERY_H_
#define PRESTIGE_CORE_COMMIT_DELIVERY_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "app/service.h"
#include "core/client_session.h"
#include "ledger/tx_block.h"
#include "types/client_messages.h"

namespace prestige {
namespace core {

class CommitPipeline {
 public:
  struct Stats {
    int64_t executed = 0;               ///< Exactly-once service executions.
    int64_t duplicates_suppressed = 0;  ///< Dedup hits answered from cache.
    int64_t blocks_delivered = 0;
    int64_t checkpoints = 0;
  };

  explicit CommitPipeline(types::ReplicaId replica_id,
                          types::SeqNum checkpoint_interval = 32,
                          types::SeqNum reply_retain_blocks = 64)
      : replica_id_(replica_id),
        checkpoint_interval_(checkpoint_interval < 1 ? 1
                                                     : checkpoint_interval),
        reply_retain_blocks_(reply_retain_blocks),
        service_(std::make_unique<app::NullService>()) {}

  void SetService(std::unique_ptr<app::Service> service) {
    service_ = std::move(service);
  }

  app::Service& service() { return *service_; }
  const app::Service& service() const { return *service_; }
  const ClientSessionTable& sessions() const { return sessions_; }
  const Stats& stats() const { return stats_; }

  /// Executes `block` through the service with exactly-once dedup and
  /// returns one ClientReply per client pool present in the block.
  std::vector<std::shared_ptr<types::ClientReply>> Deliver(
      const ledger::TxBlock& block) {
    std::map<types::ClientPoolId, std::shared_ptr<types::ClientReply>>
        by_pool;
    for (const types::Transaction& tx : block.txs()) {
      types::ReplyEntry entry = ExecuteOrReplay(tx, block.n());
      std::shared_ptr<types::ClientReply>& reply = by_pool[tx.pool];
      if (reply == nullptr) {
        reply = std::make_shared<types::ClientReply>();
        reply->replica = replica_id_;
        reply->v = block.v;
        reply->n = block.n();
        reply->pool = tx.pool;
      }
      reply->entries.push_back(std::move(entry));
    }
    service_->OnBlockCommitted(block.n(), block.v);
    ++stats_.blocks_delivered;
    if (block.n() % checkpoint_interval_ == 0) {
      service_->OnCheckpoint(block.n());
      sessions_.EvictUpTo(block.n() - reply_retain_blocks_);
      ++stats_.checkpoints;
    }

    std::vector<std::shared_ptr<types::ClientReply>> replies;
    replies.reserve(by_pool.size());
    for (auto& [pool, reply] : by_pool) {
      (void)pool;
      replies.push_back(std::move(reply));
    }
    return replies;
  }

  /// Reply for a single already-committed request (complaint path: the
  /// client missed the original replies). Served from the cache; evicted
  /// results come back as kStaleDup — deterministically on every replica,
  /// so the client's digest quorum still forms.
  std::shared_ptr<types::ClientReply> ReplyFor(const types::Transaction& tx,
                                               types::View v) {
    auto reply = std::make_shared<types::ClientReply>();
    reply->replica = replica_id_;
    reply->v = v;
    reply->pool = tx.pool;
    const ClientSessionTable::CachedReply* cached =
        sessions_.Lookup(tx.pool, tx.client_seq);
    if (cached != nullptr) reply->n = cached->height;
    reply->entries.push_back(ReplayEntry(tx.client_seq, cached));
    return reply;
  }

  /// True when (pool, seq) already executed here (the dedup question).
  bool Executed(types::ClientPoolId pool, uint64_t seq) const {
    return sessions_.IsDuplicate(pool, seq);
  }

 private:
  /// The one construction of a duplicate's ReplyEntry — from the cached
  /// response, or the deterministic kStaleDup shape once evicted. Both
  /// the block-delivery and complaint paths must produce byte-identical
  /// entries (clients quorum-match on the digest), so they share this.
  static types::ReplyEntry ReplayEntry(
      uint64_t client_seq, const ClientSessionTable::CachedReply* cached) {
    types::ReplyEntry entry;
    entry.client_seq = client_seq;
    entry.duplicate = true;
    if (cached != nullptr) {
      entry.status = static_cast<uint8_t>(cached->response.status);
      entry.result = cached->response.result;
      entry.result_digest = app::ResultDigest(cached->response);
    } else {
      app::Response stale;
      stale.status = app::ExecStatus::kStaleDup;
      entry.status = static_cast<uint8_t>(stale.status);
      entry.result_digest = app::ResultDigest(stale);
    }
    return entry;
  }

  types::ReplyEntry ExecuteOrReplay(const types::Transaction& tx,
                                    types::SeqNum height) {
    if (sessions_.IsDuplicate(tx.pool, tx.client_seq)) {
      ++stats_.duplicates_suppressed;
      return ReplayEntry(tx.client_seq,
                         sessions_.Lookup(tx.pool, tx.client_seq));
    }
    types::ReplyEntry entry;
    entry.client_seq = tx.client_seq;
    app::Response response = service_->Execute(tx);
    ++stats_.executed;
    entry.status = static_cast<uint8_t>(response.status);
    entry.result_digest = app::ResultDigest(response);
    entry.result = response.result;
    sessions_.Record(tx.pool, tx.client_seq, std::move(response), height);
    return entry;
  }

  types::ReplicaId replica_id_;
  types::SeqNum checkpoint_interval_;
  types::SeqNum reply_retain_blocks_;
  std::unique_ptr<app::Service> service_;
  ClientSessionTable sessions_;
  Stats stats_;
};

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_COMMIT_DELIVERY_H_
