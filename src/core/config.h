// Configuration of a PrestigeBFT replica / cluster.

#ifndef PRESTIGE_CORE_CONFIG_H_
#define PRESTIGE_CORE_CONFIG_H_

#include <cstdint>

#include "crypto/pow.h"
#include "reputation/reputation_engine.h"
#include "types/ids.h"
#include "util/time.h"

namespace prestige {
namespace core {

/// How redeemers perform the reputation-determined work.
enum class PowMode {
  /// Actually search nonces with SHA-256 (tests, examples, tiny penalties).
  kReal,
  /// Sample the solve duration from Geom(2^-bits) in virtual time
  /// (simulation default; see DESIGN.md §4).
  kModeled,
};

/// Cluster-wide protocol parameters (identical on every replica).
struct PrestigeConfig {
  /// Cluster size n = 3f + 1.
  uint32_t n = 4;

  /// Replication batching: transactions per txBlock (the paper's beta).
  size_t batch_size = 3000;
  /// Leader proposes a partial batch after this long (keeps latency bounded
  /// at low load).
  util::DurationMicros batch_wait = util::Millis(3);
  /// Maximum replication instances in flight (two-phase pipelining).
  size_t max_inflight = 8;

  /// Follower progress timeout range [min, max); randomized per §4.2.1.
  /// The paper uses [800 ms, 800 ms + epsilon).
  util::DurationMicros timeout_min = util::Millis(800);
  util::DurationMicros timeout_max = util::Millis(1200);
  /// Candidate election timeout (waiting for 2f+1 votes).
  util::DurationMicros election_timeout = util::Millis(400);
  /// Follower wait for a relayed complaint's tx to commit before starting
  /// the ConfVC inspection, and for the inspection itself.
  util::DurationMicros complaint_wait = util::Millis(300);

  /// Timing-policy view changes (§6.2): start a view change every
  /// `rotation_period` of view lifetime. 0 disables the policy.
  /// r10 = 10 s, r30 = 30 s in the paper.
  util::DurationMicros rotation_period = 0;

  /// Reputation mechanism parameters.
  reputation::ReputationConfig reputation;

  /// Proof-of-work difficulty / cost model.
  crypto::PowParams pow;
  PowMode pow_mode = PowMode::kModeled;

  /// Enable the §4.2.5 penalty-refresh protocol.
  bool enable_refresh = true;

  /// Randomization aids beyond the paper's timeout windows: endorsers stand
  /// down briefly after supporting another server's view change, and honest
  /// redeemers pause briefly before campaigning. Both keep split votes rare;
  /// Fig. 8's sweep disables them to isolate the effect of the timeout
  /// randomization epsilon itself.
  bool enable_standdown = true;
  bool enable_courtesy = true;

  /// C3 slack (blocks): under a live leader (timing-policy rotations) the
  /// chain advances while campaigns are in flight; a candidate within this
  /// many blocks of the voter's tip is still considered up-to-date, and it
  /// catches up before enabling replication. 0 restores the strict check.
  types::SeqNum c3_slack_blocks = 8;

  /// Honest redeemer patience: abandon a campaign whose puzzle would take
  /// longer than this (doubled per consecutive abandon so liveness is
  /// preserved when a view change is genuinely required). Attackers are
  /// not bound by it — they grind as long as they like (Fig. 12).
  util::DurationMicros redeemer_patience = util::Millis(2500);

  /// Base seed for per-replica timeout streams. An F1 attacker mimicking
  /// replica r seeds its stream with r instead of its own id, reproducing
  /// the victim's timeout durations.
  uint64_t timeout_seed_base = 0x7e57ab1edeadbeefULL;

  uint32_t f() const { return types::MaxFaulty(n); }
  uint32_t quorum() const { return types::QuorumSize(n); }      // 2f+1
  uint32_t confirm() const { return types::ConfirmSize(n); }    // f+1
};

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_CONFIG_H_
