// Per-replica metrics collected during experiments.

#ifndef PRESTIGE_CORE_METRICS_H_
#define PRESTIGE_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "types/ids.h"
#include "util/stats.h"
#include "util/time.h"

namespace prestige {
namespace core {

/// One recorded reputation-penalty change (Fig. 13's series).
struct RpSample {
  util::TimeMicros at = 0;
  types::View view = 0;
  types::Penalty rp = 0;
};

/// One recorded view-change cost (Fig. 12's series): the time a server spent
/// from becoming a redeemer to broadcasting its campaign (PoW solve time).
struct VcCostSample {
  util::TimeMicros at = 0;
  types::View v_new = 0;
  types::Penalty rp = 0;
  util::DurationMicros solve_time = 0;
};

/// Counters and series accumulated by one replica.
struct ReplicaMetrics {
  explicit ReplicaMetrics(util::DurationMicros window = util::Seconds(1))
      : commit_timeline(window) {}

  int64_t committed_txs = 0;          ///< Transactions committed locally.
  int64_t committed_blocks = 0;       ///< txBlocks appended.
  int64_t view_changes_started = 0;   ///< Times this replica became redeemer.
  int64_t elections_won = 0;          ///< Times elected leader.
  int64_t views_led = 0;              ///< Views in which this replica led.
  util::TimeMicros last_led_at = 0;   ///< Last time it assumed leadership.
  int64_t election_timeouts = 0;      ///< Candidate timers expired (split votes).
  int64_t votes_cast = 0;             ///< VoteCP messages sent.
  int64_t campaigns_sent = 0;         ///< Camp broadcasts.
  int64_t sync_ups = 0;               ///< SyncUp rounds performed.
  int64_t refreshes = 0;              ///< Penalty refreshes completed.
  int64_t complaints_received = 0;
  int64_t invalid_messages = 0;       ///< Failed verification (C1-C5 etc.).

  util::WindowedCounter commit_timeline;  ///< Commits per window (Figs 11/14).
  std::vector<RpSample> rp_history;       ///< Penalty evolution (Fig. 13).
  std::vector<VcCostSample> vc_costs;     ///< Campaign work costs (Fig. 12).
};

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_METRICS_H_
