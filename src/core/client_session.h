// ClientSessionTable: per-client exactly-once bookkeeping on the replica.
//
// Tracks, per client pool (session), which client_seq values have already
// executed and caches the last replies so a retransmitted or
// complaint-resubmitted request is answered from the cache instead of being
// executed a second time (the dsnet-style per-client OpNum / reply-cache
// discipline).
//
// Dedup metadata is exact and tiny: a contiguous floor ("every seq <= floor
// executed") plus a sparse set of executed seqs above it — pools issue
// seqs contiguously, so the sparse set only holds the current out-of-order
// window. Cached reply *bodies* are the bounded part: they are evicted at
// checkpoint boundaries once older than the retain window, after which a
// duplicate is still detected but answered with ExecStatus::kStaleDup
// (committed, result no longer available). Eviction is driven purely by
// committed block heights, so every honest replica's table evolves
// identically.

#ifndef PRESTIGE_CORE_CLIENT_SESSION_H_
#define PRESTIGE_CORE_CLIENT_SESSION_H_

#include <cstdint>
#include <set>
#include <unordered_map>

#include "app/service.h"
#include "types/ids.h"

namespace prestige {
namespace core {

class ClientSessionTable {
 public:
  /// One cached execution result.
  struct CachedReply {
    app::Response response;
    types::SeqNum height = 0;  ///< Block height the request executed at.
  };

  /// True when (pool, seq) has already executed on this replica.
  /// Session seqs are 1-based (client::Client numbers from 1); seq 0 is
  /// outside session tracking — never a duplicate, executed every time it
  /// commits — rather than silently aliasing the pre-session floor.
  bool IsDuplicate(types::ClientPoolId pool, uint64_t seq) const {
    if (seq == 0) return false;
    auto it = sessions_.find(pool);
    if (it == sessions_.end()) return false;
    const Session& s = it->second;
    return seq <= s.floor || s.executed_above.count(seq) > 0;
  }

  /// Cached reply for a duplicate, or nullptr when it was evicted.
  const CachedReply* Lookup(types::ClientPoolId pool, uint64_t seq) const {
    auto it = sessions_.find(pool);
    if (it == sessions_.end()) return nullptr;
    auto r = it->second.replies.find(seq);
    return r == it->second.replies.end() ? nullptr : &r->second;
  }

  /// Records an execution: marks (pool, seq) executed and caches the reply.
  /// Seq 0 is untracked (see IsDuplicate) and recording it is a no-op.
  void Record(types::ClientPoolId pool, uint64_t seq, app::Response response,
              types::SeqNum height) {
    if (seq == 0) return;
    Session& s = sessions_[pool];
    if (seq > s.floor) {
      s.executed_above.insert(seq);
      // Close the contiguous window.
      while (!s.executed_above.empty() &&
             *s.executed_above.begin() == s.floor + 1) {
        ++s.floor;
        s.executed_above.erase(s.executed_above.begin());
      }
    }
    s.replies.emplace(seq,
                      CachedReply{std::move(response), height});
    ++cached_replies_;
  }

  /// Evicts cached replies recorded at or below block `height` (dedup
  /// metadata is kept — duplicates stay detectable forever). Called at
  /// checkpoint boundaries with `checkpoint - retain_window`.
  void EvictUpTo(types::SeqNum height) {
    for (auto& [pool, s] : sessions_) {
      (void)pool;
      for (auto it = s.replies.begin(); it != s.replies.end();) {
        if (it->second.height <= height) {
          it = s.replies.erase(it);
          --cached_replies_;
        } else {
          ++it;
        }
      }
    }
  }

  size_t session_count() const { return sessions_.size(); }
  size_t cached_replies() const { return cached_replies_; }

 private:
  struct Session {
    uint64_t floor = 0;                  ///< All seqs <= floor executed.
    std::set<uint64_t> executed_above;   ///< Executed seqs > floor (sparse).
    std::unordered_map<uint64_t, CachedReply> replies;
  };

  std::unordered_map<types::ClientPoolId, Session> sessions_;
  size_t cached_replies_ = 0;
};

}  // namespace core
}  // namespace prestige

#endif  // PRESTIGE_CORE_CLIENT_SESSION_H_
