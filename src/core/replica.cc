// PrestigeReplica: construction, message dispatch, SyncUp, refresh, and
// shared helpers. Replication logic lives in replication.cc; the active
// view-change protocol in view_change.cc.

#include "core/replica.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace prestige {
namespace core {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kFollower:
      return "follower";
    case Role::kRedeemer:
      return "redeemer";
    case Role::kCandidate:
      return "candidate";
    case Role::kLeader:
      return "leader";
  }
  return "?";
}

PrestigeReplica::PrestigeReplica(PrestigeConfig config,
                                 types::ReplicaId replica_id,
                                 const crypto::KeyStore* keys,
                                 types::FaultSpec fault)
    : config_(config),
      id_(replica_id),
      keys_(keys),
      signer_(keys, replica_id),
      fault_(fault),
      engine_(config.reputation),
      delivery_(replica_id),
      modeled_solver_(config.pow) {}

PrestigeReplica::~PrestigeReplica() = default;

void PrestigeReplica::SetTopology(std::vector<runtime::NodeId> replicas,
                                  std::vector<runtime::NodeId> clients) {
  replicas_ = std::move(replicas);
  clients_ = std::move(clients);
}

void PrestigeReplica::SetService(std::unique_ptr<app::Service> service) {
  delivery_.SetService(std::move(service));
}

uint64_t PrestigeReplica::TxKey(const types::Transaction& tx) {
  return static_cast<uint64_t>(tx.pool) * 0x9e3779b97f4a7c15ULL ^
         tx.client_seq * 0xc2b2ae3d27d4eb4fULL;
}

std::vector<runtime::NodeId> PrestigeReplica::PeerActors() const {
  std::vector<runtime::NodeId> peers;
  peers.reserve(replicas_.size() - 1);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<types::ReplicaId>(i) != id_) peers.push_back(replicas_[i]);
  }
  return peers;
}

// --------------------------------------------------------------- faults

bool PrestigeReplica::QuietActive() const {
  if (Now() < fault_.start_at) return false;
  if (fault_.type == types::FaultType::kQuiet) return true;
  // F4+F2: the attacker completes the view-change consensus honestly (so it
  // is installed as leader), then stonewalls replication.
  if (fault_.type == types::FaultType::kRepeatedVc &&
      role_ == Role::kLeader && replication_enabled_ &&
      fault_.as_leader == types::LeaderMisbehaviour::kQuiet) {
    return true;
  }
  return false;
}

bool PrestigeReplica::EquivocateActive() const {
  if (Now() < fault_.start_at) return false;
  if (fault_.type == types::FaultType::kEquivocate) return true;
  if (fault_.type == types::FaultType::kRepeatedVc &&
      role_ == Role::kLeader && replication_enabled_ &&
      fault_.as_leader == types::LeaderMisbehaviour::kEquivocate) {
    return true;
  }
  return false;
}

bool PrestigeReplica::ByzantineActive() const {
  return fault_.IsByzantine() && Now() >= fault_.start_at;
}

void PrestigeReplica::GuardedSend(runtime::NodeId to, runtime::MessagePtr msg) {
  if (QuietActive()) return;  // F2: a quiet server emits nothing.
  Send(to, std::move(msg));
}

void PrestigeReplica::GuardedSend(const std::vector<runtime::NodeId>& to,
                                  runtime::MessagePtr msg) {
  if (QuietActive()) return;
  Send(to, std::move(msg));
}

crypto::Signature PrestigeReplica::SignMaybeCorrupt(
    const crypto::Sha256Digest& digest) {
  crypto::Signature sig = signer_.Sign(digest);
  if (EquivocateActive()) {
    sig.mac[0] ^= 0xff;  // F3: erroneous reply; receivers reject it.
  }
  return sig;
}

types::Penalty PrestigeReplica::EffectiveRp(types::ReplicaId id) const {
  auto it = refresh_overlay_.find(id);
  if (it != refresh_overlay_.end()) return it->second.first;
  const ledger::VcBlock* current = store_.LatestVcBlock();
  return current != nullptr ? current->PenaltyOf(id)
                            : engine_.initial_rp();
}

types::CompensationIndex PrestigeReplica::EffectiveCi(
    types::ReplicaId id) const {
  auto it = refresh_overlay_.find(id);
  if (it != refresh_overlay_.end()) return it->second.second;
  const ledger::VcBlock* current = store_.LatestVcBlock();
  return current != nullptr ? current->CompensationOf(id)
                            : engine_.initial_ci();
}

// ---------------------------------------------------------------- start

void PrestigeReplica::OnStart() {
  // Timeout stream: F1 attackers mimic a victim's stream so their timeouts
  // fire in lock-step with the victim's (modulo network jitter).
  const uint64_t timeout_identity =
      fault_.has_mimic_target ? fault_.mimic_target : id_;
  timeout_rng_.Seed(config_.timeout_seed_base ^
                    (timeout_identity * 0x9e3779b97f4a7c15ULL));

  // F4 attackers probe for campaign opportunities continuously.
  if (fault_.type == types::FaultType::kRepeatedVc) {
    SetTimer(util::Millis(100), Tag(kAttackProbe));
  }

  // Install the genesis vcBlock for view 1 with leader S0 and initial
  // reputation values (paper §3 Init / Appendix C).
  ledger::VcBlock genesis;
  genesis.set_v(1);
  genesis.set_leader(0);
  genesis.set_confirmed_view(0);
  for (types::ReplicaId r = 0; r < config_.n; ++r) {
    genesis.SetPenalty(r, engine_.initial_rp());
    genesis.SetCompensation(r, engine_.initial_ci());
  }
  util::Status st = store_.AppendVcBlock(genesis);
  assert(st.ok());
  (void)st;

  view_ = 1;
  leader_ = 0;
  voted_view_ = 1;
  view_entered_at_ = Now();

  if (id_ == 0) {
    role_ = Role::kLeader;
    replication_enabled_ = true;
    ++metrics_.views_led;
    metrics_.last_led_at = Now();
    StartLeading();
  } else {
    role_ = Role::kFollower;
    ArmProgressTimer();
  }
  if (config_.rotation_period > 0) {
    // Small jitter staggers policy-driven campaigns across servers.
    const util::DurationMicros jitter =
        rng()->NextInRange(0, util::Millis(300));
    rotation_timer_ =
        SetTimer(config_.rotation_period + jitter, Tag(kRotationDue));
  }
  if (fault_.type == types::FaultType::kCrash) {
    // Crash faults are modeled at the network layer by the harness; the
    // replica itself needs no behaviour change here.
  }
  if (EquivocateActive() ||
      fault_.type == types::FaultType::kEquivocate) {
    SetTimer(util::Millis(50), Tag(kNoiseTimer));
  }
}

// ------------------------------------------------------------- dispatch

bool PrestigeReplica::CrashedNow() const {
  return fault_.type == types::FaultType::kCrash && fault_.start_at > 0 &&
         Now() >= fault_.start_at;
}

void PrestigeReplica::OnMessage(runtime::NodeId from, const runtime::MessagePtr& msg) {
  if (CrashedNow()) {
    return;  // Crashed replicas process nothing.
  }

  if (auto* m = dynamic_cast<const types::ClientBatch*>(msg.get())) {
    OnClientBatch(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const types::ClientComplaint*>(msg.get())) {
    OnClientComplaint(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const OrdMsg*>(msg.get())) {
    OnOrd(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const OrdReplyMsg*>(msg.get())) {
    OnOrdReply(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const CmtMsg*>(msg.get())) {
    OnCmt(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const CmtReplyMsg*>(msg.get())) {
    OnCmtReply(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const TxBlockMsg*>(msg.get())) {
    OnTxBlockMsg(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const HeartbeatMsg*>(msg.get())) {
    OnHeartbeat(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const ComptRelayMsg*>(msg.get())) {
    OnComptRelay(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const ConfVcMsg*>(msg.get())) {
    OnConfVc(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const ReVcMsg*>(msg.get())) {
    OnReVc(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const CampMsg*>(msg.get())) {
    OnCamp(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const VoteCpMsg*>(msg.get())) {
    OnVoteCp(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const VcBlockMsg*>(msg.get())) {
    OnVcBlockMsg(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const VcYesMsg*>(msg.get())) {
    OnVcYes(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const RefMsg*>(msg.get())) {
    OnRef(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const RefReplyMsg*>(msg.get())) {
    OnRefReply(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const RdoneMsg*>(msg.get())) {
    OnRdone(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const SyncReqMsg*>(msg.get())) {
    OnSyncReq(from, *m);
    return;
  }
  if (auto* m = dynamic_cast<const SyncRespMsg*>(msg.get())) {
    OnSyncResp(from, *m);
    return;
  }
  if (dynamic_cast<const NoiseMsg*>(msg.get()) != nullptr) {
    // Attack traffic: consumes bandwidth/CPU (already charged), no action.
    return;
  }
  ++metrics_.invalid_messages;
}

void PrestigeReplica::OnTimer(uint64_t tag) {
  if (CrashedNow()) {
    return;
  }
  switch (TagKind(tag)) {
    case kProgressTimeout: {
      progress_timer_ = 0;
      if (role_ == Role::kLeader) break;
      progress_stale_ = true;
      // Leader appears dead: start the inspection (reason kTimeout).
      StartInspection(VcReason::kTimeout, nullptr);
      ArmProgressTimer();  // Keep ticking; a later VC may still be needed.
      break;
    }
    case kBatchTimer:
      batch_timer_ = 0;
      // Record the expired deadline before proposing: if the pipeline is
      // full right now, the pending partial must still go out as soon as a
      // slot frees (MaybePropose clears the flag once it does).
      partial_due_ = true;
      MaybePropose(/*allow_partial=*/true);
      break;
    case kElectionTimeout: {
      election_timer_ = 0;
      if (role_ != Role::kCandidate) break;
      // Split vote (§4.2.3): back to redeemer with an incremented view.
      // The retry is staggered randomly so competing candidates do not
      // collide again in lock-step (the role of randomized timers, §4.2.1),
      // and bounded: repeated splits mean other candidates are active, so
      // yield and let the progress timer restart detection cheaply instead
      // of paying ever-growing view-skip penalties (Eq. 1).
      ++metrics_.election_timeouts;
      if (++consecutive_election_timeouts_ >= 2) {
        ReturnToFollower();
        break;
      }
      const util::DurationMicros backoff =
          rng()->NextInRange(1, config_.election_timeout);
      election_timer_ = SetTimer(backoff, Tag(kElectionRetry));
      break;
    }
    case kElectionRetry: {
      election_timer_ = 0;
      if (role_ != Role::kCandidate) break;
      BecomeRedeemer(campaign_conf_qc_, confirmed_view_, campaign_view_ + 1);
      break;
    }
    case kPowDone:
      pow_timer_ = 0;
      OnPowSolved();
      break;
    case kRotationDue:
      rotation_timer_ = 0;
      OnRotationDue();
      break;
    case kHeartbeat:
      heartbeat_timer_ = 0;
      if (role_ == Role::kLeader && replication_enabled_) {
        auto hb = std::make_shared<HeartbeatMsg>();
        hb->v = view_;
        hb->latest_n = store_.LatestTxSeq();
        hb->sig = SignMaybeCorrupt(HeartbeatDigest(hb->v, hb->latest_n));
        GuardedSend(PeerActors(), hb);
        RetransmitStalledInstances();
        heartbeat_timer_ =
            SetTimer(config_.timeout_min / 3, Tag(kHeartbeat));
      }
      break;
    case kComplaintWait:
      HandleComplaintTimer(TagPayload(tag));
      break;
    case kInspectionTimeout:
      inspection_timer_ = 0;
      // f+1 ReVCs did not arrive: the client (or our suspicion) was wrong.
      inspecting_ = false;
      break;
    case kNoiseTimer:
      if (EquivocateActive()) {
        auto noise = std::make_shared<NoiseMsg>();
        noise->bytes = 2048;
        Send(PeerActors(), noise);
      }
      if (fault_.type == types::FaultType::kEquivocate ||
          fault_.type == types::FaultType::kRepeatedVc) {
        SetTimer(util::Millis(50), Tag(kNoiseTimer));
      }
      break;
    case kAttackProbe:
      // F4: probe for campaign opportunities. The attacker uses the reason
      // correct servers will endorse — the timing policy when enabled (any
      // server may confirm a due rotation), otherwise leader timeouts.
      if (fault_.type == types::FaultType::kRepeatedVc &&
          Now() >= fault_.start_at) {
        if (role_ == Role::kFollower && config_.rotation_period > 0 &&
            Now() - view_entered_at_ >= config_.rotation_period * 9 / 10) {
          StartInspection(VcReason::kPolicy, nullptr);
        } else if (role_ == Role::kFollower && progress_stale_) {
          StartInspection(VcReason::kTimeout, nullptr);
        } else if (role_ == Role::kLeader && replication_enabled_ &&
                   Now() - view_entered_at_ >= config_.timeout_min) {
          // The attacker contests its own deposition so no honest leader
          // replicates between its elections. It races on purpose: an
          // unendorsed solicitation is abandoned and re-sent every probe
          // tick, and it cites a client complaint it received itself the
          // moment one exists — honest servers sit out complaint_wait
          // before escalating the same evidence, so the attacker's ConfVc
          // reaches the followers first. Without complaint evidence (e.g.
          // a fully quiet reign starves the clients' complaint path too)
          // it falls back to the timeout reason, endorsable once the
          // missing heartbeats leave the followers progress-stale.
          if (inspecting_ && inspection_timer_ != 0) {
            CancelTimer(inspection_timer_);
            inspection_timer_ = 0;
            inspecting_ = false;
          }
          const types::Transaction* evidence = nullptr;
          uint64_t evidence_key = 0;
          for (const auto& [key, state] : complaints_) {
            if (committed_tx_keys_.count(key) > 0) continue;
            if (evidence == nullptr || key < evidence_key) {
              evidence = &state.tx;
              evidence_key = key;
            }
          }
          if (evidence == nullptr && has_attack_complaint_) {
            if (committed_tx_keys_.count(TxKey(attack_complaint_tx_)) == 0) {
              evidence = &attack_complaint_tx_;
            } else {
              has_attack_complaint_ = false;
            }
          }
          if (evidence != nullptr) {
            StartInspection(VcReason::kClientComplaint, evidence);
          } else {
            StartInspection(VcReason::kTimeout, nullptr);
          }
        }
      }
      if (fault_.type == types::FaultType::kRepeatedVc) {
        SetTimer(util::Millis(20), Tag(kAttackProbe));
      }
      break;
  }
}

// ------------------------------------------------------------------ sync

void PrestigeReplica::RequestSync(runtime::NodeId from, SyncReqMsg::Kind kind,
                                  int64_t after, int64_t up_to) {
  util::TimeMicros& backoff_until = kind == SyncReqMsg::Kind::kTxBlocks
                                        ? tx_sync_backoff_until_
                                        : vc_sync_backoff_until_;
  if (Now() < backoff_until) return;
  backoff_until = Now() + config_.complaint_wait;
  ++metrics_.sync_ups;
  auto req = std::make_shared<SyncReqMsg>();
  req->kind = kind;
  req->after = after;
  req->up_to = up_to;
  GuardedSend(from, req);
}

void PrestigeReplica::OnSyncReq(runtime::NodeId from, const SyncReqMsg& msg) {
  auto resp = std::make_shared<SyncRespMsg>();
  if (msg.kind == SyncReqMsg::Kind::kTxBlocks) {
    resp->tx_blocks = store_.TxBlocksAfter(msg.after, msg.up_to);
  } else {
    resp->vc_blocks = store_.VcBlocksAfter(msg.after, msg.up_to);
  }
  if (resp->tx_blocks.empty() && resp->vc_blocks.empty()) return;
  GuardedSend(from, resp);
}

void PrestigeReplica::OnSyncResp(runtime::NodeId from, const SyncRespMsg& msg) {
  (void)from;
  if (!msg.vc_blocks.empty()) vc_sync_backoff_until_ = 0;
  if (!msg.tx_blocks.empty()) tx_sync_backoff_until_ = 0;
  for (const ledger::VcBlock& block : msg.vc_blocks) {
    if (block.v() <= store_.CurrentView()) continue;
    if (!ValidateAndAppendVcBlock(block).ok()) {
      ++metrics_.invalid_messages;
      return;
    }
    // Adopt the view: a synced vcBlock moves us forward as a follower.
    if (block.v() > view_) {
      InstallVcBlock(block, /*as_leader=*/false);
    }
  }
  for (const ledger::TxBlock& block : msg.tx_blocks) {
    if (block.n() <= store_.LatestTxSeq()) continue;
    if (!ValidateAndAppendTxBlock(block).ok()) {
      ++metrics_.invalid_messages;
      return;
    }
    commit_bound_.erase(block.n());
    pending_blocks_.erase(block.n());
  }
  // A newly elected leader catching up to the cluster tip (C3 slack) may
  // now begin proposing.
  if (awaiting_catchup_ && role_ == Role::kLeader) {
    if (store_.LatestTxSeq() >= catchup_target_) {
      awaiting_catchup_ = false;
      StartLeading();
    } else if (!msg.tx_blocks.empty()) {
      RequestSync(catchup_source_, SyncReqMsg::Kind::kTxBlocks,
                  store_.LatestTxSeq(), catchup_target_);
    }
  }
  ReplayStashedCampaigns();
}

util::Status PrestigeReplica::ValidateAndAppendTxBlock(
    const ledger::TxBlock& block) {
  const crypto::Sha256Digest digest = block.Digest();
  PRESTIGE_RETURN_IF_ERROR(crypto::VerifyQuorumCert(
      *keys_, block.commit_qc,
      ledger::CommitDigest(block.v, block.n(), digest), config_.quorum()));
  ledger::TxBlock copy = block;
  util::Status st = store_.AppendTxBlock(std::move(copy));
  if (st.ok()) {
    // One delivery path for every commit route (leader, follower, sync):
    // exactly-once execution + per-pool replies carrying the results.
    if (AdversaryTampers()) {
      // Forged replies: execute a tampered copy of the committed block, so
      // this replica's application state genuinely diverges and the reply
      // entries it reports carry forged result digests. The chain itself
      // stays canonical (the QC verified above covers the real body).
      ledger::TxBlock forged = block;
      std::vector<types::Transaction> txs = forged.release_txs();
      for (types::Transaction& tx : txs) {
        tx.fingerprint ^= 0xf00dfacef00dfaceULL;
        for (uint8_t& b : tx.command) b ^= 0x5a;
      }
      forged.set_txs(std::move(txs));
      SendReplies(delivery_.Deliver(forged));
    } else {
      SendReplies(delivery_.Deliver(block));
    }
    metrics_.committed_txs += static_cast<int64_t>(block.BatchSize());
    ++metrics_.committed_blocks;
    metrics_.commit_timeline.Add(Now(),
                                 static_cast<int64_t>(block.BatchSize()));
    for (const types::Transaction& tx : block.txs()) {
      const uint64_t key = TxKey(tx);
      committed_tx_keys_.insert(key);
      auto it = complaints_.find(key);
      if (it != complaints_.end()) {
        ResolveComplaint(it);
      }
    }
    // Amortized prune: committed entries linger in the request pool until
    // proposal time; rebuild the pool occasionally to bound its size.
    if (pending_txs_.size() > 8 * config_.batch_size + 1024) {
      std::deque<types::Transaction> kept;
      for (types::Transaction& tx : pending_txs_) {
        const uint64_t key = TxKey(tx);
        if (committed_tx_keys_.count(key) > 0) {
          pending_keys_.erase(key);
        } else {
          kept.push_back(std::move(tx));
        }
      }
      pending_txs_.swap(kept);
    }
  }
  return st;
}

util::Status PrestigeReplica::ValidateAndAppendVcBlock(
    const ledger::VcBlock& block) {
  if (block.confirmed_view() > 0 || !block.conf_qc.empty()) {
    PRESTIGE_RETURN_IF_ERROR(crypto::VerifyQuorumCert(
        *keys_, block.conf_qc, ledger::ConfDigest(block.confirmed_view()),
        config_.confirm()));
  }
  PRESTIGE_RETURN_IF_ERROR(crypto::VerifyQuorumCert(
      *keys_, block.vc_qc, ledger::VoteDigest(block.v(), block.leader()),
      config_.quorum()));
  ledger::VcBlock copy = block;
  return store_.AppendVcBlock(std::move(copy));
}

void PrestigeReplica::ReplayStashedCampaigns() {
  if (stashed_camps_.empty() && stashed_vc_blocks_.empty()) return;
  auto camps = std::move(stashed_camps_);
  stashed_camps_.clear();
  for (auto& [from, camp] : camps) {
    OnCamp(from, camp);
  }
  auto blocks = std::move(stashed_vc_blocks_);
  stashed_vc_blocks_.clear();
  for (auto& [from, block] : blocks) {
    VcBlockMsg msg;
    msg.block = block;
    OnVcBlockMsg(from, msg);
  }
}

// --------------------------------------------------------------- refresh

void PrestigeReplica::MaybeRequestRefresh() {
  if (!config_.enable_refresh || refresh_pending_) return;
  if (EffectiveRp(id_) <= engine_.refresh_threshold()) return;
  refresh_pending_ = true;
  refresh_builder_ = crypto::QuorumCertBuilder(
      ledger::RefreshDigest(id_, view_), config_.quorum());
  refresh_builder_.Add(signer_.Sign(ledger::RefreshDigest(id_, view_)),
                       ledger::RefreshDigest(id_, view_));
  auto ref = std::make_shared<RefMsg>();
  ref->v = view_;
  ref->sig = SignMaybeCorrupt(ledger::ConfDigest(view_));
  GuardedSend(PeerActors(), ref);
}

void PrestigeReplica::OnRef(runtime::NodeId from, const RefMsg& msg) {
  // Support a refresh only for servers whose recorded penalty exceeds pi
  // (§4.2.5): this is the verifiable condition every correct server checks.
  types::ReplicaId requester = config_.n;
  for (types::ReplicaId r = 0; r < config_.n; ++r) {
    if (replicas_[r] == from) {
      requester = r;
      break;
    }
  }
  if (requester >= config_.n) return;
  if (EffectiveRp(requester) <= engine_.refresh_threshold()) return;
  auto reply = std::make_shared<RefReplyMsg>();
  reply->target = requester;
  reply->v = msg.v;
  reply->partial = SignMaybeCorrupt(ledger::RefreshDigest(requester, msg.v));
  GuardedSend(from, reply);
}

void PrestigeReplica::OnRefReply(runtime::NodeId from, const RefReplyMsg& msg) {
  (void)from;
  if (!refresh_pending_ || msg.target != id_) return;
  const crypto::Sha256Digest digest = ledger::RefreshDigest(id_, msg.v);
  if (digest != refresh_builder_.digest()) return;
  if (!keys_->Verify(msg.partial, digest)) {
    ++metrics_.invalid_messages;
    return;
  }
  refresh_builder_.Add(msg.partial, digest);
  if (!refresh_builder_.Complete()) return;

  // rs_QC complete: reset own rp/ci and broadcast Rdone.
  refresh_pending_ = false;
  ++metrics_.refreshes;
  refresh_overlay_[id_] = {engine_.initial_rp(), engine_.initial_ci()};
  auto done = std::make_shared<RdoneMsg>();
  done->target = id_;
  done->v = view_;
  done->rs_qc = refresh_builder_.Build();
  done->sig = SignMaybeCorrupt(ledger::RefreshDigest(id_, view_));
  GuardedSend(PeerActors(), done);
}

void PrestigeReplica::OnRdone(runtime::NodeId from, const RdoneMsg& msg) {
  (void)from;
  // The rs_QC proves 2f+1 servers endorsed the refresh at msg.v.
  if (!crypto::VerifyQuorumCert(*keys_, msg.rs_qc,
                                ledger::RefreshDigest(msg.target, msg.v),
                                config_.quorum())
           .ok()) {
    ++metrics_.invalid_messages;
    return;
  }
  refresh_overlay_[msg.target] = {engine_.initial_rp(), engine_.initial_ci()};
}

}  // namespace core
}  // namespace prestige
