// The two-phase replication protocol (§4.3): ordering_QC then commit_QC,
// with batching and pipelining. Message complexity O(n); 7 rounds end-to-end
// including the client (Prop, Ord, replies, Cmt, replies, txBlock, Notif).

#include <cassert>

#include "core/replica.h"
#include "util/logging.h"

namespace prestige {
namespace core {

// ----------------------------------------------------------- client input

void PrestigeReplica::OnClientBatch(runtime::NodeId from,
                                    const types::ClientBatch& batch) {
  (void)from;
  // Every replica buffers proposals (clients broadcast them, §4.3), so a
  // newly elected leader can make immediate progress on outstanding load.
  for (const types::Transaction& tx : batch.txs) {
    EnqueueTx(tx);
  }
  if (role_ == Role::kLeader) MaybePropose();
}

void PrestigeReplica::EnqueueTx(const types::Transaction& tx) {
  const uint64_t key = TxKey(tx);
  if (committed_tx_keys_.count(key) > 0) return;  // Already decided.
  if (!pending_keys_.insert(key).second) return;  // Already buffered.
  pending_txs_.push_back(tx);
}

void PrestigeReplica::MaybePropose(bool allow_partial) {
  if (role_ != Role::kLeader || !replication_enabled_) return;
  // Slow/selective leader: wedge the proposal path while heartbeats keep
  // flowing (OnTimer kHeartbeat), so failure detectors that only watch
  // pings see a live leader that never makes progress.
  if (AdversaryWedged()) return;
  // An expired batch-wait deadline stays in force until the partial batch
  // actually goes out: when the timer fires while the pipeline is full, the
  // trigger must survive to the next free slot, not be dropped.
  if (partial_due_) allow_partial = true;
  while (!pending_txs_.empty() && instances_.size() < config_.max_inflight) {
    if (pending_txs_.size() < config_.batch_size && !allow_partial) break;
    std::vector<types::Transaction> batch;
    batch.reserve(std::min(pending_txs_.size(), config_.batch_size));
    while (!pending_txs_.empty() && batch.size() < config_.batch_size) {
      types::Transaction tx = pending_txs_.front();
      pending_txs_.pop_front();
      const uint64_t key = TxKey(tx);
      pending_keys_.erase(key);
      if (committed_tx_keys_.count(key) > 0) continue;   // Already decided.
      if (inflight_tx_keys_.count(key) > 0) continue;    // Being re-proposed.
      batch.push_back(std::move(tx));
    }
    if (batch.empty()) break;
    Propose(std::move(batch));
    allow_partial = false;  // At most one partial block per trigger.
    partial_due_ = false;   // The overdue front of the pool was proposed.
  }
  if (pending_txs_.empty()) partial_due_ = false;
  // A partial batch left behind gets proposed when the batch timer fires.
  if (!pending_txs_.empty() && batch_timer_ == 0) {
    batch_timer_ = SetTimer(config_.batch_wait, Tag(kBatchTimer));
  }
}

void PrestigeReplica::Propose(std::vector<types::Transaction> batch) {
  for (const types::Transaction& tx : batch) {
    inflight_tx_keys_.insert(TxKey(tx));
  }
  Instance instance;
  instance.last_broadcast_at = Now();
  instance.block.v = view_;
  instance.block.set_n(next_seq_++);
  instance.block.set_prev_hash(last_proposed_digest_);
  instance.block.set_txs(std::move(batch));
  instance.block.status.assign(instance.block.BatchSize(), 1);

  const crypto::Sha256Digest digest = instance.block.Digest();
  last_proposed_digest_ = digest;
  const crypto::Sha256Digest ord_digest =
      ledger::OrderingDigest(view_, instance.block.n(), digest);
  instance.ord_builder =
      crypto::QuorumCertBuilder(ord_digest, config_.quorum());
  instance.ord_builder.Add(signer_.Sign(ord_digest), ord_digest);

  auto ord = std::make_shared<OrdMsg>();
  ord->v = view_;
  ord->n = instance.block.n();
  ord->prev_hash = instance.block.prev_hash();
  ord->txs = instance.block.txs();
  ord->sig = SignMaybeCorrupt(ord_digest);

  instances_.emplace(instance.block.n(), std::move(instance));
  BroadcastOrd(ord);
}

void PrestigeReplica::BroadcastOrd(const std::shared_ptr<OrdMsg>& ord) {
  if (adversary_ == nullptr) {
    GuardedSend(PeerActors(), ord);
    return;
  }
  // Equivocating leader: each follower group gets its own conflicting but
  // properly signed body (variant 0 = the canonical body the leader's own
  // ordering signature covers). Perturbing every transaction fingerprint
  // changes the block digest while keeping the batch well-formed.
  std::map<uint32_t, std::shared_ptr<OrdMsg>> variants;
  variants.emplace(0u, ord);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const auto dest = static_cast<types::ReplicaId>(i);
    if (dest == id_) continue;
    const uint32_t variant = adversary_->ProposalVariant(id_, dest, Now());
    auto vit = variants.find(variant);
    if (vit == variants.end()) {
      ledger::TxBlock block;
      block.v = ord->v;
      block.set_n(ord->n);
      block.set_prev_hash(ord->prev_hash);
      std::vector<types::Transaction> txs = ord->txs;
      for (types::Transaction& tx : txs) {
        tx.fingerprint ^= 0x9e3779b97f4a7c15ULL * variant;
      }
      block.set_txs(std::move(txs));
      block.status.assign(block.BatchSize(), 1);
      auto forged = std::make_shared<OrdMsg>();
      forged->v = ord->v;
      forged->n = ord->n;
      forged->prev_hash = ord->prev_hash;
      forged->txs = block.txs();
      forged->sig = SignMaybeCorrupt(
          ledger::OrderingDigest(ord->v, ord->n, block.Digest()));
      vit = variants.emplace(variant, std::move(forged)).first;
    }
    GuardedSend(replicas_[i], vit->second);
  }
}

// ------------------------------------------------------ follower: phase 1

void PrestigeReplica::OnOrd(runtime::NodeId from, const OrdMsg& ord,
                            OrdMsg::Verified* pre) {
  if (ord.v < view_) return;  // Never respond to lower views (§4.3).
  if (ord.v > view_) {
    // We are behind on view changes; catch up from the sender.
    RequestSync(from, SyncReqMsg::Kind::kVcBlocks, store_.CurrentView(),
                ord.v);
    return;
  }
  if (role_ == Role::kLeader || from != ActorOf(leader_)) return;
  if (ord.n <= store_.LatestTxSeq()) return;  // Stale retransmission.

  // Heavy prologue (block rebuild + hashing + leader signature): use the
  // worker-pool results when present, compute inline otherwise.
  ledger::TxBlock block;
  crypto::Sha256Digest digest;
  crypto::Sha256Digest ord_digest;
  bool sig_ok;
  if (pre != nullptr) {
    block = std::move(pre->block);
    digest = pre->block_digest;
    ord_digest = pre->ord_digest;
    sig_ok = pre->sig_ok;
  } else {
    block.v = ord.v;
    block.set_n(ord.n);
    block.set_prev_hash(ord.prev_hash);
    block.set_txs(ord.txs);
    block.status.assign(block.BatchSize(), 1);
    digest = block.Digest();
    ord_digest = ledger::OrderingDigest(ord.v, ord.n, digest);
    sig_ok = keys_->Verify(ord.sig, ord_digest);
  }

  if (!sig_ok || ord.sig.signer != leader_) {
    ++metrics_.invalid_messages;
    return;
  }

  // Equivocation guard: never sign two different blocks at the same (v, n).
  const auto key = std::make_pair(ord.v, ord.n);
  auto signed_it = signed_ord_.find(key);
  if (signed_it != signed_ord_.end()) {
    if (signed_it->second != digest) {
      ++metrics_.invalid_messages;  // Leader equivocated.
      return;
    }
  } else {
    signed_ord_.emplace(key, digest);
  }

  // Cross-view ordering binding: once we ordering-sign a body at n, no
  // other body may occupy n (Theorem 3). Bind now; conflicting proposals
  // from later views are refused until n commits.
  auto bound = commit_bound_.find(ord.n);
  if (bound != commit_bound_.end() && bound->second != digest) {
    return;  // Keep the bound body; refuse the conflicting proposal.
  }
  commit_bound_.emplace(ord.n, digest);

  PendingBlock pending;
  pending.block = std::move(block);
  pending_blocks_[ord.n] = std::move(pending);

  // Vote withholding: starve the leader of this ordering reply (the
  // progress timer still resets — the attacker saw a live leader and has
  // no interest in campaigning itself).
  if (AdversaryWithholds(ReplicaIndexOf(from))) {
    ResetProgress();
    return;
  }

  auto reply = std::make_shared<OrdReplyMsg>();
  reply->v = ord.v;
  reply->n = ord.n;
  reply->partial = SignMaybeCorrupt(ord_digest);
  GuardedSend(from, reply);
  ResetProgress();
}

// -------------------------------------------------------- leader: phase 1

void PrestigeReplica::OnOrdReply(runtime::NodeId from, const OrdReplyMsg& reply) {
  (void)from;
  if (role_ != Role::kLeader || reply.v != view_) return;
  auto it = instances_.find(reply.n);
  if (it == instances_.end() || it->second.ordered) return;
  Instance& instance = it->second;

  const crypto::Sha256Digest ord_digest = instance.ord_builder.digest();
  if (!keys_->Verify(reply.partial, ord_digest)) {
    ++metrics_.invalid_messages;  // F3 equivocators land here.
    return;
  }
  instance.ord_builder.Add(reply.partial, ord_digest);
  if (!instance.ord_builder.Complete()) return;

  // ordering_QC formed: enter phase 2.
  instance.ordered = true;
  instance.last_broadcast_at = Now();  // The Cmt broadcast below.
  instance.block.ordering_qc = instance.ord_builder.Build();
  const crypto::Sha256Digest& block_digest = instance.block.Digest();
  const crypto::Sha256Digest cmt_digest =
      ledger::CommitDigest(view_, instance.block.n(), block_digest);
  instance.cmt_builder =
      crypto::QuorumCertBuilder(cmt_digest, config_.quorum());
  instance.cmt_builder.Add(signer_.Sign(cmt_digest), cmt_digest);

  auto cmt = std::make_shared<CmtMsg>();
  cmt->v = view_;
  cmt->n = instance.block.n();
  cmt->block_digest = block_digest;
  cmt->ordering_qc = instance.block.ordering_qc;
  cmt->sig = SignMaybeCorrupt(cmt_digest);
  GuardedSend(PeerActors(), cmt);
}

// ------------------------------------------------------ follower: phase 2

void PrestigeReplica::OnCmt(runtime::NodeId from, const CmtMsg& cmt,
                            const CmtMsg::Verified* pre) {
  if (cmt.v != view_ || role_ == Role::kLeader || from != ActorOf(leader_)) {
    return;
  }
  auto it = pending_blocks_.find(cmt.n);
  if (it == pending_blocks_.end()) return;  // No Ord seen for this n.
  PendingBlock& pending = it->second;
  const crypto::Sha256Digest digest = pending.block.Digest();
  if (digest != cmt.block_digest) {
    ++metrics_.invalid_messages;
    return;
  }
  // Past this point digest == cmt.block_digest, so prologue verdicts
  // (computed over the message's own digest) apply to our pending body.
  const bool qc_ok =
      pre != nullptr
          ? pre->qc_ok
          : crypto::VerifyQuorumCert(*keys_, cmt.ordering_qc,
                                     ledger::OrderingDigest(cmt.v, cmt.n,
                                                            digest),
                                     config_.quorum())
                .ok();
  if (!qc_ok) {
    ++metrics_.invalid_messages;
    return;
  }
  const crypto::Sha256Digest cmt_digest =
      pre != nullptr ? pre->cmt_digest
                     : ledger::CommitDigest(cmt.v, cmt.n, digest);
  const bool sig_ok =
      pre != nullptr ? pre->sig_ok : keys_->Verify(cmt.sig, cmt_digest);
  if (!sig_ok || cmt.sig.signer != leader_) {
    ++metrics_.invalid_messages;
    return;
  }
  // Binding check (Theorem 3): never commit-sign a block conflicting with
  // the body we ordering-signed at this sequence number.
  auto bound = commit_bound_.find(cmt.n);
  if (bound != commit_bound_.end() && bound->second != digest) {
    ++metrics_.invalid_messages;
    return;
  }

  pending.block.ordering_qc = cmt.ordering_qc;
  pending.commit_signed = true;

  if (AdversaryWithholds(ReplicaIndexOf(from))) {  // Starve the commit QC.
    ResetProgress();
    return;
  }

  auto reply = std::make_shared<CmtReplyMsg>();
  reply->v = cmt.v;
  reply->n = cmt.n;
  reply->partial = SignMaybeCorrupt(cmt_digest);
  GuardedSend(from, reply);
  ResetProgress();
}

// -------------------------------------------------------- leader: phase 2

void PrestigeReplica::OnCmtReply(runtime::NodeId from, const CmtReplyMsg& reply) {
  (void)from;
  if (role_ != Role::kLeader || reply.v != view_) return;
  auto it = instances_.find(reply.n);
  if (it == instances_.end() || !it->second.ordered || it->second.done) return;
  Instance& instance = it->second;

  const crypto::Sha256Digest cmt_digest = instance.cmt_builder.digest();
  if (!keys_->Verify(reply.partial, cmt_digest)) {
    ++metrics_.invalid_messages;
    return;
  }
  instance.cmt_builder.Add(reply.partial, cmt_digest);
  if (!instance.cmt_builder.Complete()) return;

  // commit_QC formed: the block is decided.
  instance.done = true;
  instance.block.commit_qc = instance.cmt_builder.Build();
  ready_blocks_.emplace(reply.n, std::move(instance.block));
  instances_.erase(it);

  // Commit strictly in sequence order (QCs may complete out of order).
  while (true) {
    auto ready = ready_blocks_.find(store_.LatestTxSeq() + 1);
    if (ready == ready_blocks_.end()) break;
    ledger::TxBlock block = std::move(ready->second);
    ready_blocks_.erase(ready);

    auto msg = std::make_shared<TxBlockMsg>();
    msg->block = block;
    GuardedSend(PeerActors(), msg);
    CommitBlock(std::move(block));
  }
  MaybePropose();
}

// ----------------------------------------------------------------- commit

void PrestigeReplica::OnTxBlockMsg(runtime::NodeId from, const TxBlockMsg& msg) {
  const types::SeqNum latest = store_.LatestTxSeq();
  if (msg.block.n() <= latest) return;  // Duplicate.
  if (msg.block.n() > latest + 1) {
    // Gap: buffer and fetch the missing prefix.
    buffered_commits_[msg.block.n()] = msg.block;
    RequestSync(from, SyncReqMsg::Kind::kTxBlocks, latest, msg.block.n() - 1);
    return;
  }
  CommitBlock(msg.block);
  DrainBufferedBlocks();
}

void PrestigeReplica::CommitBlock(ledger::TxBlock block) {
  const types::SeqNum n = block.n();
  if (!ValidateAndAppendTxBlock(block).ok()) {
    ++metrics_.invalid_messages;
    return;
  }
  pending_blocks_.erase(n);
  signed_ord_.erase(std::make_pair(block.v, n));
  commit_bound_.erase(n);
  for (const types::Transaction& tx : block.txs()) {
    inflight_tx_keys_.erase(TxKey(tx));
  }
  ResetProgress();
}

void PrestigeReplica::DrainBufferedBlocks() {
  while (true) {
    auto it = buffered_commits_.find(store_.LatestTxSeq() + 1);
    if (it == buffered_commits_.end()) break;
    ledger::TxBlock block = std::move(it->second);
    buffered_commits_.erase(it);
    CommitBlock(std::move(block));
  }
}

void PrestigeReplica::SendReplies(
    const std::vector<std::shared_ptr<types::ClientReply>>& replies) {
  if (clients_.empty()) return;
  for (const auto& reply : replies) {
    if (reply->pool < clients_.size()) {
      GuardedSend(clients_[reply->pool], reply);
    }
  }
}

// -------------------------------------------------------------- liveness

void PrestigeReplica::OnHeartbeat(runtime::NodeId from, const HeartbeatMsg& hb,
                                  const HeartbeatMsg::Verified* pre) {
  if (hb.v < view_) return;
  if (hb.v > view_) {
    RequestSync(from, SyncReqMsg::Kind::kVcBlocks, store_.CurrentView(),
                hb.v);
    return;
  }
  if (from != ActorOf(leader_)) return;
  const bool sig_ok =
      pre != nullptr
          ? pre->sig_ok
          : keys_->Verify(hb.sig, HeartbeatDigest(hb.v, hb.latest_n));
  if (!sig_ok || hb.sig.signer != leader_) {
    ++metrics_.invalid_messages;
    return;
  }
  if (hb.latest_n > store_.LatestTxSeq()) {
    RequestSync(from, SyncReqMsg::Kind::kTxBlocks, store_.LatestTxSeq(),
                hb.latest_n);
  }
  ResetProgress();
}

void PrestigeReplica::ResetProgress() {
  progress_stale_ = false;
  if (role_ == Role::kLeader) return;
  ArmProgressTimer();
}

void PrestigeReplica::ArmProgressTimer() {
  if (progress_timer_ != 0) CancelTimer(progress_timer_);
  progress_timer_ = SetTimer(SampleTimeout(), Tag(kProgressTimeout));
}

util::DurationMicros PrestigeReplica::SampleTimeout() {
  if (config_.timeout_max <= config_.timeout_min) return config_.timeout_min;
  return config_.timeout_min +
         timeout_rng_.NextInRange(
             0, config_.timeout_max - config_.timeout_min - 1);
}

void PrestigeReplica::StartLeading() {
  replication_enabled_ = true;
  next_seq_ = store_.LatestTxSeq() + 1;
  last_proposed_digest_ = store_.LatestTxDigest();
  instances_.clear();
  ready_blocks_.clear();
  if (progress_timer_ != 0) {
    CancelTimer(progress_timer_);
    progress_timer_ = 0;
  }
  if (heartbeat_timer_ != 0) CancelTimer(heartbeat_timer_);
  heartbeat_timer_ = SetTimer(config_.timeout_min / 3, Tag(kHeartbeat));

  // Re-propose the in-flight suffix inherited from the previous view: the
  // bodies keep their identity (TxBlock::Digest excludes the view), so
  // followers commit-bound by the old view converge on the same blocks.
  std::vector<ledger::TxBlock> repropose = std::move(repropose_);
  repropose_.clear();
  for (ledger::TxBlock& body : repropose) {
    if (body.n() < next_seq_) continue;  // Committed while we were elected.
    if (body.n() != next_seq_ || instances_.size() >= config_.max_inflight) {
      // Gap or full pipeline: recycle the transactions into the pool.
      for (const types::Transaction& tx : body.txs()) EnqueueTx(tx);
      continue;
    }
    Propose(body.release_txs());
  }

  MaybePropose(/*allow_partial=*/true);
}

void PrestigeReplica::StopReplicationActivity() {
  replication_enabled_ = false;
  // Return uncommitted in-flight transactions to the request pool so a
  // future leadership term can re-propose them.
  for (auto& [n, instance] : instances_) {
    (void)n;
    for (const types::Transaction& tx : instance.block.txs()) {
      inflight_tx_keys_.erase(TxKey(tx));
      EnqueueTx(tx);
    }
  }
  for (auto& [n, block] : ready_blocks_) {
    (void)n;
    for (const types::Transaction& tx : block.txs()) {
      inflight_tx_keys_.erase(TxKey(tx));
      EnqueueTx(tx);
    }
  }
  instances_.clear();
  ready_blocks_.clear();
  partial_due_ = false;
  if (batch_timer_ != 0) {
    CancelTimer(batch_timer_);
    batch_timer_ = 0;
  }
  if (heartbeat_timer_ != 0) {
    CancelTimer(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
}

void PrestigeReplica::RetransmitStalledInstances() {
  // On lossy links an instance wedges when an Ord/Cmt copy or enough
  // replies are lost: the leader would otherwise wait forever (followers
  // keep seeing heartbeats, so only the slow complaint path would recover
  // via a full view change). Re-broadcast the current phase of any
  // instance older than one heartbeat interval; followers treat the
  // repeats idempotently and re-send their replies.
  if (AdversaryWedged()) return;  // Wedged leaders never retransmit.
  const util::DurationMicros stall_age = config_.timeout_min / 3;
  for (auto& [n, instance] : instances_) {
    if (instance.done || Now() - instance.last_broadcast_at < stall_age) {
      continue;
    }
    instance.last_broadcast_at = Now();
    const crypto::Sha256Digest& digest = instance.block.Digest();
    if (!instance.ordered) {
      auto ord = std::make_shared<OrdMsg>();
      ord->v = instance.block.v;
      ord->n = n;
      ord->prev_hash = instance.block.prev_hash();
      ord->txs = instance.block.txs();
      ord->sig = SignMaybeCorrupt(
          ledger::OrderingDigest(instance.block.v, n, digest));
      BroadcastOrd(ord);  // Equivocators keep their per-group stories.
    } else {
      auto cmt = std::make_shared<CmtMsg>();
      cmt->v = instance.block.v;
      cmt->n = n;
      cmt->block_digest = digest;
      cmt->ordering_qc = instance.block.ordering_qc;
      cmt->sig = SignMaybeCorrupt(
          ledger::CommitDigest(instance.block.v, n, digest));
      GuardedSend(PeerActors(), cmt);
    }
  }
}

}  // namespace core
}  // namespace prestige
