// Canonical byte encoding for digest / signature computation.
//
// Every signed or hashed protocol structure is serialized through Encoder
// with a leading domain-separation tag, so digests of different message
// kinds can never collide.

#ifndef PRESTIGE_TYPES_CODEC_H_
#define PRESTIGE_TYPES_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace prestige {
namespace types {

/// Append-only canonical encoder (little-endian fixed-width integers).
class Encoder {
 public:
  /// Starts an encoding with a domain-separation tag. There is no tagless
  /// constructor on purpose: every digest in the system must commit to its
  /// message kind, or digests of two kinds with identical payloads could
  /// collide and a signature for one could be replayed as the other.
  explicit Encoder(const char* domain_tag) { PutString(domain_tag); }

  Encoder& PutU8(uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  Encoder& PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (i * 8)));
    return *this;
  }
  Encoder& PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (i * 8)));
    return *this;
  }
  Encoder& PutI64(int64_t v) { return PutU64(static_cast<uint64_t>(v)); }
  Encoder& PutDigest(const crypto::Sha256Digest& d) {
    buf_.insert(buf_.end(), d.begin(), d.end());
    return *this;
  }
  Encoder& PutBytes(const std::vector<uint8_t>& b) {
    PutU64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
    return *this;
  }
  Encoder& PutString(const std::string& s) {
    PutU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }

  /// SHA-256 of everything encoded so far.
  crypto::Sha256Digest Digest() const { return crypto::Sha256::Hash(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_CODEC_H_
