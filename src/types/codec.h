// Canonical byte encoding for digest / signature computation.
//
// Every signed or hashed protocol structure is serialized through an
// encoder with a leading domain-separation tag, so digests of different
// message kinds can never collide.
//
// Two encoders share one canonical byte layout (EncoderBase):
//  * Encoder        — materializes the byte vector; use when the bytes
//                     themselves are needed (wire stubs, tests).
//  * HashingEncoder — streams every appended byte straight into an
//                     incremental Sha256, never building the vector. The
//                     digest hot path (one digest per protocol message)
//                     uses this: zero allocation, zero buffer copy.
// For identical Put sequences the two produce identical digests — asserted
// by tests/codec_test.cc.

#ifndef PRESTIGE_TYPES_CODEC_H_
#define PRESTIGE_TYPES_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace prestige {
namespace types {

/// Append-only canonical encoding (little-endian fixed-width integers)
/// over a derived-class byte sink with `Append(const uint8_t*, size_t)`.
template <typename Derived>
class EncoderBase {
 public:
  Derived& PutU8(uint8_t v) {
    self().Append(&v, 1);
    return self();
  }
  Derived& PutU32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (i * 8));
    self().Append(b, 4);
    return self();
  }
  Derived& PutU64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (i * 8));
    self().Append(b, 8);
    return self();
  }
  Derived& PutI64(int64_t v) { return PutU64(static_cast<uint64_t>(v)); }
  Derived& PutDigest(const crypto::Sha256Digest& d) {
    self().Append(d.data(), d.size());
    return self();
  }
  Derived& PutBytes(const std::vector<uint8_t>& b) {
    PutU64(b.size());
    self().Append(b.data(), b.size());
    return self();
  }
  Derived& PutString(const std::string& s) {
    PutU64(s.size());
    self().Append(reinterpret_cast<const uint8_t*>(s.data()), s.size());
    return self();
  }
  /// Same layout as the std::string overload, without materializing a
  /// temporary string (domain tags are literals on the digest hot path).
  Derived& PutString(const char* s) {
    const size_t len = std::strlen(s);
    PutU64(len);
    self().Append(reinterpret_cast<const uint8_t*>(s), len);
    return self();
  }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

/// Encoder that materializes the canonical bytes.
class Encoder : public EncoderBase<Encoder> {
 public:
  /// Starts an encoding with a domain-separation tag. There is no tagless
  /// constructor on purpose: every digest in the system must commit to its
  /// message kind, or digests of two kinds with identical payloads could
  /// collide and a signature for one could be replayed as the other.
  explicit Encoder(const char* domain_tag) { PutString(domain_tag); }

  /// As above, pre-reserving `reserve_bytes` of buffer so large encodings
  /// (e.g. a whole transaction batch) append without reallocation.
  Encoder(const char* domain_tag, size_t reserve_bytes) {
    buf_.reserve(reserve_bytes);
    PutString(domain_tag);
  }

  /// Pre-reserves capacity for at least `total_bytes` of encoded output.
  void Reserve(size_t total_bytes) { buf_.reserve(total_bytes); }

  const std::vector<uint8_t>& bytes() const { return buf_; }

  /// SHA-256 of everything encoded so far.
  crypto::Sha256Digest Digest() const { return crypto::Sha256::Hash(buf_); }

 private:
  // Only the Put* framing layer may append: raw unframed bytes would make
  // field boundaries ambiguous and void the no-collision argument above.
  friend class EncoderBase<Encoder>;
  void Append(const uint8_t* data, size_t len) {
    // Empty PutBytes/PutString payloads hand us data() == nullptr, and a
    // (nullptr, nullptr) insert range is UB even at length zero.
    if (len == 0) return;
    buf_.insert(buf_.end(), data, data + len);
  }

  std::vector<uint8_t> buf_;
};

/// Encoder that streams into SHA-256 without materializing the bytes.
/// Digest() finalizes the hash; encode-then-digest once, then discard.
class HashingEncoder : public EncoderBase<HashingEncoder> {
 public:
  explicit HashingEncoder(const char* domain_tag) { PutString(domain_tag); }

  /// Digest of everything encoded so far. Finalizes the underlying hash:
  /// call exactly once, as the last operation.
  crypto::Sha256Digest Digest() { return sha_.Finish(); }

 private:
  friend class EncoderBase<HashingEncoder>;
  void Append(const uint8_t* data, size_t len) { sha_.Update(data, len); }

  crypto::Sha256 sha_;
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_CODEC_H_
