#include "types/transaction.h"

namespace prestige {
namespace types {

crypto::Sha256Digest BatchDigest(const std::vector<Transaction>& txs) {
  HashingEncoder enc("batch");
  enc.PutU64(txs.size());
  for (const Transaction& tx : txs) {
    enc.PutDigest(tx.Digest());
  }
  return enc.Digest();
}

}  // namespace types
}  // namespace prestige
