// Byzantine fault profiles for the paper's attack suite (§6.2).
//
// F1 — timeout attacks: faulty servers copy correct servers' timeouts to
//      maximize the chance of simultaneous candidacies (split votes).
// F2 — quiet participants: faulty servers stop responding (crash-like).
// F3 — equivocation: faulty servers answer with erroneous messages.
// F4 — repeated view-change attacks: faulty servers campaign for leadership
//      whenever they are not the leader (strategy S1) or only when the
//      reputation engine would grant them compensation (strategy S2), and
//      behave as F2 or F3 once in power.
//
// Faulty servers may collude (§4.1): they share logs and perform joint PoW
// computation, modeled as a hash-rate multiplier.
//
// Lives in types/ (not workload/) because replicas consume a FaultSpec to
// emulate the attack suite: protocol layers may depend on types/, while
// workload/ (traffic generation) is out of bounds for them — enforced by
// prestige_lint's layering rule.

#ifndef PRESTIGE_TYPES_FAULT_SPEC_H_
#define PRESTIGE_TYPES_FAULT_SPEC_H_

#include "util/time.h"

namespace prestige {
namespace types {

/// Behaviour class of one replica.
enum class FaultType {
  kHonest,
  kCrash,          ///< Stops entirely at `start_at` (network-level down).
  kQuiet,          ///< F2: alive but never sends anything.
  kEquivocate,     ///< F3: sends corrupted replies / votes.
  kTimeoutAttack,  ///< F1: pins its timeout to the minimum (mimics peers).
  kRepeatedVc,     ///< F4: campaigns at every view-change opportunity.
};

/// F4 sub-strategies (§6.2 "Availability").
enum class AttackStrategy {
  kS1,  ///< Attack whenever not the leader.
  kS2,  ///< Attack only when compensation keeps rp from growing.
};

/// What an F4 attacker does once it wins leadership.
enum class LeaderMisbehaviour {
  kQuiet,        ///< F4+F2.
  kEquivocate,   ///< F4+F3.
  /// Honest while leading: the F-plane contributes only the campaigning.
  /// Used to compose with a scripted ByzantineSpec behaviour
  /// (types/byzantine_spec.h) that supplies the in-office misbehaviour.
  kNone,
};

/// Complete per-replica fault configuration.
struct FaultSpec {
  FaultType type = FaultType::kHonest;
  AttackStrategy strategy = AttackStrategy::kS1;
  LeaderMisbehaviour as_leader = LeaderMisbehaviour::kQuiet;
  /// Virtual time at which the behaviour activates.
  util::TimeMicros start_at = 0;
  /// PoW speed-up from colluding attackers pooling computation (joint
  /// computation, §6.2); 1.0 = no collusion.
  double collusion_speedup = 1.0;
  /// F1: replica whose timeout stream this attacker copies (its own id when
  /// honest). Mimicked timeouts fire in lock-step modulo network jitter.
  uint32_t mimic_target = 0;
  bool has_mimic_target = false;

  bool IsByzantine() const { return type != FaultType::kHonest; }

  static FaultSpec Honest() { return FaultSpec{}; }
  static FaultSpec Quiet(util::TimeMicros at = 0) {
    FaultSpec s;
    s.type = FaultType::kQuiet;
    s.start_at = at;
    return s;
  }
  static FaultSpec Equivocate(util::TimeMicros at = 0) {
    FaultSpec s;
    s.type = FaultType::kEquivocate;
    s.start_at = at;
    return s;
  }
  static FaultSpec Crash(util::TimeMicros at = 0) {
    FaultSpec s;
    s.type = FaultType::kCrash;
    s.start_at = at;
    return s;
  }
  static FaultSpec TimeoutAttack() {
    FaultSpec s;
    s.type = FaultType::kTimeoutAttack;
    return s;
  }
  static FaultSpec RepeatedVc(AttackStrategy strategy,
                              LeaderMisbehaviour as_leader,
                              double collusion_speedup = 1.0) {
    FaultSpec s;
    s.type = FaultType::kRepeatedVc;
    s.strategy = strategy;
    s.as_leader = as_leader;
    s.collusion_speedup = collusion_speedup;
    return s;
  }
};

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_FAULT_SPEC_H_
