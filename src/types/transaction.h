// Client transactions as carried through consensus.
//
// The simulator does not materialize payload bytes: a Transaction records its
// origin, timing, size, and a payload fingerprint. Sizes feed the bandwidth
// model; fingerprints feed digests so equivocation is detectable.

#ifndef PRESTIGE_TYPES_TRANSACTION_H_
#define PRESTIGE_TYPES_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "types/codec.h"
#include "types/ids.h"
#include "util/time.h"

namespace prestige {
namespace types {

/// One client request (the paper's ⟨Prop, t, d, c, σc, tx⟩ without the
/// physical payload).
struct Transaction {
  ClientPoolId pool = 0;          ///< Originating client pool.
  uint64_t client_seq = 0;        ///< Unique per-pool request number.
  util::TimeMicros sent_at = 0;   ///< The client timestamp t.
  uint32_t payload_size = 32;     ///< m: request payload bytes.
  uint64_t fingerprint = 0;       ///< Stand-in for the payload content.

  bool operator==(const Transaction& other) const {
    return pool == other.pool && client_seq == other.client_seq &&
           sent_at == other.sent_at && payload_size == other.payload_size &&
           fingerprint == other.fingerprint;
  }

  /// Canonical digest d of the request.
  crypto::Sha256Digest Digest() const {
    HashingEncoder enc("tx");
    enc.PutU32(pool)
        .PutU64(client_seq)
        .PutI64(sent_at)
        .PutU32(payload_size)
        .PutU64(fingerprint);
    return enc.Digest();
  }

  /// Wire bytes of the full proposal (payload + header + client signature).
  size_t WireBytes() const { return payload_size + 72; }
};

/// Digest covering an ordered list of transactions (a batch body).
crypto::Sha256Digest BatchDigest(const std::vector<Transaction>& txs);

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_TRANSACTION_H_
