// Client transactions as carried through consensus.
//
// A Transaction records its origin, timing, size, and the opaque command
// the application service will execute. Workloads that only measure
// consensus (no real application) leave `command` empty and rely on the
// random `fingerprint` for content identity; sizes feed the bandwidth
// model either way.

#ifndef PRESTIGE_TYPES_TRANSACTION_H_
#define PRESTIGE_TYPES_TRANSACTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "types/codec.h"
#include "types/ids.h"
#include "util/time.h"

namespace prestige {
namespace types {

/// One client request (the paper's ⟨Prop, t, d, c, σc, tx⟩).
struct Transaction {
  ClientPoolId pool = 0;          ///< Originating client pool / session.
  uint64_t client_seq = 0;        ///< Unique per-pool request number.
  /// Consensus group the client routed this request to (sharded
  /// deployments; 0 — the only group — when unsharded). Covered by the
  /// digest so a relayed proposal cannot be silently re-homed.
  GroupId group = 0;
  util::TimeMicros sent_at = 0;   ///< The client timestamp t.
  uint32_t payload_size = 32;     ///< m: modelled request payload bytes.
  uint64_t fingerprint = 0;       ///< Content stand-in when command is empty.
  /// Opaque command bytes executed by app::Service (empty for synthetic
  /// consensus-only workloads).
  std::vector<uint8_t> command;

  bool operator==(const Transaction& other) const {
    return pool == other.pool && client_seq == other.client_seq &&
           group == other.group && sent_at == other.sent_at &&
           payload_size == other.payload_size &&
           fingerprint == other.fingerprint && command == other.command;
  }

  /// Canonical digest d of the request (covers the command payload).
  crypto::Sha256Digest Digest() const {
    HashingEncoder enc("tx");
    enc.PutU32(pool)
        .PutU64(client_seq)
        .PutU32(group)
        .PutI64(sent_at)
        .PutU32(payload_size)
        .PutU64(fingerprint)
        .PutBytes(command);
    return enc.Digest();
  }

  /// Wire bytes of the full proposal (payload + header + client signature).
  /// Real command bytes dominate `payload_size` when both are present.
  size_t WireBytes() const {
    return std::max<size_t>(payload_size, command.size()) + 72;
  }
};

/// Digest covering an ordered list of transactions (a batch body).
crypto::Sha256Digest BatchDigest(const std::vector<Transaction>& txs);

}  // namespace types
}  // namespace prestige

#endif  // PRESTIGE_TYPES_TRANSACTION_H_
